// Command i2pmeasure runs the paper's measurement experiments (Figures
// 2–12, Table 1, the floodfill population estimate) against a synthetic
// network and prints the regenerated artifacts.
//
// Usage:
//
//	i2pmeasure -list
//	i2pmeasure [-scale 0.1] [-seed 2018] [-workers 0] [-experiment figure-05] [-snapshot-dir DIR]
//	i2pmeasure -cpuprofile cpu.out -memprofile mem.out -experiment figure-05
//	i2pmeasure -trace trace.json -experiment figure-05   # Perfetto-loadable spans
//
// Without -experiment, every measurement experiment runs in order
// (comma-separated IDs select a subset). Experiments and the campaign
// engine fan out across -workers goroutines (default: one per CPU);
// results are identical for any worker count. Ctrl-C cancels the run
// cleanly — snapshot day directories are written atomically, so an
// interrupted -snapshot-dir never holds a partial day.
//
// With -checkpoint-dir, finished experiments (and the -snapshot-dir
// campaign's finished days) are spilled to disk; rerunning with -resume
// loads finished units instead of recomputing them and produces
// byte-identical output. A directory holding a previous run's manifest
// is refused without -resume, and state from a different configuration
// is refused with a mismatch error. -inject point:N:mode arms a
// deterministic fault for crash drills (see internal/faults).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/checkpoint"
	"github.com/i2pstudy/i2pstudy/internal/core"
	"github.com/i2pstudy/i2pstudy/internal/faults"
	"github.com/i2pstudy/i2pstudy/internal/measure"
	"github.com/i2pstudy/i2pstudy/internal/obs"
	"github.com/i2pstudy/i2pstudy/internal/prof"
)

// measurementIDs are the Section 5 artifacts plus the ablation studies
// this tool owns, derived from the registry's category tags; censorship
// experiments (core.CategoryCensorship) live in cmd/i2pcensor.
func measurementIDs() []string {
	return append(core.ExperimentIDs(core.CategoryPopulation),
		core.ExperimentIDs(core.CategoryAblation)...)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("i2pmeasure: ")

	scale := flag.Float64("scale", 0.1, "network scale relative to the paper's 30.5K daily peers")
	seed := flag.Uint64("seed", 2018, "simulation seed")
	days := flag.Int("days", 45, "study horizon in days (>= 40)")
	workers := flag.Int("workers", 0, "engine concurrency (0 = one worker per CPU, 1 = serial)")
	stream := flag.Bool("stream", true, "bounded-memory campaign fold (O(workers) resident day units); -stream=false retains every pending day in memory")
	experiment := flag.String("experiment", "", "run specific experiments (comma-separated IDs)")
	list := flag.Bool("list", false, "list available experiments and exit")
	checkpointDir := flag.String("checkpoint-dir", "", "spill finished experiments here so an interrupted run can resume")
	resume := flag.Bool("resume", false, "continue from an existing -checkpoint-dir instead of refusing it")
	inject := flag.String("inject", "", "arm a deterministic fault: point:N:mode (mode = error|panic|exit)")
	snapshotDir := flag.String("snapshot-dir", "", "persist daily netDb snapshots (routerInfo-*.dat) under this directory")
	csvDir := flag.String("csv-dir", "", "write each figure's data series as CSV under this directory")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	blockprofile := flag.String("blockprofile", "", "write a blocking-contention profile to this file on exit")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON file of engine spans (open in Perfetto)")
	flag.Parse()

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-22s %-11s %s\n", e.ID, e.Category, e.Title)
		}
		return
	}

	if *inject != "" {
		inj, err := faults.Parse(*inject)
		if err != nil {
			log.Fatal(err)
		}
		faults.Enable(faults.New(inj))
	}
	if *checkpointDir != "" && !*resume && checkpoint.Exists(*checkpointDir) {
		log.Fatalf("%s holds a previous run's checkpoint; pass -resume to continue it (or point -checkpoint-dir elsewhere)", *checkpointDir)
	}

	stopProf, err := prof.StartOptions(prof.Options{
		CPUProfile:   *cpuprofile,
		MemProfile:   *memprofile,
		BlockProfile: *blockprofile,
		MutexProfile: *mutexprofile,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	closeTrace, err := obs.TraceToFile(*traceFile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := closeTrace(); err != nil {
			log.Print(err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := core.DefaultOptions()
	opts.Seed = *seed
	opts.Days = *days
	opts.TargetDailyPeers = int(*scale * 30500)
	opts.Workers = *workers
	opts.Retain = !*stream
	opts.CheckpointDir = *checkpointDir
	study, err := core.NewStudy(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d daily peers (scale %.2f), %d days, seed %d, %d workers\n\n",
		opts.TargetDailyPeers, *scale, opts.Days, opts.Seed, study.Workers())

	if *snapshotDir != "" {
		// The snapshot campaign checkpoints under its own subdirectory:
		// it is a different engine with its own manifest, which cannot
		// share the experiment store's directory.
		campaignCkpt := ""
		if *checkpointDir != "" {
			campaignCkpt = filepath.Join(*checkpointDir, "campaign")
		}
		if err := writeSnapshots(ctx, study, *snapshotDir, campaignCkpt); err != nil {
			fatal(err)
		}
	}

	ids := measurementIDs()
	if *experiment != "" {
		ids = strings.Split(*experiment, ",")
	}
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	start := time.Now()
	results, err := study.RunAll(ctx, sorted...)
	if err != nil {
		fatal(err)
	}
	for _, res := range results {
		fmt.Printf("=== %s: %s\n", res.ID, res.Title)
		fmt.Printf("paper: %s\n\n", paperNote(res.ID))
		fmt.Println(res.Text)
		printMetrics(res.Metrics)
		fmt.Println()
		if *csvDir != "" && res.Figure != nil {
			if err := writeCSV(*csvDir, res); err != nil {
				log.Fatalf("%s: csv: %v", res.ID, err)
			}
		}
	}
	fmt.Printf("completed %d experiments in %s\n", len(sorted), time.Since(start).Round(time.Millisecond))
}

// fatal reports context cancellation as a clean interrupt, everything else
// as a fatal error.
func fatal(err error) {
	if errors.Is(err, context.Canceled) {
		log.Fatal("interrupted")
	}
	log.Fatal(err)
}

// writeSnapshots runs a short 3-observer campaign with disk snapshots to
// demonstrate the netDb-directory watching workflow of Section 4.3.
func writeSnapshots(ctx context.Context, study *core.Study, dir, checkpointDir string) error {
	c, err := measure.NewCampaign(study.Net, measure.CampaignConfig{
		Observers:     measure.DefaultObserverFleet(3),
		StartDay:      0,
		EndDay:        3,
		SnapshotDir:   dir,
		Workers:       study.Workers(),
		CheckpointDir: checkpointDir,
		Retain:        study.Opts.Retain,
	})
	if err != nil {
		return err
	}
	if _, err := c.RunContext(ctx); err != nil {
		return err
	}
	fmt.Printf("wrote netDb snapshots for days 0-2 under %s\n\n", dir)
	return nil
}

// writeCSV exports one experiment's figure series to <dir>/<id>.csv.
func writeCSV(dir string, res *core.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, res.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.Figure.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", f.Name())
	return nil
}

func paperNote(id string) string {
	if e, ok := core.Lookup(id); ok {
		return e.Paper
	}
	return ""
}

func printMetrics(m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-28s %.3f\n", k, m[k])
	}
	fmt.Print(b.String())
}
