// Command i2pcensor runs the paper's censorship-resistance experiments:
// the probabilistic address-based blocking model (Figure 13), the eepsite
// usability evaluation under null-routing (Figure 14), reseed blocking and
// manual reseeding (Section 6.1), the bridge strategies of Section 7.1,
// the DPI fingerprinting study of Section 2.2.2, and the
// bridge-distribution pipeline (rdsys-style distributors vs censor
// enumeration, internal/distrib) — including the Salmon-style
// trust-graph distributor (trust-distribution).
//
// Usage:
//
//	i2pcensor [-scale 0.1] [-seed 2018] [-experiment figure-13]
//	i2pcensor -experiment figure-13,figure-14          # comma-separated subset
//	i2pcensor -checkpoint-dir ckpt                     # spill finished experiments
//	i2pcensor -checkpoint-dir ckpt -resume             # continue an interrupted run
//	i2pcensor -cpuprofile cpu.out -memprofile mem.out -experiment figure-13
//	i2pcensor -trace trace.json -experiment figure-13   # Perfetto-loadable spans
//
// With -checkpoint-dir, every finished experiment is spilled to the
// directory; rerunning with -resume loads finished units instead of
// recomputing them and produces byte-identical output. A directory
// holding a previous run's manifest is refused without -resume, and
// state from a different configuration (seed, scale, days) is refused
// with a mismatch error. -inject point:N:mode arms a deterministic
// fault for crash drills (see internal/faults).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"github.com/i2pstudy/i2pstudy/internal/checkpoint"
	"github.com/i2pstudy/i2pstudy/internal/core"
	"github.com/i2pstudy/i2pstudy/internal/faults"
	"github.com/i2pstudy/i2pstudy/internal/obs"
	"github.com/i2pstudy/i2pstudy/internal/prof"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("i2pcensor: ")

	scale := flag.Float64("scale", 0.1, "network scale relative to the paper's 30.5K daily peers")
	seed := flag.Uint64("seed", 2018, "simulation seed")
	days := flag.Int("days", 45, "study horizon in days (>= 40)")
	workers := flag.Int("workers", 0, "engine concurrency (0 = one worker per CPU, 1 = serial)")
	stream := flag.Bool("stream", true, "bounded-memory campaign fold (O(workers) resident day units); -stream=false retains every pending day in memory")
	experiment := flag.String("experiment", "", "run specific experiments (comma-separated IDs)")
	checkpointDir := flag.String("checkpoint-dir", "", "spill finished experiments here so an interrupted run can resume")
	resume := flag.Bool("resume", false, "continue from an existing -checkpoint-dir instead of refusing it")
	inject := flag.String("inject", "", "arm a deterministic fault: point:N:mode (mode = error|panic|exit)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	blockprofile := flag.String("blockprofile", "", "write a blocking-contention profile to this file on exit")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON file of engine spans (open in Perfetto)")
	flag.Parse()

	if *inject != "" {
		inj, err := faults.Parse(*inject)
		if err != nil {
			log.Fatal(err)
		}
		faults.Enable(faults.New(inj))
	}
	if *checkpointDir != "" && !*resume && checkpoint.Exists(*checkpointDir) {
		log.Fatalf("%s holds a previous run's checkpoint; pass -resume to continue it (or point -checkpoint-dir elsewhere)", *checkpointDir)
	}

	stopProf, err := prof.StartOptions(prof.Options{
		CPUProfile:   *cpuprofile,
		MemProfile:   *memprofile,
		BlockProfile: *blockprofile,
		MutexProfile: *mutexprofile,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	closeTrace, err := obs.TraceToFile(*traceFile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := closeTrace(); err != nil {
			log.Print(err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := core.DefaultOptions()
	opts.Seed = *seed
	opts.Days = *days
	opts.TargetDailyPeers = int(*scale * 30500)
	opts.Workers = *workers
	opts.Retain = !*stream
	opts.CheckpointDir = *checkpointDir
	study, err := core.NewStudy(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d daily peers (scale %.2f), %d days, seed %d\n\n",
		opts.TargetDailyPeers, *scale, opts.Days, opts.Seed)

	// The experiment set is derived from the registry's category tags, so
	// newly registered censorship and distribution experiments appear here
	// automatically.
	ids := append(core.ExperimentIDs(core.CategoryCensorship),
		core.ExperimentIDs(core.CategoryDistribution)...)
	if *experiment != "" {
		ids = strings.Split(*experiment, ",")
	}
	results, err := study.RunAll(ctx, ids...)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			log.Fatal("interrupted")
		}
		log.Fatal(err)
	}
	for _, res := range results {
		fmt.Printf("=== %s: %s\n", res.ID, res.Title)
		if e, ok := core.Lookup(res.ID); ok {
			fmt.Printf("paper: %s\n\n", e.Paper)
		}
		fmt.Println(res.Text)
		keys := make([]string, 0, len(res.Metrics))
		for k := range res.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-28s %.3f\n", k, res.Metrics[k])
		}
		fmt.Println()
	}
}
