// Command i2pnetdb inspects a netDb snapshot directory of routerInfo-*.dat
// files (as written by the measurement harness or by `i2pmeasure
// -snapshot-dir`), printing the record inventory: capacity flags,
// floodfill share, unknown-IP classification and geographic mix.
//
// Usage:
//
//	i2pnetdb DIR
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/geo"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("i2pnetdb: ")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: i2pnetdb DIR")
	}
	dir := flag.Arg(0)

	store := netdb.NewStore(false)
	loaded, err := store.LoadDir(dir, time.Now().UTC())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d RouterInfos from %s\n\n", loaded, dir)

	db := geo.NewDB()
	classCounts := map[netdb.BandwidthClass]int{}
	ff, reachable, unknown, firewalled, hidden := 0, 0, 0, 0, 0
	countries := stats.NewCounter()
	unresolved := 0
	for _, ri := range store.RouterInfos() {
		for _, cl := range ri.Caps.PublishedClasses() {
			classCounts[cl]++
		}
		if ri.Caps.Floodfill {
			ff++
		}
		if ri.Caps.Reachable {
			reachable++
		}
		if ri.UnknownIP() {
			unknown++
		}
		if ri.Firewalled() {
			firewalled++
		}
		if ri.HiddenPeer() {
			hidden++
		}
		for _, addr := range ri.IPs() {
			if rec, ok := db.Lookup(addr); ok {
				countries.Inc(rec.CountryCode)
			} else {
				unresolved++
			}
		}
	}

	total := store.RouterCount()
	rows := [][]string{{"class", "records", "share"}}
	for _, cl := range netdb.BandwidthClasses {
		rows = append(rows, []string{cl.String(), fmt.Sprint(classCounts[cl]), stats.Percent(classCounts[cl], total)})
	}
	fmt.Println(stats.RenderTable(rows))
	fmt.Printf("floodfill: %d (%s)\n", ff, stats.Percent(ff, total))
	fmt.Printf("reachable: %d (%s)\n", reachable, stats.Percent(reachable, total))
	fmt.Printf("unknown-IP: %d (firewalled %d, hidden %d)\n", unknown, firewalled, hidden)
	fmt.Printf("unresolved addresses: %d\n\n", unresolved)

	top := countries.Top(10)
	rows = [][]string{{"country", "addresses"}}
	for _, kv := range top {
		rows = append(rows, []string{kv.Key, fmt.Sprint(kv.Count)})
	}
	fmt.Println(stats.RenderTable(rows))
}
