// Command i2pnetdb inspects a netDb snapshot directory of routerInfo-*.dat
// files (as written by the measurement harness or by `i2pmeasure
// -snapshot-dir`), printing the record inventory: capacity flags,
// floodfill share, unknown-IP classification and geographic mix.
//
// Usage:
//
//	i2pnetdb [-workers 0] DIR
//
// The per-record inventory fans out across -workers goroutines (default:
// one per CPU) and Ctrl-C aborts the scan cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/geo"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/stats"
)

// inventory is the aggregate of one shard of RouterInfos; shards merge
// commutatively, so the sharded scan matches a serial one exactly.
type inventory struct {
	classCounts                        map[netdb.BandwidthClass]int
	ff, reachable, unknown, firewalled int
	hidden, unresolved                 int
	countries                          *stats.Counter
}

func newInventory() *inventory {
	return &inventory{
		classCounts: map[netdb.BandwidthClass]int{},
		countries:   stats.NewCounter(),
	}
}

func (inv *inventory) add(db *geo.DB, ri *netdb.RouterInfo) {
	for _, cl := range ri.Caps.PublishedClasses() {
		inv.classCounts[cl]++
	}
	if ri.Caps.Floodfill {
		inv.ff++
	}
	if ri.Caps.Reachable {
		inv.reachable++
	}
	if ri.UnknownIP() {
		inv.unknown++
	}
	if ri.Firewalled() {
		inv.firewalled++
	}
	if ri.HiddenPeer() {
		inv.hidden++
	}
	for _, addr := range ri.IPs() {
		if rec, ok := db.Lookup(addr); ok {
			inv.countries.Inc(rec.CountryCode)
		} else {
			inv.unresolved++
		}
	}
}

func (inv *inventory) merge(other *inventory) {
	for cl, n := range other.classCounts {
		inv.classCounts[cl] += n
	}
	inv.ff += other.ff
	inv.reachable += other.reachable
	inv.unknown += other.unknown
	inv.firewalled += other.firewalled
	inv.hidden += other.hidden
	inv.unresolved += other.unresolved
	inv.countries.Merge(other.countries)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("i2pnetdb: ")
	workers := flag.Int("workers", 0, "inventory concurrency (0 = one worker per CPU)")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: i2pnetdb [-workers N] DIR")
	}
	dir := flag.Arg(0)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	store := netdb.NewStore(false)
	loaded, err := store.LoadDir(dir, time.Now().UTC())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d RouterInfos from %s\n\n", loaded, dir)

	inv, err := scan(ctx, store.RouterInfos(), *workers)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			log.Fatal("interrupted")
		}
		log.Fatal(err)
	}

	total := store.RouterCount()
	rows := [][]string{{"class", "records", "share"}}
	for _, cl := range netdb.BandwidthClasses {
		rows = append(rows, []string{cl.String(), fmt.Sprint(inv.classCounts[cl]), stats.Percent(inv.classCounts[cl], total)})
	}
	fmt.Println(stats.RenderTable(rows))
	fmt.Printf("floodfill: %d (%s)\n", inv.ff, stats.Percent(inv.ff, total))
	fmt.Printf("reachable: %d (%s)\n", inv.reachable, stats.Percent(inv.reachable, total))
	fmt.Printf("unknown-IP: %d (firewalled %d, hidden %d)\n", inv.unknown, inv.firewalled, inv.hidden)
	fmt.Printf("unresolved addresses: %d\n\n", inv.unresolved)

	top := inv.countries.Top(10)
	rows = [][]string{{"country", "addresses"}}
	for _, kv := range top {
		rows = append(rows, []string{kv.Key, fmt.Sprint(kv.Count)})
	}
	fmt.Println(stats.RenderTable(rows))
}

// scan aggregates the inventory across a worker pool, one shard per
// worker, honoring ctx cancellation between records.
func scan(ctx context.Context, ris []*netdb.RouterInfo, workers int) (*inventory, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ris) {
		workers = len(ris)
	}
	if workers < 1 {
		workers = 1
	}
	db := geo.NewDB()
	parts := make([]*inventory, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := newInventory()
			for i := w; i < len(ris); i += workers {
				if ctx.Err() != nil {
					break
				}
				part.add(db, ris[i])
			}
			parts[w] = part
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	inv := newInventory()
	for _, part := range parts {
		inv.merge(part)
	}
	return inv, nil
}
