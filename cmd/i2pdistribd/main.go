// Command i2pdistribd is the resident bridge distributor: the batch
// pipeline's distrib.Backend held live behind an HTTP API. It draws one
// distribution day's pool from a simulated study network, partitions it
// across the rdsys-style frontends on the stable hashring, and serves
// per-identity deterministic handouts (moat-style JSON and signed
// i2pseeds.su3 bundles) while a reachability prober retires dead bridges
// and /metrics exports the serving instruments.
//
// Usage:
//
//	i2pdistribd [-addr :8472] [-scale 0.1] [-seed 2018] [-day 10]
//	i2pdistribd -loadgen 1000000   # in-process load run, no listener
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/censor"
	"github.com/i2pstudy/i2pstudy/internal/obs"
	"github.com/i2pstudy/i2pstudy/internal/service"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// strategies maps flag names onto candidate-pool strategies.
var strategies = map[string]censor.BridgeStrategy{
	"random":       censor.BridgeRandom,
	"newly-joined": censor.BridgeNewlyJoined,
	"firewalled":   censor.BridgeFirewalled,
	"combined":     censor.BridgeCombined,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("i2pdistribd: ")

	addr := flag.String("addr", ":8472", "listen address (host:port; :0 picks a free port)")
	scale := flag.Float64("scale", 0.1, "network scale relative to the paper's 30.5K daily peers")
	seed := flag.Uint64("seed", 2018, "simulation seed")
	days := flag.Int("days", 45, "study horizon in days")
	day := flag.Int("day", 10, "distribution day the pool is drawn on")
	strategy := flag.String("strategy", "combined", "bridge pool strategy: random, newly-joined, firewalled, combined")
	maxResources := flag.Int("max-resources", 200, "backend pool cap")
	rate := flag.Float64("rate", 5, "per-identity requests per second (0 disables rate limiting)")
	burst := flag.Int("burst", 4, "per-identity token-bucket burst")
	probeInterval := flag.Duration("probe-interval", 30*time.Second, "reachability probe period")
	failLimit := flag.Int("fail-limit", 3, "consecutive probe failures before a bridge retires")
	loadgen := flag.Int("loadgen", 0, "run an in-process load generation with this many distinct identities, print JSON and exit")
	loadWorkers := flag.Int("loadgen-workers", 0, "loadgen concurrency (0 = one per CPU)")
	debugAddr := flag.String("debug-addr", "", "optional debug listener (host:port) serving net/http/pprof and expvar; keep it off public interfaces")
	flag.Parse()

	strat, ok := strategies[*strategy]
	if !ok {
		log.Fatalf("unknown strategy %q (want one of: %s)", *strategy, strings.Join(strategyNames(), ", "))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Enable counting before the network and pool are built so even the
	// construction-time engine work (observer memos, pool draws) lands on
	// the registry /metrics serves.
	reg := obs.NewRegistry()
	obs.Enable(reg)

	network, err := sim.New(sim.Config{
		Seed:             *seed,
		Days:             *days,
		TargetDailyPeers: int(*scale * 30500),
	})
	if err != nil {
		log.Fatal(err)
	}
	svc, err := service.NewService(network, service.Config{
		Day:           *day,
		Strategy:      strat,
		MaxResources:  *maxResources,
		Seed:          *seed,
		RatePerSec:    *rate,
		Burst:         *burst,
		ProbeInterval: *probeInterval,
		FailLimit:     *failLimit,
		Registry:      reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("pool: %d bridges on day %d (strategy %s, seed %d)",
		svc.Backend().PoolSize(), *day, *strategy, *seed)

	if *loadgen > 0 {
		res, err := svc.LoadGen(ctx, service.LoadGenConfig{
			Identities: *loadgen,
			Workers:    *loadWorkers,
		})
		if err != nil {
			log.Fatal(err)
		}
		out, _ := json.MarshalIndent(res, "", "  ")
		fmt.Println(string(out))
		if res.Mismatches > 0 || res.Errors > 0 {
			log.Fatalf("loadgen: %d errors, %d determinism mismatches", res.Errors, res.Mismatches)
		}
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The smoke job greps this exact line to learn the bound port.
	fmt.Printf("listening on %s\n", ln.Addr())

	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("debug listening on %s\n", dln.Addr())
		debugSrv = &http.Server{Handler: debugMux()}
		go func() {
			if err := debugSrv.Serve(dln); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug server: %v", err)
			}
		}()
	}

	srv := &http.Server{Handler: svc.Handler()}
	proberDone := make(chan struct{})
	go func() {
		defer close(proberDone)
		_ = svc.RunProber(ctx)
	}()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatal(err)
		}
		if debugSrv != nil {
			_ = debugSrv.Shutdown(shutdownCtx)
		}
		<-proberDone
		log.Print("shut down cleanly")
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}

// debugMux is the opt-in -debug-addr surface: the standard pprof index
// (heap, goroutine, block, mutex, 30s CPU captures) plus expvar. Built
// by hand instead of importing the packages for their DefaultServeMux
// side effects, so the main listener never exposes profiling routes.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

func strategyNames() []string {
	names := make([]string, 0, len(strategies))
	for name := range strategies {
		names = append(names, name)
	}
	return names
}
