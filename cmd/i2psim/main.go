// Command i2psim builds a synthetic I2P network calibrated to the paper's
// measured marginals and prints its daily composition: population, address
// publication statuses, capacity flags, floodfill share.
//
// Usage:
//
//	i2psim [-peers 30500] [-days 90] [-seed 2018] [-day 45]
//	i2psim -experiments figure-05,figure-09 [-workers 0]
//
// With -experiments (comma-separated IDs, or "all"), the matching paper
// experiments run through the parallel campaign engine instead of the
// composition summary; Ctrl-C cancels cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/i2pstudy/i2pstudy/internal/core"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/sim"
	"github.com/i2pstudy/i2pstudy/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("i2psim: ")

	peers := flag.Int("peers", 30500, "target daily peer population")
	days := flag.Int("days", 90, "study horizon in days")
	seed := flag.Uint64("seed", 2018, "simulation seed")
	day := flag.Int("day", -1, "day to summarize (default: middle of the study)")
	experiments := flag.String("experiments", "", `comma-separated experiment IDs to run via the parallel runner, or "all"`)
	workers := flag.Int("workers", 0, "engine concurrency (0 = one worker per CPU, 1 = serial)")
	flag.Parse()

	if *experiments != "" {
		if err := runExperiments(*experiments, *peers, *days, *seed, *workers); err != nil {
			if errors.Is(err, context.Canceled) {
				log.Fatal("interrupted")
			}
			log.Fatal(err)
		}
		return
	}

	net, err := sim.New(sim.Config{Seed: *seed, Days: *days, TargetDailyPeers: *peers})
	if err != nil {
		log.Fatal(err)
	}
	d := *day
	if d < 0 {
		d = *days / 2
	}
	if d >= *days {
		log.Fatalf("day %d outside study horizon %d", d, *days)
	}

	active := net.ActivePeers(d)
	fmt.Printf("network: %d peers total across %d days (seed %d)\n", len(net.Peers), *days, *seed)
	fmt.Printf("day %d (%s): %d active peers\n\n", d, net.DayTime(d).Format("2006-01-02"), len(active))

	statusCounts := map[sim.Status]int{}
	classCounts := map[netdb.BandwidthClass]int{}
	ff, reach := 0, 0
	countries := stats.NewCounter()
	for _, idx := range active {
		p := net.Peers[idx]
		statusCounts[p.Status]++
		classCounts[p.Class]++
		if p.Floodfill {
			ff++
		}
		if p.Reachable && p.Status == sim.StatusKnownIP {
			reach++
		}
		countries.Inc(p.Country)
	}

	rows := [][]string{{"status", "peers", "share"}}
	for _, s := range []sim.Status{sim.StatusKnownIP, sim.StatusFirewalled, sim.StatusHidden, sim.StatusToggling} {
		rows = append(rows, []string{s.String(), fmt.Sprint(statusCounts[s]), stats.Percent(statusCounts[s], len(active))})
	}
	fmt.Println(stats.RenderTable(rows))

	rows = [][]string{{"class", "peers", "share"}}
	for _, cl := range netdb.BandwidthClasses {
		rows = append(rows, []string{cl.String(), fmt.Sprint(classCounts[cl]), stats.Percent(classCounts[cl], len(active))})
	}
	fmt.Println(stats.RenderTable(rows))

	fmt.Printf("floodfill routers: %d (%s)\n", ff, stats.Percent(ff, len(active)))
	fmt.Printf("reachable known-IP peers: %d\n\n", reach)

	top := countries.Top(10)
	rows = [][]string{{"country", "peers"}}
	for _, kv := range top {
		rows = append(rows, []string{kv.Key, fmt.Sprint(kv.Count)})
	}
	fmt.Println(stats.RenderTable(rows))
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "ignored arguments:", flag.Args())
	}
}

// runExperiments drives the requested paper experiments through
// core.Study.RunAll, fanning them (and the shared campaign underneath)
// across the worker pool.
func runExperiments(spec string, peers, days int, seed uint64, workers int) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	study, err := core.NewStudy(core.Options{
		Seed:             seed,
		Days:             days,
		TargetDailyPeers: peers,
		Workers:          workers,
	})
	if err != nil {
		return err
	}
	var ids []string
	if spec != "all" {
		for _, id := range strings.Split(spec, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	results, err := study.RunAll(ctx, ids...)
	if err != nil {
		return err
	}
	for _, res := range results {
		fmt.Printf("=== %s: %s\n", res.ID, res.Title)
		fmt.Println(res.Text)
	}
	return nil
}
