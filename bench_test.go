// The benchmark harness regenerates every table and figure in the paper's
// evaluation. Each BenchmarkFigureNN / BenchmarkTableNN runs the
// corresponding experiment from the registry and reports its headline
// metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation and prints paper-comparable numbers
// (scaled by Study.Scale(); see EXPERIMENTS.md for the paper-vs-measured
// record). Micro-benchmarks for the hot substrate paths (codec, routing
// keys, Kademlia selection, garlic layering, transport round trips) follow
// at the bottom.
package i2pstudy_test

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/i2pstudy/i2pstudy"
	"github.com/i2pstudy/i2pstudy/internal/censor"
	"github.com/i2pstudy/i2pstudy/internal/measure"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/sim"
	"github.com/i2pstudy/i2pstudy/internal/transport"
	"github.com/i2pstudy/i2pstudy/internal/tunnel"
)

var (
	studyOnce sync.Once
	studyVal  *i2pstudy.Study
	studyErr  error
)

// benchStudy builds the shared 1/10-scale study once. Building costs a few
// hundred milliseconds and would otherwise dominate every benchmark. In
// -short mode (CI's benchmark smoke job) the network is scaled down
// further: reported metrics shift with scale, but every code path still
// runs.
func benchStudy(b *testing.B) *i2pstudy.Study {
	b.Helper()
	studyOnce.Do(func() {
		opts := i2pstudy.DefaultOptions()
		if testing.Short() {
			opts.TargetDailyPeers = 1000
		}
		studyVal, studyErr = i2pstudy.NewStudy(opts)
		if studyErr == nil {
			// Pre-run the main campaign so dataset-backed experiments
			// measure analysis cost, not the shared campaign.
			_, studyErr = studyVal.MainDataset()
		}
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return studyVal
}

// skipIfShort guards the heaviest artifact regenerations (multi-day
// observation sweeps, blocking/eclipse Monte Carlo, live-socket crawls)
// so the -short smoke pass finishes in minutes.
func skipIfShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("heavy benchmark skipped in -short mode")
	}
}

// benchmarkExperiment runs one registry experiment per iteration and
// reports the chosen metrics from the final run.
func benchmarkExperiment(b *testing.B, id string, metrics ...string) {
	s := benchStudy(b)
	b.ResetTimer()
	var res *i2pstudy.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = s.RunExperiment(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, m := range metrics {
		v, ok := res.Metrics[m]
		if !ok {
			b.Fatalf("experiment %s lacks metric %s", id, m)
		}
		b.ReportMetric(v, m)
	}
}

func BenchmarkFigure02SingleRouterModes(b *testing.B) {
	benchmarkExperiment(b, "figure-02", "mean_daily_ff", "mean_daily_nonff", "coverage_of_actives")
}

func BenchmarkFigure03BandwidthSweep(b *testing.B) {
	skipIfShort(b)
	benchmarkExperiment(b, "figure-03", "ff_advantage_at_128", "nonff_advantage_at_5mb", "union_spread_ratio")
}

func BenchmarkFigure04RouterScaling(b *testing.B) {
	skipIfShort(b)
	benchmarkExperiment(b, "figure-04", "share_at_20", "share_at_1", "total_at_40")
}

func BenchmarkFigure05PopulationTimeline(b *testing.B) {
	benchmarkExperiment(b, "figure-05", "mean_daily_peers", "mean_daily_ips", "mean_daily_ipv6")
}

func BenchmarkFigure06UnknownIPPeers(b *testing.B) {
	benchmarkExperiment(b, "figure-06", "mean_daily_unknown", "mean_daily_firewalled", "mean_daily_hidden", "mean_daily_overlap")
}

func BenchmarkFigure07ChurnLongevity(b *testing.B) {
	benchmarkExperiment(b, "figure-07", "continuous_7d", "intermittent_7d", "continuous_30d", "intermittent_30d")
}

func BenchmarkFigure08IPChurnHistogram(b *testing.B) {
	benchmarkExperiment(b, "figure-08", "single_ip_pct", "multi_ip_pct", "over100_ip_pct")
}

func BenchmarkFigure09CapacityDistribution(b *testing.B) {
	benchmarkExperiment(b, "figure-09", "mean_daily_L", "mean_daily_N", "mean_daily_P", "mean_daily_X")
}

func BenchmarkTable01BandwidthGroups(b *testing.B) {
	benchmarkExperiment(b, "table-01", "floodfill_N_pct", "floodfill_L_pct", "total_L_pct", "total_N_pct")
}

func BenchmarkEstimateFloodfillPopulation(b *testing.B) {
	benchmarkExperiment(b, "estimate-floodfill", "floodfill_share", "qualified_share", "estimate_vs_actual")
}

func BenchmarkFigure10CountryDistribution(b *testing.B) {
	benchmarkExperiment(b, "figure-10", "big6_share_pct", "top20_share_pct", "censored_countries")
}

func BenchmarkFigure11ASDistribution(b *testing.B) {
	benchmarkExperiment(b, "figure-11", "as7922_peers", "top20_share_pct")
}

func BenchmarkFigure12ASChurn(b *testing.B) {
	benchmarkExperiment(b, "figure-12", "single_as_pct", "over10_as_pct", "max_ases")
}

func BenchmarkFigure13BlockingRates(b *testing.B) {
	skipIfShort(b)
	benchmarkExperiment(b, "figure-13",
		"rate_2routers_1day", "rate_6routers_1day", "rate_20routers_1day",
		"rate_10routers_5day", "rate_20routers_30day")
}

func BenchmarkFigure14UsabilityUnderBlocking(b *testing.B) {
	skipIfShort(b)
	benchmarkExperiment(b, "figure-14",
		"load_unblocked_s", "load_65_s", "timeout_65_pct", "timeout_95_pct")
}

func BenchmarkReseedBlocking(b *testing.B) {
	benchmarkExperiment(b, "reseed-blocking", "bootstrap_records", "blocked_bootstrap_fail", "manual_records")
}

func BenchmarkBridgeStrategies(b *testing.B) {
	skipIfShort(b)
	benchmarkExperiment(b, "bridge-strategies",
		"random_initial", "random_final",
		"newly-joined_initial", "newly-joined_final",
		"firewalled_initial", "firewalled_final")
}

func BenchmarkDPIFingerprinting(b *testing.B) {
	skipIfShort(b)
	benchmarkExperiment(b, "dpi-fingerprinting", "ntcp_detection_rate", "ntcp2_detection_rate")
}

func BenchmarkPortBlockingCollateral(b *testing.B) {
	benchmarkExperiment(b, "port-blocking",
		"i2p_blocked_pct", "collateral_pct", "webrtc_collateral_pct")
}

func BenchmarkEclipseAttack(b *testing.B) {
	skipIfShort(b)
	benchmarkExperiment(b, "eclipse-attack",
		"attacker_share_2routers", "attacker_share_20routers")
}

func BenchmarkBridgeDistribution(b *testing.B) {
	skipIfShort(b)
	benchmarkExperiment(b, "bridge-distribution",
		"https_crawler_bootstrap_final", "https_crawler_enumerated_final",
		"manual-reseed_crawler_enumerated_final", "manual-reseed_insider_enumerated_final")
}

func BenchmarkDistributionEnumeration(b *testing.B) {
	skipIfShort(b)
	benchmarkExperiment(b, "distribution-enumeration",
		"https_crawler_days_to_half", "https_crawler_bootstrap_final",
		"social_crawler_bootstrap_final")
}

func BenchmarkAblationObserverModeMix(b *testing.B) {
	benchmarkExperiment(b, "ablation-observer-mix", "all_ff", "all_nonff", "mixed")
}

func BenchmarkAblationFloodFanout(b *testing.B) {
	benchmarkExperiment(b, "ablation-flood-fanout",
		"replicas_fanout_1", "replicas_fanout_3", "replicas_fanout_8")
}

// benchmarkMainCampaign measures one 4-observer, 10-day campaign run at
// the given engine width (the shared dataset used by Figures 5-12 is
// cached; this one is not).
func benchmarkMainCampaign(b *testing.B, workers int) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := measure.NewCampaign(s.Net, measure.CampaignConfig{
			Observers: measure.DefaultObserverFleet(4),
			StartDay:  0,
			EndDay:    10,
			Workers:   workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		ds, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		if ds.TotalPeers() == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkMainCampaign is the serial reference; BenchmarkMainCampaignParallel
// runs the same campaign with one worker per CPU. The ratio between the
// two is the engine's speedup on this machine (1.0 on a single core).
func BenchmarkMainCampaign(b *testing.B)         { benchmarkMainCampaign(b, 1) }
func BenchmarkMainCampaignParallel(b *testing.B) { benchmarkMainCampaign(b, 0) }

// benchmarkAdversarySweep measures the Figure 13 adversary sweep (the
// censor engine's hot path: 20 monitoring routers x a 30-day blacklist
// tail of captures, folded into five window series) at the given engine
// width. In -short mode the shared study is scaled down but the pair
// still runs, so the CI bench smoke exercises the sweep engine; the
// focused serial/parallel trajectory pair lives in internal/censor and
// feeds BENCH_censor.json via scripts/bench.sh, and the rolling-window
// engine's rolling-vs-from-scratch trio (BenchmarkSweepRolling*,
// BenchmarkSweepFromScratchSerial) feeds BENCH_rolling.json from the
// same package.
func benchmarkAdversarySweep(b *testing.B, workers int) {
	s := benchStudy(b)
	day := s.Opts.Days - 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := censor.Figure13Context(context.Background(), s.Net, 20, []int{1, 5, 10, 20, 30}, day, 700, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) != 5 {
			b.Fatal("wrong series count")
		}
	}
}

func BenchmarkAdversarySweepSerial(b *testing.B)   { benchmarkAdversarySweep(b, 1) }
func BenchmarkAdversarySweepParallel(b *testing.B) { benchmarkAdversarySweep(b, 0) }

// --- substrate micro-benchmarks ---

func benchRouterInfo() *netdb.RouterInfo {
	return &netdb.RouterInfo{
		Identity:  netdb.HashFromUint64(1),
		Published: time.Unix(1517443200, 0).UTC(),
		Caps:      netdb.NewCaps(300, true, true),
		Version:   "0.9.34",
		Addresses: []netdb.RouterAddress{{
			Transport: netdb.TransportNTCP,
			Addr:      netip.MustParseAddr("203.0.113.5"),
			Port:      12345,
		}},
		Options: map[string]string{"netdb.knownRouters": "2500"},
	}
}

func BenchmarkRouterInfoEncode(b *testing.B) {
	ri := benchRouterInfo()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ri.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouterInfoDecode(b *testing.B) {
	data, err := benchRouterInfo().Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := netdb.DecodeRouterInfo(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoutingKey(b *testing.B) {
	h := netdb.HashFromUint64(42)
	at := time.Unix(1517443200, 0).UTC()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.RoutingKey(at)
	}
}

func BenchmarkClosestTo(b *testing.B) {
	cands := make([]netdb.Hash, 1000)
	for i := range cands {
		cands[i] = netdb.HashFromUint64(uint64(i + 1))
	}
	target := netdb.HashFromUint64(99999)
	at := time.Unix(1517443200, 0).UTC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = netdb.ClosestTo(target, cands, 8, at)
	}
}

func BenchmarkGarlicWrapTraverse(b *testing.B) {
	tn := &tunnel.Tunnel{
		ID:   7,
		Hops: []netdb.Hash{netdb.HashFromUint64(1), netdb.HashFromUint64(2), netdb.HashFromUint64(3)},
	}
	payload := make([]byte, 4096)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wrapped := tunnel.WrapLayers(tn, payload)
		if _, err := tunnel.TraverseTunnel(tn, wrapped); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransportRoundTrip measures authenticated message round trips
// over a real loopback TCP connection with the NTCP-style framing.
func BenchmarkTransportRoundTrip(b *testing.B) {
	cfg := transport.Config{
		Variant:          transport.VariantNTCP,
		RouterHash:       netdb.HashFromUint64(7),
		HandshakeTimeout: 5 * time.Second,
	}
	l, err := transport.Listen("tcp", "127.0.0.1:0", cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	errCh := make(chan error, 1)
	go func() {
		srv, err := l.Accept()
		if err != nil {
			errCh <- err
			return
		}
		defer srv.Close()
		for {
			msg, err := srv.ReadMessage()
			if err != nil {
				errCh <- nil
				return
			}
			if err := srv.WriteMessage(msg); err != nil {
				errCh <- err
				return
			}
		}
	}()
	client, err := transport.Dial("tcp", l.Addr().String(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	payload := make([]byte, 1024)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.WriteMessage(payload); err != nil {
			b.Fatal(err)
		}
		if _, err := client.ReadMessage(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	client.Close()
	if err := <-errCh; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkObserveDay measures one observer-day over the shared network.
func BenchmarkObserveDay(b *testing.B) {
	s := benchStudy(b)
	o := s.Net.NewObserver(sim.ObserverConfig{
		Name:       "bench",
		Floodfill:  true,
		SharedKBps: sim.MaxSharedKBps,
		Seed:       4242,
	})
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += len(o.ObserveDay(i % s.Net.Days()))
	}
	if total == 0 {
		b.Fatal("observer saw nothing")
	}
}
