// Command obssnap runs one small instrumented adversary sweep and
// prints scheduler/cache counter totals as "key value" lines:
//
//	engine_tasks_total 602
//	engine_steals_total 3
//	cache_hits_total 120
//	...
//
// scripts/bench.sh splices these into the BENCH_*.json trajectories so
// the steal rate and cache hit traffic are tracked alongside ns/op —
// the counters explain a perf move (a splits spike, a cold cache) that
// the timing numbers alone only show. Worker width follows GOMAXPROCS,
// matching how the bench jobs pin cores.
//
// With -campaign the tool instead runs one streaming measurement
// campaign and prints its memory accounting: the measure_* retained-unit
// gauges and eviction counter from the obs registry, the campaign grid
// size, and the process's peak RSS. scripts/stream_smoke.sh asserts the
// bounded-memory contract against these lines, and bench.sh splices
// them into BENCH_campaign.json.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"syscall"

	"github.com/i2pstudy/i2pstudy/internal/core"
	"github.com/i2pstudy/i2pstudy/internal/measure"
	"github.com/i2pstudy/i2pstudy/internal/obs"
	"github.com/i2pstudy/i2pstudy/internal/obs/promtest"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("obssnap: ")

	scale := flag.Float64("scale", 0.02, "network scale for the snapshot sweep")
	seed := flag.Uint64("seed", 2018, "simulation seed")
	days := flag.Int("days", 40, "study horizon in days")
	experiment := flag.String("experiment", "figure-13", "experiment driving the counters")
	campaign := flag.Bool("campaign", false, "snapshot the streaming campaign's memory accounting instead of sweep counters")
	workers := flag.Int("workers", 4, "campaign engine width for -campaign")
	checkpointDir := flag.String("checkpoint-dir", "", "campaign checkpoint directory for -campaign (also the eviction spill target)")
	flag.Parse()

	reg := obs.NewRegistry()
	obs.Enable(reg)

	if *campaign {
		runCampaign(reg, *scale, *seed, *days, *workers, *checkpointDir)
		return
	}

	opts := core.DefaultOptions()
	opts.Seed = *seed
	opts.Days = *days
	opts.TargetDailyPeers = int(*scale * 30500)
	study, err := core.NewStudy(opts)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := study.RunAll(context.Background(), *experiment); err != nil {
		log.Fatal(err)
	}

	fams, err := promtest.Parse(reg.RenderText())
	if err != nil {
		log.Fatal(err)
	}
	var lines []string
	for _, f := range fams {
		// Only the counter totals go into the trajectories; keys drop
		// the i2p_ prefix to read as plain JSON field names.
		if f.Type != "counter" || !strings.HasPrefix(f.Name, "i2p_") {
			continue
		}
		var total float64
		for _, s := range f.Samples {
			total += s.Value
		}
		lines = append(lines, fmt.Sprintf("%s %d", strings.TrimPrefix(f.Name, "i2p_"), int64(total)))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}

// runCampaign runs one streaming campaign and prints its memory
// accounting as "key value" lines. The gauge/counter values come from
// the obs registry — the same families an operator would scrape — so
// the smoke script exercises the wiring end to end; the grid size and
// peak RSS frame them.
func runCampaign(reg *obs.Registry, scale float64, seed uint64, days, workers int, checkpointDir string) {
	n, err := core.NewStudy(core.Options{
		Seed:             seed,
		Days:             days,
		TargetDailyPeers: int(scale * 30500),
		MainFleetSize:    8,
	})
	if err != nil {
		log.Fatal(err)
	}
	c, err := measure.NewCampaign(n.Net, measure.CampaignConfig{
		Observers:     measure.DefaultObserverFleet(8),
		StartDay:      0,
		EndDay:        days,
		Workers:       workers,
		CheckpointDir: checkpointDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := c.RunContext(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if ds.TotalPeers() == 0 {
		log.Fatal("campaign observed nothing")
	}

	fams, err := promtest.Parse(reg.RenderText())
	if err != nil {
		log.Fatal(err)
	}
	var lines []string
	for _, f := range fams {
		if !strings.HasPrefix(f.Name, "i2p_measure_") {
			continue
		}
		var total float64
		for _, s := range f.Samples {
			total += s.Value
		}
		lines = append(lines, fmt.Sprintf("%s %d", strings.TrimPrefix(f.Name, "i2p_"), int64(total)))
	}
	lines = append(lines, fmt.Sprintf("campaign_days %d", days))
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err == nil {
		// Linux reports ru_maxrss in KB.
		lines = append(lines, fmt.Sprintf("campaign_peak_rss_kb %d", ru.Maxrss))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}
