// Command obssnap runs one small instrumented adversary sweep and
// prints scheduler/cache counter totals as "key value" lines:
//
//	engine_tasks_total 602
//	engine_steals_total 3
//	cache_hits_total 120
//	...
//
// scripts/bench.sh splices these into the BENCH_*.json trajectories so
// the steal rate and cache hit traffic are tracked alongside ns/op —
// the counters explain a perf move (a splits spike, a cold cache) that
// the timing numbers alone only show. Worker width follows GOMAXPROCS,
// matching how the bench jobs pin cores.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"github.com/i2pstudy/i2pstudy/internal/core"
	"github.com/i2pstudy/i2pstudy/internal/obs"
	"github.com/i2pstudy/i2pstudy/internal/obs/promtest"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("obssnap: ")

	scale := flag.Float64("scale", 0.02, "network scale for the snapshot sweep")
	seed := flag.Uint64("seed", 2018, "simulation seed")
	days := flag.Int("days", 40, "study horizon in days")
	experiment := flag.String("experiment", "figure-13", "experiment driving the counters")
	flag.Parse()

	reg := obs.NewRegistry()
	obs.Enable(reg)

	opts := core.DefaultOptions()
	opts.Seed = *seed
	opts.Days = *days
	opts.TargetDailyPeers = int(*scale * 30500)
	study, err := core.NewStudy(opts)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := study.RunAll(context.Background(), *experiment); err != nil {
		log.Fatal(err)
	}

	fams, err := promtest.Parse(reg.RenderText())
	if err != nil {
		log.Fatal(err)
	}
	var lines []string
	for _, f := range fams {
		// Only the counter totals go into the trajectories; keys drop
		// the i2p_ prefix to read as plain JSON field names.
		if f.Type != "counter" || !strings.HasPrefix(f.Name, "i2p_") {
			continue
		}
		var total float64
		for _, s := range f.Samples {
			total += s.Value
		}
		lines = append(lines, fmt.Sprintf("%s %d", strings.TrimPrefix(f.Name, "i2p_"), int64(total)))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}
