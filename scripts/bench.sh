#!/usr/bin/env bash
# bench.sh — engine perf trajectories.
#
# Runs the serial and parallel benchmark pairs for the three engines and
# writes one JSON file per pair, so CI (and future PRs) can track their
# scaling over time:
#
#   BENCH_campaign.json — measure.Campaign (the Section 5 pipeline)
#   BENCH_censor.json   — the Figure 13 adversary sweep (Sections 6-7)
#   BENCH_distrib.json  — the bridge-distribution arms-race sweep
#
# Usage:
#
#   ./scripts/bench.sh [campaign.json [censor.json [distrib.json]]]
#
# The speedups are hardware-relative: ~1.0 on a single core, >= 2x
# expected at 4 cores (per-(day, observer) captures and sweep cells are
# independent).
set -euo pipefail
cd "$(dirname "$0")/.."

campaign_out="${1:-BENCH_campaign.json}"
censor_out="${2:-BENCH_censor.json}"
distrib_out="${3:-BENCH_distrib.json}"
benchtime="${BENCHTIME:-3x}"

cores="$(go env GOMAXPROCS 2>/dev/null || echo 0)"
[ "$cores" -gt 0 ] 2>/dev/null || cores="$(getconf _NPROCESSORS_ONLN)"

# run_pair PKG REGEX SERIAL_NAME PARALLEL_NAME LABEL OUT
run_pair() {
  local pkg="$1" regex="$2" serial_name="$3" parallel_name="$4" label="$5" out="$6"
  local raw serial parallel
  raw="$(go test "$pkg" -run '^$' -bench "$regex" -benchtime="$benchtime")"
  echo "$raw"

  serial="$(echo "$raw" | awk -v n="$serial_name" '$1 ~ "^"n {print $3}')"
  parallel="$(echo "$raw" | awk -v n="$parallel_name" '$1 ~ "^"n {print $3}')"
  if [ -z "$serial" ] || [ -z "$parallel" ]; then
    echo "bench.sh: failed to parse $label benchmark output" >&2
    exit 1
  fi

  awk -v serial="$serial" -v parallel="$parallel" -v cores="$cores" -v label="$label" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"%s\",\n", label
    printf "  \"serial_ns_per_op\": %d,\n", serial
    printf "  \"parallel_ns_per_op\": %d,\n", parallel
    printf "  \"speedup\": %.3f,\n", serial / parallel
    printf "  \"cores\": %d\n", cores
    printf "}\n"
  }' > "$out"

  echo "wrote $out:"
  cat "$out"
}

run_pair ./internal/measure/ 'BenchmarkCampaign(Serial|Parallel)$' \
  BenchmarkCampaignSerial BenchmarkCampaignParallel campaign-engine "$campaign_out"

run_pair ./internal/censor/ 'BenchmarkFigure13Sweep(Serial|Parallel)$' \
  BenchmarkFigure13SweepSerial BenchmarkFigure13SweepParallel censor-sweep-engine "$censor_out"

run_pair ./internal/distrib/ 'BenchmarkDistribSweep(Serial|Parallel)$' \
  BenchmarkDistribSweepSerial BenchmarkDistribSweepParallel distrib-sweep-engine "$distrib_out"
