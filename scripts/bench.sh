#!/usr/bin/env bash
# bench.sh — campaign-engine perf trajectory.
#
# Runs the serial and parallel campaign benchmarks and writes
# BENCH_campaign.json with their ns/op plus the parallel speedup, so CI
# (and future PRs) can track the engine's scaling over time. Usage:
#
#   ./scripts/bench.sh [output.json]
#
# The speedup is hardware-relative: ~1.0 on a single core, >= 2x expected
# at 4 cores (the per-(day, observer) captures are independent).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_campaign.json}"
benchtime="${BENCHTIME:-3x}"

raw="$(go test ./internal/measure/ -run '^$' \
  -bench 'BenchmarkCampaign(Serial|Parallel)$' -benchtime="$benchtime")"
echo "$raw"

serial="$(echo "$raw" | awk '/^BenchmarkCampaignSerial/   {print $3}')"
parallel="$(echo "$raw" | awk '/^BenchmarkCampaignParallel/ {print $3}')"
if [ -z "$serial" ] || [ -z "$parallel" ]; then
  echo "bench.sh: failed to parse benchmark output" >&2
  exit 1
fi

cores="$(go env GOMAXPROCS 2>/dev/null || echo 0)"
[ "$cores" -gt 0 ] 2>/dev/null || cores="$(getconf _NPROCESSORS_ONLN)"

awk -v serial="$serial" -v parallel="$parallel" -v cores="$cores" 'BEGIN {
  printf "{\n"
  printf "  \"benchmark\": \"campaign-engine\",\n"
  printf "  \"serial_ns_per_op\": %d,\n", serial
  printf "  \"parallel_ns_per_op\": %d,\n", parallel
  printf "  \"speedup\": %.3f,\n", serial / parallel
  printf "  \"cores\": %d\n", cores
  printf "}\n"
}' > "$out"

echo "wrote $out:"
cat "$out"
