#!/usr/bin/env bash
# bench.sh — engine perf trajectories.
#
# Runs the benchmark pairs for the engines and writes one JSON file per
# pair, so CI (and future PRs) can track their scaling over time:
#
#   BENCH_campaign.json — measure.Campaign (the Section 5 pipeline)
#   BENCH_censor.json   — the Figure 13 adversary sweep (Sections 6-7)
#   BENCH_distrib.json  — the bridge-distribution arms-race sweep
#   BENCH_rolling.json  — the rolling-window adversary engine vs the
#                         pre-rolling from-scratch fold (30 days x 4
#                         windows x 4 fleets)
#   BENCH_trust.json    — the trust-graph (Salmon-style) row engine:
#                         3 frontends x 3 enumerators x 16-day horizon,
#                         rows = (frontend x enumerator) combinations
#                         (days within a row are inherently sequential,
#                         so rows are the parallelism grain)
#   BENCH_service.json  — the resident distributor daemon
#                         (cmd/i2pdistribd): the handout benchmark pair
#                         plus a load generation of SERVICE_IDENTITIES
#                         (default 1M) distinct identities through the
#                         real handler stack, reporting requests/sec and
#                         p99 latency
#
# Usage:
#
#   ./scripts/bench.sh [campaign.json [censor.json [distrib.json [rolling.json [trust.json [service.json]]]]]]
#
# Refresh procedure for the committed baselines: run this script from
# the repo root on an idle machine (BENCHTIME=3x default; raise it for
# steadier numbers), eyeball the speedups, and commit the regenerated
# BENCH_*.json next to the code change that moved them. For multicore
# baselines pin the pool explicitly — GOMAXPROCS=4 ./scripts/bench.sh —
# so the recorded "cores" field names the width the numbers were taken
# at; bench_compare.sh only ever compares files with matching cores.
# CI re-runs the script on every push and warns — never fails — via
# scripts/bench_compare.sh when a fresh number regresses against the
# committed baseline, so the baselines are a trajectory, not a gate.
#
# The serial/parallel speedups are hardware-relative: ~1.0 on a single
# core, >= 2x expected at 4 cores (per-(day, observer) captures and
# sweep cells/rows are independent). The rolling-vs-scratch speedup is
# algorithmic and should hold on any hardware (>= 2x on the acceptance
# grid).
set -euo pipefail
cd "$(dirname "$0")/.."

campaign_out="${1:-BENCH_campaign.json}"
censor_out="${2:-BENCH_censor.json}"
distrib_out="${3:-BENCH_distrib.json}"
rolling_out="${4:-BENCH_rolling.json}"
trust_out="${5:-BENCH_trust.json}"
service_out="${6:-BENCH_service.json}"
benchtime="${BENCHTIME:-3x}"

# The recorded core count is what the benchmarks actually ran on: a
# GOMAXPROCS pin (how CI distinguishes its 1-core and 4-core smoke
# jobs) wins over the machine's online-CPU count.
cores="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN)}"

# bench_ns RAW NAME — extract ns/op for one benchmark from go test output.
bench_ns() {
  echo "$1" | awk -v n="$2" '$1 ~ "^"n {print $3}'
}

# bench_allocs RAW NAME — extract allocs/op (the -benchmem column) for
# one benchmark from go test output.
bench_allocs() {
  echo "$1" | awk -v n="$2" '$1 ~ "^"n {print $7}'
}

# run_pair PKG REGEX SERIAL_NAME PARALLEL_NAME LABEL OUT
run_pair() {
  local pkg="$1" regex="$2" serial_name="$3" parallel_name="$4" label="$5" out="$6"
  local raw serial parallel serial_allocs parallel_allocs
  raw="$(go test "$pkg" -run '^$' -bench "$regex" -benchtime="$benchtime" -benchmem)"
  echo "$raw"

  serial="$(bench_ns "$raw" "$serial_name")"
  parallel="$(bench_ns "$raw" "$parallel_name")"
  serial_allocs="$(bench_allocs "$raw" "$serial_name")"
  parallel_allocs="$(bench_allocs "$raw" "$parallel_name")"
  if [ -z "$serial" ] || [ -z "$parallel" ] || [ -z "$serial_allocs" ] || [ -z "$parallel_allocs" ]; then
    echo "bench.sh: failed to parse $label benchmark output" >&2
    exit 1
  fi

  awk -v serial="$serial" -v parallel="$parallel" \
    -v sa="$serial_allocs" -v pa="$parallel_allocs" \
    -v cores="$cores" -v label="$label" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"%s\",\n", label
    printf "  \"serial_ns_per_op\": %d,\n", serial
    printf "  \"parallel_ns_per_op\": %d,\n", parallel
    printf "  \"serial_allocs_per_op\": %d,\n", sa
    printf "  \"parallel_allocs_per_op\": %d,\n", pa
    printf "  \"speedup\": %.3f,\n", serial / parallel
    printf "  \"cores\": %d\n", cores
    printf "}\n"
  }' > "$out"

  echo "wrote $out:"
  cat "$out"
}

# run_rolling OUT — the rolling-engine trio: rolling serial + parallel
# plus the pre-rolling from-scratch serial reference on the same grid.
run_rolling() {
  local out="$1"
  local raw rolling_serial rolling_parallel scratch_serial rs_allocs rp_allocs
  raw="$(go test ./internal/censor/ -run '^$' \
    -bench 'BenchmarkSweep(Rolling(Serial|Parallel)|FromScratchSerial)$' \
    -benchtime="$benchtime" -benchmem)"
  echo "$raw"

  rolling_serial="$(bench_ns "$raw" BenchmarkSweepRollingSerial)"
  rolling_parallel="$(bench_ns "$raw" BenchmarkSweepRollingParallel)"
  scratch_serial="$(bench_ns "$raw" BenchmarkSweepFromScratchSerial)"
  rs_allocs="$(bench_allocs "$raw" BenchmarkSweepRollingSerial)"
  rp_allocs="$(bench_allocs "$raw" BenchmarkSweepRollingParallel)"
  if [ -z "$rolling_serial" ] || [ -z "$rolling_parallel" ] || [ -z "$scratch_serial" ] ||
    [ -z "$rs_allocs" ] || [ -z "$rp_allocs" ]; then
    echo "bench.sh: failed to parse rolling benchmark output" >&2
    exit 1
  fi

  awk -v rs="$rolling_serial" -v rp="$rolling_parallel" -v ss="$scratch_serial" \
    -v rsa="$rs_allocs" -v rpa="$rp_allocs" -v cores="$cores" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"rolling-sweep-engine\",\n"
    printf "  \"serial_ns_per_op\": %d,\n", rs
    printf "  \"parallel_ns_per_op\": %d,\n", rp
    printf "  \"scratch_serial_ns_per_op\": %d,\n", ss
    printf "  \"serial_allocs_per_op\": %d,\n", rsa
    printf "  \"parallel_allocs_per_op\": %d,\n", rpa
    printf "  \"speedup_vs_scratch\": %.3f,\n", ss / rs
    printf "  \"speedup\": %.3f,\n", rs / rp
    printf "  \"cores\": %d\n", cores
    printf "}\n"
  }' > "$out"

  echo "wrote $out:"
  cat "$out"
}

# run_service OUT — the resident daemon: the serial/parallel handout
# benchmark pair, then a full load generation through cmd/i2pdistribd
# (the ISSUE acceptance run) for requests/sec and p99 latency.
run_service() {
  local out="$1"
  local raw serial parallel serial_allocs parallel_allocs loadjson rps p99
  raw="$(go test ./internal/service/ -run '^$' \
    -bench 'BenchmarkServiceHandout(Serial|Parallel)$' -benchtime="$benchtime" -benchmem)"
  echo "$raw"

  serial="$(bench_ns "$raw" BenchmarkServiceHandoutSerial)"
  parallel="$(bench_ns "$raw" BenchmarkServiceHandoutParallel)"
  serial_allocs="$(bench_allocs "$raw" BenchmarkServiceHandoutSerial)"
  parallel_allocs="$(bench_allocs "$raw" BenchmarkServiceHandoutParallel)"
  if [ -z "$serial" ] || [ -z "$parallel" ] || [ -z "$serial_allocs" ] || [ -z "$parallel_allocs" ]; then
    echo "bench.sh: failed to parse service benchmark output" >&2
    exit 1
  fi

  loadjson="$(go run ./cmd/i2pdistribd -rate 0 \
    -scale "${SERVICE_SCALE:-0.1}" -loadgen "${SERVICE_IDENTITIES:-1000000}")"
  echo "$loadjson"
  rps="$(echo "$loadjson" | sed -n 's/.*"requests_per_sec":[[:space:]]*\([0-9.][0-9.]*\).*/\1/p')"
  p99="$(echo "$loadjson" | sed -n 's/.*"p99_latency_ns":[[:space:]]*\([0-9][0-9]*\).*/\1/p')"
  if [ -z "$rps" ] || [ -z "$p99" ]; then
    echo "bench.sh: failed to parse loadgen output" >&2
    exit 1
  fi

  awk -v serial="$serial" -v parallel="$parallel" \
    -v sa="$serial_allocs" -v pa="$parallel_allocs" \
    -v rps="$rps" -v p99="$p99" -v cores="$cores" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"distributor-service\",\n"
    printf "  \"serial_ns_per_op\": %d,\n", serial
    printf "  \"parallel_ns_per_op\": %d,\n", parallel
    printf "  \"serial_allocs_per_op\": %d,\n", sa
    printf "  \"parallel_allocs_per_op\": %d,\n", pa
    printf "  \"speedup\": %.3f,\n", serial / parallel
    printf "  \"requests_per_sec\": %.1f,\n", rps
    printf "  \"p99_latency_ns\": %d,\n", p99
    printf "  \"cores\": %d\n", cores
    printf "}\n"
  }' > "$out"

  echo "wrote $out:"
  cat "$out"
}

# snapshot_counters OUT — splice scheduler/cache counter totals from one
# small instrumented sweep (scripts/obssnap) into OUT, just before the
# "cores" field. The counters ride next to the ns/op numbers so a perf
# move comes with its explanation (steal rate up, cache gone cold);
# bench_compare.sh diffs them warn-only like every other field. The
# snapshot is run once and reused across files.
obssnap_fields=""
snapshot_counters() {
  local out="$1"
  if [ -z "$obssnap_fields" ]; then
    local snap
    snap="$(go run ./scripts/obssnap)"
    echo "$snap"
    obssnap_fields="$(echo "$snap" | awk '{printf "  \"%s\": %s,\n", $1, $2}')"
  fi
  # $(...) strips the snapshot's trailing newline, so the splice
  # re-adds it (%s\n) to keep "cores" on its own line.
  awk -v fields="$obssnap_fields" '
    /"cores":/ { printf "%s\n", fields }
    { print }
  ' "$out" > "$out.tmp" && mv "$out.tmp" "$out"
  echo "spliced counter snapshot into $out"
}

# campaign_memstats OUT — splice the streaming campaign's memory
# accounting (scripts/obssnap -campaign: retained-unit peak, evictions,
# peak RSS) into OUT, just before the "cores" field. These ride next to
# the campaign ns/op so a perf move comes with its memory story — an
# RSS jump with a flat retained-unit peak is allocator noise, a peak
# jump is a pipeline bug; bench_compare.sh diffs them warn-only.
campaign_memstats() {
  local out="$1" snap fields
  snap="$(go run ./scripts/obssnap -campaign)"
  echo "$snap"
  fields="$(echo "$snap" | awk '{printf "  \"%s\": %s,\n", $1, $2}')"
  awk -v fields="$fields" '
    /"cores":/ { printf "%s\n", fields }
    { print }
  ' "$out" > "$out.tmp" && mv "$out.tmp" "$out"
  echo "spliced campaign memstats into $out"
}

run_pair ./internal/measure/ 'BenchmarkCampaign(Serial|Parallel)$' \
  BenchmarkCampaignSerial BenchmarkCampaignParallel campaign-engine "$campaign_out"
campaign_memstats "$campaign_out"

run_pair ./internal/censor/ 'BenchmarkFigure13Sweep(Serial|Parallel)$' \
  BenchmarkFigure13SweepSerial BenchmarkFigure13SweepParallel censor-sweep-engine "$censor_out"
snapshot_counters "$censor_out"

run_pair ./internal/distrib/ 'BenchmarkDistribSweep(Serial|Parallel)$' \
  BenchmarkDistribSweepSerial BenchmarkDistribSweepParallel distrib-sweep-engine "$distrib_out"

run_pair ./internal/distrib/ 'BenchmarkTrustSweep(Serial|Parallel)$' \
  BenchmarkTrustSweepSerial BenchmarkTrustSweepParallel trust-sweep-engine "$trust_out"

run_rolling "$rolling_out"
snapshot_counters "$rolling_out"

run_service "$service_out"
