// Command tracecheck validates a Chrome trace-event JSON file written
// by the -trace flag (internal/obs.Tracer): the file must be one JSON
// array; every event needs a phase and a name; complete spans ("X")
// need non-negative timestamps and durations; and the trace must carry
// at least one real span, so an accidentally disabled tracer fails the
// check instead of passing an empty array. Prints a per-phase summary
// and exits non-zero on any violation — the CI trace-smoke gate.
//
// Usage:
//
//	tracecheck trace.json
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sort"
)

// event mirrors the subset of the trace-event format the tracer emits.
// Args stays map[string]any: span args are integers but metadata ("M")
// events carry the process/thread names as strings.
type event struct {
	Ph   string         `json:"ph"`
	Name string         `json:"name"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Args map[string]any `json:"args"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	if len(os.Args) != 2 {
		log.Fatal("usage: tracecheck trace.json")
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		log.Fatal(err)
	}
	var events []event
	if err := json.Unmarshal(data, &events); err != nil {
		log.Fatalf("%s: not a JSON event array: %v", os.Args[1], err)
	}

	var errs []string
	fail := func(i int, format string, args ...any) {
		errs = append(errs, fmt.Sprintf("event %d: %s", i, fmt.Sprintf(format, args...)))
	}
	phases := map[string]int{}
	spans := map[string]int{}
	for i, e := range events {
		phases[e.Ph]++
		switch e.Ph {
		case "X":
			spans[e.Name]++
			if e.Name == "" {
				fail(i, "span without a name")
			}
			if e.Pid == nil || e.Tid == nil {
				fail(i, "span %q missing pid/tid", e.Name)
			}
			if e.Ts == nil || *e.Ts < 0 {
				fail(i, "span %q missing or negative ts", e.Name)
			}
			if e.Dur == nil || *e.Dur < 0 {
				fail(i, "span %q missing or negative dur", e.Name)
			}
		case "i":
			if e.Name == "" {
				fail(i, "instant without a name")
			}
			if e.Ts == nil || *e.Ts < 0 {
				fail(i, "instant %q missing or negative ts", e.Name)
			}
		case "M":
			if e.Name == "" {
				fail(i, "metadata event without a name")
			}
		default:
			fail(i, "unexpected phase %q", e.Ph)
		}
	}
	if phases["X"] == 0 {
		errs = append(errs, "no complete spans: the tracer recorded nothing")
	}

	fmt.Printf("%s: %d events\n", os.Args[1], len(events))
	for _, ph := range sortedKeys(phases) {
		fmt.Printf("  phase %-2s %d\n", ph, phases[ph])
	}
	for _, name := range sortedKeys(spans) {
		fmt.Printf("  span  %-6s %d\n", name, spans[name])
	}
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "tracecheck: "+e)
		}
		os.Exit(1)
	}
	fmt.Println("ok")
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
