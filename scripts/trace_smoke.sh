#!/usr/bin/env bash
# trace_smoke.sh — end-to-end check of the -trace flag.
#
# Runs a tiny traced adversary sweep through the real CLI, then
# validates the emitted Chrome trace-event JSON with scripts/tracecheck:
# one JSON array, well-formed span/instant/metadata events, at least one
# real span. The trace file is left at $1 (default trace.json) so CI can
# upload it as an artifact — drop it into https://ui.perfetto.dev to
# eyeball the per-worker rows.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-trace.json}"

go run ./cmd/i2pcensor -scale 0.02 -days 40 -experiment figure-13 -trace "$out" > /dev/null
go run ./scripts/tracecheck "$out"
