#!/usr/bin/env bash
# service_smoke.sh — boot cmd/i2pdistribd against a small simulated
# network, exercise every endpoint once, check per-identity determinism,
# and verify graceful shutdown on SIGTERM.
#
# Usage:
#
#   ./scripts/service_smoke.sh
#
# SERVICE_SCALE overrides the network scale (default 0.02 ≈ 600 daily
# peers; the full-study default of 0.1 only slows the boot).
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${SERVICE_SCALE:-0.02}"
workdir="$(mktemp -d)"
log="$workdir/daemon.log"
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/i2pdistribd" ./cmd/i2pdistribd
"$workdir/i2pdistribd" -addr 127.0.0.1:0 -scale "$scale" >"$log" 2>&1 &
pid=$!

# The daemon prints "listening on HOST:PORT" once the listener is up.
port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$log")"
  [ -n "$port" ] && break
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.2
done
if [ -z "$port" ]; then
  echo "service_smoke: daemon never started listening" >&2
  cat "$log" >&2
  exit 1
fi
base="http://127.0.0.1:$port"

# Handout: granted JSON, byte-identical on re-request.
h1="$(curl -fsS "$base/handout?dist=https&id=smoke")"
h2="$(curl -fsS "$base/handout?dist=https&id=smoke")"
if [ "$h1" != "$h2" ]; then
  echo "service_smoke: handout not deterministic for one identity" >&2
  exit 1
fi
echo "$h1" | grep -q '"granted":true' || {
  echo "service_smoke: handout not granted: $h1" >&2
  exit 1
}

# Seed bundle, metrics, liveness.
curl -fsS -o "$workdir/seeds.su3" "$base/i2pseeds.su3?id=smoke"
[ -s "$workdir/seeds.su3" ] || { echo "service_smoke: empty seed bundle" >&2; exit 1; }
curl -fsS "$base/metrics" | grep -q 'i2pdistribd_requests_total' || {
  echo "service_smoke: /metrics missing request counters" >&2
  exit 1
}
curl -fsS "$base/healthz" | grep -q ok

# Graceful shutdown: SIGTERM drains and the daemon logs the clean exit.
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
if [ "$status" -ne 0 ]; then
  echo "service_smoke: daemon exited $status on SIGTERM" >&2
  cat "$log" >&2
  exit 1
fi
grep -q 'shut down cleanly' "$log" || {
  echo "service_smoke: missing clean-shutdown line" >&2
  cat "$log" >&2
  exit 1
}

echo "service smoke OK (port $port, scale $scale)"
