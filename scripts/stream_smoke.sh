#!/usr/bin/env bash
# stream_smoke.sh — end-to-end check of the bounded-memory streaming
# campaign: run one streaming campaign with a -checkpoint-dir (so
# evictions spill into the real checkpoint layer), then assert the
# memory accounting the engine printed:
#
#   * the peak retained-unit count stays strictly below the grid size
#     (the whole point of streaming: O(workers) resident days, not
#     O(days)) and within the structural pipeline ceiling;
#   * retain/release balance: zero units and zero resident bytes remain
#     after the run;
#   * the checkpoint directory holds every day unit, so the same
#     directory can resume the campaign.
#
# Usage:
#
#   ./scripts/stream_smoke.sh
#
# STREAM_DAYS / STREAM_WORKERS / STREAM_SCALE override the grid (default
# 40 days x 8 observers at scale 0.02, workers 4 — small enough for CI,
# big enough that a retained-mode run would hold 10x more days than the
# streaming ceiling allows).
set -euo pipefail
cd "$(dirname "$0")/.."

days="${STREAM_DAYS:-40}"
workers="${STREAM_WORKERS:-4}"
scale="${STREAM_SCALE:-0.02}"
workdir="$(mktemp -d)"
ckpt="$workdir/ckpt"
trap 'rm -rf "$workdir"' EXIT

snap="$(go run ./scripts/obssnap -campaign -days "$days" -workers "$workers" \
  -scale "$scale" -checkpoint-dir "$ckpt")"
echo "$snap"

field() {
  echo "$snap" | awk -v k="$1" '$1 == k {print $2}'
}
peak="$(field measure_retained_units_peak)"
retained="$(field measure_retained_units)"
resident="$(field measure_resident_bytes)"
grid="$(field campaign_days)"
if [ -z "$peak" ] || [ -z "$retained" ] || [ -z "$resident" ] || [ -z "$grid" ]; then
  echo "stream_smoke: missing accounting fields in obssnap output" >&2
  exit 1
fi

# The structural ceiling: one unit per capture worker between retain and
# channel send, one per channel slot, the default slack of one per
# worker, and the unit being folded (see measure.CampaignConfig.Retain).
ceiling=$((3 * workers + 1))
if [ "$peak" -lt 1 ] || [ "$peak" -gt "$ceiling" ]; then
  echo "stream_smoke: peak retained units $peak outside [1, $ceiling]" >&2
  exit 1
fi
if [ "$peak" -ge "$grid" ]; then
  echo "stream_smoke: peak retained units $peak not below the $grid-day grid" >&2
  exit 1
fi
if [ "$retained" -ne 0 ] || [ "$resident" -ne 0 ]; then
  echo "stream_smoke: accounting leak after the run (retained=$retained resident_bytes=$resident)" >&2
  exit 1
fi

# Every day must have committed a checkpoint unit (eviction spills early,
# the fold spills the rest; either way the grid resumes from here).
units="$(ls "$ckpt"/day-* 2>/dev/null | wc -l)"
if [ "$units" -ne "$grid" ]; then
  echo "stream_smoke: checkpoint dir holds $units day units, want $grid" >&2
  ls -la "$ckpt" >&2 || true
  exit 1
fi
if ls "$ckpt"/.*.tmp >/dev/null 2>&1; then
  echo "stream_smoke: staging files left behind in the checkpoint dir" >&2
  exit 1
fi

echo "stream smoke OK (peak $peak of ceiling $ceiling on a $grid-day grid, $units units committed)"
