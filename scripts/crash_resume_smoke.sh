#!/usr/bin/env bash
# crash_resume_smoke.sh — end-to-end crash drill for the checkpoint
# layer on a real binary: run cmd/i2pcensor with an injected hard exit
# (faults Exit mode, status 3), confirm the interrupted run left
# committed checkpoint units behind, confirm the directory is refused
# without -resume, resume it, and require the resumed output to be
# byte-identical to an uninterrupted reference run.
#
# Usage:
#
#   ./scripts/crash_resume_smoke.sh
#
# CENSOR_SCALE overrides the network scale (default 0.04 ≈ 1200 daily
# peers — the same size the in-process crash goldens use).
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${CENSOR_SCALE:-0.04}"
exps="reseed-blocking,port-blocking,dpi-fingerprinting"
workdir="$(mktemp -d)"
ckpt="$workdir/ckpt"
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/i2pcensor" ./cmd/i2pcensor

# Uninterrupted reference: no checkpointing involved at all.
"$workdir/i2pcensor" -scale "$scale" -experiment "$exps" >"$workdir/ref.out"

# Crash run: hard-exit after the first experiment commits its unit.
# Serial so exactly one unit is on disk when the process dies.
status=0
"$workdir/i2pcensor" -scale "$scale" -experiment "$exps" \
  -checkpoint-dir "$ckpt" -workers 1 \
  -inject core.runall.experiment:1:exit >"$workdir/crash.out" 2>&1 || status=$?
if [ "$status" -ne 3 ]; then
  echo "crash_resume_smoke: injected exit returned status $status, want 3" >&2
  cat "$workdir/crash.out" >&2
  exit 1
fi
if ! ls "$ckpt"/exp-* >/dev/null 2>&1; then
  echo "crash_resume_smoke: crashed run left no committed experiment unit in $ckpt" >&2
  ls -la "$ckpt" >&2 || true
  exit 1
fi
if ls "$ckpt"/.*.tmp >/dev/null 2>&1; then
  echo "crash_resume_smoke: crashed run left staging files behind" >&2
  ls -la "$ckpt" >&2
  exit 1
fi

# A directory holding a previous run's manifest must be refused without
# -resume: silently reusing it is how state from the wrong run leaks in.
if "$workdir/i2pcensor" -scale "$scale" -experiment "$exps" \
  -checkpoint-dir "$ckpt" >/dev/null 2>&1; then
  echo "crash_resume_smoke: existing checkpoint dir accepted without -resume" >&2
  exit 1
fi

# Resume and compare: the resumed run loads the committed unit, computes
# the rest, and must print exactly what the uninterrupted run printed.
"$workdir/i2pcensor" -scale "$scale" -experiment "$exps" \
  -checkpoint-dir "$ckpt" -resume >"$workdir/resumed.out"
if ! diff -u "$workdir/ref.out" "$workdir/resumed.out"; then
  echo "crash_resume_smoke: resumed output differs from the uninterrupted reference" >&2
  exit 1
fi

echo "crash-resume smoke OK (scale $scale, experiments $exps)"
