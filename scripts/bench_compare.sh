#!/usr/bin/env bash
# bench_compare.sh — warn-only bench-regression check.
#
# Usage:
#
#   ./scripts/bench_compare.sh BASELINE_DIR FRESH_DIR [THRESHOLD_PCT]
#
# Compares every *_ns_per_op and *_allocs_per_op field (plus the
# service's p99_latency_ns) of each BENCH_*.json present in both
# directories and prints a WARN line when the fresh value is worse than
# the baseline by more than THRESHOLD_PCT (default 25%). Comparisons are
# strictly like-for-like on the "cores" field: when baseline and fresh
# were taken at different core counts the file is SKIPped outright —
# per-op numbers and speedups from different pool widths measure
# different things, and a cross-hardware delta would only mislead.
# Always exits 0: ns/op is hardware-relative and CI runners are noisy,
# so the committed baselines are a perf trajectory to eyeball, not a
# gate. Refresh them with scripts/bench.sh (see its header) when a PR
# legitimately moves the numbers.
set -uo pipefail

base="${1:?usage: bench_compare.sh BASELINE_DIR FRESH_DIR [THRESHOLD_PCT]}"
fresh="${2:?usage: bench_compare.sh BASELINE_DIR FRESH_DIR [THRESHOLD_PCT]}"
thr="${3:-25}"

# fields FILE — emit "key value" for every compared field: *_ns_per_op,
# *_allocs_per_op, the service's p99_latency_ns, the scheduler/cache
# counter snapshots bench.sh splices in (engine_*_total, cache_*_total,
# windowcounter_*_total) — a steal-rate or cache-miss jump warns just
# like a ns/op regression, and explains it — and the streaming
# campaign's memory accounting (measure_* gauges, campaign_peak_rss_kb):
# a retained-unit-peak jump is a pipeline-bound bug, a nonzero
# end-of-run retained count is a leak, and both warn the same way.
fields() {
  sed -n -e 's/.*"\([a-z_]*ns_per_op\)":[[:space:]]*\([0-9][0-9]*\).*/\1 \2/p' \
    -e 's/.*"\([a-z_]*allocs_per_op\)":[[:space:]]*\([0-9][0-9]*\).*/\1 \2/p' \
    -e 's/.*"\(p99_latency_ns\)":[[:space:]]*\([0-9][0-9]*\).*/\1 \2/p' \
    -e 's/.*"\(engine_[a-z_]*_total\)":[[:space:]]*\([0-9][0-9]*\).*/\1 \2/p' \
    -e 's/.*"\(cache_[a-z_]*_total\)":[[:space:]]*\([0-9][0-9]*\).*/\1 \2/p' \
    -e 's/.*"\(windowcounter_[a-z_]*_total\)":[[:space:]]*\([0-9][0-9]*\).*/\1 \2/p' \
    -e 's/.*"\(measure_[a-z_]*\)":[[:space:]]*\([0-9][0-9]*\).*/\1 \2/p' \
    -e 's/.*"\(campaign_peak_rss_kb\)":[[:space:]]*\([0-9][0-9]*\).*/\1 \2/p' "$1"
}

# cores_of FILE — the core count the file's numbers were taken on.
cores_of() {
  sed -n 's/.*"cores":[[:space:]]*\([0-9][0-9]*\).*/\1/p' "$1" | head -n 1
}

warned=0
found=0
for bf in "$base"/BENCH_*.json; do
  [ -e "$bf" ] || continue
  found=1
  name="$(basename "$bf")"
  ff="$fresh/$name"
  if [ ! -f "$ff" ]; then
    echo "WARN: $name present in baseline but missing from fresh results"
    warned=1
    continue
  fi
  # Different core counts mean the per-op numbers (and especially the
  # speedups) were taken against different pool widths — a delta between
  # them is noise, not signal, so the file is skipped entirely rather
  # than compared and hedged.
  bcores="$(cores_of "$bf")"
  fcores="$(cores_of "$ff")"
  if [ -n "$bcores" ] && [ -n "$fcores" ] && [ "$bcores" != "$fcores" ]; then
    echo "SKIP: $name: cores differ (baseline $bcores, fresh $fcores); per-op numbers are only comparable like-for-like on cores"
    continue
  fi
  while read -r key bval; do
    fval="$(fields "$ff" | awk -v k="$key" '$1 == k {print $2; exit}')"
    if [ -z "$fval" ]; then
      echo "WARN: $name: field $key missing from fresh results"
      warned=1
      continue
    fi
    # A zero baseline (common for counter snapshots: no steals, no
    # evictions) has no meaningful percentage delta; any nonzero fresh
    # value still warns, flagged as "was zero".
    if awk -v b="$bval" -v f="$fval" -v t="$thr" 'BEGIN { exit !(f > b * (1 + t/100)) }'; then
      awk -v b="$bval" -v f="$fval" -v n="$name" -v k="$key" 'BEGIN {
        if (b == 0) printf "WARN: %s %s regressed: baseline 0, fresh %d\n", n, k, f
        else printf "WARN: %s %s regressed: baseline %d, fresh %d (+%.1f%%)\n", n, k, b, f, (f/b - 1) * 100
      }'
      warned=1
    else
      awk -v b="$bval" -v f="$fval" -v n="$name" -v k="$key" 'BEGIN {
        if (b == 0) printf "ok:   %s %s: baseline 0, fresh %d\n", n, k, f
        else printf "ok:   %s %s: baseline %d, fresh %d (%+.1f%%)\n", n, k, b, f, (f/b - 1) * 100
      }'
    fi
  done < <(fields "$bf")
done

if [ "$found" -eq 0 ]; then
  echo "WARN: no BENCH_*.json baselines found in $base"
fi
if [ "$warned" -ne 0 ]; then
  echo "bench_compare: regressions above ${thr}% are warnings only (hardware-relative numbers); refresh baselines via scripts/bench.sh if intended"
fi
exit 0
