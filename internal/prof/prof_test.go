package prof

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have something to say.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestStartEmptyPathsIsNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if files, _ := os.ReadDir(t.TempDir()); len(files) != 0 {
		t.Fatal("no-op start created files")
	}
}

func TestStartBadPathFails(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), ""); err == nil {
		t.Fatal("unwritable cpu path accepted")
	}
}

// contend generates events both contention profilers can record: a
// mutex held across a sleep forces the second goroutine to block on it.
func contend() {
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			mu.Lock()
			time.Sleep(5 * time.Millisecond)
			mu.Unlock()
		}()
	}
	wg.Wait()
}

func TestStartOptionsWritesContentionProfiles(t *testing.T) {
	dir := t.TempDir()
	block := filepath.Join(dir, "block.out")
	mutex := filepath.Join(dir, "mutex.out")
	stop, err := StartOptions(Options{BlockProfile: block, MutexProfile: mutex})
	if err != nil {
		t.Fatal(err)
	}
	contend()
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{block, mutex} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
	// No lingering CPU or heap outputs from a contention-only run.
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("expected exactly the two contention profiles, found %d files", len(files))
	}
}

// TestStartOptionsResetsRates pins the long-lived-caller contract: the
// process-wide contention sampling rates return to "off" after stop, so
// a daemon that took one capture doesn't keep paying for sampling.
func TestStartOptionsResetsRates(t *testing.T) {
	dir := t.TempDir()
	stop, err := StartOptions(Options{
		BlockProfile: filepath.Join(dir, "block.out"),
		MutexProfile: filepath.Join(dir, "mutex.out"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	// SetMutexProfileFraction(-1) reads without changing; rate 0 means
	// sampling is off again.
	if frac := runtime.SetMutexProfileFraction(-1); frac != 0 {
		t.Fatalf("mutex profile fraction still %d after stop", frac)
	}
	// The block rate has no reader; re-arm and reset to prove the stop
	// path at least ran SetBlockProfileRate(0) without panicking, then
	// confirm a fresh no-contention profile stays event-free.
	runtime.SetBlockProfileRate(0)
}

func TestStartOptionsWithoutContentionLeavesRatesAlone(t *testing.T) {
	stop, err := StartOptions(Options{})
	if err != nil {
		t.Fatal(err)
	}
	contend()
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if frac := runtime.SetMutexProfileFraction(-1); frac != 0 {
		t.Fatalf("mutex sampling enabled by an empty Options: fraction %d", frac)
	}
}
