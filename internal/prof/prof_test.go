package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have something to say.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestStartEmptyPathsIsNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if files, _ := os.ReadDir(t.TempDir()); len(files) != 0 {
		t.Fatal("no-op start created files")
	}
}

func TestStartBadPathFails(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), ""); err == nil {
		t.Fatal("unwritable cpu path accepted")
	}
}
