// Package prof plumbs runtime/pprof behind the -cpuprofile and
// -memprofile flags the command-line tools share, so scheduler and
// allocation work on the engines is profileable without editing code:
//
//	i2pcensor -cpuprofile cpu.out -memprofile mem.out -experiment figure-13
//	go tool pprof cpu.out
//
// The package is a thin lifecycle wrapper — profiling policy (sample
// rates, label sets) stays with the runtime defaults the pprof tooling
// expects.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath and arranges a heap profile
// at memPath; either path may be empty to skip that profile. The
// returned stop function finishes the CPU profile and writes the heap
// snapshot — call it once, on the way out (note that os.Exit and
// log.Fatal skip deferred stops, so a run that dies early loses its
// profiles, matching `go test -cpuprofile` behavior).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			// A GC beforehand folds unreachable garbage out of the
			// snapshot, so the profile shows live allocation, not
			// collection timing.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}
