// Package prof plumbs runtime/pprof behind the profiling flags the
// command-line tools share (-cpuprofile, -memprofile, -blockprofile,
// -mutexprofile), so scheduler and allocation work on the engines is
// profileable without editing code:
//
//	i2pcensor -cpuprofile cpu.out -memprofile mem.out -experiment figure-13
//	i2pmeasure -blockprofile block.out -mutexprofile mutex.out ...
//	go tool pprof cpu.out
//
// The package is a thin lifecycle wrapper — profiling policy (sample
// rates, label sets) stays with the runtime defaults the pprof tooling
// expects. The one exception is contention profiling: the block and
// mutex profilers are off by default process-wide, so StartOptions sets
// their rates only when the corresponding profile was requested, and
// resets them at stop so a long-lived caller doesn't keep paying the
// sampling cost after the capture.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Options names the profile outputs; any empty path skips that profile.
type Options struct {
	// CPUProfile receives a runtime CPU profile spanning start to stop.
	CPUProfile string
	// MemProfile receives a heap snapshot taken at stop, after a GC.
	MemProfile string
	// BlockProfile receives a blocking-contention profile at stop.
	// Requesting it sets runtime.SetBlockProfileRate(1) for the run.
	BlockProfile string
	// MutexProfile receives a mutex-contention profile at stop.
	// Requesting it sets runtime.SetMutexProfileFraction(1) for the run.
	MutexProfile string
}

// Start begins CPU profiling into cpuPath and arranges a heap profile
// at memPath. Kept as the two-profile shorthand for callers that don't
// need contention profiles; see StartOptions.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	return StartOptions(Options{CPUProfile: cpuPath, MemProfile: memPath})
}

// StartOptions starts every requested profile. The returned stop
// function finishes the CPU profile, writes the snapshot profiles and
// restores the contention-sampling rates — call it once, on the way out
// (note that os.Exit and log.Fatal skip deferred stops, so a run that
// dies early loses its profiles, matching `go test -cpuprofile`
// behavior).
func StartOptions(opts Options) (stop func() error, err error) {
	var cpuFile *os.File
	if opts.CPUProfile != "" {
		cpuFile, err = os.Create(opts.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	// Contention sampling turns on only when asked for: rate 1 records
	// every event, the right trade for a bounded batch run.
	if opts.BlockProfile != "" {
		runtime.SetBlockProfileRate(1)
	}
	if opts.MutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if opts.MemProfile != "" {
			// A GC beforehand folds unreachable garbage out of the
			// snapshot, so the profile shows live allocation, not
			// collection timing.
			runtime.GC()
			if err := writeLookup("heap", opts.MemProfile); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if opts.BlockProfile != "" {
			if err := writeLookup("block", opts.BlockProfile); err != nil && firstErr == nil {
				firstErr = err
			}
			runtime.SetBlockProfileRate(0)
		}
		if opts.MutexProfile != "" {
			if err := writeLookup("mutex", opts.MutexProfile); err != nil && firstErr == nil {
				firstErr = err
			}
			runtime.SetMutexProfileFraction(0)
		}
		return firstErr
	}, nil
}

// writeLookup snapshots one named runtime profile to path.
func writeLookup(name, path string) error {
	p := pprof.Lookup(name)
	if p == nil {
		return nil // unknown profile name: nothing to write
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
