// Package router implements individual-router behaviour that sits above
// the netdb records: identity generation, the automatic floodfill opt-in
// health tests the paper describes (Section 2.1.2: "a high-bandwidth
// router could become a floodfill router automatically after passing
// several 'health' tests, such as stability and uptime in the network,
// outbound message queue throughput, delay, and so on"), and the
// introducer tags firewalled peers publish (Section 5.1).
package router

import (
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand/v2"
	"net/netip"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

// Identity is a router's long-term identity: key material plus the hash
// that names it in the netDb. "This identifier is generated the first time
// the I2P router software is installed, and never changes throughout its
// lifetime" (Section 5.1).
type Identity struct {
	// PublicKey is the router's static X25519 public key.
	PublicKey []byte
	// Hash is SHA-256 over the public key — the netDb identity.
	Hash netdb.Hash
}

// NewIdentity generates a fresh identity from crypto/rand.
func NewIdentity() (*Identity, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("router: generate identity: %w", err)
	}
	pub := priv.PublicKey().Bytes()
	return &Identity{PublicKey: pub, Hash: netdb.HashOf(pub)}, nil
}

// PortRange is I2P's configurable port range: "I2P can run on any
// arbitrary port in the range of 9000–31000" (Section 2.2.2).
const (
	PortMin = 9000
	PortMax = 31000
)

// RandomPort draws a port from the I2P range.
func RandomPort(rng *mrand.Rand) uint16 {
	return uint16(PortMin + rng.IntN(PortMax-PortMin+1))
}

// HealthConfig holds the automatic floodfill opt-in thresholds.
type HealthConfig struct {
	// MinSharedKBps is the bandwidth floor (the netdb package's
	// FloodfillMinRateKBps, 128 KB/s).
	MinSharedKBps int
	// MinUptime is the required continuous uptime.
	MinUptime time.Duration
	// MaxQueueDelay is the largest acceptable outbound message queue
	// delay.
	MaxQueueDelay time.Duration
	// MinJobLag headroom: the router must not be CPU-starved.
	MaxJobLag time.Duration
}

// DefaultHealthConfig mirrors the Java router's floodfill eligibility
// thresholds.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{
		MinSharedKBps: netdb.FloodfillMinRateKBps,
		MinUptime:     2 * time.Hour,
		MaxQueueDelay: 2 * time.Second,
		MaxJobLag:     500 * time.Millisecond,
	}
}

// Vitals is a snapshot of the router's self-measured health.
type Vitals struct {
	SharedKBps int
	Uptime     time.Duration
	QueueDelay time.Duration
	JobLag     time.Duration
	// FirewallStatus: a firewalled router can never serve netDb queries.
	Firewalled bool
}

// FloodfillDecision explains an opt-in evaluation.
type FloodfillDecision struct {
	Eligible bool
	// Reasons lists every failed test (empty when eligible).
	Reasons []string
}

// EvaluateFloodfill runs the health tests. A router failing any test does
// not opt in automatically — although, as Section 5.3.1 found, operators
// can still force floodfill mode manually, producing the unqualified
// K/L/M-class floodfills the paper subtracts in its population estimate.
func EvaluateFloodfill(cfg HealthConfig, v Vitals) FloodfillDecision {
	var reasons []string
	if v.Firewalled {
		reasons = append(reasons, "router is firewalled")
	}
	if v.SharedKBps < cfg.MinSharedKBps {
		reasons = append(reasons, fmt.Sprintf("shared bandwidth %d KB/s below %d KB/s floor", v.SharedKBps, cfg.MinSharedKBps))
	}
	if cls := netdb.ClassForRate(v.SharedKBps); !cls.AtLeast(netdb.FloodfillMinClass) {
		reasons = append(reasons, fmt.Sprintf("bandwidth class %v below %v", cls, netdb.FloodfillMinClass))
	}
	if v.Uptime < cfg.MinUptime {
		reasons = append(reasons, fmt.Sprintf("uptime %v below %v", v.Uptime, cfg.MinUptime))
	}
	if v.QueueDelay > cfg.MaxQueueDelay {
		reasons = append(reasons, fmt.Sprintf("queue delay %v above %v", v.QueueDelay, cfg.MaxQueueDelay))
	}
	if v.JobLag > cfg.MaxJobLag {
		reasons = append(reasons, fmt.Sprintf("job lag %v above %v", v.JobLag, cfg.MaxJobLag))
	}
	return FloodfillDecision{Eligible: len(reasons) == 0, Reasons: reasons}
}

// --- introducers ---

// ErrNoIntroducers is returned when a firewalled router has no usable
// introducers to publish.
var ErrNoIntroducers = errors.New("router: no usable introducers")

// IntroducerSet manages the introduction tags a firewalled router
// publishes (Section 5.1: "an I2P peer who resides behind a firewall ...
// can choose some peers in the network to become his introducers").
type IntroducerSet struct {
	max  int
	tags map[netdb.Hash]netdb.Introducer
	next uint32
}

// NewIntroducerSet returns a set holding at most max introducers (the Java
// router uses up to 3).
func NewIntroducerSet(max int) *IntroducerSet {
	if max <= 0 {
		max = 3
	}
	return &IntroducerSet{max: max, tags: make(map[netdb.Hash]netdb.Introducer)}
}

// Add registers a reachable peer as an introducer, allocating a tag. It
// reports false when the set is full or the peer has no usable address.
func (s *IntroducerSet) Add(peer netdb.Hash, addr netip.Addr, port uint16) bool {
	if len(s.tags) >= s.max {
		return false
	}
	if !addr.IsValid() || port == 0 {
		return false
	}
	if _, dup := s.tags[peer]; dup {
		return false
	}
	s.next++
	s.tags[peer] = netdb.Introducer{Hash: peer, Tag: s.next, Addr: addr, Port: port}
	return true
}

// Remove drops an introducer (for example because it left the network).
func (s *IntroducerSet) Remove(peer netdb.Hash) bool {
	if _, ok := s.tags[peer]; !ok {
		return false
	}
	delete(s.tags, peer)
	return true
}

// Len returns the number of active introducers.
func (s *IntroducerSet) Len() int { return len(s.tags) }

// Publish returns the introducers for embedding into a RouterAddress. It
// errors when the set is empty — a firewalled router without introducers
// is unreachable and appears "hidden" to observers, which is exactly the
// toggling behaviour behind Figure 6's overlap group.
func (s *IntroducerSet) Publish() ([]netdb.Introducer, error) {
	if len(s.tags) == 0 {
		return nil, ErrNoIntroducers
	}
	out := make([]netdb.Introducer, 0, len(s.tags))
	for _, in := range s.tags {
		out = append(out, in)
	}
	return out, nil
}

// BuildFirewalledAddress assembles the SSU RouterAddress a firewalled peer
// publishes: no IP of its own, introducers attached.
func BuildFirewalledAddress(s *IntroducerSet) (netdb.RouterAddress, error) {
	intros, err := s.Publish()
	if err != nil {
		return netdb.RouterAddress{}, err
	}
	return netdb.RouterAddress{
		Transport:   netdb.TransportSSU,
		Cost:        10,
		Introducers: intros,
	}, nil
}
