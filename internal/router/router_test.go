package router

import (
	"math/rand/v2"
	"net/netip"
	"testing"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

func TestNewIdentity(t *testing.T) {
	a, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash == b.Hash {
		t.Fatal("two identities collided")
	}
	if a.Hash != netdb.HashOf(a.PublicKey) {
		t.Fatal("hash does not match public key")
	}
	if len(a.PublicKey) != 32 {
		t.Fatalf("public key length %d", len(a.PublicKey))
	}
}

func TestRandomPortRange(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 10000; i++ {
		p := RandomPort(rng)
		if p < PortMin || p > PortMax {
			t.Fatalf("port %d outside I2P range %d-%d", p, PortMin, PortMax)
		}
	}
}

func healthyVitals() Vitals {
	return Vitals{
		SharedKBps: 512,
		Uptime:     6 * time.Hour,
		QueueDelay: 100 * time.Millisecond,
		JobLag:     10 * time.Millisecond,
	}
}

func TestEvaluateFloodfillEligible(t *testing.T) {
	d := EvaluateFloodfill(DefaultHealthConfig(), healthyVitals())
	if !d.Eligible {
		t.Fatalf("healthy router rejected: %v", d.Reasons)
	}
	if len(d.Reasons) != 0 {
		t.Fatal("eligible decision carries reasons")
	}
}

func TestEvaluateFloodfillFailures(t *testing.T) {
	cfg := DefaultHealthConfig()
	cases := []struct {
		name   string
		mutate func(*Vitals)
	}{
		{"low bandwidth", func(v *Vitals) { v.SharedKBps = 64 }},
		{"bandwidth exactly below floor", func(v *Vitals) { v.SharedKBps = cfg.MinSharedKBps - 1 }},
		{"short uptime", func(v *Vitals) { v.Uptime = 30 * time.Minute }},
		{"queue backlog", func(v *Vitals) { v.QueueDelay = 10 * time.Second }},
		{"cpu starved", func(v *Vitals) { v.JobLag = 2 * time.Second }},
		{"firewalled", func(v *Vitals) { v.Firewalled = true }},
	}
	for _, c := range cases {
		v := healthyVitals()
		c.mutate(&v)
		d := EvaluateFloodfill(cfg, v)
		if d.Eligible {
			t.Errorf("%s: should be ineligible", c.name)
		}
		if len(d.Reasons) == 0 {
			t.Errorf("%s: no reasons", c.name)
		}
	}
}

// TestFloodfillFloorMatchesPaper: the minimum rate (128 KB/s) maps to at
// least class N, the paper's automatic opt-in floor.
func TestFloodfillFloorMatchesPaper(t *testing.T) {
	v := healthyVitals()
	v.SharedKBps = netdb.FloodfillMinRateKBps
	if d := EvaluateFloodfill(DefaultHealthConfig(), v); !d.Eligible {
		t.Fatalf("128 KB/s router rejected: %v", d.Reasons)
	}
}

func TestIntroducerSet(t *testing.T) {
	s := NewIntroducerSet(0) // defaults to 3
	if _, err := s.Publish(); err != ErrNoIntroducers {
		t.Fatal("empty set should refuse to publish")
	}
	addr := netip.MustParseAddr("198.51.100.10")
	if !s.Add(netdb.HashFromUint64(1), addr, 9001) {
		t.Fatal("first add failed")
	}
	if s.Add(netdb.HashFromUint64(1), addr, 9001) {
		t.Fatal("duplicate introducer accepted")
	}
	if s.Add(netdb.HashFromUint64(2), netip.Addr{}, 9001) {
		t.Fatal("invalid address accepted")
	}
	if s.Add(netdb.HashFromUint64(2), addr, 0) {
		t.Fatal("zero port accepted")
	}
	s.Add(netdb.HashFromUint64(2), addr, 9002)
	s.Add(netdb.HashFromUint64(3), addr, 9003)
	if s.Add(netdb.HashFromUint64(4), addr, 9004) {
		t.Fatal("add beyond capacity accepted")
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	intros, err := s.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if len(intros) != 3 {
		t.Fatalf("published %d", len(intros))
	}
	tags := map[uint32]bool{}
	for _, in := range intros {
		if tags[in.Tag] {
			t.Fatal("duplicate tag")
		}
		tags[in.Tag] = true
	}
	if !s.Remove(netdb.HashFromUint64(2)) || s.Remove(netdb.HashFromUint64(2)) {
		t.Fatal("remove semantics wrong")
	}
	if s.Len() != 2 {
		t.Fatalf("len after remove = %d", s.Len())
	}
}

// TestBuildFirewalledAddress ties the introducer machinery to the netdb
// classification: the built address must classify as firewalled, not
// hidden.
func TestBuildFirewalledAddress(t *testing.T) {
	s := NewIntroducerSet(3)
	if _, err := BuildFirewalledAddress(s); err == nil {
		t.Fatal("address without introducers accepted")
	}
	s.Add(netdb.HashFromUint64(9), netip.MustParseAddr("203.0.113.4"), 9010)
	addr, err := BuildFirewalledAddress(s)
	if err != nil {
		t.Fatal(err)
	}
	if addr.HasIP() {
		t.Fatal("firewalled address must not publish an IP")
	}
	ri := &netdb.RouterInfo{
		Identity:  netdb.HashFromUint64(100),
		Published: time.Now().UTC(),
		Caps:      netdb.NewCaps(48, false, false),
		Addresses: []netdb.RouterAddress{addr},
	}
	if !ri.Firewalled() {
		t.Fatal("RouterInfo with introducers should classify as firewalled")
	}
	if ri.HiddenPeer() {
		t.Fatal("firewalled peer misclassified as hidden")
	}
	// Round-trip through the codec.
	data, err := ri.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := netdb.DecodeRouterInfo(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Firewalled() {
		t.Fatal("classification lost in codec round trip")
	}
}
