// Package checkpoint is the crash-safety layer shared by all five sweep
// engines: completed rows, cells, or day-shards spill to disk as they
// finish, so a run killed mid-sweep resumes by loading finished units
// instead of recomputing them. Because every engine folds results in
// stable order regardless of Workers, a resumed run's output is
// byte-identical to an uninterrupted one — the determinism contract
// extends across process deaths.
//
// Layout: a checkpoint directory holds a manifest.json identifying the
// run (engine name + version, config hash, seed) plus one file per
// completed unit. Every write uses the same atomic stage-then-rename
// pattern as measure.snapshotter (write ".name.tmp", fsync, rename to
// "name"), so a unit either exists completely or not at all; a crash
// mid-write leaves only a "."-prefixed orphan that Open sweeps away.
// Resuming against a directory whose manifest disagrees on any key
// field fails with a *MismatchError — stale shards are never silently
// merged.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Manifest identifies the run a checkpoint directory belongs to. A
// directory is only resumable by a run with the identical manifest.
type Manifest struct {
	// Engine names the producing engine, e.g. "censor.Sweep".
	Engine string `json:"engine"`
	// Version is the engine's checkpoint-format version; bump it when
	// the unit encoding or the unit keying changes so old state is
	// refused instead of misread. It is Workers-independent: width
	// never changes what a unit contains.
	Version int `json:"version"`
	// ConfigHash fingerprints every config field that shapes the
	// output (grid dimensions, scale, horizon — not Workers).
	ConfigHash uint64 `json:"config_hash"`
	// Seed is the simulation seed.
	Seed uint64 `json:"seed"`
}

// MismatchError reports a resume attempt against checkpoint state
// written by a different run: a manifest field disagrees.
type MismatchError struct {
	Field string // "engine", "version", "config_hash", or "seed"
	Have  string // value found in the on-disk manifest
	Want  string // value the resuming run expects
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("checkpoint: manifest %s mismatch: directory has %s, run expects %s (refusing to mix state from different runs)",
		e.Field, e.Have, e.Want)
}

// ErrNoCheckpoint reports Open finding an existing manifest when the
// caller required a fresh directory, or vice versa; see OpenExisting.
var ErrNoCheckpoint = errors.New("checkpoint: no manifest in directory")

const manifestName = "manifest.json"

// Store is an open checkpoint directory. Save and Load are safe for
// concurrent use by engine workers: units are independent files and the
// stage-then-rename commit is atomic.
type Store struct {
	dir string
}

// Open prepares dir for the run described by m: it creates the
// directory if needed, sweeps "."-prefixed staging orphans left by a
// crash mid-write, and creates or verifies the manifest. If a manifest
// already exists it must match m exactly; any disagreement returns a
// *MismatchError and no state is touched.
func Open(dir string, m Manifest) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if err := sweepOrphans(dir); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		if err := writeAtomic(dir, manifestName, mustJSON(m)); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, fmt.Errorf("checkpoint: %w", err)
	default:
		var have Manifest
		if err := json.Unmarshal(raw, &have); err != nil {
			return nil, fmt.Errorf("checkpoint: corrupt manifest %s: %w", path, err)
		}
		if err := have.verify(m); err != nil {
			return nil, err
		}
	}
	return &Store{dir: dir}, nil
}

// Exists reports whether dir already holds a checkpoint manifest —
// CLIs use it to refuse clobbering prior state unless -resume is given.
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// verify compares the on-disk manifest against the resuming run's.
func (have Manifest) verify(want Manifest) error {
	if have.Engine != want.Engine {
		return &MismatchError{Field: "engine", Have: have.Engine, Want: want.Engine}
	}
	if have.Version != want.Version {
		return &MismatchError{Field: "version", Have: fmt.Sprint(have.Version), Want: fmt.Sprint(want.Version)}
	}
	if have.ConfigHash != want.ConfigHash {
		return &MismatchError{Field: "config_hash", Have: fmt.Sprintf("%016x", have.ConfigHash), Want: fmt.Sprintf("%016x", want.ConfigHash)}
	}
	if have.Seed != want.Seed {
		return &MismatchError{Field: "seed", Have: fmt.Sprint(have.Seed), Want: fmt.Sprint(want.Seed)}
	}
	return nil
}

// sweepOrphans removes "."-prefixed staging files left by a crash
// between stage and rename. Committed units never start with ".", so
// this can never delete completed work.
func sweepOrphans(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".") && strings.HasSuffix(e.Name(), ".tmp") {
			if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
				return fmt.Errorf("checkpoint: sweeping orphan %s: %w", e.Name(), err)
			}
		}
	}
	return nil
}

// Dir returns the directory this store writes into.
func (s *Store) Dir() string { return s.dir }

// Save commits one completed unit under key. The write is atomic:
// either the unit appears complete or (after a crash) only a staging
// orphan remains for the next Open to sweep.
func (s *Store) Save(key string, data []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	if err := writeAtomic(s.dir, key, data); err != nil {
		return err
	}
	st := ckptStats()
	if st.rowsWritten != nil {
		st.rowsWritten.Inc()
		st.bytesSpilled.Add(uint64(len(data)))
	}
	return nil
}

// Load reads a previously committed unit. ok is false when the unit
// does not exist — the cell was never finished, so recompute it.
func (s *Store) Load(key string) (data []byte, ok bool, err error) {
	if err := validKey(key); err != nil {
		return nil, false, err
	}
	data, err = os.ReadFile(filepath.Join(s.dir, key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("checkpoint: %w", err)
	}
	st := ckptStats()
	if st.rowsResumed != nil {
		st.rowsResumed.Inc()
	}
	return data, true, nil
}

// SaveJSON commits a unit encoded as JSON. JSON is the unit codec of
// choice for engine results: encoding/json round-trips float64 exactly
// and preserves the nil-vs-empty slice distinction, so a loaded unit is
// reflect.DeepEqual to the computed one.
func (s *Store) SaveJSON(key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding %s: %w", key, err)
	}
	return s.Save(key, data)
}

// LoadJSON loads a JSON-encoded unit into v; ok is false when absent.
func (s *Store) LoadJSON(key string, v any) (ok bool, err error) {
	data, ok, err := s.Load(key)
	if err != nil || !ok {
		return ok, err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, fmt.Errorf("checkpoint: corrupt unit %s: %w", key, err)
	}
	return true, nil
}

// validKey rejects keys that would escape the directory or collide
// with the staging/manifest namespace.
func validKey(key string) error {
	if key == "" || key == manifestName ||
		strings.HasPrefix(key, ".") || strings.ContainsAny(key, "/\\") {
		return fmt.Errorf("checkpoint: invalid unit key %q", key)
	}
	return nil
}

// writeAtomic stages data as dir/.name.tmp, syncs, and renames it to
// dir/name — the same commit discipline as measure.snapshotter.
func writeAtomic(dir, name string, data []byte) error {
	return WriteFileAtomic(filepath.Join(dir, name), data)
}

// WriteFileAtomic commits data to path with the package's durability
// discipline: stage as ".name.tmp" in the destination directory, write,
// fsync, rename over path, then fsync the directory so the rename itself
// survives power loss. A crash at any point leaves either the old file,
// the new file, or a "."-prefixed staging orphan — never a torn write.
// It is the one atomic-write primitive every artifact writer in the repo
// (checkpoint units, manifests, campaign summaries) routes through.
func WriteFileAtomic(path string, data []byte) error {
	dir, name := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp := filepath.Join(dir, "."+name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making a just-committed rename durable.
// Without it a power loss can forget the rename while remembering the
// staged bytes — the "complete file in a directory that never heard of
// it" failure mode.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("checkpoint: syncing %s: %w", dir, err)
	}
	return nil
}

// SyncTree fsyncs every regular file and directory under root, bottom
// up. It is the staging half of the directory-grain commit protocol:
// write a tree, SyncTree it, rename it into place, SyncDir the parent —
// after which the rename target is guaranteed to hold complete files
// even across power loss. File syncs fan out over a small worker pool:
// a day snapshot holds one file per router and serial fsync would make
// durability O(peers) in disk round-trips.
func SyncTree(root string) error {
	var files []string
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			dirs = append(dirs, path)
		} else if d.Type().IsRegular() {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("checkpoint: syncing tree %s: %w", root, err)
	}
	workers := min(8, max(1, len(files)))
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next := make(chan string, len(files))
	for _, f := range files {
		next <- f
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for path := range next {
				f, err := os.Open(path)
				if err == nil {
					err = f.Sync()
					if cerr := f.Close(); err == nil {
						err = cerr
					}
				}
				if err != nil {
					errOnce.Do(func() { firstErr = fmt.Errorf("checkpoint: syncing %s: %w", path, err) })
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// Directories last, deepest first, so a directory's entries are
	// durable before the directory itself is.
	for i := len(dirs) - 1; i >= 0; i-- {
		if err := SyncDir(dirs[i]); err != nil {
			return err
		}
	}
	return nil
}

func mustJSON(v any) []byte {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		panic(err) // Manifest is a fixed struct of scalars; cannot fail
	}
	return data
}

// Hasher folds config fields into the Manifest's ConfigHash (FNV-1a
// 64-bit). Engines hash every output-shaping field in a fixed order;
// Workers is deliberately never hashed — width does not change output,
// so a run may resume at a different width.
type Hasher struct {
	h uint64
}

// NewHasher returns a Hasher at the FNV-1a offset basis.
func NewHasher() *Hasher { return &Hasher{h: 14695981039346656037} }

func (h *Hasher) byte(b byte) {
	h.h ^= uint64(b)
	h.h *= 1099511628211
}

// Uint64 folds v.
func (h *Hasher) Uint64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

// Int folds v.
func (h *Hasher) Int(v int) { h.Uint64(uint64(v)) }

// Float64 folds the IEEE-754 bits of v.
func (h *Hasher) Float64(v float64) { h.Uint64(math.Float64bits(v)) }

// String folds s length-prefixed, so ("ab","c") and ("a","bc") differ.
func (h *Hasher) String(s string) {
	h.Int(len(s))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

// Sum returns the hash accumulated so far.
func (h *Hasher) Sum() uint64 { return h.h }

// HashBytes is a convenience for one-shot hashing of raw bytes.
func HashBytes(data []byte) uint64 {
	f := fnv.New64a()
	f.Write(data)
	return f.Sum64()
}
