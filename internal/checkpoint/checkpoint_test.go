package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/obs"
)

func manifest() Manifest {
	return Manifest{Engine: "test.Engine", Version: 1, ConfigHash: 0xabc, Seed: 7}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), manifest())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load("row-001"); err != nil || ok {
		t.Fatalf("Load before Save: ok=%v err=%v", ok, err)
	}
	if err := s.Save("row-001", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := s.Load("row-001")
	if err != nil || !ok || string(data) != "payload" {
		t.Fatalf("Load = %q ok=%v err=%v", data, ok, err)
	}
	// No staging orphan left behind by a clean commit.
	entries, _ := os.ReadDir(s.Dir())
	for _, e := range entries {
		if e.Name() != manifestName && e.Name() != "row-001" {
			t.Fatalf("unexpected file %s", e.Name())
		}
	}
}

func TestJSONRoundTripPreservesNilVsEmpty(t *testing.T) {
	type unit struct {
		Vals  []float64
		Empty []float64
		Nil   []float64
	}
	s, err := Open(t.TempDir(), manifest())
	if err != nil {
		t.Fatal(err)
	}
	want := unit{Vals: []float64{0.1, 2e-300, 3}, Empty: []float64{}}
	if err := s.SaveJSON("u", want); err != nil {
		t.Fatal(err)
	}
	var got unit
	if ok, err := s.LoadJSON("u", &got); err != nil || !ok {
		t.Fatalf("LoadJSON ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %#v, want %#v", got, want)
	}
}

func TestReopenSameManifestKeepsUnits(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, manifest())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("row-000", []byte("x")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, manifest())
	if err != nil {
		t.Fatalf("reopen with identical manifest: %v", err)
	}
	if _, ok, err := s2.Load("row-000"); err != nil || !ok {
		t.Fatalf("unit lost across reopen: ok=%v err=%v", ok, err)
	}
}

// Satellite: resuming with a different seed, config hash, or engine
// version must fail loudly with a typed error, never silently merge.
func TestManifestMismatchIsTypedAndLoud(t *testing.T) {
	base := manifest()
	cases := []struct {
		name  string
		mut   func(*Manifest)
		field string
	}{
		{"seed", func(m *Manifest) { m.Seed = 8 }, "seed"},
		{"config-hash", func(m *Manifest) { m.ConfigHash = 0xdef }, "config_hash"},
		{"engine-version", func(m *Manifest) { m.Version = 2 }, "version"},
		{"engine-name", func(m *Manifest) { m.Engine = "other.Engine" }, "engine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, base)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Save("row-000", []byte("stale")); err != nil {
				t.Fatal(err)
			}
			want := base
			tc.mut(&want)
			_, err = Open(dir, want)
			var mm *MismatchError
			if !errors.As(err, &mm) {
				t.Fatalf("Open with mutated %s: err = %v, want *MismatchError", tc.name, err)
			}
			if mm.Field != tc.field {
				t.Fatalf("MismatchError.Field = %q, want %q", mm.Field, tc.field)
			}
			// The stale unit must be untouched: refusing means not merging
			// AND not deleting someone else's state.
			if _, err := os.Stat(filepath.Join(dir, "row-000")); err != nil {
				t.Fatalf("mismatch handling disturbed prior state: %v", err)
			}
		})
	}
}

func TestCorruptManifestRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, manifest()); err == nil {
		t.Fatal("Open accepted a corrupt manifest")
	}
}

func TestOpenSweepsStagingOrphans(t *testing.T) {
	dir := t.TempDir()
	// A crash between stage and rename leaves a "."-prefixed tmp file.
	if err := os.WriteFile(filepath.Join(dir, ".row-042.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Orphans can also be directories (snapshotter stages whole day dirs).
	if err := os.MkdirAll(filepath.Join(dir, ".day-003.tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, manifest())
	if err != nil {
		t.Fatal(err)
	}
	for _, orphan := range []string{".row-042.tmp", ".day-003.tmp"} {
		if _, err := os.Stat(filepath.Join(dir, orphan)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("orphan %s survived Open: %v", orphan, err)
		}
	}
	// And the partial unit is invisible to Load.
	if _, ok, _ := s.Load("row-042"); ok {
		t.Fatal("partial staging file mistaken for a committed unit")
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s, err := Open(t.TempDir(), manifest())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", ".", ".hidden", "a/b", `a\b`, manifestName} {
		if err := s.Save(bad, []byte("x")); err == nil {
			t.Errorf("Save(%q) succeeded, want error", bad)
		}
		if _, _, err := s.Load(bad); err == nil {
			t.Errorf("Load(%q) succeeded, want error", bad)
		}
	}
}

func TestExists(t *testing.T) {
	dir := t.TempDir()
	if Exists(dir) {
		t.Fatal("Exists on empty dir")
	}
	if _, err := Open(dir, manifest()); err != nil {
		t.Fatal(err)
	}
	if !Exists(dir) {
		t.Fatal("Exists after Open")
	}
}

func TestHasherDistinguishesFieldBoundaries(t *testing.T) {
	sum := func(fold func(h *Hasher)) uint64 {
		h := NewHasher()
		fold(h)
		return h.Sum()
	}
	a := sum(func(h *Hasher) { h.String("ab"); h.String("c") })
	b := sum(func(h *Hasher) { h.String("a"); h.String("bc") })
	if a == b {
		t.Fatal("length-prefixed strings collided across boundaries")
	}
	if sum(func(h *Hasher) { h.Int(1) }) == sum(func(h *Hasher) { h.Int(2) }) {
		t.Fatal("ints collided")
	}
	if sum(func(h *Hasher) { h.Float64(0.1) }) == sum(func(h *Hasher) { h.Float64(0.2) }) {
		t.Fatal("floats collided")
	}
	if sum(func(h *Hasher) { h.Uint64(7) }) != sum(func(h *Hasher) { h.Uint64(7) }) {
		t.Fatal("hash not deterministic")
	}
}

func TestObsCountersTrackSpillAndResume(t *testing.T) {
	reg := obs.NewRegistry()
	obs.Enable(reg)
	t.Cleanup(func() { obs.Enable(nil) })

	s, err := Open(t.TempDir(), manifest())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("12345678")
	if err := s.Save("row-000", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load("row-000"); err != nil || !ok {
		t.Fatalf("Load ok=%v err=%v", ok, err)
	}
	st := ckptStats()
	if got := st.rowsWritten.Load(); got != 1 {
		t.Errorf("rows_written = %d, want 1", got)
	}
	if got := st.rowsResumed.Load(); got != 1 {
		t.Errorf("rows_resumed = %d, want 1", got)
	}
	if got := st.bytesSpilled.Load(); got != uint64(len(payload)) {
		t.Errorf("bytes_spilled = %d, want %d", got, len(payload))
	}
	// The families render on /metrics-style output.
	text := reg.RenderText()
	for _, name := range []string{
		"i2p_checkpoint_rows_written_total",
		"i2p_checkpoint_rows_resumed_total",
		"i2p_checkpoint_bytes_spilled_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metric %s missing from render", name)
		}
	}
}

func TestWriteFileAtomicCommitsAndOverwrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "summary.txt")
	if err := WriteFileAtomic(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Fatalf("content = %q, want %q", got, "first")
	}
	// Overwriting an existing file goes through the same staged commit.
	if err := WriteFileAtomic(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Fatalf("content = %q, want %q", got, "second")
	}
	// No staging residue either way.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("staging file left behind: %s", e.Name())
		}
	}
	// A relative path with no directory component stages in ".".
	t.Chdir(dir)
	if err := WriteFileAtomic("bare.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(filepath.Join(dir, "bare.txt")); string(got) != "x" {
		t.Fatal("bare-name write missing")
	}
}

func TestSyncTreeWalksFilesAndDirs(t *testing.T) {
	root := t.TempDir()
	sub := filepath.Join(root, "netDb", "deep")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		name := filepath.Join(sub, "routerInfo-"+strings.Repeat("a", i)+".dat")
		if err := os.WriteFile(name, []byte("data"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := SyncTree(root); err != nil {
		t.Fatal(err)
	}
	if err := SyncTree(filepath.Join(root, "no-such-dir")); err == nil {
		t.Fatal("SyncTree on a missing root must error")
	}
}
