package checkpoint

import (
	"sync/atomic"

	"github.com/i2pstudy/i2pstudy/internal/obs"
)

// checkpointStats holds the spill/resume instrument handles, resolved
// once per enabled registry — same lazy pattern as measure's
// engineStats, so the disabled cost is one atomic load and a nil check.
type checkpointStats struct {
	reg *obs.Registry

	rowsWritten  *obs.Counter // i2p_checkpoint_rows_written_total
	rowsResumed  *obs.Counter // i2p_checkpoint_rows_resumed_total
	bytesSpilled *obs.Counter // i2p_checkpoint_bytes_spilled_total
}

var disabledCheckpointStats = &checkpointStats{}

var cachedCheckpointStats atomic.Pointer[checkpointStats]

func resolveCheckpointStats(r *obs.Registry) *checkpointStats {
	return &checkpointStats{
		reg: r,
		rowsWritten: r.Counter("i2p_checkpoint_rows_written_total",
			"Completed units (rows, cells, day-shards) committed to a checkpoint directory."),
		rowsResumed: r.Counter("i2p_checkpoint_rows_resumed_total",
			"Units loaded from a checkpoint directory instead of recomputed."),
		bytesSpilled: r.Counter("i2p_checkpoint_bytes_spilled_total",
			"Bytes of unit payload spilled to checkpoint directories."),
	}
}

// ckptStats returns the instrument handles for the enabled registry, or
// the inert zero set when observability is disabled.
func ckptStats() *checkpointStats {
	r := obs.Active()
	if r == nil {
		return disabledCheckpointStats
	}
	s := cachedCheckpointStats.Load()
	if s != nil && s.reg == r {
		return s
	}
	s = resolveCheckpointStats(r)
	cachedCheckpointStats.Store(s)
	return s
}

// Pre-create the checkpoint families on Enable so a scrape that lands
// before the first spill still sees them at zero.
func init() {
	obs.OnEnable(func(r *obs.Registry) { resolveCheckpointStats(r) })
}
