// Package reseed implements I2P's bootstrapping infrastructure: reseed
// servers that hand a bounded, per-source-sticky set of RouterInfos to new
// peers (Section 4: "reseed servers are designed so that they only provide
// the same set of RouterInfos if the requesting source is the same"), the
// su3-style signed seed bundle, and the manual-reseed escape hatch the
// paper discusses for censored users (Section 6.1: every active peer can
// create an i2pseeds.su3 file and share it out of band).
package reseed

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

// DefaultPerRequest is how many RouterInfos one reseed server returns per
// request: "a newly joined peer fetches around 150 RouterInfos from two
// reseed servers (roughly 75 RouterInfos from each server)" (Section 4.2).
const DefaultPerRequest = 75

// DefaultServerCount is how many reseed servers a bootstrapping client
// contacts.
const DefaultServerCount = 2

// SeedFileName is the conventional name of a manual reseed bundle.
const SeedFileName = "i2pseeds.su3"

// Provider supplies the reseed server's current view of live RouterInfos.
type Provider func() []*netdb.RouterInfo

// Server is one reseed server. It is safe for concurrent use.
type Server struct {
	name       string
	perRequest int
	provider   Provider

	mu       sync.Mutex
	rng      *rand.Rand
	assigned map[string][]netdb.Hash
}

// NewServer returns a reseed server named name that serves perRequest
// records per source from provider. seed makes the per-source sampling
// deterministic.
func NewServer(name string, perRequest int, provider Provider, seed uint64) *Server {
	if perRequest <= 0 {
		perRequest = DefaultPerRequest
	}
	return &Server{
		name:       name,
		perRequest: perRequest,
		provider:   provider,
		rng:        rand.New(rand.NewPCG(seed, seed^0xA5A5A5A5)),
		assigned:   make(map[string][]netdb.Hash),
	}
}

// Name returns the server's name.
func (s *Server) Name() string { return s.name }

// Fetch returns the RouterInfo set for the requesting source. The first
// request from a source samples a random subset; repeat requests return the
// same hashes (minus any that have left the network), which is the
// anti-harvesting behaviour the paper describes.
func (s *Server) Fetch(source string) []*netdb.RouterInfo {
	live := s.provider()
	byHash := make(map[netdb.Hash]*netdb.RouterInfo, len(live))
	for _, ri := range live {
		byHash[ri.Identity] = ri
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	hashes, ok := s.assigned[source]
	if !ok {
		// Sample without replacement.
		perm := s.rng.Perm(len(live))
		n := s.perRequest
		if n > len(live) {
			n = len(live)
		}
		hashes = make([]netdb.Hash, 0, n)
		for _, idx := range perm[:n] {
			hashes = append(hashes, live[idx].Identity)
		}
		s.assigned[source] = hashes
	}
	out := make([]*netdb.RouterInfo, 0, len(hashes))
	for _, h := range hashes {
		if ri := byHash[h]; ri != nil {
			out = append(out, ri)
		}
	}
	return out
}

// SourceCount returns how many distinct sources have been served.
func (s *Server) SourceCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.assigned)
}

// Bootstrap fetches from up to DefaultServerCount of the given servers and
// merges the results, dropping duplicates — the newly-joining-peer path of
// Section 4.2. It returns an error when no server is usable (the censored
// scenario of Section 6.1).
func Bootstrap(servers []*Server, source string) ([]*netdb.RouterInfo, error) {
	if len(servers) == 0 {
		return nil, errors.New("reseed: no reachable reseed servers")
	}
	n := DefaultServerCount
	if n > len(servers) {
		n = len(servers)
	}
	seen := make(map[netdb.Hash]bool)
	var out []*netdb.RouterInfo
	for _, srv := range servers[:n] {
		for _, ri := range srv.Fetch(source) {
			if !seen[ri.Identity] {
				seen[ri.Identity] = true
				out = append(out, ri)
			}
		}
	}
	if len(out) == 0 {
		return nil, errors.New("reseed: reseed servers returned no records")
	}
	return out, nil
}

// --- su3-style bundles ---

var bundleMagic = [4]byte{'S', 'U', '3', 'S'}

// Bundle codec errors.
var (
	ErrBadBundle    = errors.New("reseed: malformed seed bundle")
	ErrBadSignature = errors.New("reseed: bundle signature mismatch")
)

// Bundle is a parsed seed bundle.
type Bundle struct {
	Signer    string
	CreatedAt time.Time
	Records   []*netdb.RouterInfo
}

// signingTag computes the bundle's integrity tag. Real su3 files carry an
// RSA signature from a known reseed operator; the keyed hash is the
// offline substitute (documented in DESIGN.md).
func signingTag(body []byte, signer string) [32]byte {
	key := sha256.Sum256([]byte("reseed-signer:" + signer))
	h := sha256.New()
	h.Write(key[:])
	h.Write(body)
	var tag [32]byte
	copy(tag[:], h.Sum(nil))
	return tag
}

// CreateBundle serializes records into a signed seed bundle. Any active
// peer can do this — it is the manual-reseed feature of Section 6.1.
func CreateBundle(records []*netdb.RouterInfo, signer string, now time.Time) ([]byte, error) {
	if len(records) == 0 {
		return nil, errors.New("reseed: refusing to create an empty bundle")
	}
	if len(records) > 65535 {
		return nil, errors.New("reseed: too many records for one bundle")
	}
	var buf bytes.Buffer
	buf.Write(bundleMagic[:])
	if len(signer) > 255 {
		return nil, errors.New("reseed: signer name too long")
	}
	buf.WriteByte(uint8(len(signer)))
	buf.WriteString(signer)
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(now.UTC().UnixMilli()))
	buf.Write(ts[:])
	var cnt [2]byte
	binary.BigEndian.PutUint16(cnt[:], uint16(len(records)))
	buf.Write(cnt[:])
	for _, ri := range records {
		data, err := ri.Encode()
		if err != nil {
			return nil, fmt.Errorf("reseed: encode %s: %w", ri.Identity.Short(), err)
		}
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(data)))
		buf.Write(l[:])
		buf.Write(data)
	}
	tag := signingTag(buf.Bytes(), signer)
	buf.Write(tag[:])
	return buf.Bytes(), nil
}

// ParseBundle verifies and decodes a bundle produced by CreateBundle.
func ParseBundle(data []byte) (*Bundle, error) {
	if len(data) < 4+1+8+2+32 {
		return nil, ErrBadBundle
	}
	body, tag := data[:len(data)-32], data[len(data)-32:]
	if !bytes.Equal(body[:4], bundleMagic[:]) {
		return nil, ErrBadBundle
	}
	off := 4
	nameLen := int(body[off])
	off++
	if off+nameLen > len(body) {
		return nil, ErrBadBundle
	}
	signer := string(body[off : off+nameLen])
	off += nameLen
	want := signingTag(body, signer)
	if !bytes.Equal(tag, want[:]) {
		return nil, ErrBadSignature
	}
	if off+10 > len(body) {
		return nil, ErrBadBundle
	}
	createdMilli := binary.BigEndian.Uint64(body[off : off+8])
	off += 8
	count := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2
	b := &Bundle{
		Signer:    signer,
		CreatedAt: time.UnixMilli(int64(createdMilli)).UTC(),
	}
	for i := 0; i < count; i++ {
		if off+4 > len(body) {
			return nil, ErrBadBundle
		}
		l := int(binary.BigEndian.Uint32(body[off : off+4]))
		off += 4
		if off+l > len(body) {
			return nil, ErrBadBundle
		}
		ri, err := netdb.DecodeRouterInfo(body[off : off+l])
		if err != nil {
			return nil, fmt.Errorf("reseed: record %d: %w", i, err)
		}
		off += l
		b.Records = append(b.Records, ri)
	}
	if off != len(body) {
		return nil, ErrBadBundle
	}
	return b, nil
}

// WriteSeedFile writes a bundle to path (conventionally SeedFileName) for
// out-of-band sharing.
func WriteSeedFile(path string, records []*netdb.RouterInfo, signer string, now time.Time) error {
	data, err := CreateBundle(records, signer, now)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadSeedFile reads and verifies a bundle written by WriteSeedFile.
func ReadSeedFile(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseBundle(data)
}

// --- HTTP service ---

// Handler serves the reseed bundle over HTTP. The requesting source is the
// client IP (port stripped), so repeat requests from one address receive
// the same set — the crawl resistance the paper describes. The handler
// serves GET <any path>; real deployments use /i2pseeds.su3.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		source, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			source = r.RemoteAddr
		}
		records := s.Fetch(source)
		if len(records) == 0 {
			http.Error(w, "no records available", http.StatusServiceUnavailable)
			return
		}
		data, err := CreateBundle(records, s.name, time.Now().UTC())
		if err != nil {
			http.Error(w, "bundle error", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprint(len(data)))
		_, _ = w.Write(data)
	})
}

// FetchHTTP retrieves and parses a bundle from a reseed URL using client
// (http.DefaultClient when nil).
func FetchHTTP(client *http.Client, url string) (*Bundle, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("reseed: server returned %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	return ParseBundle(data)
}
