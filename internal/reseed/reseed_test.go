package reseed

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"path/filepath"
	"testing"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

func makeRecords(n int) []*netdb.RouterInfo {
	out := make([]*netdb.RouterInfo, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, &netdb.RouterInfo{
			Identity:  netdb.HashFromUint64(uint64(i)),
			Published: time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC),
			Caps:      netdb.NewCaps(100, false, true),
			Version:   "0.9.34",
			Addresses: []netdb.RouterAddress{{
				Transport: netdb.TransportNTCP,
				Addr:      netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 1}),
				Port:      12000,
			}},
		})
	}
	return out
}

func staticProvider(records []*netdb.RouterInfo) Provider {
	return func() []*netdb.RouterInfo { return records }
}

func TestFetchBoundedAndSticky(t *testing.T) {
	records := makeRecords(500)
	srv := NewServer("reseed-a", 75, staticProvider(records), 1)

	got1 := srv.Fetch("198.51.100.1")
	if len(got1) != 75 {
		t.Fatalf("first fetch = %d records, want 75", len(got1))
	}
	// The same source gets the same set.
	got2 := srv.Fetch("198.51.100.1")
	if len(got2) != 75 {
		t.Fatalf("repeat fetch = %d records", len(got2))
	}
	set1 := make(map[netdb.Hash]bool)
	for _, ri := range got1 {
		set1[ri.Identity] = true
	}
	for _, ri := range got2 {
		if !set1[ri.Identity] {
			t.Fatal("repeat fetch returned a record outside the sticky set")
		}
	}
	// A different source gets a (very likely) different set.
	got3 := srv.Fetch("203.0.113.9")
	diff := 0
	for _, ri := range got3 {
		if !set1[ri.Identity] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("second source received an identical set; crawl resistance broken")
	}
	if srv.SourceCount() != 2 {
		t.Fatalf("SourceCount = %d, want 2", srv.SourceCount())
	}
}

func TestFetchStickySurvivesChurn(t *testing.T) {
	records := makeRecords(200)
	current := records
	srv := NewServer("reseed-a", 50, func() []*netdb.RouterInfo { return current }, 2)
	got1 := srv.Fetch("src")
	// Half the network leaves.
	current = records[:100]
	got2 := srv.Fetch("src")
	if len(got2) > len(got1) {
		t.Fatal("sticky set grew after churn")
	}
	// Every returned record must still be live and from the original set.
	live := make(map[netdb.Hash]bool)
	for _, ri := range current {
		live[ri.Identity] = true
	}
	orig := make(map[netdb.Hash]bool)
	for _, ri := range got1 {
		orig[ri.Identity] = true
	}
	for _, ri := range got2 {
		if !live[ri.Identity] || !orig[ri.Identity] {
			t.Fatal("fetch returned dead or fresh record")
		}
	}
}

func TestFetchSmallNetwork(t *testing.T) {
	srv := NewServer("tiny", 75, staticProvider(makeRecords(10)), 3)
	got := srv.Fetch("src")
	if len(got) != 10 {
		t.Fatalf("got %d, want all 10", len(got))
	}
}

func TestBootstrapMergesTwoServers(t *testing.T) {
	records := makeRecords(1000)
	a := NewServer("a", 75, staticProvider(records), 4)
	b := NewServer("b", 75, staticProvider(records), 5)
	c := NewServer("c", 75, staticProvider(records), 6)

	got, err := Bootstrap([]*Server{a, b, c}, "client-1")
	if err != nil {
		t.Fatal(err)
	}
	// ~150 records from the first two servers, minus overlap.
	if len(got) < 120 || len(got) > 150 {
		t.Fatalf("bootstrap yielded %d records, want ~150", len(got))
	}
	// Only the first DefaultServerCount servers are contacted.
	if c.SourceCount() != 0 {
		t.Fatal("third server was contacted")
	}
	seen := make(map[netdb.Hash]bool)
	for _, ri := range got {
		if seen[ri.Identity] {
			t.Fatal("bootstrap returned duplicates")
		}
		seen[ri.Identity] = true
	}
}

func TestBootstrapErrors(t *testing.T) {
	if _, err := Bootstrap(nil, "x"); err == nil {
		t.Fatal("no servers accepted")
	}
	empty := NewServer("empty", 75, staticProvider(nil), 7)
	if _, err := Bootstrap([]*Server{empty}, "x"); err == nil {
		t.Fatal("empty network accepted")
	}
}

func TestBundleRoundTrip(t *testing.T) {
	records := makeRecords(150)
	now := time.Date(2018, 4, 15, 12, 0, 0, 0, time.UTC)
	data, err := CreateBundle(records, "manual-peer", now)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if b.Signer != "manual-peer" {
		t.Fatalf("signer = %q", b.Signer)
	}
	if !b.CreatedAt.Equal(now) {
		t.Fatalf("created = %v, want %v", b.CreatedAt, now)
	}
	if len(b.Records) != 150 {
		t.Fatalf("records = %d", len(b.Records))
	}
	if b.Records[0].Identity != records[0].Identity {
		t.Fatal("record identity corrupted")
	}
}

func TestBundleTamperDetection(t *testing.T) {
	data, err := CreateBundle(makeRecords(5), "signer", time.Now().UTC())
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{6, 20, len(data) / 2, len(data) - 40} {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0xFF
		if _, err := ParseBundle(bad); err == nil {
			t.Errorf("tampering at byte %d accepted", pos)
		}
	}
	if _, err := ParseBundle(data[:10]); !errors.Is(err, ErrBadBundle) {
		t.Error("truncated bundle accepted")
	}
	if _, err := ParseBundle(nil); err == nil {
		t.Error("nil bundle accepted")
	}
}

func TestCreateBundleValidation(t *testing.T) {
	if _, err := CreateBundle(nil, "s", time.Now()); err == nil {
		t.Fatal("empty bundle accepted")
	}
}

func TestSeedFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SeedFileName)
	records := makeRecords(40)
	now := time.Date(2018, 4, 15, 0, 0, 0, 0, time.UTC)
	if err := WriteSeedFile(path, records, "blocked-user-friend", now); err != nil {
		t.Fatal(err)
	}
	b, err := ReadSeedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Records) != 40 || b.Signer != "blocked-user-friend" {
		t.Fatalf("reload mismatch: %d records, signer %q", len(b.Records), b.Signer)
	}
	if _, err := ReadSeedFile(filepath.Join(dir, "missing.su3")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestHTTPHandler(t *testing.T) {
	records := makeRecords(300)
	srv := NewServer("https-reseed", 75, staticProvider(records), 8)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	b, err := FetchHTTP(ts.Client(), ts.URL+"/"+SeedFileName)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Records) != 75 {
		t.Fatalf("HTTP bundle records = %d, want 75", len(b.Records))
	}
	if b.Signer != "https-reseed" {
		t.Fatalf("signer = %q", b.Signer)
	}
	// Same client address → same sticky set.
	b2, err := FetchHTTP(ts.Client(), ts.URL+"/"+SeedFileName)
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[netdb.Hash]bool)
	for _, ri := range b.Records {
		set[ri.Identity] = true
	}
	for _, ri := range b2.Records {
		if !set[ri.Identity] {
			t.Fatal("HTTP repeat fetch broke stickiness")
		}
	}
}

func TestHTTPHandlerEmpty(t *testing.T) {
	srv := NewServer("empty", 75, staticProvider(nil), 9)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if _, err := FetchHTTP(ts.Client(), ts.URL); err == nil {
		t.Fatal("empty reseed served a bundle")
	}
}

func TestHTTPHandlerMethodNotAllowed(t *testing.T) {
	srv := NewServer("r", 75, staticProvider(makeRecords(10)), 10)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

// censorBlocked is what an address-blacklisted reseed server looks like
// to a censored client: the TCP path works (the middlebox intercepts)
// but every request dies without a bundle.
var censorBlocked http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "connection reset by censor", http.StatusForbidden)
})

// TestManualReseedAllServersBlacklisted is the Section 6.1 escape hatch
// over live HTTP servers — the path the distrib ManualReseed frontend
// relies on: every reseed server is blacklisted, so HTTP bootstrap fails
// against each of them, and only a friend's out-of-band i2pseeds.su3
// bundle restores access.
func TestManualReseedAllServersBlacklisted(t *testing.T) {
	records := makeRecords(300)
	var blocked []*httptest.Server
	for i := 0; i < 3; i++ {
		ts := httptest.NewServer(censorBlocked)
		defer ts.Close()
		blocked = append(blocked, ts)
	}
	// Every reseed URL is unusable: FetchHTTP must surface the censor's
	// non-200 answer, never a partial bundle.
	for _, ts := range blocked {
		if _, err := FetchHTTP(ts.Client(), ts.URL+"/"+SeedFileName); err == nil {
			t.Fatal("blacklisted reseed served a bundle")
		}
	}

	// A friend outside the censored region still reaches a real server
	// and exports the bundle out of band.
	open := httptest.NewServer(NewServer("open-reseed", 75, staticProvider(records), 29).Handler())
	defer open.Close()
	friendView, err := FetchHTTP(open.Client(), open.URL+"/"+SeedFileName)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), SeedFileName)
	if err := WriteSeedFile(path, friendView.Records, "friend", time.Now().UTC()); err != nil {
		t.Fatal(err)
	}

	// The blocked user bootstraps from the file alone.
	b, err := ReadSeedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Signer != "friend" || len(b.Records) != len(friendView.Records) {
		t.Fatalf("manual bundle: %d records signed %q", len(b.Records), b.Signer)
	}
	store := netdb.NewStore(false)
	now := time.Now().UTC()
	for _, ri := range b.Records {
		store.PutRouterInfo(ri, now)
	}
	if store.RouterCount() != len(b.Records) {
		t.Fatalf("store has %d records after manual reseed, want %d", store.RouterCount(), len(b.Records))
	}
}

// TestManualReseedFlow is the Section 6.1 scenario end to end: reseed
// servers are blocked, a friendly peer exports a seed file, and the blocked
// user bootstraps from it.
func TestManualReseedFlow(t *testing.T) {
	friendView := makeRecords(120)
	path := filepath.Join(t.TempDir(), SeedFileName)
	if err := WriteSeedFile(path, friendView, "friend", time.Now().UTC()); err != nil {
		t.Fatal(err)
	}
	// The blocked user cannot call Bootstrap (no servers) ...
	if _, err := Bootstrap(nil, "blocked"); err == nil {
		t.Fatal("bootstrap should fail with all reseeds blocked")
	}
	// ... but can load the shared file.
	b, err := ReadSeedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	store := netdb.NewStore(false)
	now := time.Now().UTC()
	for _, ri := range b.Records {
		store.PutRouterInfo(ri, now)
	}
	if store.RouterCount() != 120 {
		t.Fatalf("store has %d records after manual reseed, want 120", store.RouterCount())
	}
}
