package reseed

import (
	"sync"
	"testing"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

// TestBundleSetRoundTrip: every non-empty slot parses back to exactly the
// records it was built from; empty and out-of-range slots serve nothing.
func TestBundleSetRoundTrip(t *testing.T) {
	records := makeRecords(7)
	when := time.Date(2018, 3, 1, 12, 0, 0, 0, time.UTC)
	groups := [][]*netdb.RouterInfo{
		records[0:3],
		nil, // a slot the partition cannot serve
		records[3:7],
	}
	s, err := BuildBundleSet(groups, "resident-service", when)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Signer() != "resident-service" || !s.CreatedAt().Equal(when) {
		t.Fatalf("set metadata = (%d, %q, %v)", s.Len(), s.Signer(), s.CreatedAt())
	}
	for slot, want := range groups {
		data := s.Bundle(slot)
		if len(want) == 0 {
			if data != nil {
				t.Fatalf("empty slot %d served %d bytes", slot, len(data))
			}
			continue
		}
		b, err := ParseBundle(data)
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		if b.Signer != "resident-service" || !b.CreatedAt.Equal(when) {
			t.Fatalf("slot %d header = (%q, %v)", slot, b.Signer, b.CreatedAt)
		}
		if len(b.Records) != len(want) {
			t.Fatalf("slot %d carries %d records, want %d", slot, len(b.Records), len(want))
		}
		for i := range want {
			if b.Records[i].Identity != want[i].Identity {
				t.Fatalf("slot %d record %d identity mismatch", slot, i)
			}
		}
	}
	if s.Bundle(-1) != nil || s.Bundle(3) != nil {
		t.Fatal("out-of-range slots served bundles")
	}
	var nilSet *BundleSet
	if nilSet.Bundle(0) != nil {
		t.Fatal("nil set served a bundle")
	}
}

// TestBundleCacheSwap: readers racing a Store only ever observe complete
// sets — the old one or the new one, never a partial table.
func TestBundleCacheSwap(t *testing.T) {
	records := makeRecords(4)
	when := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	old, err := BuildBundleSet([][]*netdb.RouterInfo{records[:4]}, "old", when)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := BuildBundleSet([][]*netdb.RouterInfo{records[:2]}, "fresh", when)
	if err != nil {
		t.Fatal(err)
	}

	var c BundleCache
	if c.Load() != nil {
		t.Fatal("zero cache not empty")
	}
	c.Store(old)

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s := c.Load()
				if got := s.Signer(); got != "old" && got != "fresh" {
					panic("torn bundle set read: " + got)
				}
				if _, err := ParseBundle(s.Bundle(0)); err != nil {
					panic(err)
				}
			}
		}()
	}
	c.Store(fresh)
	wg.Wait()
	if c.Load() != fresh {
		t.Fatal("swap did not publish the new set")
	}
}
