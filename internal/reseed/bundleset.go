package reseed

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

// BundleSet is an immutable table of pre-built signed seed bundles, one
// per handout group. The resident distributor service serves the
// manual-reseed frontend from one of these: the frontend's grants never
// rotate, so a partition of n resources has exactly n distinct handouts
// — encode each once at build time and the hot path becomes a slice
// lookup instead of a per-request CreateBundle. A BundleSet is immutable
// after BuildBundleSet and safe for unbounded concurrent use; publish
// rebuilt sets through a BundleCache.
type BundleSet struct {
	signer string
	when   time.Time
	data   [][]byte
}

// BuildBundleSet encodes one bundle per record group. Empty groups get a
// nil bundle (a slot the partition cannot serve); any encodable-record
// failure aborts the build, matching CreateBundle's refusal to sign what
// the codec would reject.
func BuildBundleSet(groups [][]*netdb.RouterInfo, signer string, now time.Time) (*BundleSet, error) {
	s := &BundleSet{signer: signer, when: now, data: make([][]byte, len(groups))}
	for i, records := range groups {
		if len(records) == 0 {
			continue
		}
		data, err := CreateBundle(records, signer, now)
		if err != nil {
			return nil, fmt.Errorf("reseed: bundle set slot %d: %w", i, err)
		}
		s.data[i] = data
	}
	return s, nil
}

// Len returns the number of slots.
func (s *BundleSet) Len() int { return len(s.data) }

// Signer returns the signer every bundle in the set carries.
func (s *BundleSet) Signer() string { return s.signer }

// CreatedAt returns the timestamp every bundle in the set carries.
func (s *BundleSet) CreatedAt() time.Time { return s.when }

// Bundle returns the encoded bundle for a slot, nil when the slot is out
// of range or was built from an empty group. Callers must not modify the
// returned bytes.
func (s *BundleSet) Bundle(slot int) []byte {
	if s == nil || slot < 0 || slot >= len(s.data) {
		return nil
	}
	return s.data[slot]
}

// BundleCache publishes the current BundleSet to concurrent readers with
// an atomic swap: the prober's pool-retirement rebuild stores a fresh
// set while request handlers keep serving the old one, and no reader
// ever observes a half-built table. The zero value is an empty cache
// (Load returns nil).
type BundleCache struct {
	p atomic.Pointer[BundleSet]
}

// Load returns the current set, nil before the first Store.
func (c *BundleCache) Load() *BundleSet { return c.p.Load() }

// Store atomically publishes a new set.
func (c *BundleCache) Store(s *BundleSet) { c.p.Store(s) }
