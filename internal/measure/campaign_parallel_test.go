package measure

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/measure/enginetest"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// parallelTestNet builds the 30-day, 8-observer fixture the equivalence
// suite runs against.
func parallelTestNet(t testing.TB) *sim.Network {
	t.Helper()
	n, err := sim.New(sim.Config{Seed: 7, Days: 30, TargetDailyPeers: 1500})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func runWithWorkers(t testing.TB, n *sim.Network, workers int) *Dataset {
	t.Helper()
	c, err := NewCampaign(n, CampaignConfig{
		Observers: DefaultObserverFleet(8),
		StartDay:  0,
		EndDay:    30,
		Workers:   workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := c.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestCampaignParallelMatchesSerial is the engine's golden equivalence
// guarantee, stated through the shared enginetest harness: any worker
// count produces a Dataset identical to the serial reference path, so
// parallelism can never change a figure or table.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	n := parallelTestNet(t)
	var serial *Dataset
	enginetest.Golden(t, []enginetest.Case{{
		Name: "campaign",
		Run: func(t testing.TB, workers int) any {
			ds := runWithWorkers(t, n, workers)
			if ds.TotalPeers() == 0 {
				t.Fatal("campaign observed nothing")
			}
			if workers == 1 {
				serial = ds
			}
			return ds
		},
	}})
	// Oversubscription (more workers than days) must also match.
	if over := runWithWorkers(t, n, 32); !reflect.DeepEqual(serial, over) {
		t.Error("Workers=32 dataset differs from serial reference")
	}
}

// TestCampaignParallelRaceStress hammers the engine from several
// goroutines at once; it exists for the -race build, where it proves the
// capture/merge/accumulate pipeline and the immutable-network contract
// hold under real interleavings.
func TestCampaignParallelRaceStress(t *testing.T) {
	n, err := sim.New(sim.Config{Seed: 11, Days: 10, TargetDailyPeers: 600})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := NewCampaign(n, CampaignConfig{
				Observers: DefaultObserverFleet(5),
				StartDay:  0,
				EndDay:    10,
				Workers:   8,
			})
			if err != nil {
				t.Error(err)
				return
			}
			ds, err := c.RunContext(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			if ds.TotalPeers() == 0 {
				t.Error("stress campaign observed nothing")
			}
		}()
	}
	wg.Wait()
}

// TestObserveGridMatchesObserveDay checks the experiment-facing engine
// primitive against direct ObserveDay calls.
func TestObserveGridMatchesObserveDay(t *testing.T) {
	n := parallelTestNet(t)
	var observers []*sim.Observer
	for _, cfg := range DefaultObserverFleet(4) {
		observers = append(observers, n.NewObserver(cfg))
	}
	days := []int{3, 7, 12}
	grid, err := ObserveGrid(context.Background(), observers, days, 8)
	if err != nil {
		t.Fatal(err)
	}
	for o, obs := range observers {
		for d, day := range days {
			want := obs.ObserveDay(day)
			if !reflect.DeepEqual(grid[o][d], want) {
				t.Errorf("grid[%d][%d] differs from ObserveDay(%d)", o, d, day)
			}
		}
	}
}

// TestCampaignRunContextCancelled verifies cancellation surfaces the
// context error on both paths and leaves no partially written snapshot
// day behind.
func TestCampaignRunContextCancelled(t *testing.T) {
	n := parallelTestNet(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		dir := t.TempDir()
		c, err := NewCampaign(n, CampaignConfig{
			Observers:   DefaultObserverFleet(2),
			StartDay:    0,
			EndDay:      5,
			SnapshotDir: dir,
			Workers:     workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunContext(ctx); err != context.Canceled {
			t.Fatalf("Workers=%d: RunContext error = %v, want context.Canceled", workers, err)
		}
		assertNoPartialSnapshots(t, dir)
	}
}

// TestSnapshotDaysAtomic runs a snapshotting campaign and checks that
// only complete, renamed day directories remain — the atomic-write
// contract Ctrl-C handling in the CLIs relies on.
func TestSnapshotDaysAtomic(t *testing.T) {
	n := parallelTestNet(t)
	dir := t.TempDir()
	// A stale temp dir from a previous crash must not break the run.
	if err := os.MkdirAll(filepath.Join(dir, ".day-001.tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	c, err := NewCampaign(n, CampaignConfig{
		Observers:   DefaultObserverFleet(3),
		StartDay:    0,
		EndDay:      3,
		SnapshotDir: dir,
		Workers:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertNoPartialSnapshots(t, dir)
	for _, day := range []string{"day-000", "day-001", "day-002"} {
		ents, err := os.ReadDir(filepath.Join(dir, day, "netDb"))
		if err != nil {
			t.Fatalf("%s: %v", day, err)
		}
		if len(ents) == 0 {
			t.Errorf("%s: empty netDb snapshot", day)
		}
	}
}

// TestSnapshotterSweepsOrphanedStaging pins the startup-cleanup half of
// the atomic-snapshot contract: ".day-NNN.tmp" staging dirs left by a
// crash between stage and rename are removed when the campaign starts —
// even for days outside the new run's range, which nothing would ever
// overwrite — and are never mistaken for complete days. Entries that
// don't match the staging pattern are left alone.
func TestSnapshotterSweepsOrphanedStaging(t *testing.T) {
	n := parallelTestNet(t)
	dir := t.TempDir()
	// An orphan with partial content, for a day this run won't touch.
	orphan := filepath.Join(dir, ".day-042.tmp")
	if err := os.MkdirAll(filepath.Join(orphan, "netDb"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(orphan, "netDb", "routerInfo-junk.dat"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// An empty orphan for a day the run will rewrite anyway.
	if err := os.MkdirAll(filepath.Join(dir, ".day-000.tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	// Bystanders the sweep must not touch: a complete-looking day from a
	// past run and an unrelated file.
	if err := os.MkdirAll(filepath.Join(dir, "day-099"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := NewCampaign(n, CampaignConfig{
		Observers:   DefaultObserverFleet(2),
		StartDay:    0,
		EndDay:      2,
		SnapshotDir: dir,
		Workers:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}

	assertNoPartialSnapshots(t, dir)
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphaned staging dir %s survived startup (err=%v)", orphan, err)
	}
	for _, keep := range []string{"day-099", "notes.txt", "day-000", "day-001"} {
		if _, err := os.Stat(filepath.Join(dir, keep)); err != nil {
			t.Errorf("startup sweep touched %s: %v", keep, err)
		}
	}
}

func assertNoPartialSnapshots(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("partial snapshot left behind: %s", e.Name())
		}
	}
}

// BenchmarkCampaignSerial and BenchmarkCampaignParallel are the perf
// trajectory pair emitted by scripts/bench.sh as BENCH_campaign.json.
func benchmarkCampaign(b *testing.B, workers int) {
	n, err := sim.New(sim.Config{Seed: 7, Days: 30, TargetDailyPeers: 3050})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewCampaign(n, CampaignConfig{
			Observers: DefaultObserverFleet(8),
			StartDay:  0,
			EndDay:    30,
			Workers:   workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		ds, err := c.RunContext(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if ds.TotalPeers() == 0 {
			b.Fatal("empty campaign")
		}
	}
}

func BenchmarkCampaignSerial(b *testing.B)   { benchmarkCampaign(b, 1) }
func BenchmarkCampaignParallel(b *testing.B) { benchmarkCampaign(b, 0) }
func BenchmarkCampaignParallel4(b *testing.B) {
	benchmarkCampaign(b, 4)
}
