package measure

import (
	"fmt"
	"os"
	"sync/atomic"

	"github.com/i2pstudy/i2pstudy/internal/checkpoint"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/obs"
)

// This file is the streaming-fold layer of the campaign engine: the
// bookkeeping that makes campaign memory O(active work) instead of
// O(grid). Completed day units fold into the fixed-size Dataset
// accumulators and are dropped the moment they are folded; units that
// arrive too far out of order are evicted to the checkpoint layer (a
// spilled unit is by construction reloadable, so eviction is safe even
// mid-run) and reloaded when their fold turn comes.

// MemStats reports the campaign engine's retained-unit accounting —
// the evidence that a streaming run held O(workers) day units rather
// than O(days).
type MemStats struct {
	// PeakRetainedUnits is the high-water mark of merged day units
	// simultaneously resident in memory.
	PeakRetainedUnits int
	// UnitsEvicted counts day units spilled to the checkpoint store by
	// the reorder buffer before their fold turn.
	UnitsEvicted int
}

// MemStats returns the retained-unit accounting of the campaign's most
// recent (or in-progress) run.
func (c *Campaign) MemStats() MemStats {
	return MemStats{
		PeakRetainedUnits: int(c.peakRetained.Load()),
		UnitsEvicted:      int(c.evicted.Load()),
	}
}

// unitBytes estimates the resident size of one merged day unit. It is a
// telemetry estimate (struct sizes plus per-address and per-option
// payloads), not an exact heap measurement — the retained-unit COUNT is
// the contract the tests assert; bytes give operators a scale feel.
func unitBytes(recs []*netdb.RouterInfo) int64 {
	const (
		recBase  = 176 // RouterInfo struct + slice/map headers + pointer
		addrCost = 96  // RouterAddress struct + introducer slice header
		optCost  = 48  // map entry + small strings
	)
	b := int64(len(recs)) * recBase
	for _, ri := range recs {
		b += int64(len(ri.Addresses))*addrCost + int64(len(ri.Options))*optCost
	}
	return b
}

// retainUnit records one merged day unit entering memory.
func (c *Campaign) retainUnit(bytes int64) {
	n := c.retained.Add(1)
	for {
		p := c.peakRetained.Load()
		if n <= p || c.peakRetained.CompareAndSwap(p, n) {
			break
		}
	}
	s := campaignObs()
	s.retained.Add(1)
	s.retainedPeak.Set(c.peakRetained.Load())
	s.residentBytes.Add(bytes)
}

// releaseUnit records one merged day unit leaving memory, either folded
// into the Dataset or evicted to the spill store.
func (c *Campaign) releaseUnit(bytes int64, evicted bool) {
	c.retained.Add(-1)
	s := campaignObs()
	s.retained.Add(-1)
	s.residentBytes.Add(-bytes)
	if evicted {
		c.evicted.Add(1)
		s.evicted.Inc()
	}
}

// dayBuffer is the accumulator's reorder buffer: merged days can arrive
// out of order, the Dataset fold must not. In streaming mode the buffer
// is bounded — when more than slack units are waiting, the
// furthest-out day (the one folded last) is encoded and evicted to a
// checkpoint store, and reloaded when its turn comes. The spill target
// is the campaign's own checkpoint store when one is configured (the
// unit would be written there at fold time anyway, so eviction just
// writes it early); otherwise a private temp store is created lazily
// and removed when the run ends.
type dayBuffer struct {
	c     *Campaign
	slack int // <= 0: unbounded (retained mode)

	units   map[int]*mergedDay
	spilled map[int]bool

	store     *checkpoint.Store
	userStore bool   // store is the campaign's CheckpointDir store
	tmpDir    string // private spill dir, removed on close
}

func newDayBuffer(c *Campaign, store *checkpoint.Store, slack int) *dayBuffer {
	return &dayBuffer{
		c:         c,
		slack:     slack,
		units:     make(map[int]*mergedDay),
		spilled:   make(map[int]bool),
		store:     store,
		userStore: store != nil,
	}
}

// put inserts a merged day, evicting furthest-out units while the
// buffer exceeds its slack. put never blocks, which is what keeps the
// bounded mergedCh deadlock-free: the accumulator can always drain.
func (b *dayBuffer) put(md *mergedDay) error {
	b.units[md.day] = md
	if b.slack <= 0 {
		return nil
	}
	for len(b.units) > b.slack {
		if err := b.evictFurthest(); err != nil {
			return err
		}
	}
	return nil
}

// evictFurthest spills the largest buffered day: it is the last one the
// in-order fold will need, so evicting it frees memory for the longest
// time per spill.
func (b *dayBuffer) evictFurthest() error {
	worst := -1
	for d := range b.units {
		if d > worst {
			worst = d
		}
	}
	md := b.units[worst]
	if err := b.ensureStore(); err != nil {
		return err
	}
	data, err := encodeDayUnit(md.recs)
	if err != nil {
		return err
	}
	if err := b.store.Save(dayKey(worst), data); err != nil {
		return err
	}
	delete(b.units, worst)
	b.spilled[worst] = true
	md.recs = nil
	b.c.releaseUnit(md.bytes, true)
	return nil
}

// take returns the unit for day if it is available, reloading it from
// the spill store when it was evicted. reloaded reports a unit that
// came back from the spill store: its retained accounting was already
// released at eviction (it is folded immediately and never re-enters
// the buffer), so the caller must not release it again.
func (b *dayBuffer) take(day int) (md *mergedDay, reloaded bool, ok bool, err error) {
	if md, ok := b.units[day]; ok {
		delete(b.units, day)
		return md, false, true, nil
	}
	if !b.spilled[day] {
		return nil, false, false, nil
	}
	data, found, err := b.store.Load(dayKey(day))
	if err != nil {
		return nil, false, false, err
	}
	if !found {
		return nil, false, false, fmt.Errorf("measure: evicted day %d missing from spill store", day)
	}
	recs, err := decodeDayUnit(data)
	if err != nil {
		return nil, false, false, err
	}
	delete(b.spilled, day)
	return &mergedDay{day: day, recs: recs}, true, true, nil
}

// inCampaignStore reports whether a reloaded unit's spill bytes already
// live in the campaign's own checkpoint store (as opposed to the
// private temp store), in which case the fold must not write the unit
// again.
func (b *dayBuffer) inCampaignStore(reloaded bool) bool {
	return reloaded && b.userStore
}

// ensureStore lazily creates the private temp spill store for campaigns
// running without a CheckpointDir.
func (b *dayBuffer) ensureStore() error {
	if b.store != nil {
		return nil
	}
	dir, err := os.MkdirTemp("", "i2p-campaign-spill-")
	if err != nil {
		return fmt.Errorf("measure: spill store: %w", err)
	}
	store, err := checkpoint.Open(dir, b.c.checkpointManifest())
	if err != nil {
		os.RemoveAll(dir)
		return fmt.Errorf("measure: spill store: %w", err)
	}
	b.tmpDir = dir
	b.store = store
	return nil
}

// close releases accounting for any units stranded by an error and
// removes the private spill store. On a successful run the buffer is
// already empty.
func (b *dayBuffer) close() {
	for _, md := range b.units {
		b.c.releaseUnit(md.bytes, false)
		md.recs = nil
	}
	b.units = nil
	if b.tmpDir != "" {
		os.RemoveAll(b.tmpDir)
	}
}

// campaignStats holds the streaming engine's instrument handles; same
// lazy-resolution pattern as engineStats.
type campaignStats struct {
	reg *obs.Registry

	retained      *obs.Gauge   // i2p_measure_retained_units
	retainedPeak  *obs.Gauge   // i2p_measure_retained_units_peak
	residentBytes *obs.Gauge   // i2p_measure_resident_bytes
	evicted       *obs.Counter // i2p_measure_units_evicted_total
}

var disabledCampaignStats = &campaignStats{}

var cachedCampaignStats atomic.Pointer[campaignStats]

func resolveCampaignStats(r *obs.Registry) *campaignStats {
	return &campaignStats{
		reg: r,
		retained: r.Gauge("i2p_measure_retained_units",
			"Merged day units currently resident in campaign memory."),
		retainedPeak: r.Gauge("i2p_measure_retained_units_peak",
			"High-water mark of simultaneously resident merged day units."),
		residentBytes: r.Gauge("i2p_measure_resident_bytes",
			"Estimated bytes of merged day records resident in campaign memory."),
		evicted: r.Counter("i2p_measure_units_evicted_total",
			"Merged day units evicted to the spill store before their fold turn."),
	}
}

func campaignObs() *campaignStats {
	r := obs.Active()
	if r == nil {
		return disabledCampaignStats
	}
	s := cachedCampaignStats.Load()
	if s != nil && s.reg == r {
		return s
	}
	s = resolveCampaignStats(r)
	cachedCampaignStats.Store(s)
	return s
}

// Pre-create the campaign families on Enable so a scrape before the
// first campaign still sees them at zero.
func init() {
	obs.OnEnable(func(r *obs.Registry) { resolveCampaignStats(r) })
}
