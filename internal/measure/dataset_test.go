package measure

import (
	"net/netip"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// TestUnresolvedCountsDistinctAddresses is the regression test for the
// Unresolved accounting bug: one peer carrying one unresolvable address
// for ten days must count as ONE unresolved address, not ten. The
// pre-fix code incremented per (record, address, day) occurrence, so a
// single long-lived bad address inflated the summary once per day.
func TestUnresolvedCountsDistinctAddresses(t *testing.T) {
	n, err := sim.New(sim.Config{Seed: 3, Days: 1, TargetDailyPeers: 50})
	if err != nil {
		t.Fatal(err)
	}
	db := n.GeoDB()
	// The synthetic geo database resolves IPv6 only inside 2a10::/16, so
	// a documentation-range address is unresolvable by construction.
	bogus := netip.MustParseAddr("2001:db8::1")
	if _, ok := db.Lookup(bogus); ok {
		t.Fatal("test address unexpectedly resolves")
	}
	ri := &netdb.RouterInfo{
		Identity: netdb.HashFromUint64(1),
		Caps:     netdb.NewCaps(100, false, true),
		Addresses: []netdb.RouterAddress{
			{Transport: netdb.TransportNTCP, Addr: bogus, Port: 9001},
		},
	}

	ds := NewDataset(0, 10)
	for day := 0; day < 10; day++ {
		ds.accumulateDay(db, day, []*netdb.RouterInfo{ri})
	}
	if ds.Unresolved != 1 {
		t.Fatalf("Unresolved = %d, want 1 (one distinct unresolvable address over 10 days)", ds.Unresolved)
	}
	tr := ds.Peers[ri.Identity]
	if tr == nil || tr.IPCount() != 1 || tr.DaysObserved() != 10 {
		t.Fatalf("track mis-accumulated: %+v", tr)
	}
	// Unresolvable addresses still count toward the per-day IP totals
	// (they were observed, just not located), exactly as before the fix.
	for _, d := range ds.Days {
		if d.IPAll != 1 || d.IPv6 != 1 {
			t.Fatalf("day %d: IPAll=%d IPv6=%d, want 1/1", d.Day, d.IPAll, d.IPv6)
		}
	}
	// A second distinct bad address on a later day adds exactly one more.
	ri2 := &netdb.RouterInfo{
		Identity: netdb.HashFromUint64(2),
		Caps:     netdb.NewCaps(100, false, true),
		Addresses: []netdb.RouterAddress{
			{Transport: netdb.TransportNTCP, Addr: netip.MustParseAddr("2001:db8::2"), Port: 9001},
		},
	}
	ds2 := NewDataset(0, 10)
	for day := 0; day < 10; day++ {
		ds2.accumulateDay(db, day, []*netdb.RouterInfo{ri, ri2})
	}
	if ds2.Unresolved != 2 {
		t.Fatalf("Unresolved = %d, want 2", ds2.Unresolved)
	}
}

// TestTracksAlwaysObserved proves the invariant that let SurvivalCurve
// (and every other ds.Peers iteration) drop its un-observed-track guard:
// Dataset.track requires the observing day, so every track in a
// campaign-built dataset has a coherent, observed [FirstDay, LastDay]
// window.
func TestTracksAlwaysObserved(t *testing.T) {
	_, ds := dataset(t)
	for h, tr := range ds.Peers {
		if tr.FirstDay < ds.StartDay || tr.LastDay >= ds.EndDay || tr.FirstDay > tr.LastDay {
			t.Fatalf("%s: incoherent window [%d, %d]", h, tr.FirstDay, tr.LastDay)
		}
		if tr.DaysObserved() == 0 {
			t.Fatalf("%s: track exists but was never observed", h)
		}
		for _, day := range []int{tr.FirstDay, tr.LastDay} {
			idx := day - ds.StartDay
			if tr.seen[idx>>6]&(1<<(idx&63)) == 0 {
				t.Fatalf("%s: day %d bounds the window but is not marked seen", h, day)
			}
		}
	}
}

// TestPeerTrackCompactSets checks the sorted-set insertion helpers the
// compact representation leans on.
func TestPeerTrackCompactSets(t *testing.T) {
	var s []uint32
	for _, v := range []uint32{5, 1, 9, 5, 1, 3} {
		s, _ = insertSorted(s, v)
	}
	want := []uint32{1, 3, 5, 9}
	if len(s) != len(want) {
		t.Fatalf("set = %v, want %v", s, want)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("set = %v, want %v", s, want)
		}
	}
	if cc := unpackCountry(packCountry("US")); cc != "US" {
		t.Fatalf("country round-trip = %q", cc)
	}
	if packCountry("AA") >= packCountry("AB") || packCountry("AB") >= packCountry("BA") {
		t.Fatal("packed country order must match lexicographic order")
	}
}
