package measure

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/checkpoint"
	"github.com/i2pstudy/i2pstudy/internal/faults"
	"github.com/i2pstudy/i2pstudy/internal/geo"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// CampaignConfig describes one measurement campaign: a set of observer
// routers run over a day range, mirroring Section 5's setup of "20 routers
// ... 10 floodfill and 10 non-floodfill" for three months.
type CampaignConfig struct {
	// Observers to run. See DefaultObserverFleet.
	Observers []sim.ObserverConfig
	// StartDay (inclusive) and EndDay (exclusive) in study days.
	StartDay, EndDay int
	// SnapshotDir, when non-empty, persists one observer's netDb to disk
	// each day (routerInfo-*.dat files) exactly as the paper's harness
	// watched the Java router's netDb directory. Mostly useful for the
	// CLI tools; analyses never read it back. Each day directory appears
	// atomically (written to a temp dir, then renamed), so an interrupted
	// campaign never leaves a half-written day behind.
	SnapshotDir string
	// Workers caps the number of concurrent (day, observer) captures.
	// Zero or negative selects one worker per CPU; 1 selects the
	// reference serial path. Every worker count yields a byte-identical
	// Dataset: captures are deterministic per (observer seed, day) and
	// the merge tie-breaks by observer order, exactly as the serial loop
	// does.
	Workers int
	// CheckpointDir, when non-empty, spills each completed day's merged
	// observations to a checkpoint.Store so an interrupted campaign
	// resumes by loading finished days instead of recomputing them. The
	// directory is keyed by a manifest (network + fleet config hash,
	// seed, engine version); resuming against state from a different run
	// fails with a *checkpoint.MismatchError. Because accumulation
	// always proceeds in ascending day order, a resumed run's Dataset is
	// byte-identical to an uninterrupted one at any Workers value.
	CheckpointDir string
	// Retain disables the streaming fold: the parallel engine keeps
	// every pending merged day in memory (an unbounded reorder buffer
	// and a day-deep channel), as it did before streaming existed. The
	// zero value streams: completed day units fold into the fixed-size
	// Dataset accumulators and are dropped immediately, the reorder
	// buffer is bounded, and units arriving too far out of order are
	// evicted to the checkpoint layer and reloaded at their fold turn —
	// campaign memory stays O(workers) day units instead of O(days).
	// Both modes produce byte-identical Datasets at any Workers value.
	Retain bool
}

// DefaultObserverFleet returns the paper's main fleet: count observers at
// 8 MB/s, alternating floodfill and non-floodfill modes.
func DefaultObserverFleet(count int) []sim.ObserverConfig {
	fleet := make([]sim.ObserverConfig, count)
	for i := range fleet {
		fleet[i] = sim.ObserverConfig{
			Name:       fmt.Sprintf("obs-%02d", i),
			Floodfill:  i%2 == 0,
			SharedKBps: sim.MaxSharedKBps,
			Seed:       uint64(1000 + i),
		}
	}
	return fleet
}

// Campaign binds a configuration to a network.
type Campaign struct {
	cfg CampaignConfig
	net *sim.Network
	obs []*sim.Observer

	// Retained-unit accounting (see stream.go / MemStats).
	retained     atomic.Int64
	peakRetained atomic.Int64
	evicted      atomic.Int64

	// streamSlack overrides the streaming reorder buffer's bound
	// (default: one unit per worker). Test hook only.
	streamSlack int
}

// NewCampaign validates cfg against the network.
func NewCampaign(network *sim.Network, cfg CampaignConfig) (*Campaign, error) {
	if len(cfg.Observers) == 0 {
		return nil, fmt.Errorf("measure: campaign needs at least one observer")
	}
	if cfg.StartDay < 0 || cfg.EndDay > network.Days() || cfg.StartDay >= cfg.EndDay {
		return nil, fmt.Errorf("measure: invalid day range [%d, %d) for a %d-day network",
			cfg.StartDay, cfg.EndDay, network.Days())
	}
	c := &Campaign{cfg: cfg, net: network}
	for _, ocfg := range cfg.Observers {
		c.obs = append(c.obs, network.NewObserver(ocfg))
	}
	return c, nil
}

// Observers returns the instantiated observers.
func (c *Campaign) Observers() []*sim.Observer { return c.obs }

// Run executes the campaign with a background context. See RunContext.
func (c *Campaign) Run() (*Dataset, error) {
	return c.RunContext(context.Background())
}

// RunContext executes the campaign: for every day, every observer captures
// its RouterInfos (the union of its hourly netDb scans), the records are
// merged, and the dataset accumulators are updated. The equivalent of the
// paper's daily netDb cleanup is implicit: each day starts from an empty
// observation set.
//
// With Workers != 1 the engine fans per-(day, observer) captures across a
// worker pool, merges each day's records into hash-sharded maps, and
// pipelines days: day N+1 collection overlaps day N accumulation and
// snapshotting. Accumulation itself always proceeds in ascending day
// order, so the resulting Dataset is identical to the serial path's.
func (c *Campaign) RunContext(ctx context.Context) (*Dataset, error) {
	c.retained.Store(0)
	c.peakRetained.Store(0)
	c.evicted.Store(0)
	ds := NewDataset(c.cfg.StartDay, c.cfg.EndDay)
	snap, err := c.newSnapshotter()
	if err != nil {
		return nil, err
	}
	var store *checkpoint.Store
	from := c.cfg.StartDay
	if c.cfg.CheckpointDir != "" {
		store, err = checkpoint.Open(c.cfg.CheckpointDir, c.checkpointManifest())
		if err != nil {
			return nil, err
		}
		from, err = c.resume(ds, snap, store)
		if err != nil {
			return nil, err
		}
	}
	workers := resolveWorkers(c.cfg.Workers)
	if workers <= 1 {
		err = c.runSerial(ctx, ds, snap, store, from)
	} else {
		err = c.runParallel(ctx, ds, snap, store, from, workers)
	}
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// resume folds previously checkpointed days into ds and returns the
// first day still to compute. Days are committed strictly in ascending
// order (both run paths accumulate that way), so checkpointed days form
// a contiguous prefix; a stray later unit — possible only if a past run
// used a different day range, which the manifest hash already refuses —
// is simply recomputed and overwritten.
func (c *Campaign) resume(ds *Dataset, snap *snapshotter, store *checkpoint.Store) (int, error) {
	db := c.net.GeoDB()
	day := c.cfg.StartDay
	for ; day < c.cfg.EndDay; day++ {
		data, ok, err := store.Load(dayKey(day))
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		recs, err := decodeDayUnit(data)
		if err != nil {
			return 0, err
		}
		ds.accumulateDay(db, day, recs)
		// Re-write the snapshot so resumed runs leave the same SnapshotDir
		// an uninterrupted run would (cheap, idempotent, atomic).
		if err := snap.write(day, recs); err != nil {
			return 0, err
		}
	}
	return day, nil
}

// commitDay finalizes one computed day: fold into the Dataset, persist
// the netDb snapshot, spill the checkpoint unit, and cross the fault
// boundary. The checkpoint write comes last of the persistence steps,
// so a unit on disk guarantees the snapshot for that day is complete.
// alreadySpilled marks a unit the streaming reorder buffer evicted to
// the campaign's own checkpoint store before its fold turn: the bytes
// on disk are identical to what would be written here (same canonical
// encoding of the same records), so the save is skipped. An evicted
// unit can land on disk before earlier days have committed, but resume
// only consumes the contiguous prefix — a stray later unit is simply
// recomputed and overwritten, exactly as the resume contract documents.
func (c *Campaign) commitDay(ds *Dataset, db *geo.DB, snap *snapshotter, store *checkpoint.Store,
	day int, recs []*netdb.RouterInfo, alreadySpilled bool) error {
	ds.accumulateDay(db, day, recs)
	if err := snap.write(day, recs); err != nil {
		return err
	}
	if store != nil && !alreadySpilled {
		data, err := encodeDayUnit(recs)
		if err != nil {
			return err
		}
		if err := store.Save(dayKey(day), data); err != nil {
			return err
		}
	}
	return faults.Hit("measure.campaign.day")
}

// runSerial is the reference implementation: days in order, observers in
// order, one merged map per day. The parallel engine must stay
// byte-identical to it (see TestCampaignParallelMatchesSerial).
func (c *Campaign) runSerial(ctx context.Context, ds *Dataset, snap *snapshotter, store *checkpoint.Store, from int) error {
	db := c.net.GeoDB()
	// One merge map reused across days: each day starts from an empty map
	// (the daily netDb cleanup) but keeps the previous day's capacity, so
	// a long campaign stops paying rehash-and-discard per day.
	merged := make(map[netdb.Hash]*netdb.RouterInfo)
	var recs []*netdb.RouterInfo
	for day := from; day < c.cfg.EndDay; day++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Merge all observers' captures for the day, newest record wins;
		// on a Published tie the earliest observer wins.
		clear(merged)
		for _, o := range c.obs {
			for _, ri := range o.CollectDay(day) {
				prev, ok := merged[ri.Identity]
				if !ok || ri.Published.After(prev.Published) {
					merged[ri.Identity] = ri
				}
			}
		}
		// Canonicalize to identity order before folding — the fold order
		// that makes interned IDs (and checkpoint bytes) deterministic.
		recs = recs[:0]
		for _, ri := range merged {
			recs = append(recs, ri)
		}
		sortByIdentity(recs)
		// The serial path is already streaming by construction: exactly
		// one day unit is resident at a time, and it is dropped (the
		// slice reused) as soon as it is folded and spilled.
		b := unitBytes(recs)
		c.retainUnit(b)
		err := c.commitDay(ds, db, snap, store, day, recs, false)
		c.releaseUnit(b, false)
		if err != nil {
			return err
		}
	}
	return nil
}

// mergedDay is one day's deduplicated observations in canonical
// (identity-sorted) order — the one fold order both run paths share, so
// interned IDs and checkpoint bytes never depend on shard layout or map
// iteration order.
type mergedDay struct {
	day  int
	recs []*netdb.RouterInfo
	// bytes is the unit's estimated resident size (see unitBytes),
	// carried so release accounting matches retain accounting exactly.
	bytes int64
}

// runParallel is the concurrent campaign engine. Three overlapping stages:
//
//  1. capture — a FanOut pool runs CollectDay per (day, observer) and
//     partitions each capture by identity-hash shard;
//  2. merge — the worker completing a day's last capture merges its
//     shards, each shard scanning observers in order (preserving the
//     serial tie-break) on its own goroutine;
//  3. accumulate — a single consumer folds merged days into the Dataset
//     in ascending day order and writes snapshots, overlapping with
//     later days' capture and merge work.
func (c *Campaign) runParallel(ctx context.Context, ds *Dataset, snap *snapshotter, store *checkpoint.Store, from, workers int) error {
	db := c.net.GeoDB()
	nDays := c.cfg.EndDay - from
	nObs := len(c.obs)
	if nDays <= 0 {
		return ctx.Err()
	}
	shards := mergeShards(workers)

	// captures[d][o][s] holds observer o's day-d records for hash shard s.
	captures := make([][][][]*netdb.RouterInfo, nDays)
	pending := make([]atomic.Int32, nDays)
	for d := range captures {
		captures[d] = make([][][]*netdb.RouterInfo, nObs)
		pending[d].Store(int32(nObs))
	}
	// Streaming bounds the pipeline at both ends: the merged-day channel
	// holds at most one unit per worker (a worker that races too far
	// ahead of the fold blocks on send, throttling capture), and the
	// reorder buffer holds at most slack units before evicting to the
	// checkpoint layer. Together they cap resident day units at
	// 2*workers + slack + 1 regardless of campaign length. Retained mode
	// keeps the old day-deep channel and unbounded buffer.
	streaming := !c.cfg.Retain
	chCap, slack := nDays, 0
	if streaming {
		chCap = workers
		slack = c.streamSlack
		if slack <= 0 {
			slack = workers
		}
	}
	mergedCh := make(chan *mergedDay, chCap)

	// Shard maps are recycled across days: the merge stage flattens each
	// day into a sorted record slice and immediately clears and returns
	// its maps to the pool, so at steady state the engine holds roughly
	// (in-flight days x shards) maps instead of allocating one set per
	// day — the difference between O(days) and O(workers) map churn at
	// 30K+ peers. Recycling cannot affect results: the flatten copies the
	// record pointers out before the map is reused.
	mapPool := sync.Pool{New: func() any { return make(map[netdb.Hash]*netdb.RouterInfo) }}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	collectErr := make(chan error, 1)
	go func() {
		// Task order is day-major, so early days complete (and unblock the
		// in-order accumulator) first.
		collectErr <- FanOut(cctx, nDays*nObs, workers, func(t int) error {
			di, oi := t/nObs, t%nObs
			day := from + di
			captures[di][oi] = shardCapture(c.obs[oi].CollectDay(day), shards)
			if pending[di].Add(-1) != 0 {
				return nil
			}
			// Last capture for this day: merge its shards in parallel.
			mergedShards := make([]map[netdb.Hash]*netdb.RouterInfo, shards)
			var wg sync.WaitGroup
			for s := 0; s < shards; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					m := mapPool.Get().(map[netdb.Hash]*netdb.RouterInfo)
					for o := 0; o < nObs; o++ {
						for _, ri := range captures[di][o][s] {
							prev, ok := m[ri.Identity]
							if !ok || ri.Published.After(prev.Published) {
								m[ri.Identity] = ri
							}
						}
					}
					mergedShards[s] = m
				}(s)
			}
			wg.Wait()
			captures[di] = nil // day fully merged; release the raw captures
			// Flatten to the canonical identity-sorted slice off the
			// accumulator's critical path, recycling the shard maps now.
			n := 0
			for _, m := range mergedShards {
				n += len(m)
			}
			recs := make([]*netdb.RouterInfo, 0, n)
			for _, m := range mergedShards {
				for _, ri := range m {
					recs = append(recs, ri)
				}
				clear(m)
				mapPool.Put(m)
			}
			sortByIdentity(recs)
			md := &mergedDay{day: day, recs: recs, bytes: unitBytes(recs)}
			c.retainUnit(md.bytes)
			mergedCh <- md
			return nil
		})
		close(mergedCh)
	}()

	// In-order accumulator over the (bounded, in streaming mode) reorder
	// buffer: merged days can arrive out of order, the Dataset fold must
	// not. Each unit is folded into the fixed-size accumulators and
	// dropped — or evicted to the checkpoint layer and reloaded at its
	// turn — so the buffer never blocks and the channel always drains.
	buffer := newDayBuffer(c, store, slack)
	defer buffer.close()
	next := from
	var accErr error
	for md := range mergedCh {
		if accErr != nil {
			c.releaseUnit(md.bytes, false)
			continue // failing already; drain the channel
		}
		if err := buffer.put(md); err != nil {
			accErr = err
			cancel()
			continue
		}
		for accErr == nil {
			m, reloaded, ok, err := buffer.take(next)
			if err != nil {
				accErr = err
				cancel()
				break
			}
			if !ok {
				break
			}
			if err := c.commitDay(ds, db, snap, store, next, m.recs, buffer.inCampaignStore(reloaded)); err != nil {
				accErr = err
				cancel() // stop the capture pool; drain below
			}
			m.recs = nil // folded and spilled; drop the raw records
			if !reloaded {
				// A reloaded unit's accounting was already released at
				// eviction; releasing it again would drive the gauges
				// negative.
				c.releaseUnit(m.bytes, false)
			}
			next++
		}
	}
	if err := <-collectErr; accErr == nil && err != nil {
		return err
	}
	return accErr
}

// shardCapture partitions one observer-day capture by identity hash.
func shardCapture(recs []*netdb.RouterInfo, shards int) [][]*netdb.RouterInfo {
	parts := make([][]*netdb.RouterInfo, shards)
	if shards == 1 {
		parts[0] = recs
		return parts
	}
	for s := range parts {
		parts[s] = make([]*netdb.RouterInfo, 0, len(recs)/shards+1)
	}
	for _, ri := range recs {
		s := int(ri.Identity[0]) % shards
		parts[s] = append(parts[s], ri)
	}
	return parts
}

// accumulateDay folds one day's merged observations into the dataset.
// recs must be in canonical identity-sorted order: intern IDs are
// assigned on first sight, so the fold order — ascending days, sorted
// records within a day — is what makes the Dataset byte-identical across
// worker counts, resume, and streaming/retained modes.
func (ds *Dataset) accumulateDay(db *geo.DB, day int, recs []*netdb.RouterInfo) {
	stats := ds.day(day)
	// Per-day distinct-address counting rides the intern table's lastMark
	// slot (day+1, so zero means never) instead of a fresh per-day map.
	marker := int32(day + 1)

	for _, ri := range recs {
		stats.Peers++

		// Peer tracking.
		t := ds.track(ri.Identity, day)

		// Addresses.
		for _, addr := range ri.IPs() {
			id, g, fresh := ds.addrs.intern(db, addr)
			if fresh && !g.resolved {
				// One count per distinct unresolvable address — not per
				// (record, address, day) occurrence, which used to inflate
				// the summary once per day a bad address stayed alive.
				ds.Unresolved++
			}
			t.ips, _ = insertSorted(t.ips, id)
			if ds.addrs.lastMark[id] != marker {
				ds.addrs.lastMark[id] = marker
				stats.IPAll++
				if g.is4 {
					stats.IPv4++
				} else {
					stats.IPv6++
				}
			}
			if g.resolved {
				t.asns, _ = insertSorted(t.asns, g.asn)
				t.countries, _ = insertSorted(t.countries, g.country)
			}
		}

		// Status classification (Section 5.1 / Figure 6).
		firewalled := ri.Firewalled()
		hidden := ri.HiddenPeer()
		if ri.HasKnownIP() {
			t.EverKnownIP = true
		} else {
			stats.UnknownIP++
		}
		if firewalled {
			stats.Firewalled++
			t.EverFirewalled = true
		}
		if hidden {
			stats.Hidden++
			t.EverHidden = true
		}
		if firewalled && hidden {
			stats.Overlap++
		}

		// Capacity flags (Figure 9, Table 1).
		published := ri.Caps.PublishedClasses()
		for _, cl := range published {
			stats.ClassCounts[cl]++
			t.classMask |= 1 << cl.Index()
		}
		t.primaryCount[ri.Caps.Class.Index()]++
		if ri.Caps.Floodfill {
			stats.Floodfill++
			t.EverFloodfill = true
			for _, cl := range published {
				stats.GroupClass["floodfill"][cl]++
			}
		}
		if ri.Caps.Reachable {
			stats.Reachable++
			for _, cl := range published {
				stats.GroupClass["reachable"][cl]++
			}
		} else {
			stats.Unreachable++
			for _, cl := range published {
				stats.GroupClass["unreachable"][cl]++
			}
		}
	}
}

// snapshotter persists one day's merged netDb at a time. Day directories
// are staged under a temp name and renamed into place so readers (and
// interrupted runs) only ever see complete days.
type snapshotter struct {
	c     *Campaign
	store *netdb.Store
}

func (c *Campaign) newSnapshotter() (*snapshotter, error) {
	if c.cfg.SnapshotDir == "" {
		return &snapshotter{}, nil
	}
	if err := os.MkdirAll(c.cfg.SnapshotDir, 0o755); err != nil {
		return nil, fmt.Errorf("measure: snapshot dir: %w", err)
	}
	// A crash between stage and rename leaves a ".day-NNN.tmp" staging
	// dir behind. Sweep them at startup: they are partial by definition
	// (the rename never happened) and must never be mistaken for — or
	// left to shadow — a complete day.
	entries, err := os.ReadDir(c.cfg.SnapshotDir)
	if err != nil {
		return nil, fmt.Errorf("measure: snapshot dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, ".day-") && strings.HasSuffix(name, ".tmp") {
			if err := os.RemoveAll(filepath.Join(c.cfg.SnapshotDir, name)); err != nil {
				return nil, fmt.Errorf("measure: sweeping orphan snapshot %s: %w", name, err)
			}
		}
	}
	return &snapshotter{c: c, store: netdb.NewStore(false)}, nil
}

func (s *snapshotter) write(day int, recs []*netdb.RouterInfo) error {
	if s.store == nil {
		return nil
	}
	now := s.c.net.DayTime(day)
	s.store.Clear() // the daily cleanup of Section 4.3
	for _, ri := range recs {
		s.store.PutRouterInfo(ri, now)
	}
	final := filepath.Join(s.c.cfg.SnapshotDir, fmt.Sprintf("day-%03d", day))
	tmp := filepath.Join(s.c.cfg.SnapshotDir, fmt.Sprintf(".day-%03d.tmp", day))
	if err := os.RemoveAll(tmp); err != nil {
		return fmt.Errorf("measure: snapshot: %w", err)
	}
	if err := s.store.SaveDir(filepath.Join(tmp, "netDb")); err != nil {
		os.RemoveAll(tmp)
		return err
	}
	// Same durability contract as internal/checkpoint's stage→fsync→
	// rename: fsync the staged tree before the rename and the parent
	// after it, or a power loss can leave a "complete" day-NNN directory
	// holding truncated routerInfo files (SaveDir itself never syncs).
	// The campaign checkpoint unit is written after this snapshot, so a
	// day unit on disk implies its snapshot is durable too.
	if err := checkpoint.SyncTree(tmp); err != nil {
		os.RemoveAll(tmp)
		return fmt.Errorf("measure: snapshot: %w", err)
	}
	if err := os.RemoveAll(final); err != nil {
		os.RemoveAll(tmp)
		return fmt.Errorf("measure: snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.RemoveAll(tmp)
		return fmt.Errorf("measure: snapshot: %w", err)
	}
	if err := checkpoint.SyncDir(s.c.cfg.SnapshotDir); err != nil {
		return fmt.Errorf("measure: snapshot: %w", err)
	}
	return nil
}

// WriteSummary writes a short plain-text campaign summary to path. The
// write is atomic (stage + fsync + rename via checkpoint.WriteFileAtomic)
// so a crash mid-write never leaves a torn summary beside checkpointed
// artifacts that are all stage-then-rename.
func (ds *Dataset) WriteSummary(path string, started time.Time) error {
	var out string
	out += fmt.Sprintf("campaign days: [%d, %d)\n", ds.StartDay, ds.EndDay)
	out += fmt.Sprintf("distinct peers observed: %d\n", ds.TotalPeers())
	out += fmt.Sprintf("mean daily peers: %.0f\n", ds.MeanDailyPeers())
	out += fmt.Sprintf("unresolved addresses: %d\n", ds.Unresolved)
	out += fmt.Sprintf("generated: %s\n", started.UTC().Format(time.RFC3339))
	return checkpoint.WriteFileAtomic(path, []byte(out))
}
