package measure

import (
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/geo"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// CampaignConfig describes one measurement campaign: a set of observer
// routers run over a day range, mirroring Section 5's setup of "20 routers
// ... 10 floodfill and 10 non-floodfill" for three months.
type CampaignConfig struct {
	// Observers to run. See DefaultObserverFleet.
	Observers []sim.ObserverConfig
	// StartDay (inclusive) and EndDay (exclusive) in study days.
	StartDay, EndDay int
	// SnapshotDir, when non-empty, persists one observer's netDb to disk
	// each day (routerInfo-*.dat files) exactly as the paper's harness
	// watched the Java router's netDb directory. Mostly useful for the
	// CLI tools; analyses never read it back.
	SnapshotDir string
}

// DefaultObserverFleet returns the paper's main fleet: count observers at
// 8 MB/s, alternating floodfill and non-floodfill modes.
func DefaultObserverFleet(count int) []sim.ObserverConfig {
	fleet := make([]sim.ObserverConfig, count)
	for i := range fleet {
		fleet[i] = sim.ObserverConfig{
			Name:       fmt.Sprintf("obs-%02d", i),
			Floodfill:  i%2 == 0,
			SharedKBps: sim.MaxSharedKBps,
			Seed:       uint64(1000 + i),
		}
	}
	return fleet
}

// Campaign binds a configuration to a network.
type Campaign struct {
	cfg CampaignConfig
	net *sim.Network
	obs []*sim.Observer
}

// NewCampaign validates cfg against the network.
func NewCampaign(network *sim.Network, cfg CampaignConfig) (*Campaign, error) {
	if len(cfg.Observers) == 0 {
		return nil, fmt.Errorf("measure: campaign needs at least one observer")
	}
	if cfg.StartDay < 0 || cfg.EndDay > network.Days() || cfg.StartDay >= cfg.EndDay {
		return nil, fmt.Errorf("measure: invalid day range [%d, %d) for a %d-day network",
			cfg.StartDay, cfg.EndDay, network.Days())
	}
	c := &Campaign{cfg: cfg, net: network}
	for _, ocfg := range cfg.Observers {
		c.obs = append(c.obs, network.NewObserver(ocfg))
	}
	return c, nil
}

// Observers returns the instantiated observers.
func (c *Campaign) Observers() []*sim.Observer { return c.obs }

// Run executes the campaign: for every day, every observer captures its
// RouterInfos (the union of its hourly netDb scans), the records are
// decoded and merged, and the dataset accumulators are updated. The
// equivalent of the paper's daily netDb cleanup is implicit: each day
// starts from an empty observation set.
func (c *Campaign) Run() (*Dataset, error) {
	ds := NewDataset(c.cfg.StartDay, c.cfg.EndDay)
	db := c.net.GeoDB()

	var snapshotStore *netdb.Store
	if c.cfg.SnapshotDir != "" {
		snapshotStore = netdb.NewStore(false)
	}

	for day := c.cfg.StartDay; day < c.cfg.EndDay; day++ {
		// Merge all observers' captures for the day, newest record wins.
		merged := make(map[netdb.Hash]*netdb.RouterInfo)
		for _, o := range c.obs {
			for _, ri := range o.CollectDay(day) {
				prev, ok := merged[ri.Identity]
				if !ok || ri.Published.After(prev.Published) {
					merged[ri.Identity] = ri
				}
			}
		}
		c.accumulateDay(ds, db, day, merged)

		if snapshotStore != nil {
			now := c.net.DayTime(day)
			snapshotStore.Clear() // the daily cleanup of Section 4.3
			for _, ri := range merged {
				snapshotStore.PutRouterInfo(ri, now)
			}
			dir := filepath.Join(c.cfg.SnapshotDir, fmt.Sprintf("day-%03d", day), "netDb")
			if err := snapshotStore.SaveDir(dir); err != nil {
				return nil, err
			}
		}
	}
	return ds, nil
}

// accumulateDay folds one day's merged observations into the dataset.
func (c *Campaign) accumulateDay(ds *Dataset, db *geo.DB, day int, merged map[netdb.Hash]*netdb.RouterInfo) {
	stats := ds.day(day)
	ipSeen := make(map[netip.Addr]bool)

	for h, ri := range merged {
		stats.Peers++

		// Peer tracking.
		t := ds.track(h)
		if t.FirstDay < 0 {
			t.FirstDay = day
		}
		t.LastDay = day
		t.SeenDays[day-ds.StartDay] = true

		// Addresses.
		hasV4, hasV6 := false, false
		for _, addr := range ri.IPs() {
			t.IPs[addr] = true
			if !ipSeen[addr] {
				ipSeen[addr] = true
				stats.IPAll++
				if addr.Is4() {
					stats.IPv4++
				} else {
					stats.IPv6++
				}
			}
			if addr.Is4() {
				hasV4 = true
			} else {
				hasV6 = true
			}
			if rec, ok := db.Lookup(addr); ok {
				t.ASNs[rec.ASN] = true
				t.Countries[rec.CountryCode] = true
			} else {
				ds.Unresolved++
			}
		}
		_ = hasV4
		_ = hasV6

		// Status classification (Section 5.1 / Figure 6).
		firewalled := ri.Firewalled()
		hidden := ri.HiddenPeer()
		if ri.HasKnownIP() {
			t.EverKnownIP = true
		} else {
			stats.UnknownIP++
		}
		if firewalled {
			stats.Firewalled++
			t.EverFirewalled = true
		}
		if hidden {
			stats.Hidden++
			t.EverHidden = true
		}
		if firewalled && hidden {
			stats.Overlap++
		}

		// Capacity flags (Figure 9, Table 1).
		published := ri.Caps.PublishedClasses()
		for _, cl := range published {
			stats.ClassCounts[cl]++
			t.Classes[cl] = true
		}
		t.primaryCount[ri.Caps.Class]++
		if ri.Caps.Floodfill {
			stats.Floodfill++
			t.EverFloodfill = true
			for _, cl := range published {
				stats.GroupClass["floodfill"][cl]++
			}
		}
		if ri.Caps.Reachable {
			stats.Reachable++
			for _, cl := range published {
				stats.GroupClass["reachable"][cl]++
			}
		} else {
			stats.Unreachable++
			for _, cl := range published {
				stats.GroupClass["unreachable"][cl]++
			}
		}
	}
}

// WriteSummary writes a short plain-text campaign summary to path.
func (ds *Dataset) WriteSummary(path string, started time.Time) error {
	var out string
	out += fmt.Sprintf("campaign days: [%d, %d)\n", ds.StartDay, ds.EndDay)
	out += fmt.Sprintf("distinct peers observed: %d\n", ds.TotalPeers())
	out += fmt.Sprintf("mean daily peers: %.0f\n", ds.MeanDailyPeers())
	out += fmt.Sprintf("unresolved addresses: %d\n", ds.Unresolved)
	out += fmt.Sprintf("generated: %s\n", started.UTC().Format(time.RFC3339))
	return os.WriteFile(path, []byte(out), 0o644)
}
