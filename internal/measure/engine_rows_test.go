package measure

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestPlanRowsGroupsAndSortsStably(t *testing.T) {
	// 3 rows over 9 tasks laid out row-major (task i -> row i%3), with
	// keys chosen so sorting reorders within rows but ties keep index
	// order.
	keys := []int{5, 1, 1, 2, 1, 0, 2, 9, 0}
	plan := PlanRows(len(keys), 3,
		func(i int) int { return i % 3 },
		func(i int) int { return keys[i] })
	want := RowPlan{
		{3, 6, 0}, // row 0: tasks 0,3,6 with keys 5,2,2 -> 3 and 6 tie at 2
		{1, 4, 7}, // row 1: tasks 1,4,7 with keys 1,1,9 -> 1 and 4 tie at 1
		{5, 8, 2}, // row 2: tasks 2,5,8 with keys 1,0,0 -> 5 and 8 tie at 0
	}
	if !reflect.DeepEqual(plan, want) {
		t.Fatalf("plan = %v, want %v", plan, want)
	}
	if plan.Tasks() != len(keys) {
		t.Fatalf("Tasks() = %d, want %d", plan.Tasks(), len(keys))
	}
}

// TestFanRowsRunsRowsSequentially: every task runs exactly once, and
// within a row tasks run in listed order, at any worker count.
func TestFanRowsRunsRowsSequentially(t *testing.T) {
	plan := RowPlan{{0, 3, 6}, {1, 4}, {2, 5, 7, 8}}
	for _, workers := range []int{1, 2, 8} {
		var mu sync.Mutex
		perRow := make(map[int][]int)
		err := FanRows(context.Background(), plan, workers, func(row, task int) error {
			mu.Lock()
			perRow[row] = append(perRow[row], task)
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for r, want := range plan {
			if !reflect.DeepEqual(perRow[r], []int(want)) {
				t.Fatalf("workers=%d: row %d ran %v, want %v", workers, r, perRow[r], want)
			}
		}
	}
}

func TestFanRowsStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	// One long row and a failing row: the long row must stop early once
	// the failure lands, and the failing row's later tasks never run.
	long := make([]int, 100)
	for i := range long {
		long[i] = i
	}
	plan := RowPlan{long, {100, 101, 102}}
	var ran sync.Map
	err := FanRows(context.Background(), plan, 2, func(row, task int) error {
		ran.Store(task, true)
		if task == 100 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := ran.Load(101); ok {
		t.Fatal("task after the failing task ran in the same row")
	}
}

func TestFanRowsCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := FanRows(ctx, RowPlan{{0, 1}}, 2, func(row, task int) error {
		return fmt.Errorf("task %d ran under a cancelled context", task)
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFanRowsSlotDeterminism: writing into task-indexed slots yields
// identical output at any worker count — the contract the sweep engines
// inherit.
func TestFanRowsSlotDeterminism(t *testing.T) {
	n := 24
	plan := PlanRows(n, 4,
		func(i int) int { return i % 4 },
		func(i int) int { return i / 4 })
	run := func(workers int) []int {
		out := make([]int, n)
		// Per-row rolling state: each row accumulates a running sum its
		// cells fold, the shape the censor sweep uses.
		sums := make([]int, len(plan))
		if err := FanRows(context.Background(), plan, workers, func(row, task int) error {
			sums[row] += task
			out[task] = sums[row]
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 16} {
		if got := run(workers); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: %v != serial %v", workers, got, serial)
		}
	}
}
