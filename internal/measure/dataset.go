// Package measure implements the paper's measurement pipeline: observer
// campaigns over a (simulated) I2P network, the hourly-capture /
// daily-cleanup bookkeeping of Section 4.3, and the analyses behind every
// population, churn, capacity and geography figure in Section 5.
package measure

import (
	"math/bits"
	"net/netip"
	"sort"

	"github.com/i2pstudy/i2pstudy/internal/geo"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

// PeerTrack accumulates everything the campaign learned about one peer
// (keyed by identity hash), mirroring what the paper's post-processing
// derived from archived RouterInfos.
//
// The representation is deliberately compact — a bitset of seen days and
// sorted slices of interned IDs instead of per-peer maps — because a
// global-scale campaign holds one PeerTrack per distinct peer for the
// whole run. At the paper's scale (30.5K daily peers, 90 days) the old
// five-maps-per-peer layout dominated the heap; the compact layout is a
// few dozen bytes per peer plus the shared intern tables. Fold order is
// canonical (ascending day, identity-sorted within a day), so the
// interned IDs — and therefore the whole Dataset — are byte-identical
// across worker counts, resume, and streaming/retained modes.
type PeerTrack struct {
	Hash netdb.Hash

	// FirstDay and LastDay bound the observation window (study days).
	// A track is only ever created by an observation, so FirstDay is
	// always a real day — see Dataset.track.
	FirstDay, LastDay int
	// seen is a bitset over [StartDay, EndDay) marking observed days.
	seen []uint64

	// ips holds the interned IDs (Dataset.addrs) of every distinct
	// public address observed, sorted ascending.
	ips []uint32
	// asns holds the distinct ASNs resolved for those addresses, sorted.
	asns []uint32
	// countries holds the distinct resolved countries as packed ISO-2
	// codes (see packCountry), sorted.
	countries []uint16

	// classMask has bit Index() set for every bandwidth letter seen
	// across the campaign (primary + legacy + fluctuation).
	classMask uint8
	// primaryCount tallies primary-class observations by class Index().
	primaryCount [7]int32

	// Flag observations.
	EverFloodfill bool

	// Status observations.
	EverKnownIP    bool
	EverFirewalled bool
	EverHidden     bool
}

// markSeen sets the bitset bit for a zero-based day index.
func (p *PeerTrack) markSeen(idx int) {
	p.seen[idx>>6] |= 1 << (idx & 63)
}

// DaysObserved returns on how many distinct days the peer was seen.
func (p *PeerTrack) DaysObserved() int {
	n := 0
	for _, w := range p.seen {
		n += bits.OnesCount64(w)
	}
	return n
}

// LongestRun returns the longest consecutive-day observation streak.
func (p *PeerTrack) LongestRun() int {
	best, cur := 0, 0
	for _, w := range p.seen {
		for b := 0; b < 64; b++ {
			if w&(1<<b) != 0 {
				cur++
				if cur > best {
					best = cur
				}
			} else {
				// Padding bits past EndDay are always zero; they can only
				// break a streak that has already ended.
				cur = 0
			}
		}
	}
	return best
}

// Span returns LastDay - FirstDay + 1, the intermittent-presence length.
func (p *PeerTrack) Span() int {
	return p.LastDay - p.FirstDay + 1
}

// IPCount returns the number of distinct public addresses observed.
func (p *PeerTrack) IPCount() int { return len(p.ips) }

// ASCount returns the number of distinct autonomous systems resolved.
func (p *PeerTrack) ASCount() int { return len(p.asns) }

// ASNs returns the distinct ASNs in ascending order. The slice is the
// track's own storage; callers must not modify it.
func (p *PeerTrack) ASNs() []uint32 { return p.asns }

// CountryCodes returns the distinct resolved country codes in ascending
// (lexicographic) order.
func (p *PeerTrack) CountryCodes() []string {
	out := make([]string, len(p.countries))
	for i, c := range p.countries {
		out[i] = unpackCountry(c)
	}
	return out
}

// HasClass reports whether the peer ever published the class letter.
func (p *PeerTrack) HasClass(cl netdb.BandwidthClass) bool {
	i := cl.Index()
	return i >= 0 && p.classMask&(1<<i) != 0
}

// PrimaryClass returns the most frequently observed primary class.
func (p *PeerTrack) PrimaryClass() netdb.BandwidthClass {
	best := netdb.ClassL
	bestN := int32(0)
	for i, n := range p.primaryCount {
		// Ascending iteration: on a tie the higher class wins, matching
		// the historical map-based tie-break.
		if n > 0 && n >= bestN {
			best, bestN = netdb.BandwidthClasses[i], n
		}
	}
	return best
}

// packCountry packs an ISO-2 country code ("US", "RU", ...) into a
// uint16 whose numeric order equals the codes' lexicographic order. The
// offline geo database only ever emits two-letter codes.
func packCountry(cc string) uint16 {
	if len(cc) != 2 {
		return 0
	}
	return uint16(cc[0])<<8 | uint16(cc[1])
}

func unpackCountry(c uint16) string {
	return string([]byte{byte(c >> 8), byte(c)})
}

// insertSorted inserts v into ascending-sorted s if absent, reporting
// whether it was added. Per-peer sets are small (a handful of IPs/ASNs),
// so binary search + copy beats a map by an order of magnitude in bytes.
func insertSorted[E interface{ ~uint16 | ~uint32 }](s []E, v E) ([]E, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s, false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s, true
}

// addrGeo is the memoized geographic resolution of one interned address.
type addrGeo struct {
	asn      uint32
	country  uint16
	is4      bool
	resolved bool
}

// addrIntern assigns dense uint32 IDs to every distinct public address a
// campaign observes and memoizes its geo resolution, in the style of
// censor.AddrIndex. IDs are assigned in canonical fold order (ascending
// day, identity-sorted records, RouterInfo.IPs order), so two runs over
// the same observations build identical tables regardless of worker
// count or streaming mode.
type addrIntern struct {
	ids map[netip.Addr]uint32
	geo []addrGeo
	// lastMark[id] holds day+1 of the most recent day the address was
	// counted, replacing the old per-day "seen this day" map for the
	// distinct-IP day counters (zero = never).
	lastMark []int32
}

func newAddrIntern() *addrIntern {
	return &addrIntern{ids: make(map[netip.Addr]uint32)}
}

// intern returns the address's ID and memoized geo record, reporting
// whether this is the first time the address was seen. geo.DB.Lookup is
// pure, so resolving once per distinct address is exact — and it is what
// makes Dataset.Unresolved count distinct unresolvable addresses rather
// than (record, address, day) occurrences.
func (a *addrIntern) intern(db *geo.DB, addr netip.Addr) (uint32, addrGeo, bool) {
	if id, ok := a.ids[addr]; ok {
		return id, a.geo[id], false
	}
	id := uint32(len(a.geo))
	g := addrGeo{is4: addr.Is4()}
	if rec, ok := db.Lookup(addr); ok {
		g.asn = rec.ASN
		g.country = packCountry(rec.CountryCode)
		g.resolved = true
	}
	a.ids[addr] = id
	a.geo = append(a.geo, g)
	a.lastMark = append(a.lastMark, 0)
	return id, g, true
}

// DayStats summarizes one study day — the rows behind Figures 5, 6 and 9.
type DayStats struct {
	Day int

	// Peers is the number of unique peers observed.
	Peers int
	// Unique address counts.
	IPAll, IPv4, IPv6 int

	// Unknown-IP decomposition (Figure 6).
	UnknownIP  int
	Firewalled int
	Hidden     int
	Overlap    int

	// Flag tallies. ClassCounts uses every published letter, so the sum
	// exceeds Peers (Section 5.3.1).
	ClassCounts map[netdb.BandwidthClass]int
	Floodfill   int
	Reachable   int
	Unreachable int

	// Cross-tabulation for Table 1: group -> class -> count.
	GroupClass map[string]map[netdb.BandwidthClass]int
}

func newDayStats(day int) *DayStats {
	return &DayStats{
		Day:         day,
		ClassCounts: make(map[netdb.BandwidthClass]int),
		GroupClass: map[string]map[netdb.BandwidthClass]int{
			"floodfill":   make(map[netdb.BandwidthClass]int),
			"reachable":   make(map[netdb.BandwidthClass]int),
			"unreachable": make(map[netdb.BandwidthClass]int),
		},
	}
}

// Dataset is the accumulated result of a campaign. It is a fixed-size
// fold target: its memory is O(distinct peers + distinct addresses +
// days), independent of how many day units are in flight, which is what
// lets the streaming campaign drop raw merged records as soon as a day
// has been folded and spilled.
type Dataset struct {
	// StartDay and EndDay bound the campaign ([StartDay, EndDay)).
	StartDay, EndDay int
	// Days holds one entry per campaign day.
	Days []*DayStats
	// Peers tracks every peer ever observed.
	Peers map[netdb.Hash]*PeerTrack

	// Unresolved counts the distinct observed addresses the geo database
	// could not resolve.
	Unresolved int

	// addrs interns every observed address with its memoized geo record.
	addrs *addrIntern
}

// NewDataset prepares an empty dataset for the given day range.
func NewDataset(startDay, endDay int) *Dataset {
	ds := &Dataset{
		StartDay: startDay,
		EndDay:   endDay,
		Peers:    make(map[netdb.Hash]*PeerTrack),
		addrs:    newAddrIntern(),
	}
	for d := startDay; d < endDay; d++ {
		ds.Days = append(ds.Days, newDayStats(d))
	}
	return ds
}

// day returns the DayStats for an absolute study day.
func (ds *Dataset) day(d int) *DayStats {
	return ds.Days[d-ds.StartDay]
}

// track records that the peer was observed on day and returns its
// PeerTrack (creating it on first observation). Because creation always
// carries the observing day, FirstDay is set at birth and a track with
// FirstDay unset cannot exist — the analyses may iterate ds.Peers
// without an "un-observed track" guard.
func (ds *Dataset) track(h netdb.Hash, day int) *PeerTrack {
	t, ok := ds.Peers[h]
	if !ok {
		t = &PeerTrack{
			Hash:     h,
			FirstDay: day,
			LastDay:  day,
			seen:     make([]uint64, (ds.EndDay-ds.StartDay+63)/64),
		}
		ds.Peers[h] = t
	}
	if day > t.LastDay {
		t.LastDay = day
	}
	t.markSeen(day - ds.StartDay)
	return t
}

// TotalPeers returns the number of distinct peers observed.
func (ds *Dataset) TotalPeers() int { return len(ds.Peers) }

// MeanDailyPeers returns the average daily unique-peer count.
func (ds *Dataset) MeanDailyPeers() float64 {
	if len(ds.Days) == 0 {
		return 0
	}
	sum := 0
	for _, d := range ds.Days {
		sum += d.Peers
	}
	return float64(sum) / float64(len(ds.Days))
}
