// Package measure implements the paper's measurement pipeline: observer
// campaigns over a (simulated) I2P network, the hourly-capture /
// daily-cleanup bookkeeping of Section 4.3, and the analyses behind every
// population, churn, capacity and geography figure in Section 5.
package measure

import (
	"net/netip"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

// PeerTrack accumulates everything the campaign learned about one peer
// (keyed by identity hash), mirroring what the paper's post-processing
// derived from archived RouterInfos.
type PeerTrack struct {
	Hash netdb.Hash

	// FirstDay and LastDay bound the observation window (study days).
	FirstDay, LastDay int
	// SeenDays marks which study days the peer was observed.
	SeenDays []bool

	// IPs is the set of distinct public addresses observed (IPv4+IPv6).
	IPs map[netip.Addr]bool
	// ASNs and Countries are resolved via the offline geo database.
	ASNs      map[uint32]bool
	Countries map[string]bool

	// Flag observations.
	EverFloodfill bool
	// Classes seen across the campaign (primary + legacy + fluctuation).
	Classes map[netdb.BandwidthClass]bool
	// PrimaryClass is the highest-frequency primary class observed.
	primaryCount map[netdb.BandwidthClass]int

	// Status observations.
	EverKnownIP    bool
	EverFirewalled bool
	EverHidden     bool
}

// DaysObserved returns on how many distinct days the peer was seen.
func (p *PeerTrack) DaysObserved() int {
	n := 0
	for _, s := range p.SeenDays {
		if s {
			n++
		}
	}
	return n
}

// LongestRun returns the longest consecutive-day observation streak.
func (p *PeerTrack) LongestRun() int {
	best, cur := 0, 0
	for _, s := range p.SeenDays {
		if s {
			cur++
			if cur > best {
				best = cur
			}
		} else {
			cur = 0
		}
	}
	return best
}

// Span returns LastDay - FirstDay + 1, the intermittent-presence length.
func (p *PeerTrack) Span() int {
	return p.LastDay - p.FirstDay + 1
}

// PrimaryClass returns the most frequently observed primary class.
func (p *PeerTrack) PrimaryClass() netdb.BandwidthClass {
	best := netdb.ClassL
	bestN := -1
	for c, n := range p.primaryCount {
		if n > bestN || (n == bestN && c.Index() > best.Index()) {
			best, bestN = c, n
		}
	}
	return best
}

// DayStats summarizes one study day — the rows behind Figures 5, 6 and 9.
type DayStats struct {
	Day int

	// Peers is the number of unique peers observed.
	Peers int
	// Unique address counts.
	IPAll, IPv4, IPv6 int

	// Unknown-IP decomposition (Figure 6).
	UnknownIP  int
	Firewalled int
	Hidden     int
	Overlap    int

	// Flag tallies. ClassCounts uses every published letter, so the sum
	// exceeds Peers (Section 5.3.1).
	ClassCounts map[netdb.BandwidthClass]int
	Floodfill   int
	Reachable   int
	Unreachable int

	// Cross-tabulation for Table 1: group -> class -> count.
	GroupClass map[string]map[netdb.BandwidthClass]int
}

func newDayStats(day int) *DayStats {
	return &DayStats{
		Day:         day,
		ClassCounts: make(map[netdb.BandwidthClass]int),
		GroupClass: map[string]map[netdb.BandwidthClass]int{
			"floodfill":   make(map[netdb.BandwidthClass]int),
			"reachable":   make(map[netdb.BandwidthClass]int),
			"unreachable": make(map[netdb.BandwidthClass]int),
		},
	}
}

// Dataset is the accumulated result of a campaign.
type Dataset struct {
	// StartDay and EndDay bound the campaign ([StartDay, EndDay)).
	StartDay, EndDay int
	// Days holds one entry per campaign day.
	Days []*DayStats
	// Peers tracks every peer ever observed.
	Peers map[netdb.Hash]*PeerTrack

	// Resolver maps addresses to geographic records; unresolvable
	// addresses are counted in Unresolved.
	Unresolved int
}

// NewDataset prepares an empty dataset for the given day range.
func NewDataset(startDay, endDay int) *Dataset {
	ds := &Dataset{
		StartDay: startDay,
		EndDay:   endDay,
		Peers:    make(map[netdb.Hash]*PeerTrack),
	}
	for d := startDay; d < endDay; d++ {
		ds.Days = append(ds.Days, newDayStats(d))
	}
	return ds
}

// day returns the DayStats for an absolute study day.
func (ds *Dataset) day(d int) *DayStats {
	return ds.Days[d-ds.StartDay]
}

// track returns (creating if needed) the PeerTrack for a hash.
func (ds *Dataset) track(h netdb.Hash) *PeerTrack {
	t, ok := ds.Peers[h]
	if !ok {
		t = &PeerTrack{
			Hash:         h,
			FirstDay:     -1,
			SeenDays:     make([]bool, ds.EndDay-ds.StartDay),
			IPs:          make(map[netip.Addr]bool),
			ASNs:         make(map[uint32]bool),
			Countries:    make(map[string]bool),
			Classes:      make(map[netdb.BandwidthClass]bool),
			primaryCount: make(map[netdb.BandwidthClass]int),
		}
		ds.Peers[h] = t
	}
	return t
}

// TotalPeers returns the number of distinct peers observed.
func (ds *Dataset) TotalPeers() int { return len(ds.Peers) }

// MeanDailyPeers returns the average daily unique-peer count.
func (ds *Dataset) MeanDailyPeers() float64 {
	if len(ds.Days) == 0 {
		return 0
	}
	sum := 0
	for _, d := range ds.Days {
		sum += d.Peers
	}
	return float64(sum) / float64(len(ds.Days))
}
