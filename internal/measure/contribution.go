package measure

import (
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// ObserverContribution quantifies Section 4.3's marginal-value analysis:
// how many peers each additional router contributes to the fleet's union
// view, and how many peers only a single router saw.
type ObserverContribution struct {
	// Name is the observer's configured name.
	Name string
	// Observed is how many peers the observer saw on the analysis day.
	Observed int
	// Marginal is how many of those no earlier observer in fleet order
	// had seen (the per-router step of Figure 4).
	Marginal int
	// Exclusive is how many peers no *other* observer in the whole fleet
	// saw — the strongest measure of the router's unique vantage.
	Exclusive int
}

// ContributionAnalysis computes per-observer contributions for one day.
// Fleet order matters for Marginal (it mirrors Figure 4's cumulative
// curve); Exclusive is order-independent.
func ContributionAnalysis(observers []*sim.Observer, day int) []ObserverContribution {
	views := make([][]int, len(observers))
	for i, o := range observers {
		views[i] = o.ObserveDay(day)
	}
	// Count how many observers saw each peer.
	seenBy := make(map[int]int)
	for _, view := range views {
		for _, idx := range view {
			seenBy[idx]++
		}
	}
	out := make([]ObserverContribution, len(observers))
	cumulative := make(map[int]bool)
	for i, view := range views {
		c := ObserverContribution{Observed: len(view)}
		if observers[i].Cfg.Name != "" {
			c.Name = observers[i].Cfg.Name
		}
		for _, idx := range view {
			if !cumulative[idx] {
				cumulative[idx] = true
				c.Marginal++
			}
			if seenBy[idx] == 1 {
				c.Exclusive++
			}
		}
		out[i] = c
	}
	return out
}

// UnionSize returns the total distinct peers across the fleet for the day
// (the top of Figure 4's curve).
func UnionSize(observers []*sim.Observer, day int) int {
	return len(sim.UnionObserveDay(observers, day))
}
