package measure

import (
	"sync/atomic"

	"github.com/i2pstudy/i2pstudy/internal/obs"
)

// engineStats holds the scheduler's instrument handles, resolved once per
// enabled registry. All fields are nil-safe counters, so a zero value is
// the disabled mode and call sites never branch on individual handles.
type engineStats struct {
	reg *obs.Registry

	tasksSerial   *obs.Counter   // i2p_engine_tasks_total{mode="serial"}
	tasksParallel *obs.Counter   // i2p_engine_tasks_total{mode="parallel"}
	steals        *obs.Counter   // i2p_engine_steals_total
	workerTasks   *obs.Histogram // i2p_engine_worker_tasks: tasks one worker ran in one FanOut
	rowsPlanned   *obs.Counter   // i2p_engine_rows_planned_total
	rowSplits     *obs.Counter   // i2p_engine_row_splits_total
	seamCost      *obs.Counter   // i2p_engine_row_seam_cost_total
}

// disabledEngineStats is what obsStats() returns while no registry is
// enabled: every handle nil, every increment a nil-check no-op.
var disabledEngineStats = &engineStats{}

// cachedEngineStats caches the resolution for the currently enabled
// registry; a registry swap is detected by identity and re-resolved.
var cachedEngineStats atomic.Pointer[engineStats]

// workerTasksBounds buckets per-worker run lengths: the interesting
// signal is the spread (a starving worker runs far fewer tasks than its
// initial contiguous run), not fine granularity.
var workerTasksBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

func resolveEngineStats(r *obs.Registry) *engineStats {
	tasks := r.CounterVec("i2p_engine_tasks_total",
		"Tasks executed by the FanOut scheduler, by scheduling mode.", "mode")
	return &engineStats{
		reg:           r,
		tasksSerial:   tasks.With("serial"),
		tasksParallel: tasks.With("parallel"),
		steals: r.Counter("i2p_engine_steals_total",
			"Tasks a FanOut worker claimed from another worker's run."),
		workerTasks: r.Histogram("i2p_engine_worker_tasks",
			"Tasks one worker executed in one parallel FanOut.", workerTasksBounds),
		rowsPlanned: r.Counter("i2p_engine_rows_planned_total",
			"Rows laid out by PlanRows before any cost-based splitting."),
		rowSplits: r.Counter("i2p_engine_row_splits_total",
			"Row segments cut by SplitRows at cost boundaries."),
		seamCost: r.Counter("i2p_engine_row_seam_cost_total",
			"Total estimated seam-replay cost accepted by SplitRows cuts."),
	}
}

// stats returns the engine's instrument handles for the enabled registry,
// or the inert zero set when observability is disabled. Cost when
// disabled: one atomic load and a nil check.
func obsStats() *engineStats {
	r := obs.Active()
	if r == nil {
		return disabledEngineStats
	}
	s := cachedEngineStats.Load()
	if s != nil && s.reg == r {
		return s
	}
	s = resolveEngineStats(r)
	cachedEngineStats.Store(s)
	return s
}

// Pre-create the scheduler families on Enable so a scrape that lands
// before the first sweep still sees them at zero.
func init() {
	obs.OnEnable(func(r *obs.Registry) { resolveEngineStats(r) })
}
