package measure

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/i2pstudy/i2pstudy/internal/checkpoint"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// campaignVersion is the Campaign engine's checkpoint-format version;
// bump it when the day-unit encoding or keying changes.
const campaignVersion = 1

// HashNetwork folds every sim.Network config field that shapes engine
// output into h. All five engines derive their checkpoint ConfigHash
// through this helper so "same network" means the same thing
// everywhere. The network seed is deliberately excluded: it rides the
// manifest's dedicated Seed field.
func HashNetwork(h *checkpoint.Hasher, n *sim.Network) {
	cfg := n.Config()
	h.Int(cfg.Days)
	h.Int(cfg.TargetDailyPeers)
	// Churn and Observation are flat structs of scalars; fold their
	// dereferenced %+v rendering (never the pointer, which would hash an
	// address).
	if cfg.Churn != nil {
		h.String(fmt.Sprintf("%+v", *cfg.Churn))
	} else {
		h.String("churn:default")
	}
	if cfg.Observation != nil {
		h.String(fmt.Sprintf("%+v", *cfg.Observation))
	} else {
		h.String("observation:default")
	}
}

// checkpointManifest identifies this campaign for resume purposes:
// network shape, day range, and the full observer fleet config. Workers
// is excluded — a campaign may resume at any width.
func (c *Campaign) checkpointManifest() checkpoint.Manifest {
	h := checkpoint.NewHasher()
	HashNetwork(h, c.net)
	h.Int(c.cfg.StartDay)
	h.Int(c.cfg.EndDay)
	h.Int(len(c.cfg.Observers))
	for _, o := range c.cfg.Observers {
		h.String(o.Name)
		if o.Floodfill {
			h.Int(1)
		} else {
			h.Int(0)
		}
		h.Int(o.SharedKBps)
		h.Uint64(o.Seed)
	}
	return checkpoint.Manifest{
		Engine:     "measure.Campaign",
		Version:    campaignVersion,
		ConfigHash: h.Sum(),
		Seed:       c.net.Config().Seed,
	}
}

// dayKey names the checkpoint unit holding one completed day.
func dayKey(day int) string { return fmt.Sprintf("day-%03d", day) }

// sortByIdentity puts one day's merged records into canonical order.
// This is the single canonicalization point of the pipeline: both run
// paths sort here once, and everything downstream — the Dataset fold
// (which assigns intern IDs on first sight), the snapshot, and the
// checkpoint unit bytes — inherits an order independent of shard layout
// and map iteration.
func sortByIdentity(recs []*netdb.RouterInfo) {
	sort.Slice(recs, func(i, j int) bool {
		return bytes.Compare(recs[i].Identity[:], recs[j].Identity[:]) < 0
	})
}

// encodeDayUnit serializes one day's merged observations using the
// netdb wire codec. recs must already be in canonical identity-sorted
// order (see sortByIdentity), which makes the unit's bytes deterministic.
func encodeDayUnit(recs []*netdb.RouterInfo) ([]byte, error) {
	var buf bytes.Buffer
	var u [4]byte
	binary.LittleEndian.PutUint32(u[:], uint32(len(recs)))
	buf.Write(u[:])
	for _, ri := range recs {
		data, err := ri.Encode()
		if err != nil {
			return nil, fmt.Errorf("measure: encoding day unit: %w", err)
		}
		binary.LittleEndian.PutUint32(u[:], uint32(len(data)))
		buf.Write(u[:])
		buf.Write(data)
	}
	return buf.Bytes(), nil
}

// decodeDayUnit inverts encodeDayUnit. Records come back in the same
// canonical identity-sorted order they were written in, so accumulation
// code cannot tell a resumed (or evicted-and-reloaded) day from a
// computed one.
func decodeDayUnit(data []byte) ([]*netdb.RouterInfo, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("measure: day unit truncated")
	}
	n := binary.LittleEndian.Uint32(data)
	data = data[4:]
	recs := make([]*netdb.RouterInfo, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(data) < 4 {
			return nil, fmt.Errorf("measure: day unit truncated at record %d", i)
		}
		sz := binary.LittleEndian.Uint32(data)
		data = data[4:]
		if uint32(len(data)) < sz {
			return nil, fmt.Errorf("measure: day unit truncated at record %d", i)
		}
		ri, err := netdb.DecodeRouterInfo(data[:sz])
		if err != nil {
			return nil, fmt.Errorf("measure: day unit record %d: %w", i, err)
		}
		recs = append(recs, ri)
		data = data[sz:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("measure: day unit has %d trailing bytes", len(data))
	}
	return recs, nil
}
