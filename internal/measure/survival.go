package measure

import "sort"

// This file implements a right-censored lifetime estimator for the churn
// analysis. The paper's Figure 7 statistic ("percentage of peers seen for
// at least n days") is biased downward near the end of a finite campaign:
// a peer first seen ten days before the study ends can never exhibit a
// 30-day span even if it stays for months. The Kaplan–Meier estimator
// treats peers still present on the final day as censored rather than
// dead, correcting the bias — the standard tool for exactly this problem,
// and the extension we use to check the 45-day default horizon against the
// paper's 90-day numbers.

// SurvivalPoint is one step of the estimated survival function.
type SurvivalPoint struct {
	// Days is the lifetime t.
	Days int
	// Probability is the estimated P(lifetime >= t).
	Probability float64
}

// SurvivalCurve computes the Kaplan–Meier estimate of peer intermittent
// lifetime (first-to-last span). A peer whose last observation falls on
// the campaign's final day is right-censored: its true lifetime is only
// known to be at least its observed span.
func (ds *Dataset) SurvivalCurve() []SurvivalPoint {
	lastDay := ds.EndDay - 1
	type obs struct {
		duration int
		died     bool
	}
	var observations []obs
	// No un-observed-track guard is needed here (or in any ds.Peers
	// iteration): Dataset.track requires the observing day and sets
	// FirstDay at creation, so a track with FirstDay unset cannot exist —
	// see TestTracksAlwaysObserved.
	for _, t := range ds.Peers {
		observations = append(observations, obs{
			duration: t.Span(),
			died:     t.LastDay < lastDay,
		})
	}
	if len(observations) == 0 {
		return nil
	}
	sort.Slice(observations, func(i, j int) bool {
		return observations[i].duration < observations[j].duration
	})

	var curve []SurvivalPoint
	surv := 1.0
	atRisk := len(observations)
	i := 0
	curve = append(curve, SurvivalPoint{Days: 0, Probability: 1})
	for i < len(observations) {
		d := observations[i].duration
		deaths, leaving := 0, 0
		for i < len(observations) && observations[i].duration == d {
			if observations[i].died {
				deaths++
			}
			leaving++
			i++
		}
		if deaths > 0 && atRisk > 0 {
			surv *= 1 - float64(deaths)/float64(atRisk)
		}
		curve = append(curve, SurvivalPoint{Days: d, Probability: surv})
		atRisk -= leaving
	}
	return curve
}

// SurvivalAt returns the Kaplan–Meier P(lifetime >= n days) in percent,
// interpolating the step function. It is the censoring-corrected
// counterpart of ChurnAt(n).Intermittent.
func (ds *Dataset) SurvivalAt(n int) float64 {
	curve := ds.SurvivalCurve()
	if len(curve) == 0 {
		return 0
	}
	// The survival function is right-continuous: P(T >= n) is the value
	// just before the step at n, i.e. the probability at the largest
	// duration < n... with spans measured inclusively, P(T >= n) is the
	// curve value at the last point with Days < n.
	p := 1.0
	for _, pt := range curve {
		if pt.Days >= n {
			break
		}
		p = pt.Probability
	}
	return 100 * p
}
