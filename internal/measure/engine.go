package measure

import (
	"context"
	"runtime"
	"sync"

	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// resolveWorkers normalizes a worker-count knob: zero or negative selects
// one worker per available CPU.
func resolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// maxMergeShards bounds the per-day hash-shard fan-out; beyond this the
// per-shard maps get too small to amortize goroutine overhead.
const maxMergeShards = 16

// mergeShards returns the hash-shard count for a given worker count.
func mergeShards(workers int) int {
	if workers < 1 {
		return 1
	}
	if workers > maxMergeShards {
		return maxMergeShards
	}
	return workers
}

// FanOut runs fn(i) for every i in [0, n) across a pool of workers,
// stopping at the first error or context cancellation. Tasks are handed
// out in index order, so low-indexed work starts first; workers <= 0
// selects one worker per CPU. FanOut is the engine primitive shared by
// ObserveGrid, the campaign capture stage, the experiment runner, and the
// censor sweep grids: callers obtain worker-count-independent results by
// writing into caller-owned slots indexed by task, never by arrival order.
func FanOut(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = resolveWorkers(workers)
	if workers > n {
		workers = n
	}
	tasks := make(chan int, n)
	for i := 0; i < n; i++ {
		tasks <- i
	}
	close(tasks)

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				if cctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// ObserveGrid fans the (observer, day) capture grid across a worker pool
// and returns grid[o][d], the peer indexes observers[o] saw on days[d].
// Each ObserveDay draw is deterministic in (observer seed, day), so the
// grid is identical for any worker count — experiments that fold it
// sequentially produce the same figures the serial loops did.
func ObserveGrid(ctx context.Context, observers []*sim.Observer, days []int, workers int) ([][][]int, error) {
	grid := make([][][]int, len(observers))
	for i := range grid {
		grid[i] = make([][]int, len(days))
	}
	if len(days) == 0 {
		return grid, ctx.Err()
	}
	err := FanOut(ctx, len(observers)*len(days), workers, func(t int) error {
		o, d := t/len(days), t%len(days)
		grid[o][d] = observers[o].ObserveDay(days[d])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return grid, nil
}
