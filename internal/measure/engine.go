package measure

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/i2pstudy/i2pstudy/internal/faults"
	"github.com/i2pstudy/i2pstudy/internal/obs"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// resolveWorkers normalizes a worker-count knob: zero or negative selects
// one worker per available CPU.
func resolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// maxMergeShards bounds the per-day hash-shard fan-out; beyond this the
// per-shard maps get too small to amortize goroutine overhead.
const maxMergeShards = 16

// mergeShards returns the hash-shard count for a given worker count.
func mergeShards(workers int) int {
	if workers < 1 {
		return 1
	}
	if workers > maxMergeShards {
		return maxMergeShards
	}
	return workers
}

// runQueue is one worker's contiguous run of task indices, claimable
// from both ends through a single packed atomic word (hi<<32 | lo; the
// run is [lo, hi)). The owner claims from the front, keeping ascending
// index order; idle workers steal from the back. Because both ends CAS
// the same word, front and back claims are linearizable — the two ends
// can never hand out the same task, even when they meet. The padding
// keeps neighboring queues off one cache line, so an owner's claims
// don't false-share with its neighbors'.
type runQueue struct {
	bounds atomic.Uint64
	_      [7]uint64
}

func packBounds(lo, hi uint32) uint64 { return uint64(hi)<<32 | uint64(lo) }

// popFront claims the run's lowest unclaimed index (owner side).
func (q *runQueue) popFront() (int, bool) {
	for {
		b := q.bounds.Load()
		lo, hi := uint32(b), uint32(b>>32)
		if lo >= hi {
			return 0, false
		}
		if q.bounds.CompareAndSwap(b, packBounds(lo+1, hi)) {
			return int(lo), true
		}
	}
}

// popBack claims the run's highest unclaimed index (thief side).
func (q *runQueue) popBack() (int, bool) {
	for {
		b := q.bounds.Load()
		lo, hi := uint32(b), uint32(b>>32)
		if lo >= hi {
			return 0, false
		}
		if q.bounds.CompareAndSwap(b, packBounds(lo, hi-1)) {
			return int(hi - 1), true
		}
	}
}

// FanOut runs fn(i) for every i in [0, n) across a pool of workers,
// stopping at the first error or context cancellation; workers <= 0
// selects one worker per CPU. FanOut is the engine primitive shared by
// ObserveGrid, the campaign capture stage, the experiment runner, and the
// censor sweep grids: callers obtain worker-count-independent results by
// writing into caller-owned slots indexed by task, never by arrival order.
//
// Scheduling is work-stealing: the index space is pre-split into one
// contiguous run per worker, each worker drains its own run front-to-back
// (so low-indexed work starts first within every run), and a worker whose
// run is empty steals from the back of the first victim — scanning in
// worker-index order — with work left. Unlike the historical pre-filled
// channel, an uneven grid (one long row next to many short ones) no
// longer strands idle workers behind a FIFO hand-out; the stolen back
// halves even the load out. The contract is unchanged: any Workers value
// yields byte-identical results, because scheduling decides only *when* a
// task runs, never where its result lands. Task counts must fit in
// int32, which every grid in the repo is orders of magnitude below.
func FanOut(ctx context.Context, n, workers int, fn func(i int) error) error {
	return fanOut(ctx, n, workers, "task", func(_, i int) error { return fn(i) })
}

// fanOut is FanOut's engine: identical scheduling, but fn also receives
// the running worker's index so row engines can attach their spans to
// the right trace track, and every task is wrapped in a spanName span
// when tracing is enabled. Counters and spans record scheduling facts
// only — results still land in caller-owned task-indexed slots, so the
// byte-identical-at-any-Workers contract is untouched by observability.
func fanOut(ctx context.Context, n, workers int, spanName string, fn func(tid, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = resolveWorkers(workers)
	if workers > n {
		workers = n
	}
	// Every completed task is a scheduler boundary the fault injector may
	// target; disabled cost is one atomic load inside faults.Hit.
	inner := fn
	fn = func(tid, i int) error {
		if err := inner(tid, i); err != nil {
			return err
		}
		return faults.Hit("measure.fanout.task")
	}
	st := obsStats()
	tr := obs.ActiveTracer()
	if workers == 1 {
		// Serial fast path: no goroutines, no atomics. This is also the
		// reference path the determinism goldens compare against.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if tr != nil {
				t0 := tr.Now()
				err := fn(0, i)
				tr.Complete(0, spanName, t0, obs.Arg{Key: "i", Val: int64(i)})
				if err != nil {
					return err
				}
				continue
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		st.tasksSerial.Add(uint64(n))
		st.workerTasks.Observe(float64(n))
		return ctx.Err()
	}

	// One contiguous run per worker; the remainder spreads over the first
	// runs so sizes differ by at most one.
	queues := make([]runQueue, workers)
	base, rem := n/workers, n%workers
	for w, lo := 0, 0; w < workers; w++ {
		size := base
		if w < rem {
			size++
		}
		queues[w].bounds.Store(packBounds(uint32(lo), uint32(lo+size)))
		lo += size
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Counter traffic stays off the claim path: tasks and steals
			// accumulate locally and flush once when the worker exits.
			var ran, stolen uint64
			defer func() {
				st.tasksParallel.Add(ran)
				st.steals.Add(stolen)
				st.workerTasks.Observe(float64(ran))
			}()
			for {
				if cctx.Err() != nil {
					return
				}
				t, ok := queues[w].popFront()
				if !ok {
					// Own run drained: steal. Tasks only ever leave
					// queues by being claimed, so a full scan that finds
					// every queue empty means every task is claimed and
					// this worker can exit (claimants finish their own
					// tasks; wg.Wait below holds the door).
					for v := range queues {
						if v == w {
							continue
						}
						if t, ok = queues[v].popBack(); ok {
							stolen++
							if tr != nil {
								tr.Instant(w, "steal",
									obs.Arg{Key: "victim", Val: int64(v)},
									obs.Arg{Key: "i", Val: int64(t)})
							}
							break
						}
					}
					if !ok {
						return
					}
				}
				ran++
				if tr != nil {
					t0 := tr.Now()
					err := fn(w, t)
					tr.Complete(w, spanName, t0, obs.Arg{Key: "i", Val: int64(t)})
					if err != nil {
						fail(err)
						return
					}
					continue
				}
				if err := fn(w, t); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// RowPlan groups task indices into rows for FanRows. Each row is a list
// of task indices that run sequentially in listed order on one worker —
// the unit a rolling computation (a sliding blacklist window, an
// incremental cache walk) carries its state along — while the rows
// themselves fan out across the pool like FanOut tasks. Rows must not
// share task indices; a task listed in no row simply never runs.
type RowPlan [][]int

// Tasks returns the total number of tasks across every row.
func (p RowPlan) Tasks() int {
	n := 0
	for _, row := range p {
		n += len(row)
	}
	return n
}

// PlanRows builds a RowPlan over n tasks: rowOf(i) assigns task i to a
// row in [0, rows); within each row, tasks are stably sorted by
// ascending key(i) — the day coordinate in the sweep engines, so a
// row's rolling state only ever slides forward. Stability keeps
// equal-key tasks in index order, making the schedule (though never the
// results, which land in task-indexed slots) deterministic.
func PlanRows(n, rows int, rowOf, key func(i int) int) RowPlan {
	plan := make(RowPlan, rows)
	for i := 0; i < n; i++ {
		r := rowOf(i)
		plan[r] = append(plan[r], i)
	}
	for _, row := range plan {
		sort.SliceStable(row, func(a, b int) bool { return key(row[a]) < key(row[b]) })
	}
	obsStats().rowsPlanned.Add(uint64(len(plan)))
	return plan
}

// costOf evaluates a cost estimate for one task: nil means unit cost,
// and estimates are clamped to at least 1 so degenerate models cannot
// produce zero-cost segments.
func costOf(cost func(i int) int, t int) int {
	if cost == nil {
		return 1
	}
	if c := cost(t); c > 1 {
		return c
	}
	return 1
}

// Cost returns the plan's total estimated cost under the given model
// (nil: one unit per task).
func (p RowPlan) Cost(cost func(i int) int) int {
	total := 0
	for _, row := range p {
		for _, t := range row {
			total += costOf(cost, t)
		}
	}
	return total
}

// SplitRows cuts expensive rows into independent contiguous segments at
// cost boundaries, so one long row stops binding a grid's tail latency:
// each segment becomes its own plan row, fanned out (and stolen) like
// any other. cost(i) estimates task i's work (nil: 1 per task). seam(i)
// estimates the extra work a segment pays to rebuild its rolling state
// from scratch when it starts at task i (nil: free) — the sweep engines'
// states are exactly resumable (a fresh state advanced to a task equals
// the rolled-forward one, the property TestTrustSweepResumesAcrossRows
// and the from-scratch blacklist references prove), so a cut changes
// wall-clock and recompute, never bytes.
//
// The greedy walk accumulates cost along each row and cuts where the
// running segment exceeds budget — but only where the seam is worth
// paying: a cut at task t requires seam(t) <= budget/2 (the rebuilt
// state may eat at most half the new segment) and seam(t)+cost(t) <=
// budget (the new segment must fit at all). Rows whose seams are as
// expensive as their prefixes — the trust rows, where resuming replays
// every prior day — therefore never split, falling back to whole-row
// scheduling; cheap-seam rows (a blacklist window rebuild) split freely.
// budget <= 0 returns the plan unchanged.
func (p RowPlan) SplitRows(cost, seam func(i int) int, budget int) RowPlan {
	if budget <= 0 {
		return p
	}
	st := obsStats()
	out := make(RowPlan, 0, len(p))
	for _, row := range p {
		start, acc := 0, 0
		for k, t := range row {
			c := costOf(cost, t)
			if acc+c > budget && k > start {
				sm := 0
				if seam != nil {
					sm = seam(t)
				}
				if sm <= budget/2 && sm+c <= budget {
					out = append(out, row[start:k:k])
					start, acc = k, sm
					st.rowSplits.Inc()
					st.seamCost.Add(uint64(sm))
				}
			}
			acc += c
		}
		out = append(out, row[start:])
	}
	return out
}

// splitOversub is how many cost-budget segments PlanRowsCost aims to
// hand each worker: 2 keeps the per-segment seam overhead bounded while
// still leaving the steal loop slack to even out estimate error.
const splitOversub = 2

// PlanRowsCost is PlanRows with a cost model: rows are built and
// day-sorted identically, then rows whose estimated cost exceeds the
// per-segment budget — the grid's total cost spread over the worker pool
// with a small oversubscription factor — are cut into independent
// segments via SplitRows. The schedule changes; results (task-indexed
// slots, exactly-resumable row state) do not. With one worker the plan
// is returned unsplit: there is nobody to hand the other half to.
func PlanRowsCost(n, rows int, rowOf, key func(i int) int, cost, seam func(i int) int, workers int) RowPlan {
	plan := PlanRows(n, rows, rowOf, key)
	workers = resolveWorkers(workers)
	if workers <= 1 {
		return plan
	}
	budget := (plan.Cost(cost) + workers*splitOversub - 1) / (workers * splitOversub)
	return plan.SplitRows(cost, seam, budget)
}

// FanRows runs fn(row, task) for every task of every row across the
// worker pool: rows fan out like FanOut tasks (contiguous runs with
// back-stealing) and each row's tasks run sequentially in listed order
// on a single worker, so per-row state needs no locking. The determinism
// contract is FanOut's — callers write results into caller-owned slots
// indexed by task, never by arrival order, and any workers value yields
// byte-identical output. The first error (or context cancellation) stops
// the remaining rows; rows in flight stop after their current task.
func FanRows(ctx context.Context, plan RowPlan, workers int, fn func(row, task int) error) error {
	var failed atomic.Bool
	return fanOut(ctx, len(plan), workers, "row", func(tid, r int) error {
		tr := obs.ActiveTracer()
		for _, t := range plan[r] {
			// Another row already failed (FanOut holds its error) or the
			// caller cancelled: abandon the rest of this row.
			if failed.Load() {
				return nil
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			if tr != nil {
				c0 := tr.Now()
				err := fn(r, t)
				tr.Complete(tid, "cell", c0,
					obs.Arg{Key: "row", Val: int64(r)},
					obs.Arg{Key: "task", Val: int64(t)})
				if err != nil {
					failed.Store(true)
					return err
				}
				continue
			}
			if err := fn(r, t); err != nil {
				failed.Store(true)
				return err
			}
		}
		return nil
	})
}

// ObserveGrid fans the (observer, day) capture grid across a worker pool
// and returns grid[o][d], the peer indexes observers[o] saw on days[d].
// Each ObserveDay draw is deterministic in (observer seed, day), so the
// grid is identical for any worker count — experiments that fold it
// sequentially produce the same figures the serial loops did.
func ObserveGrid(ctx context.Context, observers []*sim.Observer, days []int, workers int) ([][][]int, error) {
	grid := make([][][]int, len(observers))
	for i := range grid {
		grid[i] = make([][]int, len(days))
	}
	if len(days) == 0 {
		return grid, ctx.Err()
	}
	err := FanOut(ctx, len(observers)*len(days), workers, func(t int) error {
		o, d := t/len(days), t%len(days)
		grid[o][d] = observers[o].ObserveDay(days[d])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return grid, nil
}
