package measure

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// resolveWorkers normalizes a worker-count knob: zero or negative selects
// one worker per available CPU.
func resolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// maxMergeShards bounds the per-day hash-shard fan-out; beyond this the
// per-shard maps get too small to amortize goroutine overhead.
const maxMergeShards = 16

// mergeShards returns the hash-shard count for a given worker count.
func mergeShards(workers int) int {
	if workers < 1 {
		return 1
	}
	if workers > maxMergeShards {
		return maxMergeShards
	}
	return workers
}

// FanOut runs fn(i) for every i in [0, n) across a pool of workers,
// stopping at the first error or context cancellation. Tasks are handed
// out in index order, so low-indexed work starts first; workers <= 0
// selects one worker per CPU. FanOut is the engine primitive shared by
// ObserveGrid, the campaign capture stage, the experiment runner, and the
// censor sweep grids: callers obtain worker-count-independent results by
// writing into caller-owned slots indexed by task, never by arrival order.
func FanOut(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = resolveWorkers(workers)
	if workers > n {
		workers = n
	}
	tasks := make(chan int, n)
	for i := 0; i < n; i++ {
		tasks <- i
	}
	close(tasks)

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				if cctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// RowPlan groups task indices into rows for FanRows. Each row is a list
// of task indices that run sequentially in listed order on one worker —
// the unit a rolling computation (a sliding blacklist window, an
// incremental cache walk) carries its state along — while the rows
// themselves fan out across the pool like FanOut tasks. Rows must not
// share task indices; a task listed in no row simply never runs.
type RowPlan [][]int

// Tasks returns the total number of tasks across every row.
func (p RowPlan) Tasks() int {
	n := 0
	for _, row := range p {
		n += len(row)
	}
	return n
}

// PlanRows builds a RowPlan over n tasks: rowOf(i) assigns task i to a
// row in [0, rows); within each row, tasks are stably sorted by
// ascending key(i) — the day coordinate in the sweep engines, so a
// row's rolling state only ever slides forward. Stability keeps
// equal-key tasks in index order, making the schedule (though never the
// results, which land in task-indexed slots) deterministic.
func PlanRows(n, rows int, rowOf, key func(i int) int) RowPlan {
	plan := make(RowPlan, rows)
	for i := 0; i < n; i++ {
		r := rowOf(i)
		plan[r] = append(plan[r], i)
	}
	for _, row := range plan {
		sort.SliceStable(row, func(a, b int) bool { return key(row[a]) < key(row[b]) })
	}
	return plan
}

// FanRows runs fn(row, task) for every task of every row across the
// worker pool: rows are handed out in index order and each row's tasks
// run sequentially in listed order on a single worker, so per-row state
// needs no locking. The determinism contract is FanOut's — callers
// write results into caller-owned slots indexed by task, never by
// arrival order, and any workers value yields byte-identical output.
// The first error (or context cancellation) stops the remaining rows;
// rows in flight stop after their current task.
func FanRows(ctx context.Context, plan RowPlan, workers int, fn func(row, task int) error) error {
	var failed atomic.Bool
	return FanOut(ctx, len(plan), workers, func(r int) error {
		for _, t := range plan[r] {
			// Another row already failed (FanOut holds its error) or the
			// caller cancelled: abandon the rest of this row.
			if failed.Load() {
				return nil
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(r, t); err != nil {
				failed.Store(true)
				return err
			}
		}
		return nil
	})
}

// ObserveGrid fans the (observer, day) capture grid across a worker pool
// and returns grid[o][d], the peer indexes observers[o] saw on days[d].
// Each ObserveDay draw is deterministic in (observer seed, day), so the
// grid is identical for any worker count — experiments that fold it
// sequentially produce the same figures the serial loops did.
func ObserveGrid(ctx context.Context, observers []*sim.Observer, days []int, workers int) ([][][]int, error) {
	grid := make([][][]int, len(observers))
	for i := range grid {
		grid[i] = make([][]int, len(days))
	}
	if len(days) == 0 {
		return grid, ctx.Err()
	}
	err := FanOut(ctx, len(observers)*len(days), workers, func(t int) error {
		o, d := t/len(days), t%len(days)
		grid[o][d] = observers[o].ObserveDay(days[d])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return grid, nil
}
