package measure

import (
	"context"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/checkpoint"
	"github.com/i2pstudy/i2pstudy/internal/measure/enginetest"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// runStreamCampaign runs the fixture campaign and returns both the
// Dataset and the Campaign so callers can read MemStats.
func runStreamCampaign(t testing.TB, n *sim.Network, cfg CampaignConfig) (*Dataset, *Campaign) {
	t.Helper()
	c, err := NewCampaign(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := c.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return ds, c
}

// TestCampaignStreamingMatchesRetained is the tentpole contract, stated
// through the shared harness: at every ladder width the streaming engine
// produces a Dataset identical to the retained-mode reference while its
// peak retained-unit count stays within the structural O(workers)
// ceiling — never O(days).
func TestCampaignStreamingMatchesRetained(t *testing.T) {
	n := parallelTestNet(t)
	mk := func(workers int, retain bool) CampaignConfig {
		return CampaignConfig{
			Observers: DefaultObserverFleet(8),
			StartDay:  0,
			EndDay:    30,
			Workers:   workers,
			Retain:    retain,
		}
	}
	enginetest.Stream(t, []enginetest.StreamCase{{
		Name: "campaign",
		RunRetained: func(t testing.TB) any {
			ds, _ := runStreamCampaign(t, n, mk(1, true))
			if ds.TotalPeers() == 0 {
				t.Fatal("retained reference observed nothing")
			}
			return ds
		},
		RunStreaming: func(t testing.TB, workers int) (any, int) {
			ds, c := runStreamCampaign(t, n, mk(workers, false))
			return ds, c.MemStats().PeakRetainedUnits
		},
		// The pipeline holds at most: one unit per capture worker between
		// retain and channel send, one per channel slot, slack in the
		// reorder buffer, and the unit being folded. With the default
		// slack of one per worker that is 3*workers + 1.
		MaxRetained: func(workers int) int { return 3*workers + 1 },
	}})
}

// TestStreamingSmallSlackMatchesRetained squeezes the reorder buffer to
// a single slot at an oversubscribed width, the configuration most
// likely to force evictions through the spill store mid-run, and checks
// the Dataset still matches the retained reference exactly. Whether a
// given schedule actually evicts depends on merge completion order, so
// eviction mechanics are pinned deterministically in the dayBuffer
// tests below; this test proves that whenever they fire they are
// invisible in the output.
func TestStreamingSmallSlackMatchesRetained(t *testing.T) {
	n := parallelTestNet(t)
	reference, _ := runStreamCampaign(t, n, CampaignConfig{
		Observers: DefaultObserverFleet(8),
		StartDay:  0,
		EndDay:    30,
		Workers:   1,
		Retain:    true,
	})
	for _, withStore := range []bool{false, true} {
		cfg := CampaignConfig{
			Observers: DefaultObserverFleet(8),
			StartDay:  0,
			EndDay:    30,
			Workers:   8,
		}
		if withStore {
			cfg.CheckpointDir = t.TempDir()
		}
		c, err := NewCampaign(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.streamSlack = 1
		ds, err := c.RunContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ds, reference) {
			t.Errorf("withStore=%v: slack-1 streaming dataset differs from retained reference", withStore)
		}
		ms := c.MemStats()
		if ms.PeakRetainedUnits > 2*8+1+1 {
			t.Errorf("withStore=%v: peak retained units %d exceeds slack-1 ceiling", withStore, ms.PeakRetainedUnits)
		}
		// Retain/release must balance: a leak here means some path (the
		// evict-reload one, historically) releases twice or not at all.
		if got := c.retained.Load(); got != 0 {
			t.Errorf("withStore=%v: %d retained units leaked after the run", withStore, got)
		}
		t.Logf("withStore=%v: peak=%d evicted=%d", withStore, ms.PeakRetainedUnits, ms.UnitsEvicted)
	}
}

// streamTestUnits builds canonical merged day units for a small
// campaign, exactly as both run paths would before folding.
func streamTestUnits(t *testing.T, days int) (*Campaign, [][]*netdb.RouterInfo) {
	t.Helper()
	n, err := sim.New(sim.Config{Seed: 13, Days: days, TargetDailyPeers: 200})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCampaign(n, CampaignConfig{
		Observers: DefaultObserverFleet(3),
		StartDay:  0,
		EndDay:    days,
	})
	if err != nil {
		t.Fatal(err)
	}
	units := make([][]*netdb.RouterInfo, days)
	for day := 0; day < days; day++ {
		merged := make(map[netdb.Hash]*netdb.RouterInfo)
		for _, o := range c.obs {
			for _, ri := range o.CollectDay(day) {
				prev, ok := merged[ri.Identity]
				if !ok || ri.Published.After(prev.Published) {
					merged[ri.Identity] = ri
				}
			}
		}
		recs := make([]*netdb.RouterInfo, 0, len(merged))
		for _, ri := range merged {
			recs = append(recs, ri)
		}
		sortByIdentity(recs)
		units[day] = recs
	}
	return c, units
}

// unitFingerprint is the canonical wire encoding of a unit — the
// byte-identity yardstick for spill round-trips.
func unitFingerprint(t *testing.T, recs []*netdb.RouterInfo) []byte {
	t.Helper()
	data, err := encodeDayUnit(recs)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDayBufferEvictsAndReloads pins the eviction mechanics
// deterministically: with slack 1 and days arriving furthest-first, the
// buffer must spill the largest buffered day to a private temp store,
// reload it byte-identically at its fold turn, and remove the temp
// store on close.
func TestDayBufferEvictsAndReloads(t *testing.T) {
	c, units := streamTestUnits(t, 3)
	want := make([][]byte, len(units))
	for d, recs := range units {
		want[d] = unitFingerprint(t, recs)
	}

	b := newDayBuffer(c, nil, 1)
	put := func(day int) {
		md := &mergedDay{day: day, recs: units[day], bytes: unitBytes(units[day])}
		c.retainUnit(md.bytes)
		if err := b.put(md); err != nil {
			t.Fatal(err)
		}
	}
	put(2) // buffered
	put(1) // exceeds slack: evicts day 2 (furthest)
	if !b.spilled[2] || b.units[2] != nil {
		t.Fatal("day 2 was not evicted as the furthest-out unit")
	}
	if b.tmpDir == "" {
		t.Fatal("eviction without a campaign store must create a temp spill store")
	}
	put(0) // evicts day 1 too
	if !b.spilled[1] {
		t.Fatal("day 1 was not evicted")
	}
	if got := c.MemStats().UnitsEvicted; got != 2 {
		t.Fatalf("UnitsEvicted = %d, want 2", got)
	}

	for day := 0; day < 3; day++ {
		md, reloaded, ok, err := b.take(day)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("day %d unavailable at its fold turn", day)
		}
		if wantReloaded := day != 0; reloaded != wantReloaded {
			t.Fatalf("day %d: reloaded = %v, want %v", day, reloaded, wantReloaded)
		}
		if b.inCampaignStore(reloaded) {
			t.Fatalf("day %d: unit reported in the campaign store, but there is none", day)
		}
		if got := unitFingerprint(t, md.recs); !reflect.DeepEqual(got, want[day]) {
			t.Fatalf("day %d round-tripped through the spill store with different bytes", day)
		}
		if !reloaded {
			c.releaseUnit(md.bytes, false)
		}
	}
	if got := c.retained.Load(); got != 0 {
		t.Fatalf("retained units = %d after full drain, want 0", got)
	}
	if _, _, ok, _ := b.take(3); ok {
		t.Fatal("take returned a unit that was never put")
	}

	tmp := b.tmpDir
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("temp spill store missing before close: %v", err)
	}
	b.close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp spill store survived close (err=%v)", err)
	}
}

// TestDayBufferSpillsToCampaignStore checks the other spill target: when
// the campaign has its own checkpoint store, eviction writes the unit
// there — early, but byte-identical to the fold-time write — and take
// reports fromSpill so commitDay skips the duplicate save.
func TestDayBufferSpillsToCampaignStore(t *testing.T) {
	c, units := streamTestUnits(t, 2)
	store, err := checkpoint.Open(t.TempDir(), c.checkpointManifest())
	if err != nil {
		t.Fatal(err)
	}

	b := newDayBuffer(c, store, 1)
	for day := 1; day >= 0; day-- {
		md := &mergedDay{day: day, recs: units[day], bytes: unitBytes(units[day])}
		c.retainUnit(md.bytes)
		if err := b.put(md); err != nil {
			t.Fatal(err)
		}
	}
	if b.tmpDir != "" {
		t.Fatal("buffer created a temp store despite having the campaign store")
	}
	data, ok, err := store.Load(dayKey(1))
	if err != nil || !ok {
		t.Fatalf("evicted day 1 not in campaign store (ok=%v err=%v)", ok, err)
	}
	if !reflect.DeepEqual(data, unitFingerprint(t, units[1])) {
		t.Fatal("evicted unit bytes differ from the canonical encoding")
	}
	md, reloaded, ok, err := b.take(1)
	if err != nil || !ok {
		t.Fatalf("take(1) failed (ok=%v err=%v)", ok, err)
	}
	if !reloaded || !b.inCampaignStore(reloaded) {
		t.Fatal("a unit evicted to the campaign store must come back as reloaded and already saved")
	}
	if got := unitFingerprint(t, md.recs); !reflect.DeepEqual(got, data) {
		t.Fatal("reloaded unit differs from its stored bytes")
	}
	b.close()
}

// TestStreamFoldOrderInvariant is the fold property test: whatever
// order units arrive in and however tightly the buffer is bounded —
// including spill-and-reload round-trips through the codec — draining
// the buffer in ascending day order folds to a Dataset identical to
// folding the units directly in order.
func TestStreamFoldOrderInvariant(t *testing.T) {
	const days = 10
	c, units := streamTestUnits(t, days)

	reference := NewDataset(0, days)
	db := c.net.GeoDB()
	for day, recs := range units {
		reference.accumulateDay(db, day, recs)
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		order := rng.Perm(days)
		slack := 1 + rng.Intn(3)
		b := newDayBuffer(c, nil, slack)
		ds := NewDataset(0, days)
		next := 0
		for _, day := range order {
			md := &mergedDay{day: day, recs: units[day], bytes: unitBytes(units[day])}
			c.retainUnit(md.bytes)
			if err := b.put(md); err != nil {
				t.Fatal(err)
			}
			for {
				m, _, ok, err := b.take(next)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				ds.accumulateDay(db, next, m.recs)
				next++
			}
		}
		b.close()
		if next != days {
			t.Fatalf("trial %d (order %v, slack %d): folded %d of %d days", trial, order, slack, next, days)
		}
		if !reflect.DeepEqual(ds, reference) {
			t.Fatalf("trial %d (order %v, slack %d): folded Dataset differs from in-order reference", trial, order, slack)
		}
	}
}
