package measure

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// testDataset runs a small campaign once and shares it across tests.
var (
	sharedNet     *sim.Network
	sharedDataset *Dataset
)

func dataset(t testing.TB) (*sim.Network, *Dataset) {
	t.Helper()
	if sharedDataset != nil {
		return sharedNet, sharedDataset
	}
	n, err := sim.New(sim.Config{Seed: 5, Days: 40, TargetDailyPeers: 2000})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCampaign(n, CampaignConfig{
		Observers: DefaultObserverFleet(8),
		StartDay:  0,
		EndDay:    40,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	sharedNet, sharedDataset = n, ds
	return n, ds
}

func TestNewCampaignValidation(t *testing.T) {
	n, _ := dataset(t)
	if _, err := NewCampaign(n, CampaignConfig{StartDay: 0, EndDay: 5}); err == nil {
		t.Fatal("campaign without observers accepted")
	}
	if _, err := NewCampaign(n, CampaignConfig{Observers: DefaultObserverFleet(1), StartDay: 5, EndDay: 5}); err == nil {
		t.Fatal("empty day range accepted")
	}
	if _, err := NewCampaign(n, CampaignConfig{Observers: DefaultObserverFleet(1), StartDay: 0, EndDay: 10000}); err == nil {
		t.Fatal("out-of-range end day accepted")
	}
}

func TestDefaultObserverFleetAlternatesModes(t *testing.T) {
	fleet := DefaultObserverFleet(6)
	if len(fleet) != 6 {
		t.Fatalf("fleet size %d", len(fleet))
	}
	ff := 0
	for _, o := range fleet {
		if o.Floodfill {
			ff++
		}
	}
	if ff != 3 {
		t.Fatalf("floodfill count = %d, want half", ff)
	}
}

func TestCampaignBasicCounts(t *testing.T) {
	n, ds := dataset(t)
	if len(ds.Days) != 40 {
		t.Fatalf("days = %d", len(ds.Days))
	}
	if ds.TotalPeers() == 0 {
		t.Fatal("no peers observed")
	}
	mean := ds.MeanDailyPeers()
	target := float64(n.Config().TargetDailyPeers)
	// Eight 8MB/s observers cover most of the daily network.
	if mean < 0.75*target || mean > 1.05*target {
		t.Fatalf("mean daily peers = %.0f, want near %.0f", mean, target)
	}
	// Distinct peers over 40 days far exceed the daily count.
	if float64(ds.TotalPeers()) < 1.5*mean {
		t.Fatalf("total %d vs daily %.0f: churn missing", ds.TotalPeers(), mean)
	}
}

// TestFigure5Shape: unique IPs below unique peers; IPv6 well below IPv4.
func TestFigure5Shape(t *testing.T) {
	_, ds := dataset(t)
	fig := ds.PopulationTimeline()
	routers := fig.FindSeries("routers")
	all := fig.FindSeries("all IP")
	v4 := fig.FindSeries("IPv4")
	v6 := fig.FindSeries("IPv6")
	if routers == nil || all == nil || v4 == nil || v6 == nil {
		t.Fatal("missing series")
	}
	for i := range routers.X {
		if all.Y[i] >= routers.Y[i] {
			t.Fatalf("day %d: IPs (%v) not below peers (%v) — Figure 5 inversion", i, all.Y[i], routers.Y[i])
		}
		if v6.Y[i] >= v4.Y[i] {
			t.Fatalf("day %d: IPv6 (%v) not below IPv4 (%v)", i, v6.Y[i], v4.Y[i])
		}
		if all.Y[i] != v4.Y[i]+v6.Y[i] {
			t.Fatalf("day %d: all != v4+v6", i)
		}
	}
	if fig.Render() == "" {
		t.Fatal("empty render")
	}
}

// TestFigure6Shape: firewalled ~3-4x hidden; overlap positive and smaller
// than either; unknown-IP ≈ firewalled + hidden − overlap.
func TestFigure6Shape(t *testing.T) {
	_, ds := dataset(t)
	for _, d := range ds.Days {
		if d.Firewalled <= d.Hidden {
			t.Fatalf("day %d: firewalled (%d) must exceed hidden (%d)", d.Day, d.Firewalled, d.Hidden)
		}
		if d.Overlap <= 0 || d.Overlap >= d.Hidden {
			t.Fatalf("day %d: overlap (%d) out of range vs hidden (%d)", d.Day, d.Overlap, d.Hidden)
		}
		if got := d.Firewalled + d.Hidden - d.Overlap; got != d.UnknownIP {
			t.Fatalf("day %d: identity broken: fw+hid-ov=%d unknown=%d", d.Day, got, d.UnknownIP)
		}
		frac := float64(d.UnknownIP) / float64(d.Peers)
		if frac < 0.35 || frac > 0.65 {
			t.Fatalf("day %d: unknown-IP share = %.2f, want ~0.5", d.Day, frac)
		}
	}
}

// TestFigure7Churn checks the anchor points on the observed dataset.
func TestFigure7Churn(t *testing.T) {
	_, ds := dataset(t)
	p7 := ds.ChurnAt(7)
	p30 := ds.ChurnAt(30)
	if p7.Continuous >= p7.Intermittent {
		t.Fatal("continuous must be below intermittent")
	}
	if p30.Continuous >= p7.Continuous || p30.Intermittent >= p7.Intermittent {
		t.Fatal("longer horizons must have smaller shares")
	}
	// The 40-day observation window squeezes the 30-day numbers; keep
	// generous bands around the paper's 56/74 and 20/31.
	if p7.Continuous < 35 || p7.Continuous > 70 {
		t.Fatalf("continuous >=7d = %.1f%%, want ~56%%", p7.Continuous)
	}
	if p7.Intermittent < 55 || p7.Intermittent > 85 {
		t.Fatalf("intermittent >=7d = %.1f%%, want ~74%%", p7.Intermittent)
	}
	fig := ds.ChurnFigure()
	if fig.FindSeries("continuously").Len() == 0 {
		t.Fatal("empty churn figure")
	}
}

// TestFigure8IPChurn: ~45% single-IP among known-IP peers.
func TestFigure8IPChurn(t *testing.T) {
	_, ds := dataset(t)
	single, multi, over100 := ds.IPCountShares()
	if single+multi < 99.9 || single+multi > 100.1 {
		t.Fatalf("shares do not sum to 100: %v + %v", single, multi)
	}
	if single < 30 || single > 75 {
		t.Fatalf("single-IP share = %.1f%%, want ~45%%", single)
	}
	if over100 > 2 {
		t.Fatalf(">100-IP share = %.2f%%, want well under 2%%", over100)
	}
	h := ds.IPChurnHistogram(16)
	if h.Total() == 0 {
		t.Fatal("empty IP histogram")
	}
	if h.Count(1) < h.Count(5) {
		t.Fatal("1-IP bucket must dominate 5-IP bucket")
	}
}

// TestFigure9AndTable1: class ordering and group structure.
func TestFigure9AndTable1(t *testing.T) {
	_, ds := dataset(t)
	l := ds.MeanDailyClassCount(netdb.ClassL)
	n := ds.MeanDailyClassCount(netdb.ClassN)
	p := ds.MeanDailyClassCount(netdb.ClassP)
	o := ds.MeanDailyClassCount(netdb.ClassO)
	if !(l > n && n > p) {
		t.Fatalf("class ordering broken: L=%.0f N=%.0f P=%.0f", l, n, p)
	}
	// O sits between P and M because of legacy double-publication.
	if o <= 0 {
		t.Fatal("no O-flag observations")
	}
	table := ds.Table1()
	// Floodfill column: N dominates, L second (the paper's headline).
	ff := func(cl netdb.BandwidthClass) float64 { return table[cl]["floodfill"] }
	if !(ff(netdb.ClassN) > ff(netdb.ClassL)) {
		t.Fatalf("floodfill N%% (%.1f) must exceed L%% (%.1f)", ff(netdb.ClassN), ff(netdb.ClassL))
	}
	// Reachable and unreachable columns: L dominates.
	for _, grp := range []string{"reachable", "unreachable", "total"} {
		if table[netdb.ClassL][grp] <= table[netdb.ClassN][grp] {
			t.Fatalf("%s column: L%% must dominate N%%", grp)
		}
	}
	// Column sums exceed 100% (multi-letter publication).
	sum := 0.0
	for _, cl := range netdb.BandwidthClasses {
		sum += table[cl]["total"]
	}
	if sum <= 100 {
		t.Fatalf("total column sums to %.1f%%, want > 100%%", sum)
	}
	if ds.RenderTable1() == "" {
		t.Fatal("empty table render")
	}
}

// TestFloodfillEstimate: the Section 5.3.1 pipeline — share ~8.8%,
// qualified ~71%, population estimate ≈ network size.
func TestFloodfillEstimate(t *testing.T) {
	n, ds := dataset(t)
	est := ds.EstimateFloodfillPopulation()
	if est.FloodfillShare < 0.05 || est.FloodfillShare > 0.13 {
		t.Fatalf("floodfill share = %.3f, want ~0.088", est.FloodfillShare)
	}
	if est.QualifiedShare < 0.55 || est.QualifiedShare > 0.85 {
		t.Fatalf("qualified share = %.2f, want ~0.71", est.QualifiedShare)
	}
	target := float64(n.Config().TargetDailyPeers)
	if est.PopulationEstimate < 0.5*target || est.PopulationEstimate > 1.8*target {
		t.Fatalf("population estimate = %.0f, want near %.0f", est.PopulationEstimate, target)
	}
}

// TestFigure10And11Geo: US and Comcast lead; censored countries present.
func TestFigure10And11Geo(t *testing.T) {
	n, ds := dataset(t)
	countries := ds.CountryCounter()
	top := countries.Top(20)
	if top[0].Key != "US" {
		t.Fatalf("top country = %s, want US", top[0].Key)
	}
	shares := countries.CumulativeShare(top)
	if got := shares[len(shares)-1]; got < 55 {
		t.Fatalf("top-20 cumulative = %.1f%%, want > 55%% (paper: >60%%)", got)
	}
	// Big-6 over 40%.
	big6 := 0
	for _, cc := range []string{"US", "RU", "GB", "FR", "CA", "AU"} {
		big6 += countries.Get(cc)
	}
	if frac := float64(big6) / float64(countries.Total()); frac < 0.38 {
		t.Fatalf("big-6 share = %.2f, want > 0.40", frac)
	}

	ases := ds.ASCounter()
	if ases.Top(1)[0].Key != "7922" {
		t.Fatalf("top AS = %s, want 7922 (Comcast)", ases.Top(1)[0].Key)
	}

	cens := ds.CensoredPeers(n.GeoDB())
	if cens.Countries < 15 || cens.Countries > 32 {
		t.Fatalf("censored countries with peers = %d, want ~30", cens.Countries)
	}
	if cens.Top[0].Key != "CN" {
		t.Fatalf("leading censored country = %s, want CN", cens.Top[0].Key)
	}
	frac := float64(cens.TotalPeers) / float64(ds.TotalPeers())
	if frac < 0.02 || frac > 0.12 {
		t.Fatalf("censored share = %.3f, want ~0.05", frac)
	}
	if TopGeo(countries, 20, "country") == "" || TopGeo(ases, 20, "ASN") == "" {
		t.Fatal("empty geo tables")
	}
}

// TestFigure12ASChurn: >75% single-AS, a few percent over 10.
func TestFigure12ASChurn(t *testing.T) {
	_, ds := dataset(t)
	single, over10, maxASes := ds.ASCountShares()
	if single < 70 {
		t.Fatalf("single-AS share = %.1f%%, want > 80%%", single)
	}
	if over10 <= 0 || over10 > 15 {
		t.Fatalf(">10-AS share = %.1f%%, want ~8%%", over10)
	}
	if maxASes > 39 {
		t.Fatalf("max AS count %d exceeds the paper's 39", maxASes)
	}
	h := ds.ASChurnHistogram(10)
	if h.Share(1) < 70 {
		t.Fatalf("histogram single-AS share = %.1f%%", h.Share(1))
	}
}

func TestSnapshotDirWritesNetDbFiles(t *testing.T) {
	n, err := sim.New(sim.Config{Seed: 9, Days: 3, TargetDailyPeers: 300})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	c, err := NewCampaign(n, CampaignConfig{
		Observers:   DefaultObserverFleet(2),
		StartDay:    0,
		EndDay:      2,
		SnapshotDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// Each day's netDb directory must reload cleanly.
	for day := 0; day < 2; day++ {
		ndir := filepath.Join(dir, "day-00"+string(rune('0'+day)), "netDb")
		store := netdb.NewStore(false)
		loaded, err := store.LoadDir(ndir, time.Now())
		if err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		if loaded == 0 {
			t.Fatalf("day %d: no records persisted", day)
		}
	}
}

func TestWriteSummary(t *testing.T) {
	_, ds := dataset(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "summary.txt")
	if err := ds.WriteSummary(path, time.Now()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty summary")
	}
	// The write is stage-then-rename: overwriting must succeed and no
	// staging file may remain beside the summary.
	if err := ds.WriteSummary(path, time.Now()); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "summary.txt" {
			t.Errorf("summary write left %s behind", e.Name())
		}
	}
}

func TestPeerTrackHelpers(t *testing.T) {
	ds := NewDataset(0, 10)
	h := netdb.HashFromUint64(1)
	tr := ds.track(h, 2)
	if tr.FirstDay != 2 || tr.LastDay != 2 {
		t.Fatalf("creation must set the window: first=%d last=%d", tr.FirstDay, tr.LastDay)
	}
	ds.track(h, 3)
	ds.track(h, 6)
	ds.track(h, 8)
	if tr.Span() != 7 {
		t.Fatalf("span = %d, want 7", tr.Span())
	}
	if tr.LongestRun() != 2 {
		t.Fatalf("run = %d, want 2", tr.LongestRun())
	}
	if tr.DaysObserved() != 4 {
		t.Fatalf("days = %d, want 4", tr.DaysObserved())
	}
	// Same hash returns the same track.
	if ds.track(h, 8) != tr {
		t.Fatal("track not memoized")
	}
	if len(ds.SortedHashes()) != 1 {
		t.Fatal("sorted hashes wrong")
	}
	// Empty dataset churn does not divide by zero.
	empty := NewDataset(0, 5)
	if pt := empty.ChurnAt(3); pt.Continuous != 0 || pt.Intermittent != 0 {
		t.Fatal("empty churn should be zero")
	}
	if empty.MeanDailyPeers() != 0 {
		// 5 days exist but no peers
		t.Fatal("mean daily peers should be 0")
	}
}

func TestSurvivalCurveProperties(t *testing.T) {
	_, ds := dataset(t)
	curve := ds.SurvivalCurve()
	if len(curve) == 0 {
		t.Fatal("empty survival curve")
	}
	if curve[0].Probability != 1 {
		t.Fatal("survival must start at 1")
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Probability > curve[i-1].Probability {
			t.Fatal("survival function must be non-increasing")
		}
		if curve[i].Days < curve[i-1].Days {
			t.Fatal("curve days must be sorted")
		}
		if curve[i].Probability < 0 || curve[i].Probability > 1 {
			t.Fatal("probability out of range")
		}
	}
}

// TestSurvivalCorrectsCensoring: the Kaplan-Meier estimate must sit at or
// above the naive intermittent share at long horizons (censoring only
// removes mass from the naive estimate), and agree closely at horizons
// far from the window edge.
func TestSurvivalCorrectsCensoring(t *testing.T) {
	_, ds := dataset(t)
	for _, n := range []int{7, 20, 30} {
		naive := ds.ChurnAt(n).Intermittent
		km := ds.SurvivalAt(n)
		if km < naive-2 { // small slack for step interpolation
			t.Fatalf("KM at %dd (%.1f%%) fell below naive (%.1f%%)", n, km, naive)
		}
	}
	// The 30-day corrected estimate should move toward the paper's 31%
	// from the truncation-depressed naive value.
	naive30 := ds.ChurnAt(30).Intermittent
	km30 := ds.SurvivalAt(30)
	if km30 <= naive30 {
		t.Fatalf("KM at 30d (%.1f%%) should exceed naive (%.1f%%) on a 40-day window", km30, naive30)
	}
}

func TestSurvivalEmptyDataset(t *testing.T) {
	empty := NewDataset(0, 5)
	if empty.SurvivalCurve() != nil {
		t.Fatal("empty dataset should yield nil curve")
	}
	if empty.SurvivalAt(7) != 0 {
		t.Fatal("empty dataset survival should be 0")
	}
}

func TestContributionAnalysis(t *testing.T) {
	n, _ := dataset(t)
	var observers []*sim.Observer
	for i := 0; i < 10; i++ {
		observers = append(observers, n.NewObserver(sim.ObserverConfig{
			Name:       "contrib",
			Floodfill:  i%2 == 0,
			SharedKBps: sim.MaxSharedKBps,
			Seed:       uint64(9000 + i),
		}))
	}
	day := 20
	contribs := ContributionAnalysis(observers, day)
	if len(contribs) != 10 {
		t.Fatalf("contributions = %d", len(contribs))
	}
	// Marginal contributions sum to the union size.
	sum := 0
	for _, c := range contribs {
		sum += c.Marginal
		if c.Marginal > c.Observed {
			t.Fatal("marginal cannot exceed observed")
		}
		if c.Exclusive > c.Observed {
			t.Fatal("exclusive cannot exceed observed")
		}
	}
	union := UnionSize(observers, day)
	if sum != union {
		t.Fatalf("marginal sum %d != union %d", sum, union)
	}
	// The first observer's marginal equals its full view; later marginals
	// shrink (Figure 4's diminishing returns).
	if contribs[0].Marginal != contribs[0].Observed {
		t.Fatal("first observer's marginal must equal its view")
	}
	if contribs[9].Marginal >= contribs[0].Marginal {
		t.Fatalf("tenth marginal (%d) should be far below first (%d)",
			contribs[9].Marginal, contribs[0].Marginal)
	}
}
