package measure

import "context"

// EngineOptions is the engine configuration shared by the three sweep
// constructors (censor.NewSweep, distrib.NewSweep, distrib.NewTrustSweep).
// Each sweep keeps its own grid declaration — the axes differ — but the
// engine knobs are one shape: the worker-pool width and an optional
// construction-time capture pass. Constructors accept EngineOption
// variadics, so the legacy Workers config fields keep working and options
// override them.
type EngineOptions struct {
	// Workers caps engine concurrency: <= 0 one worker per CPU, 1 the
	// serial reference path. The determinism contract makes the value
	// unobservable in results.
	Workers int
	// workersSet distinguishes Workers(0) ("auto") from "not configured,
	// fall back to the legacy config field".
	workersSet bool
	// CaptureCtx, when non-nil, asks the constructor to warm the sweep's
	// shared caches (observation grids, owner tables) through the worker
	// pool before returning, under this context. Nil skips the pass;
	// cells then warm the caches lazily.
	CaptureCtx context.Context
}

// EngineOption configures one engine knob.
type EngineOption func(*EngineOptions)

// Workers sets the worker-pool width (<= 0: one worker per CPU).
func Workers(n int) EngineOption {
	return func(o *EngineOptions) { o.Workers = n; o.workersSet = true }
}

// Capture asks the constructor to run the sweep's capture pass before
// returning, under ctx.
func Capture(ctx context.Context) EngineOption {
	return func(o *EngineOptions) { o.CaptureCtx = ctx }
}

// BuildOptions folds options into the resolved struct.
func BuildOptions(opts ...EngineOption) EngineOptions {
	var o EngineOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WorkersOr returns the configured worker count, or fallback when no
// Workers option was applied.
func (o EngineOptions) WorkersOr(fallback int) int {
	if o.workersSet {
		return o.Workers
	}
	return fallback
}
