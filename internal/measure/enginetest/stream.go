package enginetest

import (
	"io"
	"reflect"
	"runtime"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/obs"
)

// StreamCase is one engine scenario for the streaming-memory contract:
// a bounded-memory (streaming) mode must produce an artifact
// byte-identical to the unbounded (retained) reference while holding
// provably fewer in-flight units than the grid size.
type StreamCase struct {
	// Name labels the subtest.
	Name string
	// RunRetained executes the engine's retained (unbounded reference)
	// mode at Workers = 1 and returns the reference artifact.
	RunRetained func(t testing.TB) any
	// RunStreaming executes the engine's streaming mode at the given
	// worker count, returning the artifact and the peak number of
	// simultaneously retained units the run observed.
	RunStreaming func(t testing.TB, workers int) (artifact any, peakUnits int)
	// MaxRetained returns the peak-unit ceiling the engine guarantees
	// for a resolved worker count (the harness resolves the auto width
	// to NumCPU before calling it). The ceiling must be derived from
	// the engine's pipeline structure — O(workers) — never from the
	// grid size.
	MaxRetained func(workers int) int
}

// Stream asserts the streaming-memory contract for every case across
// the canonical worker ladder: at each width the streaming artifact is
// reflect.DeepEqual-identical to the retained serial reference, and the
// engine's peak retained-unit count stays within the structural ceiling
// MaxRetained reports. Peak accounting is asserted as a unit count, not
// a wall-clock ReadMemStats reading, so the contract is exact and free
// of allocator noise.
//
// Like Golden, the whole ladder runs with observability fully enabled,
// so streaming instrumentation can never influence a result.
func Stream(t *testing.T, cases []StreamCase) {
	t.Helper()
	prevReg, prevTr := obs.Active(), obs.ActiveTracer()
	obs.Enable(obs.NewRegistry())
	obs.EnableTrace(obs.NewTracer(io.Discard))
	t.Cleanup(func() {
		obs.Enable(prevReg)
		obs.EnableTrace(prevTr)
	})
	for _, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			reference := c.RunRetained(t)
			if reference == nil {
				t.Fatal("retained reference produced no artifact")
			}
			for _, w := range Workers() {
				got, peak := c.RunStreaming(t, w)
				if !reflect.DeepEqual(got, reference) {
					t.Errorf("Workers=%d: streaming artifact differs from the retained reference", w)
				}
				resolved := w
				if resolved <= 0 {
					resolved = runtime.NumCPU()
				}
				ceiling := c.MaxRetained(resolved)
				if peak > ceiling {
					t.Errorf("Workers=%d: peak retained units %d exceeds the structural ceiling %d", w, peak, ceiling)
				}
				if peak < 1 {
					t.Errorf("Workers=%d: peak retained units %d — accounting looks dead", w, peak)
				}
			}
		})
	}
}
