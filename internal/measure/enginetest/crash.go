package enginetest

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"reflect"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/faults"
	"github.com/i2pstudy/i2pstudy/internal/obs"
)

// CrashCase is one engine's crash-resume scenario.
type CrashCase struct {
	// Name labels the subtest.
	Name string
	// Point is the engine's fault-injection boundary (e.g.
	// "censor.sweep.cell") — the harness counts how many times a clean
	// run crosses it, then arms a crash at a seeded crossing.
	Point string
	// Run executes the engine at the given worker count with the given
	// checkpoint directory ("" disables checkpointing) and returns a
	// deep-comparable artifact. Workers = 1 must be the serial reference
	// path, and a run over a directory holding prior state must resume
	// from it.
	Run func(t testing.TB, dir string, workers int) (any, error)
}

// CrashResume asserts the crash-resume golden for every case, across
// the Workers ladder, with obs counters and tracing enabled: a run
// interrupted by a deterministically injected fault and then resumed
// from its checkpoint directory yields an artifact byte-identical to
// the uninterrupted reference. The crash crossing is drawn from seed,
// making the crash point part of the seeded input — rerunning the same
// seed reruns the same crashes.
//
// The injected fault is Error-mode: it surfaces as a task error the
// engine propagates, which models any mid-run failure that kills the
// process before completion (hard-exit injection on real binaries is
// exercised by scripts/crash_resume_smoke.sh, where a dead process
// can't take the test runner with it).
func CrashResume(t *testing.T, seed uint64, cases []CrashCase) {
	t.Helper()
	prevReg, prevTr := obs.Active(), obs.ActiveTracer()
	obs.Enable(obs.NewRegistry())
	obs.EnableTrace(obs.NewTracer(io.Discard))
	t.Cleanup(func() {
		obs.Enable(prevReg)
		obs.EnableTrace(prevTr)
		faults.Enable(nil)
	})
	for ci, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			// Reference: serial, no checkpointing, counting-only injector —
			// this measures how many times the engine crosses the fault
			// point, which is width-independent (the boundary is a unit of
			// work, not of scheduling).
			counter := faults.New()
			faults.Enable(counter)
			ref, err := c.Run(t, "", 1)
			faults.Enable(nil)
			if err != nil {
				t.Fatalf("reference run failed: %v", err)
			}
			if ref == nil {
				t.Fatal("reference run produced no artifact")
			}
			hits := counter.Hits(c.Point)
			if hits == 0 {
				t.Fatalf("reference run never crossed fault point %q — wrong point name or dead instrumentation", c.Point)
			}

			rng := rand.New(rand.NewPCG(seed, seed^uint64(ci)+1))
			for _, w := range Workers() {
				t.Run(fmt.Sprintf("workers-%d", w), func(t *testing.T) {
					dir := t.TempDir()
					// Crash at a seeded crossing in [1, hits].
					n := 1 + rng.Uint64()%hits
					faults.Enable(faults.New(faults.Injection{
						Point: c.Point, N: n, Mode: faults.Error,
					}))
					_, err := c.Run(t, dir, w)
					faults.Enable(nil)
					if err == nil {
						t.Fatalf("crash run survived an armed injection at %s crossing %d", c.Point, n)
					}
					if !errors.Is(err, faults.ErrInjected) {
						t.Fatalf("crash run failed with %v, want the injected fault", err)
					}
					// Resume from the checkpoint directory, injector disarmed.
					got, err := c.Run(t, dir, w)
					if err != nil {
						t.Fatalf("resume run failed: %v", err)
					}
					if !reflect.DeepEqual(got, ref) {
						t.Errorf("Workers=%d: resumed artifact differs from the uninterrupted reference (crash was at %s crossing %d)",
							w, c.Point, n)
					}
				})
			}
		})
	}
}
