// Package enginetest is the shared table-driven harness behind the
// engines' worker-determinism goldens. Every parallel engine in the
// repo — the measurement campaign, the censor sweep, the distrib
// arms-race sweep, the trust-graph row engine, the experiment registry —
// carries the same contract: any Workers value yields a byte-identical
// artifact. This package states that contract once, as a table of
// cases, instead of each package hand-rolling its own ladder loop;
// adding an engine means adding a Case, and the ladder (serial
// reference, a fixed small width, one worker per CPU, and the auto
// width) stays uniform everywhere.
package enginetest

import (
	"io"
	"reflect"
	"runtime"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/obs"
)

// Case is one engine scenario.
type Case struct {
	// Name labels the subtest.
	Name string
	// Run executes the engine at the given worker count and returns a
	// deep-comparable artifact. Workers = 1 must be the engine's serial
	// reference path.
	Run func(t testing.TB, workers int) any
}

// Workers returns the canonical determinism ladder: 1 is the serial
// reference the others are compared against; 4 a fixed small width
// (stable across machines); NumCPU the saturated pool; 0 the engine's
// auto width.
func Workers() []int { return []int{1, 4, runtime.NumCPU(), 0} }

// Golden asserts the worker-determinism contract for every case: each
// ladder width produces an artifact reflect.DeepEqual-identical to the
// serial reference. Cases run as subtests, so a failure names the
// engine and the width that diverged.
//
// The whole ladder runs with observability fully enabled — a fresh
// counter registry and a tracer draining to io.Discard — so these
// goldens also enforce the obs layer's hard contract: counters and
// spans record scheduling facts and must never influence a result.
func Golden(t *testing.T, cases []Case) {
	t.Helper()
	prevReg, prevTr := obs.Active(), obs.ActiveTracer()
	obs.Enable(obs.NewRegistry())
	obs.EnableTrace(obs.NewTracer(io.Discard))
	t.Cleanup(func() {
		obs.Enable(prevReg)
		obs.EnableTrace(prevTr)
	})
	for _, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			ladder := Workers()
			serial := c.Run(t, ladder[0])
			if serial == nil {
				t.Fatal("serial reference produced no artifact")
			}
			for _, w := range ladder[1:] {
				if got := c.Run(t, w); !reflect.DeepEqual(got, serial) {
					t.Errorf("Workers=%d: artifact differs from the serial reference", w)
				}
			}
		})
	}
}
