package measure

import (
	"fmt"
	"sort"

	"github.com/i2pstudy/i2pstudy/internal/geo"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/stats"
)

// PopulationTimeline reproduces Figure 5: daily unique peers and unique IP
// addresses (all, IPv4, IPv6).
func (ds *Dataset) PopulationTimeline() *stats.Figure {
	fig := &stats.Figure{
		Title:  "Figure 5: Number of unique peers and IP addresses",
		XLabel: "day",
		YLabel: "observed peers / IPs",
	}
	routers := fig.AddSeries("routers")
	all := fig.AddSeries("all IP")
	v4 := fig.AddSeries("IPv4")
	v6 := fig.AddSeries("IPv6")
	for _, d := range ds.Days {
		x := float64(d.Day)
		routers.Append(x, float64(d.Peers))
		all.Append(x, float64(d.IPAll))
		v4.Append(x, float64(d.IPv4))
		v6.Append(x, float64(d.IPv6))
	}
	return fig
}

// UnknownIPTimeline reproduces Figure 6: daily unknown-IP peers split into
// firewalled, hidden and overlapping.
func (ds *Dataset) UnknownIPTimeline() *stats.Figure {
	fig := &stats.Figure{
		Title:  "Figure 6: Number of peers with unknown IP addresses",
		XLabel: "day",
		YLabel: "observed peers",
	}
	unknown := fig.AddSeries("unknown-IP")
	fw := fig.AddSeries("firewalled")
	hidden := fig.AddSeries("hidden")
	overlap := fig.AddSeries("overlapping")
	for _, d := range ds.Days {
		x := float64(d.Day)
		unknown.Append(x, float64(d.UnknownIP))
		fw.Append(x, float64(d.Firewalled))
		hidden.Append(x, float64(d.Hidden))
		overlap.Append(x, float64(d.Overlap))
	}
	return fig
}

// ChurnPoint is one (horizon, percentage) churn measurement.
type ChurnPoint struct {
	Days         int
	Continuous   float64
	Intermittent float64
}

// ChurnAt returns the percentage of observed peers seen at least n days
// continuously and intermittently (Figure 7's two curves).
func (ds *Dataset) ChurnAt(n int) ChurnPoint {
	if len(ds.Peers) == 0 {
		return ChurnPoint{Days: n}
	}
	cont, inter := 0, 0
	for _, t := range ds.Peers {
		if t.LongestRun() >= n {
			cont++
		}
		if t.Span() >= n {
			inter++
		}
	}
	total := float64(len(ds.Peers))
	return ChurnPoint{
		Days:         n,
		Continuous:   100 * float64(cont) / total,
		Intermittent: 100 * float64(inter) / total,
	}
}

// ChurnFigure reproduces Figure 7 over horizons of 10..80 days (plus the
// paper's 7- and 30-day anchor points).
func (ds *Dataset) ChurnFigure() *stats.Figure {
	fig := &stats.Figure{
		Title:  "Figure 7: Percentage of peers seen continuously or intermittently for n days",
		XLabel: "days",
		YLabel: "percentage",
	}
	cont := fig.AddSeries("continuously")
	inter := fig.AddSeries("intermittently")
	horizons := []int{7, 10, 20, 30, 40, 50, 60, 70, 80}
	for _, n := range horizons {
		if n > ds.EndDay-ds.StartDay {
			break
		}
		pt := ds.ChurnAt(n)
		cont.Append(float64(n), pt.Continuous)
		inter.Append(float64(n), pt.Intermittent)
	}
	return fig
}

// IPChurnHistogram reproduces Figure 8: how many IP addresses each
// known-IP peer was associated with. Buckets above max collapse into the
// final bucket, mirroring the paper's 16+ axis.
func (ds *Dataset) IPChurnHistogram(maxBucket int) *stats.IntHistogram {
	if maxBucket <= 0 {
		maxBucket = 16
	}
	h := stats.NewIntHistogram()
	for _, t := range ds.Peers {
		n := t.IPCount()
		if n == 0 {
			continue // unknown-IP peer
		}
		if n > maxBucket {
			n = maxBucket
		}
		h.Observe(n)
	}
	return h
}

// IPCountShares returns Figure 8's headline shares: the percentage of
// known-IP peers with exactly one address, with two or more, and with more
// than a hundred.
func (ds *Dataset) IPCountShares() (single, multi, over100 float64) {
	total := 0
	s, m, o := 0, 0, 0
	for _, t := range ds.Peers {
		n := t.IPCount()
		if n == 0 {
			continue
		}
		total++
		switch {
		case n == 1:
			s++
		default:
			m++
		}
		if n > 100 {
			o++
		}
	}
	if total == 0 {
		return 0, 0, 0
	}
	f := 100 / float64(total)
	return float64(s) * f, float64(m) * f, float64(o) * f
}

// CapacityFigure reproduces Figure 9: the mean daily number of peers per
// published bandwidth letter.
func (ds *Dataset) CapacityFigure() *stats.Figure {
	fig := &stats.Figure{
		Title:  "Figure 9: Capacity distribution of I2P peers",
		XLabel: "class",
		YLabel: "mean daily peers",
	}
	s := fig.AddSeries("observed peers")
	days := float64(len(ds.Days))
	for _, cl := range netdb.BandwidthClasses {
		sum := 0
		for _, d := range ds.Days {
			sum += d.ClassCounts[cl]
		}
		s.Append(float64(cl.Index()), float64(sum)/days)
	}
	return fig
}

// MeanDailyClassCount returns the average daily count for one class.
func (ds *Dataset) MeanDailyClassCount(cl netdb.BandwidthClass) float64 {
	if len(ds.Days) == 0 {
		return 0
	}
	sum := 0
	for _, d := range ds.Days {
		sum += d.ClassCounts[cl]
	}
	return float64(sum) / float64(len(ds.Days))
}

// Table1Groups lists the column order of Table 1.
var Table1Groups = []string{"floodfill", "reachable", "unreachable", "total"}

// Table1 reproduces the paper's Table 1: for each bandwidth class, the
// percentage of routers in the floodfill / reachable / unreachable / total
// groups publishing that class letter. Column sums exceed 100% for the two
// reasons the paper gives (flag fluctuation and legacy multi-letter
// publication).
func (ds *Dataset) Table1() map[netdb.BandwidthClass]map[string]float64 {
	// Group totals: peer-day counts per group.
	var ffTotal, rTotal, uTotal, allTotal int
	for _, d := range ds.Days {
		ffTotal += d.Floodfill
		rTotal += d.Reachable
		uTotal += d.Unreachable
		allTotal += d.Peers
	}
	out := make(map[netdb.BandwidthClass]map[string]float64, len(netdb.BandwidthClasses))
	pct := func(num, den int) float64 {
		if den == 0 {
			return 0
		}
		return 100 * float64(num) / float64(den)
	}
	for _, cl := range netdb.BandwidthClasses {
		var ff, r, u, all int
		for _, d := range ds.Days {
			ff += d.GroupClass["floodfill"][cl]
			r += d.GroupClass["reachable"][cl]
			u += d.GroupClass["unreachable"][cl]
			all += d.ClassCounts[cl]
		}
		out[cl] = map[string]float64{
			"floodfill":   pct(ff, ffTotal),
			"reachable":   pct(r, rTotal),
			"unreachable": pct(u, uTotal),
			"total":       pct(all, allTotal),
		}
	}
	return out
}

// RenderTable1 renders Table1 in the paper's layout.
func (ds *Dataset) RenderTable1() string {
	data := ds.Table1()
	rows := [][]string{{"Bandwidth", "Floodfill", "Reachable", "Unreachable", "Total"}}
	labels := map[netdb.BandwidthClass]string{
		netdb.ClassK: "< 12 KB/s    K",
		netdb.ClassL: "12-48 KB/s   L",
		netdb.ClassM: "48-64 KB/s   M",
		netdb.ClassN: "64-128 KB/s  N",
		netdb.ClassO: "128-256 KB/s O",
		netdb.ClassP: "256-2000 KB/s P",
		netdb.ClassX: "> 2000 KB/s  X",
	}
	for _, cl := range netdb.BandwidthClasses {
		d := data[cl]
		rows = append(rows, []string{
			labels[cl],
			fmt.Sprintf("%.2f", d["floodfill"]),
			fmt.Sprintf("%.2f", d["reachable"]),
			fmt.Sprintf("%.2f", d["unreachable"]),
			fmt.Sprintf("%.2f", d["total"]),
		})
	}
	return stats.RenderTable(rows)
}

// FloodfillEstimate is the Section 5.3.1 population estimate.
type FloodfillEstimate struct {
	// MeanDailyFloodfills is the average daily f-flagged peer count.
	MeanDailyFloodfills float64
	// FloodfillShare is that count over the mean daily peer count.
	FloodfillShare float64
	// QualifiedShare is the fraction of floodfills meeting the automatic
	// opt-in bandwidth floor (class N or better; the paper: 71%).
	QualifiedShare float64
	// QualifiedDaily = MeanDailyFloodfills * QualifiedShare (the paper:
	// ~1,917).
	QualifiedDaily float64
	// PopulationEstimate = QualifiedDaily / AutomaticFloodfillShare (the
	// paper: ~31,950).
	PopulationEstimate float64
}

// AutomaticFloodfillShare is the I2P project's own estimate that ~6% of
// the network runs floodfill automatically (Section 5.3.1).
const AutomaticFloodfillShare = 0.06

// EstimateFloodfillPopulation computes the Section 5.3.1 estimate from the
// dataset: remove manually enabled, under-provisioned floodfills, then
// scale the qualified count by the 6% automatic-floodfill share.
func (ds *Dataset) EstimateFloodfillPopulation() FloodfillEstimate {
	// Count qualified vs unqualified floodfill peer-days.
	var qualified, unqualified int
	for _, d := range ds.Days {
		for cl, n := range d.GroupClass["floodfill"] {
			// Count primary letters only: skip the legacy O double-count
			// by attributing O only when it is the primary class; this
			// mirrors the paper's set-subtraction of K/L/M overlap.
			if cl.AtLeast(netdb.FloodfillMinClass) {
				qualified += n
			} else {
				unqualified += n
			}
		}
	}
	days := float64(len(ds.Days))
	if days == 0 {
		return FloodfillEstimate{}
	}
	var ffTotal int
	for _, d := range ds.Days {
		ffTotal += d.Floodfill
	}
	meanFF := float64(ffTotal) / days
	share := 0.0
	if qualified+unqualified > 0 {
		share = float64(qualified) / float64(qualified+unqualified)
	}
	qualifiedDaily := meanFF * share
	return FloodfillEstimate{
		MeanDailyFloodfills: meanFF,
		FloodfillShare:      meanFF / ds.MeanDailyPeers(),
		QualifiedShare:      share,
		QualifiedDaily:      qualifiedDaily,
		PopulationEstimate:  qualifiedDaily / AutomaticFloodfillShare,
	}
}

// CountryCounter reproduces Figure 10's counting rule: a peer associated
// with several addresses is counted once per distinct country.
func (ds *Dataset) CountryCounter() *stats.Counter {
	c := stats.NewCounter()
	for _, t := range ds.Peers {
		for _, cc := range t.CountryCodes() {
			c.Inc(cc)
		}
	}
	return c
}

// ASCounter reproduces Figure 11: a peer is counted once per distinct
// autonomous system.
func (ds *Dataset) ASCounter() *stats.Counter {
	c := stats.NewCounter()
	for _, t := range ds.Peers {
		for _, asn := range t.ASNs() {
			c.Inc(fmt.Sprintf("%d", asn))
		}
	}
	return c
}

// CensoredSummary summarizes the peers observed in countries with poor
// press-freedom scores (Section 5.3.2: ~30 countries, ~6K peers, led by
// China, then Singapore and Turkey).
type CensoredSummary struct {
	Countries  int
	TotalPeers int
	Top        []stats.KV
}

// CensoredPeers computes the censored-country summary using db's
// press-freedom table.
func (ds *Dataset) CensoredPeers(db *geo.DB) CensoredSummary {
	counts := stats.NewCounter()
	for _, t := range ds.Peers {
		for _, cc := range t.CountryCodes() {
			if db.Censored(cc) {
				counts.Inc(cc)
			}
		}
	}
	return CensoredSummary{
		Countries:  counts.Len(),
		TotalPeers: counts.Total(),
		Top:        counts.Top(5),
	}
}

// ASChurnHistogram reproduces Figure 12: the number of distinct autonomous
// systems each known-IP peer was observed in, capped at maxBucket.
func (ds *Dataset) ASChurnHistogram(maxBucket int) *stats.IntHistogram {
	if maxBucket <= 0 {
		maxBucket = 10
	}
	h := stats.NewIntHistogram()
	for _, t := range ds.Peers {
		n := t.ASCount()
		if n == 0 {
			continue
		}
		if n > maxBucket {
			n = maxBucket
		}
		h.Observe(n)
	}
	return h
}

// ASCountShares returns Figure 12's headline shares: percentage of
// known-IP peers in exactly one AS and in more than ten.
func (ds *Dataset) ASCountShares() (single, over10 float64, maxASes int) {
	total, s, o := 0, 0, 0
	for _, t := range ds.Peers {
		n := t.ASCount()
		if n == 0 {
			continue
		}
		total++
		if n == 1 {
			s++
		}
		if n > 10 {
			o++
		}
		if n > maxASes {
			maxASes = n
		}
	}
	if total == 0 {
		return 0, 0, 0
	}
	return 100 * float64(s) / float64(total), 100 * float64(o) / float64(total), maxASes
}

// TopGeo renders a top-N table with cumulative percentages in the layout
// of Figures 10 and 11.
func TopGeo(c *stats.Counter, n int, label string) string {
	top := c.Top(n)
	shares := c.CumulativeShare(top)
	rows := [][]string{{label, "peers", "cum %"}}
	for i, kv := range top {
		rows = append(rows, []string{kv.Key, fmt.Sprint(kv.Count), fmt.Sprintf("%.1f", shares[i])})
	}
	return stats.RenderTable(rows)
}

// SortedHashes returns the dataset's peer hashes in deterministic order
// (useful for tests and serialization).
func (ds *Dataset) SortedHashes() []netdb.Hash {
	out := make([]netdb.Hash, 0, len(ds.Peers))
	for h := range ds.Peers {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
