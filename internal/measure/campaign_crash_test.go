package measure

import (
	"context"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/measure/enginetest"
)

// TestCampaignCrashResume is the campaign's crash-safety golden, stated
// through the shared harness: a campaign killed by an injected fault at
// a day boundary and resumed from its checkpoint directory yields a
// Dataset byte-identical to an uninterrupted run, at every ladder
// width. The day unit round-trips through the netdb wire codec, so the
// resumed accumulation folds exactly the value fields the live capture
// produced.
func TestCampaignCrashResume(t *testing.T) {
	n := parallelTestNet(t)
	enginetest.CrashResume(t, 2018, []enginetest.CrashCase{{
		Name:  "campaign-days",
		Point: "measure.campaign.day",
		Run: func(t testing.TB, dir string, workers int) (any, error) {
			c, err := NewCampaign(n, CampaignConfig{
				Observers:     DefaultObserverFleet(4),
				StartDay:      0,
				EndDay:        8,
				Workers:       workers,
				CheckpointDir: dir,
			})
			if err != nil {
				t.Fatal(err)
			}
			ds, err := c.RunContext(context.Background())
			if err != nil {
				return nil, err
			}
			return ds, nil
		},
	}})
}
