package measure

import (
	"context"
	"testing"
)

// TestEngineOptions: the option shape the three sweep constructors share —
// Workers overrides legacy config fields only when actually applied, and
// Workers(0) ("auto") is distinguishable from "not configured".
func TestEngineOptions(t *testing.T) {
	if got := BuildOptions().WorkersOr(3); got != 3 {
		t.Fatalf("unconfigured WorkersOr = %d, want fallback 3", got)
	}
	if got := BuildOptions(Workers(5)).WorkersOr(3); got != 5 {
		t.Fatalf("Workers(5) override = %d", got)
	}
	if got := BuildOptions(Workers(0)).WorkersOr(3); got != 0 {
		t.Fatalf("explicit Workers(0) = %d, want 0 (auto)", got)
	}
	if BuildOptions().CaptureCtx != nil {
		t.Fatal("capture configured by default")
	}
	ctx := context.Background()
	if BuildOptions(Capture(ctx)).CaptureCtx != ctx {
		t.Fatal("Capture(ctx) not recorded")
	}
}
