package measure

import (
	"context"
	"strings"
	"sync"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/obs"
)

// withObs enables a fresh registry (and optionally a tracer buffer) for
// the test's duration, restoring the previous globals after.
func withObs(t *testing.T, trace bool) (*obs.Registry, *strings.Builder) {
	t.Helper()
	prevReg, prevTr := obs.Active(), obs.ActiveTracer()
	r := obs.NewRegistry()
	obs.Enable(r)
	var buf *strings.Builder
	if trace {
		buf = &strings.Builder{}
		obs.EnableTrace(obs.NewTracer(buf))
	}
	t.Cleanup(func() {
		obs.Enable(prevReg)
		obs.EnableTrace(prevTr)
	})
	return r, buf
}

func TestFanOutCountsSerialTasks(t *testing.T) {
	r, _ := withObs(t, false)
	err := FanOut(context.Background(), 5, 1, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	text := r.RenderText()
	if !strings.Contains(text, `i2p_engine_tasks_total{mode="serial"} 5`) {
		t.Errorf("serial task count wrong:\n%s", text)
	}
}

func TestFanOutCountsParallelTasksAndSteals(t *testing.T) {
	r, buf := withObs(t, true)
	// Force at least one steal deterministically: with 2 workers over 4
	// tasks the runs are [0 1] and [2 3]. Task 0 blocks until every
	// other task is done, so worker 0 cannot reach task 1 — worker 1
	// must steal it before task 0 can unblock.
	var others sync.WaitGroup
	others.Add(3)
	err := FanOut(context.Background(), 4, 2, func(i int) error {
		if i == 0 {
			others.Wait()
			return nil
		}
		others.Done()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	text := r.RenderText()
	if !strings.Contains(text, `i2p_engine_tasks_total{mode="parallel"} 4`) {
		t.Errorf("parallel task count wrong:\n%s", text)
	}
	fams, _ := findCounter(text, "i2p_engine_steals_total")
	if fams < 1 {
		t.Errorf("steals = %d, want >= 1:\n%s", fams, text)
	}
	// The trace saw the same schedule: task spans on both workers and at
	// least one steal instant naming its victim.
	tr := buf.String()
	if !strings.Contains(tr, `"name":"task"`) || !strings.Contains(tr, `"name":"steal"`) {
		t.Errorf("trace missing task/steal events:\n%s", tr)
	}
}

// findCounter extracts the rendered integer value of an unlabeled
// counter from exposition text.
func findCounter(text, name string) (int, bool) {
	for _, line := range strings.Split(text, "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			n := 0
			for _, c := range v {
				if c < '0' || c > '9' {
					return 0, false
				}
				n = n*10 + int(c-'0')
			}
			return n, true
		}
	}
	return 0, false
}

func TestPlanRowsCostCountsSplitsAndSeams(t *testing.T) {
	r, _ := withObs(t, false)
	// One expensive 8-task row over 4 workers: budget = ceil(8/(4*2)) = 1
	// per segment with unit costs, so the free-seam row splits at every
	// boundary.
	plan := PlanRowsCost(8, 1,
		func(i int) int { return 0 },
		func(i int) int { return i },
		nil, nil, 4)
	if len(plan) < 2 {
		t.Fatalf("row did not split: %v", plan)
	}
	text := r.RenderText()
	if !strings.Contains(text, "i2p_engine_rows_planned_total 1") {
		t.Errorf("rows planned wrong:\n%s", text)
	}
	splits, ok := findCounter(text, "i2p_engine_row_splits_total")
	if !ok || splits != len(plan)-1 {
		t.Errorf("splits counter = %d, want %d:\n%s", splits, len(plan)-1, text)
	}
	// Free seams accrue zero seam cost.
	if !strings.Contains(text, "i2p_engine_row_seam_cost_total 0") {
		t.Errorf("seam cost should be 0 for nil seam model:\n%s", text)
	}
}

func TestSplitRowsCountsSeamCost(t *testing.T) {
	r, _ := withObs(t, false)
	row := make([]int, 10)
	for i := range row {
		row[i] = i
	}
	plan := RowPlan{row}
	// Unit cost, seam 2 per cut, budget 5: cuts are allowed (2 <= 5/2)
	// and each accepted cut adds its seam estimate to the counter.
	split := plan.SplitRows(nil, func(i int) int { return 2 }, 5)
	cuts := len(split) - len(plan)
	if cuts < 1 {
		t.Fatalf("expected at least one cut: %v", split)
	}
	text := r.RenderText()
	seam, ok := findCounter(text, "i2p_engine_row_seam_cost_total")
	if !ok || seam != 2*cuts {
		t.Errorf("seam cost = %d, want %d:\n%s", seam, 2*cuts, text)
	}
}

func TestFanRowsEmitsRowAndCellSpans(t *testing.T) {
	_, buf := withObs(t, true)
	plan := RowPlan{{0, 1}, {2}, {3, 4}}
	err := FanRows(context.Background(), plan, 2, func(row, task int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	tr := buf.String()
	if strings.Count(tr, `"name":"cell"`) != 5 {
		t.Errorf("want 5 cell spans:\n%s", tr)
	}
	if strings.Count(tr, `"name":"row"`) != 3 {
		t.Errorf("want 3 row spans:\n%s", tr)
	}
}

func TestObservabilityDisabledFanOutStillWorks(t *testing.T) {
	prevReg, prevTr := obs.Active(), obs.ActiveTracer()
	obs.Enable(nil)
	obs.EnableTrace(nil)
	t.Cleanup(func() {
		obs.Enable(prevReg)
		obs.EnableTrace(prevTr)
	})
	got := make([]int, 16)
	err := FanOut(context.Background(), 16, 4, func(i int) error {
		got[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}
