package measure

import "sync/atomic"

// Completion tracks when every task of a logical group has finished,
// across however many plan rows the group was split into. Row plans
// split rows at cost seams (SplitRows), so "row 3 is done" is no longer
// "the plan row for 3 returned" — it is "all of row 3's tasks, in
// whichever segments they landed, completed". Checkpointing engines use
// a Completion keyed by stable row id to learn, at the moment the last
// cell of a row finishes, that the row's results are final and may be
// spilled — on exactly one worker, with the atomic decrement providing
// the happens-before edge from every other worker's writes to that
// row's result slots.
type Completion struct {
	pending []atomic.Int32
}

// NewCompletion returns a Completion where group g needs counts[g]
// Done calls before it completes.
func NewCompletion(counts []int) *Completion {
	c := &Completion{pending: make([]atomic.Int32, len(counts))}
	for g, n := range counts {
		c.pending[g].Store(int32(n))
	}
	return c
}

// Done records one finished task of group g and reports whether that
// was the group's last task. Exactly one caller per group observes
// true; its view of other workers' writes for the group is complete.
func (c *Completion) Done(g int) bool {
	return c.pending[g].Add(-1) == 0
}

// Pending reports how many tasks group g still has outstanding.
func (c *Completion) Pending(g int) int {
	return int(c.pending[g].Load())
}
