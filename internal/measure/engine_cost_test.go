package measure

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFanOutRunsEachTaskOnce: the work-stealing scheduler hands every
// index out exactly once, at any pool shape — including more workers
// than tasks, a single worker (the serial fast path), and the empty
// grid.
func TestFanOutRunsEachTaskOnce(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 1}, {1, 8}, {7, 1}, {7, 2}, {7, 7}, {7, 32},
		{100, 3}, {1000, 8}, {1000, 0},
	} {
		counts := make([]int32, tc.n)
		err := FanOut(context.Background(), tc.n, tc.workers, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d workers=%d: %v", tc.n, tc.workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d workers=%d: task %d ran %d times", tc.n, tc.workers, i, c)
			}
		}
	}
}

// TestFanOutStealsUnevenLoad: with every task but one held on a gate,
// the free workers must steal their way through the rest of the index
// space — if stealing were broken, the slow run's owner would be the
// only worker able to finish its tasks and the gated waiter would
// starve the pool.
func TestFanOutStealsUnevenLoad(t *testing.T) {
	const n, workers = 64, 4
	gate := make(chan struct{})
	var done int32
	err := FanOut(context.Background(), n, workers, func(i int) error {
		if i == 0 {
			// Task 0 (worker 0's first claim) blocks until every other
			// task has finished — which can only happen if the other
			// workers drain worker 0's remaining run by stealing.
			<-gate
			return nil
		}
		if atomic.AddInt32(&done, 1) == n-1 {
			close(gate)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFanOutStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	// Serial fast path: the error stops the walk immediately, so exactly
	// tasks 0..3 run.
	var ran int32
	err := FanOut(context.Background(), 1000, 1, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("serial err = %v, want boom", err)
	}
	if n := atomic.LoadInt32(&ran); n != 4 {
		t.Fatalf("serial ran %d tasks, want 4", n)
	}
	// Pooled path: the first error is the one reported, even when every
	// worker fails.
	err = FanOut(context.Background(), 100, 4, func(i int) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("pooled err = %v, want boom", err)
	}
}

func TestFanOutCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		err := FanOut(ctx, 8, workers, func(i int) error {
			return fmt.Errorf("task %d ran under a cancelled context", i)
		})
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestSplitRowsCutsAtCostBoundaries: a long uniform row splits into
// budget-sized segments whose concatenation is the original row, and
// cheap rows stay whole.
func TestSplitRowsCutsAtCostBoundaries(t *testing.T) {
	long := make([]int, 12)
	for i := range long {
		long[i] = i
	}
	plan := RowPlan{long, {12, 13}}
	got := plan.SplitRows(nil, nil, 4) // unit cost, free seam
	want := RowPlan{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}, {12, 13}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("split = %v, want %v", got, want)
	}
	if got.Tasks() != plan.Tasks() {
		t.Fatalf("split lost tasks: %d != %d", got.Tasks(), plan.Tasks())
	}
}

// TestSplitRowsSeamGate: a seam as expensive as the prefix it would
// skip (the trust rows' full-replay seam) blocks the cut; a cheap seam
// admits it at the same budget.
func TestSplitRowsSeamGate(t *testing.T) {
	row := []int{0, 1, 2, 3, 4, 5, 6, 7}
	plan := RowPlan{row}
	// Full-replay seam: resuming at task t costs t — always > budget/2
	// once the walk wants to cut, so the row must stay whole.
	replay := func(i int) int { return i }
	if got := plan.SplitRows(nil, replay, 3); len(got) != 1 {
		t.Fatalf("full-replay seam split anyway: %v", got)
	}
	// A unit seam is within every gate: the row splits, and each later
	// segment's budget accounts for the seam unit (3-cost budget leaves
	// 2 tasks after a 1-cost seam).
	cheap := func(i int) int { return 1 }
	got := plan.SplitRows(nil, cheap, 3)
	want := RowPlan{{0, 1, 2}, {3, 4}, {5, 6}, {7}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cheap seam split = %v, want %v", got, want)
	}
}

// TestSplitRowsDegenerateModels: non-positive budgets are a no-op, and
// zero/negative cost estimates clamp to one unit instead of producing
// unbounded segments.
func TestSplitRowsDegenerateModels(t *testing.T) {
	plan := RowPlan{{0, 1, 2, 3}}
	if got := plan.SplitRows(nil, nil, 0); !reflect.DeepEqual(got, plan) {
		t.Fatalf("budget 0 changed the plan: %v", got)
	}
	if got := plan.SplitRows(nil, nil, -5); !reflect.DeepEqual(got, plan) {
		t.Fatalf("negative budget changed the plan: %v", got)
	}
	zero := func(i int) int { return 0 }
	got := plan.SplitRows(zero, nil, 2) // clamped to unit cost
	want := RowPlan{{0, 1}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("zero-cost model split = %v, want %v", got, want)
	}
}

// TestPlanRowsCostSplitsForPools: with one worker the plan comes back
// unsplit (nobody to hand segments to); with a pool, the dominant row
// splits under the derived budget and no task is lost or reordered.
func TestPlanRowsCostSplitsForPools(t *testing.T) {
	// 2 rows x 16 days, row 0 carrying 10x the cost per cell.
	n, rows := 32, 2
	rowOf := func(i int) int { return i % rows }
	key := func(i int) int { return i / rows }
	cost := func(i int) int {
		if i%rows == 0 {
			return 10
		}
		return 1
	}
	unsplit := PlanRowsCost(n, rows, rowOf, key, cost, nil, 1)
	if len(unsplit) != rows {
		t.Fatalf("workers=1 split anyway: %d rows", len(unsplit))
	}
	split := PlanRowsCost(n, rows, rowOf, key, cost, nil, 4)
	if len(split) <= rows {
		t.Fatalf("workers=4 did not split the dominant row: %d rows", len(split))
	}
	if split.Tasks() != n {
		t.Fatalf("split lost tasks: %d != %d", split.Tasks(), n)
	}
	// Segment concatenation preserves each original row exactly.
	concat := make(map[int][]int)
	for _, seg := range split {
		r := rowOf(seg[0])
		concat[r] = append(concat[r], seg...)
	}
	for r, row := range PlanRows(n, rows, rowOf, key) {
		if !reflect.DeepEqual(concat[r], []int(row)) {
			t.Fatalf("row %d reassembles to %v, want %v", r, concat[r], row)
		}
	}
	// The derived budget respects total cost: no segment exceeds it.
	budget := (unsplit.Cost(cost) + 4*splitOversub - 1) / (4 * splitOversub)
	for _, seg := range split {
		if c := (RowPlan{seg}).Cost(cost); c > budget {
			t.Fatalf("segment %v cost %d exceeds budget %d", seg, c, budget)
		}
	}
}

// TestFanRowsSplitPlanDeterminism: running the same rolling fold over a
// split plan — each segment rebuilding its state from the row prefix,
// the seam-stitching model — matches the unsplit serial reference at
// every ladder width.
func TestFanRowsSplitPlanDeterminism(t *testing.T) {
	n, rows := 48, 3
	rowOf := func(i int) int { return i % rows }
	key := func(i int) int { return i / rows }
	base := PlanRows(n, rows, rowOf, key)
	run := func(plan RowPlan, workers int) []int {
		out := make([]int, n)
		// Rolling state: prefix sum along the row. A segment that does
		// not start the row stitches by replaying the prefix — the exact
		// from-scratch reference the sweep engines use at seams.
		states := make([]int, len(plan))
		inited := make([]bool, len(plan))
		if err := FanRows(context.Background(), plan, workers, func(row, task int) error {
			if !inited[row] {
				inited[row] = true
				for _, t2 := range base[rowOf(task)] {
					if key(t2) >= key(task) {
						break
					}
					states[row] += t2
				}
			}
			states[row] += task
			out[task] = states[row]
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(base, 1)
	split := base.SplitRows(nil, nil, 5)
	if len(split) <= len(base) {
		t.Fatalf("budget 5 did not split: %d rows", len(split))
	}
	for _, workers := range []int{1, 2, 4, 16} {
		if got := run(split, workers); !reflect.DeepEqual(got, serial) {
			t.Fatalf("split plan at workers=%d diverged from unsplit serial", workers)
		}
	}
}

// TestFanOutSerialFastPathOrder: workers=1 must run tasks in ascending
// index order on the caller's goroutine — it is the determinism
// goldens' reference path.
func TestFanOutSerialFastPathOrder(t *testing.T) {
	var order []int
	var mu sync.Mutex
	if err := FanOut(context.Background(), 8, 1, func(i int) error {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2, 3, 4, 5, 6, 7}; !reflect.DeepEqual(order, want) {
		t.Fatalf("serial order = %v, want %v", order, want)
	}
}
