package eepsite

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/tunnel"
)

// This file implements the paper's Figure 1 end to end: Alice reaches
// Bob's eepsite through four unidirectional tunnels, with garlic-wrapped
// requests carrying their own reply instructions and every tunnel applying
// real layered encryption. The Fetch/Crawl path in eepsite.go models
// *timing* under blocking; this path exercises the *data plane*.

// Server hosts eepsite content behind an inbound tunnel.
type Server struct {
	Site    *Site
	content map[string][]byte

	inbound  *tunnel.Tunnel
	outbound *tunnel.Tunnel
}

// NewServer hosts the site with a default index page (the paper used "a
// simple and small html file").
func NewServer(site *Site) *Server {
	s := &Server{Site: site, content: make(map[string][]byte)}
	s.SetContent("/", []byte("<html><body>eepsite up</body></html>"))
	return s
}

// SetContent installs a page at path.
func (s *Server) SetContent(path string, body []byte) {
	s.content[path] = body
}

// AttachTunnels installs the server's current inbound and outbound
// tunnels (built by a tunnel.Pool).
func (s *Server) AttachTunnels(in, out *tunnel.Tunnel) {
	s.inbound, s.outbound = in, out
}

// LeaseSet publishes the server's inbound gateway, as Bob's LeaseSet does
// in Section 2.1.2.
func (s *Server) LeaseSet(now time.Time) (*netdb.LeaseSet, error) {
	if s.inbound == nil {
		return nil, errors.New("eepsite: no inbound tunnel attached")
	}
	return &netdb.LeaseSet{
		Destination: s.Site.Dest,
		Published:   now,
		Leases: []netdb.Lease{{
			Gateway:  s.inbound.Gateway(),
			TunnelID: s.inbound.ID,
			Expires:  s.inbound.Expires,
		}},
	}, nil
}

// Request/response payloads use a minimal HTTP-like text form.
const (
	statusOK       = "200 OK"
	statusNotFound = "404 Not Found"
)

// replyBlock is the clove telling the responder where to send the answer:
// the requester's inbound tunnel gateway and ID.
func replyBlock(inbound *tunnel.Tunnel) []byte {
	return []byte(fmt.Sprintf("reply-to %s %d", inbound.Gateway().String(), inbound.ID))
}

// BuildRequest assembles and layer-encrypts a GET request for the
// requester's outbound tunnel: a garlic message bundling the HTTP payload
// (for the destination) and the reply block, wrapped for every hop of the
// outbound tunnel.
func BuildRequest(dest netdb.Hash, path string, out, in *tunnel.Tunnel) ([]byte, error) {
	g := &tunnel.GarlicMessage{Cloves: []tunnel.Clove{
		{Kind: tunnel.DeliverDestination, To: dest, Payload: []byte("GET " + path)},
		{Kind: tunnel.DeliverLocal, Payload: replyBlock(in)},
	}}
	encoded, err := g.Encode()
	if err != nil {
		return nil, err
	}
	return tunnel.WrapLayers(out, encoded), nil
}

// HandleRequest is the server side: the request has traversed the
// client's outbound tunnel and the server's inbound tunnel (the caller
// performs the traversals, as the hops would); the server decodes the
// garlic, serves the path and returns the response garlic wrapped for its
// own outbound tunnel.
func (s *Server) HandleRequest(garlicData []byte) ([]byte, error) {
	if s.outbound == nil {
		return nil, errors.New("eepsite: no outbound tunnel attached")
	}
	g, err := tunnel.DecodeGarlic(garlicData)
	if err != nil {
		return nil, err
	}
	var request []byte
	var reply []byte
	for _, clove := range g.Cloves {
		switch clove.Kind {
		case tunnel.DeliverDestination:
			if clove.To == s.Site.Dest {
				request = clove.Payload
			}
		case tunnel.DeliverLocal:
			reply = clove.Payload
		}
	}
	if request == nil {
		return nil, errors.New("eepsite: no request clove for this destination")
	}
	if reply == nil {
		return nil, errors.New("eepsite: request carried no reply block")
	}

	var body []byte
	status := statusNotFound
	if path, ok := bytes.CutPrefix(request, []byte("GET ")); ok {
		if content, found := s.content[string(path)]; found {
			status = statusOK
			body = content
		}
	}
	respPayload := append([]byte(status+"\n"), body...)
	resp := &tunnel.GarlicMessage{Cloves: []tunnel.Clove{
		{Kind: tunnel.DeliverRouter, To: mustReplyGateway(reply), Payload: respPayload},
	}}
	encoded, err := resp.Encode()
	if err != nil {
		return nil, err
	}
	return tunnel.WrapLayers(s.outbound, encoded), nil
}

// mustReplyGateway extracts the gateway hash from a reply block; a
// malformed block yields the zero hash, which no router matches.
func mustReplyGateway(reply []byte) netdb.Hash {
	var b32 string
	var id uint32
	if _, err := fmt.Sscanf(string(reply), "reply-to %s %d", &b32, &id); err != nil {
		return netdb.Hash{}
	}
	h, err := netdb.ParseHash(b32)
	if err != nil {
		return netdb.Hash{}
	}
	return h
}

// ParseResponse decodes the response garlic after it has traversed the
// requester's inbound tunnel, returning status line and body.
func ParseResponse(garlicData []byte) (status string, body []byte, err error) {
	g, err := tunnel.DecodeGarlic(garlicData)
	if err != nil {
		return "", nil, err
	}
	if len(g.Cloves) == 0 {
		return "", nil, errors.New("eepsite: empty response garlic")
	}
	payload := g.Cloves[0].Payload
	idx := bytes.IndexByte(payload, '\n')
	if idx < 0 {
		return string(payload), nil, nil
	}
	return string(payload[:idx]), payload[idx+1:], nil
}

// RoundTrip performs the complete Figure 1 exchange in-process: the
// request crosses the client's outbound and the server's inbound tunnels,
// the response crosses the server's outbound and the client's inbound
// tunnels, with layered encryption applied and peeled at every step.
func RoundTrip(srv *Server, path string, clientOut, clientIn *tunnel.Tunnel) (status string, body []byte, err error) {
	if srv.inbound == nil || srv.outbound == nil {
		return "", nil, errors.New("eepsite: server tunnels not attached")
	}
	// Client -> outbound tunnel.
	wrapped, err := BuildRequest(srv.Site.Dest, path, clientOut, clientIn)
	if err != nil {
		return "", nil, err
	}
	atEndpoint, err := tunnel.TraverseTunnel(clientOut, wrapped)
	if err != nil {
		return "", nil, fmt.Errorf("eepsite: outbound traversal: %w", err)
	}
	// Inter-tunnel hop: the outbound endpoint forwards to the server's
	// inbound gateway, which wraps the message into the inbound tunnel.
	intoInbound := tunnel.WrapLayers(srv.inbound, atEndpoint)
	atServer, err := tunnel.TraverseTunnel(srv.inbound, intoInbound)
	if err != nil {
		return "", nil, fmt.Errorf("eepsite: inbound traversal: %w", err)
	}
	// Server handles and responds through its outbound tunnel.
	respWrapped, err := srv.HandleRequest(atServer)
	if err != nil {
		return "", nil, err
	}
	respAtEndpoint, err := tunnel.TraverseTunnel(srv.outbound, respWrapped)
	if err != nil {
		return "", nil, fmt.Errorf("eepsite: server outbound traversal: %w", err)
	}
	// Inter-tunnel hop back into the client's inbound tunnel.
	intoClientIn := tunnel.WrapLayers(clientIn, respAtEndpoint)
	atClient, err := tunnel.TraverseTunnel(clientIn, intoClientIn)
	if err != nil {
		return "", nil, fmt.Errorf("eepsite: client inbound traversal: %w", err)
	}
	return ParseResponse(atClient)
}
