package eepsite

import (
	"math/rand/v2"
	"net/netip"
	"testing"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^77)) }

func candidates(n int) []*netdb.RouterInfo {
	out := make([]*netdb.RouterInfo, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, &netdb.RouterInfo{
			Identity:  netdb.HashFromUint64(uint64(i)),
			Published: time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC),
			Caps:      netdb.NewCaps(300, false, true),
			Version:   "0.9.34",
			Addresses: []netdb.RouterAddress{{
				Transport: netdb.TransportNTCP,
				Addr:      netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 1}),
				Port:      12000,
			}},
		})
	}
	return out
}

// blockFraction deterministically blocks the given fraction of peers.
func blockFraction(frac float64) func(netdb.Hash) bool {
	return func(h netdb.Hash) bool {
		// Use the first two bytes of the hash as a uniform draw.
		v := float64(uint16(h[0])<<8|uint16(h[1])) / 65535
		return v < frac
	}
}

func TestFetchUnblockedMatchesBaseline(t *testing.T) {
	c := NewClient(candidates(50), nil)
	site := NewSite(netdb.HashFromUint64(999))
	res, err := c.Fetch(site, testRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeout() {
		t.Fatal("unblocked fetch timed out")
	}
	if res.BuildAttempts != 1 {
		t.Fatalf("attempts = %d, want 1", res.BuildAttempts)
	}
	// Base 3.4s + 4 hops x 250ms = 4.4s.
	want := c.Config.BaseLoadTime + 4*250*time.Millisecond
	if res.LoadTime != want {
		t.Fatalf("load = %v, want %v", res.LoadTime, want)
	}
}

func TestFetchFullyBlockedTimesOut(t *testing.T) {
	c := NewClient(candidates(50), func(netdb.Hash) bool { return true })
	site := NewSite(netdb.HashFromUint64(999))
	res, err := c.Fetch(site, testRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Timeout() {
		t.Fatal("fully blocked fetch succeeded")
	}
	if res.StatusCode != 504 {
		t.Fatalf("status = %d, want 504", res.StatusCode)
	}
	if res.LoadTime != c.Config.PageBudget {
		t.Fatalf("timeout load = %v, want budget %v", res.LoadTime, c.Config.PageBudget)
	}
	// With a 60s budget, 10s build timeout and 3.4s base: at most 6
	// attempts fit.
	if res.BuildAttempts > 6 {
		t.Fatalf("attempts = %d", res.BuildAttempts)
	}
}

func TestFetchNoCandidates(t *testing.T) {
	c := NewClient(nil, nil)
	if _, err := c.Fetch(NewSite(netdb.HashFromUint64(1)), testRNG(3)); err != ErrNoCandidates {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
}

// TestFigure14Shape reproduces the usability collapse: ~0% timeouts
// unblocked; heavy latency and ~40% timeouts at 65%; >60% at 70–90%;
// 95–100% above 90%.
func TestFigure14Shape(t *testing.T) {
	site := NewSite(netdb.HashFromUint64(999))
	cands := candidates(400)
	crawl := func(rate float64, seed uint64) CrawlStats {
		c := NewClient(cands, blockFraction(rate))
		st, err := c.Crawl(site, 200, testRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		st.BlockingRate = rate
		return st
	}

	unblocked := crawl(0, 1)
	if unblocked.TimeoutPct() > 1 {
		t.Fatalf("unblocked timeout%% = %.1f", unblocked.TimeoutPct())
	}
	if unblocked.MeanLoad > 5*time.Second {
		t.Fatalf("unblocked mean load = %v, want ~3.4–4.4s", unblocked.MeanLoad)
	}

	at65 := crawl(0.65, 2)
	if at65.TimeoutPct() < 25 || at65.TimeoutPct() > 65 {
		t.Fatalf("65%% blocking timeout%% = %.1f, want ~40%%", at65.TimeoutPct())
	}
	if at65.MeanLoad < 15*time.Second {
		t.Fatalf("65%% blocking mean load = %v, want > 20s", at65.MeanLoad)
	}

	at80 := crawl(0.80, 3)
	if at80.TimeoutPct() < 55 {
		t.Fatalf("80%% blocking timeout%% = %.1f, want > 60%%", at80.TimeoutPct())
	}
	if at80.MeanLoad < 35*time.Second {
		t.Fatalf("80%% blocking mean load = %v, want > 40s", at80.MeanLoad)
	}

	at95 := crawl(0.95, 4)
	if at95.TimeoutPct() < 90 {
		t.Fatalf("95%% blocking timeout%% = %.1f, want 95–100%%", at95.TimeoutPct())
	}

	// Monotonicity of degradation.
	if !(unblocked.TimeoutPct() <= at65.TimeoutPct() &&
		at65.TimeoutPct() <= at80.TimeoutPct() &&
		at80.TimeoutPct() <= at95.TimeoutPct()) {
		t.Fatal("timeout percentage must increase with blocking rate")
	}
	if !(unblocked.MeanLoad < at65.MeanLoad && at65.MeanLoad < at95.MeanLoad) {
		t.Fatal("mean load must increase with blocking rate")
	}
}

func TestCrawlStatsHelpers(t *testing.T) {
	st := CrawlStats{Fetches: 10, Timeouts: 4}
	if st.TimeoutPct() != 40 {
		t.Fatalf("timeout pct = %v", st.TimeoutPct())
	}
	var empty CrawlStats
	if empty.TimeoutPct() != 0 {
		t.Fatal("empty stats should report 0")
	}
}

func TestDefaultFetchConfigMatchesPaper(t *testing.T) {
	cfg := DefaultFetchConfig()
	if cfg.BaseLoadTime != 3400*time.Millisecond {
		t.Fatalf("base load = %v, paper measured 3.4s", cfg.BaseLoadTime)
	}
	if cfg.PageBudget <= cfg.BuildTimeout {
		t.Fatal("budget must exceed one build timeout")
	}
}
