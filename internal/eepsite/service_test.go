package eepsite

import (
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/tunnel"
)

// buildTunnelPair builds an inbound and outbound tunnel for one party.
func buildTunnelPair(t *testing.T, owner uint64, seed uint64) (in, out *tunnel.Tunnel) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^3))
	pool := tunnel.NewPool(netdb.HashFromUint64(owner), tunnel.DefaultSelector(), &tunnel.Builder{}, 2)
	now := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	if _, err := pool.Maintain(candidates(60), now, rng); err != nil {
		t.Fatal(err)
	}
	in, out = pool.Tunnels()
	return in, out
}

func testServer(t *testing.T) *Server {
	t.Helper()
	site := NewSite(netdb.HashFromUint64(5555))
	srv := NewServer(site)
	srv.SetContent("/page", []byte("hello from the eepsite"))
	sIn, sOut := buildTunnelPair(t, 100, 11)
	srv.AttachTunnels(sIn, sOut)
	return srv
}

func TestRoundTripFigure1(t *testing.T) {
	srv := testServer(t)
	cIn, cOut := buildTunnelPair(t, 200, 22)

	status, body, err := RoundTrip(srv, "/page", cOut, cIn)
	if err != nil {
		t.Fatal(err)
	}
	if status != "200 OK" {
		t.Fatalf("status = %q", status)
	}
	if string(body) != "hello from the eepsite" {
		t.Fatalf("body = %q", body)
	}
}

func TestRoundTripNotFound(t *testing.T) {
	srv := testServer(t)
	cIn, cOut := buildTunnelPair(t, 200, 22)
	status, body, err := RoundTrip(srv, "/missing", cOut, cIn)
	if err != nil {
		t.Fatal(err)
	}
	if status != "404 Not Found" {
		t.Fatalf("status = %q", status)
	}
	if len(body) != 0 {
		t.Fatalf("404 carried a body: %q", body)
	}
}

func TestRoundTripDefaultIndex(t *testing.T) {
	srv := testServer(t)
	cIn, cOut := buildTunnelPair(t, 200, 22)
	status, body, err := RoundTrip(srv, "/", cOut, cIn)
	if err != nil {
		t.Fatal(err)
	}
	if status != "200 OK" || !strings.Contains(string(body), "eepsite up") {
		t.Fatalf("index fetch wrong: %q %q", status, body)
	}
}

func TestLeaseSetPublishesInboundGateway(t *testing.T) {
	srv := testServer(t)
	now := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	ls, err := srv.LeaseSet(now)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Destination != srv.Site.Dest {
		t.Fatal("destination mismatch")
	}
	if len(ls.Leases) != 1 || ls.Leases[0].Gateway != srv.inbound.Gateway() {
		t.Fatal("lease does not point at the inbound gateway")
	}
	// The LeaseSet must survive the wire codec (what floodfills store).
	data, err := ls.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := netdb.DecodeLeaseSet(data); err != nil {
		t.Fatal(err)
	}

	bare := NewServer(NewSite(netdb.HashFromUint64(1)))
	if _, err := bare.LeaseSet(now); err == nil {
		t.Fatal("lease set without inbound tunnel accepted")
	}
}

func TestHandleRequestValidation(t *testing.T) {
	srv := testServer(t)
	if _, err := srv.HandleRequest([]byte("not garlic")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Garlic without a request clove for this destination.
	g := &tunnel.GarlicMessage{Cloves: []tunnel.Clove{
		{Kind: tunnel.DeliverDestination, To: netdb.HashFromUint64(1), Payload: []byte("GET /")},
		{Kind: tunnel.DeliverLocal, Payload: []byte("reply-to x 1")},
	}}
	data, err := g.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.HandleRequest(data); err == nil {
		t.Fatal("request for a different destination accepted")
	}
	// Request without a reply block.
	g = &tunnel.GarlicMessage{Cloves: []tunnel.Clove{
		{Kind: tunnel.DeliverDestination, To: srv.Site.Dest, Payload: []byte("GET /")},
	}}
	data, err = g.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.HandleRequest(data); err == nil {
		t.Fatal("request without reply block accepted")
	}
	// Server without attached tunnels cannot respond.
	bare := NewServer(NewSite(netdb.HashFromUint64(9)))
	if _, err := bare.HandleRequest(data); err == nil {
		t.Fatal("server without tunnels accepted a request")
	}
}

// TestIntermediateHopsSeeCiphertext: no hop along the path sees the
// request plaintext (the layered-encryption property of Section 2.1.1).
func TestIntermediateHopsSeeCiphertext(t *testing.T) {
	srv := testServer(t)
	cIn, cOut := buildTunnelPair(t, 200, 22)
	wrapped, err := BuildRequest(srv.Site.Dest, "/page", cOut, cIn)
	if err != nil {
		t.Fatal(err)
	}
	plain := []byte("GET /page")
	if strings.Contains(string(wrapped), string(plain)) {
		t.Fatal("request visible at the outbound gateway")
	}
	// After the first hop peels its layer, the payload is still opaque.
	afterHop0, err := tunnel.PeelLayer(cOut, 0, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(afterHop0), string(plain)) {
		t.Fatal("request visible after one hop")
	}
}

func TestParseResponseErrors(t *testing.T) {
	if _, _, err := ParseResponse([]byte("junk")); err == nil {
		t.Fatal("junk accepted")
	}
	empty := &tunnel.GarlicMessage{}
	data, err := empty.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ParseResponse(data); err == nil {
		t.Fatal("empty garlic accepted")
	}
}

func TestMustReplyGateway(t *testing.T) {
	in, _ := buildTunnelPair(t, 300, 33)
	block := replyBlock(in)
	if got := mustReplyGateway(block); got != in.Gateway() {
		t.Fatal("gateway extraction failed")
	}
	if !mustReplyGateway([]byte("garbage")).IsZero() {
		t.Fatal("garbage reply block produced a gateway")
	}
	if !mustReplyGateway([]byte("reply-to !!! 5")).IsZero() {
		t.Fatal("invalid hash produced a gateway")
	}
}
