// Package eepsite models eepsite hosting and HTTP-over-I2P page fetches
// under address-based blocking — the paper's usability experiment
// (Section 6.2.3, Figure 14).
//
// The experimental setup mirrors the paper's: the victim sits behind a
// null-routing firewall that silently drops packets to blacklisted peer
// addresses. Reaching an eepsite needs four tunnels (Figure 1), but only
// the victim's *direct* contacts traverse the firewall: the first hop of
// its outbound tunnel and the last hop of its inbound tunnel. A build
// through a blocked contact never answers, costing a full build timeout;
// the client retries with fresh hops until the page budget is exhausted,
// at which point the fetch fails with HTTP 504 — exactly the behaviour the
// paper measured by crawling its own test eepsites.
package eepsite

import (
	"errors"
	"math/rand/v2"
	"net/http"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/tunnel"
)

// Site is one hosted eepsite. The paper used "a simple and small html
// file" to avoid wasting network bandwidth.
type Site struct {
	// Dest is the destination hash (what .i2p names resolve to).
	Dest netdb.Hash
	// PageBytes is the page size.
	PageBytes int
}

// NewSite creates a small test eepsite.
func NewSite(dest netdb.Hash) *Site {
	return &Site{Dest: dest, PageBytes: 4096}
}

// FetchConfig parameterizes the client behaviour.
type FetchConfig struct {
	// BaseLoadTime is the unblocked page load time; the paper measured
	// 3.4 seconds on its test eepsites.
	BaseLoadTime time.Duration
	// BuildTimeout is how long a tunnel build through a null-routed hop
	// takes to give up (the Java router's build timeout is ~10 s).
	BuildTimeout time.Duration
	// PageBudget is the total time before the HTTP proxy returns 504.
	PageBudget time.Duration
	// HopsPerTunnel is the client tunnel length.
	HopsPerTunnel int
	// Selector filters hop candidates.
	Selector tunnel.Selector
}

// DefaultFetchConfig returns the constants of the paper's experiment.
func DefaultFetchConfig() FetchConfig {
	return FetchConfig{
		BaseLoadTime:  3400 * time.Millisecond,
		BuildTimeout:  10 * time.Second,
		PageBudget:    60 * time.Second,
		HopsPerTunnel: tunnel.DefaultHops,
		Selector:      tunnel.DefaultSelector(),
	}
}

// FetchResult is one page-load outcome.
type FetchResult struct {
	// StatusCode is 200 on success, 504 on timeout.
	StatusCode int
	// LoadTime is the observed page load time (capped at PageBudget for
	// timeouts).
	LoadTime time.Duration
	// BuildAttempts counts tunnel-pair construction attempts.
	BuildAttempts int
}

// Timeout reports whether the fetch timed out.
func (r FetchResult) Timeout() bool { return r.StatusCode == http.StatusGatewayTimeout }

// ErrNoCandidates is returned when the client's netDb has too few eligible
// peers to even attempt a tunnel.
var ErrNoCandidates = errors.New("eepsite: not enough tunnel candidates in netDb")

// Client fetches eepsites through tunnels built from its local netDb view.
type Client struct {
	// Candidates is the client's netDb: the RouterInfos it can pick
	// tunnel hops from.
	Candidates []*netdb.RouterInfo
	// Blocked reports whether a direct connection from the client to the
	// peer is null-routed. nil means nothing is blocked.
	Blocked func(h netdb.Hash) bool
	// Config holds timing constants.
	Config FetchConfig
}

// NewClient builds a client over a netDb view.
func NewClient(candidates []*netdb.RouterInfo, blocked func(netdb.Hash) bool) *Client {
	return &Client{Candidates: candidates, Blocked: blocked, Config: DefaultFetchConfig()}
}

// blockedHop reports whether h is unreachable from the client.
func (c *Client) blockedHop(h netdb.Hash) bool {
	return c.Blocked != nil && c.Blocked(h)
}

// Fetch performs one page load of site at the given time. The rng drives
// hop selection.
func (c *Client) Fetch(site *Site, rng *rand.Rand) (FetchResult, error) {
	cfg := c.Config
	elapsed := time.Duration(0)
	attempts := 0
	for {
		attempts++
		// One attempt: build an outbound and an inbound tunnel. The
		// victim's direct contacts are the outbound gateway-side first
		// hop and the inbound delivery hop.
		hops, err := cfg.Selector.SelectHops(c.Candidates, 2*cfg.HopsPerTunnel, nil, rng)
		if err != nil {
			return FetchResult{}, ErrNoCandidates
		}
		out := hops[:cfg.HopsPerTunnel]
		in := hops[cfg.HopsPerTunnel:]
		directOut := out[0]       // first hop of the outbound tunnel
		directIn := in[len(in)-1] // last hop of the inbound tunnel
		ok := !c.blockedHop(directOut) && !c.blockedHop(directIn)
		if ok {
			// Successful build: hop RTTs plus the base transfer time.
			elapsed += time.Duration(2*cfg.HopsPerTunnel) * 250 * time.Millisecond
			load := elapsed + cfg.BaseLoadTime
			if load > cfg.PageBudget {
				return FetchResult{StatusCode: http.StatusGatewayTimeout, LoadTime: cfg.PageBudget, BuildAttempts: attempts}, nil
			}
			return FetchResult{StatusCode: http.StatusOK, LoadTime: load, BuildAttempts: attempts}, nil
		}
		// The build message to a null-routed contact is silently dropped;
		// the client waits out the build timeout and retries.
		elapsed += cfg.BuildTimeout
		if elapsed+cfg.BaseLoadTime > cfg.PageBudget {
			return FetchResult{StatusCode: http.StatusGatewayTimeout, LoadTime: cfg.PageBudget, BuildAttempts: attempts}, nil
		}
	}
}

// CrawlStats aggregates repeated fetches at one blocking level — one x
// position of Figure 14.
type CrawlStats struct {
	BlockingRate float64
	Fetches      int
	Timeouts     int
	// MeanLoad averages load time over all fetches (timeouts count at the
	// page budget, as the paper's crawler experienced).
	MeanLoad time.Duration
}

// TimeoutPct returns the percentage of fetches that returned 504.
func (s CrawlStats) TimeoutPct() float64 {
	if s.Fetches == 0 {
		return 0
	}
	return 100 * float64(s.Timeouts) / float64(s.Fetches)
}

// Crawl fetches the site `fetches` times and aggregates.
func (c *Client) Crawl(site *Site, fetches int, rng *rand.Rand) (CrawlStats, error) {
	st := CrawlStats{Fetches: fetches}
	var total time.Duration
	for i := 0; i < fetches; i++ {
		res, err := c.Fetch(site, rng)
		if err != nil {
			return st, err
		}
		if res.Timeout() {
			st.Timeouts++
		}
		total += res.LoadTime
	}
	if fetches > 0 {
		st.MeanLoad = total / time.Duration(fetches)
	}
	return st, nil
}
