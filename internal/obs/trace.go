package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Tracer emits Chrome trace-event JSON (the format Perfetto and
// chrome://tracing load directly): a bare JSON array of "X" (complete),
// "i" (instant), and "M" (metadata) events with microsecond timestamps.
//
// All methods are nil-safe so instrumentation sites can hold the result
// of ActiveTracer() unconditionally. Emission takes a mutex — tracing is
// an opt-in diagnostic mode, not a hot-path default — but timestamps are
// taken outside the lock (Now/Complete), so contention skews only file
// ordering, never the recorded spans. Per-thread timestamp monotonicity
// is structural: each tid is one worker goroutine emitting sequentially.
type Tracer struct {
	mu      sync.Mutex
	w       io.Writer
	start   time.Time
	wrote   bool
	named   map[int]bool
	closed  bool
	procSet bool
}

// Arg is one integer key/value attached to a trace event.
type Arg struct {
	Key string
	Val int64
}

// NewTracer starts a trace stream on w. Call Close to terminate the JSON
// array; until then the output is still loadable by Perfetto (the format
// tolerates a missing close bracket) so a crashed run keeps its trace.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, start: time.Now(), named: make(map[int]bool)}
}

// Now returns the tracer-relative timestamp for a span start. Zero on a
// nil tracer, so the disabled pattern is:
//
//	tr := obs.ActiveTracer()
//	t0 := tr.Now()        // no-op when nil
//	... work ...
//	tr.Complete(tid, "row", t0, args...)
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Complete emits an "X" (complete) event for a span that started at the
// Now() value start and ends now.
func (t *Tracer) Complete(tid int, name string, start time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	end := time.Since(t.start)
	if end < start {
		end = start
	}
	t.emit(tid, name, "X", start, end-start, args)
}

// Instant emits an "i" (instant) event at the current time.
func (t *Tracer) Instant(tid int, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(tid, name, "i", time.Since(t.start), -1, args)
}

// usec renders a duration as float microseconds, the unit trace-event
// timestamps use.
func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func (t *Tracer) emit(tid int, name, phase string, ts, dur time.Duration, args []Arg) {
	var b strings.Builder
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	if !t.procSet {
		t.procSet = true
		t.writeEvent(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"i2pstudy"}}`)
	}
	if !t.named[tid] {
		t.named[tid] = true
		t.writeEvent(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"worker-%d"}}`, tid, tid))
	}
	fmt.Fprintf(&b, `{"name":%q,"ph":%q,"pid":1,"tid":%d,"ts":%.3f`, name, phase, tid, usec(ts))
	if dur >= 0 {
		fmt.Fprintf(&b, `,"dur":%.3f`, usec(dur))
	}
	if phase == "i" {
		// Thread-scoped instant: rendered as a tick on the emitting track.
		b.WriteString(`,"s":"t"`)
	}
	if len(args) > 0 {
		b.WriteString(`,"args":{`)
		for i, a := range args {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `%q:%d`, a.Key, a.Val)
		}
		b.WriteByte('}')
	}
	b.WriteByte('}')
	t.writeEvent(b.String())
}

// writeEvent appends one pre-rendered event object to the JSON array.
// Callers hold t.mu.
func (t *Tracer) writeEvent(ev string) {
	if t.wrote {
		io.WriteString(t.w, ",\n")
	} else {
		io.WriteString(t.w, "[\n")
		t.wrote = true
	}
	io.WriteString(t.w, ev)
}

// Close terminates the JSON array. Further events are dropped. It does
// not close the underlying writer.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	var err error
	if t.wrote {
		_, err = io.WriteString(t.w, "\n]\n")
	} else {
		_, err = io.WriteString(t.w, "[]\n")
	}
	return err
}
