package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Family creation takes a mutex (it happens once per
// family per process); series lookup on an already-seen label combination
// and every Inc/Add/Set/Observe are lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one named metric family: fixed label names (possibly none),
// one series per label-value combination.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string

	// series maps the "\x1f"-joined label values to the *Counter /
	// *Gauge / *Histogram for that combination. The separator cannot
	// appear in reasonable label values, and even a pathological value
	// containing it only merges two series — it cannot corrupt state.
	series sync.Map
}

// seriesKeySep joins label values into a series key. ASCII unit
// separator: never produced by the instrumentation sites here.
const seriesKeySep = "\x1f"

// getFamily returns the named family, creating it if absent. Creation is
// idempotent; a kind or label-arity mismatch against an existing family
// panics — it is a programming error at an instrumentation site, not a
// runtime condition.
func (r *Registry) getFamily(name, help string, kind metricKind, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: family %q re-registered as %s/%d labels (was %s/%d)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: append([]string(nil), labels...)}
	r.families[name] = f
	return f
}

// Counter is a monotonically increasing uint64. All methods are nil-safe:
// instrumentation sites hold a possibly-nil *Counter and pay only the nil
// check when observability is disabled.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current value (0 on nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram of float64 observations. Buckets
// are upper bounds (exclusive of +Inf, which is implicit); counts are
// cumulative only at render time — internally each bucket counts its own
// range so Observe is a single atomic increment.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	total  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// CounterVec is a counter family with labels; With resolves one series.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family with labels; With resolves one series.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family with labels; With resolves one series.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// Counter registers (or finds) an unlabeled counter family and returns
// its single series. Nil-safe on the registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, kindCounter, nil)
	return f.counterSeries("")
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.getFamily(name, help, kindCounter, labels)}
}

// Gauge registers (or finds) an unlabeled gauge family and returns its
// single series.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, kindGauge, nil)
	return f.gaugeSeries("")
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.getFamily(name, help, kindGauge, labels)}
}

// Histogram registers (or finds) an unlabeled histogram family with the
// given bucket upper bounds (must be sorted ascending) and returns its
// single series.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, kindHistogram, nil)
	v, _ := f.series.Load("")
	if v != nil {
		return v.(*Histogram)
	}
	h := newHistogram(bounds)
	actual, _ := f.series.LoadOrStore("", h)
	return actual.(*Histogram)
}

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.getFamily(name, help, kindHistogram, labels), bounds: bounds}
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

func (f *family) counterSeries(key string) *Counter {
	if v, ok := f.series.Load(key); ok {
		return v.(*Counter)
	}
	v, _ := f.series.LoadOrStore(key, new(Counter))
	return v.(*Counter)
}

func (f *family) gaugeSeries(key string) *Gauge {
	if v, ok := f.series.Load(key); ok {
		return v.(*Gauge)
	}
	v, _ := f.series.LoadOrStore(key, new(Gauge))
	return v.(*Gauge)
}

// With resolves the series for the given label values (one per declared
// label name, in declaration order). Nil-safe.
func (cv *CounterVec) With(values ...string) *Counter {
	if cv == nil {
		return nil
	}
	cv.f.checkArity(len(values))
	return cv.f.counterSeries(strings.Join(values, seriesKeySep))
}

// With resolves the series for the given label values. Nil-safe.
func (gv *GaugeVec) With(values ...string) *Gauge {
	if gv == nil {
		return nil
	}
	gv.f.checkArity(len(values))
	return gv.f.gaugeSeries(strings.Join(values, seriesKeySep))
}

// With resolves the series for the given label values. Nil-safe.
func (hv *HistogramVec) With(values ...string) *Histogram {
	if hv == nil {
		return nil
	}
	hv.f.checkArity(len(values))
	key := strings.Join(values, seriesKeySep)
	if v, ok := hv.f.series.Load(key); ok {
		return v.(*Histogram)
	}
	v, _ := hv.f.series.LoadOrStore(key, newHistogram(hv.bounds))
	return v.(*Histogram)
}

func (f *family) checkArity(n int) {
	if n != len(f.labels) {
		panic(fmt.Sprintf("obs: family %q called with %d label values, declared %d", f.name, n, len(f.labels)))
	}
}

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, double-quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// labelString renders {name="v",...} for the series key, or "" for the
// unlabeled single series.
func (f *family) labelString(key string) string {
	if len(f.labels) == 0 {
		return ""
	}
	values := strings.Split(key, seriesKeySep)
	var b strings.Builder
	b.WriteByte('{')
	for i, ln := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(ln)
		b.WriteString(`="`)
		if i < len(values) {
			b.WriteString(escapeLabel(values[i]))
		}
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// Render writes every family in the Prometheus text exposition format:
// families sorted by name, series sorted by label values, HELP and TYPE
// lines per family, cumulative histogram buckets with an explicit +Inf.
func (r *Registry) Render(w *strings.Builder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		keys := make([]string, 0, 4)
		f.series.Range(func(k, _ any) bool {
			keys = append(keys, k.(string))
			return true
		})
		if len(keys) == 0 {
			continue
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, k := range keys {
			v, _ := f.series.Load(k)
			ls := f.labelString(k)
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, ls, v.(*Counter).Load())
			case kindGauge:
				fmt.Fprintf(w, "%s%s %d\n", f.name, ls, v.(*Gauge).Load())
			case kindHistogram:
				renderHistogram(w, f, k, v.(*Histogram))
			}
		}
	}
}

// RenderText returns Render's output as a string.
func (r *Registry) RenderText() string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

func renderHistogram(w *strings.Builder, f *family, key string, h *Histogram) {
	// Bucket lines carry the series labels plus le; splice le in before
	// the closing brace (or open a fresh brace set for unlabeled series).
	base := f.labelString(key)
	bucketLabels := func(le string) string {
		if base == "" {
			return "{le=\"" + le + "\"}"
		}
		return base[:len(base)-1] + ",le=\"" + le + "\"}"
	}
	var cum uint64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bucketLabels(fmt.Sprintf("%g", ub)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bucketLabels("+Inf"), h.Count())
	fmt.Fprintf(w, "%s_sum%s %g\n", f.name, base, h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, base, h.Count())
}
