package obs

import "os"

// TraceToFile creates path, enables a tracer writing to it and returns
// a close function that finishes the JSON array, disables tracing and
// closes the file — the -trace flag lifecycle the command-line tools
// share. An empty path is a no-op with a nil-safe close.
func TraceToFile(path string) (closeTrace func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	tr := NewTracer(f)
	EnableTrace(tr)
	return func() error {
		EnableTrace(nil)
		if err := tr.Close(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}
