package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("jobs_total", "Jobs processed.", "kind")
	c.With("fast").Add(3)
	c.With("slow").Inc()
	g := r.Gauge("pool_size", "Live pool entries.")
	g.Set(7)

	got := r.RenderText()
	for _, want := range []string{
		"# HELP jobs_total Jobs processed.",
		"# TYPE jobs_total counter",
		`jobs_total{kind="fast"} 3`,
		`jobs_total{kind="slow"} 1`,
		"# TYPE pool_size gauge",
		"pool_size 7",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("render missing %q:\n%s", want, got)
		}
	}
	// Families render sorted by name.
	if strings.Index(got, "jobs_total") > strings.Index(got, "pool_size") {
		t.Errorf("families not sorted:\n%s", got)
	}
}

func TestFamilyIdempotentAndSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.CounterVec("x_total", "help", "l")
	b := r.CounterVec("x_total", "help", "l")
	if a.With("v") != b.With("v") {
		t.Error("same family+labels resolved to distinct series")
	}
	if r.Counter("plain_total", "h") != r.Counter("plain_total", "h") {
		t.Error("unlabeled counter not a singleton")
	}
}

func TestFamilyKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "h")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m_total", "h")
}

func TestHistogramCumulativeRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	got := r.RenderText()
	for _, want := range []string{
		`lat_bucket{le="0.1"} 1`,
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="10"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		"lat_sum 56.05",
		"lat_count 5",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("render missing %q:\n%s", want, got)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	// Prometheus buckets are le (inclusive upper bound): an observation
	// exactly on a boundary lands in that boundary's bucket.
	r := NewRegistry()
	h := r.Histogram("b", "h", []float64{1, 2})
	h.Observe(1)
	got := r.RenderText()
	if !strings.Contains(got, `b_bucket{le="1"} 1`) {
		t.Errorf("boundary observation not in le=1 bucket:\n%s", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "h", "v").With("a\\b\"c\nd").Inc()
	got := r.RenderText()
	want := `esc_total{v="a\\b\"c\nd"} 1`
	if !strings.Contains(got, want) {
		t.Errorf("escaped render missing %q:\n%s", want, got)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var gv *GaugeVec
	var hv *HistogramVec
	var r *Registry
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if cv.With("x") != nil || gv.With("x") != nil || hv.With("x") != nil {
		t.Error("nil vec With returned non-nil")
	}
	if r.Counter("a_total", "h") != nil || r.RenderText() != "" {
		t.Error("nil registry not inert")
	}
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil loads not zero")
	}
}

func TestConcurrentCounts(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("conc_total", "h", "w")
	h := r.Histogram("conc_lat", "h", []float64{1, 10})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := cv.With("shared")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i % 20))
			}
		}(w)
	}
	wg.Wait()
	if got := cv.With("shared").Load(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

func TestEnableAndHooks(t *testing.T) {
	prev := Active()
	prevTr := ActiveTracer()
	t.Cleanup(func() { Enable(prev); EnableTrace(prevTr) })

	var hookRuns int
	OnEnable(func(r *Registry) {
		hookRuns++
		r.Counter("hooked_total", "created eagerly")
	})
	before := hookRuns

	r := NewRegistry()
	Enable(r)
	if Active() != r {
		t.Fatal("Active() != enabled registry")
	}
	if hookRuns != before+1 {
		t.Errorf("hook ran %d times on Enable, want 1", hookRuns-before)
	}
	if !strings.Contains(r.RenderText(), "hooked_total 0") {
		t.Errorf("eager family absent from render:\n%s", r.RenderText())
	}
	Enable(nil)
	if Active() != nil {
		t.Error("Enable(nil) did not disable")
	}
}
