package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur"`
	Args map[string]any `json:"args"`
}

// arg returns an integer arg value (metadata events carry string args,
// numeric ones decode as float64).
func (e *traceEvent) arg(key string) int64 {
	v, ok := e.Args[key].(float64)
	if !ok {
		return -1
	}
	return int64(v)
}

func decodeTrace(t *testing.T, raw string) []traceEvent {
	t.Helper()
	var evs []traceEvent
	if err := json.Unmarshal([]byte(raw), &evs); err != nil {
		t.Fatalf("trace output is not a JSON array: %v\n%s", err, raw)
	}
	return evs
}

func TestTracerEmitsWellFormedEvents(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(&buf)
	t0 := tr.Now()
	time.Sleep(time.Millisecond)
	tr.Complete(2, "row", t0, Arg{Key: "row", Val: 7})
	tr.Instant(2, "steal", Arg{Key: "victim", Val: 1})
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	evs := decodeTrace(t, buf.String())
	var gotComplete, gotInstant, gotThreadMeta bool
	for _, ev := range evs {
		if ev.Pid != 1 {
			t.Errorf("event %q pid = %d, want 1", ev.Name, ev.Pid)
		}
		switch {
		case ev.Ph == "X" && ev.Name == "row":
			gotComplete = true
			if ev.Tid != 2 || ev.Dur == nil || *ev.Dur < 900 {
				t.Errorf("complete event malformed: %+v", ev)
			}
			if ev.arg("row") != 7 {
				t.Errorf("complete args = %v, want row=7", ev.Args)
			}
		case ev.Ph == "i" && ev.Name == "steal":
			gotInstant = true
			if ev.arg("victim") != 1 {
				t.Errorf("instant args = %v", ev.Args)
			}
		case ev.Ph == "M" && ev.Name == "thread_name" && ev.Tid == 2:
			gotThreadMeta = true
		}
	}
	if !gotComplete || !gotInstant || !gotThreadMeta {
		t.Errorf("missing events (complete=%v instant=%v meta=%v):\n%s",
			gotComplete, gotInstant, gotThreadMeta, buf.String())
	}
}

func TestTracerMonotonePerTid(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(&buf)
	for i := 0; i < 50; i++ {
		t0 := tr.Now()
		tr.Complete(i%3, "span", t0)
	}
	tr.Close()
	last := map[int]float64{}
	for _, ev := range decodeTrace(t, buf.String()) {
		if ev.Ph == "M" {
			continue
		}
		if ev.Ts < last[ev.Tid] {
			t.Fatalf("tid %d ts went backwards: %f < %f", ev.Tid, ev.Ts, last[ev.Tid])
		}
		last[ev.Tid] = ev.Ts
	}
}

func TestTracerEmptyAndAfterClose(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(&buf)
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(decodeTrace(t, buf.String())) != 0 {
		t.Errorf("empty tracer rendered events: %s", buf.String())
	}
	tr.Instant(0, "late")
	if err := tr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if strings.Count(buf.String(), "]") != 1 {
		t.Errorf("post-close emission corrupted output: %s", buf.String())
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	t0 := tr.Now()
	if t0 != 0 {
		t.Errorf("nil Now = %v, want 0", t0)
	}
	tr.Complete(0, "x", t0)
	tr.Instant(0, "y")
	if err := tr.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}
