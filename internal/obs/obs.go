// Package obs is the unified observability layer shared by the batch
// engines and the resident daemon: a zero-dependency, lock-free-on-hot-path
// metrics registry (counters, gauges, one-shape histograms rendered in the
// Prometheus text exposition format) plus a structured tracer emitting
// Chrome trace-event JSON that Perfetto loads directly.
//
// The layer is wired through two process-global switches:
//
//   - Enable(reg) activates counting. Instrumented packages resolve their
//     instrument handles against the active registry lazily and cache them
//     per registry, so the disabled hot-path cost is one atomic load and a
//     nil check (Active() == nil), and enabling never requires plumbing a
//     registry through engine constructors.
//   - EnableTrace(tr) activates span emission the same way.
//
// Hard contract: observability is output-invariant. Counters and spans
// record scheduling facts (tasks run, steals, cache hits, span timings) —
// they must never influence a result. The worker-determinism goldens run
// with both switches on (internal/measure/enginetest) to enforce this.
package obs

import (
	"sync"
	"sync/atomic"
)

// active is the process-global registry instrumentation points count into;
// nil (the default) disables counting.
var active atomic.Pointer[Registry]

// activeTracer is the process-global span sink; nil disables tracing.
var activeTracer atomic.Pointer[Tracer]

// onEnable holds hooks run whenever a registry is enabled, so instrumented
// packages can materialize their metric families eagerly — a scrape right
// after Enable sees every family at zero instead of only the ones already
// exercised.
var (
	hooksMu sync.Mutex
	hooks   []func(*Registry)
)

// Enable installs r as the process-global registry (nil disables
// counting) and runs the registered OnEnable hooks against it. Safe for
// concurrent use; instrumentation in flight keeps counting into whichever
// registry it resolved, so swapping mid-run loses no invariant — only
// where new counts land.
func Enable(r *Registry) {
	active.Store(r)
	if r == nil {
		return
	}
	hooksMu.Lock()
	hs := append([]func(*Registry){}, hooks...)
	hooksMu.Unlock()
	for _, h := range hs {
		h(r)
	}
}

// Active returns the enabled registry, nil when counting is disabled.
func Active() *Registry { return active.Load() }

// OnEnable registers a hook run against every subsequently enabled
// registry (and immediately against the currently active one, if any).
// Instrumented packages call it from init to pre-create their families.
func OnEnable(fn func(*Registry)) {
	hooksMu.Lock()
	hooks = append(hooks, fn)
	hooksMu.Unlock()
	if r := Active(); r != nil {
		fn(r)
	}
}

// EnableTrace installs t as the process-global tracer (nil disables span
// emission).
func EnableTrace(t *Tracer) { activeTracer.Store(t) }

// ActiveTracer returns the enabled tracer, nil when tracing is disabled.
func ActiveTracer() *Tracer { return activeTracer.Load() }
