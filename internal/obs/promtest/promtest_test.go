package promtest

import (
	"strings"
	"testing"
)

const goodText = `# HELP jobs_total Jobs processed.
# TYPE jobs_total counter
jobs_total{kind="fast"} 3
jobs_total{kind="slow"} 1
# HELP pool_size Live pool entries.
# TYPE pool_size gauge
pool_size{dist="https"} 7
# HELP lat Latency.
# TYPE lat histogram
lat_bucket{le="0.1"} 1
lat_bucket{le="1"} 3
lat_bucket{le="+Inf"} 5
lat_sum 56.05
lat_count 5
`

func TestParseGroupsFamilies(t *testing.T) {
	fams, err := Parse(goodText)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3", len(fams))
	}
	jt := Find(fams, "jobs_total")
	if jt == nil || jt.Type != "counter" || len(jt.Samples) != 2 {
		t.Fatalf("jobs_total mis-parsed: %+v", jt)
	}
	if v, ok := jt.Samples[0].Get("kind"); !ok || v != "fast" {
		t.Errorf("first sample label = %q, %v", v, ok)
	}
	lat := Find(fams, "lat")
	if lat == nil || len(lat.Samples) != 5 {
		t.Fatalf("histogram components not attached to base family: %+v", lat)
	}
}

func TestParseUnescapesLabels(t *testing.T) {
	text := "# HELP e h\n# TYPE e gauge\ne{v=\"a\\\\b\\\"c\\nd\"} 1\n"
	fams, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	v, _ := fams[0].Samples[0].Get("v")
	if v != "a\\b\"c\nd" {
		t.Errorf("unescaped value = %q", v)
	}
}

func TestParseRejectsUndeclaredSample(t *testing.T) {
	if _, err := Parse("loose_metric 1\n"); err == nil {
		t.Error("sample without TYPE accepted")
	}
}

func TestLintCleanOnGoodText(t *testing.T) {
	if errs := Lint(goodText); len(errs) != 0 {
		t.Errorf("Lint flagged clean text: %v", errs)
	}
}

func TestLintCatches(t *testing.T) {
	cases := []struct {
		name, text, wantSub string
	}{
		{
			"missing help",
			"# TYPE x_total counter\nx_total 1\n",
			"missing HELP",
		},
		{
			"counter name",
			"# HELP x h\n# TYPE x counter\nx 1\n",
			"not named *_total",
		},
		{
			"duplicate series",
			"# HELP x_total h\n# TYPE x_total counter\nx_total{a=\"1\"} 1\nx_total{a=\"1\"} 2\n",
			"duplicate series",
		},
		{
			"non-cumulative buckets",
			"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not cumulative",
		},
		{
			"missing inf",
			"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
			"missing +Inf",
		},
		{
			"inf vs count",
			"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
			"!= _count",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := Lint(tc.text)
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.wantSub) {
					return
				}
			}
			t.Errorf("Lint(%q) = %v, want error containing %q", tc.text, errs, tc.wantSub)
		})
	}
}

func TestLintLabeledHistogramSeries(t *testing.T) {
	text := `# HELP h h
# TYPE h histogram
h_bucket{dist="a",le="1"} 2
h_bucket{dist="a",le="+Inf"} 3
h_sum{dist="a"} 1.5
h_count{dist="a"} 3
h_bucket{dist="b",le="1"} 0
h_bucket{dist="b",le="+Inf"} 1
h_sum{dist="b"} 9
h_count{dist="b"} 1
`
	if errs := Lint(text); len(errs) != 0 {
		t.Errorf("Lint flagged clean labeled histogram: %v", errs)
	}
}
