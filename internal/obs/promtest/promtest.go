// Package promtest is a minimal Prometheus text-exposition parser used by
// tests to validate /metrics output structurally instead of by string
// matching: every family must carry HELP and TYPE lines, histogram
// buckets must be cumulative and agree with _count, and label values must
// be legally escaped. It is a test dependency only — the serving path
// never imports it.
package promtest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Sample is one rendered series line.
type Sample struct {
	Name   string // full line name, e.g. "foo_bucket"
	Labels []Label
	Value  float64
}

// Label is one name="value" pair with the value unescaped.
type Label struct {
	Name  string
	Value string
}

// Get returns the value of the named label and whether it was present.
func (s *Sample) Get(name string) (string, bool) {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

// Family is one metric family: the base name (without _bucket/_sum/_count
// suffixes for histograms), its HELP and TYPE, and all its samples.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Parse reads a text exposition and groups samples into families. A
// sample line whose name (or histogram-suffix-stripped name) was never
// declared by a TYPE line is an error.
func Parse(text string) ([]*Family, error) {
	byName := make(map[string]*Family)
	var order []string
	lookup := func(name string) *Family {
		if f, ok := byName[name]; ok {
			return f
		}
		return nil
	}
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("line %d: HELP with no metric name", lineNo)
			}
			f := lookup(name)
			if f == nil {
				f = &Family{Name: name}
				byName[name] = f
				order = append(order, name)
			}
			f.Help = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, typ := parts[0], parts[1]
			f := lookup(name)
			if f == nil {
				f = &Family{Name: name}
				byName[name] = f
				order = append(order, name)
			}
			if f.Type != "" && f.Type != typ {
				return nil, fmt.Errorf("line %d: family %q re-typed %q -> %q", lineNo, name, f.Type, typ)
			}
			f.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := lookup(s.Name)
		if fam == nil {
			// Histogram component lines attach to the base family.
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base, ok := strings.CutSuffix(s.Name, suf); ok {
					if f := lookup(base); f != nil && f.Type == "histogram" {
						fam = f
						break
					}
				}
			}
		}
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q has no declaring TYPE line", lineNo, s.Name)
		}
		fam.Samples = append(fam.Samples, *s)
	}
	out := make([]*Family, 0, len(order))
	for _, n := range order {
		out = append(out, byName[n])
	}
	return out, nil
}

// parseSample parses `name{a="b",...} value` (labels optional).
func parseSample(line string) (*Sample, error) {
	s := &Sample{}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return nil, fmt.Errorf("malformed sample line %q", line)
	}
	s.Name = line[:i]
	if s.Name == "" {
		return nil, fmt.Errorf("empty metric name in %q", line)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end := -1
		inQuote := false
		escaped := false
		for j := 1; j < len(rest); j++ {
			c := rest[j]
			if escaped {
				escaped = false
				continue
			}
			switch {
			case inQuote && c == '\\':
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case !inQuote && c == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return nil, fmt.Errorf("%v in %q", err, line)
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	valStr := strings.TrimSpace(rest)
	if valStr == "" {
		return nil, fmt.Errorf("missing value in %q", line)
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return nil, fmt.Errorf("bad value %q: %v", valStr, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses the inside of a {...} label set, unescaping values.
func parseLabels(body string) ([]Label, error) {
	var out []Label
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair missing '='")
		}
		name := body[i : i+eq]
		if name == "" || !validLabelName(name) {
			return nil, fmt.Errorf("bad label name %q", name)
		}
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", name)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(body) {
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					return nil, fmt.Errorf("dangling escape in label %q", name)
				}
				switch body[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("invalid escape \\%c in label %q", body[i+1], name)
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			if c == '\n' {
				return nil, fmt.Errorf("raw newline in label %q", name)
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value for label %q", name)
		}
		out = append(out, Label{Name: name, Value: val.String()})
		if i < len(body) {
			if body[i] != ',' {
				return nil, fmt.Errorf("expected ',' after label %q", name)
			}
			i++
		}
	}
	return out, nil
}

func validLabelName(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}

// Lint parses text and checks structural conformance for every family:
// HELP and TYPE present, a known type, counters named *_total, no
// duplicate series, and for histograms cumulative buckets whose +Inf
// equals _count per series. Returns all problems found.
func Lint(text string) []error {
	fams, err := Parse(text)
	if err != nil {
		return []error{err}
	}
	var errs []error
	for _, f := range fams {
		if f.Help == "" {
			errs = append(errs, fmt.Errorf("family %q: missing HELP", f.Name))
		}
		switch f.Type {
		case "counter":
			if !strings.HasSuffix(f.Name, "_total") {
				errs = append(errs, fmt.Errorf("family %q: counter not named *_total", f.Name))
			}
		case "gauge", "histogram", "summary", "untyped":
		case "":
			errs = append(errs, fmt.Errorf("family %q: missing TYPE", f.Name))
		default:
			errs = append(errs, fmt.Errorf("family %q: unknown TYPE %q", f.Name, f.Type))
		}
		if f.Type == "histogram" {
			errs = append(errs, lintHistogram(f)...)
		} else {
			seen := make(map[string]bool)
			for _, s := range f.Samples {
				k := seriesKey(&s)
				if seen[k] {
					errs = append(errs, fmt.Errorf("family %q: duplicate series %s", f.Name, k))
				}
				seen[k] = true
				if f.Type == "counter" && s.Value < 0 {
					errs = append(errs, fmt.Errorf("family %q: negative counter %s", f.Name, k))
				}
			}
		}
	}
	return errs
}

// lintHistogram checks each series of a histogram family: buckets
// non-decreasing in both le and count, an explicit +Inf bucket equal to
// the series' _count, and a _sum line present.
func lintHistogram(f *Family) []error {
	type hseries struct {
		buckets  []Sample
		sum      *Sample
		count    *Sample
		haveInfo bool
	}
	series := make(map[string]*hseries)
	var order []string
	get := func(k string) *hseries {
		if s, ok := series[k]; ok {
			return s
		}
		s := &hseries{}
		series[k] = s
		order = append(order, k)
		return s
	}
	for i := range f.Samples {
		s := f.Samples[i]
		// The le label distinguishes buckets within a series; strip it
		// for the series identity.
		var rest []Label
		for _, l := range s.Labels {
			if l.Name != "le" {
				rest = append(rest, l)
			}
		}
		key := labelsKey(rest)
		hs := get(key)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			hs.buckets = append(hs.buckets, s)
		case strings.HasSuffix(s.Name, "_sum"):
			hs.sum = &f.Samples[i]
		case strings.HasSuffix(s.Name, "_count"):
			hs.count = &f.Samples[i]
		default:
			return []error{fmt.Errorf("family %q: unexpected histogram sample %q", f.Name, s.Name)}
		}
	}
	var errs []error
	for _, key := range order {
		hs := series[key]
		id := f.Name + key
		if len(hs.buckets) == 0 {
			errs = append(errs, fmt.Errorf("histogram %s: no buckets", id))
			continue
		}
		if hs.sum == nil {
			errs = append(errs, fmt.Errorf("histogram %s: missing _sum", id))
		}
		if hs.count == nil {
			errs = append(errs, fmt.Errorf("histogram %s: missing _count", id))
			continue
		}
		var prevLe, prevCount float64
		var haveInf bool
		for i, b := range hs.buckets {
			leStr, ok := b.Get("le")
			if !ok {
				errs = append(errs, fmt.Errorf("histogram %s: bucket without le label", id))
				continue
			}
			var le float64
			if leStr == "+Inf" {
				le = inf()
				haveInf = true
			} else {
				v, err := strconv.ParseFloat(leStr, 64)
				if err != nil {
					errs = append(errs, fmt.Errorf("histogram %s: bad le %q", id, leStr))
					continue
				}
				le = v
			}
			if i > 0 {
				if le <= prevLe {
					errs = append(errs, fmt.Errorf("histogram %s: le not increasing at %q", id, leStr))
				}
				if b.Value < prevCount {
					errs = append(errs, fmt.Errorf("histogram %s: bucket counts not cumulative at le=%q (%g < %g)", id, leStr, b.Value, prevCount))
				}
			}
			prevLe, prevCount = le, b.Value
		}
		if !haveInf {
			errs = append(errs, fmt.Errorf("histogram %s: missing +Inf bucket", id))
		} else if hs.buckets[len(hs.buckets)-1].Value != hs.count.Value {
			errs = append(errs, fmt.Errorf("histogram %s: +Inf bucket %g != _count %g", id, hs.buckets[len(hs.buckets)-1].Value, hs.count.Value))
		}
	}
	return errs
}

func inf() float64 { v, _ := strconv.ParseFloat("+Inf", 64); return v }

func seriesKey(s *Sample) string { return s.Name + labelsKey(s.Labels) }

func labelsKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + "=" + strconv.Quote(l.Value)
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

// Find returns the family with the given name, or nil.
func Find(fams []*Family, name string) *Family {
	for _, f := range fams {
		if f.Name == name {
			return f
		}
	}
	return nil
}
