package core

import (
	"context"
	"fmt"
	"strings"

	"github.com/i2pstudy/i2pstudy/internal/censor"
	"github.com/i2pstudy/i2pstudy/internal/distrib"
	"github.com/i2pstudy/i2pstudy/internal/stats"
)

// The trust-distribution experiment runs the Salmon-style trust-graph
// distributor (distrib.TrustSocial + distrib.TrustSweep) against the
// censor lineup: an invited population whose bridges flow along
// invitation edges, with per-level request rate limits and the
// suspicion/banning loop. It extends the distribution category's
// open-channel arms races with the social channel the Section 7.1
// outlook points at: enumeration speed bounded by graph topology
// instead of identity budgets.

func init() {
	register(Experiment{
		ID:       "trust-distribution",
		Category: CategoryDistribution,
		Title:    "Trust-graph (Salmon-style) bridge distribution vs insider enumeration",
		Paper:    "Section 7.1 outlook: social distribution resists enumeration — crawlers mint nothing, only insiders leak, and banning quarantines their branch",
		Run:      runTrustDistribution,
	})
}

func runTrustDistribution(ctx context.Context, s *Study) (*Result, error) {
	// Two frontends on one backend: the default banning rule and a
	// strict one-strike variant, so the table shows the
	// collateral-vs-containment trade the banning threshold buys.
	users := 150 + s.Net.Days() // deterministic in the study, ~200 at defaults
	dists := []*distrib.TrustSocial{
		distrib.NewTrustSocial(distrib.TrustSocialConfig{
			Name:  "trust-social",
			Graph: distrib.TrustGraphConfig{Users: users, Seed: s.Opts.Seed + 1},
		}),
		distrib.NewTrustSocial(distrib.TrustSocialConfig{
			Name:         "trust-strict",
			Graph:        distrib.TrustGraphConfig{Users: users, Seed: s.Opts.Seed + 2},
			BanThreshold: 1,
		}),
	}
	sw, err := distrib.NewTrustSweep(s.Net, distrib.TrustSweepConfig{
		Strategy:     censor.BridgeCombined,
		Distributors: dists,
		Enumerators: []distrib.Enumerator{
			{Kind: distrib.Crawler, Budget: 200},
			{Kind: distrib.Insider, InsiderFrac: 0.1},
		},
		Day:          s.distribDay(),
		HorizonDays:  distribHorizon,
		MaxResources: 160,
		SeedBase:     s.Opts.Seed + 1400,
		Workers:      s.Workers(),
	})
	if err != nil {
		return nil, err
	}
	results, err := sw.Run(ctx)
	if err != nil {
		return nil, err
	}

	fig := &stats.Figure{
		Title:  "Trust-graph distribution: bootstrap and enumeration under a 10% insider",
		XLabel: "days after distribution",
		YLabel: "fraction of population / partition (%)",
	}
	type rowKey [2]string
	series := make(map[rowKey][]distrib.TrustCellResult)
	for _, r := range results {
		series[rowKey{r.Distributor, r.Enumerator}] = append(series[rowKey{r.Distributor, r.Enumerator}], r)
	}
	for _, d := range dists {
		sr := fig.AddSeries(d.Name() + " bootstrap")
		se := fig.AddSeries(d.Name() + " enumerated")
		for _, r := range series[rowKey{d.Name(), "insider"}] {
			sr.Append(float64(r.Day), 100*r.Bootstrap)
			se.Append(float64(r.Day), 100*r.Enumerated)
		}
	}

	rows := [][]string{{"distributor", "enumerator", "users", "bootstrap", "enumerated", "banned", "mean trust", "leaks"}}
	metrics := map[string]float64{}
	for _, d := range dists {
		for _, e := range []string{"crawler", "insider"} {
			sr := series[rowKey{d.Name(), e}]
			final := sr[len(sr)-1]
			rows = append(rows, []string{
				d.Name(), e, fmt.Sprint(final.Users),
				fmt.Sprintf("%.2f", final.Bootstrap),
				fmt.Sprintf("%.2f", final.Enumerated),
				fmt.Sprintf("%.2f", final.Banned),
				fmt.Sprintf("%.2f", final.MeanTrust),
				fmt.Sprint(final.Leaks),
			})
			key := d.Name() + "_" + e
			metrics[key+"_bootstrap_final"] = final.Bootstrap
			metrics[key+"_enumerated_final"] = final.Enumerated
			metrics[key+"_banned_final"] = final.Banned
		}
	}
	var sb strings.Builder
	sb.WriteString("Trust-graph (Salmon-style) distribution, 10-day horizon\n")
	sb.WriteString(stats.RenderTable(rows))
	return &Result{
		ID: "trust-distribution", Title: "Trust-graph bridge distribution",
		Text: sb.String(), Figure: fig, Metrics: metrics,
	}, nil
}
