package core

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// runAllIDs is a cheap, representative experiment subset: two engine-backed
// observation sweeps, one dataset-backed figure, and one pure model.
var runAllIDs = []string{"figure-02", "figure-04", "figure-09", "port-blocking"}

// TestRunAllMatchesSequential proves the parallel experiment runner
// returns exactly what sequential RunExperiment calls produce, in input
// order.
func TestRunAllMatchesSequential(t *testing.T) {
	s := study(t)
	results, err := s.RunAll(context.Background(), runAllIDs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(runAllIDs) {
		t.Fatalf("RunAll returned %d results, want %d", len(results), len(runAllIDs))
	}
	for i, id := range runAllIDs {
		seq, err := s.RunExperiment(id)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].ID != id {
			t.Errorf("results[%d].ID = %q, want %q (order must match input)", i, results[i].ID, id)
		}
		if results[i].Text != seq.Text {
			t.Errorf("%s: RunAll artifact differs from sequential run", id)
		}
	}
}

func TestRunAllUnknownIDFailsFast(t *testing.T) {
	s := study(t)
	if _, err := s.RunAll(context.Background(), "figure-02", "figure-99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunAllCancelled(t *testing.T) {
	s := study(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunAll(ctx, runAllIDs...); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAll error = %v, want context.Canceled", err)
	}
}

// TestRunAllRaceStress drives overlapping RunAll calls on one study; under
// -race it exercises the shared MainDataset build, the registry, and the
// read-only network contract concurrently.
func TestRunAllRaceStress(t *testing.T) {
	opts := DefaultOptions()
	opts.TargetDailyPeers = 800
	opts.Workers = 8
	s, err := NewStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results, err := s.RunAll(context.Background(), "figure-04", "figure-05", "figure-06")
			if err != nil {
				t.Error(err)
				return
			}
			for _, res := range results {
				if res == nil || res.Text == "" {
					t.Error("empty result from concurrent RunAll")
				}
			}
		}()
	}
	wg.Wait()
}
