package core

import (
	"context"
	"strings"
	"testing"
)

var sharedStudy *Study

func study(t testing.TB) *Study {
	t.Helper()
	if sharedStudy != nil {
		return sharedStudy
	}
	opts := DefaultOptions()
	opts.TargetDailyPeers = 2000 // keep the suite fast
	s, err := NewStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	sharedStudy = s
	return s
}

func TestNewStudyValidation(t *testing.T) {
	if _, err := NewStudy(Options{Days: 10, TargetDailyPeers: 100}); err == nil {
		t.Fatal("too-short study accepted")
	}
	opts := DefaultOptions()
	opts.MainFleetSize = 0
	s, err := NewStudy(Options{Seed: 1, Days: 45, TargetDailyPeers: 500})
	if err != nil {
		t.Fatal(err)
	}
	if s.Opts.MainFleetSize != 20 {
		t.Fatalf("fleet default = %d, want 20", s.Opts.MainFleetSize)
	}
}

func TestScale(t *testing.T) {
	s := study(t)
	want := 2000.0 / 30500.0
	if got := s.Scale(); got < want*0.99 || got > want*1.01 {
		t.Fatalf("scale = %v, want %v", got, want)
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact must have an experiment.
	want := []string{
		"figure-02", "figure-03", "figure-04", "figure-05", "figure-06",
		"figure-07", "figure-08", "figure-09", "figure-10", "figure-11",
		"figure-12", "figure-13", "figure-14", "table-01",
		"estimate-floodfill", "reseed-blocking", "bridge-strategies",
		"dpi-fingerprinting", "port-blocking", "eclipse-attack",
		"ablation-observer-mix", "ablation-flood-fanout",
		"bridge-distribution", "distribution-enumeration",
		"trust-distribution",
	}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q missing", id)
		}
	}
	// Sorted by ID.
	for i := 1; i < len(got); i++ {
		if got[i-1].ID >= got[i].ID {
			t.Fatal("experiments not sorted")
		}
	}
	// Every experiment documents the paper's expectation.
	for _, e := range got {
		if e.Paper == "" || e.Title == "" {
			t.Errorf("experiment %q lacks title/paper text", e.ID)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	s := study(t)
	if _, err := s.RunExperiment("figure-99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestMainDatasetCached(t *testing.T) {
	s := study(t)
	a, err := s.MainDataset()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.MainDataset()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("dataset not cached")
	}
}

// TestAllExperimentsRun executes the entire registry once and validates
// the shared invariants: non-empty artifact text and populated metrics.
func TestAllExperimentsRun(t *testing.T) {
	s := study(t)
	for _, e := range Experiments() {
		res, err := e.Run(context.Background(), s)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if res.ID != e.ID {
			t.Errorf("%s: result ID %q", e.ID, res.ID)
		}
		if strings.TrimSpace(res.Text) == "" {
			t.Errorf("%s: empty artifact text", e.ID)
		}
		if len(res.Metrics) == 0 {
			t.Errorf("%s: no metrics", e.ID)
		}
		for k, v := range res.Metrics {
			if v != v { // NaN
				t.Errorf("%s: metric %s is NaN", e.ID, k)
			}
		}
	}
}

// TestKeyShapeMetrics spot-checks the paper's headline shapes end to end
// through the registry.
func TestKeyShapeMetrics(t *testing.T) {
	s := study(t)

	f2, err := s.RunExperiment("figure-02")
	if err != nil {
		t.Fatal(err)
	}
	if f2.Metrics["nonff_over_ff"] <= 1.0 {
		t.Errorf("figure-02: non-ff should beat ff at 8MB/s, ratio %.3f", f2.Metrics["nonff_over_ff"])
	}
	if cov := f2.Metrics["coverage_of_actives"]; cov < 0.40 || cov > 0.62 {
		t.Errorf("figure-02: coverage %.2f, want ~0.5", cov)
	}

	f3, err := s.RunExperiment("figure-03")
	if err != nil {
		t.Fatal(err)
	}
	if f3.Metrics["ff_advantage_at_128"] <= 0 {
		t.Error("figure-03: floodfill must win at 128 KB/s")
	}
	if f3.Metrics["nonff_advantage_at_5mb"] <= 0 {
		t.Error("figure-03: non-floodfill must win at 5 MB/s")
	}
	if f3.Metrics["union_spread_ratio"] > 0.2 {
		t.Errorf("figure-03: union spread %.2f, want flat", f3.Metrics["union_spread_ratio"])
	}

	f4, err := s.RunExperiment("figure-04")
	if err != nil {
		t.Fatal(err)
	}
	if share := f4.Metrics["share_at_20"]; share < 0.90 {
		t.Errorf("figure-04: 20-router share = %.3f, want >= 0.90 (paper 95.5%%)", share)
	}

	f13, err := s.RunExperiment("figure-13")
	if err != nil {
		t.Fatal(err)
	}
	if r := f13.Metrics["rate_6routers_1day"]; r < 80 {
		t.Errorf("figure-13: 6-router rate = %.1f%%, want ~90%%", r)
	}
	if r := f13.Metrics["rate_20routers_30day"]; r < 93 {
		t.Errorf("figure-13: 20-router/30-day rate = %.1f%%, want ~98%%", r)
	}

	f14, err := s.RunExperiment("figure-14")
	if err != nil {
		t.Fatal(err)
	}
	if to := f14.Metrics["timeout_65_pct"]; to < 20 || to > 70 {
		t.Errorf("figure-14: timeouts at 65%% = %.1f%%, want ~40%%", to)
	}
	if to := f14.Metrics["timeout_95_pct"]; to < 85 {
		t.Errorf("figure-14: timeouts at 95%% = %.1f%%, want 95-100%%", to)
	}
	if l := f14.Metrics["load_unblocked_s"]; l < 3 || l > 6 {
		t.Errorf("figure-14: unblocked load = %.1fs, want ~3.4-4.4s", l)
	}

	dpi, err := s.RunExperiment("dpi-fingerprinting")
	if err != nil {
		t.Fatal(err)
	}
	if dpi.Metrics["ntcp_detection_rate"] != 1 {
		t.Errorf("dpi: NTCP detection = %v, want 1", dpi.Metrics["ntcp_detection_rate"])
	}
	if dpi.Metrics["ntcp2_detection_rate"] > 0.4 {
		t.Errorf("dpi: NTCP2 detection = %v, want ~0", dpi.Metrics["ntcp2_detection_rate"])
	}

	ff, err := s.RunExperiment("ablation-flood-fanout")
	if err != nil {
		t.Fatal(err)
	}
	// Flooding goes to the floodfills *closest to the holder*, which under
	// the XOR metric cluster around the record key, so replication grows
	// slowly (non-strictly) with fan-out.
	if !(ff.Metrics["replicas_fanout_1"] <= ff.Metrics["replicas_fanout_3"] &&
		ff.Metrics["replicas_fanout_3"] <= ff.Metrics["replicas_fanout_8"] &&
		ff.Metrics["replicas_fanout_1"] < ff.Metrics["replicas_fanout_8"]) {
		t.Error("flood fan-out must not decrease replication")
	}

	mix, err := s.RunExperiment("ablation-observer-mix")
	if err != nil {
		t.Fatal(err)
	}
	if mix.Metrics["mixed"] <= mix.Metrics["all_ff"]*0.98 {
		t.Errorf("mixed fleet (%v) should match or beat all-floodfill (%v)",
			mix.Metrics["mixed"], mix.Metrics["all_ff"])
	}
}
