package core

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/censor"
	"github.com/i2pstudy/i2pstudy/internal/eepsite"
	"github.com/i2pstudy/i2pstudy/internal/measure"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/reseed"
	"github.com/i2pstudy/i2pstudy/internal/sim"
	"github.com/i2pstudy/i2pstudy/internal/stats"
	"github.com/i2pstudy/i2pstudy/internal/transport"
)

func init() {
	register(Experiment{
		ID:       "figure-02",
		Category: CategoryPopulation,
		Title:    "Peers observed by one high-end router in floodfill vs non-floodfill mode",
		Paper:    "~15-16K peers/day out of ~30.5K; non-floodfill slightly higher",
		Run:      runFigure02,
	})
	register(Experiment{
		ID:       "figure-03",
		Category: CategoryPopulation,
		Title:    "Peers observed vs shared bandwidth (7 floodfill + 7 non-floodfill routers)",
		Paper:    "floodfill wins <2MB/s by 1.5-2K, non-floodfill wins >2MB/s by 1-1.5K; pair union flat at 17-18K",
		Run:      runFigure03,
	})
	register(Experiment{
		ID:       "figure-04",
		Category: CategoryPopulation,
		Title:    "Cumulative peers observed by 1-40 routers",
		Paper:    "logarithmic growth to ~32K; 20 routers reach 95.5%",
		Run:      runFigure04,
	})
	register(Experiment{
		ID:       "figure-05",
		Category: CategoryPopulation,
		Title:    "Daily unique peers and IP addresses",
		Paper:    "~30.5K daily peers; unique IPs noticeably lower; IPv6 far below IPv4",
		Run:      runFigure05,
	})
	register(Experiment{
		ID:       "figure-06",
		Category: CategoryPopulation,
		Title:    "Peers with unknown IP addresses",
		Paper:    "~15K unknown-IP: ~14K firewalled, ~4K hidden, ~2.6K overlapping",
		Run:      runFigure06,
	})
	register(Experiment{
		ID:       "figure-07",
		Category: CategoryPopulation,
		Title:    "Peer longevity (continuous vs intermittent)",
		Paper:    ">=7d: 56.36%/73.93%; >=30d: 20.03%/31.15%",
		Run:      runFigure07,
	})
	register(Experiment{
		ID:       "figure-08",
		Category: CategoryPopulation,
		Title:    "IP addresses per peer",
		Paper:    "45% single-IP, 55% multi-IP, ~0.65% over 100 addresses",
		Run:      runFigure08,
	})
	register(Experiment{
		ID:       "figure-09",
		Category: CategoryPopulation,
		Title:    "Capacity distribution of peers",
		Paper:    "L~21K, N~9K, P~2.1K, X~1.8K, O~875, M~400, K~360 per day",
		Run:      runFigure09,
	})
	register(Experiment{
		ID:       "table-01",
		Category: CategoryPopulation,
		Title:    "Bandwidth percentages by floodfill/reachable/unreachable group",
		Paper:    "N dominates floodfill column (62%), L dominates the others (~67-76%)",
		Run:      runTable01,
	})
	register(Experiment{
		ID:       "estimate-floodfill",
		Category: CategoryPopulation,
		Title:    "Qualified-floodfill population estimate",
		Paper:    "8.8% floodfills, 71% qualified -> ~1,917 qualified -> ~31,950 peers",
		Run:      runEstimateFloodfill,
	})
	register(Experiment{
		ID:       "figure-10",
		Category: CategoryPopulation,
		Title:    "Top 20 countries",
		Paper:    "US first (~28K); big-6 >40%; top-20 >60%; ~6K peers in 30 censored countries, CN >2K",
		Run:      runFigure10,
	})
	register(Experiment{
		ID:       "figure-11",
		Category: CategoryPopulation,
		Title:    "Top 20 autonomous systems",
		Paper:    "AS7922 (Comcast) >8K; top-20 >30%",
		Run:      runFigure11,
	})
	register(Experiment{
		ID:       "figure-12",
		Category: CategoryPopulation,
		Title:    "Autonomous systems per multi-IP peer",
		Paper:    ">80% single-AS; 8.4% >10 ASes; maxima 39 ASes / 25 countries",
		Run:      runFigure12,
	})
	register(Experiment{
		ID:       "figure-13",
		Category: CategoryCensorship,
		Title:    "Blocking rates vs censor routers and blacklist windows",
		Paper:    "90% @6 routers, >95% @20 (1-day); 95% @10 (5-day); ~98% @20 (30-day)",
		Run:      runFigure13,
	})
	register(Experiment{
		ID:       "figure-14",
		Category: CategoryCensorship,
		Title:    "Page-load latency and timeouts under blocking",
		Paper:    "3.4s unblocked; >20s + 40% timeouts @65%; >40s + >60% @70-90%; 95-100% timeouts >90%",
		Run:      runFigure14,
	})
	register(Experiment{
		ID:       "reseed-blocking",
		Category: CategoryCensorship,
		Title:    "Reseed-server blocking and manual reseed (Section 6.1)",
		Paper:    "bootstrap fails when all reseeds are blocked; i2pseeds.su3 restores access",
		Run:      runReseedBlocking,
	})
	register(Experiment{
		ID:       "bridge-strategies",
		Category: CategoryCensorship,
		Title:    "Bridge candidate pools under blocking (Section 7.1)",
		Paper:    "newly joined peers start unblocked but decay; firewalled peers resist address blocking",
		Run:      runBridgeStrategies,
	})
	register(Experiment{
		ID:       "dpi-fingerprinting",
		Category: CategoryCensorship,
		Title:    "DPI flow fingerprinting of NTCP vs NTCP2 (Section 2.2.2)",
		Paper:    "NTCP's 288/304/448/48 handshake is fully detectable; NTCP2 padding defeats it",
		Run:      runDPIFingerprinting,
	})
	register(Experiment{
		ID:       "port-blocking",
		Category: CategoryCensorship,
		Title:    "Collateral damage of port-range blocking (Section 2.2.2)",
		Paper:    "blocking ports 9000-31000 stops I2P but unintentionally blocks legitimate applications",
		Run:      runPortBlocking,
	})
	register(Experiment{
		ID:       "eclipse-attack",
		Category: CategoryCensorship,
		Title:    "From blocking to eclipse: attacker share of the victim's view (Section 7.2)",
		Paper:    "after blocking >95% of peers, injected whitelisted routers dominate the victim's usable view",
		Run:      runEclipseAttack,
	})
	register(Experiment{
		ID:       "ablation-observer-mix",
		Category: CategoryAblation,
		Title:    "Ablation: observer mode mix (all-ff vs all-nonff vs half/half)",
		Paper:    "Section 4.2: combining modes yields a more complete view than either alone",
		Run:      runAblationObserverMix,
	})
	register(Experiment{
		ID:       "ablation-flood-fanout",
		Category: CategoryAblation,
		Title:    "Ablation: floodfill flooding fan-out (1 vs 3 vs 8)",
		Paper:    "Section 4.2: fresh entries flood to the 3 closest floodfills",
		Run:      runAblationFloodFanout,
	})
}

// experimentDay is the reference day for single-day experiments, leaving
// room for blacklist windows behind it.
func (s *Study) experimentDay() int { return s.Opts.Days - 5 }

func runFigure02(ctx context.Context, s *Study) (*Result, error) {
	fig := &stats.Figure{
		Title:  "Figure 2: peers observed by one high-end router, 5 days per mode",
		XLabel: "day",
		YLabel: "observed peers",
	}
	ffSeries := fig.AddSeries("floodfill")
	nfSeries := fig.AddSeries("non-floodfill")
	ff := s.Net.NewObserver(sim.ObserverConfig{Name: "f2-ff", Floodfill: true, SharedKBps: sim.MaxSharedKBps, Seed: 21})
	nf := s.Net.NewObserver(sim.ObserverConfig{Name: "f2-nf", Floodfill: false, SharedKBps: sim.MaxSharedKBps, Seed: 22})
	// Five days per mode, captured through the parallel engine: the ff
	// observer covers days 2-6, the nf observer days 7-11.
	ffGrid, err := measure.ObserveGrid(ctx, []*sim.Observer{ff}, []int{2, 3, 4, 5, 6}, s.Workers())
	if err != nil {
		return nil, err
	}
	nfGrid, err := measure.ObserveGrid(ctx, []*sim.Observer{nf}, []int{7, 8, 9, 10, 11}, s.Workers())
	if err != nil {
		return nil, err
	}
	var ffSum, nfSum float64
	for d := 0; d < 5; d++ {
		n := float64(len(ffGrid[0][d]))
		ffSeries.Append(float64(d+1), n)
		ffSum += n
	}
	for d := 0; d < 5; d++ {
		n := float64(len(nfGrid[0][d]))
		nfSeries.Append(float64(d+6), n)
		nfSum += n
	}
	return &Result{
		ID: "figure-02", Title: "Figure 2", Text: fig.Render(), Figure: fig,
		Metrics: map[string]float64{
			"mean_daily_ff":       ffSum / 5,
			"mean_daily_nonff":    nfSum / 5,
			"nonff_over_ff":       (nfSum / 5) / (ffSum / 5),
			"coverage_of_actives": (nfSum / 5) / float64(len(s.Net.ActivePeers(9))),
		},
	}, nil
}

func runFigure03(ctx context.Context, s *Study) (*Result, error) {
	day := s.experimentDay()
	fig := &stats.Figure{
		Title:  "Figure 3: peers observed vs shared bandwidth",
		XLabel: "shared bandwidth (KB/s)",
		YLabel: "observed peers",
	}
	ffS := fig.AddSeries("floodfill")
	nfS := fig.AddSeries("non-floodfill")
	bothS := fig.AddSeries("both")
	bandwidths := []int{128, 256, 1024, 2048, 3072, 4096, 5120}
	// One floodfill + one non-floodfill observer per bandwidth point; the
	// engine captures the whole (observer, day) grid concurrently and the
	// fold below replays the original per-bandwidth averaging.
	observers := make([]*sim.Observer, 0, 2*len(bandwidths))
	for i, bw := range bandwidths {
		observers = append(observers,
			s.Net.NewObserver(sim.ObserverConfig{Floodfill: true, SharedKBps: bw, Seed: uint64(31 + i)}),
			s.Net.NewObserver(sim.ObserverConfig{Floodfill: false, SharedKBps: bw, Seed: uint64(51 + i)}))
	}
	days := []int{day - 2, day - 1, day}
	grid, err := measure.ObserveGrid(ctx, observers, days, s.Workers())
	if err != nil {
		return nil, err
	}
	var ff128, nf128, ff5120, nf5120, unionMin, unionMax float64
	for i, bw := range bandwidths {
		ffDays, nfDays := grid[2*i], grid[2*i+1]
		// Average over three days to suppress sampling noise.
		var ffN, nfN, unionN float64
		for d := range days {
			ffN += float64(len(ffDays[d]))
			nfN += float64(len(nfDays[d]))
			union := make(map[int]bool, len(ffDays[d])+len(nfDays[d]))
			for _, idx := range ffDays[d] {
				union[idx] = true
			}
			for _, idx := range nfDays[d] {
				union[idx] = true
			}
			unionN += float64(len(union))
		}
		ffN, nfN, unionN = ffN/3, nfN/3, unionN/3
		ffS.Append(float64(bw), ffN)
		nfS.Append(float64(bw), nfN)
		bothS.Append(float64(bw), unionN)
		switch bw {
		case 128:
			ff128, nf128 = ffN, nfN
		case 5120:
			ff5120, nf5120 = ffN, nfN
		}
		if unionMin == 0 || unionN < unionMin {
			unionMin = unionN
		}
		if unionN > unionMax {
			unionMax = unionN
		}
	}
	return &Result{
		ID: "figure-03", Title: "Figure 3", Text: fig.Render(), Figure: fig,
		Metrics: map[string]float64{
			"ff_advantage_at_128":    ff128 - nf128,
			"nonff_advantage_at_5mb": nf5120 - ff5120,
			"union_spread_ratio":     (unionMax - unionMin) / unionMax,
			"union_max":              unionMax,
		},
	}, nil
}

func runFigure04(ctx context.Context, s *Study) (*Result, error) {
	fig := &stats.Figure{
		Title:  "Figure 4: cumulative peers observed by 1-40 routers",
		XLabel: "routers under our control",
		YLabel: "observed peers",
	}
	series := fig.AddSeries("cumulative peers")
	observers := make([]*sim.Observer, 40)
	for i := range observers {
		observers[i] = s.Net.NewObserver(sim.ObserverConfig{
			Floodfill:  i%2 == 0,
			SharedKBps: sim.MaxSharedKBps,
			Seed:       uint64(400 + i),
		})
	}
	// The paper ran the fleet for five days and reports the cumulative
	// number of peers observed daily across the first k routers; average
	// the per-day union over the same five days. The 40x5 capture grid is
	// the experiment's hot path and runs through the parallel engine; the
	// cumulative-union fold below is sequential by construction.
	days := []int{6, 7, 8, 9, 10}
	grid, err := measure.ObserveGrid(ctx, observers, days, s.Workers())
	if err != nil {
		return nil, err
	}
	perDaySeen := make([]map[int]bool, len(days))
	for i := range perDaySeen {
		perDaySeen[i] = make(map[int]bool)
	}
	for k := range observers {
		sum := 0
		for i := range days {
			for _, idx := range grid[k][i] {
				perDaySeen[i][idx] = true
			}
			sum += len(perDaySeen[i])
		}
		series.Append(float64(k+1), float64(sum)/float64(len(days)))
	}
	total40 := series.Y[len(series.Y)-1]
	var at20 float64
	if y, ok := series.YAt(20); ok {
		at20 = y
	}
	var at1 float64
	if y, ok := series.YAt(1); ok {
		at1 = y
	}
	return &Result{
		ID: "figure-04", Title: "Figure 4", Text: fig.Render(), Figure: fig,
		Metrics: map[string]float64{
			"total_at_40":          total40,
			"share_at_20":          at20 / total40,
			"share_at_1":           at1 / total40,
			"tail_gain_per_router": (total40 - at20) / 20,
		},
	}, nil
}

func runFigure05(ctx context.Context, s *Study) (*Result, error) {
	ds, err := s.MainDatasetContext(ctx)
	if err != nil {
		return nil, err
	}
	fig := ds.PopulationTimeline()
	var ipSum, v4Sum, v6Sum float64
	for _, d := range ds.Days {
		ipSum += float64(d.IPAll)
		v4Sum += float64(d.IPv4)
		v6Sum += float64(d.IPv6)
	}
	n := float64(len(ds.Days))
	return &Result{
		ID: "figure-05", Title: "Figure 5", Text: fig.Render(), Figure: fig,
		Metrics: map[string]float64{
			"mean_daily_peers": ds.MeanDailyPeers(),
			"mean_daily_ips":   ipSum / n,
			"mean_daily_ipv4":  v4Sum / n,
			"mean_daily_ipv6":  v6Sum / n,
			"total_peers":      float64(ds.TotalPeers()),
		},
	}, nil
}

func runFigure06(ctx context.Context, s *Study) (*Result, error) {
	ds, err := s.MainDatasetContext(ctx)
	if err != nil {
		return nil, err
	}
	fig := ds.UnknownIPTimeline()
	var unknown, fw, hidden, overlap float64
	for _, d := range ds.Days {
		unknown += float64(d.UnknownIP)
		fw += float64(d.Firewalled)
		hidden += float64(d.Hidden)
		overlap += float64(d.Overlap)
	}
	n := float64(len(ds.Days))
	return &Result{
		ID: "figure-06", Title: "Figure 6", Text: fig.Render(), Figure: fig,
		Metrics: map[string]float64{
			"mean_daily_unknown":    unknown / n,
			"mean_daily_firewalled": fw / n,
			"mean_daily_hidden":     hidden / n,
			"mean_daily_overlap":    overlap / n,
		},
	}, nil
}

func runFigure07(ctx context.Context, s *Study) (*Result, error) {
	ds, err := s.MainDatasetContext(ctx)
	if err != nil {
		return nil, err
	}
	fig := ds.ChurnFigure()
	p7 := ds.ChurnAt(7)
	p30 := ds.ChurnAt(30)
	return &Result{
		ID: "figure-07", Title: "Figure 7", Text: fig.Render(), Figure: fig,
		Metrics: map[string]float64{
			"continuous_7d":    p7.Continuous,
			"intermittent_7d":  p7.Intermittent,
			"continuous_30d":   p30.Continuous,
			"intermittent_30d": p30.Intermittent,
			// Kaplan–Meier right-censoring correction: the finite study
			// window depresses the naive long-horizon shares; these are
			// the corrected counterparts of the intermittent curve.
			"km_intermittent_7d":  ds.SurvivalAt(7),
			"km_intermittent_30d": ds.SurvivalAt(30),
		},
	}, nil
}

func runFigure08(ctx context.Context, s *Study) (*Result, error) {
	ds, err := s.MainDatasetContext(ctx)
	if err != nil {
		return nil, err
	}
	h := ds.IPChurnHistogram(16)
	single, multi, _ := ds.IPCountShares()
	// The >100-address tail needs hourly capture resolution, which the
	// daily pipeline lacks; compute it from the simulator's ground-truth
	// schedules (see DESIGN.md on capture resolution).
	over100 := 0
	knownIP := 0
	for _, p := range s.Net.Peers {
		if p.Status != sim.StatusKnownIP {
			continue
		}
		knownIP++
		if p.UniqueIPs() > 100 {
			over100++
		}
	}
	rows := [][]string{{"IPs", "peers", "share"}}
	for _, v := range h.Values() {
		rows = append(rows, []string{fmt.Sprint(v), fmt.Sprint(h.Count(v)), fmt.Sprintf("%.1f%%", h.Share(v))})
	}
	text := "Figure 8: number of IP addresses peers are associated with\n" + stats.RenderTable(rows)
	return &Result{
		ID: "figure-08", Title: "Figure 8", Text: text,
		Metrics: map[string]float64{
			"single_ip_pct":   single,
			"multi_ip_pct":    multi,
			"over100_ip_pct":  100 * float64(over100) / float64(knownIP),
			"histogram_total": float64(h.Total()),
		},
	}, nil
}

func runFigure09(ctx context.Context, s *Study) (*Result, error) {
	ds, err := s.MainDatasetContext(ctx)
	if err != nil {
		return nil, err
	}
	rows := [][]string{{"class", "mean daily peers"}}
	m := map[string]float64{}
	for _, cl := range netdb.BandwidthClasses {
		mean := ds.MeanDailyClassCount(cl)
		m["mean_daily_"+cl.String()] = mean
		rows = append(rows, []string{cl.String(), fmt.Sprintf("%.0f", mean)})
	}
	text := "Figure 9: capacity distribution of I2P peers\n" + stats.RenderTable(rows)
	return &Result{ID: "figure-09", Title: "Figure 9", Text: text, Metrics: m}, nil
}

func runTable01(ctx context.Context, s *Study) (*Result, error) {
	ds, err := s.MainDatasetContext(ctx)
	if err != nil {
		return nil, err
	}
	table := ds.Table1()
	return &Result{
		ID: "table-01", Title: "Table 1", Text: ds.RenderTable1(),
		Metrics: map[string]float64{
			"floodfill_N_pct":   table[netdb.ClassN]["floodfill"],
			"floodfill_L_pct":   table[netdb.ClassL]["floodfill"],
			"reachable_L_pct":   table[netdb.ClassL]["reachable"],
			"unreachable_L_pct": table[netdb.ClassL]["unreachable"],
			"total_L_pct":       table[netdb.ClassL]["total"],
			"total_N_pct":       table[netdb.ClassN]["total"],
		},
	}, nil
}

func runEstimateFloodfill(ctx context.Context, s *Study) (*Result, error) {
	ds, err := s.MainDatasetContext(ctx)
	if err != nil {
		return nil, err
	}
	est := ds.EstimateFloodfillPopulation()
	text := fmt.Sprintf(
		"mean daily floodfills: %.0f (%.1f%% of peers)\nqualified share: %.1f%%\nqualified daily: %.0f\npopulation estimate (qualified / 6%%): %.0f\n",
		est.MeanDailyFloodfills, 100*est.FloodfillShare, 100*est.QualifiedShare, est.QualifiedDaily, est.PopulationEstimate)
	return &Result{
		ID: "estimate-floodfill", Title: "Section 5.3.1 estimate", Text: text,
		Metrics: map[string]float64{
			"floodfill_share":     est.FloodfillShare,
			"qualified_share":     est.QualifiedShare,
			"population_estimate": est.PopulationEstimate,
			"estimate_vs_actual":  est.PopulationEstimate / float64(s.Opts.TargetDailyPeers),
		},
	}, nil
}

func runFigure10(ctx context.Context, s *Study) (*Result, error) {
	ds, err := s.MainDatasetContext(ctx)
	if err != nil {
		return nil, err
	}
	countries := ds.CountryCounter()
	top := countries.Top(20)
	shares := countries.CumulativeShare(top)
	cens := ds.CensoredPeers(s.Net.GeoDB())
	big6 := 0
	for _, cc := range []string{"US", "RU", "GB", "FR", "CA", "AU"} {
		big6 += countries.Get(cc)
	}
	text := "Figure 10: top 20 countries\n" + measureTopGeo(countries, 20, "country")
	return &Result{
		ID: "figure-10", Title: "Figure 10", Text: text,
		Metrics: map[string]float64{
			"us_peers":           float64(countries.Get("US")),
			"big6_share_pct":     100 * float64(big6) / float64(countries.Total()),
			"top20_share_pct":    shares[len(shares)-1],
			"censored_countries": float64(cens.Countries),
			"censored_peers":     float64(cens.TotalPeers),
			"cn_peers":           float64(countries.Get("CN")),
		},
	}, nil
}

func runFigure11(ctx context.Context, s *Study) (*Result, error) {
	ds, err := s.MainDatasetContext(ctx)
	if err != nil {
		return nil, err
	}
	ases := ds.ASCounter()
	top := ases.Top(20)
	shares := ases.CumulativeShare(top)
	text := "Figure 11: top 20 autonomous systems\n" + measureTopGeo(ases, 20, "ASN")
	return &Result{
		ID: "figure-11", Title: "Figure 11", Text: text,
		Metrics: map[string]float64{
			"as7922_peers":    float64(ases.Get("7922")),
			"top20_share_pct": shares[len(shares)-1],
		},
	}, nil
}

func runFigure12(ctx context.Context, s *Study) (*Result, error) {
	ds, err := s.MainDatasetContext(ctx)
	if err != nil {
		return nil, err
	}
	h := ds.ASChurnHistogram(10)
	single, over10, maxASes := ds.ASCountShares()
	rows := [][]string{{"ASes", "peers", "share"}}
	for _, v := range h.Values() {
		rows = append(rows, []string{fmt.Sprint(v), fmt.Sprint(h.Count(v)), fmt.Sprintf("%.1f%%", h.Share(v))})
	}
	text := "Figure 12: autonomous systems per peer\n" + stats.RenderTable(rows)
	return &Result{
		ID: "figure-12", Title: "Figure 12", Text: text,
		Metrics: map[string]float64{
			"single_as_pct": single,
			"over10_as_pct": over10,
			"max_ases":      float64(maxASes),
		},
	}, nil
}

func runFigure13(ctx context.Context, s *Study) (*Result, error) {
	day := s.experimentDay()
	fig, err := censor.Figure13Context(ctx, s.Net, 20, []int{1, 5, 10, 20, 30}, day, 700, s.Workers())
	if err != nil {
		return nil, err
	}
	get := func(series string, k float64) float64 {
		sr := fig.FindSeries(series)
		if sr == nil {
			return 0
		}
		y, _ := sr.YAt(k)
		return y
	}
	return &Result{
		ID: "figure-13", Title: "Figure 13", Text: fig.Render(), Figure: fig,
		Metrics: map[string]float64{
			"rate_2routers_1day":   get("1 day", 2),
			"rate_6routers_1day":   get("1 day", 6),
			"rate_20routers_1day":  get("1 day", 20),
			"rate_10routers_5day":  get("5 day", 10),
			"rate_20routers_30day": get("30 day", 20),
		},
	}, nil
}

func runFigure14(ctx context.Context, s *Study) (*Result, error) {
	day := s.experimentDay()
	// The client's netDb: what the victim knows on the experiment day.
	victim := censor.NewVictim(s.Net, 911)
	rng := rand.New(rand.NewPCG(14, 14))
	var candidates []*netdb.RouterInfo
	for _, idx := range victim.KnownPeers(day) {
		p := s.Net.Peers[idx]
		candidates = append(candidates, s.Net.RouterInfoFor(p, day, rng))
	}
	site := eepsite.NewSite(netdb.HashFromUint64(424242))
	rates := []float64{0, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 0.97}
	fig := &stats.Figure{
		Title:  "Figure 14: timeouts and page load vs blocking rate",
		XLabel: "blocking rate (%)",
		YLabel: "timeout % / load (s)",
	}
	timeouts := fig.AddSeries("timed out requests (%)")
	loads := fig.AddSeries("page load time (s)")
	metrics := map[string]float64{}
	// Each blocking level crawls with its own rate-derived RNG, so the
	// levels are independent cells: fan them across the engine pool and
	// fold the figure serially in rate order.
	crawls := make([]eepsite.CrawlStats, len(rates))
	err := measure.FanOut(ctx, len(rates), s.Workers(), func(i int) error {
		blocked := hashBlockFraction(rates[i])
		client := eepsite.NewClient(candidates, blocked)
		st, err := client.Crawl(site, 100, rand.New(rand.NewPCG(uint64(rates[i]*1000)+1, 99)))
		if err != nil {
			return err
		}
		crawls[i] = st
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, rate := range rates {
		st := crawls[i]
		timeouts.Append(rate*100, st.TimeoutPct())
		loads.Append(rate*100, st.MeanLoad.Seconds())
		switch rate {
		case 0:
			metrics["load_unblocked_s"] = st.MeanLoad.Seconds()
			metrics["timeout_unblocked_pct"] = st.TimeoutPct()
		case 0.65:
			metrics["load_65_s"] = st.MeanLoad.Seconds()
			metrics["timeout_65_pct"] = st.TimeoutPct()
		case 0.80:
			metrics["load_80_s"] = st.MeanLoad.Seconds()
			metrics["timeout_80_pct"] = st.TimeoutPct()
		case 0.95:
			metrics["timeout_95_pct"] = st.TimeoutPct()
		}
	}
	return &Result{ID: "figure-14", Title: "Figure 14", Text: fig.Render(), Figure: fig, Metrics: metrics}, nil
}

// hashBlockFraction blocks a deterministic pseudo-random fraction of peers
// by identity hash — the firewall's view of a blacklist covering `rate` of
// the victim's peers.
func hashBlockFraction(rate float64) func(netdb.Hash) bool {
	return func(h netdb.Hash) bool {
		v := float64(uint16(h[2])<<8|uint16(h[3])) / 65535
		return v < rate
	}
}

func runReseedBlocking(ctx context.Context, s *Study) (*Result, error) {
	day := 2
	rng := rand.New(rand.NewPCG(61, 61))
	// Reseed servers serve live RouterInfos from the network.
	provider := func() []*netdb.RouterInfo {
		var out []*netdb.RouterInfo
		for i, idx := range s.Net.ActivePeers(day) {
			if i >= 600 {
				break
			}
			p := s.Net.Peers[idx]
			if p.Status == sim.StatusKnownIP {
				out = append(out, s.Net.RouterInfoFor(p, day, rng))
			}
		}
		return out
	}
	a := reseed.NewServer("reseed-a", reseed.DefaultPerRequest, provider, 71)
	b := reseed.NewServer("reseed-b", reseed.DefaultPerRequest, provider, 72)

	boot, err := reseed.Bootstrap([]*reseed.Server{a, b}, "new-client")
	if err != nil {
		return nil, err
	}
	// Censor blocks all reseed servers: bootstrap must fail.
	_, blockedErr := reseed.Bootstrap(nil, "censored-client")
	// Manual reseed: a friend exports a bundle; the censored client loads it.
	bundle, err := reseed.CreateBundle(boot, "friend", s.Net.DayTime(day))
	if err != nil {
		return nil, err
	}
	parsed, err := reseed.ParseBundle(bundle)
	if err != nil {
		return nil, err
	}
	text := fmt.Sprintf(
		"bootstrap records from 2 reseeds: %d\nbootstrap with all reseeds blocked: %v\nmanual i2pseeds bundle records: %d (signed by %q)\n",
		len(boot), blockedErr, len(parsed.Records), parsed.Signer)
	failed := 0.0
	if blockedErr != nil {
		failed = 1
	}
	return &Result{
		ID: "reseed-blocking", Title: "Section 6.1", Text: text,
		Metrics: map[string]float64{
			"bootstrap_records":      float64(len(boot)),
			"blocked_bootstrap_fail": failed,
			"manual_records":         float64(len(parsed.Records)),
		},
	}, nil
}

func runBridgeStrategies(ctx context.Context, s *Study) (*Result, error) {
	cfg := censor.DefaultBridgeConfig()
	cfg.Day = s.experimentDay() - 11
	cfg.HorizonDays = 10
	cfg.Workers = s.Workers()
	evs, err := censor.EvaluateBridgesContext(ctx, s.Net, 5, cfg)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	rows := [][]string{{"strategy", "pool", "initial usable", "final usable"}}
	metrics := map[string]float64{}
	for _, e := range evs {
		rows = append(rows, []string{
			e.Strategy.String(),
			fmt.Sprint(e.PoolSize),
			fmt.Sprintf("%.2f", e.InitialUsable()),
			fmt.Sprintf("%.2f", e.FinalUsable()),
		})
		metrics[e.Strategy.String()+"_initial"] = e.InitialUsable()
		metrics[e.Strategy.String()+"_final"] = e.FinalUsable()
	}
	sb.WriteString("Section 7.1 bridge strategies\n")
	sb.WriteString(stats.RenderTable(rows))
	return &Result{ID: "bridge-strategies", Title: "Section 7.1", Text: sb.String(), Metrics: metrics}, nil
}

func runDPIFingerprinting(ctx context.Context, s *Study) (*Result, error) {
	flows := 8
	detect := func(variant transport.Variant) (float64, error) {
		var mb transport.Middlebox
		cfg := transport.Config{Variant: variant, RouterHash: netdb.HashFromUint64(777), HandshakeTimeout: 5 * time.Second}
		l, err := transport.Listen("tcp", "127.0.0.1:0", cfg)
		if err != nil {
			return 0, err
		}
		defer l.Close()
		done := make(chan error, 1)
		var acceptWG sync.WaitGroup
		acceptWG.Add(1)
		go func() {
			defer acceptWG.Done()
			for i := 0; i < flows; i++ {
				c, err := l.Accept()
				if err != nil {
					done <- err
					return
				}
				c.Close()
			}
			done <- nil
		}()
		for i := 0; i < flows; i++ {
			c, err := transport.Dial("tcp", l.Addr().String(), cfg)
			if err != nil {
				return 0, err
			}
			mb.Observe(c.HandshakeTrace())
			c.Close()
		}
		acceptWG.Wait()
		if err := <-done; err != nil {
			return 0, err
		}
		return mb.DetectionRate(), nil
	}
	ntcpRate, err := detect(transport.VariantNTCP)
	if err != nil {
		return nil, err
	}
	ntcp2Rate, err := detect(transport.VariantNTCP2)
	if err != nil {
		return nil, err
	}
	text := fmt.Sprintf("DPI detection rate over %d flows each:\n  NTCP:  %.2f\n  NTCP2: %.2f\n", flows, ntcpRate, ntcp2Rate)
	return &Result{
		ID: "dpi-fingerprinting", Title: "Section 2.2.2", Text: text,
		Metrics: map[string]float64{
			"ntcp_detection_rate":  ntcpRate,
			"ntcp2_detection_rate": ntcp2Rate,
		},
	}, nil
}

func runPortBlocking(ctx context.Context, s *Study) (*Result, error) {
	res := censor.EvaluatePortBlocking(200_000, 20_000, s.Opts.Seed)
	rows := [][]string{{"technique", "I2P blocked", "collateral"}}
	rows = append(rows, []string{
		"port range 9000-31000",
		fmt.Sprintf("%.1f%%", res.I2PBlockedPct),
		fmt.Sprintf("%.1f%% of legitimate flows", res.CollateralPct),
	})
	rows = append(rows, []string{
		"address blacklist (Section 6.2)",
		"per Figure 13",
		fmt.Sprintf("%.1f%%", censor.EvaluateAddressBlockingCollateral(s.Net)),
	})
	text := "Section 2.2.2: port blocking vs address blocking\n" + stats.RenderTable(rows)
	text += "\nworst-hit applications:\n"
	worst := []string{"webrtc-media", "game-steam", "game-minecraft", "bittorrent"}
	for _, app := range worst {
		if pct, ok := res.CollateralByApp[app]; ok {
			text += fmt.Sprintf("  %-16s %.1f%% of its flows blocked\n", app, pct)
		}
	}
	return &Result{
		ID: "port-blocking", Title: "Section 2.2.2", Text: text,
		Metrics: map[string]float64{
			"i2p_blocked_pct":        res.I2PBlockedPct,
			"collateral_pct":         res.CollateralPct,
			"webrtc_collateral_pct":  res.CollateralByApp["webrtc-media"],
			"address_collateral_pct": censor.EvaluateAddressBlockingCollateral(s.Net),
		},
	}, nil
}

func runEclipseAttack(ctx context.Context, s *Study) (*Result, error) {
	day := s.experimentDay()
	// Inject attacker routers amounting to ~1% of the network — cheap for
	// a censor that already runs monitoring infrastructure.
	injected := s.Opts.TargetDailyPeers / 100
	if injected < 5 {
		injected = 5
	}
	fig, results, err := censor.EclipseSweepContext(ctx, s.Net, []int{2, 6, 10, 20}, 5, injected, day, 7200, s.Workers())
	if err != nil {
		return nil, err
	}
	metrics := map[string]float64{"injected": float64(injected)}
	for _, r := range results {
		metrics[fmt.Sprintf("attacker_share_%drouters", r.CensorRouters)] = r.AttackerShare
	}
	text := "Section 7.2: blocking escalates to an eclipse attack\n" + censor.RenderEclipse(results)
	return &Result{
		ID: "eclipse-attack", Title: "Section 7.2", Text: text, Figure: fig,
		Metrics: metrics,
	}, nil
}

func runAblationObserverMix(ctx context.Context, s *Study) (*Result, error) {
	day := s.experimentDay()
	mix := func(ffCount, nfCount int, seedBase uint64) float64 {
		var obs []*sim.Observer
		for i := 0; i < ffCount; i++ {
			obs = append(obs, s.Net.NewObserver(sim.ObserverConfig{Floodfill: true, SharedKBps: sim.MaxSharedKBps, Seed: seedBase + uint64(i)}))
		}
		for i := 0; i < nfCount; i++ {
			obs = append(obs, s.Net.NewObserver(sim.ObserverConfig{Floodfill: false, SharedKBps: sim.MaxSharedKBps, Seed: seedBase + 100 + uint64(i)}))
		}
		return float64(len(sim.UnionObserveDay(obs, day)))
	}
	allFF := mix(6, 0, 800)
	allNF := mix(0, 6, 900)
	half := mix(3, 3, 1000)
	rows := [][]string{
		{"fleet", "union coverage"},
		{"6 floodfill", fmt.Sprintf("%.0f", allFF)},
		{"6 non-floodfill", fmt.Sprintf("%.0f", allNF)},
		{"3 + 3 mixed", fmt.Sprintf("%.0f", half)},
	}
	return &Result{
		ID: "ablation-observer-mix", Title: "Observer mode mix ablation",
		Text: stats.RenderTable(rows),
		Metrics: map[string]float64{
			"all_ff":    allFF,
			"all_nonff": allNF,
			"mixed":     half,
		},
	}, nil
}

func runAblationFloodFanout(ctx context.Context, s *Study) (*Result, error) {
	// Replication study over the real netdb machinery: one fresh
	// RouterInfo is stored to the 4 floodfills closest to its routing key,
	// each of which floods it to its own `fanout` closest floodfills.
	// Measured: distinct floodfills holding the record afterwards.
	day := 5
	now := s.Net.DayTime(day)
	var floodfills []netdb.Hash
	for _, idx := range s.Net.ActivePeers(day) {
		p := s.Net.Peers[idx]
		if p.Floodfill {
			floodfills = append(floodfills, p.ID)
		}
	}
	if len(floodfills) < 20 {
		return nil, fmt.Errorf("core: only %d floodfills active", len(floodfills))
	}
	record := netdb.HashFromUint64(31337)
	replicate := func(fanout int) int {
		holding := make(map[netdb.Hash]bool)
		initial := netdb.ClosestTo(record, floodfills, 4, now)
		for _, ff := range initial {
			holding[ff] = true
		}
		// One flooding round per initial holder, as the Java router does
		// for fresh entries.
		for _, ff := range initial {
			for _, peer := range netdb.ClosestTo(ff, floodfills, fanout+1, now) {
				if peer != ff {
					holding[peer] = true
				}
			}
		}
		return len(holding)
	}
	rows := [][]string{{"fanout", "floodfills holding record"}}
	metrics := map[string]float64{}
	for _, fanout := range []int{1, netdb.FloodFanout, 8} {
		n := replicate(fanout)
		rows = append(rows, []string{fmt.Sprint(fanout), fmt.Sprint(n)})
		metrics[fmt.Sprintf("replicas_fanout_%d", fanout)] = float64(n)
	}
	return &Result{
		ID: "ablation-flood-fanout", Title: "Flooding fan-out ablation",
		Text:    stats.RenderTable(rows),
		Metrics: metrics,
	}, nil
}

// measureTopGeo renders the top-N geo table (indirection avoids importing
// measure for one function in this file's callers).
var measureTopGeo = func(c *stats.Counter, n int, label string) string {
	top := c.Top(n)
	shares := c.CumulativeShare(top)
	rows := [][]string{{label, "peers", "cum %"}}
	for i, kv := range top {
		rows = append(rows, []string{kv.Key, fmt.Sprint(kv.Count), fmt.Sprintf("%.1f", shares[i])})
	}
	return stats.RenderTable(rows)
}
