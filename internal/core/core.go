// Package core ties the substrates together into the paper's study: one
// Study object owns a synthetic network, runs the main measurement
// campaign, and exposes a registry of experiments — one per table and
// figure in the paper's evaluation — each returning a rendered artifact
// plus the headline metrics recorded in EXPERIMENTS.md.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/i2pstudy/i2pstudy/internal/checkpoint"
	"github.com/i2pstudy/i2pstudy/internal/faults"
	"github.com/i2pstudy/i2pstudy/internal/measure"
	"github.com/i2pstudy/i2pstudy/internal/sim"
	"github.com/i2pstudy/i2pstudy/internal/stats"
)

// runAllVersion is RunAll's checkpoint-format version; bump it when the
// Result encoding or the unit keying changes.
const runAllVersion = 1

// checkpointManifest identifies this study for resume purposes. The
// experiment set is not hashed: units are keyed by experiment ID, so
// running different subsets against one directory is safe and useful.
func (s *Study) checkpointManifest() checkpoint.Manifest {
	h := checkpoint.NewHasher()
	measure.HashNetwork(h, s.Net)
	h.Int(s.Opts.MainFleetSize)
	return checkpoint.Manifest{
		Engine:     "core.Study.RunAll",
		Version:    runAllVersion,
		ConfigHash: h.Sum(),
		Seed:       s.Opts.Seed,
	}
}

// Options configures a Study.
type Options struct {
	// Seed drives all randomness.
	Seed uint64
	// Days is the study horizon. The paper ran ~90 days; experiments need
	// at least 40 (Figure 13's 30-day blacklist window plus slack).
	Days int
	// TargetDailyPeers scales the network. The paper's network had ~30.5K
	// daily peers; benches default to a 1/10-scale network, which
	// preserves every shape statistic.
	TargetDailyPeers int
	// MainFleetSize is the number of observers in the main campaign (the
	// paper used 20: 10 floodfill + 10 non-floodfill).
	MainFleetSize int
	// Workers caps the concurrency of the campaign engine and of RunAll.
	// Zero or negative selects one worker per CPU; 1 forces the serial
	// reference path. Results are identical for every worker count.
	Workers int
	// CheckpointDir, when non-empty, persists each finished experiment's
	// Result so an interrupted RunAll resumes by loading completed
	// experiments instead of re-running them. The directory is keyed by
	// a manifest over (seed, network shape, fleet size, engine version);
	// resuming against state from a different study fails with a
	// *checkpoint.MismatchError. Workers is excluded from the key — a
	// study may resume at any width.
	CheckpointDir string
	// Retain disables the main campaign's streaming fold and keeps every
	// pending merged day in memory, as the engine did before streaming
	// existed. The zero value streams: campaign memory stays O(Workers)
	// day units instead of O(Days). Both modes produce byte-identical
	// datasets; see measure.CampaignConfig.Retain.
	Retain bool
}

// DefaultOptions returns the 1/10-scale configuration used by tests and
// benches.
func DefaultOptions() Options {
	return Options{Seed: 2018, Days: 45, TargetDailyPeers: 3050, MainFleetSize: 20}
}

// FullScaleOptions returns the paper-scale configuration (30.5K daily
// peers, 90 days). Building it takes a few seconds and a few hundred MB.
func FullScaleOptions() Options {
	return Options{Seed: 2018, Days: 90, TargetDailyPeers: 30500, MainFleetSize: 20}
}

// Study owns a network and caches the main campaign's dataset so that the
// population experiments (Figures 5–12, Table 1) share one run, exactly as
// the paper derived all of Section 5 from one three-month campaign.
type Study struct {
	Opts Options
	Net  *sim.Network

	mu      sync.Mutex
	dataset *measure.Dataset
}

// NewStudy builds the network for the given options.
func NewStudy(opts Options) (*Study, error) {
	if opts.Days < 40 {
		return nil, fmt.Errorf("core: need at least 40 days for the blacklist-window experiments, got %d", opts.Days)
	}
	if opts.MainFleetSize <= 0 {
		opts.MainFleetSize = 20
	}
	net, err := sim.New(sim.Config{
		Seed:             opts.Seed,
		Days:             opts.Days,
		TargetDailyPeers: opts.TargetDailyPeers,
	})
	if err != nil {
		return nil, err
	}
	return &Study{Opts: opts, Net: net}, nil
}

// Scale returns the study's size relative to the paper's ~30.5K daily
// peers; multiply reported counts by 1/Scale to compare against the paper.
func (s *Study) Scale() float64 {
	return float64(s.Opts.TargetDailyPeers) / 30500
}

// Workers returns the study's effective engine concurrency.
func (s *Study) Workers() int {
	if s.Opts.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.Opts.Workers
}

// MainDataset runs (once) and returns the main campaign with a background
// context. See MainDatasetContext.
func (s *Study) MainDataset() (*measure.Dataset, error) {
	return s.MainDatasetContext(context.Background())
}

// MainDatasetContext runs (once) and returns the main campaign:
// MainFleetSize observers, alternating modes, full horizon, Workers-wide
// engine. Concurrent callers share one run; a cancelled run is not
// cached, so a later call retries.
func (s *Study) MainDatasetContext(ctx context.Context) (*measure.Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dataset != nil {
		return s.dataset, nil
	}
	c, err := measure.NewCampaign(s.Net, measure.CampaignConfig{
		Observers: measure.DefaultObserverFleet(s.Opts.MainFleetSize),
		StartDay:  0,
		EndDay:    s.Opts.Days,
		Workers:   s.Workers(),
		Retain:    s.Opts.Retain,
	})
	if err != nil {
		return nil, err
	}
	ds, err := c.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	s.dataset = ds
	return ds, nil
}

// Result is the outcome of one experiment.
type Result struct {
	// ID and Title identify the experiment.
	ID, Title string
	// Paper summarizes what the paper reports for this artifact.
	Paper string
	// Text is the rendered table/series (the regenerated artifact).
	Text string
	// Figure, when non-nil, is the structured series behind Text; the CLI
	// tools export it as CSV.
	Figure *stats.Figure
	// Metrics carries the headline numbers for EXPERIMENTS.md and the
	// bench harness.
	Metrics map[string]float64
}

// Experiment categories. Every registered experiment carries exactly one;
// the CLIs derive their experiment sets from these tags (cmd/i2pcensor
// owns CategoryCensorship, cmd/i2pmeasure the other two), so adding an
// experiment can never silently drift out of a hand-maintained ID list.
const (
	// CategoryPopulation tags the Section 5 artifacts (Figures 2-12,
	// Table 1, the floodfill population estimate).
	CategoryPopulation = "population"
	// CategoryCensorship tags the Section 2.2.2 and Section 6-7 artifacts
	// (blocking, usability, reseed, bridges, DPI, eclipse).
	CategoryCensorship = "censorship"
	// CategoryAblation tags the extension ablation studies.
	CategoryAblation = "ablation"
	// CategoryDistribution tags the bridge-distribution pipeline
	// experiments (internal/distrib): distributor-vs-enumerator arms
	// races over the Section 7.1 bridge pools.
	CategoryDistribution = "distribution"
)

// Experiment maps one paper artifact to a runnable.
type Experiment struct {
	// ID is the registry key, e.g. "figure-05" or "table-01".
	ID string
	// Title is the paper's caption, abbreviated.
	Title string
	// Paper summarizes the expected result from the paper.
	Paper string
	// Category groups the experiment for the CLIs; one of the Category*
	// constants. Required at registration.
	Category string
	// Run executes the experiment against a study. Implementations must
	// honor ctx cancellation between expensive stages and must treat the
	// study's network as read-only so RunAll can run them concurrently.
	Run func(context.Context, *Study) (*Result, error)
}

var (
	registryMu sync.Mutex
	registry   = map[string]Experiment{}
)

// register adds an experiment to the registry; duplicate IDs or missing
// categories panic (they are programming errors).
func register(e Experiment) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[e.ID]; dup {
		panic("core: duplicate experiment " + e.ID)
	}
	switch e.Category {
	case CategoryPopulation, CategoryCensorship, CategoryAblation, CategoryDistribution:
	default:
		panic("core: experiment " + e.ID + " has invalid category " + fmt.Sprintf("%q", e.Category))
	}
	registry[e.ID] = e
}

// Experiments returns all registered experiments sorted by ID.
func Experiments() []Experiment {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ExperimentIDs returns the IDs of registered experiments in the given
// category, sorted; the empty category selects every experiment.
func ExperimentIDs(category string) []string {
	var out []string
	for _, e := range Experiments() {
		if category == "" || e.Category == category {
			out = append(out, e.ID)
		}
	}
	return out
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	registryMu.Lock()
	defer registryMu.Unlock()
	e, ok := registry[id]
	return e, ok
}

// RunExperiment looks up and runs one experiment with a background
// context.
func (s *Study) RunExperiment(id string) (*Result, error) {
	return s.RunExperimentContext(context.Background(), id)
}

// RunExperimentContext looks up and runs one experiment.
func (s *Study) RunExperimentContext(ctx context.Context, id string) (*Result, error) {
	e, ok := Lookup(id)
	if !ok {
		return nil, fmt.Errorf("core: unknown experiment %q", id)
	}
	return e.Run(ctx, s)
}

// RunAll runs the given experiments (all registered ones when ids is
// empty) across a Workers-wide pool and returns their results in the
// requested order. Experiments only read the shared network, and the
// main-campaign dataset is built once under the study lock, so arbitrary
// subsets can run side by side; each experiment's output is identical to
// a sequential RunExperiment call. The first failure (or ctx
// cancellation) cancels the remaining runs.
func (s *Study) RunAll(ctx context.Context, ids ...string) ([]*Result, error) {
	if len(ids) == 0 {
		for _, e := range Experiments() {
			ids = append(ids, e.ID)
		}
	}
	// Resolve every ID up front: an unknown experiment should fail fast,
	// not after its predecessors ran for minutes.
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, ok := Lookup(id)
		if !ok {
			return nil, fmt.Errorf("core: unknown experiment %q", id)
		}
		exps[i] = e
	}

	// With a checkpoint directory, completed experiments load from disk
	// instead of re-running. Units are keyed by experiment ID, so the
	// requested subset (and its order) is free to differ between runs.
	var store *checkpoint.Store
	if s.Opts.CheckpointDir != "" {
		var err error
		store, err = checkpoint.Open(s.Opts.CheckpointDir, s.checkpointManifest())
		if err != nil {
			return nil, err
		}
	}

	workers := s.Workers()
	if workers > len(exps) {
		workers = len(exps)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*Result, len(exps))
	tasks := make(chan int, len(exps))
	for i := range exps {
		if store != nil {
			var res Result
			ok, err := store.LoadJSON("exp-"+exps[i].ID, &res)
			if err != nil {
				return nil, err
			}
			if ok {
				results[i] = &res
				continue
			}
		}
		tasks <- i
	}
	close(tasks)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				if cctx.Err() != nil {
					continue
				}
				res, err := exps[i].Run(cctx, s)
				switch {
				case err == nil:
					results[i] = res
					if store != nil {
						if err := store.SaveJSON("exp-"+exps[i].ID, res); err != nil {
							fail(err)
							continue
						}
					}
					// A finished experiment is a fault boundary: an injected
					// crash here leaves the unit committed, which is exactly
					// what the resume goldens exercise.
					if err := faults.Hit("core.runall.experiment"); err != nil {
						fail(fmt.Errorf("%s: %w", exps[i].ID, err))
					}
				case errors.Is(err, context.Canceled) && cctx.Err() != nil:
					// Cancellation fallout from the parent ctx or from a
					// peer experiment's failure; the root cause is
					// reported below, not this bystander's error.
				default:
					fail(fmt.Errorf("%s: %w", exps[i].ID, err))
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, res := range results {
		if res == nil {
			return nil, fmt.Errorf("core: %s returned no result", exps[i].ID)
		}
	}
	return results, nil
}
