package core

import (
	"context"
	"reflect"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/measure/enginetest"
)

// adversaryIDs are the experiments riding the censor sweep engine and the
// distrib arms-race engine.
var adversaryIDs = []string{
	"figure-13", "figure-14", "eclipse-attack", "bridge-strategies",
	"bridge-distribution", "distribution-enumeration", "trust-distribution",
}

// adversaryStudy builds a small study pinned to the given engine width.
// Both studies share one seed, so their networks are identical; only the
// worker count differs.
func adversaryStudy(t *testing.T, workers int) *Study {
	t.Helper()
	opts := DefaultOptions()
	opts.TargetDailyPeers = 1200
	opts.Workers = workers
	s, err := NewStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAdversarySweepParallelMatchesSerial is the adversary engine's
// registry-level golden guarantee, stated through the shared enginetest
// harness: every experiment riding a sweep engine produces
// byte-identical Result text, figures and metrics at every ladder
// width, so parallelism can never change a censorship artifact. One
// study per width is shared across the experiment cases.
func TestAdversarySweepParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	studies := map[int]*Study{}
	studyFor := func(workers int) *Study {
		if s, ok := studies[workers]; ok {
			return s
		}
		s := adversaryStudy(t, workers)
		studies[workers] = s
		return s
	}
	cases := make([]enginetest.Case, 0, len(adversaryIDs))
	for _, id := range adversaryIDs {
		id := id
		cases = append(cases, enginetest.Case{
			Name: id,
			Run: func(t testing.TB, workers int) any {
				res, err := studyFor(workers).RunExperimentContext(ctx, id)
				if err != nil {
					t.Fatalf("%s: %v", id, err)
				}
				return res
			},
		})
	}
	enginetest.Golden(t, cases)
}

// TestExperimentCategories locks the category tagging the CLIs derive
// their experiment sets from.
func TestExperimentCategories(t *testing.T) {
	wantCensorship := []string{
		"bridge-strategies", "dpi-fingerprinting", "eclipse-attack",
		"figure-13", "figure-14", "port-blocking", "reseed-blocking",
	}
	if got := ExperimentIDs(CategoryCensorship); !reflect.DeepEqual(got, wantCensorship) {
		t.Errorf("censorship IDs = %v, want %v", got, wantCensorship)
	}
	if got := ExperimentIDs(CategoryAblation); len(got) != 2 {
		t.Errorf("ablation IDs = %v", got)
	}
	wantDistribution := []string{"bridge-distribution", "distribution-enumeration", "trust-distribution"}
	if got := ExperimentIDs(CategoryDistribution); !reflect.DeepEqual(got, wantDistribution) {
		t.Errorf("distribution IDs = %v, want %v", got, wantDistribution)
	}
	total := len(ExperimentIDs(CategoryPopulation)) +
		len(ExperimentIDs(CategoryCensorship)) +
		len(ExperimentIDs(CategoryAblation)) +
		len(ExperimentIDs(CategoryDistribution))
	if all := ExperimentIDs(""); total != len(all) || len(all) != len(Experiments()) {
		t.Errorf("categories cover %d experiments, registry has %d", total, len(Experiments()))
	}
	for _, e := range Experiments() {
		switch e.Category {
		case CategoryPopulation, CategoryCensorship, CategoryAblation, CategoryDistribution:
		default:
			t.Errorf("experiment %s has category %q", e.ID, e.Category)
		}
	}
}
