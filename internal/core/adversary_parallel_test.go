package core

import (
	"context"
	"reflect"
	"testing"
)

// adversaryIDs are the experiments riding the censor sweep engine and the
// distrib arms-race engine.
var adversaryIDs = []string{
	"figure-13", "figure-14", "eclipse-attack", "bridge-strategies",
	"bridge-distribution", "distribution-enumeration",
}

// adversaryStudy builds a small study pinned to the given engine width.
// Both studies share one seed, so their networks are identical; only the
// worker count differs.
func adversaryStudy(t *testing.T, workers int) *Study {
	t.Helper()
	opts := DefaultOptions()
	opts.TargetDailyPeers = 1200
	opts.Workers = workers
	s, err := NewStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAdversarySweepParallelMatchesSerial is the adversary engine's
// registry-level golden guarantee, mirroring
// TestCampaignParallelMatchesSerial: the censorship experiments produce
// byte-identical Result text, figures and metrics at Workers=1 and
// Workers=8, so parallelism can never change a censorship artifact.
func TestAdversarySweepParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	serial := adversaryStudy(t, 1)
	parallel := adversaryStudy(t, 8)
	for _, id := range adversaryIDs {
		want, err := serial.RunExperimentContext(ctx, id)
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		got, err := parallel.RunExperimentContext(ctx, id)
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if got.Text != want.Text {
			t.Errorf("%s: Workers=8 text differs from serial", id)
		}
		if !reflect.DeepEqual(got.Metrics, want.Metrics) {
			t.Errorf("%s: Workers=8 metrics differ from serial", id)
		}
		if !reflect.DeepEqual(got.Figure, want.Figure) {
			t.Errorf("%s: Workers=8 figure differs from serial", id)
		}
	}
}

// TestExperimentCategories locks the category tagging the CLIs derive
// their experiment sets from.
func TestExperimentCategories(t *testing.T) {
	wantCensorship := []string{
		"bridge-strategies", "dpi-fingerprinting", "eclipse-attack",
		"figure-13", "figure-14", "port-blocking", "reseed-blocking",
	}
	if got := ExperimentIDs(CategoryCensorship); !reflect.DeepEqual(got, wantCensorship) {
		t.Errorf("censorship IDs = %v, want %v", got, wantCensorship)
	}
	if got := ExperimentIDs(CategoryAblation); len(got) != 2 {
		t.Errorf("ablation IDs = %v", got)
	}
	wantDistribution := []string{"bridge-distribution", "distribution-enumeration"}
	if got := ExperimentIDs(CategoryDistribution); !reflect.DeepEqual(got, wantDistribution) {
		t.Errorf("distribution IDs = %v, want %v", got, wantDistribution)
	}
	total := len(ExperimentIDs(CategoryPopulation)) +
		len(ExperimentIDs(CategoryCensorship)) +
		len(ExperimentIDs(CategoryAblation)) +
		len(ExperimentIDs(CategoryDistribution))
	if all := ExperimentIDs(""); total != len(all) || len(all) != len(Experiments()) {
		t.Errorf("categories cover %d experiments, registry has %d", total, len(Experiments()))
	}
	for _, e := range Experiments() {
		switch e.Category {
		case CategoryPopulation, CategoryCensorship, CategoryAblation, CategoryDistribution:
		default:
			t.Errorf("experiment %s has category %q", e.ID, e.Category)
		}
	}
}
