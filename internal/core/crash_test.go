package core

import (
	"context"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/measure/enginetest"
)

// crashIDs are cheap censorship experiments: enough of them that a
// mid-run crash leaves committed and uncommitted units behind, cheap
// enough that the harness's full ladder stays fast.
var crashIDs = []string{"reseed-blocking", "port-blocking", "dpi-fingerprinting"}

// TestRunAllCrashResume is the registry runner's crash-safety golden,
// stated through the shared harness: a RunAll killed by an injected
// fault after some experiment commits and then resumed from the same
// checkpoint directory yields Results byte-identical to an
// uninterrupted run, at every ladder width. One study per width is
// cached (the network build dominates); only CheckpointDir changes
// between runs, which the manifest deliberately excludes.
func TestRunAllCrashResume(t *testing.T) {
	studies := map[int]*Study{}
	studyFor := func(t testing.TB, workers int) *Study {
		if s, ok := studies[workers]; ok {
			return s
		}
		opts := DefaultOptions()
		opts.TargetDailyPeers = 1200
		opts.Workers = workers
		s, err := NewStudy(opts)
		if err != nil {
			t.Fatal(err)
		}
		studies[workers] = s
		return s
	}
	enginetest.CrashResume(t, 2018, []enginetest.CrashCase{{
		Name:  "runall",
		Point: "core.runall.experiment",
		Run: func(t testing.TB, dir string, workers int) (any, error) {
			s := studyFor(t, workers)
			s.Opts.CheckpointDir = dir
			res, err := s.RunAll(context.Background(), crashIDs...)
			if err != nil {
				return nil, err
			}
			return res, nil
		},
	}})
}
