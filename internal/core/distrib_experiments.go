package core

import (
	"context"
	"fmt"
	"strings"

	"github.com/i2pstudy/i2pstudy/internal/censor"
	"github.com/i2pstudy/i2pstudy/internal/distrib"
	"github.com/i2pstudy/i2pstudy/internal/stats"
)

// The distribution-category experiments run the bridge-distribution
// pipeline (internal/distrib): rdsys-style distributor frontends over the
// Section 7.1 bridge pools, raced against censor-side enumeration. They
// extend the paper's one-shot bridge evaluation (bridge-strategies) into
// the distribution-vs-enumeration arms race the mitigation discussion
// points at.

func init() {
	register(Experiment{
		ID:       "bridge-distribution",
		Category: CategoryDistribution,
		Title:    "Bridge distribution arms race: distributor frontends vs censor enumeration",
		Paper:    "Section 7.1 outlook: combined newly-joined + firewalled pools distributed out of band resist enumeration; open channels leak fastest",
		Run:      runBridgeDistribution,
	})
	register(Experiment{
		ID:       "distribution-enumeration",
		Category: CategoryDistribution,
		Title:    "Enumeration speed and bootstrap collapse with an address-blockable bridge pool",
		Paper:    "Section 6.2/7.1: with known-IP bridges only, cheap channels are fully enumerated in days and bootstrap collapses; high-friction channels hold",
		Run:      runDistributionEnumeration,
	})
}

// distribDay places the distribution day so the horizon ends before the
// study does, mirroring the bridge-strategies experiment.
func (s *Study) distribDay() int { return s.experimentDay() - 11 }

const distribHorizon = 10

func runBridgeDistribution(ctx context.Context, s *Study) (*Result, error) {
	sw, err := distrib.NewSweep(s.Net, distrib.SweepConfig{
		Strategy:     censor.BridgeCombined,
		Distributors: distrib.DefaultDistributors(),
		Enumerators:  distrib.DefaultEnumerators(),
		Days:         []int{s.distribDay()},
		HorizonDays:  distribHorizon,
		Users:        60,
		MaxResources: 160,
		SeedBase:     s.Opts.Seed + 1200,
		Workers:      s.Workers(),
	})
	if err != nil {
		return nil, err
	}
	results, err := sw.Run(ctx)
	if err != nil {
		return nil, err
	}

	fig := &stats.Figure{
		Title:  "Bridge distribution: bootstrap success under crawler enumeration (combined pool)",
		XLabel: "days after distribution",
		YLabel: "bootstrap success (%)",
	}
	rows := [][]string{{"distributor", "enumerator", "partition", "bootstrap", "survival", "enumerated", "collateral"}}
	metrics := map[string]float64{}
	for _, r := range results {
		if r.Enumerator == "crawler" {
			sr := fig.AddSeries(r.Distributor)
			for h, v := range r.Bootstrap {
				sr.Append(float64(h), 100*v)
			}
		}
		rows = append(rows, []string{
			r.Distributor, r.Enumerator, fmt.Sprint(r.PartitionSize),
			fmt.Sprintf("%.2f", r.FinalBootstrap()),
			fmt.Sprintf("%.2f", r.FinalSurvival()),
			fmt.Sprintf("%.2f", r.Enumerated[len(r.Enumerated)-1]),
			fmt.Sprintf("%.2f", r.Collateral[len(r.Collateral)-1]),
		})
		key := r.Distributor + "_" + r.Enumerator
		metrics[key+"_bootstrap_final"] = r.FinalBootstrap()
		metrics[key+"_enumerated_final"] = r.Enumerated[len(r.Enumerated)-1]
	}
	var sb strings.Builder
	sb.WriteString("Bridge-distribution arms race (combined pool, 10-day horizon)\n")
	sb.WriteString(stats.RenderTable(rows))
	return &Result{
		ID: "bridge-distribution", Title: "Bridge distribution pipeline",
		Text: sb.String(), Figure: fig, Metrics: metrics,
	}, nil
}

func runDistributionEnumeration(ctx context.Context, s *Study) (*Result, error) {
	sw, err := distrib.NewSweep(s.Net, distrib.SweepConfig{
		Strategy:     censor.BridgeRandom,
		Distributors: distrib.DefaultDistributors(),
		Enumerators: []distrib.Enumerator{
			{Kind: distrib.Crawler, Budget: 25},
			{Kind: distrib.Sybil, Budget: 60},
		},
		Days:         []int{s.distribDay()},
		HorizonDays:  distribHorizon,
		Users:        60,
		MaxResources: 160,
		SeedBase:     s.Opts.Seed + 1300,
		Workers:      s.Workers(),
	})
	if err != nil {
		return nil, err
	}
	results, err := sw.Run(ctx)
	if err != nil {
		return nil, err
	}

	fig := &stats.Figure{
		Title:  "Enumeration of an address-blockable (known-IP) bridge pool",
		XLabel: "days after distribution",
		YLabel: "partition enumerated (%)",
	}
	rows := [][]string{{"distributor", "enumerator", "days to 50%", "enumerated", "bootstrap"}}
	metrics := map[string]float64{}
	for _, r := range results {
		if r.Enumerator == "crawler" {
			sr := fig.AddSeries(r.Distributor)
			for h, v := range r.Enumerated {
				sr.Append(float64(h), 100*v)
			}
		}
		d50 := r.DaysToEnumerate(0.5)
		d50Text := fmt.Sprint(d50)
		if d50 < 0 {
			d50Text = "never"
		}
		rows = append(rows, []string{
			r.Distributor, r.Enumerator, d50Text,
			fmt.Sprintf("%.2f", r.Enumerated[len(r.Enumerated)-1]),
			fmt.Sprintf("%.2f", r.FinalBootstrap()),
		})
		key := r.Distributor + "_" + r.Enumerator
		metrics[key+"_days_to_half"] = float64(d50)
		metrics[key+"_bootstrap_final"] = r.FinalBootstrap()
	}
	var sb strings.Builder
	sb.WriteString("Enumeration speed, known-IP pool (10-day horizon)\n")
	sb.WriteString(stats.RenderTable(rows))
	return &Result{
		ID: "distribution-enumeration", Title: "Distribution enumeration speed",
		Text: sb.String(), Figure: fig, Metrics: metrics,
	}, nil
}
