package transport

import (
	"sync"
	"time"
)

// This file implements the shared-bandwidth limit every I2P router
// enforces — the knob the paper sweeps from 128 KB/s to 8 MB/s in its
// Section 4 methodology experiments. A token-bucket Limiter paces writes;
// ThrottledConn applies it to a Conn.

// Limiter is a token-bucket rate limiter over bytes. It is safe for
// concurrent use.
type Limiter struct {
	mu sync.Mutex

	bytesPerSec float64
	burst       float64

	tokens float64
	last   time.Time

	// now and sleep are injectable for deterministic tests.
	now   func() time.Time
	sleep func(time.Duration)
}

// NewLimiter returns a limiter allowing bytesPerSec sustained throughput
// with the given burst size in bytes. A burst below one frame would
// deadlock writers, so it is floored to 4 KiB.
func NewLimiter(bytesPerSec int, burst int) *Limiter {
	if bytesPerSec <= 0 {
		bytesPerSec = 1
	}
	if burst < 4096 {
		burst = 4096
	}
	return &Limiter{
		bytesPerSec: float64(bytesPerSec),
		burst:       float64(burst),
		tokens:      float64(burst),
		now:         time.Now,
		sleep:       time.Sleep,
	}
}

// refill adds tokens for elapsed time; callers hold mu.
func (l *Limiter) refill() {
	now := l.now()
	if !l.last.IsZero() {
		l.tokens += now.Sub(l.last).Seconds() * l.bytesPerSec
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
	}
	l.last = now
}

// reserve consumes n bytes of budget and returns how long the caller must
// wait before sending. Requests larger than the burst are still honoured:
// the bucket goes negative and the caller waits out the debt, which keeps
// the *average* rate at bytesPerSec.
func (l *Limiter) reserve(n int) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refill()
	l.tokens -= float64(n)
	if l.tokens >= 0 {
		return 0
	}
	return time.Duration(-l.tokens / l.bytesPerSec * float64(time.Second))
}

// WaitN blocks until n bytes of budget are available.
func (l *Limiter) WaitN(n int) {
	if d := l.reserve(n); d > 0 {
		l.sleep(d)
	}
}

// Rate returns the configured sustained rate in bytes per second.
func (l *Limiter) Rate() int { return int(l.bytesPerSec) }

// ThrottledConn wraps a Conn, pacing WriteMessage at the limiter's rate.
// Reads are not throttled: I2P's shared-bandwidth setting governs what the
// router contributes, and inbound pacing is the sender's problem.
type ThrottledConn struct {
	*Conn
	limiter *Limiter
}

// Throttle wraps c with a sustained rate of kbps kilobytes per second,
// mirroring the router console's shared-bandwidth setting.
func Throttle(c *Conn, kbps int) *ThrottledConn {
	return &ThrottledConn{
		Conn:    c,
		limiter: NewLimiter(kbps*1024, 64*1024),
	}
}

// WriteMessage paces the frame through the token bucket, then sends it.
func (t *ThrottledConn) WriteMessage(payload []byte) error {
	t.limiter.WaitN(len(payload) + 2 + frameTagSize)
	return t.Conn.WriteMessage(payload)
}

// Limiter exposes the underlying limiter (for sharing one budget across
// several connections, as a router's global shared-bandwidth cap does).
func (t *ThrottledConn) Limiter() *Limiter { return t.limiter }
