// Package transport implements an NTCP-style obfuscated TCP transport for
// the study. It reproduces the wire-visible property the paper's DPI
// discussion hinges on (Section 2.2.2): the first four handshake messages
// of classic NTCP have fixed lengths of 288, 304, 448 and 48 bytes, which
// lets flow analysis fingerprint I2P connections even though the payload is
// randomized. The NTCP2 variant (I2P proposal 111) appends random padding
// to every handshake message, defeating the size signature; the dpi.go
// classifier demonstrates both outcomes.
//
// The handshake performs a real X25519 key agreement (crypto/ecdh) followed
// by AES-256-CTR framing with per-frame HMAC-SHA256 tags. It is a faithful
// simplification, not the actual NTCP protocol: the point is to exercise
// genuine connection establishment, obfuscation and framing code paths over
// stdlib net connections.
package transport

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Classic NTCP handshake wire sizes in bytes (Section 2.2.2: "the first
// four handshake messages between I2P routers can be detected due to their
// fixed lengths of 288, 304, 448, and 48 bytes").
const (
	SessionRequestSize  = 288
	SessionCreatedSize  = 304
	SessionConfirmASize = 448
	SessionConfirmBSize = 48
)

// Variant selects the handshake framing behaviour.
type Variant int

// Transport variants.
const (
	// VariantNTCP emits the classic fixed-size handshake.
	VariantNTCP Variant = iota
	// VariantNTCP2 appends random padding to each handshake message,
	// destroying the size signature (the paper's Section 2.2.2 mentions
	// this mitigation as in development at the time).
	VariantNTCP2
)

func (v Variant) String() string {
	switch v {
	case VariantNTCP:
		return "NTCP"
	case VariantNTCP2:
		return "NTCP2"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// NTCP2 padding bounds (bytes appended per handshake message).
const (
	ntcp2PadMin = 0
	ntcp2PadMax = 64
)

// Config parameterizes a Conn.
type Config struct {
	// Variant selects classic NTCP or padded NTCP2 framing.
	Variant Variant
	// RouterHash is the responder's identity hash, known to both sides
	// before connecting (it comes from the RouterInfo). It keys the
	// handshake obfuscation, like NTCP's use of Bob's router hash.
	RouterHash [32]byte
	// HandshakeTimeout bounds the handshake; zero means 10 seconds.
	HandshakeTimeout time.Duration
}

func (c Config) timeout() time.Duration {
	if c.HandshakeTimeout <= 0 {
		return 10 * time.Second
	}
	return c.HandshakeTimeout
}

// MaxFrameSize bounds a single data frame payload.
const MaxFrameSize = 32 * 1024

// frameTagSize is the truncated HMAC-SHA256 tag appended to every frame.
const frameTagSize = 16

// Errors returned by the transport.
var (
	ErrBadHandshake = errors.New("transport: handshake failed")
	ErrFrameTooBig  = errors.New("transport: frame exceeds maximum size")
	ErrBadTag       = errors.New("transport: frame authentication failed")
)

// Conn is an established, authenticated, obfuscated connection. It is safe
// for one concurrent reader and one concurrent writer.
type Conn struct {
	nc      net.Conn
	variant Variant

	enc cipher.Stream
	dec cipher.Stream

	macKey []byte

	// sizes of the handshake messages as seen on the wire, in order. A
	// DPI middlebox sees exactly this sequence.
	handshakeSizes []int

	readBuf []byte
}

// HandshakeTrace returns the wire sizes of the handshake messages this end
// sent and received, in protocol order (request, created, confirmA,
// confirmB). It is what a passive observer of the flow records.
func (c *Conn) HandshakeTrace() []int {
	return append([]int(nil), c.handshakeSizes...)
}

// Variant returns the framing variant in use.
func (c *Conn) Variant() Variant { return c.variant }

// LocalAddr returns the underlying local address.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// RemoteAddr returns the underlying remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// SetDeadline sets read and write deadlines on the underlying connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// WriteMessage sends one authenticated frame.
func (c *Conn) WriteMessage(payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooBig
	}
	frame := make([]byte, 2+len(payload)+frameTagSize)
	binary.BigEndian.PutUint16(frame[:2], uint16(len(payload)))
	copy(frame[2:], payload)
	mac := hmac.New(sha256.New, c.macKey)
	mac.Write(frame[:2+len(payload)])
	copy(frame[2+len(payload):], mac.Sum(nil)[:frameTagSize])
	c.enc.XORKeyStream(frame, frame)
	_, err := c.nc.Write(frame)
	return err
}

// ReadMessage receives one authenticated frame.
func (c *Conn) ReadMessage() ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(c.nc, hdr[:]); err != nil {
		return nil, err
	}
	c.dec.XORKeyStream(hdr[:], hdr[:])
	n := int(binary.BigEndian.Uint16(hdr[:]))
	if n > MaxFrameSize {
		return nil, ErrFrameTooBig
	}
	body := make([]byte, n+frameTagSize)
	if _, err := io.ReadFull(c.nc, body); err != nil {
		return nil, err
	}
	c.dec.XORKeyStream(body, body)
	mac := hmac.New(sha256.New, c.macKey)
	mac.Write(hdr[:])
	mac.Write(body[:n])
	if !hmac.Equal(mac.Sum(nil)[:frameTagSize], body[n:]) {
		return nil, ErrBadTag
	}
	return body[:n], nil
}

// Dial connects to addr and performs the initiator side of the handshake.
func Dial(network, addr string, cfg Config) (*Conn, error) {
	nc, err := net.DialTimeout(network, addr, cfg.timeout())
	if err != nil {
		return nil, err
	}
	c, err := ClientHandshake(nc, cfg)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// Listener accepts obfuscated connections.
type Listener struct {
	nl  net.Listener
	cfg Config
}

// Listen starts a listener on addr.
func Listen(network, addr string, cfg Config) (*Listener, error) {
	nl, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return &Listener{nl: nl, cfg: cfg}, nil
}

// Accept waits for a connection and performs the responder handshake.
func (l *Listener) Accept() (*Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, err
	}
	c, err := ServerHandshake(nc, l.cfg)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// Addr returns the listener's address.
func (l *Listener) Addr() net.Addr { return l.nl.Addr() }

// Close stops the listener.
func (l *Listener) Close() error { return l.nl.Close() }

// --- handshake ---

// obfuscator derives a deterministic keystream from the router hash, used
// to hide handshake structure from a passive observer who does not know
// which router is being contacted.
func obfuscator(routerHash [32]byte, label string) cipher.Stream {
	key := sha256.Sum256(append(routerHash[:], label...))
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic(err) // 32-byte key; cannot fail
	}
	iv := sha256.Sum256(append(routerHash[:], ("iv:" + label)...))
	return cipher.NewCTR(block, iv[:aes.BlockSize])
}

// writeHandshakeMsg frames body into a handshake message. For classic NTCP
// the wire size is exactly fixedSize; for NTCP2, body plus random padding.
// The 2-byte body length and the body are obfuscated with the router-hash
// keystream; padding is crypto/rand noise.
func writeHandshakeMsg(w io.Writer, body []byte, fixedSize int, variant Variant, routerHash [32]byte, label string) (int, error) {
	need := 2 + len(body)
	var wire int
	switch variant {
	case VariantNTCP:
		wire = fixedSize
		if need > fixedSize {
			return 0, fmt.Errorf("transport: handshake body %d exceeds fixed size %d", len(body), fixedSize)
		}
	case VariantNTCP2:
		// The body already carries its padding (padBodyNTCP2); the wire
		// message is exactly the framed body so the reader knows where
		// the next message starts.
		wire = need
	default:
		return 0, fmt.Errorf("transport: unknown variant %v", variant)
	}
	msg := make([]byte, wire)
	binary.BigEndian.PutUint16(msg[:2], uint16(len(body)))
	copy(msg[2:], body)
	if _, err := rand.Read(msg[need:]); err != nil {
		return 0, err
	}
	obfuscator(routerHash, label).XORKeyStream(msg[:need], msg[:need])
	if _, err := w.Write(msg); err != nil {
		return 0, err
	}
	return wire, nil
}

// readHandshakeMsg reads one handshake message written by writeHandshakeMsg.
func readHandshakeMsg(r io.Reader, fixedSize int, variant Variant, routerHash [32]byte, label string) (body []byte, wire int, err error) {
	stream := obfuscator(routerHash, label)
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	stream.XORKeyStream(hdr[:], hdr[:])
	n := int(binary.BigEndian.Uint16(hdr[:]))
	if n > 4096 {
		return nil, 0, ErrBadHandshake
	}
	body = make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, 0, err
	}
	stream.XORKeyStream(body, body)
	switch variant {
	case VariantNTCP:
		// Consume the fixed-size junk tail.
		junk := fixedSize - 2 - n
		if junk < 0 {
			return nil, 0, ErrBadHandshake
		}
		if _, err := io.CopyN(io.Discard, r, int64(junk)); err != nil {
			return nil, 0, err
		}
		return body, fixedSize, nil
	case VariantNTCP2:
		// NTCP2 receivers know the pad length from context in the real
		// protocol; here the pad is only read lazily by the next message
		// boundary, so we encode it in the first body byte region
		// instead: the sender places pad length in... — see note below.
		return body, 2 + n, nil
	default:
		return nil, 0, ErrBadHandshake
	}
}

// Note on NTCP2 padding: writeHandshakeMsg appends pad bytes after the
// body, but readHandshakeMsg must know how many to skip. We sidestep the
// bookkeeping by making the pad part of the *body* for NTCP2: the helper
// below wraps a body with its padding before writing.
func padBodyNTCP2(body []byte) ([]byte, error) {
	var padByte [1]byte
	if _, err := rand.Read(padByte[:]); err != nil {
		return nil, err
	}
	pad := ntcp2PadMin + int(padByte[0])%(ntcp2PadMax-ntcp2PadMin+1)
	padded := make([]byte, 2+len(body)+pad)
	binary.BigEndian.PutUint16(padded[:2], uint16(len(body)))
	copy(padded[2:], body)
	if _, err := rand.Read(padded[2+len(body):]); err != nil {
		return nil, err
	}
	return padded, nil
}

func unpadBodyNTCP2(padded []byte) ([]byte, error) {
	if len(padded) < 2 {
		return nil, ErrBadHandshake
	}
	n := int(binary.BigEndian.Uint16(padded[:2]))
	if 2+n > len(padded) {
		return nil, ErrBadHandshake
	}
	return padded[2 : 2+n], nil
}

// sendMsg writes one handshake message, dispatching on variant. It returns
// the wire size.
func sendMsg(w io.Writer, body []byte, fixedSize int, cfg Config, label string) (int, error) {
	if cfg.Variant == VariantNTCP2 {
		padded, err := padBodyNTCP2(body)
		if err != nil {
			return 0, err
		}
		return writeHandshakeMsg(w, padded, 0, VariantNTCP2, cfg.RouterHash, label)
	}
	return writeHandshakeMsg(w, body, fixedSize, VariantNTCP, cfg.RouterHash, label)
}

// recvMsg reads one handshake message, dispatching on variant.
func recvMsg(r io.Reader, fixedSize int, cfg Config, label string) ([]byte, int, error) {
	body, wire, err := readHandshakeMsg(r, fixedSize, cfg.Variant, cfg.RouterHash, label)
	if err != nil {
		return nil, 0, err
	}
	if cfg.Variant == VariantNTCP2 {
		inner, err := unpadBodyNTCP2(body)
		if err != nil {
			return nil, 0, err
		}
		return inner, wire, nil
	}
	return body, wire, nil
}

// deriveKeys expands the ECDH shared secret into directional cipher streams
// and a MAC key. Directions are fixed from the initiator's perspective.
func deriveKeys(secret []byte, initiator bool) (enc, dec cipher.Stream, macKey []byte) {
	kI := sha256.Sum256(append(secret, "i2pstudy-init"...))
	kR := sha256.Sum256(append(secret, "i2pstudy-resp"...))
	mk := sha256.Sum256(append(secret, "i2pstudy-mac"...))
	ivI := sha256.Sum256(append(secret, "iv-init"...))
	ivR := sha256.Sum256(append(secret, "iv-resp"...))
	mkStream := func(key, iv [32]byte) cipher.Stream {
		block, err := aes.NewCipher(key[:])
		if err != nil {
			panic(err)
		}
		return cipher.NewCTR(block, iv[:aes.BlockSize])
	}
	if initiator {
		return mkStream(kI, ivI), mkStream(kR, ivR), mk[:]
	}
	return mkStream(kR, ivR), mkStream(kI, ivI), mk[:]
}

// ClientHandshake runs the initiator side over an established net.Conn.
func ClientHandshake(nc net.Conn, cfg Config) (*Conn, error) {
	deadline := time.Now().Add(cfg.timeout())
	if err := nc.SetDeadline(deadline); err != nil {
		return nil, err
	}
	defer nc.SetDeadline(time.Time{})

	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	var sizes []int

	// Message 1: SessionRequest — client ephemeral public key.
	n, err := sendMsg(nc, priv.PublicKey().Bytes(), SessionRequestSize, cfg, "msg1")
	if err != nil {
		return nil, err
	}
	sizes = append(sizes, n)

	// Message 2: SessionCreated — server ephemeral public key.
	body, n, err := recvMsg(nc, SessionCreatedSize, cfg, "msg2")
	if err != nil {
		return nil, err
	}
	sizes = append(sizes, n)
	serverPub, err := ecdh.X25519().NewPublicKey(body)
	if err != nil {
		return nil, fmt.Errorf("%w: bad server key", ErrBadHandshake)
	}
	secret, err := priv.ECDH(serverPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}

	// Message 3: SessionConfirmA — prove knowledge of the shared secret
	// bound to the responder's router hash.
	mac := hmac.New(sha256.New, secret)
	mac.Write(cfg.RouterHash[:])
	mac.Write([]byte("confirm-a"))
	n, err = sendMsg(nc, mac.Sum(nil), SessionConfirmASize, cfg, "msg3")
	if err != nil {
		return nil, err
	}
	sizes = append(sizes, n)

	// Message 4: SessionConfirmB — server's confirmation.
	body, n, err = recvMsg(nc, SessionConfirmBSize, cfg, "msg4")
	if err != nil {
		return nil, err
	}
	sizes = append(sizes, n)
	mac = hmac.New(sha256.New, secret)
	mac.Write(cfg.RouterHash[:])
	mac.Write([]byte("confirm-b"))
	if !hmac.Equal(body, mac.Sum(nil)) {
		return nil, fmt.Errorf("%w: server confirmation mismatch", ErrBadHandshake)
	}

	enc, dec, mk := deriveKeys(secret, true)
	return &Conn{nc: nc, variant: cfg.Variant, enc: enc, dec: dec, macKey: mk, handshakeSizes: sizes}, nil
}

// ServerHandshake runs the responder side over an established net.Conn.
func ServerHandshake(nc net.Conn, cfg Config) (*Conn, error) {
	deadline := time.Now().Add(cfg.timeout())
	if err := nc.SetDeadline(deadline); err != nil {
		return nil, err
	}
	defer nc.SetDeadline(time.Time{})

	var sizes []int
	body, n, err := recvMsg(nc, SessionRequestSize, cfg, "msg1")
	if err != nil {
		return nil, err
	}
	sizes = append(sizes, n)
	clientPub, err := ecdh.X25519().NewPublicKey(body)
	if err != nil {
		return nil, fmt.Errorf("%w: bad client key", ErrBadHandshake)
	}

	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	n, err = sendMsg(nc, priv.PublicKey().Bytes(), SessionCreatedSize, cfg, "msg2")
	if err != nil {
		return nil, err
	}
	sizes = append(sizes, n)

	secret, err := priv.ECDH(clientPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}

	body, n, err = recvMsg(nc, SessionConfirmASize, cfg, "msg3")
	if err != nil {
		return nil, err
	}
	sizes = append(sizes, n)
	mac := hmac.New(sha256.New, secret)
	mac.Write(cfg.RouterHash[:])
	mac.Write([]byte("confirm-a"))
	if !hmac.Equal(body, mac.Sum(nil)) {
		return nil, fmt.Errorf("%w: client confirmation mismatch", ErrBadHandshake)
	}

	mac = hmac.New(sha256.New, secret)
	mac.Write(cfg.RouterHash[:])
	mac.Write([]byte("confirm-b"))
	n, err = sendMsg(nc, mac.Sum(nil), SessionConfirmBSize, cfg, "msg4")
	if err != nil {
		return nil, err
	}
	sizes = append(sizes, n)

	enc, dec, mk := deriveKeys(secret, false)
	return &Conn{nc: nc, variant: cfg.Variant, enc: enc, dec: dec, macKey: mk, handshakeSizes: sizes}, nil
}
