package transport

// This file implements the flow-analysis side of Section 2.2.2: a DPI
// middlebox that fingerprints I2P NTCP connections purely from the sizes of
// the first handshake messages, without inspecting payload bytes (which are
// randomized). It is the adversary the NTCP2 padding is designed to defeat.

// Protocol is a DPI classification verdict.
type Protocol int

// Classifier verdicts.
const (
	// ProtocolUnknown means the flow does not match any known signature.
	ProtocolUnknown Protocol = iota
	// ProtocolI2PNTCP means the flow matches the classic NTCP handshake
	// signature (288, 304, 448, 48).
	ProtocolI2PNTCP
)

func (p Protocol) String() string {
	switch p {
	case ProtocolI2PNTCP:
		return "i2p-ntcp"
	default:
		return "unknown"
	}
}

// ntcpSignature is the byte-size sequence of the first four NTCP handshake
// messages as seen by a passive observer.
var ntcpSignature = [4]int{
	SessionRequestSize,
	SessionCreatedSize,
	SessionConfirmASize,
	SessionConfirmBSize,
}

// NTCPSignature returns a copy of the classic handshake size signature.
func NTCPSignature() []int {
	sig := ntcpSignature
	return sig[:]
}

// ClassifyFlow inspects the first message sizes of a flow (in protocol
// order: client, server, client, server) and returns a verdict. Flows
// shorter than four messages are unknown: a DPI box cannot commit early
// without false positives.
func ClassifyFlow(sizes []int) Protocol {
	if len(sizes) < len(ntcpSignature) {
		return ProtocolUnknown
	}
	for i, want := range ntcpSignature {
		if sizes[i] != want {
			return ProtocolUnknown
		}
	}
	return ProtocolI2PNTCP
}

// Middlebox is a stateful DPI element that observes flows and tallies
// verdicts, as a censoring firewall would. The zero value is ready to use.
type Middlebox struct {
	flows    int
	detected int
}

// Observe classifies one flow trace and updates counters, returning the
// verdict.
func (m *Middlebox) Observe(sizes []int) Protocol {
	m.flows++
	v := ClassifyFlow(sizes)
	if v == ProtocolI2PNTCP {
		m.detected++
	}
	return v
}

// Flows returns how many flows were observed.
func (m *Middlebox) Flows() int { return m.flows }

// Detected returns how many flows were classified as I2P NTCP.
func (m *Middlebox) Detected() int { return m.detected }

// DetectionRate returns the fraction of observed flows classified as I2P.
func (m *Middlebox) DetectionRate() float64 {
	if m.flows == 0 {
		return 0
	}
	return float64(m.detected) / float64(m.flows)
}
