package transport

import (
	"bytes"
	"crypto/sha256"
	"net"
	"sync"
	"testing"
	"time"
)

func testRouterHash() [32]byte {
	return sha256.Sum256([]byte("responder identity"))
}

// connPair establishes a client/server Conn pair over loopback TCP.
func connPair(t *testing.T, variant Variant) (client, server *Conn) {
	t.Helper()
	cfg := Config{Variant: variant, RouterHash: testRouterHash(), HandshakeTimeout: 5 * time.Second}
	l, err := Listen("tcp", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })

	var wg sync.WaitGroup
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		server, srvErr = l.Accept()
	}()
	client, err = Dial("tcp", l.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestHandshakeAndEcho(t *testing.T) {
	for _, variant := range []Variant{VariantNTCP, VariantNTCP2} {
		t.Run(variant.String(), func(t *testing.T) {
			client, server := connPair(t, variant)
			msgs := [][]byte{
				[]byte("hello"),
				{},
				bytes.Repeat([]byte{0xAB}, 1000),
				bytes.Repeat([]byte("garlic"), 5000),
			}
			for _, want := range msgs {
				if err := client.WriteMessage(want); err != nil {
					t.Fatalf("write: %v", err)
				}
				got, err := server.ReadMessage()
				if err != nil {
					t.Fatalf("read: %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("message corrupted: got %d bytes want %d", len(got), len(want))
				}
				// And the reverse direction.
				if err := server.WriteMessage(want); err != nil {
					t.Fatalf("server write: %v", err)
				}
				got, err = client.ReadMessage()
				if err != nil {
					t.Fatalf("client read: %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatal("reverse message corrupted")
				}
			}
		})
	}
}

func TestNTCPHandshakeSizesAreFixed(t *testing.T) {
	client, server := connPair(t, VariantNTCP)
	want := NTCPSignature()
	for _, c := range []*Conn{client, server} {
		got := c.HandshakeTrace()
		if len(got) != 4 {
			t.Fatalf("trace length = %d, want 4", len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("handshake message %d size = %d, want %d", i+1, got[i], want[i])
			}
		}
	}
}

func TestNTCP2HandshakeSizesVary(t *testing.T) {
	// Across several connections, NTCP2 must not always produce the
	// classic signature. (Any single run could coincide by chance with
	// probability ~(1/65)^4, so ten runs make a flaky pass impossible in
	// practice.)
	matches := 0
	traces := make(map[[4]int]bool)
	for i := 0; i < 10; i++ {
		client, _ := connPair(t, VariantNTCP2)
		got := client.HandshakeTrace()
		if ClassifyFlow(got) == ProtocolI2PNTCP {
			matches++
		}
		var key [4]int
		copy(key[:], got)
		traces[key] = true
	}
	if matches == 10 {
		t.Fatal("all NTCP2 handshakes matched the NTCP signature")
	}
	if len(traces) < 2 {
		t.Fatal("NTCP2 handshake sizes never varied")
	}
}

func TestDPIClassifier(t *testing.T) {
	if got := ClassifyFlow([]int{288, 304, 448, 48}); got != ProtocolI2PNTCP {
		t.Fatalf("exact signature = %v, want i2p-ntcp", got)
	}
	if got := ClassifyFlow([]int{288, 304, 448, 48, 512, 1024}); got != ProtocolI2PNTCP {
		t.Fatal("longer flow with matching prefix should classify")
	}
	for _, sizes := range [][]int{
		nil,
		{288},
		{288, 304, 448},
		{289, 304, 448, 48},
		{288, 304, 449, 48},
		{1500, 1500, 1500, 1500},
	} {
		if got := ClassifyFlow(sizes); got != ProtocolUnknown {
			t.Errorf("ClassifyFlow(%v) = %v, want unknown", sizes, got)
		}
	}
}

func TestMiddleboxCounters(t *testing.T) {
	var mb Middlebox
	mb.Observe([]int{288, 304, 448, 48})
	mb.Observe([]int{100, 200})
	mb.Observe([]int{288, 304, 448, 48})
	if mb.Flows() != 3 || mb.Detected() != 2 {
		t.Fatalf("flows=%d detected=%d", mb.Flows(), mb.Detected())
	}
	if got := mb.DetectionRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("rate = %v", got)
	}
	var empty Middlebox
	if empty.DetectionRate() != 0 {
		t.Fatal("empty middlebox rate should be 0")
	}
}

// TestDPIDetectsNTCPButNotNTCP2 is the paper's Section 2.2.2 experiment in
// miniature: classic NTCP flows are all fingerprinted; NTCP2 flows are not.
func TestDPIDetectsNTCPButNotNTCP2(t *testing.T) {
	var mb Middlebox
	for i := 0; i < 5; i++ {
		client, _ := connPair(t, VariantNTCP)
		mb.Observe(client.HandshakeTrace())
	}
	if mb.DetectionRate() != 1 {
		t.Fatalf("NTCP detection rate = %v, want 1", mb.DetectionRate())
	}
	var mb2 Middlebox
	for i := 0; i < 5; i++ {
		client, _ := connPair(t, VariantNTCP2)
		mb2.Observe(client.HandshakeTrace())
	}
	if mb2.DetectionRate() > 0.4 {
		t.Fatalf("NTCP2 detection rate = %v, want near 0", mb2.DetectionRate())
	}
}

func TestHandshakeFailsWithWrongRouterHash(t *testing.T) {
	good := Config{Variant: VariantNTCP, RouterHash: testRouterHash(), HandshakeTimeout: 2 * time.Second}
	bad := good
	bad.RouterHash = sha256.Sum256([]byte("a different router"))

	l, err := Listen("tcp", "127.0.0.1:0", good)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
	}()
	// A client that thinks it is talking to a different router derives a
	// different obfuscation keystream; the handshake must fail rather than
	// silently connecting to the wrong peer.
	c, err := Dial("tcp", l.Addr().String(), bad)
	if err == nil {
		c.Close()
		t.Fatal("handshake with mismatched router hash succeeded")
	}
	<-done
}

func TestFrameTamperingDetected(t *testing.T) {
	// A man-in-the-middle flipping ciphertext bits must trip the frame MAC.
	cfg := Config{Variant: VariantNTCP, RouterHash: testRouterHash(), HandshakeTimeout: 5 * time.Second}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	type result struct {
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		nc, err := l.Accept()
		if err != nil {
			resCh <- result{err}
			return
		}
		defer nc.Close()
		sc, err := ServerHandshake(nc, cfg)
		if err != nil {
			resCh <- result{err}
			return
		}
		_, err = sc.ReadMessage()
		resCh <- result{err}
	}()

	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	tamper := &tamperConn{Conn: nc}
	cc, err := ClientHandshake(tamper, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tamper.active = true // flip bits on everything after the handshake
	if err := cc.WriteMessage([]byte("authentic message")); err != nil {
		t.Fatal(err)
	}
	res := <-resCh
	if res.err == nil {
		t.Fatal("tampered frame accepted")
	}
}

// tamperConn flips one bit of every write once activated.
type tamperConn struct {
	net.Conn
	active bool
}

func (c *tamperConn) Write(p []byte) (int, error) {
	if c.active && len(p) > 4 {
		q := append([]byte(nil), p...)
		q[3] ^= 0x01
		return c.Conn.Write(q)
	}
	return c.Conn.Write(p)
}

func TestWriteMessageTooBig(t *testing.T) {
	client, _ := connPair(t, VariantNTCP)
	if err := client.WriteMessage(make([]byte, MaxFrameSize+1)); err != ErrFrameTooBig {
		t.Fatalf("err = %v, want ErrFrameTooBig", err)
	}
}

func TestConnAccessors(t *testing.T) {
	client, server := connPair(t, VariantNTCP2)
	if client.Variant() != VariantNTCP2 {
		t.Fatal("variant accessor wrong")
	}
	if client.LocalAddr() == nil || client.RemoteAddr() == nil {
		t.Fatal("addresses missing")
	}
	if server.LocalAddr().String() != client.RemoteAddr().String() {
		t.Fatal("address mismatch between ends")
	}
	if err := client.SetDeadline(time.Now().Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
}

func TestVariantStrings(t *testing.T) {
	if VariantNTCP.String() != "NTCP" || VariantNTCP2.String() != "NTCP2" {
		t.Fatal("variant strings wrong")
	}
	if Variant(9).String() == "" {
		t.Fatal("unknown variant must format")
	}
	if ProtocolI2PNTCP.String() != "i2p-ntcp" || ProtocolUnknown.String() != "unknown" {
		t.Fatal("protocol strings wrong")
	}
}
