package transport

import (
	"testing"
	"time"
)

// fakeClock provides a deterministic now/sleep pair: sleeping advances
// time instantly.
type fakeClock struct {
	t time.Time
	// slept accumulates requested sleep time.
	slept time.Duration
}

func (c *fakeClock) now() time.Time { return c.t }
func (c *fakeClock) sleep(d time.Duration) {
	c.slept += d
	c.t = c.t.Add(d)
}

func testLimiter(bytesPerSec, burst int) (*Limiter, *fakeClock) {
	l := NewLimiter(bytesPerSec, burst)
	clock := &fakeClock{t: time.Unix(0, 0)}
	l.now = clock.now
	l.sleep = clock.sleep
	return l, clock
}

func TestLimiterBurstThenPace(t *testing.T) {
	l, clock := testLimiter(10_000, 10_000)
	// The first burst goes through without waiting.
	l.WaitN(10_000)
	if clock.slept != 0 {
		t.Fatalf("burst write slept %v", clock.slept)
	}
	// The next 10 KB must wait ~1 second (rate 10 KB/s).
	l.WaitN(10_000)
	if clock.slept < 900*time.Millisecond || clock.slept > 1100*time.Millisecond {
		t.Fatalf("second write slept %v, want ~1s", clock.slept)
	}
}

func TestLimiterSustainedRate(t *testing.T) {
	l, clock := testLimiter(100_000, 4096)
	start := clock.t
	total := 0
	for i := 0; i < 100; i++ {
		l.WaitN(10_000)
		total += 10_000
	}
	elapsed := clock.t.Sub(start).Seconds()
	if elapsed == 0 {
		t.Fatal("no time elapsed")
	}
	rate := float64(total) / elapsed
	// Aggregate rate within 10% of the configured 100 KB/s.
	if rate < 90_000 || rate > 115_000 {
		t.Fatalf("sustained rate = %.0f B/s, want ~100000", rate)
	}
}

func TestLimiterRefillCap(t *testing.T) {
	l, clock := testLimiter(1_000_000, 8192)
	// A long idle period must not accumulate more than the burst.
	clock.t = clock.t.Add(time.Hour)
	l.WaitN(8192) // consumes the full burst without waiting
	if clock.slept != 0 {
		t.Fatalf("slept %v after idle", clock.slept)
	}
	l.WaitN(8192) // now must wait ~8.2ms at 1 MB/s
	if clock.slept <= 0 {
		t.Fatal("burst cap not enforced after idle")
	}
}

func TestLimiterDefaults(t *testing.T) {
	l := NewLimiter(0, 0)
	if l.Rate() != 1 {
		t.Fatalf("zero rate not floored: %d", l.Rate())
	}
	if l.burst < 4096 {
		t.Fatalf("burst not floored: %v", l.burst)
	}
}

// TestThrottledConnPacesWrites runs a real loopback connection at a tight
// rate and verifies wall-clock pacing end to end.
func TestThrottledConnPacesWrites(t *testing.T) {
	client, server := connPair(t, VariantNTCP)
	// 64 KB/s with the default 64 KiB burst: the burst covers the first
	// writes, then pacing kicks in.
	tc := Throttle(client, 64)
	if tc.Limiter().Rate() != 64*1024 {
		t.Fatalf("rate = %d", tc.Limiter().Rate())
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 6; i++ {
			if _, err := server.ReadMessage(); err != nil {
				return
			}
		}
	}()

	payload := make([]byte, 32*1024)
	start := time.Now()
	for i := 0; i < 6; i++ { // 192 KiB total, 64 KiB burst -> ~2s at 64 KB/s
		if err := tc.WriteMessage(payload); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	<-done
	if elapsed < 1500*time.Millisecond {
		t.Fatalf("6x32KiB at 64KB/s finished in %v; throttle not applied", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("throttle too aggressive: %v", elapsed)
	}
}
