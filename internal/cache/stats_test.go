package cache

import (
	"strings"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/obs"
)

// withRegistry enables a fresh registry for the test's duration and
// returns it, restoring whatever was enabled before.
func withRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	prev := obs.Active()
	r := obs.NewRegistry()
	obs.Enable(r)
	t.Cleanup(func() { obs.Enable(prev) })
	return r
}

func TestDayMemoCountsHitsMissesEvictions(t *testing.T) {
	r := withRegistry(t)
	m := DayMemo[int]{Cap: 2, Ring: "test_ring"}
	compute := func(day int) int { return day }

	m.Get(0, compute) // miss
	m.Get(0, compute) // hit
	m.Get(1, compute) // miss
	m.Get(2, compute) // miss + eviction of day 0
	m.Get(1, compute) // hit

	text := r.RenderText()
	for _, want := range []string{
		`i2p_cache_hits_total{ring="test_ring"} 2`,
		`i2p_cache_misses_total{ring="test_ring"} 3`,
		`i2p_cache_evictions_total{ring="test_ring"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
}

func TestDayMemoStatsFollowRegistrySwap(t *testing.T) {
	r1 := withRegistry(t)
	m := DayMemo[int]{Ring: "swap_ring"}
	m.Get(0, func(d int) int { return d })
	if !strings.Contains(r1.RenderText(), `i2p_cache_misses_total{ring="swap_ring"} 1`) {
		t.Fatalf("first registry missing the miss:\n%s", r1.RenderText())
	}

	r2 := obs.NewRegistry()
	obs.Enable(r2)
	m.Get(1, func(d int) int { return d })
	if !strings.Contains(r2.RenderText(), `i2p_cache_misses_total{ring="swap_ring"} 1`) {
		t.Fatalf("stats did not re-resolve onto the swapped registry:\n%s", r2.RenderText())
	}
}

func TestDayMemoDisabledIsInert(t *testing.T) {
	prev := obs.Active()
	obs.Enable(nil)
	t.Cleanup(func() { obs.Enable(prev) })
	var m DayMemo[int]
	if got := m.Get(3, func(d int) int { return d * 2 }); got != 6 {
		t.Fatalf("Get with observability disabled = %d, want 6", got)
	}
}

func TestDayMemoPeek(t *testing.T) {
	var m DayMemo[int]
	if _, ok := m.Peek(5); ok {
		t.Fatal("Peek found a never-computed day")
	}
	m.Get(5, func(d int) int { return 50 })
	v, ok := m.Peek(5)
	if !ok || v != 50 {
		t.Fatalf("Peek(5) = %d, %v; want 50, true", v, ok)
	}
	// Peek never inserts or computes.
	if _, ok := m.Peek(6); ok {
		t.Fatal("Peek(6) invented a value")
	}
	if m.Resident() != 1 {
		t.Fatalf("Peek changed residency: %d", m.Resident())
	}
}

func TestPreRegisterRingMaterializesAtZero(t *testing.T) {
	PreRegisterRing("eager_ring")
	r := withRegistry(t)
	text := r.RenderText()
	for _, want := range []string{
		`i2p_cache_hits_total{ring="eager_ring"} 0`,
		`i2p_cache_misses_total{ring="eager_ring"} 0`,
		`i2p_cache_evictions_total{ring="eager_ring"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
}
