// Package cache provides the bounded per-day memo the engines share: a
// lock-free-on-hit map of day -> value with FIFO-ring residency, the
// pattern sim.Observer.ObserveDay introduced for its draw memo. Values
// must be pure functions of (owner state, day) — eviction simply
// recomputes an identical value on the day's next visit, so a memo can
// never change a result, only its cost.
package cache

import (
	"sync"
	"sync/atomic"

	"github.com/i2pstudy/i2pstudy/internal/obs"
)

// DefaultDayMemoCap bounds a DayMemo whose Cap field is zero: a full
// 90-day study stays resident, while long-lived owners revisiting
// arbitrary days (enumeration sweeps, multi-horizon grids) stay at
// O(cap x value size) instead of retaining every day ever computed.
const DefaultDayMemoCap = 128

// DayMemo memoizes one value per day with bounded residency. The zero
// value is ready to use (Cap <= 0 selects DefaultDayMemoCap; set Cap
// before first use to override). Hits are lock-free on a sync.Map; the
// mutex guards only the FIFO eviction ring, so insertion-order eviction
// never contends with hits. Concurrent first callers of one day share a
// single compute through the entry's once. A DayMemo must not be copied
// after first use.
type DayMemo[T any] struct {
	// Cap bounds how many days stay resident (<= 0: DefaultDayMemoCap).
	Cap int

	// Ring names this memo's series in the i2p_cache_* metric families
	// ("observe_day", "victim_addrset", ...). Empty renders as
	// "unnamed"; set it with Cap, before first use.
	Ring string

	memo    sync.Map // int -> *dayMemoEntry[T]
	mu      sync.Mutex
	ring    []int // circular buffer of memoized days, len <= cap
	ringPos int

	// stats caches this memo's instrument handles per enabled registry;
	// nil/handles-nil while observability is disabled.
	stats atomic.Pointer[dayMemoStats]
}

// dayMemoEntry is one memoized day. The once gate lets concurrent first
// callers share a single compute without any memo-level lock during it;
// done flips after the compute so Peek can tell a finished value from an
// in-flight insertion.
type dayMemoEntry[T any] struct {
	once sync.Once
	done atomic.Bool
	v    T
}

func (e *dayMemoEntry[T]) resolve(day int, compute func(day int) T) T {
	e.once.Do(func() {
		e.v = compute(day)
		e.done.Store(true)
	})
	return e.v
}

// dayMemoStats is one memo's resolved instrument handles. A zero value
// (all counters nil) is the disabled mode.
type dayMemoStats struct {
	reg                     *obs.Registry
	hits, misses, evictions *obs.Counter
}

var disabledDayMemoStats = &dayMemoStats{}

const (
	hitsFamily      = "i2p_cache_hits_total"
	missesFamily    = "i2p_cache_misses_total"
	evictionsFamily = "i2p_cache_evictions_total"

	hitsHelp      = "DayMemo lookups served from a resident day, by ring."
	missesHelp    = "DayMemo lookups that inserted (computed) a day, by ring."
	evictionsHelp = "DayMemo days evicted by FIFO residency pressure, by ring."
)

// getStats resolves the memo's counters against the enabled registry,
// caching per registry identity. Disabled cost: one atomic load and a
// nil check.
func (m *DayMemo[T]) getStats() *dayMemoStats {
	r := obs.Active()
	if r == nil {
		return disabledDayMemoStats
	}
	s := m.stats.Load()
	if s != nil && s.reg == r {
		return s
	}
	ring := m.Ring
	if ring == "" {
		ring = "unnamed"
	}
	s = &dayMemoStats{
		reg:       r,
		hits:      r.CounterVec(hitsFamily, hitsHelp, "ring").With(ring),
		misses:    r.CounterVec(missesFamily, missesHelp, "ring").With(ring),
		evictions: r.CounterVec(evictionsFamily, evictionsHelp, "ring").With(ring),
	}
	m.stats.Store(s)
	return s
}

// PreRegisterRing eagerly materializes the named ring's series in every
// enabled registry, so a scrape sees the ring at zero before its memo is
// first exercised. Owner packages call it from init for each ring name
// they assign.
func PreRegisterRing(ring string) {
	obs.OnEnable(func(r *obs.Registry) {
		r.CounterVec(hitsFamily, hitsHelp, "ring").With(ring)
		r.CounterVec(missesFamily, missesHelp, "ring").With(ring)
		r.CounterVec(evictionsFamily, evictionsHelp, "ring").With(ring)
	})
}

// Get returns the day's value, computing it at most once while the day
// stays resident. compute must be pure in (owner state, day); the result
// is shared across callers and must be treated as read-only.
func (m *DayMemo[T]) Get(day int, compute func(day int) T) T {
	st := m.getStats()
	// Hit path: lock-free, so callers hammering resident days (sweep
	// rows revisiting one victim day per (fleet, window)) never serialize.
	if v, ok := m.memo.Load(day); ok {
		st.hits.Inc()
		return v.(*dayMemoEntry[T]).resolve(day, compute)
	}
	e := &dayMemoEntry[T]{}
	if v, loaded := m.memo.LoadOrStore(day, e); loaded {
		st.hits.Inc()
		e = v.(*dayMemoEntry[T])
	} else {
		st.misses.Inc()
		// This goroutine inserted the entry: record the day in the ring,
		// evicting insertion-order when full. Evicting an entry another
		// goroutine still holds is benign — its compute completes and is
		// simply redone on the day's next visit.
		m.mu.Lock()
		cap := m.Cap
		if cap <= 0 {
			cap = DefaultDayMemoCap
		}
		if len(m.ring) < cap {
			m.ring = append(m.ring, day)
		} else {
			m.memo.Delete(m.ring[m.ringPos])
			m.ring[m.ringPos] = day
			m.ringPos = (m.ringPos + 1) % cap
			st.evictions.Inc()
		}
		m.mu.Unlock()
	}
	// The compute runs outside the ring lock so distinct days never
	// serialize; concurrent callers of one day share the entry's once.
	return e.resolve(day, compute)
}

// Peek returns the day's value if it is resident and fully computed,
// without computing, counting, or touching residency. Diagnostics and
// tests only — engines use Get.
func (m *DayMemo[T]) Peek(day int) (T, bool) {
	if v, ok := m.memo.Load(day); ok {
		e := v.(*dayMemoEntry[T])
		if e.done.Load() {
			return e.v, true
		}
	}
	var zero T
	return zero, false
}

// Resident reports how many days are currently memoized (ring length).
func (m *DayMemo[T]) Resident() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.ring)
}
