// Package cache provides the bounded per-day memo the engines share: a
// lock-free-on-hit map of day -> value with FIFO-ring residency, the
// pattern sim.Observer.ObserveDay introduced for its draw memo. Values
// must be pure functions of (owner state, day) — eviction simply
// recomputes an identical value on the day's next visit, so a memo can
// never change a result, only its cost.
package cache

import "sync"

// DefaultDayMemoCap bounds a DayMemo whose Cap field is zero: a full
// 90-day study stays resident, while long-lived owners revisiting
// arbitrary days (enumeration sweeps, multi-horizon grids) stay at
// O(cap x value size) instead of retaining every day ever computed.
const DefaultDayMemoCap = 128

// DayMemo memoizes one value per day with bounded residency. The zero
// value is ready to use (Cap <= 0 selects DefaultDayMemoCap; set Cap
// before first use to override). Hits are lock-free on a sync.Map; the
// mutex guards only the FIFO eviction ring, so insertion-order eviction
// never contends with hits. Concurrent first callers of one day share a
// single compute through the entry's once. A DayMemo must not be copied
// after first use.
type DayMemo[T any] struct {
	// Cap bounds how many days stay resident (<= 0: DefaultDayMemoCap).
	Cap int

	memo    sync.Map // int -> *dayMemoEntry[T]
	mu      sync.Mutex
	ring    []int // circular buffer of memoized days, len <= cap
	ringPos int
}

// dayMemoEntry is one memoized day. The once gate lets concurrent first
// callers share a single compute without any memo-level lock during it.
type dayMemoEntry[T any] struct {
	once sync.Once
	v    T
}

// Get returns the day's value, computing it at most once while the day
// stays resident. compute must be pure in (owner state, day); the result
// is shared across callers and must be treated as read-only.
func (m *DayMemo[T]) Get(day int, compute func(day int) T) T {
	// Hit path: lock-free, so callers hammering resident days (sweep
	// rows revisiting one victim day per (fleet, window)) never serialize.
	if v, ok := m.memo.Load(day); ok {
		e := v.(*dayMemoEntry[T])
		e.once.Do(func() { e.v = compute(day) })
		return e.v
	}
	e := &dayMemoEntry[T]{}
	if v, loaded := m.memo.LoadOrStore(day, e); loaded {
		e = v.(*dayMemoEntry[T])
	} else {
		// This goroutine inserted the entry: record the day in the ring,
		// evicting insertion-order when full. Evicting an entry another
		// goroutine still holds is benign — its compute completes and is
		// simply redone on the day's next visit.
		m.mu.Lock()
		cap := m.Cap
		if cap <= 0 {
			cap = DefaultDayMemoCap
		}
		if len(m.ring) < cap {
			m.ring = append(m.ring, day)
		} else {
			m.memo.Delete(m.ring[m.ringPos])
			m.ring[m.ringPos] = day
			m.ringPos = (m.ringPos + 1) % cap
		}
		m.mu.Unlock()
	}
	// The compute runs outside the ring lock so distinct days never
	// serialize; concurrent callers of one day share the entry's once.
	e.once.Do(func() { e.v = compute(day) })
	return e.v
}

// Resident reports how many days are currently memoized (ring length).
func (m *DayMemo[T]) Resident() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.ring)
}
