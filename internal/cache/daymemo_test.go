package cache

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestDayMemoComputesOncePerResidentDay(t *testing.T) {
	var m DayMemo[int]
	var computes atomic.Int32
	compute := func(day int) int {
		computes.Add(1)
		return day * 10
	}
	for i := 0; i < 3; i++ {
		for day := 0; day < 4; day++ {
			if got := m.Get(day, compute); got != day*10 {
				t.Fatalf("Get(%d) = %d, want %d", day, got, day*10)
			}
		}
	}
	if got := computes.Load(); got != 4 {
		t.Fatalf("computed %d times, want 4 (once per day)", got)
	}
	if m.Resident() != 4 {
		t.Fatalf("resident = %d, want 4", m.Resident())
	}
}

func TestDayMemoEvictsFIFOAndRecomputesIdentically(t *testing.T) {
	m := DayMemo[int]{Cap: 2}
	var computes atomic.Int32
	compute := func(day int) int {
		computes.Add(1)
		return day * 10
	}
	m.Get(0, compute) // ring: [0]
	m.Get(1, compute) // ring: [0 1]
	m.Get(2, compute) // evicts 0, ring: [2 1]
	if m.Resident() != 2 {
		t.Fatalf("resident = %d, want cap 2", m.Resident())
	}
	if got := m.Get(1, compute); got != 10 {
		t.Fatalf("resident day recomputed wrong: %d", got)
	}
	if computes.Load() != 3 {
		t.Fatalf("computed %d times before revisit, want 3", computes.Load())
	}
	// Day 0 was evicted: revisiting recomputes the identical value and
	// evicts the next FIFO slot (1).
	if got := m.Get(0, compute); got != 0 {
		t.Fatalf("evicted day recomputed wrong: %d", got)
	}
	if computes.Load() != 4 {
		t.Fatalf("computed %d times after revisit, want 4", computes.Load())
	}
	m.Get(2, compute) // still resident
	if computes.Load() != 4 {
		t.Fatal("day 2 should have stayed resident across the eviction")
	}
}

// TestDayMemoConcurrentFirstCallersShareOneCompute: many goroutines
// hitting one cold day observe exactly one compute (the entry's once),
// and all see the same value.
func TestDayMemoConcurrentFirstCallersShareOneCompute(t *testing.T) {
	var m DayMemo[[]int]
	var computes atomic.Int32
	compute := func(day int) []int {
		computes.Add(1)
		return []int{day, day + 1}
	}
	const goroutines = 16
	results := make([][]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[g] = m.Get(7, compute)
		}()
	}
	wg.Wait()
	if computes.Load() != 1 {
		t.Fatalf("computed %d times, want 1", computes.Load())
	}
	for g := 1; g < goroutines; g++ {
		if &results[g][0] != &results[0][0] {
			t.Fatal("concurrent callers received different slices")
		}
	}
}
