package distrib

import (
	"fmt"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/reseed"
)

// Distributor is one rdsys-style distribution frontend: a request model
// (which resources a requester receives, and how the mapping rotates) and
// a leak profile (how expensive it is for a censor to mint a requester
// identity on this channel). Implementations must be stateless: Handout
// must be deterministic in (partition, requester, day) and safe for
// unbounded concurrent use — sweep cells share distributors.
type Distributor interface {
	// Name labels the frontend and places it on the backend hashring.
	Name() string
	// Handout returns the resources the frontend serves to requester id on
	// the given study day. Handouts are sticky per requester and rotate
	// slowly (the anti-enumeration behaviour of rdsys and the reseed
	// servers); the error path exists for frontends that round-trip real
	// encodings (manual-reseed bundles).
	Handout(part *Partition, id uint64, day int) ([]Resource, error)
	// HandoutKey returns the ring position Handout would serve id from on
	// day. Equal keys imply equal handouts, so callers may cache a
	// handout until the requester's key changes — sparing a re-request's
	// work (for manual-reseed, a whole bundle round trip) when the
	// rotation bucket hasn't moved.
	HandoutKey(id uint64, day int) uint64
	// IdentityCost is the censor's relative cost to mint one fresh
	// requester identity: 1.0 = one rotating IP address. Enumerator
	// budgets divide by it, so high-cost channels leak slowly.
	IdentityCost() float64
}

// ringDist implements the shared rdsys request model: a requester's
// identity hashes to a ring position and receives the next handout
// resources clockwise; every rotationDays the position shifts, so
// long-lived users migrate to fresh bridges and crawlers cannot milk one
// identity forever.
type ringDist struct {
	name         string
	handout      int
	rotationDays int
	identityCost float64
}

func (d *ringDist) Name() string          { return d.name }
func (d *ringDist) IdentityCost() float64 { return d.identityCost }

// HandoutKey is the deterministic ring position for (requester, day).
func (d *ringDist) HandoutKey(id uint64, day int) uint64 {
	bucket := uint64(0)
	if d.rotationDays > 0 {
		bucket = uint64(day / d.rotationDays)
	}
	return mix(keyOfString(d.name), id, bucket)
}

func (d *ringDist) Handout(part *Partition, id uint64, day int) ([]Resource, error) {
	return part.GetMany(d.HandoutKey(id, day), d.handout), nil
}

// NewHTTPS returns the HTTPS frontend: cheap to query (an IP address is
// one identity), weekly rotation — the BridgeDB/rdsys web distributor.
func NewHTTPS() Distributor {
	return &ringDist{name: "https", handout: 3, rotationDays: 7, identityCost: 1}
}

// NewEmail returns the email frontend: requesters are mail accounts at
// providers with priced signup friction.
func NewEmail() Distributor {
	return &ringDist{name: "email", handout: 3, rotationDays: 7, identityCost: 8}
}

// NewSocial returns the social/moat frontend: identities are vouched
// accounts in a trust graph, expensive to fabricate and slow to rotate.
func NewSocial() Distributor {
	return &ringDist{name: "social", handout: 2, rotationDays: 14, identityCost: 40}
}

// manualReseed is the out-of-band frontend of Section 6.1: a trusted
// contact exports an i2pseeds.su3 bundle and hands it over outside the
// network. Handouts are permanently sticky and the bundle is a real
// reseed-codec round trip, so whatever the codec would reject can never
// be distributed.
type manualReseed struct {
	ringDist
	signer string
}

// NewManualReseed returns the manual-reseed frontend backed by
// internal/reseed's signed seed bundles.
func NewManualReseed() Distributor {
	return &manualReseed{
		ringDist: ringDist{name: "manual-reseed", handout: 5, rotationDays: 0, identityCost: 500},
		signer:   "trusted-friend",
	}
}

func (d *manualReseed) Handout(part *Partition, id uint64, day int) ([]Resource, error) {
	sel := part.GetMany(d.HandoutKey(id, day), d.handout)
	if len(sel) == 0 {
		return nil, nil
	}
	records := make([]*netdb.RouterInfo, 0, len(sel))
	for _, r := range sel {
		records = append(records, r.Record)
	}
	data, err := reseed.CreateBundle(records, d.signer, part.When())
	if err != nil {
		return nil, fmt.Errorf("distrib: manual-reseed bundle: %w", err)
	}
	bundle, err := reseed.ParseBundle(data)
	if err != nil {
		return nil, fmt.Errorf("distrib: manual-reseed bundle: %w", err)
	}
	out := make([]Resource, 0, len(bundle.Records))
	for _, ri := range bundle.Records {
		r, ok := part.byRecordIdentity(ri.Identity)
		if !ok {
			return nil, fmt.Errorf("distrib: bundle record %s not in partition", ri.Identity.Short())
		}
		out = append(out, r)
	}
	return out, nil
}

// DefaultDistributors returns the four frontends of the pipeline in
// canonical order.
func DefaultDistributors() []Distributor {
	return []Distributor{NewHTTPS(), NewEmail(), NewSocial(), NewManualReseed()}
}
