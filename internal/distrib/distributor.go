package distrib

import (
	"fmt"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/reseed"
)

// Grant is a frontend's decision for one request: the ring position the
// requester is served from and how many resources the handout carries.
// The mechanism that turns a grant into bridges (the clockwise arc
// walk, manual-reseed's bundle round trip) lives in HandoutAPI.Serve —
// frontends only decide policy.
type Grant struct {
	// Key is the ring position to serve from.
	Key uint64
	// Count is the handout size.
	Count int
}

// Distributor is one rdsys-style distribution frontend: a request model
// (which ring arc a requester is granted, and how the mapping rotates)
// and a leak profile (how expensive it is for a censor to mint a
// requester identity on this channel). Implementations must be
// stateless: Grant must be pure in (id, day, attempt) and safe for
// unbounded concurrent use — sweep cells and the resident service share
// distributors. Handouts are resolved exclusively through
// HandoutAPI.Serve, the one handout code path the determinism harness
// covers.
type Distributor interface {
	// Name labels the frontend and places it on the backend hashring.
	Name() string
	// Grant resolves a request to a handout grant. ok=false means the
	// frontend serves this identity nothing (the trust channel's answer
	// to identities its graph never minted). Grants are sticky per
	// requester and rotate slowly (the anti-enumeration behaviour of
	// rdsys and the reseed servers). The attempt offset rotates
	// rate-limited re-requests to a fresh arc on frontends that support
	// it; stateless web frontends ignore it — however often a requester
	// retries, time alone moves their arc.
	Grant(id uint64, day, attempt int) (g Grant, ok bool)
	// IdentityCost is the censor's relative cost to mint one fresh
	// requester identity: 1.0 = one rotating IP address. Enumerator
	// budgets divide by it, so high-cost channels leak slowly.
	IdentityCost() float64
}

// ringDist implements the shared rdsys request model: a requester's
// identity hashes to a ring position and is granted the next handout
// resources clockwise; every rotationDays the position shifts, so
// long-lived users migrate to fresh bridges and crawlers cannot milk one
// identity forever.
type ringDist struct {
	name         string
	handout      int
	rotationDays int
	identityCost float64
}

func (d *ringDist) Name() string          { return d.name }
func (d *ringDist) IdentityCost() float64 { return d.identityCost }

// Grant implements Distributor: the deterministic ring position for
// (requester, day). The attempt offset is ignored — web-style frontends
// rotate by time, never by retry.
func (d *ringDist) Grant(id uint64, day, _ int) (Grant, bool) {
	bucket := uint64(0)
	if d.rotationDays > 0 {
		bucket = uint64(day / d.rotationDays)
	}
	return Grant{Key: mix(keyOfString(d.name), id, bucket), Count: d.handout}, true
}

// NewHTTPS returns the HTTPS frontend: cheap to query (an IP address is
// one identity), weekly rotation — the BridgeDB/rdsys web distributor.
func NewHTTPS() Distributor {
	return &ringDist{name: "https", handout: 3, rotationDays: 7, identityCost: 1}
}

// NewEmail returns the email frontend: requesters are mail accounts at
// providers with priced signup friction.
func NewEmail() Distributor {
	return &ringDist{name: "email", handout: 3, rotationDays: 7, identityCost: 8}
}

// NewSocial returns the social/moat frontend: identities are vouched
// accounts in a trust graph, expensive to fabricate and slow to rotate.
func NewSocial() Distributor {
	return &ringDist{name: "social", handout: 2, rotationDays: 14, identityCost: 40}
}

// manualReseed is the out-of-band frontend of Section 6.1: a trusted
// contact exports an i2pseeds.su3 bundle and hands it over outside the
// network. Grants are permanently sticky and the handout is a real
// reseed-codec round trip, so whatever the codec would reject can never
// be distributed.
type manualReseed struct {
	ringDist
	signer string
}

// NewManualReseed returns the manual-reseed frontend backed by
// internal/reseed's signed seed bundles.
func NewManualReseed() Distributor {
	return &manualReseed{
		ringDist: ringDist{name: "manual-reseed", handout: 5, rotationDays: 0, identityCost: 500},
		signer:   "trusted-friend",
	}
}

// roundTrip implements the HandoutAPI encoding hook: the granted arc is
// encoded into a signed bundle and decoded back, so the handout is
// exactly what the codec would deliver out of band.
func (d *manualReseed) roundTrip(part *Partition, sel []Resource) ([]Resource, error) {
	if len(sel) == 0 {
		return nil, nil
	}
	records := make([]*netdb.RouterInfo, 0, len(sel))
	for _, r := range sel {
		records = append(records, r.Record)
	}
	data, err := reseed.CreateBundle(records, d.signer, part.When())
	if err != nil {
		return nil, fmt.Errorf("distrib: manual-reseed bundle: %w", err)
	}
	bundle, err := reseed.ParseBundle(data)
	if err != nil {
		return nil, fmt.Errorf("distrib: manual-reseed bundle: %w", err)
	}
	out := make([]Resource, 0, len(bundle.Records))
	for _, ri := range bundle.Records {
		r, ok := part.byRecordIdentity(ri.Identity)
		if !ok {
			return nil, fmt.Errorf("distrib: bundle record %s not in partition", ri.Identity.Short())
		}
		out = append(out, r)
	}
	return out, nil
}

// DefaultDistributors returns the four frontends of the pipeline in
// canonical order.
func DefaultDistributors() []Distributor {
	return []Distributor{NewHTTPS(), NewEmail(), NewSocial(), NewManualReseed()}
}
