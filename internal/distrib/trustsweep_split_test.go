package distrib

import (
	"context"
	"reflect"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/measure/enginetest"
)

// TestTrustSweepSplitRowsMatchUnsplit forces the trust grid's rows into
// segments and proves the seam: a later segment's fresh trustState
// replays the prefix via advanceTo — exactly Reference's from-scratch
// path — so results are byte-identical to the unsplit serial run at
// every enginetest ladder width. Production plans never cut trust rows
// (the seam costs the whole prefix); the hook exists precisely so this
// equivalence is tested rather than assumed.
func TestTrustSweepSplitRowsMatchUnsplit(t *testing.T) {
	n := network(t)
	ctx := context.Background()
	ref, err := NewTrustSweep(n, testTrustConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rows := len(ref.Cfg.Enumerators) * len(ref.Cfg.Distributors)

	runSplit := func(t testing.TB, workers int) any {
		sw, err := NewTrustSweep(n, testTrustConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		sw.splitBudget = 3 // unit costs: 11-day rows cut into 3-cell segments
		if plan := sw.rowPlan(sw.Cells()); len(plan) <= rows {
			t.Fatalf("budget 3 left the plan unsplit (%d rows)", len(plan))
		}
		res, err := sw.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	enginetest.Golden(t, []enginetest.Case{{Name: "forced-split", Run: runSplit}})
	if got := runSplit(t, 1); !reflect.DeepEqual(got, want) {
		t.Fatal("split serial results differ from the unsplit reference")
	}
}

// TestTrustSweepProductionPlanStaysWhole: the real cost model declares
// a trust row's seam as expensive as its prefix, so PlanRowsCost must
// never cut one no matter the pool width — splitting would only pay
// the replay twice.
func TestTrustSweepProductionPlanStaysWhole(t *testing.T) {
	n := network(t)
	for _, workers := range []int{1, 4, 0} {
		sw, err := NewTrustSweep(n, testTrustConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		rows := len(sw.Cfg.Enumerators) * len(sw.Cfg.Distributors)
		if plan := sw.rowPlan(sw.Cells()); len(plan) != rows {
			t.Fatalf("workers=%d: production plan has %d rows, want %d unsplit",
				workers, len(plan), rows)
		}
	}
}
