package distrib

import (
	"context"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/measure/enginetest"
)

// TestCrashResume is the distrib engines' crash-safety golden, stated
// through the shared harness: a run killed by an injected fault and
// resumed from its checkpoint directory yields results byte-identical
// to an uninterrupted run, at every ladder width, with obs enabled. The
// arms-race sweep checkpoints at cell granularity; the trust sweep at
// row granularity (a partial trust row would have to replay anyway).
func TestCrashResume(t *testing.T) {
	n := network(t)
	enginetest.CrashResume(t, 2018, []enginetest.CrashCase{
		{
			Name:  "arms-race",
			Point: "distrib.sweep.cell",
			Run: func(t testing.TB, dir string, workers int) (any, error) {
				sw, err := NewSweep(n, testSweepConfig(workers))
				if err != nil {
					t.Fatal(err)
				}
				res, err := sw.RunCheckpointed(context.Background(), dir)
				if err != nil {
					return nil, err
				}
				return res, nil
			},
		},
		{
			Name:  "trust-rows",
			Point: "distrib.trustsweep.cell",
			Run: func(t testing.TB, dir string, workers int) (any, error) {
				sw, err := NewTrustSweep(n, testTrustConfig(workers))
				if err != nil {
					t.Fatal(err)
				}
				res, err := sw.RunCheckpointed(context.Background(), dir)
				if err != nil {
					return nil, err
				}
				return res, nil
			},
		},
	})
}
