package distrib

import (
	"context"
	"reflect"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/censor"
)

// TestTrustGraphBuild: the invitation graph is deterministic in its
// config and structurally sound — parent/child links agree, roots and
// groups follow the invitation chain, invitees join one level below
// their inviter, and nobody exceeds their invitation budget or invites
// below InviteLevel.
func TestTrustGraphBuild(t *testing.T) {
	cfg := TrustGraphConfig{Users: 150, Seeds: 3, Seed: 11}
	g := NewTrustGraph(cfg)
	if g2 := NewTrustGraph(cfg); !reflect.DeepEqual(g.Users(), g2.Users()) {
		t.Fatal("graph build is not deterministic")
	}
	if g.Len() == 0 || g.Len() > 150 {
		t.Fatalf("population %d outside (0, 150]", g.Len())
	}
	dcfg := g.Config()
	for i, u := range g.Users() {
		if u.Index != i {
			t.Fatalf("user %d carries index %d", i, u.Index)
		}
		if got, ok := g.UserByID(u.ID); !ok || got.Index != i {
			t.Fatalf("user %d not resolvable by ID", i)
		}
		if u.Parent < 0 {
			if u.Root != i || u.Group != i || u.Depth != 0 || u.Level != dcfg.MaxLevel {
				t.Fatalf("seed %d malformed: %+v", i, u)
			}
			continue
		}
		p := g.Users()[u.Parent]
		if p.Level < dcfg.InviteLevel {
			t.Fatalf("user %d invited by level-%d parent (InviteLevel %d)", i, p.Level, dcfg.InviteLevel)
		}
		if want := p.Level - 1; u.Level != want && !(want < 0 && u.Level == 0) {
			t.Fatalf("user %d level %d, inviter level %d", i, u.Level, p.Level)
		}
		if u.Root != p.Root || u.Depth != p.Depth+1 {
			t.Fatalf("user %d chain broken: %+v under %+v", i, u, p)
		}
		if want := p.Group; u.Depth == 1 {
			if u.Group != u.Index {
				t.Fatalf("depth-1 user %d should anchor its own group", i)
			}
		} else if u.Group != want {
			t.Fatalf("user %d group %d, parent group %d", i, u.Group, want)
		}
		found := false
		for _, c := range p.Children {
			if c == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("user %d missing from inviter's children", i)
		}
	}
	for i, u := range g.Users() {
		if len(u.Children) > dcfg.InviteBudget {
			t.Fatalf("user %d issued %d invitations, budget %d", i, len(u.Children), dcfg.InviteBudget)
		}
	}
	if _, ok := g.UserByID(0xDEADBEEF); ok {
		t.Fatal("foreign identity resolved to a user")
	}
}

// TestTrustGraphSaturation: growth is invitation-bound — with depth
// capped by InviteLevel and budgets exhausted, the admitted population
// saturates below an oversized target. That bound is the enumeration
// resistance the model exists for.
func TestTrustGraphSaturation(t *testing.T) {
	g := NewTrustGraph(TrustGraphConfig{Users: 100000, Seeds: 2, MaxLevel: 3, InviteLevel: 2, InviteBudget: 2, Seed: 5})
	// Capacity: 2 seeds at level 3, children at 2 (can invite), then 1
	// (cannot): 2 * (1 + 2 + 4) = 14.
	if g.Len() != 14 {
		t.Fatalf("saturated population %d, want 14", g.Len())
	}
}

func TestTrustGraphRequestLimit(t *testing.T) {
	g := NewTrustGraph(TrustGraphConfig{Users: 10, Seed: 1})
	if got := g.RequestLimit(0); got != 1 {
		t.Fatalf("RequestLimit(0) = %d, want 1", got)
	}
	if got := g.RequestLimit(4); got != 5 {
		t.Fatalf("RequestLimit(4) = %d, want 5", got)
	}
	if got := g.RequestLimit(-3); got != 1 {
		t.Fatalf("RequestLimit(-3) = %d, want 1", got)
	}
}

// TestTrustSocialHandout: graph users receive their group's handout —
// branch-mates share bridges (distribution along graph edges) — while
// identities the graph never minted receive nothing.
func TestTrustSocialHandout(t *testing.T) {
	ts := NewTrustSocial(TrustSocialConfig{Graph: TrustGraphConfig{Users: 120, Seed: 9}})
	b := testBackend(t, []Distributor{NewHTTPS(), ts})
	part := b.Partition(ts.Name())
	if part == nil || part.Len() == 0 {
		t.Fatal("trust-social received no partition")
	}
	api, err := NewHandoutAPI(b, []Distributor{NewHTTPS(), ts})
	if err != nil {
		t.Fatal(err)
	}
	serve := func(id uint64, day, attempt int) []Resource {
		t.Helper()
		h, err := api.Serve(Request{Dist: ts.Name(), ID: id, Day: day, Attempt: attempt})
		if err != nil {
			t.Fatal(err)
		}
		return h.Resources
	}

	// Unknown identities: nothing.
	if hr := serve(0xBADBADBAD, 10, 0); hr != nil {
		t.Fatalf("unknown identity handout = %v; want nothing", hr)
	}

	g := ts.Graph()
	var a, bb TrustUser
	found := false
	for _, u := range g.Users() {
		if u.Depth < 1 {
			continue
		}
		for _, v := range g.Users() {
			if v.Index != u.Index && v.Group == u.Group {
				a, bb, found = u, v, true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("graph draw produced no shared group; adjust the seed")
	}
	ha := serve(a.ID, 10, 0)
	if len(ha) == 0 {
		t.Fatalf("user handout = %v", ha)
	}
	hb := serve(bb.ID, 10, 0)
	if !reflect.DeepEqual(ha, hb) {
		t.Fatal("group-mates received different handouts")
	}
	// Attempts rotate to a fresh arc without moving branch-mates.
	if h1 := serve(a.ID, 10, 1); part.Len() > ts.Config().Handout && reflect.DeepEqual(h1, ha) {
		t.Fatal("re-request attempt did not rotate the arc")
	}
}

// TestTrustSocialOnRegularSweep: the trust-social frontend rides the
// plain cell-level distrib.Sweep as an ordinary stateless Distributor,
// and the crawler — minting identities the graph never issued —
// enumerates exactly nothing while the insider still leaks.
func TestTrustSocialOnRegularSweep(t *testing.T) {
	n := network(t)
	ts := NewTrustSocial(TrustSocialConfig{Graph: TrustGraphConfig{Users: 150, Seed: 3}})
	sw, err := NewSweep(n, SweepConfig{
		Strategy:     censor.BridgeCombined,
		Distributors: []Distributor{NewHTTPS(), ts},
		Enumerators:  []Enumerator{{Kind: Crawler, Budget: 200}},
		Days:         []int{10},
		HorizonDays:  6,
		Users:        30,
		SeedBase:     77,
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Distributor != ts.Name() {
			continue
		}
		if got := r.Enumerated[len(r.Enumerated)-1]; got != 0 {
			t.Errorf("crawler enumerated %.2f of the trust-social partition; uninvited identities must get nothing", got)
		}
	}
}
