package distrib

import (
	"context"
	"fmt"

	"github.com/i2pstudy/i2pstudy/internal/checkpoint"
	"github.com/i2pstudy/i2pstudy/internal/faults"
	"github.com/i2pstudy/i2pstudy/internal/measure"
)

// Checkpoint-format versions; bump when a result encoding or unit
// keying changes.
const (
	sweepVersion      = 1
	trustSweepVersion = 1
)

// hashEnumerator folds an enumerator's coordinates — the same fields
// cell/row seeds derive from.
func hashEnumerator(h *checkpoint.Hasher, e Enumerator) {
	h.Uint64(uint64(e.Kind))
	h.Float64(e.Budget)
	h.Float64(e.InsiderFrac)
}

// checkpointManifest identifies this arms-race sweep for resume
// purposes: network shape plus every grid axis and pool knob. Workers
// is excluded — a sweep may resume at any width.
func (s *Sweep) checkpointManifest() checkpoint.Manifest {
	h := checkpoint.NewHasher()
	measure.HashNetwork(h, s.Net)
	h.Int(int(s.Cfg.Strategy))
	h.Int(len(s.Cfg.Distributors))
	for _, d := range s.Cfg.Distributors {
		h.String(d.Name())
		h.Float64(d.IdentityCost())
	}
	h.Int(len(s.Cfg.Enumerators))
	for _, e := range s.Cfg.Enumerators {
		hashEnumerator(h, e)
	}
	h.Int(len(s.Cfg.Days))
	for _, d := range s.Cfg.Days {
		h.Int(d)
	}
	h.Int(s.Cfg.HorizonDays)
	h.Int(s.Cfg.Users)
	h.Int(s.Cfg.IntroducersPerBridge)
	h.Int(s.Cfg.MaxResources)
	return checkpoint.Manifest{
		Engine:     "distrib.Sweep",
		Version:    sweepVersion,
		ConfigHash: h.Sum(),
		Seed:       s.Cfg.SeedBase,
	}
}

// cellKey names the checkpoint unit holding one completed cell. Cells
// checkpoint individually — they carry no rolling state, so the cell is
// the natural atom (and the grid's coordinates are manifest-hashed, so
// index keys are stable).
func cellKey(i int) string { return fmt.Sprintf("cell-%05d", i) }

// RunCheckpointed is Run with crash safety: when dir is non-empty,
// every completed cell spills its CellResult to a checkpoint.Store
// there, and a rerun over the same directory loads finished cells
// instead of re-simulating their arms race. Resuming against state from
// a different sweep fails with a *checkpoint.MismatchError. Interrupted
// or not, the returned slice is byte-identical to an uninterrupted Run
// at any Workers value.
func (s *Sweep) RunCheckpointed(ctx context.Context, dir string) ([]CellResult, error) {
	cells := s.Cells()
	results := make([]CellResult, len(cells))

	var store *checkpoint.Store
	done := make([]bool, len(cells))
	if dir != "" {
		var err error
		store, err = checkpoint.Open(dir, s.checkpointManifest())
		if err != nil {
			return nil, err
		}
		for i := range cells {
			ok, err := store.LoadJSON(cellKey(i), &results[i])
			if err != nil {
				return nil, err
			}
			done[i] = ok
		}
	}

	err := measure.FanOut(ctx, len(cells), s.Cfg.Workers, func(i int) error {
		if done[i] {
			return nil // resumed cell: result already loaded
		}
		res, err := s.runCell(cells[i])
		if err != nil {
			return err
		}
		results[i] = res
		if store != nil {
			if err := store.SaveJSON(cellKey(i), res); err != nil {
				return err
			}
		}
		return faults.Hit("distrib.sweep.cell")
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// checkpointManifest identifies this trust sweep for resume purposes.
// Workers is excluded — a sweep may resume at any width.
func (s *TrustSweep) checkpointManifest() checkpoint.Manifest {
	h := checkpoint.NewHasher()
	measure.HashNetwork(h, s.Net)
	h.Int(int(s.Cfg.Strategy))
	h.Int(len(s.Cfg.Distributors))
	for _, d := range s.Cfg.Distributors {
		h.String(d.Name())
		h.Float64(d.IdentityCost())
		h.Int(d.Graph().Len())
	}
	h.Int(len(s.Cfg.Enumerators))
	for _, e := range s.Cfg.Enumerators {
		hashEnumerator(h, e)
	}
	h.Int(s.Cfg.Day)
	h.Int(s.Cfg.HorizonDays)
	h.Int(s.Cfg.IntroducersPerBridge)
	h.Int(s.Cfg.MaxResources)
	return checkpoint.Manifest{
		Engine:     "distrib.TrustSweep",
		Version:    trustSweepVersion,
		ConfigHash: h.Sum(),
		Seed:       s.Cfg.SeedBase,
	}
}

// trustRowKey names the checkpoint unit holding one completed
// (distributor, enumerator) row — the whole horizon in day order. Rows
// are the trust grid's atom: a row's day h state is day h-1's plus one
// step, so a partial row is worthless for resume (the replay would have
// to run anyway) while a complete row skips its entire simulation.
func trustRowKey(row int) string { return fmt.Sprintf("row-%03d", row) }

// RunCheckpointed is Run with crash safety: when dir is non-empty,
// every completed (distributor, enumerator) row spills its results to a
// checkpoint.Store there, and a rerun over the same directory loads
// finished rows instead of replaying them — skipped rows never even
// build their trustState. Resuming against state from a different sweep
// fails with a *checkpoint.MismatchError. Interrupted or not, the
// returned slice is byte-identical to an uninterrupted Run at any
// Workers value.
func (s *TrustSweep) RunCheckpointed(ctx context.Context, dir string) ([]TrustCellResult, error) {
	cells := s.Cells()
	rows := len(s.Cfg.Enumerators) * len(s.Cfg.Distributors)
	results := make([]TrustCellResult, len(cells))

	var store *checkpoint.Store
	done := make([]bool, rows)
	if dir != "" {
		var err error
		store, err = checkpoint.Open(dir, s.checkpointManifest())
		if err != nil {
			return nil, err
		}
		for r := 0; r < rows; r++ {
			var saved []TrustCellResult
			ok, err := store.LoadJSON(trustRowKey(r), &saved)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			if len(saved) != s.Cfg.HorizonDays+1 {
				return nil, fmt.Errorf("distrib: checkpoint row %d has %d cells, grid expects %d",
					r, len(saved), s.Cfg.HorizonDays+1)
			}
			for j, res := range saved {
				results[r+j*rows] = res
			}
			done[r] = true
		}
	}

	counts := make([]int, rows)
	for i := range cells {
		if !done[i%rows] {
			counts[i%rows]++
		}
	}
	comp := measure.NewCompletion(counts)

	plan := s.rowPlan(cells)
	states := make([]*trustState, len(plan))
	err := measure.FanRows(ctx, plan, s.Cfg.Workers, func(planRow, i int) error {
		c := cells[i]
		row := i % rows
		if done[row] {
			return nil // resumed row: results already loaded, no state built
		}
		if states[planRow] == nil {
			states[planRow] = s.newTrustState(c.Dist, c.Enum)
		}
		states[planRow].advanceTo(c.Day)
		results[i] = states[planRow].result(c)
		if comp.Done(row) && store != nil {
			saved := make([]TrustCellResult, 0, s.Cfg.HorizonDays+1)
			for j := row; j < len(cells); j += rows {
				saved = append(saved, results[j])
			}
			if err := store.SaveJSON(trustRowKey(row), saved); err != nil {
				return err
			}
		}
		return faults.Hit("distrib.trustsweep.cell")
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
