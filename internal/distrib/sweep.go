package distrib

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/i2pstudy/i2pstudy/internal/censor"
	"github.com/i2pstudy/i2pstudy/internal/measure"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// SweepConfig declares a (distributor x enumeration strategy x day) grid.
type SweepConfig struct {
	// Strategy selects the backend's candidate pool.
	Strategy censor.BridgeStrategy
	// Distributors are the frontends sharing each day's backend ring.
	Distributors []Distributor
	// Enumerators are the censor strategies evaluated against each
	// frontend.
	Enumerators []Enumerator
	// Days are the distribution days; each gets its own backend pool.
	Days []int
	// HorizonDays is how many days past distribution each cell simulates
	// (Day+HorizonDays must stay inside the study window).
	HorizonDays int
	// Users is the censored user population per cell (<= 0: 50).
	Users int
	// IntroducersPerBridge is how many introducer draws a firewalled
	// bridge gets per reachability check (<= 0: 3, matching
	// censor.DefaultBridgeConfig).
	IntroducersPerBridge int
	// MaxResources caps each day's backend pool (<= 0: 200).
	MaxResources int
	// SeedBase drives every random draw; cells derive private seeds from
	// it and their own coordinates, never from grid position.
	SeedBase uint64
	// Workers caps engine concurrency: <= 0 one worker per CPU, 1 the
	// serial reference path. Results are byte-identical either way.
	// A measure.Workers option passed to NewSweep overrides this field.
	Workers int
}

// Cell is one point of the sweep grid.
type Cell struct {
	Dist Distributor
	Enum Enumerator
	// Day is the distribution day.
	Day int
}

// CellResult is one cell's arms-race outcome: per-horizon-day series, all
// fractions in [0, 1].
type CellResult struct {
	Distributor string
	Enumerator  string
	Day         int
	// PartitionSize is how many pool resources the hashring assigned to
	// this frontend.
	PartitionSize int
	// Bootstrap[h] is the fraction of users holding at least one usable
	// bridge h days after distribution — the bootstrap success rate.
	Bootstrap []float64
	// Survival[h] is the fraction of the partition still usable
	// (active and unblocked) h days after distribution.
	Survival []float64
	// Enumerated[h] is the fraction of the partition the censor has
	// discovered by day h.
	Enumerated []float64
	// Collateral[h] is the fraction of the censor's blacklist that, on
	// day h, blocks addresses currently published by peers *outside* the
	// bridge pool — innocent bystanders inherited through IP churn.
	Collateral []float64
}

// FinalBootstrap returns the last-day bootstrap success rate.
func (r CellResult) FinalBootstrap() float64 {
	if len(r.Bootstrap) == 0 {
		return 0
	}
	return r.Bootstrap[len(r.Bootstrap)-1]
}

// FinalSurvival returns the last-day partition survival.
func (r CellResult) FinalSurvival() float64 {
	if len(r.Survival) == 0 {
		return 0
	}
	return r.Survival[len(r.Survival)-1]
}

// DaysToEnumerate returns the first horizon day on which the censor had
// discovered at least frac of the partition, or -1 if it never did.
func (r CellResult) DaysToEnumerate(frac float64) int {
	for h, e := range r.Enumerated {
		if e >= frac {
			return h
		}
	}
	return -1
}

// Sweep binds a grid to a network with the shared substrate built once:
// one backend pool per distribution day and the network's address index.
// The per-day address-owner tables collateral accounting folds against
// live outside the Sweep entirely, in the (network, day) epoch cache
// (see owners.go) — repeated sweeps and arms-race grids share them.
type Sweep struct {
	Net *sim.Network
	Cfg SweepConfig

	ix       *censor.AddrIndex
	backends map[int]*Backend
	// apis serve every cell's handouts — one HandoutAPI per distribution
	// day, the same request → handout code path the resident service
	// (internal/service) exposes over HTTP, so the worker-determinism
	// goldens covering these cells cover the daemon's responses too.
	apis map[int]*HandoutAPI
	// peerByHash resolves RouterInfo introducer hashes back to peer
	// indexes, so enumerating a firewalled bridge's bundle also leaks the
	// introducers it published.
	peerByHash map[netdb.Hash]int
}

// NewSweep validates the grid and builds the shared backends. Building is
// serial and deterministic; cells only read from it. Engine knobs ride
// the option shape shared with censor.NewSweep and NewTrustSweep:
// measure.Workers overrides cfg.Workers, measure.Capture runs the
// capture pass before returning.
func NewSweep(network *sim.Network, cfg SweepConfig, opts ...measure.EngineOption) (*Sweep, error) {
	eo := measure.BuildOptions(opts...)
	cfg.Workers = eo.WorkersOr(cfg.Workers)
	if len(cfg.Distributors) == 0 || len(cfg.Enumerators) == 0 || len(cfg.Days) == 0 {
		return nil, fmt.Errorf("distrib: sweep needs at least one distributor, enumerator and day")
	}
	if cfg.HorizonDays < 0 {
		return nil, fmt.Errorf("distrib: negative horizon %d", cfg.HorizonDays)
	}
	if cfg.Users <= 0 {
		cfg.Users = 50
	}
	if cfg.IntroducersPerBridge <= 0 {
		cfg.IntroducersPerBridge = 3
	}
	if cfg.MaxResources <= 0 {
		cfg.MaxResources = 200
	}
	s := &Sweep{
		Net:        network,
		Cfg:        cfg,
		ix:         censor.IndexFor(network),
		backends:   make(map[int]*Backend, len(cfg.Days)),
		apis:       make(map[int]*HandoutAPI, len(cfg.Days)),
		peerByHash: peerIndexByHash(network),
	}
	for _, day := range cfg.Days {
		if day+cfg.HorizonDays >= network.Days() {
			return nil, fmt.Errorf("distrib: horizon (day %d + %d) exceeds network days (%d)",
				day, cfg.HorizonDays, network.Days())
		}
		if _, ok := s.backends[day]; ok {
			continue
		}
		b, err := NewBackend(network, BackendConfig{
			Strategy:     cfg.Strategy,
			Day:          day,
			MaxResources: cfg.MaxResources,
			Seed:         cfg.SeedBase,
		}, cfg.Distributors)
		if err != nil {
			return nil, err
		}
		api, err := NewHandoutAPI(b, cfg.Distributors)
		if err != nil {
			return nil, err
		}
		s.backends[day] = b
		s.apis[day] = api
	}
	if eo.CaptureCtx != nil {
		if err := s.Capture(eo.CaptureCtx); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Capture warms the (network, day) owner-table epoch cache for every day
// the grid's collateral folds touch, through the same worker pool the
// cells fan out on. Optional — cells compute lazily — but without it the
// first cell reaching each day pays for the table build serially.
func (s *Sweep) Capture(ctx context.Context) error {
	seen := make(map[int]bool)
	var days []int
	for _, day := range s.Cfg.Days {
		for h := 0; h <= s.Cfg.HorizonDays; h++ {
			if !seen[day+h] {
				seen[day+h] = true
				days = append(days, day+h)
			}
		}
	}
	return measure.FanOut(ctx, len(days), s.Cfg.Workers, func(i int) error {
		ownersFor(s.Net, days[i])
		return nil
	})
}

// HandoutAPI returns the shared handout API for a distribution day —
// the same request → handout path the sweep's own cells resolve
// through.
func (s *Sweep) HandoutAPI(day int) *HandoutAPI { return s.apis[day] }

// Backend returns the shared backend for a distribution day.
func (s *Sweep) Backend(day int) *Backend { return s.backends[day] }

// Cells enumerates the grid in deterministic order: days outermost, then
// enumerators, then distributors, each in configured order.
func (s *Sweep) Cells() []Cell {
	out := make([]Cell, 0, len(s.Cfg.Days)*len(s.Cfg.Enumerators)*len(s.Cfg.Distributors))
	for _, day := range s.Cfg.Days {
		for _, e := range s.Cfg.Enumerators {
			for _, d := range s.Cfg.Distributors {
				out = append(out, Cell{Dist: d, Enum: e, Day: day})
			}
		}
	}
	return out
}

// cellSeed derives a cell's private seed from its coordinates — never
// from its grid position, so reshaping the grid cannot change a cell.
func (s *Sweep) cellSeed(c Cell) uint64 {
	return mix(s.Cfg.SeedBase,
		keyOfString(c.Dist.Name()),
		uint64(c.Enum.Kind)+1,
		math.Float64bits(c.Enum.Budget),
		math.Float64bits(c.Enum.InsiderFrac),
		uint64(c.Day)+1)
}

// Run evaluates every cell across the worker pool and returns results
// in Cells() order. Unlike the censor sweep, cells stay on plain
// cell-level measure.FanOut rather than measure.FanRows rows: an
// arms-race cell carries no rolling state a row could slide — each cell
// is seeded from its own coordinates and the owner tables it folds come
// from the order-independent (network, day) epoch cache — so grouping
// cells into rows would only cap parallelism (a one-distributor,
// one-enumerator, many-day grid would serialize) without saving any
// work. Cells() enumerates days outermost, so index-order hand-out
// already warms each day's owner-table epoch front-to-back. Every cell
// is deterministic in its own coordinates, so any Workers value yields
// byte-identical results. The first error (or ctx cancellation) cancels
// the rest.
func (s *Sweep) Run(ctx context.Context) ([]CellResult, error) {
	return s.RunCheckpointed(ctx, "")
}

// runCell simulates one cell's arms race over the horizon: each day,
// users without a working bridge re-request from the frontend, the
// enumerator harvests, discoveries feed the address blacklist, and the
// series record the day's outcome. Everything is local to the cell and
// deterministic in its seed.
func (s *Sweep) runCell(c Cell) (CellResult, error) {
	backend := s.backends[c.Day]
	api := s.apis[c.Day]
	part := backend.Partition(c.Dist.Name())
	seed := s.cellSeed(c)
	rng := rand.New(rand.NewPCG(seed, seed^0xA5A5A5A55A5A5A5A))
	cost := c.Dist.IdentityCost()

	res := CellResult{
		Distributor:   c.Dist.Name(),
		Enumerator:    c.Enum.Name(),
		Day:           c.Day,
		PartitionSize: part.Len(),
	}

	// The censor's enumeration-fed blacklist and discovery set, with
	// the discover/usable rules shared with the trust rows (view.go).
	cv := newCensorView(s.Net, s.ix, s.peerByHash, s.Cfg.IntroducersPerBridge, rng)

	// requester is any sticky identity whose handout is cached by ring
	// key: equal keys imply equal handouts, so the work (for
	// manual-reseed, a whole bundle round trip) only reruns when the
	// rotation bucket moves.
	type requester struct {
		id, key uint64
		handout []Resource
		fetched bool
	}
	fetch := func(r *requester, day int) error {
		key, _, err := api.Key(Request{Dist: c.Dist.Name(), ID: r.id, Day: day})
		if err != nil {
			return err
		}
		if r.fetched && r.key == key {
			return nil
		}
		h, err := api.Serve(Request{Dist: c.Dist.Name(), ID: r.id, Day: day})
		if err != nil {
			return err
		}
		r.key, r.handout, r.fetched = key, h.Resources, true
		return nil
	}

	// Censored users: sticky identities, re-requesting only while cut off.
	users := make([]requester, s.Cfg.Users)
	for u := range users {
		users[u].id = mix(seed, 0x75736572, uint64(u)) // "user"
	}

	// Sybil populations are established once, before day zero.
	var sybils []requester
	if c.Enum.Kind == Sybil {
		sybils = make([]requester, c.Enum.sybilCount(cost))
		for i := range sybils {
			sybils[i].id = mix(seed, 0x737962696C, uint64(i)) // "sybil"
		}
	}

	var crawlCarry float64
	for h := 0; h <= s.Cfg.HorizonDays; h++ {
		day := c.Day + h

		// 1. Legitimate requests: day zero everyone bootstraps; later,
		// only users whose current handout no longer works. Every attempt
		// counts as a request (the insider can intercept each one), even
		// when the unchanged ring key makes it a cached no-op.
		var requested []int
		for u := range users {
			if h > 0 && cv.anyUsable(users[u].handout, day) {
				continue
			}
			if err := fetch(&users[u], day); err != nil {
				return CellResult{}, err
			}
			requested = append(requested, u)
		}

		// 2. Enumeration.
		switch c.Enum.Kind {
		case Crawler:
			k := c.Enum.requestsOn(cost, &crawlCarry)
			for i := 0; i < k; i++ {
				id := mix(seed, 0x637261776C, uint64(day), uint64(i)) // "crawl"
				h, err := api.Serve(Request{Dist: c.Dist.Name(), ID: id, Day: day})
				if err != nil {
					return CellResult{}, err
				}
				cv.discover(h.Resources, day)
			}
		case Sybil:
			// Re-discovery stays daily — a re-queried bridge's *current*
			// address lands on the blacklist even if the handout itself
			// was cached — so address rotation never shakes the sybils.
			for i := range sybils {
				if err := fetch(&sybils[i], day); err != nil {
					return CellResult{}, err
				}
				cv.discover(sybils[i].handout, day)
			}
		case Insider:
			for _, u := range requested {
				if rng.Float64() < c.Enum.InsiderFrac {
					cv.discover(users[u].handout, day)
				}
			}
		}

		// 3. The day's outcome.
		okUsers := 0
		for u := range users {
			if cv.anyUsable(users[u].handout, day) {
				okUsers++
			}
		}
		alive := 0
		for _, r := range part.Resources() {
			if cv.usable(r, day) {
				alive++
			}
		}
		res.Bootstrap = append(res.Bootstrap, frac(okUsers, len(users)))
		res.Survival = append(res.Survival, frac(alive, part.Len()))
		res.Enumerated = append(res.Enumerated, frac(len(cv.discovered), part.Len()))

		owners := ownersFor(s.Net, day)
		bystanders := 0
		cv.bl.ForEach(func(id int32) {
			if owner := owners[id]; owner >= 0 && !backend.InPool(int(owner)) {
				bystanders++
			}
		})
		res.Collateral = append(res.Collateral, frac(bystanders, cv.bl.Len()))
	}
	return res, nil
}

// frac returns n/d, or 0 for an empty denominator.
func frac(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}
