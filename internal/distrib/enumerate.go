package distrib

import "fmt"

// EnumeratorKind selects a censor-side discovery strategy.
type EnumeratorKind int

// The three enumeration strategies the pipeline models.
const (
	// Crawler mints fresh requester identities every day (rotating IPs,
	// throwaway accounts) and harvests their handouts. Its daily request
	// rate is Budget / distributor identity cost, carried fractionally so
	// expensive channels leak a trickle instead of rounding to zero.
	Crawler EnumeratorKind = iota
	// Sybil pays the identity cost once to establish a persistent fake
	// population, then re-queries it every day — slower to start than the
	// crawler but it rides the distributor's handout rotation to new
	// resources for free.
	Sybil
	// Insider intercepts a fraction of legitimate handouts (a compromised
	// user, a malicious volunteer) — the only strategy that touches the
	// out-of-band manual-reseed channel.
	Insider
)

func (k EnumeratorKind) String() string {
	switch k {
	case Crawler:
		return "crawler"
	case Sybil:
		return "sybil"
	case Insider:
		return "insider"
	default:
		return fmt.Sprintf("EnumeratorKind(%d)", int(k))
	}
}

// Enumerator is one censor-side discovery agent. The zero value is not
// useful; construct via the helpers or fill the fields for a custom
// profile. Enumerators are immutable descriptions — all per-run state
// lives in the sweep cell.
type Enumerator struct {
	// Kind selects the strategy.
	Kind EnumeratorKind
	// Budget is the identity budget: per day for Crawler (fresh identities
	// minted daily), total for Sybil (the persistent population paid for
	// once). Divided by the distributor's IdentityCost.
	Budget float64
	// InsiderFrac is the per-handout interception probability (Insider).
	InsiderFrac float64
}

// Name labels the enumerator in results.
func (e Enumerator) Name() string { return e.Kind.String() }

// requestsOn returns how many fake requests the enumerator issues against
// a channel with the given identity cost on horizon day h, threading a
// fractional carry so sub-daily rates accumulate deterministically.
func (e Enumerator) requestsOn(cost float64, carry *float64) int {
	if cost <= 0 {
		cost = 1
	}
	*carry += e.Budget / cost
	n := int(*carry)
	*carry -= float64(n)
	return n
}

// sybilCount returns the persistent identity population the sybil
// enumerator affords on a channel with the given identity cost.
func (e Enumerator) sybilCount(cost float64) int {
	if cost <= 0 {
		cost = 1
	}
	return int(e.Budget / cost)
}

// DefaultEnumerators returns the canonical censor lineup: a daily-budget
// crawler, a same-budget sybil population, and a 3% insider.
func DefaultEnumerators() []Enumerator {
	return []Enumerator{
		{Kind: Crawler, Budget: 25},
		{Kind: Sybil, Budget: 60},
		{Kind: Insider, InsiderFrac: 0.03},
	}
}
