package distrib

import (
	"context"
	"math/rand/v2"
	"reflect"
	"runtime"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/censor"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

func testTrustDistributors(seed uint64) []*TrustSocial {
	return []*TrustSocial{
		NewTrustSocial(TrustSocialConfig{
			Name:  "trust-social",
			Graph: TrustGraphConfig{Users: 160, Seeds: 4, Seed: seed},
		}),
		NewTrustSocial(TrustSocialConfig{
			Name:          "trust-strict",
			Graph:         TrustGraphConfig{Users: 160, Seeds: 4, Seed: seed + 1},
			BanThreshold:  1,
			PropagateFrac: 0.7,
		}),
	}
}

func testTrustConfig(workers int) TrustSweepConfig {
	return TrustSweepConfig{
		Strategy:     censor.BridgeCombined,
		Distributors: testTrustDistributors(1),
		Enumerators: []Enumerator{
			{Kind: Crawler, Budget: 200},
			{Kind: Insider, InsiderFrac: 0.3},
		},
		Day:          10,
		HorizonDays:  10,
		MaxResources: 120,
		SeedBase:     2018,
		Workers:      workers,
	}
}

func TestTrustSweepRun(t *testing.T) {
	n := network(t)
	sw, err := NewTrustSweep(n, testTrustConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	cells := sw.Cells()
	wantCells := (sw.Cfg.HorizonDays + 1) * len(sw.Cfg.Enumerators) * len(sw.Cfg.Distributors)
	if len(cells) != wantCells {
		t.Fatalf("grid has %d cells, want %d", len(cells), wantCells)
	}
	results, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != wantCells {
		t.Fatalf("got %d results", len(results))
	}

	// Index the series per (distributor, enumerator) row.
	series := make(map[[2]string][]TrustCellResult)
	for i, r := range results {
		c := cells[i]
		if r.Distributor != c.Dist.Name() || r.Enumerator != c.Enum.Name() || r.Day != c.Day {
			t.Fatalf("result %d labeled (%s, %s, %d), cell is (%s, %s, %d)",
				i, r.Distributor, r.Enumerator, r.Day, c.Dist.Name(), c.Enum.Name(), c.Day)
		}
		for _, v := range []float64{r.Bootstrap, r.Survival, r.Enumerated, r.Banned} {
			if v < 0 || v > 1 {
				t.Fatalf("cell %d: fraction %v outside [0, 1]", i, v)
			}
		}
		key := [2]string{r.Distributor, r.Enumerator}
		series[key] = append(series[key], r)
	}
	for key, sr := range series {
		if len(sr) != sw.Cfg.HorizonDays+1 {
			t.Fatalf("row %v has %d days", key, len(sr))
		}
		for h := 1; h < len(sr); h++ {
			if sr[h].Day != h {
				t.Fatalf("row %v day %d out of order", key, h)
			}
			if sr[h].Enumerated < sr[h-1].Enumerated {
				t.Fatalf("row %v: enumeration regressed at day %d", key, h)
			}
			if sr[h].Banned < sr[h-1].Banned {
				t.Fatalf("row %v: banned fraction regressed at day %d", key, h)
			}
			if sr[h].Leaks < sr[h-1].Leaks {
				t.Fatalf("row %v: leak count regressed at day %d", key, h)
			}
			if sr[h].Compromised != sr[0].Compromised {
				t.Fatalf("row %v: compromised count changed mid-row at day %d", key, h)
			}
			if sr[h].CompromisedBanned < sr[h-1].CompromisedBanned {
				t.Fatalf("row %v: compromised-banned count regressed at day %d", key, h)
			}
		}
		final := sr[len(sr)-1]
		switch key[1] {
		case "crawler":
			// Uninvited identities get nothing: the crawler never
			// enumerates, nobody leaks, nobody is banned.
			if final.Enumerated != 0 || final.Leaks != 0 || final.Banned != 0 {
				t.Errorf("row %v: crawler enumerated %.2f (leaks %d, banned %.2f); graph identities cannot be minted",
					key, final.Enumerated, final.Leaks, final.Banned)
			}
		case "insider":
			if final.Compromised == 0 {
				t.Errorf("row %v: a 30%% insider compromised nobody in a %d-user graph", key, final.Users)
			}
			if final.Leaks == 0 {
				t.Errorf("row %v: compromised users leaked nothing over %d days", key, sw.Cfg.HorizonDays)
			}
			if final.Enumerated == 0 {
				t.Errorf("row %v: insider leaks enumerated nothing", key)
			}
			if final.CompromisedBanned > final.Compromised {
				t.Errorf("row %v: banned %d of %d compromised users", key, final.CompromisedBanned, final.Compromised)
			}
		}
		if sr[0].Bootstrap == 0 {
			t.Errorf("row %v: no user bootstrapped on distribution day", key)
		}
		if sr[0].Requests == 0 {
			t.Errorf("row %v: no requests on distribution day", key)
		}
	}

	// The Salmon loop closes: under a heavy insider the strict frontend
	// (ban on first strike) must have banned someone by the end.
	strict := series[[2]string{"trust-strict", "insider"}]
	if final := strict[len(strict)-1]; final.Banned == 0 {
		t.Error("trust-strict row banned nobody under a 30% insider")
	}
}

func TestTrustSweepValidation(t *testing.T) {
	n := network(t)
	ts := testTrustDistributors(1)
	enums := []Enumerator{{Kind: Insider, InsiderFrac: 0.1}}
	bad := []TrustSweepConfig{
		{},
		{Distributors: ts},
		{Enumerators: enums},
		{Distributors: ts, Enumerators: enums, Day: 35, HorizonDays: 10},
		{Distributors: ts, Enumerators: enums, Day: 5, HorizonDays: -1},
		{Distributors: ts, Enumerators: enums, Day: -1},
		{Distributors: []*TrustSocial{ts[0], ts[0]}, Enumerators: enums, Day: 5},
		{Distributors: []*TrustSocial{nil}, Enumerators: enums, Day: 5},
	}
	for i, cfg := range bad {
		if _, err := NewTrustSweep(n, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// TestTrustSweepResumesAcrossRows is the trust engine's golden
// guarantee (the TestRollingSweepMatchesFromScratch pattern): on
// randomized graphs and grids, the rolling row engine — which resumes
// each row's trustState from the previous cell — is byte-identical to
// the from-scratch serial Reference replay of every cell, at Workers 1,
// 4 and NumCPU. CI runs it under -race, so it also proves rows share
// the backend, graph and address index safely.
func TestTrustSweepResumesAcrossRows(t *testing.T) {
	n := network(t)
	rng := rand.New(rand.NewPCG(2026, 5))
	trials := 3
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		dists := []*TrustSocial{
			NewTrustSocial(TrustSocialConfig{
				Name: "trust-a",
				Graph: TrustGraphConfig{
					Users:        60 + rng.IntN(150),
					Seeds:        1 + rng.IntN(5),
					MaxLevel:     2 + rng.IntN(5),
					InviteBudget: 1 + rng.IntN(4),
					Seed:         rng.Uint64(),
				},
				BanThreshold:  float64(1 + rng.IntN(3)),
				PropagateFrac: 0.3 + 0.4*rng.Float64(),
				PromoteDays:   1 + rng.IntN(6),
			}),
			NewTrustSocial(TrustSocialConfig{
				Name:  "trust-b",
				Graph: TrustGraphConfig{Users: 40 + rng.IntN(100), Seed: rng.Uint64()},
			}),
		}
		cfg := TrustSweepConfig{
			Strategy:     censor.BridgeCombined,
			Distributors: dists,
			Enumerators: []Enumerator{
				{Kind: Insider, InsiderFrac: 0.1 + 0.4*rng.Float64()},
				{Kind: Crawler, Budget: float64(rng.IntN(400))},
			},
			Day:          5 + rng.IntN(20),
			HorizonDays:  3 + rng.IntN(6),
			MaxResources: 80 + rng.IntN(80),
			SeedBase:     rng.Uint64(),
		}

		var serial []TrustCellResult
		for _, workers := range []int{1, 4, runtime.NumCPU()} {
			cfg.Workers = workers
			sw, err := NewTrustSweep(n, cfg)
			if err != nil {
				t.Fatal(err)
			}
			results, err := sw.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if workers == 1 {
				serial = results
				// The serial pass also checks every cell against the
				// from-scratch replay: resuming a row must equal
				// restarting it.
				for i, c := range sw.Cells() {
					if ref := sw.Reference(c); !reflect.DeepEqual(results[i], ref) {
						t.Fatalf("trial %d cell %d (%s, %s, day %d): resumed row differs from from-scratch replay\n got %+v\nwant %+v",
							trial, i, c.Dist.Name(), c.Enum.Name(), c.Day, results[i], ref)
					}
				}
			} else if !reflect.DeepEqual(results, serial) {
				t.Fatalf("trial %d Workers=%d: trust sweep differs from serial", trial, workers)
			}
		}
	}
}

func TestTrustSweepCancelled(t *testing.T) {
	n := network(t)
	sw, err := NewTrustSweep(n, testTrustConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sw.Run(ctx); err != context.Canceled {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
}

// BenchmarkTrustSweepSerial / Parallel are the trust-engine perf
// trajectory pair emitted by scripts/bench.sh as BENCH_trust.json. Rows
// (distributor x enumerator combinations) are the parallelism grain —
// days within a row are inherently sequential — so the grid carries
// 3 x 3 rows to give the pool something to fan out. The pair is
// -short-safe: the CI bench smoke covers it at -benchtime=1x on a
// reduced network.
func benchmarkTrustSweep(b *testing.B, workers int) {
	peers := 2000
	if testing.Short() {
		peers = 800
	}
	n, err := sim.New(sim.Config{Seed: 7, Days: 40, TargetDailyPeers: peers})
	if err != nil {
		b.Fatal(err)
	}
	censor.IndexFor(n) // built once per network; exclude from the loop
	dists := []*TrustSocial{
		NewTrustSocial(TrustSocialConfig{Name: "trust-a", Graph: TrustGraphConfig{Users: 240, Seed: 1}}),
		NewTrustSocial(TrustSocialConfig{Name: "trust-b", Graph: TrustGraphConfig{Users: 240, Seed: 2}, BanThreshold: 1}),
		NewTrustSocial(TrustSocialConfig{Name: "trust-c", Graph: TrustGraphConfig{Users: 240, Seed: 3}, PromoteDays: 3}),
	}
	cfg := TrustSweepConfig{
		Strategy:     censor.BridgeCombined,
		Distributors: dists,
		Enumerators: []Enumerator{
			{Kind: Crawler, Budget: 200},
			{Kind: Sybil, Budget: 300},
			{Kind: Insider, InsiderFrac: 0.15},
		},
		Day:          10,
		HorizonDays:  15,
		MaxResources: 160,
		SeedBase:     2018,
		Workers:      workers,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw, err := NewTrustSweep(n, cfg)
		if err != nil {
			b.Fatal(err)
		}
		results, err := sw.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != (cfg.HorizonDays+1)*len(cfg.Enumerators)*len(cfg.Distributors) {
			b.Fatal("wrong cell count")
		}
	}
}

func BenchmarkTrustSweepSerial(b *testing.B)   { benchmarkTrustSweep(b, 1) }
func BenchmarkTrustSweepParallel(b *testing.B) { benchmarkTrustSweep(b, 0) }
