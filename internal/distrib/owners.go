package distrib

import (
	"sync"

	"github.com/i2pstudy/i2pstudy/internal/cache"
	"github.com/i2pstudy/i2pstudy/internal/censor"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// ownersRing names the owner-table memo's series in the i2p_cache_*
// metric families.
const ownersRing = "distrib_owners"

func init() { cache.PreRegisterRing(ownersRing) }

// Owner tables — owners[addrID] = the peer publishing the address on a
// day, or -1 — are pure functions of the immutable network and the day,
// exactly like the shared censor.AddrIndex they are built over. Every
// arms-race cell folds one per horizon day (collateral accounting), and
// before this cache each Sweep rebuilt its own full []int32 table per
// day, so arms-race grids and repeated sweeps paid O(NumAddrs x days)
// allocation per Sweep. The epoch cache shares the tables process-wide,
// keyed (network, day) like censor.indexFor: one ownerEpoch per network
// (pinned for the process lifetime, matching the index cache), with the
// per-day tables in a bounded cache.DayMemo ring so unbounded horizons
// cannot retain every day ever touched. Evicted days rebuild to
// identical tables — the compute is pure in (network, day).
//
// Epoch-cache contract: sim.Network is immutable after construction,
// which is what makes lock-free sharing safe. Any future mutating
// network API (live churn, streaming arrivals) must invalidate or epoch
// these entries together with censor's AddrIndex cache and the
// per-observer ObserveDay memos — see ROADMAP.md.

// ownerEpoch is one network's owner-table cache.
type ownerEpoch struct {
	memo cache.DayMemo[[]int32]
}

var ownerCache sync.Map // *sim.Network -> *ownerEpoch

// ownersFor returns the day's shared addrID -> publishing-peer table.
// The slice is shared across every sweep on the network and must be
// treated as read-only.
func ownersFor(n *sim.Network, day int) []int32 {
	v, _ := ownerCache.LoadOrStore(n, &ownerEpoch{memo: cache.DayMemo[[]int32]{Ring: ownersRing}})
	e := v.(*ownerEpoch)
	return e.memo.Get(day, func(day int) []int32 { return buildOwners(n, day) })
}

// buildOwners is the from-scratch reference compute behind ownersFor.
func buildOwners(n *sim.Network, day int) []int32 {
	ix := censor.IndexFor(n)
	owners := make([]int32, ix.NumAddrs())
	for i := range owners {
		owners[i] = -1
	}
	for _, idx := range n.ActivePeers(day) {
		if n.Peers[idx].Status != sim.StatusKnownIP {
			continue
		}
		v4, v6 := ix.PeerIDs(idx, day)
		if v4 >= 0 {
			owners[v4] = int32(idx)
		}
		if v6 >= 0 {
			owners[v6] = int32(idx)
		}
	}
	return owners
}
