package distrib

import (
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/censor"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// TestOwnersEpochShared: the owner tables are shared process-wide per
// (network, day) — repeated lookups (and therefore repeated Sweeps on
// one network) receive the same slice instead of rebuilding it — and
// the cached table matches the from-scratch reference.
func TestOwnersEpochShared(t *testing.T) {
	n := network(t)
	day := 12
	a := ownersFor(n, day)
	b := ownersFor(n, day)
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("owner table not shared across lookups")
	}
	ref := buildOwners(n, day)
	if len(a) != len(ref) {
		t.Fatalf("cached table has %d entries, reference %d", len(a), len(ref))
	}
	for i := range ref {
		if a[i] != ref[i] {
			t.Fatalf("owner mismatch at addr %d: cached %d, reference %d", i, a[i], ref[i])
		}
	}
	// Semantic check against the index: every owned address resolves back
	// to a known-IP peer publishing it that day.
	ix := censor.IndexFor(n)
	owned := 0
	for id, peer := range ref {
		if peer < 0 {
			continue
		}
		owned++
		if n.Peers[peer].Status != sim.StatusKnownIP {
			t.Fatalf("addr %d owned by non-known-IP peer %d", id, peer)
		}
		v4, v6 := ix.PeerIDs(int(peer), day)
		if v4 != int32(id) && v6 != int32(id) {
			t.Fatalf("addr %d owned by peer %d which does not publish it on day %d", id, peer, day)
		}
	}
	if owned == 0 {
		t.Fatal("no address has an owner")
	}
}
