package distrib

import (
	"fmt"
	"math/rand/v2"
)

// This file is the social half of the Salmon-style trust distributor
// (Douglas & Caesar, PETS 2016, adapted to the I2P reseed/bridge
// setting): a deterministic user population arranged in a seeded
// invitation graph. Every user carries a trust level, a per-level
// per-day bridge-request rate limit, and an invitation budget; bridges
// are handed out along graph edges (an invitation subtree shares a
// handout group), so when an insider burns a bridge the set of suspects
// is graph-local and suspicion can propagate up the invitation chain.
// The graph itself is immutable after NewTrustGraph — all per-run trust
// dynamics (promotions, strikes, bans, rate-limit counters) live in the
// trust sweep's row state (trustsweep.go), exactly like the blacklist
// state of the censor sweep lives in its rows.

// TrustGraphConfig parameterizes a trust graph build.
type TrustGraphConfig struct {
	// Users is the target population (<= 0: 200). Growth is
	// invitation-bound: when every eligible inviter has spent their
	// budget the graph saturates below the target, which is the
	// enumeration resistance the model exists to show — population
	// cannot be minted, only invited.
	Users int
	// Seeds is the number of founding users (<= 0: 4). Seeds start at
	// MaxLevel with no inviter.
	Seeds int
	// MaxLevel is the highest trust level (<= 0: 5). Invitees join one
	// level below their inviter, floored at zero.
	MaxLevel int
	// InviteLevel is the minimum trust level required to invite
	// (<= 0: 2), so trees have bounded depth: levels decrease with
	// depth and users below InviteLevel cannot extend their chain.
	InviteLevel int
	// InviteBudget is how many invitations each user can ever issue
	// (<= 0: 3).
	InviteBudget int
	// RateBase is the bridge-request rate limit at trust level zero, in
	// requests per day (<= 0: 1); each level adds one request per day.
	RateBase int
	// Seed drives the graph draw: who invites whom is deterministic in
	// (config, Seed).
	Seed uint64
}

// withDefaults returns the config with the documented defaults filled
// in.
func (cfg TrustGraphConfig) withDefaults() TrustGraphConfig {
	if cfg.Users <= 0 {
		cfg.Users = 200
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 4
	}
	if cfg.MaxLevel <= 0 {
		cfg.MaxLevel = 5
	}
	if cfg.InviteLevel <= 0 {
		cfg.InviteLevel = 2
	}
	if cfg.InviteBudget <= 0 {
		cfg.InviteBudget = 3
	}
	if cfg.RateBase <= 0 {
		cfg.RateBase = 1
	}
	return cfg
}

// TrustUser is one node of the invitation graph.
type TrustUser struct {
	// Index is the user's position in TrustGraph.Users().
	Index int
	// ID is the user's sticky requester identity on the distribution
	// ring (what reaches Distributor.Handout).
	ID uint64
	// Parent is the inviter's index, -1 for seed users.
	Parent int
	// Children are the users this user invited, in invitation order.
	Children []int
	// Root is the seed ancestor's index (self for seeds).
	Root int
	// Group is the handout-group anchor: the depth-1 ancestor's index
	// (self for seeds and depth-1 users). Users sharing a Group draw
	// from the same arc of the bridge ring — bridges flow along graph
	// edges, so a burned bridge implicates an invitation branch, not a
	// random sample of the population.
	Group int
	// Depth is the invitation-chain length from the seed (0 for seeds).
	Depth int
	// Level is the user's *initial* trust level; the trust sweep's row
	// state evolves its own copy.
	Level int
}

// TrustGraph is a frozen invitation graph. Immutable after NewTrustGraph
// and safe for unbounded concurrent use — sweep rows share one graph and
// copy only the mutable trust state.
type TrustGraph struct {
	cfg   TrustGraphConfig
	users []TrustUser
	byID  map[uint64]int
}

// NewTrustGraph grows the invitation graph deterministically: seeds
// first, then one user at a time, each invited by a uniformly drawn
// eligible user (level >= InviteLevel, budget left). Growth stops early
// when no eligible inviter remains.
func NewTrustGraph(cfg TrustGraphConfig) *TrustGraph {
	cfg = cfg.withDefaults()
	if cfg.Seeds > cfg.Users {
		cfg.Seeds = cfg.Users
	}
	g := &TrustGraph{cfg: cfg}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x7472757374)) // "trust"
	budget := make([]int, 0, cfg.Users)
	// eligible lists users that can still invite; the draw swaps spent
	// inviters out, so each invitation is O(1).
	var eligible []int
	add := func(parent int) {
		u := TrustUser{Index: len(g.users), Parent: parent, ID: mix(cfg.Seed, 0x696E76697465, uint64(len(g.users)))} // "invite"
		if parent < 0 {
			u.Root, u.Group, u.Level = u.Index, u.Index, cfg.MaxLevel
		} else {
			p := g.users[parent]
			u.Root, u.Depth = p.Root, p.Depth+1
			u.Group = p.Group
			if u.Depth == 1 {
				u.Group = u.Index
			}
			u.Level = p.Level - 1
			if u.Level < 0 {
				u.Level = 0
			}
			g.users[parent].Children = append(g.users[parent].Children, u.Index)
		}
		g.users = append(g.users, u)
		budget = append(budget, cfg.InviteBudget)
		if u.Level >= cfg.InviteLevel {
			eligible = append(eligible, u.Index)
		}
	}
	for i := 0; i < cfg.Seeds; i++ {
		add(-1)
	}
	for len(g.users) < cfg.Users && len(eligible) > 0 {
		i := rng.IntN(len(eligible))
		inviter := eligible[i]
		add(inviter)
		if budget[inviter]--; budget[inviter] == 0 {
			eligible[i] = eligible[len(eligible)-1]
			eligible = eligible[:len(eligible)-1]
		}
	}
	g.byID = make(map[uint64]int, len(g.users))
	for _, u := range g.users {
		g.byID[u.ID] = u.Index
	}
	return g
}

// Config returns the (defaulted) config the graph was built with.
func (g *TrustGraph) Config() TrustGraphConfig { return g.cfg }

// Len returns the admitted population — at most Config().Users, less
// when invitations saturated first.
func (g *TrustGraph) Len() int { return len(g.users) }

// Users returns the population in admission order; callers must not
// modify the returned slice.
func (g *TrustGraph) Users() []TrustUser { return g.users }

// UserByID resolves a requester identity to a graph user. Identities
// not minted by the graph resolve to nothing — the property that makes
// the trust-social channel crawler-proof.
func (g *TrustGraph) UserByID(id uint64) (TrustUser, bool) {
	i, ok := g.byID[id]
	if !ok {
		return TrustUser{}, false
	}
	return g.users[i], true
}

// RequestLimit returns the per-day bridge-request rate limit at a trust
// level: RateBase at level zero, one more request per level. Negative
// levels (not produced by the graph) are clamped to the base rate.
func (g *TrustGraph) RequestLimit(level int) int {
	if level < 0 {
		level = 0
	}
	return g.cfg.RateBase + level
}

// TrustSocialConfig parameterizes the trust-social frontend: the graph
// behind it and the Salmon banning rule the trust sweep applies.
type TrustSocialConfig struct {
	// Name labels the frontend on the backend ring (defaults to
	// "trust-social"; override when one backend carries several trust
	// frontends).
	Name string
	// Graph parameterizes the invitation graph (see TrustGraphConfig).
	Graph TrustGraphConfig
	// Handout is the bridges-per-request count (<= 0: 2).
	Handout int
	// RotationDays is the handout rotation period (<= 0: 21 — social
	// channels rotate slowly).
	RotationDays int
	// IdentityCost prices one fake identity on this channel
	// (<= 0: 150): an identity is a real invitation, which is what the
	// insider pays for.
	IdentityCost float64
	// PromoteDays is how many consecutive clean days earn one trust
	// level (<= 0: 7).
	PromoteDays int
	// BanThreshold is the strike count at which a user is banned and
	// their invitation subtree quarantined (<= 0: 2).
	BanThreshold float64
	// PropagateFrac is the fraction of a strike that propagates to the
	// suspect's inviter, squared for the grandparent and so on
	// (<= 0: 0.5; values >= 1 are clamped to 0.5).
	PropagateFrac float64
}

func (cfg TrustSocialConfig) withDefaults() TrustSocialConfig {
	if cfg.Name == "" {
		cfg.Name = "trust-social"
	}
	if cfg.Handout <= 0 {
		cfg.Handout = 2
	}
	if cfg.RotationDays <= 0 {
		cfg.RotationDays = 21
	}
	if cfg.IdentityCost <= 0 {
		cfg.IdentityCost = 150
	}
	if cfg.PromoteDays <= 0 {
		cfg.PromoteDays = 7
	}
	if cfg.BanThreshold <= 0 {
		cfg.BanThreshold = 2
	}
	if cfg.PropagateFrac <= 0 || cfg.PropagateFrac >= 1 {
		cfg.PropagateFrac = 0.5
	}
	return cfg
}

// TrustSocial is the Salmon-style social frontend. As a plain
// Distributor it is stateless like every other frontend — handouts are
// deterministic in (partition, requester, day), unknown requesters get
// nothing — so it can ride the regular distrib.Sweep; the trust
// dynamics (rate limits, strikes, bans) only engage under TrustSweep,
// which owns the mutable per-row state.
type TrustSocial struct {
	cfg   TrustSocialConfig
	graph *TrustGraph
}

// NewTrustSocial builds the graph and returns the frontend.
func NewTrustSocial(cfg TrustSocialConfig) *TrustSocial {
	cfg = cfg.withDefaults()
	return &TrustSocial{cfg: cfg, graph: NewTrustGraph(cfg.Graph)}
}

// Name implements Distributor.
func (d *TrustSocial) Name() string { return d.cfg.Name }

// IdentityCost implements Distributor.
func (d *TrustSocial) IdentityCost() float64 { return d.cfg.IdentityCost }

// Graph returns the frozen invitation graph.
func (d *TrustSocial) Graph() *TrustGraph { return d.graph }

// Config returns the (defaulted) frontend config.
func (d *TrustSocial) Config() TrustSocialConfig { return d.cfg }

// groupKey is the ring position of a user's handout group for a
// rotation bucket and per-user re-request attempt: the group anchor —
// not the user — selects the arc, so an invitation branch shares
// bridges; attempts rotate a burned user to a fresh position without
// moving their branch-mates.
func (d *TrustSocial) groupKey(u TrustUser, day int, attempt int) uint64 {
	bucket := uint64(0)
	if d.cfg.RotationDays > 0 {
		bucket = uint64(day / d.cfg.RotationDays)
	}
	return mix(keyOfString(d.cfg.Name), uint64(u.Group)+1, bucket, uint64(attempt))
}

// Grant implements Distributor: graph users are granted their group's
// arc; identities the graph never minted — crawler and sybil
// requesters — are granted nothing. That is the channel's whole
// defense: requester identities cannot be fabricated, only invited.
// The attempt offset is the trust sweep's rate-limited re-request
// path: a user whose bridges burned rotates to a fresh arc without
// moving their branch-mates.
func (d *TrustSocial) Grant(id uint64, day, attempt int) (Grant, bool) {
	u, ok := d.graph.UserByID(id)
	if !ok {
		return Grant{}, false
	}
	return Grant{Key: d.groupKey(u, day, attempt), Count: d.cfg.Handout}, true
}

// validateTrustDistributors checks a trust sweep's frontend list:
// non-empty, unique names, non-empty graphs.
func validateTrustDistributors(dists []*TrustSocial) error {
	if len(dists) == 0 {
		return fmt.Errorf("distrib: trust sweep needs at least one trust-social distributor")
	}
	seen := make(map[string]bool, len(dists))
	for _, d := range dists {
		if d == nil {
			return fmt.Errorf("distrib: nil trust-social distributor")
		}
		if seen[d.Name()] {
			return fmt.Errorf("distrib: duplicate trust-social distributor %q", d.Name())
		}
		seen[d.Name()] = true
		if d.graph.Len() == 0 {
			return fmt.Errorf("distrib: trust-social distributor %q has an empty graph", d.Name())
		}
	}
	return nil
}
