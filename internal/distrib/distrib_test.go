package distrib

import (
	"sync"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/censor"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

var (
	netOnce sync.Once
	netVal  *sim.Network
	netErr  error
)

// network returns the shared small test network (building it costs a few
// hundred ms; every test reads it concurrently-safely).
func network(t testing.TB) *sim.Network {
	t.Helper()
	netOnce.Do(func() {
		netVal, netErr = sim.New(sim.Config{Seed: 42, Days: 40, TargetDailyPeers: 1200})
	})
	if netErr != nil {
		t.Fatal(netErr)
	}
	return netVal
}

func testBackend(t *testing.T, dists []Distributor) *Backend {
	t.Helper()
	b, err := NewBackend(network(t), BackendConfig{
		Strategy:     censor.BridgeCombined,
		Day:          10,
		MaxResources: 160,
		Seed:         7,
	}, dists)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBackendPartitioning(t *testing.T) {
	dists := DefaultDistributors()
	b := testBackend(t, dists)
	if b.PoolSize() == 0 {
		t.Fatal("empty backend pool")
	}
	if b.PoolSize() > 160 {
		t.Fatalf("pool %d exceeds MaxResources", b.PoolSize())
	}

	seen := make(map[int]string)
	total := 0
	for _, d := range dists {
		part := b.Partition(d.Name())
		if part == nil {
			t.Fatalf("no partition for %s", d.Name())
		}
		if part.Len() == 0 {
			t.Errorf("%s received an empty partition of a %d-resource pool", d.Name(), b.PoolSize())
		}
		total += part.Len()
		for _, r := range part.Resources() {
			if prev, dup := seen[r.Peer]; dup {
				t.Fatalf("peer %d assigned to both %s and %s", r.Peer, prev, d.Name())
			}
			seen[r.Peer] = d.Name()
			if !b.InPool(r.Peer) {
				t.Fatalf("partitioned peer %d not marked in pool", r.Peer)
			}
			if r.Record == nil {
				t.Fatalf("resource %d has no materialized record", r.Peer)
			}
		}
	}
	if total != b.PoolSize() {
		t.Fatalf("partitions cover %d resources, pool has %d", total, b.PoolSize())
	}
}

// TestBackendPartitionStability is the hashring invariant: assignment
// depends only on (resource key, distributor name set) — reordering the
// distributor list changes nothing, and removing one distributor only
// reassigns its own resources.
func TestBackendPartitionStability(t *testing.T) {
	all := DefaultDistributors()
	b1 := testBackend(t, all)
	reordered := []Distributor{all[3], all[1], all[0], all[2]}
	b2 := testBackend(t, reordered)
	for _, d := range all {
		p1, p2 := b1.Partition(d.Name()), b2.Partition(d.Name())
		if p1.Len() != p2.Len() {
			t.Fatalf("%s partition size changed under reordering: %d vs %d", d.Name(), p1.Len(), p2.Len())
		}
		for i, r := range p1.Resources() {
			if p2.Resources()[i].Peer != r.Peer {
				t.Fatalf("%s partition content changed under reordering", d.Name())
			}
		}
	}

	// Drop the email frontend: survivors keep everything they had.
	survivors := []Distributor{all[0], all[2], all[3]}
	b3 := testBackend(t, survivors)
	owner3 := make(map[int]string)
	for _, d := range survivors {
		for _, r := range b3.Partition(d.Name()).Resources() {
			owner3[r.Peer] = d.Name()
		}
	}
	for _, d := range survivors {
		for _, r := range b1.Partition(d.Name()).Resources() {
			if owner3[r.Peer] != d.Name() {
				t.Fatalf("peer %d moved from %s to %s when an unrelated distributor left",
					r.Peer, d.Name(), owner3[r.Peer])
			}
		}
	}
}

// TestCapResourcesStability: the MaxResources sample keeps the hashring
// churn property — removing any one pool resource displaces at most the
// sample's boundary resource, never reshuffling the rest.
func TestCapResourcesStability(t *testing.T) {
	pool := make([]Resource, 400)
	for i := range pool {
		pool[i] = Resource{Peer: i, Key: mix(0xF00D, uint64(i))}
	}
	const sampleCap = 100
	base := make(map[int]bool)
	for _, r := range capResources(append([]Resource(nil), pool...), sampleCap) {
		base[r.Peer] = true
	}
	if len(base) != sampleCap {
		t.Fatalf("sample holds %d resources, want %d", len(base), sampleCap)
	}
	for _, drop := range []int{0, 57, 399} {
		churned := make([]Resource, 0, len(pool)-1)
		for _, r := range pool {
			if r.Peer != drop {
				churned = append(churned, r)
			}
		}
		diff := 0
		kept := capResources(churned, sampleCap)
		for _, r := range kept {
			if !base[r.Peer] {
				diff++
			}
		}
		if len(kept) != sampleCap || diff > 1 {
			t.Fatalf("dropping peer %d replaced %d sample members, want at most 1", drop, diff)
		}
	}
	// No-op cases.
	if got := capResources(pool[:50], sampleCap); len(got) != 50 {
		t.Fatal("under-cap pool was truncated")
	}
	if got := capResources(pool, 0); len(got) != len(pool) {
		t.Fatal("zero cap truncated the pool")
	}
}

func TestPartitionGetMany(t *testing.T) {
	b := testBackend(t, DefaultDistributors())
	part := b.Partition("https")
	if part.Len() < 3 {
		t.Skip("partition too small for the wrap test")
	}
	a := part.GetMany(12345, 3)
	bb := part.GetMany(12345, 3)
	if len(a) != 3 {
		t.Fatalf("GetMany returned %d resources", len(a))
	}
	for i := range a {
		if a[i].Peer != bb[i].Peer {
			t.Fatal("GetMany is not deterministic")
		}
	}
	// Wrapping: a key above the largest resource key wraps to the start.
	last := part.Resources()[part.Len()-1]
	wrapped := part.GetMany(last.Key+1, 2)
	if wrapped[0].Peer != part.Resources()[0].Peer {
		t.Fatal("GetMany did not wrap around the ring")
	}
	// Requests never exceed the partition.
	if got := part.GetMany(1, part.Len()+10); len(got) != part.Len() {
		t.Fatalf("oversized request returned %d of %d", len(got), part.Len())
	}
}

func TestRingDistRotation(t *testing.T) {
	b := testBackend(t, DefaultDistributors())
	api, err := NewHandoutAPI(b, DefaultDistributors())
	if err != nil {
		t.Fatal(err)
	}
	serve := func(dist string, id uint64, day int) []Resource {
		t.Helper()
		h, err := api.Serve(Request{Dist: dist, ID: id, Day: day})
		if err != nil {
			t.Fatal(err)
		}
		return h.Resources
	}
	h1 := serve("https", 99, 10)
	h2 := serve("https", 99, 12) // same weekly bucket
	if len(h1) == 0 {
		t.Fatal("empty handout")
	}
	for i := range h1 {
		if h1[i].Peer != h2[i].Peer {
			t.Fatal("handout not sticky within a rotation bucket")
		}
	}

	// Manual reseed never rotates.
	m1 := serve("manual-reseed", 7, 10)
	m2 := serve("manual-reseed", 7, 38)
	if len(m1) == 0 || len(m1) != len(m2) {
		t.Fatalf("manual handouts differ in size: %d vs %d", len(m1), len(m2))
	}
	for i := range m1 {
		if m1[i].Peer != m2[i].Peer {
			t.Fatal("manual-reseed handout rotated")
		}
	}
}

// TestManualReseedBundleRoundTrip: the manual frontend hands out exactly
// what a signed i2pseeds bundle can carry, mapped back to partition
// resources.
func TestManualReseedBundleRoundTrip(t *testing.T) {
	b := testBackend(t, DefaultDistributors())
	part := b.Partition("manual-reseed")
	api, err := NewHandoutAPI(b, DefaultDistributors())
	if err != nil {
		t.Fatal(err)
	}
	h, err := api.Serve(Request{Dist: "manual-reseed", ID: 1234, Day: 10})
	if err != nil {
		t.Fatal(err)
	}
	got := h.Resources
	key, granted, err := api.Key(Request{Dist: "manual-reseed", ID: 1234, Day: 10})
	if err != nil || !granted {
		t.Fatalf("manual-reseed grant: key err %v granted %v", err, granted)
	}
	want := part.GetMany(key, 5)
	if len(got) != len(want) {
		t.Fatalf("bundle round trip returned %d of %d resources", len(got), len(want))
	}
	for i := range got {
		if got[i].Peer != want[i].Peer {
			t.Fatal("bundle round trip reordered or replaced resources")
		}
		if got[i].Record.Identity != network(t).Peers[got[i].Peer].ID {
			t.Fatal("record identity does not match the peer")
		}
	}
}

func TestEnumeratorRates(t *testing.T) {
	e := Enumerator{Kind: Crawler, Budget: 25}
	var carry float64
	total := 0
	for day := 0; day < 4; day++ {
		total += e.requestsOn(40, &carry)
	}
	// 25/40 per day over 4 days = 2.5 -> 2 whole requests.
	if total != 2 {
		t.Fatalf("fractional carry yielded %d requests, want 2", total)
	}
	if n := (Enumerator{Kind: Sybil, Budget: 60}).sybilCount(8); n != 7 {
		t.Fatalf("sybilCount = %d, want 7", n)
	}
	if n := (Enumerator{Kind: Sybil, Budget: 60}).sybilCount(500); n != 0 {
		t.Fatalf("sybilCount against manual cost = %d, want 0", n)
	}
}

func TestSweepValidation(t *testing.T) {
	n := network(t)
	bad := []SweepConfig{
		{},
		{Distributors: DefaultDistributors(), Enumerators: DefaultEnumerators()},
		{Distributors: DefaultDistributors(), Days: []int{5}},
		{Enumerators: DefaultEnumerators(), Days: []int{5}},
		{Distributors: DefaultDistributors(), Enumerators: DefaultEnumerators(), Days: []int{35}, HorizonDays: 10},
		{Distributors: DefaultDistributors(), Enumerators: DefaultEnumerators(), Days: []int{5}, HorizonDays: -1},
	}
	for i, cfg := range bad {
		if _, err := NewSweep(n, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := NewBackend(n, BackendConfig{Day: 5}, nil); err == nil {
		t.Error("backend without distributors accepted")
	}
	if _, err := NewBackend(n, BackendConfig{Day: 5}, []Distributor{NewHTTPS(), NewHTTPS()}); err == nil {
		t.Error("duplicate distributor accepted")
	}
}

func TestCellResultHelpers(t *testing.T) {
	r := CellResult{
		Bootstrap:  []float64{1, 0.8, 0.6},
		Survival:   []float64{1, 0.9, 0.7},
		Enumerated: []float64{0.1, 0.4, 0.8},
	}
	if r.FinalBootstrap() != 0.6 || r.FinalSurvival() != 0.7 {
		t.Fatal("final helpers wrong")
	}
	if d := r.DaysToEnumerate(0.5); d != 2 {
		t.Fatalf("DaysToEnumerate(0.5) = %d, want 2", d)
	}
	if d := r.DaysToEnumerate(0.9); d != -1 {
		t.Fatalf("DaysToEnumerate(0.9) = %d, want -1", d)
	}
	if (CellResult{}).FinalBootstrap() != 0 || (CellResult{}).FinalSurvival() != 0 {
		t.Fatal("empty result helpers wrong")
	}
}
