// Package distrib is the bridge-distribution pipeline: the supply side of
// the Section 7.1 mitigation study. Where internal/censor evaluates how a
// fixed set of bridges decays under a monitoring-fleet blacklist, distrib
// models how bridges *reach* censored users in the first place — and how
// fast a censor can enumerate them through the distribution channels
// themselves. The design follows Tor's rdsys: a Backend holds the day's
// bridge resource pool (drawn from the existing censor.BridgeStrategy
// pools over sim.Network) and partitions it across distributor frontends
// via a stable hashring; Distributor implementations (HTTPS, Email,
// Social/Moat, ManualReseed backed by internal/reseed's i2pseeds bundles)
// each have a request model and an identity-cost leak profile; Enumerator
// agents (crawler, sybil-requester, insider) discover resources at
// configurable rates and feed discoveries into censor.AddrIndex-backed
// blacklists.
//
// Hashring partitioning invariant: a resource's frontend assignment
// depends only on (resource key, set of distributor names). Resource keys
// derive from peer identity hashes — never from addresses — so IP churn
// cannot move a bridge between frontends, resources joining or leaving
// the pool never reshuffle the others, and removing a distributor only
// reassigns its own arc of the ring. The MaxResources cap preserves this:
// it keeps the lowest ranks of an independent per-resource selection
// hash, so pool churn displaces at most the boundary resource of the
// sample.
//
// Determinism contract: distrib.Sweep inherits the engine contract of
// measure.ObserveGrid and censor.Sweep — cells fan out through
// measure.FanOut writing into slots indexed by grid position, every
// random draw derives from (SeedBase, cell coordinates), and folds run in
// grid order, so any Workers value yields byte-identical results
// (TestDistribSweepWorkerDeterminism).
package distrib

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"sort"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/censor"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// Resource is one distributable bridge: a peer drawn from a bridge
// strategy pool, frozen with the RouterInfo it was distributed with.
type Resource struct {
	// Peer is the peer's index in the backend's network.
	Peer int
	// Key is the resource's stable hashring position, derived from the
	// peer's identity hash (see the partitioning invariant in the package
	// doc).
	Key uint64
	// Record is the RouterInfo materialized at the backend's distribution
	// day — what a handout (or an i2pseeds bundle) actually carries.
	Record *netdb.RouterInfo
}

// keyOf derives a resource's ring position from the peer identity hash.
func keyOf(id netdb.Hash) uint64 {
	h := fnv.New64a()
	h.Write(id[:])
	return h.Sum64()
}

// keyOfString hashes a label (distributor names, requester identities)
// onto the ring.
func keyOfString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// mix folds additional words into a ring key (splitmix64 finalizer).
func mix(k uint64, words ...uint64) uint64 {
	for _, w := range words {
		k ^= w + 0x9E3779B97F4A7C15 + (k << 6) + (k >> 2)
		k ^= k >> 30
		k *= 0xBF58476D1CE4E5B9
		k ^= k >> 27
		k *= 0x94D049BB133111EB
		k ^= k >> 31
	}
	return k
}

// ringVnodes is how many virtual nodes each distributor places on the
// backend ring; enough that a four-frontend split stays within a few
// percent of even at a few hundred resources.
const ringVnodes = 64

// vnode is one virtual node of a distributor arc.
type vnode struct {
	key  uint64
	dist string
}

// hashring is the pure assignment rule behind backend partitioning: a
// sorted vnode ring over a distributor name set. It is deliberately a
// function of the name set alone — never of the resource pool — which
// is the whole stable-assignment invariant (FuzzHashringAssignment).
type hashring []vnode

// buildRing places every distributor's virtual nodes on the ring.
// Assignment depends only on the *set* of names: the sort erases the
// caller's ordering.
func buildRing(names []string) hashring {
	ring := make(hashring, 0, len(names)*ringVnodes)
	for _, name := range names {
		for v := 0; v < ringVnodes; v++ {
			ring = append(ring, vnode{key: mix(keyOfString(name), uint64(v)), dist: name})
		}
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].key < ring[j].key })
	return ring
}

// owner returns the distributor owning a resource key: the first vnode
// clockwise from the key, wrapping.
func (r hashring) owner(key uint64) string {
	i := sort.Search(len(r), func(i int) bool { return r[i].key >= key })
	if i == len(r) {
		i = 0
	}
	return r[i].dist
}

// Backend holds one distribution day's resource pool, partitioned across
// the distributor frontends. A Backend is immutable after NewBackend and
// safe for unbounded concurrent use — sweep cells share it.
type Backend struct {
	// Day is the distribution day the pool was drawn on.
	Day int
	// When is the wall-clock time bundles created from this pool carry.
	When time.Time

	parts map[string]*Partition
	// pool marks pool membership by peer index (collateral accounting).
	pool map[int]bool
}

// BackendConfig parameterizes a backend build.
type BackendConfig struct {
	// Strategy selects the candidate pool (censor.BridgeCombined is the
	// paper's proposed mix).
	Strategy censor.BridgeStrategy
	// Day is the distribution day.
	Day int
	// MaxResources caps the pool (<= 0: no cap). The cap keeps handout
	// bundles and enumeration grids small at full network scale; see
	// capResources for the churn-stable sampling rule.
	MaxResources int
	// Seed drives RouterInfo materialization (ports, introducer draws).
	Seed uint64
}

// NewBackend draws the day's pool from the strategy, materializes each
// resource's RouterInfo, and partitions the pool across the distributors
// on a stable hashring.
func NewBackend(network *sim.Network, cfg BackendConfig, distributors []Distributor) (*Backend, error) {
	if len(distributors) == 0 {
		return nil, fmt.Errorf("distrib: backend needs at least one distributor")
	}
	if cfg.Day < 0 || cfg.Day >= network.Days() {
		return nil, fmt.Errorf("distrib: distribution day %d outside the %d-day study", cfg.Day, network.Days())
	}
	seen := make(map[string]bool, len(distributors))
	for _, d := range distributors {
		if seen[d.Name()] {
			return nil, fmt.Errorf("distrib: duplicate distributor %q", d.Name())
		}
		seen[d.Name()] = true
	}

	pool := censor.BridgePool(network, cfg.Strategy, cfg.Day)
	resources := make([]Resource, 0, len(pool))
	for _, idx := range pool {
		resources = append(resources, Resource{Peer: idx, Key: keyOf(network.Peers[idx].ID)})
	}
	resources = capResources(resources, cfg.MaxResources)
	// Ring order is the canonical resource order everywhere below.
	sort.Slice(resources, func(i, j int) bool { return resources[i].Key < resources[j].Key })

	b := &Backend{
		Day:   cfg.Day,
		When:  network.DayTime(cfg.Day),
		parts: make(map[string]*Partition, len(distributors)),
		pool:  make(map[int]bool, len(resources)),
	}

	names := make([]string, len(distributors))
	for i, d := range distributors {
		names[i] = d.Name()
		b.parts[d.Name()] = &Partition{backend: b, dist: d.Name()}
	}
	ring := buildRing(names)
	for _, r := range resources {
		b.pool[r.Peer] = true
		p := b.parts[ring.owner(r.Key)]
		p.res = append(p.res, r)
	}

	// Materialize records once, in ring order, with a per-resource RNG
	// derived from (seed, key) so a record never depends on its neighbours.
	for _, p := range b.parts {
		p.byIdentity = make(map[netdb.Hash]int, len(p.res))
		for i := range p.res {
			r := &p.res[i]
			rng := rand.New(rand.NewPCG(cfg.Seed, r.Key))
			r.Record = network.RouterInfoFor(network.Peers[r.Peer], cfg.Day, rng)
			p.byIdentity[r.Record.Identity] = i
		}
	}
	return b, nil
}

// selectionSalt decorrelates the cap's selection hash from ring
// positions, so the kept sample stays spread over the whole ring.
const selectionSalt = 0xC2B2AE3D27D4EB4F

// capResources bounds the pool to max resources by keeping the max
// smallest values of an independent per-resource selection hash. Like the
// ring assignment itself, membership is a pure per-resource property
// relative to a rank boundary: one peer joining or leaving the strategy
// pool displaces at most the boundary resource, never reshuffling the
// rest of the sample (TestCapResourcesStability).
func capResources(resources []Resource, max int) []Resource {
	if max <= 0 || len(resources) <= max {
		return resources
	}
	sort.Slice(resources, func(i, j int) bool {
		return mix(resources[i].Key, selectionSalt) < mix(resources[j].Key, selectionSalt)
	})
	return resources[:max]
}

// PoolSize returns the number of resources in the backend pool.
func (b *Backend) PoolSize() int { return len(b.pool) }

// InPool reports whether a peer's resource is part of the day's pool.
func (b *Backend) InPool(peer int) bool { return b.pool[peer] }

// Partition returns the named distributor's arc of the ring (nil when the
// distributor is unknown to this backend).
func (b *Backend) Partition(dist string) *Partition { return b.parts[dist] }

// Partition is one distributor's share of a backend pool, in ring-key
// order. Immutable and safe for concurrent use.
type Partition struct {
	backend    *Backend
	dist       string
	res        []Resource
	byIdentity map[netdb.Hash]int
}

// Len returns the partition size.
func (p *Partition) Len() int { return len(p.res) }

// Resources returns the partition in ring order; callers must not modify
// the returned slice.
func (p *Partition) Resources() []Resource { return p.res }

// When returns the backend's distribution timestamp (bundle creation
// time for the manual-reseed frontend).
func (p *Partition) When() time.Time { return p.backend.When }

// Dist returns the owning distributor's name.
func (p *Partition) Dist() string { return p.dist }

// SlotOf returns the partition slot a ring key serves from: the index
// of the first resource clockwise from key, wrapping — GetMany(key, n)
// returns the n resources starting at SlotOf(key). There are therefore
// only Len() distinct handouts per (rotation bucket, size), which is
// what makes the service's pre-built bundle cache possible. Empty
// partitions have no slots (-1).
func (p *Partition) SlotOf(key uint64) int {
	if len(p.res) == 0 {
		return -1
	}
	i := sort.Search(len(p.res), func(i int) bool { return p.res[i].Key >= key })
	return i % len(p.res)
}

// GetMany returns n consecutive resources clockwise from key, wrapping —
// the rdsys handout rule. Requests never receive more than the partition
// holds.
func (p *Partition) GetMany(key uint64, n int) []Resource {
	if len(p.res) == 0 {
		return nil
	}
	if n > len(p.res) {
		n = len(p.res)
	}
	i := p.SlotOf(key)
	out := make([]Resource, 0, n)
	for j := 0; j < n; j++ {
		out = append(out, p.res[(i+j)%len(p.res)])
	}
	return out
}

// byRecordIdentity maps a bundle record back to the partition resource it
// was created from (used by the manual-reseed round trip).
func (p *Partition) byRecordIdentity(id netdb.Hash) (Resource, bool) {
	i, ok := p.byIdentity[id]
	if !ok {
		return Resource{}, false
	}
	return p.res[i], true
}
