package distrib

import (
	"math/rand/v2"

	"github.com/i2pstudy/i2pstudy/internal/censor"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// censorView is the censor-side discovery state shared by the arms-race
// cell (sweep.go) and the trust row (trustsweep.go): the enumeration-fed
// blacklist and discovered set, with the one discover rule (leaked
// resources blacklist their current addresses plus the introducer
// addresses a firewalled bridge's record carries) and the one
// reachability rule (active, and reachable from behind the firewall
// despite the blacklist). Keeping both sweeps on this type keeps their
// blacklists and survival figures computing identically by
// construction.
type censorView struct {
	net        *sim.Network
	ix         *censor.AddrIndex
	peerByHash map[netdb.Hash]int
	// introducersPerBridge is how many introducer draws a firewalled
	// bridge gets per reachability check.
	introducersPerBridge int
	// rng drives the introducer draws; it is the owning cell's/row's
	// private stream, consumed in call order.
	rng *rand.Rand

	bl         *censor.AddrSet
	discovered map[int]bool
}

func newCensorView(net *sim.Network, ix *censor.AddrIndex, peerByHash map[netdb.Hash]int, introducersPerBridge int, rng *rand.Rand) *censorView {
	return &censorView{
		net:                  net,
		ix:                   ix,
		peerByHash:           peerByHash,
		introducersPerBridge: introducersPerBridge,
		rng:                  rng,
		bl:                   ix.NewSet(),
		discovered:           make(map[int]bool),
	}
}

// discover feeds leaked resources into the censor's state: the resource
// peers are marked discovered and their current addresses join the
// blacklist. A firewalled bridge's handout carries introducer addresses
// instead of its own; the censor blocks those too — innocent known-IP
// relays, which is where collateral damage comes from.
func (cv *censorView) discover(rs []Resource, day int) {
	for _, r := range rs {
		cv.discovered[r.Peer] = true
		v4, v6 := cv.ix.PeerIDs(r.Peer, day)
		cv.bl.Add(v4)
		cv.bl.Add(v6)
		for _, ra := range r.Record.Addresses {
			for _, in := range ra.Introducers {
				if idx, ok := cv.peerByHash[in.Hash]; ok {
					iv4, iv6 := cv.ix.PeerIDs(idx, day)
					cv.bl.Add(iv4)
					cv.bl.Add(iv6)
				}
			}
		}
	}
}

// usable reports whether one handed-out bridge works on `day`: active,
// and reachable from behind the firewall despite the blacklist
// (directly, or for firewalled bridges through at least one unblocked
// introducer).
func (cv *censorView) usable(r Resource, day int) bool {
	p := cv.net.Peers[r.Peer]
	if !p.ActiveOn(day) {
		return false
	}
	switch p.Status {
	case sim.StatusKnownIP:
		v4, v6 := cv.ix.PeerIDs(r.Peer, day)
		return !cv.bl.Has(v4) && !cv.bl.Has(v6)
	case sim.StatusFirewalled, sim.StatusToggling:
		pool := cv.net.Introducers(day)
		if len(pool) == 0 {
			return false
		}
		for i := 0; i < cv.introducersPerBridge; i++ {
			in := pool[cv.rng.IntN(len(pool))]
			v4, v6 := cv.ix.PeerIDs(in.Index, day)
			if !cv.bl.Has(v4) && !cv.bl.Has(v6) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// anyUsable reports whether any resource of a handout is usable.
func (cv *censorView) anyUsable(rs []Resource, day int) bool {
	for _, r := range rs {
		if cv.usable(r, day) {
			return true
		}
	}
	return false
}

// peerIndexByHash builds the identity-hash -> peer-index reverse map
// both sweeps resolve RouterInfo introducer hashes through.
func peerIndexByHash(net *sim.Network) map[netdb.Hash]int {
	m := make(map[netdb.Hash]int, len(net.Peers))
	for _, p := range net.Peers {
		m[p.ID] = p.Index
	}
	return m
}
