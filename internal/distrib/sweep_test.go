package distrib

import (
	"context"
	"reflect"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/censor"
	"github.com/i2pstudy/i2pstudy/internal/measure/enginetest"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

func testSweepConfig(workers int) SweepConfig {
	return SweepConfig{
		Strategy:     censor.BridgeCombined,
		Distributors: DefaultDistributors(),
		Enumerators:  DefaultEnumerators(),
		Days:         []int{10, 18},
		HorizonDays:  8,
		Users:        40,
		MaxResources: 120,
		SeedBase:     2018,
		Workers:      workers,
	}
}

func TestSweepRun(t *testing.T) {
	n := network(t)
	sw, err := NewSweep(n, testSweepConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	cells := sw.Cells()
	wantCells := len(sw.Cfg.Days) * len(sw.Cfg.Enumerators) * len(sw.Cfg.Distributors)
	if len(cells) != wantCells {
		t.Fatalf("grid has %d cells, want %d", len(cells), wantCells)
	}
	// Days outermost, then enumerators, then distributors.
	if cells[0].Day != 10 || cells[0].Enum.Kind != Crawler || cells[0].Dist.Name() != "https" {
		t.Fatalf("cells[0] = (%s, %s, %d)", cells[0].Dist.Name(), cells[0].Enum.Name(), cells[0].Day)
	}

	results, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != wantCells {
		t.Fatalf("got %d results", len(results))
	}
	byKey := make(map[[2]string]CellResult)
	for i, r := range results {
		c := cells[i]
		if r.Distributor != c.Dist.Name() || r.Enumerator != c.Enum.Name() || r.Day != c.Day {
			t.Fatalf("result %d labeled (%s, %s, %d), cell is (%s, %s, %d)",
				i, r.Distributor, r.Enumerator, r.Day, c.Dist.Name(), c.Enum.Name(), c.Day)
		}
		wantLen := sw.Cfg.HorizonDays + 1
		for _, series := range [][]float64{r.Bootstrap, r.Survival, r.Enumerated, r.Collateral} {
			if len(series) != wantLen {
				t.Fatalf("cell %d: series length %d, want %d", i, len(series), wantLen)
			}
			for _, v := range series {
				if v < 0 || v > 1 {
					t.Fatalf("cell %d: series value %v outside [0, 1]", i, v)
				}
			}
		}
		for h := 1; h < wantLen; h++ {
			if r.Enumerated[h] < r.Enumerated[h-1] {
				t.Fatalf("cell %d: enumeration regressed at day %d", i, h)
			}
		}
		if r.Day == 10 {
			byKey[[2]string{r.Distributor, r.Enumerator}] = r
		}
	}

	// The leak-profile ordering the pipeline exists to show: the crawler
	// enumerates the cheap HTTPS channel but cannot afford the
	// out-of-band manual channel at all.
	https := byKey[[2]string{"https", "crawler"}]
	manual := byKey[[2]string{"manual-reseed", "crawler"}]
	if https.Enumerated[len(https.Enumerated)-1] == 0 {
		t.Error("crawler discovered nothing on the https frontend")
	}
	if got := manual.Enumerated[len(manual.Enumerated)-1]; got != 0 {
		t.Errorf("crawler enumerated %.2f of the manual-reseed partition; identity cost should forbid it", got)
	}
	// The insider leaks regardless of channel friction.
	mi := byKey[[2]string{"manual-reseed", "insider"}]
	if mi.Enumerated[len(mi.Enumerated)-1] == 0 {
		t.Error("insider discovered nothing on the manual-reseed frontend")
	}
	// Day zero everyone just bootstrapped from a live handout.
	if https.Bootstrap[0] == 0 {
		t.Error("no user bootstrapped on distribution day")
	}
}

// TestDistribSweepWorkerDeterminism is the subsystem's golden contract,
// stated through the shared enginetest harness: Workers = 1 (the serial
// reference), 4, NumCPU and auto produce byte-identical results for
// both the cell-level arms-race sweep and the rolling trust-graph rows.
func TestDistribSweepWorkerDeterminism(t *testing.T) {
	n := network(t)
	ctx := context.Background()

	enginetest.Golden(t, []enginetest.Case{
		{
			Name: "arms-race",
			Run: func(t testing.TB, workers int) any {
				sw, err := NewSweep(n, testSweepConfig(workers))
				if err != nil {
					t.Fatal(err)
				}
				results, err := sw.Run(ctx)
				if err != nil {
					t.Fatal(err)
				}
				return results
			},
		},
		{
			Name: "trust-rows",
			Run: func(t testing.TB, workers int) any {
				sw, err := NewTrustSweep(n, testTrustConfig(workers))
				if err != nil {
					t.Fatal(err)
				}
				results, err := sw.Run(ctx)
				if err != nil {
					t.Fatal(err)
				}
				return results
			},
		},
	})
}

// TestSweepSharedBackendDeterminism: cells reusing one Sweep (shared
// backends, owner tables) match cells from a freshly built Sweep.
func TestSweepSharedBackendDeterminism(t *testing.T) {
	n := network(t)
	a, err := NewSweep(n, testSweepConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSweep(n, testSweepConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("rebuilt sweep differs")
	}
}

func TestSweepCancelled(t *testing.T) {
	n := network(t)
	sw, err := NewSweep(n, testSweepConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sw.Run(ctx); err != context.Canceled {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
}

// BenchmarkDistribSweepSerial / Parallel are the distribution-pipeline
// perf trajectory pair emitted by scripts/bench.sh as BENCH_distrib.json.
// Each iteration rebuilds the sweep with fresh backends, so the numbers
// measure real partition + arms-race work at each width; the per-day
// owner tables come from the process-wide (network, day) epoch cache,
// so after the first iteration they are cache hits — repeated sweeps on
// one network are exactly the workload the cache exists for, and the
// bench measures it that way. The pair is -short-safe: the CI bench
// smoke covers it at -benchtime=1x.
func benchmarkDistribSweep(b *testing.B, workers int) {
	n, err := sim.New(sim.Config{Seed: 7, Days: 40, TargetDailyPeers: 2000})
	if err != nil {
		b.Fatal(err)
	}
	censor.IndexFor(n) // built once per network; exclude from the loop
	cfg := SweepConfig{
		Strategy:     censor.BridgeCombined,
		Distributors: DefaultDistributors(),
		Enumerators:  DefaultEnumerators(),
		Days:         []int{10, 18, 26},
		HorizonDays:  10,
		Users:        60,
		MaxResources: 160,
		SeedBase:     2018,
		Workers:      workers,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw, err := NewSweep(n, cfg)
		if err != nil {
			b.Fatal(err)
		}
		results, err := sw.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(cfg.Days)*len(cfg.Enumerators)*len(cfg.Distributors) {
			b.Fatal("wrong cell count")
		}
	}
}

func BenchmarkDistribSweepSerial(b *testing.B)   { benchmarkDistribSweep(b, 1) }
func BenchmarkDistribSweepParallel(b *testing.B) { benchmarkDistribSweep(b, 0) }
