package distrib

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/i2pstudy/i2pstudy/internal/censor"
	"github.com/i2pstudy/i2pstudy/internal/measure"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// TrustSweep is the Salmon-style arms race: trust-social frontends
// (trust.go) raced against enumerators over a shared bridge backend,
// with the Salmon banning rule closing the loop — insider leak events
// burn bridges, burned bridges make their graph-local holders suspects,
// suspicion propagates up the invitation chain, and repeat offenders
// are banned with their subtree quarantined. Enumeration speed
// therefore depends on graph topology (how deep the insider sits, how
// wide their branch), not only on identity budgets.
//
// Unlike distrib.Sweep — whose cells each own a private horizon and
// carry no cross-cell state, so they fan out cell-level — the trust
// grid's day axis is inherently sequential: day h's trust levels, rate
// counters and bans are day h-1's plus one step. The sweep therefore
// reuses the PR 4 rolling-row machinery: cells group into one
// (distributor, enumerator) row per combination via measure.PlanRows
// (days ascending), rows fan out across the measure.FanRows pool, and
// each row slides one trustState forward a day at a time. The
// determinism contract is unchanged: every random draw derives from
// (SeedBase, row coordinates) and is consumed in day order within the
// row, results land in cell-indexed slots, so any Workers value yields
// byte-identical results — and sliding is exactly resumable, so every
// cell equals the from-scratch replay Reference computes
// (TestTrustSweepResumesAcrossRows).

// TrustSweepConfig declares a (trust distributor x enumerator x
// horizon day) grid.
type TrustSweepConfig struct {
	// Strategy selects the backend's candidate pool.
	Strategy censor.BridgeStrategy
	// Distributors are the trust-social frontends sharing the backend
	// ring; names must be unique.
	Distributors []*TrustSocial
	// Enumerators are the censor strategies raced against each
	// frontend. Only the insider can leak — crawler and sybil
	// identities were never invited, so the graph serves them nothing —
	// but keeping them on the axis is the point: the grid shows the
	// zeros. On this sweep the insider's InsiderFrac is the fraction of
	// *graph users* the censor has compromised (drawn once per row, not
	// a per-request coin): compromised users report every handout they
	// receive, so enumeration speed depends on where in the graph they
	// sit and how fast the banning rule quarantines their branches.
	Enumerators []Enumerator
	// Day is the distribution day the shared backend pool is drawn on.
	Day int
	// HorizonDays is how many days past distribution each row slides
	// (Day+HorizonDays must stay inside the study window).
	HorizonDays int
	// IntroducersPerBridge mirrors SweepConfig (<= 0: 3).
	IntroducersPerBridge int
	// MaxResources caps the backend pool (<= 0: 200).
	MaxResources int
	// SeedBase drives every random draw; rows derive private seeds from
	// it and their own coordinates, never from grid position.
	SeedBase uint64
	// Workers caps engine concurrency: <= 0 one worker per CPU, 1 the
	// serial reference path. Results are byte-identical either way.
	// A measure.Workers option passed to NewTrustSweep overrides this
	// field.
	Workers int
}

// TrustCell is one point of the trust grid.
type TrustCell struct {
	Dist *TrustSocial
	Enum Enumerator
	// Day is the horizon day: 0 is the distribution day, the cell
	// evaluates study day Config.Day + Day.
	Day int
}

// TrustCellResult is one cell's outcome — the row's state measured at
// the end of the cell's horizon day.
type TrustCellResult struct {
	Distributor string
	Enumerator  string
	// Day is the horizon day.
	Day int
	// Users is the graph population; Bootstrap, Banned and MeanTrust
	// are fractions/means over it.
	Users int
	// Bootstrap is the fraction of users holding at least one usable
	// bridge at the end of the day (banned users keep their last
	// handout but can no longer refresh it).
	Bootstrap float64
	// Survival is the fraction of the frontend's partition still
	// usable.
	Survival float64
	// Enumerated is the fraction of the partition the censor has
	// discovered.
	Enumerated float64
	// Banned is the fraction of users banned by the Salmon rule so far.
	Banned float64
	// MeanTrust is the mean trust level of the surviving (non-banned)
	// users.
	MeanTrust float64
	// Requests is the number of bridge requests users issued this day —
	// rate limits cap it, so it bounds both recovery speed and the
	// insider's interception surface.
	Requests int
	// Leaks is the cumulative count of insider leak events.
	Leaks int
	// Compromised is how many graph users the insider controls on this
	// row; CompromisedBanned of them have been quarantined — once the
	// two are equal the censor's channel into the graph is closed and
	// enumeration plateaus.
	Compromised, CompromisedBanned int
}

// TrustLeak is one insider interception: the leak event that feeds
// trust updates — the leaked resources are blacklisted, and holders of
// a newly burned bridge become suspects under the banning rule.
type TrustLeak struct {
	// Day is the horizon day of the interception.
	Day int
	// User is the graph index of the user whose handout was
	// intercepted.
	User int
	// Resources is the intercepted handout.
	Resources []Resource
}

// TrustSweep binds a trust grid to a network with the shared substrate
// built once: the backend pool on the distribution day, the address
// index, and the introducer-hash reverse map.
type TrustSweep struct {
	Net *sim.Network
	Cfg TrustSweepConfig

	ix         *censor.AddrIndex
	backend    *Backend
	api        *HandoutAPI
	peerByHash map[netdb.Hash]int

	// splitBudget, when positive, forces rowPlan to cut rows at that
	// cost budget with a free seam — the test hook the seam-stitching
	// tests use to prove a split row's fresh-state replay is
	// byte-identical to the rolled-forward row. Production plans go
	// through PlanRowsCost, whose real seam model (a full prefix
	// replay) never finds a trust row worth cutting.
	splitBudget int
}

// NewTrustSweep validates the grid and builds the shared backend. Engine
// knobs ride the option shape shared with censor.NewSweep and NewSweep:
// measure.Workers overrides cfg.Workers, measure.Capture runs the
// capture pass before returning.
func NewTrustSweep(network *sim.Network, cfg TrustSweepConfig, opts ...measure.EngineOption) (*TrustSweep, error) {
	eo := measure.BuildOptions(opts...)
	cfg.Workers = eo.WorkersOr(cfg.Workers)
	if err := validateTrustDistributors(cfg.Distributors); err != nil {
		return nil, err
	}
	if len(cfg.Enumerators) == 0 {
		return nil, fmt.Errorf("distrib: trust sweep needs at least one enumerator")
	}
	if cfg.HorizonDays < 0 {
		return nil, fmt.Errorf("distrib: negative horizon %d", cfg.HorizonDays)
	}
	if cfg.Day < 0 || cfg.Day+cfg.HorizonDays >= network.Days() {
		return nil, fmt.Errorf("distrib: horizon (day %d + %d) exceeds network days (%d)",
			cfg.Day, cfg.HorizonDays, network.Days())
	}
	if cfg.IntroducersPerBridge <= 0 {
		cfg.IntroducersPerBridge = 3
	}
	if cfg.MaxResources <= 0 {
		cfg.MaxResources = 200
	}
	dists := make([]Distributor, len(cfg.Distributors))
	for i, d := range cfg.Distributors {
		dists[i] = d
	}
	backend, err := NewBackend(network, BackendConfig{
		Strategy:     cfg.Strategy,
		Day:          cfg.Day,
		MaxResources: cfg.MaxResources,
		Seed:         cfg.SeedBase,
	}, dists)
	if err != nil {
		return nil, err
	}
	api, err := NewHandoutAPI(backend, dists)
	if err != nil {
		return nil, err
	}
	s := &TrustSweep{
		Net:        network,
		Cfg:        cfg,
		ix:         censor.IndexFor(network),
		backend:    backend,
		api:        api,
		peerByHash: peerIndexByHash(network),
	}
	if eo.CaptureCtx != nil {
		if err := s.Capture(eo.CaptureCtx); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Capture implements the shared engine-option capture pass. The trust
// sweep's shared substrate — the backend ring and handout API — is
// already built eagerly by NewTrustSweep and its rolling rows carry all
// remaining state privately, so there is nothing left to warm; the
// method exists so measure.Capture means the same thing on all three
// sweeps.
func (s *TrustSweep) Capture(ctx context.Context) error { return ctx.Err() }

// HandoutAPI returns the shared handout API over the sweep's backend —
// the same request → handout path the rolling rows resolve through.
func (s *TrustSweep) HandoutAPI() *HandoutAPI { return s.api }

// Backend returns the shared backend.
func (s *TrustSweep) Backend() *Backend { return s.backend }

// Cells enumerates the grid in deterministic order: horizon days
// outermost, then enumerators, then distributors — the same layout as
// distrib.Sweep, which makes cell i's row simply i % (enums x dists).
func (s *TrustSweep) Cells() []TrustCell {
	out := make([]TrustCell, 0, (s.Cfg.HorizonDays+1)*len(s.Cfg.Enumerators)*len(s.Cfg.Distributors))
	for h := 0; h <= s.Cfg.HorizonDays; h++ {
		for _, e := range s.Cfg.Enumerators {
			for _, d := range s.Cfg.Distributors {
				out = append(out, TrustCell{Dist: d, Enum: e, Day: h})
			}
		}
	}
	return out
}

// rowSeed derives a row's private seed from its coordinates — never
// from grid position, so reshaping the horizon cannot change a row.
func (s *TrustSweep) rowSeed(d *TrustSocial, e Enumerator) uint64 {
	return mix(s.Cfg.SeedBase,
		keyOfString(d.Name()),
		uint64(e.Kind)+1,
		math.Float64bits(e.Budget),
		math.Float64bits(e.InsiderFrac))
}

// rowPlan builds the grid's cost-aware row plan: one (distributor,
// enumerator) row per combination, days ascending. Cells cost one unit
// each, but a trust row's seam is the full prefix replay — resuming at
// horizon day h re-simulates days 0..h-1 — so PlanRowsCost's seam gate
// correctly never cuts one: the cost model records *why* trust rows
// stay whole rather than the scheduler just not trying. The splitBudget
// hook forces cuts anyway (seam declared free) so tests can prove the
// replay seam is byte-exact.
func (s *TrustSweep) rowPlan(cells []TrustCell) measure.RowPlan {
	rows := len(s.Cfg.Enumerators) * len(s.Cfg.Distributors)
	rowOf := func(i int) int { return i % rows }
	key := func(i int) int { return cells[i].Day }
	if s.splitBudget > 0 {
		return measure.PlanRows(len(cells), rows, rowOf, key).SplitRows(nil, nil, s.splitBudget)
	}
	seam := func(i int) int { return cells[i].Day }
	return measure.PlanRowsCost(len(cells), rows, rowOf, key, nil, seam, s.Cfg.Workers)
}

// Run evaluates every cell and returns results in Cells() order. Cells
// are scheduled as rolling rows — one (distributor, enumerator) row per
// combination, days ascending, each row sliding one trustState a day at
// a time through the measure.FanRows pool. Any Workers value yields
// byte-identical results; the first error (or ctx cancellation) stops
// the remaining rows.
func (s *TrustSweep) Run(ctx context.Context) ([]TrustCellResult, error) {
	// One lazily-built state per plan row (see RunCheckpointed): a split
	// row's later segment gets a fresh state whose advanceTo replays the
	// prefix — the exact resumability Reference proves — so segments
	// never share state.
	return s.RunCheckpointed(ctx, "")
}

// Reference replays one cell from scratch: a fresh trustState advanced
// serially from day zero through the cell's horizon day. It is the
// golden reference the rolling rows are tested byte-identical against —
// sliding a row is exactly resuming this replay.
func (s *TrustSweep) Reference(c TrustCell) TrustCellResult {
	st := s.newTrustState(c.Dist, c.Enum)
	st.advanceTo(c.Day)
	return st.result(c)
}

// trustState is one row's mutable arms-race state: the per-user trust
// dynamics plus the censor's discoveries. Each row owns one; nothing in
// it is shared.
type trustState struct {
	s    *TrustSweep
	dist *TrustSocial
	enum Enumerator
	part *Partition
	seed uint64
	rng  *rand.Rand

	// Per-user dynamic state, indexed by graph user index.
	level       []int
	strikes     []float64 // direct shared-bridge strikes; bans count these
	susp        []float64 // propagated suspicion from descendants; demotes, never bans
	banned      []bool
	compromised []bool // insider-controlled users (Insider rows only)
	clean       []int  // consecutive clean days, resets on suspicion
	attempt     []int  // re-request arc offset (see TrustSocial.Grant)
	handout     [][]Resource

	// Censor state: blacklist + discoveries with the discover/usable
	// rules shared with the arms-race cells (view.go).
	cv         *censorView
	crawlCarry float64
	sybils     []uint64 // persistent sybil identities (never invited)

	bannedCount      int
	numCompromised   int
	compromisedAlive int // compromised and not yet banned
	leaks            int
	day              int // last simulated horizon day, -1 before day zero
	last             TrustCellResult

	// Per-day scratch, reused across steps instead of reallocated every
	// day (the sweep engines' remaining per-cell allocation pressure).
	// Safe because nothing ranges over the maps — they are written then
	// looked up by key, so reuse cannot introduce iteration-order
	// dependence — and every user clears before filling.
	burnedBefore map[int]bool
	newlyBurned  map[int]bool
	struck       []bool
	burns        []TrustLeak
}

// newTrustState initializes a row at the eve of the distribution day.
func (s *TrustSweep) newTrustState(d *TrustSocial, e Enumerator) *trustState {
	g := d.Graph()
	n := g.Len()
	seed := s.rowSeed(d, e)
	rng := rand.New(rand.NewPCG(seed, seed^0x5A17A0A17A0A5A17))
	st := &trustState{
		s:           s,
		dist:        d,
		enum:        e,
		part:        s.backend.Partition(d.Name()),
		seed:        seed,
		rng:         rng,
		level:       make([]int, n),
		strikes:     make([]float64, n),
		susp:        make([]float64, n),
		banned:      make([]bool, n),
		compromised: make([]bool, n),
		clean:       make([]int, n),
		attempt:     make([]int, n),
		handout:     make([][]Resource, n),
		cv:          newCensorView(s.Net, s.ix, s.peerByHash, s.Cfg.IntroducersPerBridge, rng),
		day:         -1,

		burnedBefore: make(map[int]bool),
		newlyBurned:  make(map[int]bool),
		struck:       make([]bool, n),
	}
	for i, u := range g.Users() {
		st.level[i] = u.Level
	}
	if e.Kind == Insider {
		// The insider's foothold: each user is compromised with
		// probability InsiderFrac, drawn once — where the draws land in
		// the graph decides how much one quarantine wave costs the
		// censor.
		for i := range st.compromised {
			if st.rng.Float64() < e.InsiderFrac {
				st.compromised[i] = true
				st.numCompromised++
			}
		}
		st.compromisedAlive = st.numCompromised
	}
	if e.Kind == Sybil {
		st.sybils = make([]uint64, e.sybilCount(d.IdentityCost()))
		for i := range st.sybils {
			st.sybils[i] = mix(seed, 0x737962696C, uint64(i)) // "sybil"
		}
	}
	return st
}

// advanceTo slides the row through every horizon day up to and
// including `to`. Days are simulated one at a time — sliding from day
// h-1 to h is exactly what a from-scratch replay of day h does after
// day h-1, which is why resumed rows match Reference bit for bit. A
// revisited day (duplicate grid entries) is a no-op.
func (st *trustState) advanceTo(to int) {
	for d := st.day + 1; d <= to; d++ {
		st.step(d)
	}
}

// ban quarantines a user and their whole invitation subtree — the
// Salmon rule's blast radius. Already-banned descendants are skipped.
func (st *trustState) ban(u int) {
	if st.banned[u] {
		return
	}
	st.banned[u] = true
	st.bannedCount++
	if st.compromised[u] {
		st.compromisedAlive--
	}
	for _, c := range st.dist.Graph().Users()[u].Children {
		st.ban(c)
	}
}

// step simulates one horizon day, in a fixed phase order (promotion,
// requests + interception, identity-based enumeration, banning, clean
// accounting, metrics). Every random draw comes from the row's rng in
// this order, which is what makes sliding resumable.
func (st *trustState) step(h int) {
	g := st.dist.Graph()
	users := g.Users()
	day := st.s.Cfg.Day + h
	cfg := st.dist.Config()

	// 1. Promotion: PromoteDays consecutive clean days earn one level.
	if h > 0 {
		for u := range users {
			if !st.banned[u] && st.clean[u] >= cfg.PromoteDays && st.level[u] < g.Config().MaxLevel {
				st.level[u]++
				st.clean[u] = 0
			}
		}
	}

	// 2. Requests. A user requests when they hold no usable bridge (day
	// zero: everyone bootstraps), re-requesting up to their trust
	// level's rate limit; each failed attempt rotates them to a fresh
	// arc. A compromised user reports every handout they are served —
	// the TrustLeak events that feed the censor and, through burned
	// bridges, the banning rule below — so the rate limit also caps how
	// fast the insider can milk the ring.
	requests := 0
	newBurns := st.burns[:0]
	for u := range users {
		if st.banned[u] {
			continue
		}
		if h > 0 && st.cv.anyUsable(st.handout[u], day) {
			continue
		}
		limit := g.RequestLimit(st.level[u])
		for r := 0; r < limit; r++ {
			// Serve can only fail on an encoding round trip, which the
			// trust channel never performs.
			served, _ := st.s.api.Serve(Request{
				Dist: st.dist.Name(), ID: users[u].ID, Day: day, Attempt: st.attempt[u],
			})
			hr := served.Resources
			st.handout[u] = hr
			requests++
			if st.compromised[u] {
				st.leaks++
				newBurns = append(newBurns, TrustLeak{Day: h, User: u, Resources: hr})
			}
			if st.cv.anyUsable(hr, day) {
				break
			}
			st.attempt[u]++
		}
	}
	st.burns = newBurns // keep the grown capacity for the next day
	// Leaks burn after the request phase: the censor deploys the day's
	// intercepts in one batch, so a leak never blocks the very request
	// wave it was harvested from.
	burnedBefore := st.burnedBefore
	clear(burnedBefore)
	for _, l := range newBurns {
		for _, r := range l.Resources {
			if st.cv.discovered[r.Peer] {
				burnedBefore[r.Peer] = true
			}
		}
	}
	for _, l := range newBurns {
		st.cv.discover(l.Resources, day)
	}

	// 3. Identity-based enumeration. Crawler and sybil identities were
	// never invited, so the graph serves them nothing — the zeros are
	// the channel's defense, and the code path proves it rather than
	// assuming it.
	switch st.enum.Kind {
	case Crawler:
		k := st.enum.requestsOn(st.dist.IdentityCost(), &st.crawlCarry)
		for i := 0; i < k; i++ {
			id := mix(st.seed, 0x637261776C, uint64(day), uint64(i)) // "crawl"
			if served, _ := st.s.api.Serve(Request{Dist: st.dist.Name(), ID: id, Day: day}); len(served.Resources) > 0 {
				st.cv.discover(served.Resources, day)
			}
		}
	case Sybil:
		for _, id := range st.sybils {
			if served, _ := st.s.api.Serve(Request{Dist: st.dist.Name(), ID: id, Day: day}); len(served.Resources) > 0 {
				st.cv.discover(served.Resources, day)
			}
		}
	}

	// 4. Salmon banning. Holders of a bridge that burned today are
	// shared-bridge suspects: one direct strike and one trust level
	// down each. Suspicion propagates up the invitation chain at
	// PropagateFrac per hop, but propagated suspicion only demotes
	// trust (each accumulated unit costs the ancestor a level) — it
	// never bans, so a noisy branch cannot cascade the whole tree away
	// through its seed. Repeat offenders — direct strikes crossing
	// BanThreshold — are banned and their invitation subtree
	// quarantined with them.
	newlyBurned := st.newlyBurned
	clear(newlyBurned)
	for _, l := range newBurns {
		for _, r := range l.Resources {
			if !burnedBefore[r.Peer] {
				newlyBurned[r.Peer] = true
			}
		}
	}
	if len(newlyBurned) > 0 {
		struck := st.struck
		clear(struck)
		for u := range users {
			if st.banned[u] || st.handout[u] == nil {
				continue
			}
			for _, r := range st.handout[u] {
				if newlyBurned[r.Peer] {
					struck[u] = true
					break
				}
			}
		}
		for u := range users {
			if !struck[u] {
				continue
			}
			st.strikes[u]++
			st.clean[u] = 0
			if st.level[u] > 0 {
				st.level[u]--
			}
			add := cfg.PropagateFrac
			for v := users[u].Parent; v >= 0; v = users[v].Parent {
				st.susp[v] += add
				st.clean[v] = 0
				for st.susp[v] >= 1 {
					st.susp[v]--
					if st.level[v] > 0 {
						st.level[v]--
					}
				}
				add *= cfg.PropagateFrac
			}
		}
		for u := range users {
			if !st.banned[u] && st.strikes[u] >= cfg.BanThreshold {
				st.ban(u)
			}
		}
	}

	// 5. Clean-day accounting for the survivors (struck users were
	// reset above, so their streak restarts at one).
	for u := range users {
		if !st.banned[u] {
			st.clean[u]++
		}
	}

	// 6. The day's outcome.
	okUsers := 0
	trustSum, trustN := 0, 0
	for u := range users {
		if st.handout[u] != nil && st.cv.anyUsable(st.handout[u], day) {
			okUsers++
		}
		if !st.banned[u] {
			trustSum += st.level[u]
			trustN++
		}
	}
	alive := 0
	for _, r := range st.part.Resources() {
		if st.cv.usable(r, day) {
			alive++
		}
	}
	st.last = TrustCellResult{
		Users:             len(users),
		Bootstrap:         frac(okUsers, len(users)),
		Survival:          frac(alive, st.part.Len()),
		Enumerated:        frac(len(st.cv.discovered), st.part.Len()),
		Banned:            frac(st.bannedCount, len(users)),
		Requests:          requests,
		Leaks:             st.leaks,
		Compromised:       st.numCompromised,
		CompromisedBanned: st.numCompromised - st.compromisedAlive,
	}
	if trustN > 0 {
		st.last.MeanTrust = float64(trustSum) / float64(trustN)
	}
	st.day = h
}

// result labels the row's current state for one cell.
func (st *trustState) result(c TrustCell) TrustCellResult {
	r := st.last
	r.Distributor = c.Dist.Name()
	r.Enumerator = c.Enum.Name()
	r.Day = c.Day
	return r
}
