package distrib

import (
	"fmt"
	"sort"
	"testing"
)

// FuzzHashringAssignment fuzzes the stable-assignment invariant of the
// backend hashring (see the package doc): a resource's frontend
// assignment depends only on (resource key, distributor name set), so
//
//   - reordering the distributor list never changes an assignment,
//   - removing one distributor only reassigns that distributor's own
//     resources — every survivor keeps its owner,
//   - pool churn (resources joining or leaving, including through the
//     MaxResources selection cap) never reshuffles the surviving
//     assignments: the cap displaces at most the boundary resource.
//
// The fuzzer drives all three at once from (seed, pool size, name-set
// size, drop choices, cap).
func FuzzHashringAssignment(f *testing.F) {
	f.Add(uint64(1), uint16(40), uint8(4), uint8(1), uint16(10), uint16(7))
	f.Add(uint64(2018), uint16(300), uint8(1), uint8(0), uint16(0), uint16(0))
	f.Add(uint64(7), uint16(2), uint8(7), uint8(6), uint16(1), uint16(1))
	f.Add(uint64(0), uint16(0), uint8(0), uint8(0), uint16(0), uint16(0))
	f.Fuzz(func(t *testing.T, seed uint64, nRes uint16, nNames, dropName uint8, capN, dropRes uint16) {
		numRes := 1 + int(nRes)%400
		numNames := 1 + int(nNames)%8

		// A seeded name set and resource pool: keys derive from the
		// fuzz seed exactly like real keys derive from identity hashes.
		names := make([]string, numNames)
		for i := range names {
			names[i] = fmt.Sprintf("dist-%x", mix(seed, 0x6E616D65, uint64(i))&0xFFFF) // "name"
		}
		pool := make([]Resource, numRes)
		for i := range pool {
			pool[i] = Resource{Peer: i, Key: mix(seed, uint64(i))}
		}

		ring := buildRing(names)
		base := make(map[int]string, numRes)
		for _, r := range pool {
			base[r.Peer] = ring.owner(r.Key)
		}

		// 1. Reordering: a rotated name list builds an identical
		// assignment.
		rot := int(seed % uint64(numNames))
		rotated := append(append([]string(nil), names[rot:]...), names[:rot]...)
		rring := buildRing(rotated)
		for _, r := range pool {
			if got := rring.owner(r.Key); got != base[r.Peer] {
				t.Fatalf("resource %d moved %s -> %s under name reordering", r.Peer, base[r.Peer], got)
			}
		}

		// 2. Removing one distributor reassigns only its own arc.
		if numNames > 1 {
			di := int(dropName) % numNames
			survivors := append(append([]string(nil), names[:di]...), names[di+1:]...)
			sring := buildRing(survivors)
			for _, r := range pool {
				got := sring.owner(r.Key)
				if base[r.Peer] != names[di] && got != base[r.Peer] {
					t.Fatalf("resource %d moved %s -> %s when unrelated %s left",
						r.Peer, base[r.Peer], got, names[di])
				}
				if base[r.Peer] == names[di] && got == names[di] {
					t.Fatalf("resource %d still assigned to removed distributor", r.Peer)
				}
			}
		}

		// 3. Pool churn through the MaxResources cap: dropping one pool
		// resource displaces at most the sample's boundary member, and
		// every surviving sample member keeps its ring owner.
		max := 1 + int(capN)%numRes
		sample := capResources(append([]Resource(nil), pool...), max)
		if len(sample) != min(max, numRes) {
			t.Fatalf("cap kept %d of %d, want %d", len(sample), numRes, min(max, numRes))
		}
		inSample := make(map[int]bool, len(sample))
		for _, r := range sample {
			inSample[r.Peer] = true
		}
		drop := int(dropRes) % numRes
		churned := make([]Resource, 0, numRes-1)
		for _, r := range pool {
			if r.Peer != drop {
				churned = append(churned, r)
			}
		}
		if len(churned) == 0 {
			return
		}
		fresh := 0
		for _, r := range capResources(churned, max) {
			if !inSample[r.Peer] {
				fresh++
			}
			if got := ring.owner(r.Key); got != base[r.Peer] {
				t.Fatalf("sample resource %d moved %s -> %s under pool churn", r.Peer, base[r.Peer], got)
			}
		}
		if fresh > 1 {
			t.Fatalf("dropping one resource replaced %d sample members, want at most 1", fresh)
		}

		// 4. Retirement (the service prober's move): an arbitrary subset
		// of the pool dies and is filtered out of responses, but the ring
		// and the partition are never rebuilt. The filtered arc walk must
		// be an order-preserving subsequence of the original with exactly
		// the retired members removed, and every survivor keeps both its
		// owner and its partition slot.
		part := &Partition{dist: "fuzz", res: append([]Resource(nil), pool...)}
		sort.Slice(part.res, func(i, j int) bool { return part.res[i].Key < part.res[j].Key })
		retired := make(map[int]bool)
		for _, r := range pool {
			if mix(seed, 0x726574, uint64(r.Peer))%3 == 0 { // "ret"
				retired[r.Peer] = true
			}
		}
		probeKey := mix(seed, 0x70726F6265) // "probe"
		n := 1 + int(capN)%8
		arc := part.GetMany(probeKey, n)
		served := make([]Resource, 0, len(arc))
		for _, r := range arc {
			if !retired[r.Peer] {
				served = append(served, r)
			}
		}
		ai := 0
		for _, r := range served {
			if retired[r.Peer] {
				t.Fatalf("retired resource %d served", r.Peer)
			}
			for ai < len(arc) && arc[ai].Peer != r.Peer {
				ai++
			}
			if ai == len(arc) {
				t.Fatal("filtered handout is not a subsequence of the arc")
			}
			ai++
			if got := ring.owner(r.Key); got != base[r.Peer] {
				t.Fatalf("survivor %d moved %s -> %s under retirement", r.Peer, base[r.Peer], got)
			}
			if got := part.SlotOf(r.Key); part.res[got].Peer != r.Peer {
				t.Fatalf("survivor %d lost its partition slot under retirement", r.Peer)
			}
		}
		deadInArc := 0
		for _, r := range arc {
			if retired[r.Peer] {
				deadInArc++
			}
		}
		if len(served)+deadInArc != len(arc) {
			t.Fatalf("filtered arc has %d members, want %d", len(served), len(arc)-deadInArc)
		}
	})
}
