package distrib

// This file is the unified handout API: the single request → handout
// code path behind every consumer of the distribution pipeline. The
// batch engines (distrib.Sweep's arms-race cells, TrustSweep's rolling
// rows) and the resident service (internal/service, cmd/i2pdistribd)
// all resolve handouts through HandoutAPI.Serve, so the determinism
// harness covering the sweeps covers the live daemon's responses by
// construction: same (backend, distributor, identity, day, attempt) →
// same bridge set, in the batch goldens and over HTTP alike.
//
// The split of responsibilities is deliberate:
//
//   - Distributor.Grant is the frontend's pure request *policy*: which
//     ring position a requester is served from and how many resources
//     the handout carries (or that the requester is served nothing —
//     the trust channel's answer to uninvited identities).
//   - HandoutAPI.Serve is the one *mechanism*: resolve the partition,
//     take the granted arc clockwise, and run any frontend encoding
//     round trip (manual-reseed's su3 bundle). No frontend carries its
//     own copy of this walk anymore.

import "fmt"

// Request identifies one handout request: the frontend, the requester's
// sticky identity key, the study day, and the re-request attempt
// (non-zero only on the trust channel's rate-limited re-requests;
// stateless frontends ignore it).
type Request struct {
	// Dist is the distributor (frontend) name.
	Dist string
	// ID is the requester's identity key (IdentityKey for string
	// identities such as HTTP clients).
	ID uint64
	// Day is the study day the handout is served on.
	Day int
	// Attempt is the re-request arc offset; zero for first requests.
	Attempt int
}

// Handout is one served handout.
type Handout struct {
	// Distributor and Day echo the request.
	Distributor string
	Day         int
	// Granted reports whether the frontend served this identity at all;
	// ungranted handouts are empty with a zero Key (the trust channel
	// serves uninvited identities nothing).
	Granted bool
	// Key is the ring position the handout was served from. Equal keys
	// imply equal handouts, so callers may cache a handout until the
	// requester's key changes.
	Key uint64
	// Resources is the served bridge set, in ring order from Key.
	Resources []Resource
}

// IdentityKey hashes a string identity (an HTTP client identifier, an
// email account) onto the requester ring — the service-side analog of
// the sweeps' minted uint64 identities.
func IdentityKey(s string) uint64 { return keyOfString(s) }

// recordRoundTripper is the optional frontend hook for channels whose
// handouts ride a real encoding (manual-reseed's su3 bundles): Serve
// passes the granted arc through it so whatever the codec would reject
// can never be distributed.
type recordRoundTripper interface {
	roundTrip(part *Partition, sel []Resource) ([]Resource, error)
}

// HandoutAPI serves deterministic per-identity handouts from one
// backend. It is immutable after NewHandoutAPI and safe for unbounded
// concurrent use — sweep cells and HTTP handlers share one.
type HandoutAPI struct {
	backend *Backend
	dists   map[string]Distributor
	names   []string
}

// NewHandoutAPI binds the distributors to a backend built over the same
// name set. Every distributor must own a partition on the backend.
func NewHandoutAPI(backend *Backend, dists []Distributor) (*HandoutAPI, error) {
	if backend == nil {
		return nil, fmt.Errorf("distrib: handout API needs a backend")
	}
	if len(dists) == 0 {
		return nil, fmt.Errorf("distrib: handout API needs at least one distributor")
	}
	a := &HandoutAPI{
		backend: backend,
		dists:   make(map[string]Distributor, len(dists)),
		names:   make([]string, 0, len(dists)),
	}
	for _, d := range dists {
		if _, dup := a.dists[d.Name()]; dup {
			return nil, fmt.Errorf("distrib: duplicate distributor %q", d.Name())
		}
		if backend.Partition(d.Name()) == nil {
			return nil, fmt.Errorf("distrib: backend has no partition for distributor %q", d.Name())
		}
		a.dists[d.Name()] = d
		a.names = append(a.names, d.Name())
	}
	return a, nil
}

// Backend returns the backend the API serves from.
func (a *HandoutAPI) Backend() *Backend { return a.backend }

// Distributors returns the frontend names in construction order.
func (a *HandoutAPI) Distributors() []string { return a.names }

// Distributor returns a frontend by name.
func (a *HandoutAPI) Distributor(name string) (Distributor, bool) {
	d, ok := a.dists[name]
	return d, ok
}

// Key returns the ring key Serve would serve the request from, with
// granted=false when the frontend serves this identity nothing. Equal
// (key, granted) imply equal handouts, so callers may cache a handout
// until the requester's key changes — sparing a re-request's work (for
// manual-reseed, a whole bundle round trip) when the rotation bucket
// hasn't moved.
func (a *HandoutAPI) Key(req Request) (key uint64, granted bool, err error) {
	d, ok := a.dists[req.Dist]
	if !ok {
		return 0, false, fmt.Errorf("distrib: unknown distributor %q", req.Dist)
	}
	g, ok := d.Grant(req.ID, req.Day, req.Attempt)
	if !ok {
		return 0, false, nil
	}
	return g.Key, true, nil
}

// Serve resolves one request through the single handout code path:
// grant → partition arc → optional encoding round trip. Serve is
// deterministic in (backend, request) and safe for unbounded concurrent
// use.
func (a *HandoutAPI) Serve(req Request) (Handout, error) {
	d, ok := a.dists[req.Dist]
	if !ok {
		return Handout{}, fmt.Errorf("distrib: unknown distributor %q", req.Dist)
	}
	h := Handout{Distributor: req.Dist, Day: req.Day}
	g, ok := d.Grant(req.ID, req.Day, req.Attempt)
	if !ok {
		return h, nil
	}
	h.Granted, h.Key = true, g.Key
	part := a.backend.Partition(req.Dist)
	sel := part.GetMany(g.Key, g.Count)
	if rt, ok := d.(recordRoundTripper); ok {
		var err error
		if sel, err = rt.roundTrip(part, sel); err != nil {
			return Handout{}, err
		}
	}
	h.Resources = sel
	return h, nil
}
