package censor

import (
	"math/rand/v2"

	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// This file quantifies the Section 2.2.2 argument against port-based
// censorship: I2P runs on arbitrary ports in 9000–31000, so blocking that
// range catches every I2P peer — and a lot of legitimate traffic with it
// ("port blocking is not ideal for large-scale censorship because it can
// unintentionally block the traffic of other legitimate applications").

// I2P's configurable port range (Section 2.2.2).
const (
	I2PPortMin = 9000
	I2PPortMax = 31000
)

// appFlowSpec describes one class of legitimate background traffic: the
// ports it uses and its share of flows. Shares are per-mille and sum to
// 1000; the mix approximates a residential ISP's flow census.
type appFlowSpec struct {
	Name   string
	PortLo uint16
	PortHi uint16
	Share  int  // per-mille of background flows
	UDP    bool // informational
}

var backgroundFlows = []appFlowSpec{
	{"https", 443, 443, 520, false},
	{"http", 80, 80, 90, false},
	{"dns", 53, 53, 60, true},
	{"quic", 443, 443, 80, true},
	{"email", 587, 993, 20, false},
	{"ssh", 22, 22, 10, false},
	{"ntp", 123, 123, 10, true},
	{"bittorrent", 6881, 6999, 30, true},
	{"game-steam", 27015, 27050, 30, true},
	{"game-minecraft", 25565, 25565, 20, false},
	{"voip-sip", 5060, 5061, 10, true},
	{"webrtc-media", 16384, 32767, 60, true},
	{"vpn-openvpn", 1194, 1194, 20, true},
	{"vpn-wireguard", 51820, 51820, 20, true},
	{"rdp", 3389, 3389, 10, false},
	{"custom-services", 8000, 8999, 10, false},
}

// PortBlockingResult is the outcome of the port-range blocking evaluation.
type PortBlockingResult struct {
	// I2PBlockedPct is the share of I2P peer ports falling in the blocked
	// range (by construction near 100%).
	I2PBlockedPct float64
	// CollateralPct is the share of legitimate background flows caught by
	// the same rule.
	CollateralPct float64
	// CollateralByApp breaks the collateral damage down per application.
	CollateralByApp map[string]float64
}

// EvaluatePortBlocking simulates `flows` background flows and `peers` I2P
// peer ports, then applies a block rule covering I2P's whole port range.
func EvaluatePortBlocking(flows, peers int, seed uint64) PortBlockingResult {
	rng := rand.New(rand.NewPCG(seed, seed^0x94D049BB133111EB))

	// I2P side: every peer picks a port uniformly in the range.
	i2pBlocked := 0
	for i := 0; i < peers; i++ {
		port := uint16(I2PPortMin + rng.IntN(I2PPortMax-I2PPortMin+1))
		if port >= I2PPortMin && port <= I2PPortMax {
			i2pBlocked++
		}
	}

	// Background side: draw flows from the census, then check overlap.
	total := 0
	for _, spec := range backgroundFlows {
		total += spec.Share
	}
	blockedFlows := 0
	appTotals := make(map[string]int)
	appBlocked := make(map[string]int)
	for i := 0; i < flows; i++ {
		x := rng.IntN(total)
		var spec appFlowSpec
		for _, sp := range backgroundFlows {
			x -= sp.Share
			if x < 0 {
				spec = sp
				break
			}
		}
		port := spec.PortLo
		if spec.PortHi > spec.PortLo {
			port = spec.PortLo + uint16(rng.IntN(int(spec.PortHi-spec.PortLo)+1))
		}
		appTotals[spec.Name]++
		if port >= I2PPortMin && port <= I2PPortMax {
			blockedFlows++
			appBlocked[spec.Name]++
		}
	}

	byApp := make(map[string]float64, len(appTotals))
	for name, n := range appTotals {
		if n > 0 {
			byApp[name] = 100 * float64(appBlocked[name]) / float64(n)
		}
	}
	res := PortBlockingResult{
		CollateralByApp: byApp,
	}
	if peers > 0 {
		res.I2PBlockedPct = 100 * float64(i2pBlocked) / float64(peers)
	}
	if flows > 0 {
		res.CollateralPct = 100 * float64(blockedFlows) / float64(flows)
	}
	return res
}

// EvaluateAddressBlockingCollateral computes the collateral damage of the
// paper's preferred technique for comparison: address-based blocking only
// drops traffic to the blacklisted peer IPs, so legitimate flows (to
// unrelated destinations) are untouched. It exists to make the comparison
// explicit in the experiment output.
func EvaluateAddressBlockingCollateral(network *sim.Network) float64 {
	// Address blocking targets only observed I2P peer addresses; the
	// synthetic background flows above go to unrelated destinations.
	_ = network
	return 0
}
