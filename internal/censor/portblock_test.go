package censor

import "testing"

func TestEvaluatePortBlocking(t *testing.T) {
	res := EvaluatePortBlocking(100_000, 10_000, 1)

	// Every I2P peer port falls in the blocked range by construction.
	if res.I2PBlockedPct != 100 {
		t.Fatalf("I2P blocked = %.1f%%, want 100%%", res.I2PBlockedPct)
	}
	// The paper's point: collateral damage is substantial, not marginal.
	if res.CollateralPct < 3 || res.CollateralPct > 30 {
		t.Fatalf("collateral = %.1f%%, want meaningful single-to-double digits", res.CollateralPct)
	}
	// The web itself must remain unaffected (443/80 are outside the range).
	if res.CollateralByApp["https"] != 0 || res.CollateralByApp["http"] != 0 {
		t.Fatal("https/http flows blocked by the I2P port range")
	}
	// WebRTC media ports overlap the range heavily; the census must show it.
	if res.CollateralByApp["webrtc-media"] < 50 {
		t.Fatalf("webrtc collateral = %.1f%%, want > 50%% (16384-32767 overlaps 9000-31000)", res.CollateralByApp["webrtc-media"])
	}
	// Steam's 27015-27050 sits inside the range entirely.
	if res.CollateralByApp["game-steam"] != 100 {
		t.Fatalf("steam collateral = %.1f%%, want 100%%", res.CollateralByApp["game-steam"])
	}
	// BitTorrent's default 6881-6999 sits below the range.
	if res.CollateralByApp["bittorrent"] != 0 {
		t.Fatalf("bittorrent collateral = %.1f%%, want 0%%", res.CollateralByApp["bittorrent"])
	}
}

func TestEvaluatePortBlockingDeterministic(t *testing.T) {
	a := EvaluatePortBlocking(50_000, 5_000, 7)
	b := EvaluatePortBlocking(50_000, 5_000, 7)
	if a.CollateralPct != b.CollateralPct || a.I2PBlockedPct != b.I2PBlockedPct {
		t.Fatal("port blocking evaluation not deterministic")
	}
}

func TestEvaluatePortBlockingEmpty(t *testing.T) {
	res := EvaluatePortBlocking(0, 0, 1)
	if res.CollateralPct != 0 || res.I2PBlockedPct != 0 {
		t.Fatal("empty evaluation should be zero")
	}
}

func TestAddressBlockingCollateralIsZero(t *testing.T) {
	if got := EvaluateAddressBlockingCollateral(nil); got != 0 {
		t.Fatalf("address blocking collateral = %v, want 0", got)
	}
}
