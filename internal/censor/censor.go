// Package censor implements Section 6's probabilistic address-based
// blocking model: a censor operating monitoring routers inside the network
// compiles a blacklist of observed peer IP addresses (with a configurable
// blacklist time window) and null-routes them; the blocking rate against a
// stable victim client is the fraction of peer addresses in the victim's
// netDb that appear on the blacklist. It also implements the Section 7
// bridge-selection strategies (newly joined and firewalled peers) proposed
// as mitigations, and the Section 7.2 eclipse escalation.
//
// The heavy lifting runs on two shared substrates: an AddrIndex that
// interns every address a peer will publish (so blacklists and netDb views
// are bitsets, not maps), and the Sweep engine that executes declarative
// (fleet x window x day) grids across the same worker pool — and under the
// same any-worker-count-is-byte-identical determinism contract — as
// measure.ObserveGrid.
package censor

import (
	"context"
	"fmt"
	"net/netip"

	"github.com/i2pstudy/i2pstudy/internal/cache"
	"github.com/i2pstudy/i2pstudy/internal/measure"
	"github.com/i2pstudy/i2pstudy/internal/sim"
	"github.com/i2pstudy/i2pstudy/internal/stats"
)

// Censor models the adversary of Section 6.2.1: "(1) a group of monitoring
// routers operated by a censor (e.g., ISP, government)".
type Censor struct {
	net       *sim.Network
	observers []*sim.Observer
	ix        *AddrIndex
	// WindowDays is the blacklist time window: an address stays blocked
	// for this many days after last being observed (the paper evaluates
	// 1, 5, 10, 20 and 30 days).
	WindowDays int

	// obsIDs memoizes observedIDs per (router, day): one bounded
	// cache.DayMemo ring per monitoring router, so a very long study
	// holds O(routers x DayMemoCap) day-slices instead of every
	// (router, day) pair ever computed. Eviction is invisible to
	// results — slices are pure in (observer seed, day), so a redrawn
	// day is byte-identical (TestObservedIDsMemoBounded).
	obsIDs []cache.DayMemo[[]int32]
}

// NewCensor creates a censor running `routers` monitoring routers, split
// between floodfill and non-floodfill mode like the paper's fleet, with
// the given blacklist window.
func NewCensor(network *sim.Network, routers, windowDays int, seedBase uint64) (*Censor, error) {
	if routers <= 0 {
		return nil, fmt.Errorf("censor: need at least one monitoring router")
	}
	if windowDays <= 0 {
		windowDays = 1
	}
	c := &Censor{net: network, ix: indexFor(network), WindowDays: windowDays}
	for i := 0; i < routers; i++ {
		c.observers = append(c.observers, network.NewObserver(sim.ObserverConfig{
			Name:       fmt.Sprintf("censor-%02d", i),
			Floodfill:  i%2 == 0,
			SharedKBps: sim.MaxSharedKBps,
			Seed:       seedBase + uint64(i),
		}))
	}
	c.obsIDs = make([]cache.DayMemo[[]int32], routers)
	for i := range c.obsIDs {
		c.obsIDs[i].Ring = obsIDsRing
	}
	return c, nil
}

// Routers returns the number of monitoring routers.
func (c *Censor) Routers() int { return len(c.observers) }

// observedIDs returns the interned address IDs of peers observed by one
// monitoring router on one day. Peers without published addresses
// (firewalled, hidden) contribute nothing — they cannot be address-blocked
// (Section 7.1). The result is memoized per (router, day) in the
// router's bounded ring and must not be modified.
func (c *Censor) observedIDs(router, day int) []int32 {
	return c.obsIDs[router].Get(day, func(day int) []int32 {
		var out []int32
		for _, idx := range c.observers[router].ObserveDay(day) {
			if c.net.Peers[idx].Status != sim.StatusKnownIP {
				continue
			}
			v4, v6 := c.ix.PeerIDs(idx, day)
			if v4 < 0 {
				continue
			}
			out = append(out, v4)
			if v6 >= 0 {
				out = append(out, v6)
			}
		}
		return out
	})
}

// blacklistSet compiles the blacklist in force on `day` using the first k
// monitoring routers and the given window: the union of addresses
// observed in (day-window, day], as a set over the address index.
func (c *Censor) blacklistSet(k, window, day int) *AddrSet {
	if k > len(c.observers) {
		k = len(c.observers)
	}
	set := c.ix.NewSet()
	start := day - window + 1
	if start < 0 {
		start = 0
	}
	for r := 0; r < k; r++ {
		for d := start; d <= day; d++ {
			set.AddAll(c.observedIDs(r, d))
		}
	}
	return set
}

// BlacklistAt compiles the blacklist in force on `day` using the first k
// monitoring routers: the union of addresses observed in the window
// (day-WindowDays, day]. The map is materialized from the internal
// address-index set for external callers; hot paths (BlockingRate,
// BlockedPeerFunc, the sweeps) stay on the set representation.
func (c *Censor) BlacklistAt(k, day int) map[netip.Addr]bool {
	set := c.blacklistSet(k, c.WindowDays, day)
	out := make(map[netip.Addr]bool, set.Len())
	set.ForEach(func(id int32) {
		out[c.ix.Addr(id)] = true
	})
	return out
}

// Victim models the client the censor wants to cut off: "a long-term I2P
// node who has been participating in the network and has many RouterInfos
// in its netDb" (Section 6.2.2). Its netDb accumulates the peers a
// client-grade router learns over the last few days.
type Victim struct {
	net *sim.Network
	obs *sim.Observer
	ix  *AddrIndex
	// NetDbWindowDays is how many trailing days of observations remain in
	// the victim's netDb. Non-floodfill routers expire RouterInfos after a
	// day (netdb.DefaultRouterInfoExpiry) but keep records on disk across
	// restarts, so a long-term client holds today's view plus a partially
	// stale tail; the default of 2 models that. Part of the tail belongs
	// to peers already offline, which a short blacklist window can never
	// cover — one of the two reasons wider windows raise blocking rates
	// (the other being accumulation over rotating addresses).
	NetDbWindowDays int

	// addrSets and knownPeers memoize the per-day netDb views in bounded
	// rings (cache.DefaultDayMemoCap days, like sim's ObserveDay memo):
	// every sweep cell sharing a day folds against the same victim view,
	// so without the memo a (fleet x window) grid recomputes it
	// fleets x windows times per day. Values are pure in (victim, day),
	// shared across callers, and strictly read-only.
	addrSets   cache.DayMemo[*AddrSet]
	knownPeers cache.DayMemo[[]int]
}

// NewVictim creates the stable client. It observes as an ordinary
// non-floodfill router with solid home bandwidth.
func NewVictim(network *sim.Network, seed uint64) *Victim {
	return &Victim{
		net: network,
		obs: network.NewObserver(sim.ObserverConfig{
			Name:       "victim",
			Floodfill:  false,
			SharedKBps: 512,
			Seed:       seed,
		}),
		ix:              indexFor(network),
		NetDbWindowDays: 2,
		addrSets:        cache.DayMemo[*AddrSet]{Ring: victimAddrSetRing},
		knownPeers:      cache.DayMemo[[]int]{Ring: victimKnownPeersRing},
	}
}

// retainStale reports whether a record observed on a *previous* day
// survives the 24-hour RouterInfo expiry into the victim's current netDb.
// Roughly half do: records refreshed late in the day outlive the pruning
// pass. The decision is deterministic per (peer, observation day).
func retainStale(idx, d int) bool {
	x := uint64(idx)*2654435761 + uint64(d)*40503 + 12345
	x ^= x >> 13
	return x%2 == 0
}

// addrSet returns the victim's known peer addresses on `day` as a set
// over the address index, memoized per day in a bounded ring. The set is
// shared by every caller (all cells of a sweep that evaluate the day)
// and must not be mutated.
func (v *Victim) addrSet(day int) *AddrSet {
	return v.addrSets.Get(day, v.buildAddrSet)
}

// buildAddrSet is the from-scratch reference compute behind addrSet —
// KnownAddresses without the map materialization: for every peer
// observed within the netDb window (today fully, earlier days subject to
// expiry), the address the peer published on the observation day. The
// golden equivalence tests and the pre-rolling benchmark comparator call
// it directly to reproduce the unmemoized per-cell cost.
func (v *Victim) buildAddrSet(day int) *AddrSet {
	set := v.ix.NewSet()
	start := day - v.NetDbWindowDays + 1
	if start < 0 {
		start = 0
	}
	for d := start; d <= day; d++ {
		for _, idx := range v.obs.ObserveDay(d) {
			if d < day && !retainStale(idx, d) {
				continue
			}
			if v.net.Peers[idx].Status != sim.StatusKnownIP {
				continue
			}
			v4, v6 := v.ix.PeerIDs(idx, d)
			set.Add(v4)
			set.Add(v6)
		}
	}
	return set
}

// KnownAddresses returns the peer addresses in the victim's netDb on
// `day`, materialized as a map for external callers (see addrSet).
func (v *Victim) KnownAddresses(day int) map[netip.Addr]bool {
	set := v.addrSet(day)
	out := make(map[netip.Addr]bool, set.Len())
	set.ForEach(func(id int32) {
		out[v.ix.Addr(id)] = true
	})
	return out
}

// KnownPeers returns the peer indexes in the victim's netDb on `day`
// (all statuses), used by the usability and bridge experiments — which
// call it per day per sweep cell, so the result is memoized per day in
// a bounded ring. Callers receive a shared slice and must not modify it.
func (v *Victim) KnownPeers(day int) []int {
	return v.knownPeers.Get(day, v.buildKnownPeers)
}

// buildKnownPeers is the from-scratch compute behind KnownPeers. The
// dedup runs on a bitset over peer indexes instead of the historical
// map[int]bool — same first-seen append order, so the memoized slice is
// byte-identical to what the map-based fold produced.
func (v *Victim) buildKnownPeers(day int) []int {
	seen := make([]uint64, (len(v.net.Peers)+63)/64)
	var out []int
	start := day - v.NetDbWindowDays + 1
	if start < 0 {
		start = 0
	}
	for d := start; d <= day; d++ {
		for _, idx := range v.obs.ObserveDay(d) {
			if d < day && !retainStale(idx, d) {
				continue
			}
			if w, b := idx>>6, uint64(1)<<(idx&63); seen[w]&b == 0 {
				seen[w] |= b
				out = append(out, idx)
			}
		}
	}
	return out
}

// BlockingRate computes the Section 6.2.1 metric on `day` with the first k
// censor routers: "the rate of peer IP addresses seen in the netDb of the
// victim, which can also be found in the netDb of routers that are
// controlled by the censor". The censor and victim must share a network.
func BlockingRate(c *Censor, v *Victim, k, day int) float64 {
	vic := v.addrSet(day)
	if vic.Len() == 0 {
		return 0
	}
	bl := c.blacklistSet(k, c.WindowDays, day)
	return float64(bl.IntersectCount(vic)) / float64(vic.Len())
}

// BlockedPeerFunc returns a predicate over peer indexes: whether the
// peer's current address is on the blacklist on `day`. Peers without
// addresses are never blocked.
func (c *Censor) BlockedPeerFunc(k, day int) func(peerIdx int) bool {
	return c.blockedPeerFunc(k, c.WindowDays, day)
}

// blockedPeerFunc is BlockedPeerFunc with an explicit window (the sweep
// engine evaluates several windows against one censor fleet).
func (c *Censor) blockedPeerFunc(k, window, day int) func(peerIdx int) bool {
	set := c.blacklistSet(k, window, day)
	ix := c.ix
	return func(idx int) bool {
		v4, v6 := ix.PeerIDs(idx, day)
		return set.Has(v4) || set.Has(v6)
	}
}

// Figure13 sweeps censor fleet sizes and blacklist windows, producing one
// series per window, each giving the cumulative blocking rate (percent)
// versus the number of monitoring routers — the paper's Figure 13.
//
// Deprecated: use Figure13Context, the canonical ctx-taking form; this
// shim runs it under context.Background with auto workers.
func Figure13(network *sim.Network, maxRouters int, windows []int, day int, seedBase uint64) (*stats.Figure, error) {
	return Figure13Context(context.Background(), network, maxRouters, windows, day, seedBase, 0)
}

// Figure13Context runs the Figure 13 sweep on the adversary engine: one
// censor fleet and one victim are built once and shared by every window
// series (observers are deterministic in (seed, day), so reuse never
// changes a draw); captures warm through the parallel engine; each window
// cell folds an incremental blacklist union over fleet prefixes. Any
// workers value yields a byte-identical figure.
func Figure13Context(ctx context.Context, network *sim.Network, maxRouters int, windows []int, day int, seedBase uint64, workers int) (*stats.Figure, error) {
	if len(windows) == 0 {
		windows = []int{1, 5, 10, 20, 30}
	}
	sw, err := NewSweep(network, SweepConfig{
		Fleets:   []int{maxRouters},
		Windows:  windows,
		Days:     []int{day},
		SeedBase: seedBase,
	}, measure.Workers(workers), measure.Capture(ctx))
	if err != nil {
		return nil, err
	}
	cells := sw.Cells()
	series := make([][]float64, len(cells))
	err = sw.Each(ctx, func(i int, cu *Cursor) error {
		cell := cu.Cell()
		series[i] = sw.BlockingSeries(cell.Window, cell.Day, cell.Fleet)
		return nil
	})
	if err != nil {
		return nil, err
	}
	fig := &stats.Figure{
		Title:  "Figure 13: Blocking rates under different blacklist time windows",
		XLabel: "routers under censor control",
		YLabel: "blocking rate (%)",
	}
	for i, cell := range cells {
		s := fig.AddSeries(fmt.Sprintf("%d day", cell.Window))
		for k, rate := range series[i] {
			s.Append(float64(k+1), 100*rate)
		}
	}
	return fig, nil
}
