// Package censor implements Section 6's probabilistic address-based
// blocking model: a censor operating monitoring routers inside the network
// compiles a blacklist of observed peer IP addresses (with a configurable
// blacklist time window) and null-routes them; the blocking rate against a
// stable victim client is the fraction of peer addresses in the victim's
// netDb that appear on the blacklist. It also implements the Section 7
// bridge-selection strategies (newly joined and firewalled peers) proposed
// as mitigations.
package censor

import (
	"fmt"
	"net/netip"

	"github.com/i2pstudy/i2pstudy/internal/sim"
	"github.com/i2pstudy/i2pstudy/internal/stats"
)

// Censor models the adversary of Section 6.2.1: "(1) a group of monitoring
// routers operated by a censor (e.g., ISP, government)".
type Censor struct {
	net       *sim.Network
	observers []*sim.Observer
	// WindowDays is the blacklist time window: an address stays blocked
	// for this many days after last being observed (the paper evaluates
	// 1, 5, 10, 20 and 30 days).
	WindowDays int
}

// NewCensor creates a censor running `routers` monitoring routers, split
// between floodfill and non-floodfill mode like the paper's fleet, with
// the given blacklist window.
func NewCensor(network *sim.Network, routers, windowDays int, seedBase uint64) (*Censor, error) {
	if routers <= 0 {
		return nil, fmt.Errorf("censor: need at least one monitoring router")
	}
	if windowDays <= 0 {
		windowDays = 1
	}
	c := &Censor{net: network, WindowDays: windowDays}
	for i := 0; i < routers; i++ {
		c.observers = append(c.observers, network.NewObserver(sim.ObserverConfig{
			Name:       fmt.Sprintf("censor-%02d", i),
			Floodfill:  i%2 == 0,
			SharedKBps: sim.MaxSharedKBps,
			Seed:       seedBase + uint64(i),
		}))
	}
	return c, nil
}

// Routers returns the number of monitoring routers.
func (c *Censor) Routers() int { return len(c.observers) }

// addObservedIPs adds to `out` the IPv4/IPv6 addresses of peers observed
// by one monitoring router on one day. Peers without published addresses
// (firewalled, hidden) contribute nothing — they cannot be address-blocked
// (Section 7.1).
func (c *Censor) addObservedIPs(out map[netip.Addr]bool, router, day int) {
	o := c.observers[router]
	for _, idx := range o.ObserveDay(day) {
		p := c.net.Peers[idx]
		v4, v6 := p.AddrOnDay(day)
		if p.Status == sim.StatusKnownIP && v4.IsValid() {
			out[v4] = true
			if v6.IsValid() {
				out[v6] = true
			}
		}
	}
}

// observedIPs returns the addresses observed by the first k monitoring
// routers on one day.
func (c *Censor) observedIPs(k, day int) map[netip.Addr]bool {
	out := make(map[netip.Addr]bool)
	if k > len(c.observers) {
		k = len(c.observers)
	}
	for i := 0; i < k; i++ {
		c.addObservedIPs(out, i, day)
	}
	return out
}

// BlacklistAt compiles the blacklist in force on `day` using the first k
// monitoring routers: the union of addresses observed in the window
// (day-WindowDays, day].
func (c *Censor) BlacklistAt(k, day int) map[netip.Addr]bool {
	bl := make(map[netip.Addr]bool)
	start := day - c.WindowDays + 1
	if start < 0 {
		start = 0
	}
	for d := start; d <= day; d++ {
		for ip := range c.observedIPs(k, d) {
			bl[ip] = true
		}
	}
	return bl
}

// Victim models the client the censor wants to cut off: "a long-term I2P
// node who has been participating in the network and has many RouterInfos
// in its netDb" (Section 6.2.2). Its netDb accumulates the peers a
// client-grade router learns over the last few days.
type Victim struct {
	net *sim.Network
	obs *sim.Observer
	// NetDbWindowDays is how many trailing days of observations remain in
	// the victim's netDb. Non-floodfill routers expire RouterInfos after a
	// day (netdb.DefaultRouterInfoExpiry) but keep records on disk across
	// restarts, so a long-term client holds today's view plus a partially
	// stale tail; the default of 2 models that. Part of the tail belongs
	// to peers already offline, which a short blacklist window can never
	// cover — one of the two reasons wider windows raise blocking rates
	// (the other being accumulation over rotating addresses).
	NetDbWindowDays int
}

// NewVictim creates the stable client. It observes as an ordinary
// non-floodfill router with solid home bandwidth.
func NewVictim(network *sim.Network, seed uint64) *Victim {
	return &Victim{
		net: network,
		obs: network.NewObserver(sim.ObserverConfig{
			Name:       "victim",
			Floodfill:  false,
			SharedKBps: 512,
			Seed:       seed,
		}),
		NetDbWindowDays: 2,
	}
}

// retainStale reports whether a record observed on a *previous* day
// survives the 24-hour RouterInfo expiry into the victim's current netDb.
// Roughly half do: records refreshed late in the day outlive the pruning
// pass. The decision is deterministic per (peer, observation day).
func retainStale(idx, d int) bool {
	x := uint64(idx)*2654435761 + uint64(d)*40503 + 12345
	x ^= x >> 13
	return x%2 == 0
}

// KnownAddresses returns the peer addresses in the victim's netDb on
// `day`: for every peer observed within the netDb window (today fully,
// earlier days subject to expiry), the address the peer published on the
// observation day.
func (v *Victim) KnownAddresses(day int) map[netip.Addr]bool {
	out := make(map[netip.Addr]bool)
	start := day - v.NetDbWindowDays + 1
	if start < 0 {
		start = 0
	}
	for d := start; d <= day; d++ {
		for _, idx := range v.obs.ObserveDay(d) {
			if d < day && !retainStale(idx, d) {
				continue
			}
			p := v.net.Peers[idx]
			if p.Status != sim.StatusKnownIP {
				continue
			}
			v4, v6 := p.AddrOnDay(d)
			if v4.IsValid() {
				out[v4] = true
			}
			if v6.IsValid() {
				out[v6] = true
			}
		}
	}
	return out
}

// KnownPeers returns the peer indexes in the victim's netDb on `day`
// (all statuses), used by the usability and bridge experiments.
func (v *Victim) KnownPeers(day int) []int {
	seen := make(map[int]bool)
	var out []int
	start := day - v.NetDbWindowDays + 1
	if start < 0 {
		start = 0
	}
	for d := start; d <= day; d++ {
		for _, idx := range v.obs.ObserveDay(d) {
			if d < day && !retainStale(idx, d) {
				continue
			}
			if !seen[idx] {
				seen[idx] = true
				out = append(out, idx)
			}
		}
	}
	return out
}

// BlockingRate computes the Section 6.2.1 metric on `day` with the first k
// censor routers: "the rate of peer IP addresses seen in the netDb of the
// victim, which can also be found in the netDb of routers that are
// controlled by the censor".
func BlockingRate(c *Censor, v *Victim, k, day int) float64 {
	victimIPs := v.KnownAddresses(day)
	if len(victimIPs) == 0 {
		return 0
	}
	blacklist := c.BlacklistAt(k, day)
	blocked := 0
	for ip := range victimIPs {
		if blacklist[ip] {
			blocked++
		}
	}
	return float64(blocked) / float64(len(victimIPs))
}

// BlockedPeerFunc returns a predicate over peer indexes: whether the
// peer's current address is on the blacklist on `day`. Peers without
// addresses are never blocked.
func (c *Censor) BlockedPeerFunc(k, day int) func(peerIdx int) bool {
	blacklist := c.BlacklistAt(k, day)
	return func(idx int) bool {
		p := c.net.Peers[idx]
		v4, v6 := p.AddrOnDay(day)
		if v4.IsValid() && blacklist[v4] {
			return true
		}
		if v6.IsValid() && blacklist[v6] {
			return true
		}
		return false
	}
}

// Figure13 sweeps censor fleet sizes and blacklist windows, producing one
// series per window, each giving the cumulative blocking rate (percent)
// versus the number of monitoring routers — the paper's Figure 13.
func Figure13(network *sim.Network, maxRouters int, windows []int, day int, seedBase uint64) (*stats.Figure, error) {
	if len(windows) == 0 {
		windows = []int{1, 5, 10, 20, 30}
	}
	fig := &stats.Figure{
		Title:  "Figure 13: Blocking rates under different blacklist time windows",
		XLabel: "routers under censor control",
		YLabel: "blocking rate (%)",
	}
	victim := NewVictim(network, seedBase+10_000)
	victimIPs := victim.KnownAddresses(day)
	for _, w := range windows {
		c, err := NewCensor(network, maxRouters, w, seedBase)
		if err != nil {
			return nil, err
		}
		s := fig.AddSeries(fmt.Sprintf("%d day", w))
		// Build the blacklist incrementally: adding router k extends the
		// union, so the whole series costs one pass per router per window
		// day instead of re-scanning for every fleet size.
		start := day - w + 1
		if start < 0 {
			start = 0
		}
		bl := make(map[netip.Addr]bool)
		for k := 1; k <= maxRouters; k++ {
			for d := start; d <= day; d++ {
				c.addObservedIPs(bl, k-1, d)
			}
			blocked := 0
			for ip := range victimIPs {
				if bl[ip] {
					blocked++
				}
			}
			rate := 0.0
			if len(victimIPs) > 0 {
				rate = float64(blocked) / float64(len(victimIPs))
			}
			s.Append(float64(k), 100*rate)
		}
	}
	return fig, nil
}
