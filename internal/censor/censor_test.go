package censor

import (
	"reflect"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/sim"
)

var sharedNet *sim.Network

func network(t testing.TB) *sim.Network {
	t.Helper()
	if sharedNet != nil {
		return sharedNet
	}
	n, err := sim.New(sim.Config{Seed: 11, Days: 40, TargetDailyPeers: 2500})
	if err != nil {
		t.Fatal(err)
	}
	sharedNet = n
	return n
}

func TestNewCensorValidation(t *testing.T) {
	n := network(t)
	if _, err := NewCensor(n, 0, 1, 1); err == nil {
		t.Fatal("zero routers accepted")
	}
	c, err := NewCensor(n, 5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.WindowDays != 1 {
		t.Fatalf("window defaulted to %d, want 1", c.WindowDays)
	}
	if c.Routers() != 5 {
		t.Fatalf("routers = %d", c.Routers())
	}
}

func TestBlacklistGrowsWithRoutersAndWindow(t *testing.T) {
	n := network(t)
	c, err := NewCensor(n, 20, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	day := 20
	b1 := len(c.BlacklistAt(1, day))
	b5 := len(c.BlacklistAt(5, day))
	b20 := len(c.BlacklistAt(20, day))
	if !(b1 < b5 && b5 < b20) {
		t.Fatalf("blacklist must grow with routers: %d, %d, %d", b1, b5, b20)
	}
	cw, err := NewCensor(n, 20, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	b20w10 := len(cw.BlacklistAt(20, day))
	if b20w10 <= b20 {
		t.Fatalf("10-day window (%d) must exceed 1-day window (%d)", b20w10, b20)
	}
}

func TestVictimKnowsSubstantialNetDb(t *testing.T) {
	n := network(t)
	v := NewVictim(n, 99)
	day := 20
	addrs := v.KnownAddresses(day)
	peers := v.KnownPeers(day)
	if len(addrs) == 0 || len(peers) == 0 {
		t.Fatal("victim knows nothing")
	}
	// A stable client's netDb spans a good share of the daily network.
	daily := len(n.ActivePeers(day))
	if len(peers) < daily/3 {
		t.Fatalf("victim knows %d peers of %d daily", len(peers), daily)
	}
	// Known peers include unknown-IP peers; addresses only from known-IP.
	if len(addrs) >= len(peers) {
		t.Fatalf("addresses (%d) should be fewer than peers (%d)", len(addrs), len(peers))
	}
}

// TestFigure13Anchors reproduces the paper's headline blocking rates:
// >60% with 2 routers, ~90% with 6, >93% with 20 (1-day window); wider
// windows push rates higher.
func TestFigure13Anchors(t *testing.T) {
	n := network(t)
	v := NewVictim(n, 99)
	day := 20

	c1, err := NewCensor(n, 20, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2 := BlockingRate(c1, v, 2, day)
	r6 := BlockingRate(c1, v, 6, day)
	r20 := BlockingRate(c1, v, 20, day)
	if !(r2 < r6 && r6 < r20) {
		t.Fatalf("rates must increase with routers: %.3f, %.3f, %.3f", r2, r6, r20)
	}
	if r2 < 0.60 || r2 > 0.90 {
		t.Fatalf("2-router rate = %.3f, want ~0.65–0.75", r2)
	}
	if r6 < 0.80 || r6 > 0.97 {
		t.Fatalf("6-router rate = %.3f, want ~0.90", r6)
	}
	if r20 < 0.90 {
		t.Fatalf("20-router rate = %.3f, want > 0.90 (paper: >0.95)", r20)
	}

	// Expanding the window raises rates (Figure 13's family of curves).
	c5, err := NewCensor(n, 20, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	r10w5 := BlockingRate(c5, v, 10, day)
	r10w1 := BlockingRate(c1, v, 10, day)
	if r10w5 <= r10w1 {
		t.Fatalf("5-day window (%.3f) must beat 1-day (%.3f)", r10w5, r10w1)
	}
	if r10w5 < 0.90 {
		t.Fatalf("10 routers @ 5-day window = %.3f, want >= 0.90 (paper: 95%%)", r10w5)
	}

	c30, err := NewCensor(n, 20, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	r20w30 := BlockingRate(c30, v, 20, day)
	if r20w30 < r20 {
		t.Fatalf("30-day window (%.3f) must be at least the 1-day rate (%.3f)", r20w30, r20)
	}
	if r20w30 < 0.95 {
		t.Fatalf("20 routers @ 30-day window = %.3f, want ~0.98", r20w30)
	}
}

func TestFigure13FigureGeneration(t *testing.T) {
	n := network(t)
	fig, err := Figure13(n, 8, []int{1, 5}, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if s.Len() != 8 {
			t.Fatalf("series %s has %d points", s.Name, s.Len())
		}
		// Rates are percentages within [0, 100] and non-decreasing in
		// expectation; allow small sampling dips but require overall rise.
		if s.Y[0] >= s.Y[len(s.Y)-1] {
			t.Fatalf("series %s does not increase: %v", s.Name, s.Y)
		}
		for _, y := range s.Y {
			if y < 0 || y > 100 {
				t.Fatalf("rate out of range: %v", y)
			}
		}
	}
	// The 5-day window dominates the 1-day window at every fleet size.
	day1 := fig.FindSeries("1 day")
	day5 := fig.FindSeries("5 day")
	for i := range day1.Y {
		if day5.Y[i] < day1.Y[i]-3 { // small noise tolerance
			t.Fatalf("window ordering violated at k=%d: %v < %v", i+1, day5.Y[i], day1.Y[i])
		}
	}
	if fig.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestBlockedPeerFunc(t *testing.T) {
	n := network(t)
	c, err := NewCensor(n, 20, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	day := 20
	blocked := c.BlockedPeerFunc(20, day)
	nBlocked, nKnown := 0, 0
	for _, idx := range n.ActivePeers(day) {
		p := n.Peers[idx]
		if p.Status == sim.StatusKnownIP {
			nKnown++
			if blocked(idx) {
				nBlocked++
			}
		} else if blocked(idx) {
			t.Fatal("unknown-IP peer reported blocked")
		}
	}
	frac := float64(nBlocked) / float64(nKnown)
	if frac < 0.5 {
		t.Fatalf("strong censor blocks only %.2f of known-IP peers", frac)
	}
}

func TestBridgeStrategies(t *testing.T) {
	n := network(t)
	cfg := DefaultBridgeConfig()
	cfg.Day = 10
	cfg.HorizonDays = 8
	evs, err := EvaluateBridges(n, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 {
		t.Fatalf("evaluations = %d", len(evs))
	}
	byStrat := make(map[BridgeStrategy]BridgeEvaluation)
	for _, e := range evs {
		byStrat[e.Strategy] = e
		if e.PoolSize == 0 {
			t.Fatalf("strategy %v has empty pool", e.Strategy)
		}
		if len(e.UsableByDay) != cfg.HorizonDays+1 {
			t.Fatalf("strategy %v has %d days", e.Strategy, len(e.UsableByDay))
		}
		for _, u := range e.UsableByDay {
			if u < 0 || u > 1 {
				t.Fatalf("usable fraction out of range: %v", u)
			}
		}
	}
	random := byStrat[BridgeRandom]
	newly := byStrat[BridgeNewlyJoined]
	fw := byStrat[BridgeFirewalled]

	// Random known-IP bridges are mostly already blocked.
	if random.InitialUsable() > 0.5 {
		t.Fatalf("random bridges initially usable = %.2f, want < 0.5", random.InitialUsable())
	}
	// Newly joined bridges start better than random.
	if newly.InitialUsable() <= random.InitialUsable() {
		t.Fatalf("newly joined (%.2f) must start better than random (%.2f)",
			newly.InitialUsable(), random.InitialUsable())
	}
	// Firewalled bridges resist address blocking throughout.
	if fw.FinalUsable() <= random.FinalUsable() {
		t.Fatalf("firewalled (%.2f) must outlast random (%.2f)",
			fw.FinalUsable(), random.FinalUsable())
	}
	// Newly joined bridges decay as the censor discovers them
	// ("If the peers stay in the network long enough, they will be
	// discovered ... and eventually will be blocked").
	if newly.FinalUsable() >= newly.InitialUsable() {
		t.Fatalf("newly joined bridges must decay: initial %.2f, final %.2f",
			newly.InitialUsable(), newly.FinalUsable())
	}
}

func TestEvaluateBridgesValidation(t *testing.T) {
	n := network(t)
	cfg := DefaultBridgeConfig()
	cfg.Day = n.Days() - 1
	cfg.HorizonDays = 10
	if _, err := EvaluateBridges(n, 5, cfg); err == nil {
		t.Fatal("horizon past study end accepted")
	}
}

func TestBridgeStrategyStrings(t *testing.T) {
	for _, s := range []BridgeStrategy{BridgeRandom, BridgeNewlyJoined, BridgeFirewalled, BridgeCombined} {
		if s.String() == "" {
			t.Fatal("empty strategy name")
		}
	}
	if BridgeStrategy(42).String() == "" {
		t.Fatal("unknown strategy must format")
	}
}

func TestEclipseAttack(t *testing.T) {
	n := network(t)
	day := 20
	injected := 25
	weak, err := EclipseAttack(n, 2, 5, injected, day, 77)
	if err != nil {
		t.Fatal(err)
	}
	strong, err := EclipseAttack(n, 20, 5, injected, day, 77)
	if err != nil {
		t.Fatal(err)
	}
	// Tighter blocking shrinks the honest usable pool, so the attacker's
	// share must grow.
	if strong.AttackerShare <= weak.AttackerShare {
		t.Fatalf("attacker share did not grow with blocking: %.3f vs %.3f",
			weak.AttackerShare, strong.AttackerShare)
	}
	// Under a 20-router censor with a 5-day list (~99% blocking), the
	// injected routers should dominate the usable view.
	if strong.AttackerShare < 0.3 {
		t.Fatalf("strong-censor attacker share = %.3f, want dominant", strong.AttackerShare)
	}
	if strong.TunnelCompromiseP2 != strong.AttackerShare*strong.AttackerShare {
		t.Fatal("tunnel compromise probability inconsistent")
	}
	if strong.UsablePeers < injected {
		t.Fatal("usable peers cannot be below the injected count")
	}
	// Sweep machinery.
	fig, results, err := EclipseSweep(n, []int{2, 20}, 5, injected, day, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || len(fig.Series) != 2 {
		t.Fatal("sweep shape wrong")
	}
	if RenderEclipse(results) == "" {
		t.Fatal("empty render")
	}
	if _, err := EclipseAttack(n, 0, 5, injected, day, 77); err == nil {
		t.Fatal("zero-router censor accepted")
	}
}

// TestObservedIDsMemoBounded is the obsIDs-memo regression guarantee:
// the per-router day rings stay within their cap, and eviction is
// invisible — a day redrawn after being evicted is byte-identical to
// the unbounded path (a fresh censor computing the day exactly once),
// because the slices are pure in (observer seed, day).
func TestObservedIDsMemoBounded(t *testing.T) {
	n := network(t)
	bounded, err := NewCensor(n, 3, 5, 321)
	if err != nil {
		t.Fatal(err)
	}
	unbounded, err := NewCensor(n, 3, 5, 321)
	if err != nil {
		t.Fatal(err)
	}
	// The unbounded reference holds every day of the study at once.
	const cap = 4
	for r := range bounded.obsIDs {
		bounded.obsIDs[r].Cap = cap
		unbounded.obsIDs[r].Cap = n.Days()
	}
	ref := make([][][]int32, bounded.Routers())
	for r := 0; r < bounded.Routers(); r++ {
		ref[r] = make([][]int32, n.Days())
		for d := 0; d < n.Days(); d++ {
			ref[r][d] = append([]int32(nil), unbounded.observedIDs(r, d)...)
		}
	}

	// Two ascending passes over the whole study: the first fills and
	// overflows the rings (n.Days() >> cap), the second revisits every
	// evicted day and forces redraws.
	for pass := 0; pass < 2; pass++ {
		for d := 0; d < n.Days(); d++ {
			for r := 0; r < bounded.Routers(); r++ {
				if got := bounded.observedIDs(r, d); !reflect.DeepEqual(got, ref[r][d]) {
					t.Fatalf("pass %d router %d day %d: evicted redraw differs from unbounded path", pass, r, d)
				}
			}
		}
	}
	for r := range bounded.obsIDs {
		if got := bounded.obsIDs[r].Resident(); got > cap {
			t.Fatalf("router %d ring holds %d days, cap %d", r, got, cap)
		}
	}

	// Blacklists fold evicted-and-redrawn slices identically too.
	for _, day := range []int{10, 25, 39} {
		want := unbounded.blacklistSet(3, 5, day)
		got := bounded.blacklistSet(3, 5, day)
		if !reflect.DeepEqual(got.words, want.words) || got.Len() != want.Len() {
			t.Fatalf("day %d: blacklist over bounded memo differs from unbounded", day)
		}
	}
}
