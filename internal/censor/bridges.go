package censor

import (
	"context"
	"fmt"
	"math/rand/v2"

	"github.com/i2pstudy/i2pstudy/internal/measure"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// This file implements the Section 7.1 mitigation study: using newly
// joined peers (which the censor has not yet observed) and firewalled
// peers (which publish no blockable address) as bridges for users behind
// the address-blocking firewall. The censor side — one blacklist per
// horizon day — runs as cells of an adversary sweep; the bridge selection
// and survival fold stays serial because it threads one RNG through the
// strategies in a fixed historical order.

// BridgeStrategy selects the candidate pool for bridge distribution.
type BridgeStrategy int

// Bridge strategies from Section 7.1.
const (
	// BridgeRandom draws from all known-IP peers: the baseline that a
	// naive bridge distributor would use.
	BridgeRandom BridgeStrategy = iota
	// BridgeNewlyJoined draws from peers that joined within the last two
	// days: "since these peers are newly joined, they are less likely
	// discovered and blocked immediately by the censor".
	BridgeNewlyJoined
	// BridgeFirewalled draws from firewalled peers: "without a public IP
	// address, the censor cannot apply the address-based blocking
	// technique".
	BridgeFirewalled
	// BridgeCombined mixes newly joined and firewalled peers — the
	// paper's proposed "potentially sustainable solution".
	BridgeCombined
)

func (s BridgeStrategy) String() string {
	switch s {
	case BridgeRandom:
		return "random"
	case BridgeNewlyJoined:
		return "newly-joined"
	case BridgeFirewalled:
		return "firewalled"
	case BridgeCombined:
		return "combined"
	default:
		return fmt.Sprintf("BridgeStrategy(%d)", int(s))
	}
}

// BridgeEvaluation reports how a strategy's bridges fare under a censor.
type BridgeEvaluation struct {
	Strategy BridgeStrategy
	// PoolSize is how many candidates the strategy had to draw from.
	PoolSize int
	// Selected is how many bridges were handed out.
	Selected int
	// UsableByDay[d] is the fraction of selected bridges still usable d
	// days after distribution: online and reachable from behind the
	// firewall (unblocked address, or for firewalled bridges at least one
	// unblocked introducer).
	UsableByDay []float64
}

// InitialUsable returns the day-0 usable fraction.
func (e BridgeEvaluation) InitialUsable() float64 {
	if len(e.UsableByDay) == 0 {
		return 0
	}
	return e.UsableByDay[0]
}

// FinalUsable returns the last-day usable fraction.
func (e BridgeEvaluation) FinalUsable() float64 {
	if len(e.UsableByDay) == 0 {
		return 0
	}
	return e.UsableByDay[len(e.UsableByDay)-1]
}

// BridgeConfig parameterizes an evaluation.
type BridgeConfig struct {
	// Day is the distribution day.
	Day int
	// HorizonDays is how many days of survival to track (Day+Horizon
	// must stay within the network's study window).
	HorizonDays int
	// Bridges is how many bridges to hand out per strategy.
	Bridges int
	// CensorRouters is the censor fleet size. The default of 6 is the
	// paper's "90% blocking with only six routers" adversary; at 20
	// routers even introducer paths saturate and every strategy collapses
	// toward zero, which is exactly the escalation Section 7.1 warns
	// about.
	CensorRouters int
	// IntroducersPerBridge is how many introducers a firewalled bridge
	// publishes.
	IntroducersPerBridge int
	// Seed drives selection.
	Seed uint64
	// Workers caps the engine concurrency for the censor-side captures
	// and per-day blacklists (<= 0: one worker per CPU). The survival
	// fold itself is serial and byte-identical for any value.
	Workers int
}

// DefaultBridgeConfig returns the configuration used by the bench.
func DefaultBridgeConfig() BridgeConfig {
	return BridgeConfig{
		Day:                  5,
		HorizonDays:          10,
		Bridges:              50,
		CensorRouters:        6,
		IntroducersPerBridge: 3,
		Seed:                 1,
	}
}

// EvaluateBridges runs every strategy against a censor with the given
// blacklist window and returns one evaluation per strategy.
//
// Deprecated: use EvaluateBridgesContext, the canonical ctx-taking form;
// this shim runs it under context.Background.
func EvaluateBridges(network *sim.Network, windowDays int, cfg BridgeConfig) ([]BridgeEvaluation, error) {
	return EvaluateBridgesContext(context.Background(), network, windowDays, cfg)
}

// EvaluateBridgesContext evaluates the bridge strategies with the
// censor's per-day blacklists computed as adversary sweep cells across
// the worker pool.
func EvaluateBridgesContext(ctx context.Context, network *sim.Network, windowDays int, cfg BridgeConfig) ([]BridgeEvaluation, error) {
	if cfg.Day+cfg.HorizonDays >= network.Days() {
		return nil, fmt.Errorf("censor: bridge horizon (day %d + %d) exceeds network days (%d)",
			cfg.Day, cfg.HorizonDays, network.Days())
	}
	days := make([]int, 0, cfg.HorizonDays+1)
	for d := 0; d <= cfg.HorizonDays; d++ {
		days = append(days, cfg.Day+d)
	}
	sw, err := NewSweep(network, SweepConfig{
		Fleets:   []int{cfg.CensorRouters},
		Windows:  []int{windowDays},
		Days:     days,
		SeedBase: cfg.Seed + 500,
	}, measure.Workers(cfg.Workers), measure.Capture(ctx))
	if err != nil {
		return nil, err
	}
	// One blocked-peer predicate per horizon day, evaluated as sweep
	// cells; cells[i].Day == days[i] because fleets and windows are
	// singleton and Cells() enumerates days outermost. The grid is a
	// single rolling row — the blacklist slides across the horizon — and
	// each cursor snapshots its day's set so the predicates survive past
	// the sweep for the serial survival fold below.
	blocked := make([]func(int) bool, cfg.HorizonDays+1)
	err = sw.Each(ctx, func(i int, cu *Cursor) error {
		blocked[i] = cu.BlockedPeerFunc()
		return nil
	})
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xBF58476D1CE4E5B9))

	pools := bridgePools(network, cfg.Day)

	var out []BridgeEvaluation
	for _, strat := range []BridgeStrategy{BridgeRandom, BridgeNewlyJoined, BridgeFirewalled, BridgeCombined} {
		pool := pools[strat]
		ev := BridgeEvaluation{Strategy: strat, PoolSize: len(pool)}
		if len(pool) == 0 {
			out = append(out, ev)
			continue
		}
		nSel := cfg.Bridges
		if nSel > len(pool) {
			nSel = len(pool)
		}
		perm := rng.Perm(len(pool))
		selected := make([]int, 0, nSel)
		for _, i := range perm[:nSel] {
			selected = append(selected, pool[i])
		}
		ev.Selected = nSel

		for d := 0; d <= cfg.HorizonDays; d++ {
			day := cfg.Day + d
			usable := 0
			for _, idx := range selected {
				if bridgeUsable(network, idx, day, blocked[d], cfg.IntroducersPerBridge, rng) {
					usable++
				}
			}
			ev.UsableByDay = append(ev.UsableByDay, float64(usable)/float64(nSel))
		}
		out = append(out, ev)
	}
	return out, nil
}

// bridgePools builds every strategy's candidate pool at the distribution
// day in one pass over the day's active peers.
func bridgePools(network *sim.Network, day int) map[BridgeStrategy][]int {
	var knownIP, newlyJoined, firewalled []int
	for _, idx := range network.ActivePeers(day) {
		p := network.Peers[idx]
		switch p.Status {
		case sim.StatusKnownIP:
			knownIP = append(knownIP, idx)
			if p.FirstActiveDay() >= day-1 {
				newlyJoined = append(newlyJoined, idx)
			}
		case sim.StatusFirewalled, sim.StatusToggling:
			firewalled = append(firewalled, idx)
		}
	}
	return map[BridgeStrategy][]int{
		BridgeRandom:      knownIP,
		BridgeNewlyJoined: newlyJoined,
		BridgeFirewalled:  firewalled,
		BridgeCombined:    append(append([]int(nil), newlyJoined...), firewalled...),
	}
}

// BridgePool returns the peer indexes the given strategy would draw bridge
// candidates from on the distribution day — the resource supply side of the
// distrib subsystem's backend.
func BridgePool(network *sim.Network, strat BridgeStrategy, day int) []int {
	return bridgePools(network, day)[strat]
}

// bridgeUsable reports whether a bridge peer can be used from behind the
// firewall on the given day.
func bridgeUsable(network *sim.Network, idx, day int, blocked func(int) bool, introducers int, rng *rand.Rand) bool {
	p := network.Peers[idx]
	if !p.ActiveOn(day) {
		return false
	}
	switch p.Status {
	case sim.StatusKnownIP:
		return !blocked(idx)
	case sim.StatusFirewalled, sim.StatusToggling:
		// Reachable via an introducer: usable while at least one drawn
		// introducer is itself unblocked.
		pool := network.Introducers(day)
		if len(pool) == 0 {
			return false
		}
		for i := 0; i < introducers; i++ {
			in := pool[rng.IntN(len(pool))]
			if !blocked(in.Index) {
				return true
			}
		}
		return false
	default:
		return false
	}
}
