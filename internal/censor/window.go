package censor

// WindowCounter is a sliding multiset over an AddrIndex: for every
// interned address it counts the day-slices (memoized observedIDs
// slices, one per (router, day)) currently contributing it, and keeps
// the membership set — addresses with count > 0 — incrementally
// up to date. AddDay folds one slice in; RemoveDay exactly inverts a
// prior AddDay of the same slice. A blacklist window sliding one day
// forward therefore touches only the entering and expiring day-slices,
// O(Δ) per day, instead of re-unioning every (router, day) slice the
// window covers — the from-scratch cost the rolling sweep rows replace.
//
// Invariant (the expiry-count invariant): the membership set equals
// {id : counts[id] > 0} at all times, and counts[id] equals the number
// of AddDay slices containing id minus the number of RemoveDay slices
// containing it. Removing a slice that was never added violates the
// invariant and corrupts the counter; the sweep rows only ever remove
// slices they previously added. TestWindowCounterRemoveDayInvertsAddDay
// enforces the inversion exactly (counts, set bits and cardinality).
//
// A WindowCounter is not safe for concurrent mutation; each sweep row
// owns one.
type WindowCounter struct {
	counts []int32
	set    *AddrSet
}

// NewWindowCounter returns an empty counter sized for the index's
// address table, recycling a previously released one when available:
// the counts array and set words are the sweep engines' per-row
// allocation hot spot (one table-sized pair per rolling row, more once
// long rows split into segments), so rows draw from a per-index pool
// instead of handing the garbage collector a fresh table each time.
func (ix *AddrIndex) NewWindowCounter() *WindowCounter {
	st := windowPoolStats()
	st.gets.Inc()
	if v := ix.wcPool.Get(); v != nil {
		return v.(*WindowCounter) // Reset on release, so ready to use
	}
	st.news.Inc()
	return &WindowCounter{counts: make([]int32, ix.NumAddrs()), set: ix.NewSet()}
}

// ReleaseWindowCounter resets wc and returns it to the index's pool for
// a later NewWindowCounter. The caller must not touch wc afterwards.
// Releasing is optional — an unreleased counter is simply collected —
// and must only ever see counters obtained from the same index.
func (ix *AddrIndex) ReleaseWindowCounter(wc *WindowCounter) {
	windowPoolStats().put.Inc()
	wc.Reset()
	ix.wcPool.Put(wc)
}

// AddDay folds one day-slice into the window. Negative IDs (absent
// addresses) are ignored, matching AddrSet.Add; duplicate IDs within a
// slice count once each, so RemoveDay of the same slice restores the
// counts exactly.
func (w *WindowCounter) AddDay(ids []int32) { w.AddDayFunc(ids, nil) }

// AddDayFunc is AddDay with an enter hook: onEnter (when non-nil) runs
// for each address whose count transitions 0 -> 1 — it just joined the
// window's union — in slice order. It is the incremental-union
// primitive BlockingSeries folds victim membership through: an entering
// address checks the victim set in O(1) instead of the whole union
// being re-intersected.
func (w *WindowCounter) AddDayFunc(ids []int32, onEnter func(id int32)) {
	for _, id := range ids {
		if id < 0 {
			continue
		}
		w.counts[id]++
		if w.counts[id] == 1 {
			w.set.Add(id)
			if onEnter != nil {
				onEnter(id)
			}
		}
	}
}

// RemoveDay expires one day-slice, exactly inverting a prior AddDay of
// the same slice. Addresses whose count reaches zero leave the set.
func (w *WindowCounter) RemoveDay(ids []int32) {
	for _, id := range ids {
		if id < 0 {
			continue
		}
		w.counts[id]--
		if w.counts[id] == 0 {
			w.set.Remove(id)
		}
	}
}

// Reset empties the counter so it can be reused for another row. The
// expiry-count invariant makes the wipe sparse: counts[id] > 0 exactly
// for the set's members, so only those entries need zeroing — O(live
// set + set words) instead of O(address table). A counter corrupted by
// removing a never-added slice (negative counts live outside the set)
// is not rescued by Reset, matching the invariant's existing contract.
func (w *WindowCounter) Reset() {
	w.set.ForEach(func(id int32) { w.counts[id] = 0 })
	w.set.Clear()
}

// Set returns the live membership set (addresses with count > 0). It is
// a view of the counter's state — the next AddDay/RemoveDay changes it —
// and must not be mutated by callers; Clone it to keep a snapshot.
func (w *WindowCounter) Set() *AddrSet { return w.set }

// Len returns the number of distinct addresses in the window.
func (w *WindowCounter) Len() int { return w.set.Len() }

// Has reports window membership; negative IDs are never members.
func (w *WindowCounter) Has(id int32) bool { return w.set.Has(id) }
