package censor

import (
	"fmt"

	"github.com/i2pstudy/i2pstudy/internal/sim"
	"github.com/i2pstudy/i2pstudy/internal/stats"
)

// This file implements the Section 7.2 escalation: "after blocking more
// than 95% of active peers in the network, the attacker can inject
// malicious routers ... the victim is bootstrapped into the attacker's
// network", the stepping stone to traffic-analysis deanonymization. The
// experiment measures how much of the victim's *usable* view the attacker
// controls as blocking tightens.

// EclipseResult reports one eclipse evaluation.
type EclipseResult struct {
	// CensorRouters is the monitoring fleet size used for the blacklist.
	CensorRouters int
	// Injected is how many attacker routers were whitelisted.
	Injected int
	// UsablePeers is how many netDb entries remain reachable for the
	// victim (unblocked honest peers + attacker routers).
	UsablePeers int
	// AttackerShare is the fraction of the victim's usable view that the
	// attacker controls — the eclipse metric.
	AttackerShare float64
	// TunnelCompromiseP2 approximates the probability that both selected
	// tunnel direct-contacts are attacker-controlled under uniform
	// selection from the usable view.
	TunnelCompromiseP2 float64
}

// EclipseAttack evaluates the Section 7.2 scenario on one day: the censor
// runs `censorRouters` monitors with the given blacklist window, blocks
// every observed peer address, and injects `injected` attacker routers
// that its firewall whitelists. The victim can only use unblocked peers,
// so the attacker's share of its usable view grows with the blocking rate.
func EclipseAttack(network *sim.Network, censorRouters, windowDays, injected, day int, seed uint64) (EclipseResult, error) {
	cz, err := NewCensor(network, censorRouters, windowDays, seed)
	if err != nil {
		return EclipseResult{}, err
	}
	victim := NewVictim(network, seed+10_000)
	blocked := cz.BlockedPeerFunc(censorRouters, day)

	usableHonest := 0
	for _, idx := range victim.KnownPeers(day) {
		p := network.Peers[idx]
		// Only peers with contactable addresses matter for tunnels.
		if p.Status != sim.StatusKnownIP {
			continue
		}
		if !blocked(idx) {
			usableHonest++
		}
	}
	usable := usableHonest + injected
	res := EclipseResult{
		CensorRouters: censorRouters,
		Injected:      injected,
		UsablePeers:   usable,
	}
	if usable > 0 {
		res.AttackerShare = float64(injected) / float64(usable)
		res.TunnelCompromiseP2 = res.AttackerShare * res.AttackerShare
	}
	return res, nil
}

// EclipseSweep evaluates the attack across censor fleet sizes, producing
// the attacker-share curve.
func EclipseSweep(network *sim.Network, fleets []int, windowDays, injected, day int, seed uint64) (*stats.Figure, []EclipseResult, error) {
	fig := &stats.Figure{
		Title:  "Section 7.2: attacker share of the victim's usable view",
		XLabel: "censor routers",
		YLabel: "share",
	}
	shareS := fig.AddSeries("attacker share")
	compS := fig.AddSeries("P(both direct contacts malicious)")
	var results []EclipseResult
	for _, k := range fleets {
		res, err := EclipseAttack(network, k, windowDays, injected, day, seed)
		if err != nil {
			return nil, nil, err
		}
		results = append(results, res)
		shareS.Append(float64(k), res.AttackerShare)
		compS.Append(float64(k), res.TunnelCompromiseP2)
	}
	return fig, results, nil
}

// RenderEclipse renders the sweep as a table.
func RenderEclipse(results []EclipseResult) string {
	rows := [][]string{{"censor routers", "usable peers", "attacker share", "P(tunnel ends malicious)"}}
	for _, r := range results {
		rows = append(rows, []string{
			fmt.Sprint(r.CensorRouters),
			fmt.Sprint(r.UsablePeers),
			fmt.Sprintf("%.2f", r.AttackerShare),
			fmt.Sprintf("%.3f", r.TunnelCompromiseP2),
		})
	}
	return stats.RenderTable(rows)
}
