package censor

import (
	"context"
	"fmt"

	"github.com/i2pstudy/i2pstudy/internal/measure"
	"github.com/i2pstudy/i2pstudy/internal/sim"
	"github.com/i2pstudy/i2pstudy/internal/stats"
)

// This file implements the Section 7.2 escalation: "after blocking more
// than 95% of active peers in the network, the attacker can inject
// malicious routers ... the victim is bootstrapped into the attacker's
// network", the stepping stone to traffic-analysis deanonymization. The
// experiment measures how much of the victim's *usable* view the attacker
// controls as blocking tightens. Fleet sizes are cells of an adversary
// sweep: one shared censor fleet at the maximum size, each cell folding
// its own blacklist prefix.

// EclipseResult reports one eclipse evaluation.
type EclipseResult struct {
	// CensorRouters is the monitoring fleet size used for the blacklist.
	CensorRouters int
	// Injected is how many attacker routers were whitelisted.
	Injected int
	// UsablePeers is how many netDb entries remain reachable for the
	// victim (unblocked honest peers + attacker routers).
	UsablePeers int
	// AttackerShare is the fraction of the victim's usable view that the
	// attacker controls — the eclipse metric.
	AttackerShare float64
	// TunnelCompromiseP2 approximates the probability that both selected
	// tunnel direct-contacts are attacker-controlled under uniform
	// selection from the usable view.
	TunnelCompromiseP2 float64
}

// eclipseCell evaluates the Section 7.2 scenario for one sweep cell: the
// censor blocks every observed peer address, and `injected` whitelisted
// attacker routers join the victim's usable view. It folds the cursor's
// live rolling blacklist directly — no snapshot needed, everything
// happens inside the callback.
func (s *Sweep) eclipseCell(cu *Cursor, injected int) EclipseResult {
	cell := cu.Cell()
	bl := cu.Blacklist()
	ix := s.Censor.ix
	usableHonest := 0
	for _, idx := range s.Victim.KnownPeers(cell.Day) {
		// Only peers with contactable addresses matter for tunnels.
		if s.Net.Peers[idx].Status != sim.StatusKnownIP {
			continue
		}
		if v4, v6 := ix.PeerIDs(idx, cell.Day); !bl.Has(v4) && !bl.Has(v6) {
			usableHonest++
		}
	}
	usable := usableHonest + injected
	res := EclipseResult{
		CensorRouters: cell.Fleet,
		Injected:      injected,
		UsablePeers:   usable,
	}
	if usable > 0 {
		res.AttackerShare = float64(injected) / float64(usable)
		res.TunnelCompromiseP2 = res.AttackerShare * res.AttackerShare
	}
	return res
}

// EclipseAttack evaluates the Section 7.2 scenario on one day: the censor
// runs `censorRouters` monitors with the given blacklist window, blocks
// every observed peer address, and injects `injected` attacker routers
// that its firewall whitelists. The victim can only use unblocked peers,
// so the attacker's share of its usable view grows with the blocking rate.
func EclipseAttack(network *sim.Network, censorRouters, windowDays, injected, day int, seed uint64) (EclipseResult, error) {
	sw, err := NewSweep(network, SweepConfig{
		Fleets:   []int{censorRouters},
		Windows:  []int{windowDays},
		Days:     []int{day},
		SeedBase: seed,
	})
	if err != nil {
		return EclipseResult{}, err
	}
	var res EclipseResult
	err = sw.Each(context.Background(), func(i int, cu *Cursor) error {
		res = sw.eclipseCell(cu, injected)
		return nil
	})
	return res, err
}

// EclipseSweep evaluates the attack across censor fleet sizes, producing
// the attacker-share curve.
//
// Deprecated: use EclipseSweepContext, the canonical ctx-taking form;
// this shim runs it under context.Background with auto workers.
func EclipseSweep(network *sim.Network, fleets []int, windowDays, injected, day int, seed uint64) (*stats.Figure, []EclipseResult, error) {
	return EclipseSweepContext(context.Background(), network, fleets, windowDays, injected, day, seed, 0)
}

// EclipseSweepContext runs the eclipse sweep on the adversary engine: the
// fleet is built once at max(fleets), cells fan out across the worker
// pool, and the figure folds in fleet order — byte-identical for any
// workers value.
func EclipseSweepContext(ctx context.Context, network *sim.Network, fleets []int, windowDays, injected, day int, seed uint64, workers int) (*stats.Figure, []EclipseResult, error) {
	sw, err := NewSweep(network, SweepConfig{
		Fleets:   fleets,
		Windows:  []int{windowDays},
		Days:     []int{day},
		SeedBase: seed,
	}, measure.Workers(workers), measure.Capture(ctx))
	if err != nil {
		return nil, nil, err
	}
	results := make([]EclipseResult, len(fleets))
	err = sw.Each(ctx, func(i int, cu *Cursor) error {
		results[i] = sw.eclipseCell(cu, injected)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	fig := &stats.Figure{
		Title:  "Section 7.2: attacker share of the victim's usable view",
		XLabel: "censor routers",
		YLabel: "share",
	}
	shareS := fig.AddSeries("attacker share")
	compS := fig.AddSeries("P(both direct contacts malicious)")
	for _, res := range results {
		shareS.Append(float64(res.CensorRouters), res.AttackerShare)
		compS.Append(float64(res.CensorRouters), res.TunnelCompromiseP2)
	}
	return fig, results, nil
}

// RenderEclipse renders the sweep as a table.
func RenderEclipse(results []EclipseResult) string {
	rows := [][]string{{"censor routers", "usable peers", "attacker share", "P(tunnel ends malicious)"}}
	for _, r := range results {
		rows = append(rows, []string{
			fmt.Sprint(r.CensorRouters),
			fmt.Sprint(r.UsablePeers),
			fmt.Sprintf("%.2f", r.AttackerShare),
			fmt.Sprintf("%.3f", r.TunnelCompromiseP2),
		})
	}
	return stats.RenderTable(rows)
}
