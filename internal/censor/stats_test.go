package censor

import (
	"strings"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/obs"
)

func TestWindowCounterPoolCounters(t *testing.T) {
	prev := obs.Active()
	r := obs.NewRegistry()
	obs.Enable(r)
	t.Cleanup(func() { obs.Enable(prev) })

	n := network(t)
	ix := indexFor(n)
	wc := ix.NewWindowCounter()
	ix.ReleaseWindowCounter(wc)
	wc2 := ix.NewWindowCounter()
	ix.ReleaseWindowCounter(wc2)

	text := r.RenderText()
	// gets and puts are exact; news depends on whether the shared pool
	// held a counter from an earlier test (and on GC clearing it), so it
	// is only bounded by the acquisitions.
	gets := counterValue(t, text, `i2p_windowcounter_pool_total{op="get"}`)
	puts := counterValue(t, text, `i2p_windowcounter_pool_total{op="put"}`)
	news := counterValue(t, text, `i2p_windowcounter_pool_total{op="new"}`)
	if gets != 2 || puts != 2 {
		t.Errorf("gets=%d puts=%d, want 2/2:\n%s", gets, puts, text)
	}
	if news > gets {
		t.Errorf("news=%d exceeds gets=%d:\n%s", news, gets, text)
	}
}

// TestCensorRingsReportCacheTraffic: the censor's memo rings surface in
// the i2p_cache_* families under their declared ring names once a sweep
// touches them.
func TestCensorRingsReportCacheTraffic(t *testing.T) {
	prev := obs.Active()
	r := obs.NewRegistry()
	obs.Enable(r)
	t.Cleanup(func() { obs.Enable(prev) })

	n := network(t)
	c, err := NewCensor(n, 2, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVictim(n, 99)
	c.blockedPeerFunc(2, 5, 6)
	v.addrSet(6)
	v.KnownPeers(6)

	text := r.RenderText()
	for _, ring := range []string{obsIDsRing, victimAddrSetRing, victimKnownPeersRing} {
		if !strings.Contains(text, `i2p_cache_misses_total{ring="`+ring+`"}`) {
			t.Errorf("ring %q absent from cache families:\n%s", ring, text)
		}
	}
}

// counterValue extracts one rendered series value.
func counterValue(t *testing.T, text, series string) int {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if v, ok := strings.CutPrefix(line, series+" "); ok {
			n := 0
			for _, ch := range v {
				if ch < '0' || ch > '9' {
					t.Fatalf("series %s has non-integer value %q", series, v)
				}
				n = n*10 + int(ch-'0')
			}
			return n
		}
	}
	t.Fatalf("series %s not rendered:\n%s", series, text)
	return 0
}
