package censor

import (
	"sync/atomic"

	"github.com/i2pstudy/i2pstudy/internal/cache"
	"github.com/i2pstudy/i2pstudy/internal/obs"
)

// Ring names for the censor's cache.DayMemo instances in the
// i2p_cache_* metric families.
const (
	obsIDsRing           = "censor_obs_ids"
	victimAddrSetRing    = "victim_addrset"
	victimKnownPeersRing = "victim_known_peers"
)

// poolStats holds the WindowCounter pool's instrument handles: gets
// (every NewWindowCounter), news (pool misses that allocated a fresh
// table), puts (ReleaseWindowCounter returns). news/gets is the pool
// miss rate; gets - puts is the count of rows that never released.
type poolStats struct {
	reg             *obs.Registry
	gets, news, put *obs.Counter
}

var disabledPoolStats = &poolStats{}

var cachedPoolStats atomic.Pointer[poolStats]

func resolvePoolStats(r *obs.Registry) *poolStats {
	ops := r.CounterVec("i2p_windowcounter_pool_total",
		"WindowCounter pool traffic: get (acquisitions), new (pool-miss allocations), put (releases).", "op")
	return &poolStats{reg: r, gets: ops.With("get"), news: ops.With("new"), put: ops.With("put")}
}

// windowPoolStats resolves the pool counters for the enabled registry;
// disabled cost is one atomic load and a nil check.
func windowPoolStats() *poolStats {
	r := obs.Active()
	if r == nil {
		return disabledPoolStats
	}
	s := cachedPoolStats.Load()
	if s != nil && s.reg == r {
		return s
	}
	s = resolvePoolStats(r)
	cachedPoolStats.Store(s)
	return s
}

func init() {
	cache.PreRegisterRing(obsIDsRing)
	cache.PreRegisterRing(victimAddrSetRing)
	cache.PreRegisterRing(victimKnownPeersRing)
	obs.OnEnable(func(r *obs.Registry) { resolvePoolStats(r) })
}
