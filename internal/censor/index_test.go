package censor

import (
	"net/netip"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// TestAddrIndexMatchesAddrOnDay: the interned per-(peer, day) IDs resolve
// to exactly the addresses AddrOnDay reports, for every peer and day.
func TestAddrIndexMatchesAddrOnDay(t *testing.T) {
	n := network(t)
	ix := NewAddrIndex(n)
	if ix.NumAddrs() == 0 {
		t.Fatal("empty address table")
	}
	for _, p := range n.Peers {
		for day := 0; day < n.Days(); day += 3 {
			v4, v6 := p.AddrOnDay(day)
			id4, id6 := ix.PeerIDs(p.Index, day)
			if p.Status != sim.StatusKnownIP {
				if id4 >= 0 || id6 >= 0 {
					t.Fatalf("peer %d: unknown-IP peer has interned addresses", p.Index)
				}
				continue
			}
			check := func(id int32, addr netip.Addr) {
				t.Helper()
				if (id >= 0) != addr.IsValid() {
					t.Fatalf("peer %d day %d: id %d vs addr %v validity mismatch", p.Index, day, id, addr)
				}
				if id >= 0 && ix.Addr(id) != addr {
					t.Fatalf("peer %d day %d: id resolves to %v, want %v", p.Index, day, ix.Addr(id), addr)
				}
			}
			check(id4, v4)
			check(id6, v6)
		}
	}
}

// TestAddrIndexIDOf: every interned address resolves back to its ID, and
// addresses the study never published resolve to -1.
func TestAddrIndexIDOf(t *testing.T) {
	n := network(t)
	ix := NewAddrIndex(n)
	for id := int32(0); id < int32(ix.NumAddrs()); id++ {
		if got := ix.IDOf(ix.Addr(id)); got != id {
			t.Fatalf("IDOf(Addr(%d)) = %d", id, got)
		}
	}
	if got := ix.IDOf(netip.MustParseAddr("203.0.113.77")); got != -1 {
		t.Fatalf("IDOf(unpublished) = %d, want -1", got)
	}
	if got := ix.IDOf(netip.Addr{}); got != -1 {
		t.Fatalf("IDOf(zero addr) = %d, want -1", got)
	}
}

func TestAddrSetOps(t *testing.T) {
	n := network(t)
	ix := indexFor(n)
	s := ix.NewSet()
	if s.Len() != 0 || s.Has(0) {
		t.Fatal("fresh set not empty")
	}
	if s.Add(-1) {
		t.Fatal("negative ID accepted")
	}
	if !s.Add(3) || s.Add(3) {
		t.Fatal("Add must report first insertion only")
	}
	s.AddAll([]int32{3, 5, 70, -1})
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	for _, id := range []int32{3, 5, 70} {
		if !s.Has(id) {
			t.Fatalf("missing id %d", id)
		}
	}
	if s.Has(-1) || s.Has(4) {
		t.Fatal("spurious membership")
	}
	other := ix.NewSet()
	other.AddAll([]int32{5, 70, 99})
	if got := s.IntersectCount(other); got != 2 {
		t.Fatalf("intersect = %d, want 2", got)
	}
	var got []int32
	s.ForEach(func(id int32) { got = append(got, id) })
	if len(got) != 3 || got[0] != 3 || got[1] != 5 || got[2] != 70 {
		t.Fatalf("ForEach order = %v", got)
	}
}

// TestIndexSharedPerNetwork: every censor and victim on one network uses
// one interned table.
func TestIndexSharedPerNetwork(t *testing.T) {
	n := network(t)
	c, err := NewCensor(n, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVictim(n, 2)
	if c.ix != v.ix || c.ix != indexFor(n) {
		t.Fatal("censor and victim do not share the per-network index")
	}
}

// TestBlacklistAtMatchesMapReference rebuilds the blacklist the
// pre-index way — per-day address maps unioned over routers and windows —
// and checks the set-backed BlacklistAt returns exactly that map.
func TestBlacklistAtMatchesMapReference(t *testing.T) {
	n := network(t)
	c, err := NewCensor(n, 6, 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	day, k := 15, 5
	ref := make(map[netip.Addr]bool)
	for r := 0; r < k; r++ {
		for d := day - c.WindowDays + 1; d <= day; d++ {
			for _, idx := range c.observers[r].ObserveDay(d) {
				p := n.Peers[idx]
				v4, v6 := p.AddrOnDay(d)
				if p.Status == sim.StatusKnownIP && v4.IsValid() {
					ref[v4] = true
					if v6.IsValid() {
						ref[v6] = true
					}
				}
			}
		}
	}
	got := c.BlacklistAt(k, day)
	if len(got) != len(ref) {
		t.Fatalf("blacklist size = %d, want %d", len(got), len(ref))
	}
	for ip := range ref {
		if !got[ip] {
			t.Fatalf("missing %v", ip)
		}
	}
}

// TestKnownAddressesMatchesReference replays the pre-index victim netDb
// fold (observation-day addresses, stale retention) against the
// index-backed KnownAddresses.
func TestKnownAddressesMatchesReference(t *testing.T) {
	n := network(t)
	v := NewVictim(n, 99)
	day := 15
	ref := make(map[netip.Addr]bool)
	for d := day - v.NetDbWindowDays + 1; d <= day; d++ {
		for _, idx := range v.obs.ObserveDay(d) {
			if d < day && !retainStale(idx, d) {
				continue
			}
			p := n.Peers[idx]
			if p.Status != sim.StatusKnownIP {
				continue
			}
			v4, v6 := p.AddrOnDay(d)
			if v4.IsValid() {
				ref[v4] = true
			}
			if v6.IsValid() {
				ref[v6] = true
			}
		}
	}
	got := v.KnownAddresses(day)
	if len(got) != len(ref) {
		t.Fatalf("netDb size = %d, want %d", len(got), len(ref))
	}
	for ip := range ref {
		if !got[ip] {
			t.Fatalf("missing %v", ip)
		}
	}
}
