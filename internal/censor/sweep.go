package censor

import (
	"context"
	"fmt"
	"sort"

	"github.com/i2pstudy/i2pstudy/internal/measure"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// This file is the adversary sweep engine: the Section 6–7 experiments
// (Figure 13 blocking rates, the eclipse escalation, the bridge-strategy
// survival curves) are declarative grids of (fleet size x blacklist window
// x day) cells over one shared adversary — a censor fleet built once at
// the maximum size, a victim, and the network's address index.
//
// Scheduling is rolling: cells group into (window, fleet) rows with days
// ascending, rows fan out across the same worker pool as
// measure.ObserveGrid (measure.FanRows), and each row slides one
// WindowCounter across its days, paying only for the entering and
// expiring day-slices instead of re-unioning k x window router-days per
// cell. The determinism contract is unchanged: every cell writes into a
// slot indexed by its grid position, observations are deterministic in
// (observer seed, day), the rolling set is byte-identical to the
// from-scratch union at every cell, and folds run in grid order — so any
// Workers value yields byte-identical figures.

// SweepConfig declares an adversary sweep grid.
type SweepConfig struct {
	// Fleets lists the monitoring-fleet sizes the sweep evaluates. The
	// engine builds max(Fleets) observers once; a cell with fleet k uses
	// the first k (observer draws are deterministic per (seed, day), so
	// sharing the fleet across cells never changes a result).
	Fleets []int
	// Windows lists the blacklist time windows in days.
	Windows []int
	// Days lists the evaluation days.
	Days []int
	// SeedBase seeds the fleet: monitoring router i draws from SeedBase+i
	// and the victim from SeedBase+10_000 (the historical layout, so
	// sweeps reproduce the pre-engine experiments bit for bit).
	SeedBase uint64
	// Workers caps engine concurrency: <= 0 selects one worker per CPU,
	// 1 the serial reference path. Results are identical either way.
	// A measure.Workers option passed to NewSweep overrides this field.
	Workers int
}

// Cell is one point of the sweep grid.
type Cell struct {
	// Fleet is the number of monitoring routers under censor control.
	Fleet int
	// Window is the blacklist time window in days.
	Window int
	// Day is the evaluation day.
	Day int
}

// Sweep binds a grid to a network with the adversary built once: the
// shared censor fleet, the victim, and the network's address index.
type Sweep struct {
	Net    *sim.Network
	Cfg    SweepConfig
	Censor *Censor
	Victim *Victim

	// splitBudget, when positive, overrides the cost-aware planner with a
	// fixed per-segment budget and a free seam estimate, forcing rows to
	// split far more aggressively than the planner ever would. It exists
	// for the seam-stitching goldens, which prove split schedules
	// byte-identical to unsplit ones; production callers leave it zero.
	splitBudget int
}

// NewSweep validates the grid and builds the shared adversary.
// Non-positive windows are normalized to one day, matching NewCensor's
// WindowDays clamp. Engine knobs ride the option shape shared with
// distrib.NewSweep and distrib.NewTrustSweep: measure.Workers overrides
// cfg.Workers, measure.Capture runs the capture pass before returning.
func NewSweep(network *sim.Network, cfg SweepConfig, opts ...measure.EngineOption) (*Sweep, error) {
	eo := measure.BuildOptions(opts...)
	cfg.Workers = eo.WorkersOr(cfg.Workers)
	if len(cfg.Fleets) == 0 || len(cfg.Windows) == 0 || len(cfg.Days) == 0 {
		return nil, fmt.Errorf("censor: sweep needs at least one fleet size, window and day")
	}
	maxFleet := 0
	for _, k := range cfg.Fleets {
		if k > maxFleet {
			maxFleet = k
		}
		if k <= 0 {
			return nil, fmt.Errorf("censor: need at least one monitoring router")
		}
	}
	windows := make([]int, len(cfg.Windows))
	maxWindow := 0
	for i, w := range cfg.Windows {
		if w <= 0 {
			w = 1
		}
		windows[i] = w
		if w > maxWindow {
			maxWindow = w
		}
	}
	cfg.Windows = windows
	c, err := NewCensor(network, maxFleet, maxWindow, cfg.SeedBase)
	if err != nil {
		return nil, err
	}
	sw := &Sweep{
		Net:    network,
		Cfg:    cfg,
		Censor: c,
		Victim: NewVictim(network, cfg.SeedBase+10_000),
	}
	if eo.CaptureCtx != nil {
		if err := sw.Capture(eo.CaptureCtx); err != nil {
			return nil, err
		}
	}
	return sw, nil
}

// Cells enumerates the grid in deterministic order: days outermost, then
// windows, then fleets, each in configured order. Each() hands cells to
// workers with their position in this order, so callers can preallocate
// result slots per cell.
func (s *Sweep) Cells() []Cell {
	out := make([]Cell, 0, len(s.Cfg.Days)*len(s.Cfg.Windows)*len(s.Cfg.Fleets))
	for _, day := range s.Cfg.Days {
		for _, w := range s.Cfg.Windows {
			for _, k := range s.Cfg.Fleets {
				out = append(out, Cell{Fleet: k, Window: w, Day: day})
			}
		}
	}
	return out
}

// windowUnionDays returns the sorted union of (day-window, day] over the
// given evaluation days, clipped at study start — the days a sliding
// window of the given width touches.
func windowUnionDays(days []int, window int) []int {
	seen := make(map[int]bool)
	for _, day := range days {
		start := day - window + 1
		if start < 0 {
			start = 0
		}
		for d := start; d <= day; d++ {
			seen[d] = true
		}
	}
	out := make([]int, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// captureDays returns every day any cell's blacklist window reaches back
// to.
func (s *Sweep) captureDays() []int {
	maxWindow := 1
	for _, w := range s.Cfg.Windows {
		if w > maxWindow {
			maxWindow = w
		}
	}
	return windowUnionDays(s.Cfg.Days, maxWindow)
}

// Capture warms every (router, day) observation the sweep's cells will
// fold, through the same worker pool as the measurement campaigns. It is
// optional — cells compute lazily — but without it the first cells on
// each grid row pay for captures serially.
func (s *Sweep) Capture(ctx context.Context) error {
	days := s.captureDays()
	if _, err := measure.ObserveGrid(ctx, s.Censor.observers, days, s.Cfg.Workers); err != nil {
		return err
	}
	// The victim's netDb reaches NetDbWindowDays-1 days behind each
	// evaluation day.
	vdays := windowUnionDays(s.Cfg.Days, s.Victim.NetDbWindowDays)
	_, err := measure.ObserveGrid(ctx, []*sim.Observer{s.Victim.obs}, vdays, s.Cfg.Workers)
	return err
}

// rowPlan groups Cells() indices into rolling rows: one row per
// (window, fleet) pair, days ascending. Cells() enumerates days
// outermost, so cell i belongs to row i % (windows x fleets); sorting a
// row by day (stably — equal days share a blacklist, so order between
// them cannot matter) guarantees its WindowCounter only ever slides
// forward.
//
// Planning is cost-aware: sliding a row one day touches the entering
// and expiring day-slices of every fleet router, so a cell's estimated
// cost is its Fleet, and a row whose total exceeds the per-worker
// budget is cut into segments. The seam estimate is Window x Fleet —
// a segment's first cell starts from an empty WindowCounter, whose
// fill is exactly the from-scratch union the rolling path is tested
// byte-identical against — so wide-window rows, whose seams rival their
// bodies, stay whole while cheap-seam rows stop binding tail latency.
func (s *Sweep) rowPlan(cells []Cell) measure.RowPlan {
	rows := len(s.Cfg.Windows) * len(s.Cfg.Fleets)
	rowOf := func(i int) int { return i % rows }
	key := func(i int) int { return cells[i].Day }
	cost := func(i int) int { return cells[i].Fleet }
	seam := func(i int) int { return cells[i].Window * cells[i].Fleet }
	if s.splitBudget > 0 {
		return measure.PlanRows(len(cells), rows, rowOf, key).
			SplitRows(cost, nil, s.splitBudget)
	}
	return measure.PlanRowsCost(len(cells), rows, rowOf, key, cost, seam, s.Cfg.Workers)
}

// rowState is one row's rolling blacklist: a WindowCounter covering the
// day range [lo, hi] for the row's fixed (fleet, window).
type rowState struct {
	wc     *WindowCounter
	lo, hi int
}

// advance slides the row's counter to cover (day-window, day] for fleet
// size k. Within a row days only move forward (rowPlan sorts ascending),
// so advancing adds the entering day-slices and removes the expiring
// ones — O(Δ-per-day) instead of the k x window from-scratch union every
// cell used to pay. A gap wider than the window degrades gracefully: the
// disjoint old range expires wholesale before the new one folds in.
func (st *rowState) advance(c *Censor, k, window, day int) {
	lo := day - window + 1
	if lo < 0 {
		lo = 0
	}
	if st.wc == nil {
		st.wc = c.ix.NewWindowCounter()
		st.lo, st.hi = lo, lo-1 // empty: the fill below adds lo..day
	} else if day == st.hi {
		return // duplicate day: same window, nothing slides
	} else if lo > st.hi {
		// No overlap with the current range: expire it entirely.
		for d := st.lo; d <= st.hi; d++ {
			for r := 0; r < k; r++ {
				st.wc.RemoveDay(c.observedIDs(r, d))
			}
		}
		st.lo, st.hi = lo, lo-1
	}
	for d := st.hi + 1; d <= day; d++ {
		for r := 0; r < k; r++ {
			st.wc.AddDay(c.observedIDs(r, d))
		}
	}
	for d := st.lo; d < lo; d++ {
		for r := 0; r < k; r++ {
			st.wc.RemoveDay(c.observedIDs(r, d))
		}
	}
	st.lo, st.hi = lo, day
}

// Cursor is one cell's rolling adversary view, handed to Sweep.Each
// callbacks. Its blacklist is the live set of the row's WindowCounter —
// byte-identical to the from-scratch Sweep.Blacklist of the same cell
// (the golden rolling-equivalence tests enforce this) but built by
// sliding, not re-unioning. The live set is only valid until the
// callback returns; BlockedPeerFunc snapshots, so its predicate outlives
// the row.
type Cursor struct {
	s    *Sweep
	cell Cell
	st   *rowState
}

// Cell returns the cursor's grid cell.
func (cu *Cursor) Cell() Cell { return cu.cell }

// counter advances the row to this cell lazily, on first accessor use:
// callbacks that only read coordinates (Figure 13's, which slides its
// own counter along the fleet axis via BlockingSeries) never pay for
// rolling state they don't fold. advance is idempotent per cell —
// within a row days only move forward and a revisited day is a cheap
// bounds check — so repeated accessor calls cost nothing extra, and a
// row whose earlier cells skipped their counters simply slides further
// on the first cell that uses one.
func (cu *Cursor) counter() *WindowCounter {
	cu.st.advance(cu.s.Censor, cu.cell.Fleet, cu.cell.Window, cu.cell.Day)
	return cu.st.wc
}

// Blacklist returns the cell's blacklist as the row's live set. Callers
// must not mutate it or retain it past the callback — the row slides on.
func (cu *Cursor) Blacklist() *AddrSet { return cu.counter().Set() }

// BlockingRate returns the cell's blocking rate against the sweep
// victim, folding the live rolling set against the memoized victim view.
func (cu *Cursor) BlockingRate() float64 {
	vic := cu.s.Victim.addrSet(cu.cell.Day)
	if vic.Len() == 0 {
		return 0
	}
	return float64(cu.counter().Set().IntersectCount(vic)) / float64(vic.Len())
}

// BlockedPeerFunc returns the cell's peer-blocking predicate over a
// snapshot of the rolling blacklist, valid after the callback returns
// (the bridge fold keeps one predicate per horizon day).
func (cu *Cursor) BlockedPeerFunc() func(peerIdx int) bool {
	set := cu.counter().Set().Clone()
	ix := cu.s.Censor.ix
	day := cu.cell.Day
	return func(idx int) bool {
		v4, v6 := ix.PeerIDs(idx, day)
		return set.Has(v4) || set.Has(v6)
	}
}

// Each evaluates fn for every cell of the grid. Cells are scheduled as
// rolling rows — one (window, fleet) row (or cost-split segment of one)
// per worker at a time, days ascending, each row sliding one
// WindowCounter across its days (lazily, on first cursor access) — but
// fn still receives the cell's position in Cells() order, so callers
// write results into preallocated slots and the determinism contract of
// measure.ObserveGrid applies unchanged: any Workers value yields
// byte-identical results. The first error (or ctx cancellation) stops
// the remaining cells.
//
// The Cursor handed to fn is only valid until the callback returns: each
// plan row reuses one Cursor across its cells (a row runs sequentially
// on one worker), and the rows' WindowCounters return to the index's
// pool when Each returns. Snapshotting accessors (BlockedPeerFunc)
// remain safe to retain — they copy what they need.
func (s *Sweep) Each(ctx context.Context, fn func(i int, cu *Cursor) error) error {
	cells := s.Cells()
	plan := s.rowPlan(cells)
	states := make([]rowState, len(plan))
	cursors := make([]Cursor, len(plan))
	err := measure.FanRows(ctx, plan, s.Cfg.Workers, func(row, i int) error {
		cu := &cursors[row]
		cu.s, cu.cell, cu.st = s, cells[i], &states[row]
		return fn(i, cu)
	})
	// FanRows has joined every worker, so no row still touches its state;
	// recycle the counters for the next sweep (or BlockingSeries call).
	for i := range states {
		if states[i].wc != nil {
			s.Censor.ix.ReleaseWindowCounter(states[i].wc)
		}
	}
	return err
}

// Blacklist returns the cell's blacklist as a set over the network's
// address index, built from scratch — the reference the rolling Cursor
// path is tested byte-identical against. Hot grid folds should use
// Each's cursors instead.
func (s *Sweep) Blacklist(cell Cell) *AddrSet {
	return s.Censor.blacklistSet(cell.Fleet, cell.Window, cell.Day)
}

// BlockedPeerFunc returns the cell's peer-blocking predicate over a
// from-scratch blacklist (see Blacklist).
func (s *Sweep) BlockedPeerFunc(cell Cell) func(peerIdx int) bool {
	return s.Censor.blockedPeerFunc(cell.Fleet, cell.Window, cell.Day)
}

// BlockingRate returns the cell's blocking rate against the sweep victim
// over a from-scratch blacklist (see Blacklist).
func (s *Sweep) BlockingRate(cell Cell) float64 {
	vic := s.Victim.addrSet(cell.Day)
	if vic.Len() == 0 {
		return 0
	}
	bl := s.Blacklist(cell)
	return float64(bl.IntersectCount(vic)) / float64(vic.Len())
}

// BlockingSeries returns the cumulative blocking-rate fractions against
// the sweep victim for fleet prefixes 1..maxFleet at (window, day) — one
// Figure 13 curve. It rides the same rolling substrate as the row
// scheduler, sliding along the fleet axis instead of the day axis: a
// WindowCounter accumulates router k's day-slices on top of routers
// 1..k-1, and each address entering the union checks victim membership
// in O(1), so the whole series costs one pass over each router-day's
// observations instead of a union rebuild per fleet size.
func (s *Sweep) BlockingSeries(window, day, maxFleet int) []float64 {
	vic := s.Victim.addrSet(day)
	wc := s.Censor.ix.NewWindowCounter()
	defer s.Censor.ix.ReleaseWindowCounter(wc)
	blocked := 0
	onEnter := func(id int32) {
		if vic.Has(id) {
			blocked++
		}
	}
	start := day - window + 1
	if start < 0 {
		start = 0
	}
	out := make([]float64, 0, maxFleet)
	for k := 1; k <= maxFleet; k++ {
		for d := start; d <= day; d++ {
			wc.AddDayFunc(s.Censor.observedIDs(k-1, d), onEnter)
		}
		rate := 0.0
		if vic.Len() > 0 {
			rate = float64(blocked) / float64(vic.Len())
		}
		out = append(out, rate)
	}
	return out
}
