package censor

import (
	"context"
	"fmt"
	"sort"

	"github.com/i2pstudy/i2pstudy/internal/measure"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// This file is the adversary sweep engine: the Section 6–7 experiments
// (Figure 13 blocking rates, the eclipse escalation, the bridge-strategy
// survival curves) are declarative grids of (fleet size x blacklist window
// x day) cells over one shared adversary — a censor fleet built once at
// the maximum size, a victim, and the network's address index. Captures
// and cell evaluations fan out across the same worker pool as
// measure.ObserveGrid and inherit its determinism contract: every cell
// writes into a slot indexed by its grid position, observations are
// deterministic in (observer seed, day), and folds run in grid order — so
// any Workers value yields byte-identical figures.

// SweepConfig declares an adversary sweep grid.
type SweepConfig struct {
	// Fleets lists the monitoring-fleet sizes the sweep evaluates. The
	// engine builds max(Fleets) observers once; a cell with fleet k uses
	// the first k (observer draws are deterministic per (seed, day), so
	// sharing the fleet across cells never changes a result).
	Fleets []int
	// Windows lists the blacklist time windows in days.
	Windows []int
	// Days lists the evaluation days.
	Days []int
	// SeedBase seeds the fleet: monitoring router i draws from SeedBase+i
	// and the victim from SeedBase+10_000 (the historical layout, so
	// sweeps reproduce the pre-engine experiments bit for bit).
	SeedBase uint64
	// Workers caps engine concurrency: <= 0 selects one worker per CPU,
	// 1 the serial reference path. Results are identical either way.
	Workers int
}

// Cell is one point of the sweep grid.
type Cell struct {
	// Fleet is the number of monitoring routers under censor control.
	Fleet int
	// Window is the blacklist time window in days.
	Window int
	// Day is the evaluation day.
	Day int
}

// Sweep binds a grid to a network with the adversary built once: the
// shared censor fleet, the victim, and the network's address index.
type Sweep struct {
	Net    *sim.Network
	Cfg    SweepConfig
	Censor *Censor
	Victim *Victim
}

// NewSweep validates the grid and builds the shared adversary.
// Non-positive windows are normalized to one day, matching NewCensor's
// WindowDays clamp.
func NewSweep(network *sim.Network, cfg SweepConfig) (*Sweep, error) {
	if len(cfg.Fleets) == 0 || len(cfg.Windows) == 0 || len(cfg.Days) == 0 {
		return nil, fmt.Errorf("censor: sweep needs at least one fleet size, window and day")
	}
	maxFleet := 0
	for _, k := range cfg.Fleets {
		if k > maxFleet {
			maxFleet = k
		}
		if k <= 0 {
			return nil, fmt.Errorf("censor: need at least one monitoring router")
		}
	}
	windows := make([]int, len(cfg.Windows))
	maxWindow := 0
	for i, w := range cfg.Windows {
		if w <= 0 {
			w = 1
		}
		windows[i] = w
		if w > maxWindow {
			maxWindow = w
		}
	}
	cfg.Windows = windows
	c, err := NewCensor(network, maxFleet, maxWindow, cfg.SeedBase)
	if err != nil {
		return nil, err
	}
	return &Sweep{
		Net:    network,
		Cfg:    cfg,
		Censor: c,
		Victim: NewVictim(network, cfg.SeedBase+10_000),
	}, nil
}

// Cells enumerates the grid in deterministic order: days outermost, then
// windows, then fleets, each in configured order. Each() hands cells to
// workers with their position in this order, so callers can preallocate
// result slots per cell.
func (s *Sweep) Cells() []Cell {
	out := make([]Cell, 0, len(s.Cfg.Days)*len(s.Cfg.Windows)*len(s.Cfg.Fleets))
	for _, day := range s.Cfg.Days {
		for _, w := range s.Cfg.Windows {
			for _, k := range s.Cfg.Fleets {
				out = append(out, Cell{Fleet: k, Window: w, Day: day})
			}
		}
	}
	return out
}

// windowUnionDays returns the sorted union of (day-window, day] over the
// given evaluation days, clipped at study start — the days a sliding
// window of the given width touches.
func windowUnionDays(days []int, window int) []int {
	seen := make(map[int]bool)
	for _, day := range days {
		start := day - window + 1
		if start < 0 {
			start = 0
		}
		for d := start; d <= day; d++ {
			seen[d] = true
		}
	}
	out := make([]int, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// captureDays returns every day any cell's blacklist window reaches back
// to.
func (s *Sweep) captureDays() []int {
	maxWindow := 1
	for _, w := range s.Cfg.Windows {
		if w > maxWindow {
			maxWindow = w
		}
	}
	return windowUnionDays(s.Cfg.Days, maxWindow)
}

// Capture warms every (router, day) observation the sweep's cells will
// fold, through the same worker pool as the measurement campaigns. It is
// optional — cells compute lazily — but without it the first cells on
// each grid row pay for captures serially.
func (s *Sweep) Capture(ctx context.Context) error {
	days := s.captureDays()
	if _, err := measure.ObserveGrid(ctx, s.Censor.observers, days, s.Cfg.Workers); err != nil {
		return err
	}
	// The victim's netDb reaches NetDbWindowDays-1 days behind each
	// evaluation day.
	vdays := windowUnionDays(s.Cfg.Days, s.Victim.NetDbWindowDays)
	_, err := measure.ObserveGrid(ctx, []*sim.Observer{s.Victim.obs}, vdays, s.Cfg.Workers)
	return err
}

// Each evaluates fn for every cell across the worker pool. fn receives
// the cell's position in Cells() order so callers write results into
// preallocated slots — the determinism contract of measure.ObserveGrid
// applied to whole adversary cells. The first error (or ctx cancellation)
// cancels the remaining cells.
func (s *Sweep) Each(ctx context.Context, fn func(i int, cell Cell) error) error {
	cells := s.Cells()
	return measure.FanOut(ctx, len(cells), s.Cfg.Workers, func(i int) error {
		return fn(i, cells[i])
	})
}

// Blacklist returns the cell's blacklist as a set over the network's
// address index.
func (s *Sweep) Blacklist(cell Cell) *AddrSet {
	return s.Censor.blacklistSet(cell.Fleet, cell.Window, cell.Day)
}

// BlockedPeerFunc returns the cell's peer-blocking predicate.
func (s *Sweep) BlockedPeerFunc(cell Cell) func(peerIdx int) bool {
	return s.Censor.blockedPeerFunc(cell.Fleet, cell.Window, cell.Day)
}

// BlockingRate returns the cell's blocking rate against the sweep victim.
func (s *Sweep) BlockingRate(cell Cell) float64 {
	vic := s.Victim.addrSet(cell.Day)
	if vic.Len() == 0 {
		return 0
	}
	bl := s.Blacklist(cell)
	return float64(bl.IntersectCount(vic)) / float64(vic.Len())
}

// BlockingSeries returns the cumulative blocking-rate fractions against
// the sweep victim for fleet prefixes 1..maxFleet at (window, day) — one
// Figure 13 curve. The blacklist is built incrementally: adding router k
// extends the union, and each newly blacklisted address checks victim
// membership in O(1), so the whole series costs one pass over each
// router-day's observations instead of a map rebuild per fleet size.
func (s *Sweep) BlockingSeries(window, day, maxFleet int) []float64 {
	vic := s.Victim.addrSet(day)
	bl := s.Censor.ix.NewSet()
	blocked := 0
	start := day - window + 1
	if start < 0 {
		start = 0
	}
	out := make([]float64, 0, maxFleet)
	for k := 1; k <= maxFleet; k++ {
		for d := start; d <= day; d++ {
			for _, id := range s.Censor.observedIDs(k-1, d) {
				if bl.Add(id) && vic.Has(id) {
					blocked++
				}
			}
		}
		rate := 0.0
		if vic.Len() > 0 {
			rate = float64(blocked) / float64(vic.Len())
		}
		out = append(out, rate)
	}
	return out
}
