package censor

import (
	"context"
	"errors"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/checkpoint"
	"github.com/i2pstudy/i2pstudy/internal/measure/enginetest"
)

func crashSweepConfig(workers int) SweepConfig {
	return SweepConfig{
		Fleets:   []int{2, 5},
		Windows:  []int{1, 4},
		Days:     []int{8, 12, 16},
		SeedBase: 700,
		Workers:  workers,
	}
}

// TestCrashResume is the censor sweep's crash-safety golden, stated
// through the shared harness: a run killed by an injected fault and
// resumed from its checkpoint directory yields CellResults
// byte-identical to an uninterrupted run, at every ladder width, with
// obs enabled. Rows checkpoint at (window, fleet) granularity; resumed
// rows never rebuild their rolling WindowCounter (cursors advance
// lazily, so a skipped cell costs nothing).
func TestCrashResume(t *testing.T) {
	n := network(t)
	enginetest.CrashResume(t, 2018, []enginetest.CrashCase{{
		Name:  "blocking-grid",
		Point: "censor.sweep.cell",
		Run: func(t testing.TB, dir string, workers int) (any, error) {
			sw, err := NewSweep(n, crashSweepConfig(workers))
			if err != nil {
				t.Fatal(err)
			}
			res, err := sw.RunCheckpointed(context.Background(), dir)
			if err != nil {
				return nil, err
			}
			return res, nil
		},
	}})
}

// TestSweepRunMatchesCursorFold pins the engine-owned Run product to
// the cursor accessors it folds: Run's CellResults must equal a manual
// Each fold of the same accessors, in Cells() order.
func TestSweepRunMatchesCursorFold(t *testing.T) {
	n := network(t)
	sw, err := NewSweep(n, crashSweepConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cells := sw.Cells()
	if len(res) != len(cells) {
		t.Fatalf("Run returned %d results for %d cells", len(res), len(cells))
	}
	for i, cell := range cells {
		if res[i].Cell != cell {
			t.Fatalf("result %d carries cell %+v, want %+v", i, res[i].Cell, cell)
		}
		if want := sw.BlockingRate(cell); res[i].BlockingRate != want {
			t.Fatalf("cell %d: BlockingRate %v, want from-scratch %v", i, res[i].BlockingRate, want)
		}
		if want := sw.Blacklist(cell).Len(); res[i].BlacklistLen != want {
			t.Fatalf("cell %d: BlacklistLen %d, want from-scratch %d", i, res[i].BlacklistLen, want)
		}
	}
}

// TestSweepCheckpointManifestMismatch locks the refusal path at the
// engine level: a checkpoint directory written under one seed must not
// resume a sweep with another.
func TestSweepCheckpointMismatchRefused(t *testing.T) {
	n := network(t)
	dir := t.TempDir()
	sw, err := NewSweep(n, crashSweepConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.RunCheckpointed(context.Background(), dir); err != nil {
		t.Fatal(err)
	}
	cfg := crashSweepConfig(1)
	cfg.SeedBase = 701
	sw2, err := NewSweep(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sw2.RunCheckpointed(context.Background(), dir)
	var mm *checkpoint.MismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("resume under a different seed: err = %v, want *checkpoint.MismatchError", err)
	}
	if mm.Field != "seed" {
		t.Fatalf("MismatchError.Field = %q, want \"seed\"", mm.Field)
	}
}
