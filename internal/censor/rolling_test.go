package censor

import (
	"context"
	"math/rand/v2"
	"net/netip"
	"reflect"
	"runtime"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// cellProbe is everything a rolling cell exposes, captured for exact
// comparison against the from-scratch reference and across worker
// counts: the blacklist bits and cardinality, the blocking rate, and a
// sample of the snapshot predicate.
type cellProbe struct {
	Words   []uint64
	Count   int
	Rate    float64
	Blocked []bool
}

// probeCells runs the sweep grid through the rolling Each path and
// captures a probe per cell. samples are the peer indexes the snapshot
// predicate is evaluated over.
func probeCells(t testing.TB, sw *Sweep, samples []int) []cellProbe {
	t.Helper()
	probes := make([]cellProbe, len(sw.Cells()))
	err := sw.Each(context.Background(), func(i int, cu *Cursor) error {
		bl := cu.Blacklist()
		blocked := cu.BlockedPeerFunc()
		p := cellProbe{
			Words: append([]uint64(nil), bl.words...),
			Count: bl.Len(),
			Rate:  cu.BlockingRate(),
		}
		for _, idx := range samples {
			p.Blocked = append(p.Blocked, blocked(idx))
		}
		probes[i] = p
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return probes
}

// TestRollingSweepMatchesFromScratch is the rolling engine's golden
// equivalence guarantee: across randomized (fleet, window, day) grids —
// unsorted days, duplicates, windows wider than the day gaps and
// narrower — the sliding-window path produces byte-identical blacklists,
// rates and predicates to the from-scratch blacklistSet/addrSet
// reference, at Workers 1, 4 and NumCPU. CI runs it under -race, so it
// also proves rows share the victim and observedIDs memos safely.
func TestRollingSweepMatchesFromScratch(t *testing.T) {
	n := network(t)
	rng := rand.New(rand.NewPCG(7, 2026))
	samples := make([]int, 40)
	for i := range samples {
		samples[i] = rng.IntN(len(n.Peers))
	}
	randomVals := func(count, lo, hi int) []int {
		out := make([]int, count)
		for i := range out {
			out[i] = lo + rng.IntN(hi-lo+1)
		}
		return out
	}
	for trial := 0; trial < 3; trial++ {
		cfg := SweepConfig{
			Fleets:   randomVals(1+rng.IntN(3), 1, 8),
			Windows:  randomVals(1+rng.IntN(3), 1, 12),
			Days:     randomVals(3+rng.IntN(4), 0, n.Days()-1), // unsorted, dups possible
			SeedBase: 7000 + uint64(trial),
		}
		var serial []cellProbe
		for _, workers := range []int{1, 4, runtime.NumCPU()} {
			cfg.Workers = workers
			sw, err := NewSweep(n, cfg)
			if err != nil {
				t.Fatal(err)
			}
			probes := probeCells(t, sw, samples)
			if workers == 1 {
				serial = probes
				// The serial pass also checks every cell against the
				// from-scratch reference: blacklistSet for the union,
				// buildAddrSet for the (unmemoized) victim view.
				for i, cell := range sw.Cells() {
					ref := sw.Censor.blacklistSet(cell.Fleet, cell.Window, cell.Day)
					if !reflect.DeepEqual(probes[i].Words, ref.words) || probes[i].Count != ref.Len() {
						t.Fatalf("trial %d cell %d %+v: rolling blacklist differs from from-scratch union",
							trial, i, cell)
					}
					vic := sw.Victim.buildAddrSet(cell.Day)
					wantRate := 0.0
					if vic.Len() > 0 {
						wantRate = float64(ref.IntersectCount(vic)) / float64(vic.Len())
					}
					if probes[i].Rate != wantRate {
						t.Fatalf("trial %d cell %d %+v: rolling rate %v, from-scratch %v",
							trial, i, cell, probes[i].Rate, wantRate)
					}
					refBlocked := sw.BlockedPeerFunc(cell)
					for j, idx := range samples {
						if probes[i].Blocked[j] != refBlocked(idx) {
							t.Fatalf("trial %d cell %d %+v: predicate differs at peer %d",
								trial, i, cell, idx)
						}
					}
				}
			} else if !reflect.DeepEqual(probes, serial) {
				t.Fatalf("trial %d Workers=%d: rolling probes differ from serial", trial, workers)
			}
		}
	}
}

// TestRollingBlacklistAtEquivalence: the exported map view agrees with a
// rolling cell's set for the censor's own (k, WindowDays, day) corner.
func TestRollingBlacklistAtEquivalence(t *testing.T) {
	n := network(t)
	sw, err := NewSweep(n, SweepConfig{Fleets: []int{4}, Windows: []int{6}, Days: []int{12, 15, 20}, SeedBase: 31})
	if err != nil {
		t.Fatal(err)
	}
	err = sw.Each(context.Background(), func(i int, cu *Cursor) error {
		cell := cu.Cell()
		c := sw.Censor
		want := make(map[netip.Addr]bool, cu.Blacklist().Len())
		cu.Blacklist().ForEach(func(id int32) { want[c.ix.Addr(id)] = true })
		got := c.blacklistSet(cell.Fleet, cell.Window, cell.Day)
		gotMap := make(map[netip.Addr]bool, got.Len())
		got.ForEach(func(id int32) { gotMap[c.ix.Addr(id)] = true })
		if !reflect.DeepEqual(want, gotMap) {
			t.Errorf("cell %+v: rolling map view differs from from-scratch", cell)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// BlacklistAt itself (the censor's configured window) against the
	// rolling union of a matching single-cell sweep.
	sw2, err := NewSweep(n, SweepConfig{Fleets: []int{4}, Windows: []int{sw.Censor.WindowDays}, Days: []int{15}, SeedBase: 31})
	if err != nil {
		t.Fatal(err)
	}
	err = sw2.Each(context.Background(), func(i int, cu *Cursor) error {
		at := sw2.Censor.BlacklistAt(4, 15)
		if len(at) != cu.Blacklist().Len() {
			t.Errorf("BlacklistAt size %d, rolling %d", len(at), cu.Blacklist().Len())
		}
		cu.Blacklist().ForEach(func(id int32) {
			if !at[sw2.Censor.ix.Addr(id)] {
				t.Errorf("BlacklistAt missing %v", sw2.Censor.ix.Addr(id))
			}
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestVictimViewsMemoized: the per-day victim views are shared (same
// pointer on revisit) and identical to their from-scratch computes; the
// memoized KnownPeers matches the historical map-based fold exactly,
// order included.
func TestVictimViewsMemoized(t *testing.T) {
	n := network(t)
	v := NewVictim(n, 424)
	day := 17
	set := v.addrSet(day)
	if v.addrSet(day) != set {
		t.Fatal("addrSet not memoized")
	}
	if ref := v.buildAddrSet(day); !reflect.DeepEqual(set.words, ref.words) || set.Len() != ref.Len() {
		t.Fatal("memoized addrSet differs from from-scratch build")
	}
	peers := v.KnownPeers(day)
	if got := v.KnownPeers(day); len(got) != len(peers) || (len(got) > 0 && &got[0] != &peers[0]) {
		t.Fatal("KnownPeers not memoized")
	}
	// Historical reference: map[int]bool dedup in observation order.
	seen := make(map[int]bool)
	var ref []int
	start := day - v.NetDbWindowDays + 1
	if start < 0 {
		start = 0
	}
	for d := start; d <= day; d++ {
		for _, idx := range v.obs.ObserveDay(d) {
			if d < day && !retainStale(idx, d) {
				continue
			}
			if !seen[idx] {
				seen[idx] = true
				ref = append(ref, idx)
			}
		}
	}
	if !reflect.DeepEqual(peers, ref) {
		t.Fatal("bitset KnownPeers differs from the map-based reference")
	}
}

// --- the rolling perf trajectory ---

// rollingBenchGrid builds the acceptance grid — 30 days x 4 windows x 4
// fleets — on a dedicated network, with captures and observed-ID slices
// warmed so the pair measures blacklist folding, not observation draws.
// In -short mode (CI's bench smoke) the network shrinks but every code
// path still runs.
func rollingBenchGrid(b *testing.B, workers int) *Sweep {
	peers := 3050
	if testing.Short() {
		peers = 800
	}
	n, err := sim.New(sim.Config{Seed: 7, Days: 40, TargetDailyPeers: peers})
	if err != nil {
		b.Fatal(err)
	}
	days := make([]int, 30)
	for i := range days {
		days[i] = 5 + i
	}
	sw, err := NewSweep(n, SweepConfig{
		Fleets:   []int{2, 4, 8, 16},
		Windows:  []int{1, 5, 10, 20},
		Days:     days,
		SeedBase: 700,
		Workers:  workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := sw.Capture(context.Background()); err != nil {
		b.Fatal(err)
	}
	for r := 0; r < sw.Censor.Routers(); r++ {
		for _, d := range sw.captureDays() {
			sw.Censor.observedIDs(r, d)
		}
	}
	return sw
}

// benchmarkSweepRolling measures the rolling-window engine folding one
// blocking rate per cell across the acceptance grid.
func benchmarkSweepRolling(b *testing.B, workers int) {
	sw := rollingBenchGrid(b, workers)
	rates := make([]float64, len(sw.Cells()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := sw.Each(context.Background(), func(i int, cu *Cursor) error {
			rates[i] = cu.BlockingRate()
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if rates[len(rates)-1] == 0 {
		b.Fatal("strongest cell blocked nothing")
	}
}

// BenchmarkSweepRollingSerial / Parallel are the rolling-engine perf
// trajectory pair emitted by scripts/bench.sh as BENCH_rolling.json,
// alongside BenchmarkSweepFromScratchSerial — the pre-rolling reference
// that re-unions k x window router-day slices into a fresh set and
// rebuilds the victim's netDb view per cell, exactly what every cell
// paid before the rolling engine. rolling-vs-scratch serial is the
// acceptance ratio (target >= 2x); rolling serial-vs-parallel is the
// usual engine scaling number.
func BenchmarkSweepRollingSerial(b *testing.B)   { benchmarkSweepRolling(b, 1) }
func BenchmarkSweepRollingParallel(b *testing.B) { benchmarkSweepRolling(b, 0) }

func BenchmarkSweepFromScratchSerial(b *testing.B) {
	sw := rollingBenchGrid(b, 1)
	cells := sw.Cells()
	rates := make([]float64, len(cells))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, cell := range cells {
			vic := sw.Victim.buildAddrSet(cell.Day)
			bl := sw.Censor.blacklistSet(cell.Fleet, cell.Window, cell.Day)
			rates[j] = 0
			if vic.Len() > 0 {
				rates[j] = float64(bl.IntersectCount(vic)) / float64(vic.Len())
			}
		}
	}
	b.StopTimer()
	if rates[len(rates)-1] == 0 {
		b.Fatal("strongest cell blocked nothing")
	}
}
