package censor

import (
	"context"
	"fmt"

	"github.com/i2pstudy/i2pstudy/internal/checkpoint"
	"github.com/i2pstudy/i2pstudy/internal/faults"
	"github.com/i2pstudy/i2pstudy/internal/measure"
)

// CellResult is the engine-owned product of one sweep cell: the
// blocking rate against the sweep victim and the blacklist size. The
// paper experiments fold richer products through Each's cursors; this
// standard result is what checkpointed runs spill and resume, and what
// the crash-resume goldens compare.
type CellResult struct {
	Cell
	// BlockingRate is the fraction of the victim's netDb addresses on
	// the cell's blacklist (Figure 13's quantity).
	BlockingRate float64
	// BlacklistLen is the number of distinct blacklisted addresses.
	BlacklistLen int
}

// sweepVersion is the Sweep engine's checkpoint-format version; bump it
// when CellResult or the row keying changes.
const sweepVersion = 1

// checkpointManifest identifies this sweep for resume purposes: network
// shape plus the full grid. Workers is excluded — a sweep may resume at
// any width.
func (s *Sweep) checkpointManifest() checkpoint.Manifest {
	h := checkpoint.NewHasher()
	measure.HashNetwork(h, s.Net)
	h.Int(len(s.Cfg.Fleets))
	for _, k := range s.Cfg.Fleets {
		h.Int(k)
	}
	h.Int(len(s.Cfg.Windows))
	for _, w := range s.Cfg.Windows {
		h.Int(w)
	}
	h.Int(len(s.Cfg.Days))
	for _, d := range s.Cfg.Days {
		h.Int(d)
	}
	return checkpoint.Manifest{
		Engine:     "censor.Sweep",
		Version:    sweepVersion,
		ConfigHash: h.Sum(),
		Seed:       s.Cfg.SeedBase,
	}
}

// rowKey names the checkpoint unit holding one completed (window,
// fleet) row. Rows are keyed by their stable grid id — cell i belongs
// to row i % (windows x fleets) — never by plan-row index, which
// cost-splitting makes Workers-dependent.
func rowKey(row int) string { return fmt.Sprintf("row-%03d", row) }

// Run evaluates the standard result for every cell of the grid,
// returning them in Cells() order. Byte-identical at any Workers value,
// like every engine product.
func (s *Sweep) Run(ctx context.Context) ([]CellResult, error) {
	return s.RunCheckpointed(ctx, "")
}

// RunCheckpointed is Run with crash safety: when dir is non-empty,
// every completed (window, fleet) row spills its results to a
// checkpoint.Store there, and a rerun over the same directory loads
// finished rows instead of recomputing them — skipped cells never even
// build their rolling WindowCounter (cursors advance lazily). Resuming
// against state from a different sweep fails with a
// *checkpoint.MismatchError. Interrupted or not, the returned slice is
// byte-identical to an uninterrupted Run at any Workers value: results
// live in cell-indexed slots and JSON round-trips them exactly.
func (s *Sweep) RunCheckpointed(ctx context.Context, dir string) ([]CellResult, error) {
	cells := s.Cells()
	rows := len(s.Cfg.Windows) * len(s.Cfg.Fleets)
	out := make([]CellResult, len(cells))

	var store *checkpoint.Store
	done := make([]bool, rows)
	if dir != "" {
		var err error
		store, err = checkpoint.Open(dir, s.checkpointManifest())
		if err != nil {
			return nil, err
		}
		for r := 0; r < rows; r++ {
			var saved []CellResult
			ok, err := store.LoadJSON(rowKey(r), &saved)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			if len(saved) != len(s.Cfg.Days) {
				return nil, fmt.Errorf("censor: checkpoint row %d has %d cells, grid expects %d",
					r, len(saved), len(s.Cfg.Days))
			}
			for j, res := range saved {
				out[r+j*rows] = res
			}
			done[r] = true
		}
	}

	// comp fires once per row when its last cell completes — across
	// whatever cost-split segments the planner cut — on the worker that
	// ran that cell, with the atomic decrement ordering every other
	// segment's slot writes before the spill.
	counts := make([]int, rows)
	for i := range cells {
		if !done[i%rows] {
			counts[i%rows]++
		}
	}
	comp := measure.NewCompletion(counts)

	err := s.Each(ctx, func(i int, cu *Cursor) error {
		row := i % rows
		if done[row] {
			return nil // resumed row: result already loaded, cursor untouched
		}
		out[i] = CellResult{
			Cell:         cu.Cell(),
			BlockingRate: cu.BlockingRate(),
			BlacklistLen: cu.Blacklist().Len(),
		}
		if comp.Done(row) && store != nil {
			saved := make([]CellResult, 0, len(s.Cfg.Days))
			for j := row; j < len(cells); j += rows {
				saved = append(saved, out[j])
			}
			if err := store.SaveJSON(rowKey(row), saved); err != nil {
				return err
			}
		}
		return faults.Hit("censor.sweep.cell")
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
