package censor

import (
	"math/rand/v2"
	"reflect"
	"testing"
)

// counterSnapshot captures a WindowCounter's full state — counts, set
// bits and cardinality — for exact before/after comparison.
func counterSnapshot(w *WindowCounter) ([]int32, []uint64, int) {
	return append([]int32(nil), w.counts...),
		append([]uint64(nil), w.set.words...),
		w.set.Len()
}

// randomSlices draws day-slices like the memoized observedIDs slices:
// sorted-ish runs of interned IDs with duplicates across (and within)
// slices, plus the occasional -1 an absent address contributes.
func randomSlices(rng *rand.Rand, n, maxLen, numAddrs int) [][]int32 {
	out := make([][]int32, n)
	for i := range out {
		l := rng.IntN(maxLen + 1)
		s := make([]int32, 0, l)
		for j := 0; j < l; j++ {
			if rng.IntN(20) == 0 {
				s = append(s, -1)
				continue
			}
			s = append(s, int32(rng.IntN(numAddrs)))
		}
		out[i] = s
	}
	return out
}

// TestWindowCounterRemoveDayInvertsAddDay is the expiry-count
// invariant's exactness guarantee: for any base window state and any
// batch of added slices, removing the batch (in any order) restores
// counts, set bits and cardinality bit for bit, and draining everything
// returns the counter to empty.
func TestWindowCounterRemoveDayInvertsAddDay(t *testing.T) {
	n := network(t)
	ix := indexFor(n)
	rng := rand.New(rand.NewPCG(2024, 7))
	for trial := 0; trial < 20; trial++ {
		wc := ix.NewWindowCounter()
		base := randomSlices(rng, 1+rng.IntN(5), 200, ix.NumAddrs())
		for _, s := range base {
			wc.AddDay(s)
		}
		wantCounts, wantWords, wantLen := counterSnapshot(wc)

		batch := randomSlices(rng, 1+rng.IntN(5), 200, ix.NumAddrs())
		for _, s := range batch {
			wc.AddDay(s)
		}
		// Remove in a shuffled order: inversion must not depend on it.
		for _, i := range rng.Perm(len(batch)) {
			wc.RemoveDay(batch[i])
		}
		counts, words, l := counterSnapshot(wc)
		if !reflect.DeepEqual(counts, wantCounts) || !reflect.DeepEqual(words, wantWords) || l != wantLen {
			t.Fatalf("trial %d: RemoveDay did not invert AddDay (len %d -> %d)", trial, wantLen, l)
		}

		for _, i := range rng.Perm(len(base)) {
			wc.RemoveDay(base[i])
		}
		if wc.Len() != 0 {
			t.Fatalf("trial %d: drained counter has %d members", trial, wc.Len())
		}
		for id, c := range wc.counts {
			if c != 0 {
				t.Fatalf("trial %d: drained counter keeps count %d at id %d", trial, c, id)
			}
		}
	}
}

// TestWindowCounterMatchesSetUnion: the live membership set always
// equals the from-scratch AddrSet union of the currently-held slices.
func TestWindowCounterMatchesSetUnion(t *testing.T) {
	n := network(t)
	ix := indexFor(n)
	rng := rand.New(rand.NewPCG(99, 3))
	wc := ix.NewWindowCounter()
	var held [][]int32
	check := func() {
		t.Helper()
		ref := ix.NewSet()
		for _, s := range held {
			ref.AddAll(s)
		}
		if !reflect.DeepEqual(wc.Set().words, ref.words) || wc.Len() != ref.Len() {
			t.Fatalf("live set diverged from union of %d slices (%d vs %d members)",
				len(held), wc.Len(), ref.Len())
		}
	}
	for step := 0; step < 60; step++ {
		if len(held) > 0 && rng.IntN(3) == 0 {
			// Expire the oldest slice, like a window sliding forward.
			wc.RemoveDay(held[0])
			held = held[1:]
		} else {
			s := randomSlices(rng, 1, 150, ix.NumAddrs())[0]
			wc.AddDay(s)
			held = append(held, s)
		}
		check()
	}
	for _, s := range held {
		wc.RemoveDay(s)
	}
	held = nil
	check()
}

// TestWindowCounterEnterHook: AddDayFunc fires onEnter exactly when an
// address's count transitions 0 -> 1, and Has/Len/Set stay consistent.
func TestWindowCounterEnterHook(t *testing.T) {
	n := network(t)
	ix := indexFor(n)
	wc := ix.NewWindowCounter()
	var entered []int32
	hook := func(id int32) { entered = append(entered, id) }
	wc.AddDayFunc([]int32{3, 5, 3, -1, 7}, hook)
	if !reflect.DeepEqual(entered, []int32{3, 5, 7}) {
		t.Fatalf("entered = %v, want [3 5 7]", entered)
	}
	wc.AddDayFunc([]int32{5, 7, 9}, hook)
	if !reflect.DeepEqual(entered, []int32{3, 5, 7, 9}) {
		t.Fatalf("entered = %v, want [3 5 7 9]", entered)
	}
	if wc.Len() != 4 || !wc.Has(3) || wc.Has(-1) || wc.Has(4) {
		t.Fatalf("membership wrong: len %d", wc.Len())
	}
	// 5 and 7 are held twice: removing one slice keeps them; 3 leaves.
	wc.RemoveDay([]int32{3, 5, 3, -1, 7})
	if wc.Has(3) || !wc.Has(5) || !wc.Has(7) || !wc.Has(9) || wc.Len() != 3 {
		t.Fatalf("after removal: len %d", wc.Len())
	}
}

func TestAddrSetRemoveAndClone(t *testing.T) {
	n := network(t)
	ix := indexFor(n)
	s := ix.NewSet()
	s.AddAll([]int32{1, 64, 65})
	if s.Remove(-1) || s.Remove(2) {
		t.Fatal("removing a non-member must report false")
	}
	if !s.Remove(64) || s.Has(64) || s.Len() != 2 {
		t.Fatalf("Remove(64) broken: len %d", s.Len())
	}
	c := s.Clone()
	if !reflect.DeepEqual(c.words, s.words) || c.Len() != s.Len() {
		t.Fatal("clone differs")
	}
	s.Add(500)
	if c.Has(500) || c.Len() != 2 {
		t.Fatal("clone not independent of the original")
	}
}

// checkExpiryInvariant asserts the expiry-count invariant exactly:
// live membership == {addr : count > 0}, bit for bit and in cardinality.
func checkExpiryInvariant(t *testing.T, wc *WindowCounter, step int) {
	t.Helper()
	live := 0
	for id, c := range wc.counts {
		if c < 0 {
			t.Fatalf("step %d: negative count %d at id %d", step, c, id)
		}
		if has := wc.Has(int32(id)); has != (c > 0) {
			t.Fatalf("step %d: id %d has count %d but membership %v", step, id, c, has)
		}
		if c > 0 {
			live++
		}
	}
	if wc.Len() != live {
		t.Fatalf("step %d: Len() = %d, counts say %d", step, wc.Len(), live)
	}
}

// TestWindowCounterInterleavingInvariant generalizes
// TestWindowCounterRemoveDayInvertsAddDay from batch inversion to
// arbitrary interleavings: any random sequence of AddDay and RemoveDay
// ops — removing only slices previously added, in any order, including
// empty day-slices and windows wider than the horizon (phases where
// nothing ever expires) — preserves the expiry-count invariant
// live == {addr : count > 0} after every single operation.
func TestWindowCounterInterleavingInvariant(t *testing.T) {
	n := network(t)
	ix := indexFor(n)
	rng := rand.New(rand.NewPCG(2026, 11))
	for trial := 0; trial < 8; trial++ {
		wc := ix.NewWindowCounter()
		var held [][]int32
		// removeP is the per-step removal probability; trial 0 runs at
		// zero — the window-wider-than-horizon regime, where the window
		// only ever accumulates.
		removeP := 0
		if trial > 0 {
			removeP = 1 + rng.IntN(3) // remove 1-in-4 .. 3-in-4 steps
		}
		steps := 80 + rng.IntN(80)
		for step := 0; step < steps; step++ {
			if len(held) > 0 && rng.IntN(4) < removeP {
				// Expire a uniformly random held slice — not the
				// oldest: inversion must not depend on expiry order.
				i := rng.IntN(len(held))
				wc.RemoveDay(held[i])
				held[i] = held[len(held)-1]
				held = held[:len(held)-1]
			} else {
				var s []int32
				if rng.IntN(5) > 0 { // 1-in-5 slices stay empty
					s = randomSlices(rng, 1, 120, ix.NumAddrs())[0]
				}
				wc.AddDay(s)
				held = append(held, s)
			}
			checkExpiryInvariant(t, wc, step)
		}
		// Drain in random order: the invariant holds at every step and
		// the counter ends exactly empty.
		for _, i := range rng.Perm(len(held)) {
			wc.RemoveDay(held[i])
			checkExpiryInvariant(t, wc, -1)
		}
		if wc.Len() != 0 {
			t.Fatalf("trial %d: drained counter has %d members", trial, wc.Len())
		}
	}
}
