package censor

import (
	"math/bits"
	"net/netip"
	"sync"

	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// AddrIndex interns every public address any peer publishes during the
// study into a dense ID table, built in one pass over the peers' address
// schedules. Blacklists, victim netDb views and blocking rates then become
// bitset operations over small integers instead of map[netip.Addr]bool
// rebuilds — the allocation hot spot of the original Section 6 sweeps.
//
// An AddrIndex is immutable after NewAddrIndex returns and safe for
// unbounded concurrent use, matching sim.Network's concurrency contract.
type AddrIndex struct {
	// addrs maps ID -> address (the reverse of the intern table).
	addrs []netip.Addr
	// ids is the intern table itself, kept for IDOf lookups (the service
	// blacklist maps reported addresses back onto the table).
	ids map[netip.Addr]int32
	// segs holds, per peer index, the FromDay-ordered schedule with
	// interned address IDs; nil for peers that never publish an address.
	segs [][]idSeg

	// wcPool recycles WindowCounters across sweep rows and
	// BlockingSeries calls (see NewWindowCounter/ReleaseWindowCounter).
	// The pool does not make the index mutable in any observable way:
	// counters are private per row while in use and zeroed on release.
	wcPool sync.Pool
}

// idSeg is one interned segment of a peer's address schedule. IDs are -1
// when the peer publishes no such address in the segment.
type idSeg struct {
	fromDay int
	v4, v6  int32
}

// NewAddrIndex builds the index for a network.
func NewAddrIndex(n *sim.Network) *AddrIndex {
	ix := &AddrIndex{segs: make([][]idSeg, len(n.Peers)), ids: make(map[netip.Addr]int32)}
	intern := func(a netip.Addr) int32 {
		if !a.IsValid() {
			return -1
		}
		if id, ok := ix.ids[a]; ok {
			return id
		}
		id := int32(len(ix.addrs))
		ix.ids[a] = id
		ix.addrs = append(ix.addrs, a)
		return id
	}
	for i, p := range n.Peers {
		if p.Status != sim.StatusKnownIP {
			continue
		}
		sched := p.AddrSchedule()
		if len(sched) == 0 {
			continue
		}
		segs := make([]idSeg, len(sched))
		for j, seg := range sched {
			segs[j] = idSeg{fromDay: seg.FromDay, v4: intern(seg.V4), v6: intern(seg.V6)}
		}
		ix.segs[i] = segs
	}
	return ix
}

// NumAddrs returns the size of the interned address table.
func (ix *AddrIndex) NumAddrs() int { return len(ix.addrs) }

// Addr returns the address behind an ID.
func (ix *AddrIndex) Addr(id int32) netip.Addr { return ix.addrs[id] }

// IDOf resolves an address to its interned ID, -1 when the address was
// never published during the study. The service's operator blacklist
// uses this to map reported addresses onto AddrSets over the same table
// the censor sweeps block against.
func (ix *AddrIndex) IDOf(a netip.Addr) int32 {
	if id, ok := ix.ids[a]; ok {
		return id
	}
	return -1
}

// PeerIDs returns the IDs of the addresses peer idx publishes on day, or
// -1 where absent. It mirrors Peer.AddrOnDay exactly, including the edge
// case that days before the first segment report the first segment's
// addresses.
func (ix *AddrIndex) PeerIDs(idx, day int) (v4, v6 int32) {
	segs := ix.segs[idx]
	if len(segs) == 0 {
		return -1, -1
	}
	cur := segs[0]
	for _, seg := range segs[1:] {
		if seg.fromDay > day {
			break
		}
		cur = seg
	}
	return cur.v4, cur.v6
}

// AddrSet is a bitset over an AddrIndex's address table with a cardinality
// counter — the allocation-free replacement for map[netip.Addr]bool in the
// blacklist and victim-netDb paths. The zero value is not usable; obtain
// sets from AddrIndex.NewSet. AddrSets are not safe for concurrent
// mutation; sweep cells each build their own.
type AddrSet struct {
	words []uint64
	count int
}

// NewSet returns an empty set sized for the index's address table.
func (ix *AddrIndex) NewSet() *AddrSet {
	return &AddrSet{words: make([]uint64, (len(ix.addrs)+63)/64)}
}

// Add inserts id and reports whether it was newly added. Negative IDs
// (absent addresses) are ignored.
func (s *AddrSet) Add(id int32) bool {
	if id < 0 {
		return false
	}
	w, b := id>>6, uint64(1)<<(id&63)
	if s.words[w]&b != 0 {
		return false
	}
	s.words[w] |= b
	s.count++
	return true
}

// AddAll unions ids into the set.
func (s *AddrSet) AddAll(ids []int32) {
	for _, id := range ids {
		s.Add(id)
	}
}

// Remove deletes id and reports whether it was present. Negative IDs are
// never members.
func (s *AddrSet) Remove(id int32) bool {
	if id < 0 {
		return false
	}
	w, b := id>>6, uint64(1)<<(id&63)
	if s.words[w]&b == 0 {
		return false
	}
	s.words[w] &^= b
	s.count--
	return true
}

// Has reports membership; negative IDs are never members.
func (s *AddrSet) Has(id int32) bool {
	return id >= 0 && s.words[id>>6]&(uint64(1)<<(id&63)) != 0
}

// Clone returns an independent copy of the set. Cursor.BlockedPeerFunc
// snapshots the live rolling set this way, so predicates stay valid
// after their row slides on; one O(words) copy per cell is still far
// cheaper than the from-scratch union it replaces.
func (s *AddrSet) Clone() *AddrSet {
	return &AddrSet{words: append([]uint64(nil), s.words...), count: s.count}
}

// Clear empties the set in place, keeping its capacity — the reuse
// primitive behind WindowCounter.Reset.
func (s *AddrSet) Clear() {
	clear(s.words)
	s.count = 0
}

// Len returns the number of addresses in the set.
func (s *AddrSet) Len() int { return s.count }

// IntersectCount returns |s ∩ t| for two sets over the same index.
func (s *AddrSet) IntersectCount(t *AddrSet) int {
	n := 0
	for i, w := range s.words {
		n += bits.OnesCount64(w & t.words[i])
	}
	return n
}

// ForEach calls fn for every ID in the set in ascending order.
func (s *AddrSet) ForEach(fn func(id int32)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(int32(wi<<6 + b))
			w &^= 1 << b
		}
	}
}

// indexCache shares one AddrIndex per network across every censor, victim
// and sweep built on it: the censorship experiments run concurrently on
// one study network (core.Study.RunAll) and must not each re-intern the
// address table. Entries pin their network for the process lifetime, which
// is fine for the handful of long-lived networks a process builds.
var indexCache sync.Map // *sim.Network -> *indexOnce

type indexOnce struct {
	once sync.Once
	ix   *AddrIndex
}

// IndexFor returns the network's shared address index, building it at most
// once per network. Exported for the distrib subsystem, whose
// enumeration-fed blacklists are AddrSets over the same interned table the
// censor sweeps use.
func IndexFor(n *sim.Network) *AddrIndex { return indexFor(n) }

// indexFor returns the network's shared address index, building it at
// most once per network.
func indexFor(n *sim.Network) *AddrIndex {
	v, _ := indexCache.LoadOrStore(n, &indexOnce{})
	e := v.(*indexOnce)
	e.once.Do(func() { e.ix = NewAddrIndex(n) })
	return e.ix
}
