package censor

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/measure/enginetest"
)

// TestSweepSplitRowsMatchUnsplit is the seam-stitching golden: across
// randomized (fleet, window, day) grids, a plan whose rolling rows are
// force-cut into segments — each later segment rebuilding its window
// from scratch at the seam — produces blacklists, rates and predicates
// byte-identical to the unsplit serial reference, at every enginetest
// ladder width (1, 4, NumCPU, auto). CI runs it under -race, so the
// extra concurrently-live segments also prove the shared memos and the
// WindowCounter pool race-free.
func TestSweepSplitRowsMatchUnsplit(t *testing.T) {
	n := network(t)
	rng := rand.New(rand.NewPCG(13, 2026))
	samples := make([]int, 32)
	for i := range samples {
		samples[i] = rng.IntN(len(n.Peers))
	}
	randomVals := func(count, lo, hi int) []int {
		out := make([]int, count)
		for i := range out {
			out[i] = lo + rng.IntN(hi-lo+1)
		}
		return out
	}
	for trial := 0; trial < 3; trial++ {
		cfg := SweepConfig{
			Fleets:   randomVals(1+rng.IntN(3), 1, 8),
			Windows:  randomVals(1+rng.IntN(3), 1, 12),
			Days:     randomVals(4+rng.IntN(4), 0, n.Days()-1), // unsorted, dups possible
			SeedBase: 7300 + uint64(trial),
			Workers:  1,
		}
		// Budget 2x the priciest cell: every row's per-cell cost (its
		// fleet size) fits, so every row longer than two cells cuts.
		budget := 0
		for _, f := range cfg.Fleets {
			if 2*f > budget {
				budget = 2 * f
			}
		}
		ref, err := NewSweep(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := probeCells(t, ref, samples)
		rows := len(cfg.Windows) * len(cfg.Fleets)

		runSplit := func(t testing.TB, workers int) any {
			c := cfg
			c.Workers = workers
			sw, err := NewSweep(n, c)
			if err != nil {
				t.Fatal(err)
			}
			sw.splitBudget = budget
			if plan := sw.rowPlan(sw.Cells()); len(plan) <= rows {
				t.Fatalf("budget %d left the plan unsplit (%d rows)", budget, len(plan))
			}
			return probeCells(t, sw, samples)
		}
		// The ladder proves the split plan worker-count-independent; the
		// direct comparison proves its serial pass equals the unsplit
		// reference — together: splitting changes scheduling, not bytes.
		enginetest.Golden(t, []enginetest.Case{{
			Name: fmt.Sprintf("trial-%d", trial),
			Run:  runSplit,
		}})
		if got := runSplit(t, 1); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: split serial probes differ from the unsplit reference", trial)
		}
	}
}

// TestSweepProductionPlanSplitsWideRows: on a grid with one dominant
// (window, fleet) row, the production cost model (cost = fleet, seam =
// window x fleet rebuild) actually cuts when a pool is available, and
// the resulting probes still match the unsplit serial reference —
// covering PlanRowsCost end-to-end, not just the forced test hook.
func TestSweepProductionPlanSplitsWideRows(t *testing.T) {
	n := network(t)
	days := make([]int, 0, 24)
	for d := 2; d < 26; d++ {
		days = append(days, d)
	}
	cfg := SweepConfig{
		Fleets:   []int{1, 16},
		Windows:  []int{1, 2},
		Days:     days,
		SeedBase: 7400,
		Workers:  1,
	}
	ref, err := NewSweep(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := []int{0, 7, 49, 343}
	want := probeCells(t, ref, samples)
	rows := len(cfg.Windows) * len(cfg.Fleets)

	cfg.Workers = 4
	sw, err := NewSweep(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan := sw.rowPlan(sw.Cells()); len(plan) <= rows {
		t.Fatalf("production cost model left the plan unsplit (%d rows)", len(plan))
	}
	if got := probeCells(t, sw, samples); !reflect.DeepEqual(got, want) {
		t.Fatal("production split probes differ from the unsplit serial reference")
	}
}
