package censor

import (
	"context"
	"fmt"
	"net/netip"
	"reflect"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/measure/enginetest"
	"github.com/i2pstudy/i2pstudy/internal/sim"
	"github.com/i2pstudy/i2pstudy/internal/stats"
)

func TestNewSweepValidation(t *testing.T) {
	n := network(t)
	bad := []SweepConfig{
		{},
		{Fleets: []int{2}, Windows: []int{1}},
		{Fleets: []int{2}, Days: []int{5}},
		{Windows: []int{1}, Days: []int{5}},
		{Fleets: []int{2, 0}, Windows: []int{1}, Days: []int{5}},
	}
	for i, cfg := range bad {
		if _, err := NewSweep(n, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	sw, err := NewSweep(n, SweepConfig{Fleets: []int{3, 8}, Windows: []int{1, 5}, Days: []int{10, 20}, SeedBase: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Censor.Routers() != 8 {
		t.Fatalf("fleet built at %d routers, want max fleet 8", sw.Censor.Routers())
	}
	cells := sw.Cells()
	if len(cells) != 8 {
		t.Fatalf("grid has %d cells, want 8", len(cells))
	}
	// Days outermost, then windows, then fleets.
	want := Cell{Fleet: 3, Window: 1, Day: 10}
	if cells[0] != want {
		t.Fatalf("cells[0] = %+v, want %+v", cells[0], want)
	}
	if cells[7] != (Cell{Fleet: 8, Window: 5, Day: 20}) {
		t.Fatalf("cells[7] = %+v", cells[7])
	}
}

// TestSweepWindowClamped: non-positive windows normalize to one day,
// matching NewCensor's WindowDays clamp (a zero-window eclipse must not
// silently produce an empty blacklist).
func TestSweepWindowClamped(t *testing.T) {
	n := network(t)
	sw, err := NewSweep(n, SweepConfig{Fleets: []int{2}, Windows: []int{0}, Days: []int{10}, SeedBase: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Cells()[0].Window != 1 {
		t.Fatalf("window = %d, want clamped to 1", sw.Cells()[0].Window)
	}
	zero, err := EclipseAttack(n, 6, 0, 25, 20, 77)
	if err != nil {
		t.Fatal(err)
	}
	one, err := EclipseAttack(n, 6, 1, 25, 20, 77)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zero, one) {
		t.Fatalf("zero-window eclipse %+v differs from one-day window %+v", zero, one)
	}
}

func TestSweepCaptureCancelled(t *testing.T) {
	n := network(t)
	sw, err := NewSweep(n, SweepConfig{Fleets: []int{2}, Windows: []int{3}, Days: []int{10}, SeedBase: 999})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sw.Capture(ctx); err != context.Canceled {
		t.Fatalf("Capture error = %v, want context.Canceled", err)
	}
	if err := sw.Each(ctx, func(int, *Cursor) error { return nil }); err != context.Canceled {
		t.Fatalf("Each error = %v, want context.Canceled", err)
	}
}

// referenceFigure13 is the pre-engine Figure 13 implementation, kept as
// the test oracle: a fresh censor fleet per window, map-based blacklists
// grown per fleet size, victim addresses from the materialized map.
func referenceFigure13(t *testing.T, n *sim.Network, maxRouters int, windows []int, day int, seedBase uint64) *stats.Figure {
	t.Helper()
	fig := &stats.Figure{
		Title:  "Figure 13: Blocking rates under different blacklist time windows",
		XLabel: "routers under censor control",
		YLabel: "blocking rate (%)",
	}
	victim := NewVictim(n, seedBase+10_000)
	victimIPs := victim.KnownAddresses(day)
	for _, w := range windows {
		c, err := NewCensor(n, maxRouters, w, seedBase)
		if err != nil {
			t.Fatal(err)
		}
		s := fig.AddSeries(fmt.Sprintf("%d day", w))
		start := day - w + 1
		if start < 0 {
			start = 0
		}
		bl := make(map[netip.Addr]bool)
		for k := 1; k <= maxRouters; k++ {
			for d := start; d <= day; d++ {
				for _, idx := range c.observers[k-1].ObserveDay(d) {
					p := n.Peers[idx]
					v4, v6 := p.AddrOnDay(d)
					if p.Status == sim.StatusKnownIP && v4.IsValid() {
						bl[v4] = true
						if v6.IsValid() {
							bl[v6] = true
						}
					}
				}
			}
			blocked := 0
			for ip := range victimIPs {
				if bl[ip] {
					blocked++
				}
			}
			rate := 0.0
			if len(victimIPs) > 0 {
				rate = float64(blocked) / float64(len(victimIPs))
			}
			s.Append(float64(k), 100*rate)
		}
	}
	return fig
}

// TestFigure13MatchesReference is the refactor's before/after guarantee:
// the sweep-engine Figure 13 renders byte-identically to the historical
// map-based serial implementation.
func TestFigure13MatchesReference(t *testing.T) {
	n := network(t)
	windows := []int{1, 5, 10}
	ref := referenceFigure13(t, n, 8, windows, 20, 700)
	got, err := Figure13(n, 8, windows, 20, 700)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("engine Figure 13 differs from the map-based reference")
	}
	if got.Render() != ref.Render() {
		t.Fatal("rendered Figure 13 differs from the reference")
	}
}

// TestSweepWorkerDeterminism is the adversary engine's golden equivalence
// guarantee, stated through the shared enginetest harness: any Workers
// value yields byte-identical figures for the blocking, eclipse and
// bridge sweeps.
func TestSweepWorkerDeterminism(t *testing.T) {
	n := network(t)
	ctx := context.Background()
	day := 20

	enginetest.Golden(t, []enginetest.Case{
		{
			Name: "figure-13",
			Run: func(t testing.TB, workers int) any {
				fig, err := Figure13Context(ctx, n, 8, []int{1, 5}, day, 700, workers)
				if err != nil {
					t.Fatal(err)
				}
				// The rendered text participates in the comparison too:
				// a figure that deep-equals but renders differently
				// would still corrupt the artifact.
				return []any{fig, fig.Render()}
			},
		},
		{
			Name: "eclipse",
			Run: func(t testing.TB, workers int) any {
				efig, ecl, err := EclipseSweepContext(ctx, n, []int{2, 6}, 5, 25, day, 7200, workers)
				if err != nil {
					t.Fatal(err)
				}
				return []any{efig, ecl}
			},
		},
		{
			Name: "bridges",
			Run: func(t testing.TB, workers int) any {
				bcfg := DefaultBridgeConfig()
				bcfg.Day = 10
				bcfg.HorizonDays = 8
				bcfg.Workers = workers
				brs, err := EvaluateBridgesContext(ctx, n, 5, bcfg)
				if err != nil {
					t.Fatal(err)
				}
				return brs
			},
		},
	})
}

// TestSweepBlockingRateMatchesBlockingRate: the cell-level rate agrees
// with the public Censor/Victim API.
func TestSweepBlockingRateMatchesBlockingRate(t *testing.T) {
	n := network(t)
	sw, err := NewSweep(n, SweepConfig{Fleets: []int{5}, Windows: []int{7}, Days: []int{20}, SeedBase: 7})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCensor(n, 5, 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVictim(n, 7+10_000)
	want := BlockingRate(c, v, 5, 20)
	got := sw.BlockingRate(Cell{Fleet: 5, Window: 7, Day: 20})
	if got != want {
		t.Fatalf("sweep rate %v != BlockingRate %v", got, want)
	}
	series := sw.BlockingSeries(7, 20, 5)
	if len(series) != 5 {
		t.Fatalf("series length %d", len(series))
	}
	if series[4] != want {
		t.Fatalf("series[4] = %v, want %v", series[4], want)
	}
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1] {
			t.Fatalf("cumulative series decreased at %d: %v", i, series)
		}
	}
}

// BenchmarkFigure13SweepSerial / Parallel are the adversary-engine perf
// trajectory pair emitted by scripts/bench.sh as BENCH_censor.json. Each
// iteration rebuilds the sweep (fresh observers, cold capture memos), so
// the numbers measure real capture + fold work at each width.
func benchmarkFigure13Sweep(b *testing.B, workers int) {
	n, err := sim.New(sim.Config{Seed: 7, Days: 40, TargetDailyPeers: 3050})
	if err != nil {
		b.Fatal(err)
	}
	indexFor(n) // the shared index is built once per network; exclude it
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := Figure13Context(context.Background(), n, 20, []int{1, 5, 10, 20, 30}, 35, 700, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) != 5 {
			b.Fatal("wrong series count")
		}
	}
}

func BenchmarkFigure13SweepSerial(b *testing.B)   { benchmarkFigure13Sweep(b, 1) }
func BenchmarkFigure13SweepParallel(b *testing.B) { benchmarkFigure13Sweep(b, 0) }
