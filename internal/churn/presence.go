package churn

// LongestRun returns the length of the longest consecutive run of true
// values: the paper's "continuously in the network for n days" statistic
// asks whether this is at least n.
func LongestRun(presence []bool) int {
	best, cur := 0, 0
	for _, on := range presence {
		if on {
			cur++
			if cur > best {
				best = cur
			}
		} else {
			cur = 0
		}
	}
	return best
}

// SpanDays returns the inclusive distance between the first and last true
// values: the paper's "intermittently in the network for n days" statistic
// asks whether this is at least n. It returns 0 when the peer was never
// seen.
func SpanDays(presence []bool) int {
	first, last := -1, -1
	for i, on := range presence {
		if on {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return 0
	}
	return last - first + 1
}

// DaysOnline returns the number of true values.
func DaysOnline(presence []bool) int {
	n := 0
	for _, on := range presence {
		if on {
			n++
		}
	}
	return n
}
