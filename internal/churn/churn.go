// Package churn models the temporal behaviour of I2P peers: when a peer is
// present in the network (Section 5.2.1, Figure 7) and how its IP address
// changes over time (Section 5.2.2, Figures 8 and 12).
//
// The paper measured these properties on the live network; this package is
// the generative counterpart. A peer draws a Profile (membership span plus
// an on/off Markov presence process) and an IPProfile (static, dynamic
// same-AS, multi-AS, or heavy VPN-style rotation). The population simulator
// replays these processes day by day, and the measurement pipeline recovers
// the paper's churn statistics from the replay — exercising exactly the
// analysis code a live study would run.
//
// Default parameters are calibrated so the synthetic network reproduces the
// paper's headline marginals: ~56%/74% of peers present at least 7 days
// continuously/intermittently, ~20%/31% at least 30 days, ~45% of known-IP
// peers keeping a single address over three months, ~0.65% hoarding more
// than a hundred addresses, >80% staying within one autonomous system and
// ~8.4% hopping across more than ten.
package churn

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Class buckets peers by longevity.
type Class int

// Longevity classes.
const (
	// ClassStable peers stay for most of the study and are online nearly
	// every day. They dominate a stable client's netDb and are the peers a
	// censor blocks first (Section 6.2.2).
	ClassStable Class = iota
	// ClassRegular peers stay for weeks with intermittent presence.
	ClassRegular
	// ClassTransient peers churn within days — the paper's potential
	// "bridge" candidates (Section 7.1), since a censor rarely sees them.
	ClassTransient
)

func (c Class) String() string {
	switch c {
	case ClassStable:
		return "stable"
	case ClassRegular:
		return "regular"
	case ClassTransient:
		return "transient"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Config holds the model parameters. The zero value is unusable; use
// DefaultConfig.
type Config struct {
	// Class mix. Must sum to approximately 1.
	StableFrac    float64
	RegularFrac   float64
	TransientFrac float64

	// Membership span per class, in days: Floor + Exp(Mean). Stable spans
	// are shifted so stable peers cover a large part of any study.
	StableSpanFloor, StableSpanMean       float64
	RegularSpanFloor, RegularSpanMean     float64
	TransientSpanFloor, TransientSpanMean float64

	// Presence Markov chain per class: OnOn is P(online tomorrow | online
	// today), OffOn is P(online tomorrow | offline today).
	StableOnOn, StableOffOn       float64
	RegularOnOn, RegularOffOn     float64
	TransientOnOn, TransientOffOn float64

	// IP rotation mix over known-IP peers. Must sum to approximately 1.
	StaticFrac  float64 // one address for the whole study
	DynamicFrac float64 // rotates within its home AS
	MultiASFrac float64 // rotates across a handful of ASes (2–10)
	HeavyFrac   float64 // VPN/Tor-style: many ASes, potentially >100 IPs

	// DynamicRotationMeanDays is the mean days between address changes
	// for dynamic peers (per-peer means are spread around it).
	DynamicRotationMeanDays float64
	// HeavyRotationMeanDays is the (much shorter) mean for heavy rotators.
	HeavyRotationMeanDays float64

	// IPv6Frac is the fraction of known-IP peers that additionally
	// publish an IPv6 address (Figure 5's IPv6 line sits well below IPv4).
	IPv6Frac float64
}

// DefaultConfig returns the calibrated parameters described in the package
// comment.
func DefaultConfig() Config {
	return Config{
		StableFrac:    0.28,
		RegularFrac:   0.50,
		TransientFrac: 0.22,

		StableSpanFloor: 20, StableSpanMean: 50,
		RegularSpanFloor: 5, RegularSpanMean: 14,
		TransientSpanFloor: 1, TransientSpanMean: 3,

		StableOnOn: 0.985, StableOffOn: 0.50,
		RegularOnOn: 0.93, RegularOffOn: 0.35,
		TransientOnOn: 0.70, TransientOffOn: 0.45,

		StaticFrac:  0.32,
		DynamicFrac: 0.48,
		MultiASFrac: 0.115,
		HeavyFrac:   0.085,

		DynamicRotationMeanDays: 11,
		HeavyRotationMeanDays:   0.75,

		IPv6Frac: 0.27,
	}
}

// Model samples peer temporal profiles. It is stateless apart from its
// configuration; callers supply the RNG so that concurrent simulations can
// use independent deterministic streams.
type Model struct {
	cfg Config
}

// NewModel validates cfg and returns a Model.
func NewModel(cfg Config) (*Model, error) {
	classSum := cfg.StableFrac + cfg.RegularFrac + cfg.TransientFrac
	if math.Abs(classSum-1) > 0.01 {
		return nil, fmt.Errorf("churn: class fractions sum to %.3f, want 1", classSum)
	}
	ipSum := cfg.StaticFrac + cfg.DynamicFrac + cfg.MultiASFrac + cfg.HeavyFrac
	if math.Abs(ipSum-1) > 0.01 {
		return nil, fmt.Errorf("churn: IP-mode fractions sum to %.3f, want 1", ipSum)
	}
	for _, p := range []float64{
		cfg.StableOnOn, cfg.StableOffOn, cfg.RegularOnOn, cfg.RegularOffOn,
		cfg.TransientOnOn, cfg.TransientOffOn, cfg.IPv6Frac,
	} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("churn: probability %v out of range", p)
		}
	}
	if cfg.DynamicRotationMeanDays <= 0 || cfg.HeavyRotationMeanDays <= 0 {
		return nil, fmt.Errorf("churn: rotation means must be positive")
	}
	return &Model{cfg: cfg}, nil
}

// MustNewModel is NewModel that panics on error, for use with the default
// configuration.
func MustNewModel(cfg Config) *Model {
	m, err := NewModel(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// Profile is a sampled temporal profile for one peer.
type Profile struct {
	Class Class
	// SpanDays is the number of days between the peer's first and last
	// possible appearance (inclusive); at least 1.
	SpanDays int
	// OnOn and OffOn parameterize the daily presence Markov chain.
	OnOn, OffOn float64
}

// SampleProfile draws a longevity profile.
func (m *Model) SampleProfile(rng *rand.Rand) Profile {
	x := rng.Float64()
	switch {
	case x < m.cfg.StableFrac:
		span := int(m.cfg.StableSpanFloor) + int(rng.ExpFloat64()*m.cfg.StableSpanMean)
		return Profile{Class: ClassStable, SpanDays: span, OnOn: m.cfg.StableOnOn, OffOn: m.cfg.StableOffOn}
	case x < m.cfg.StableFrac+m.cfg.RegularFrac:
		span := int(m.cfg.RegularSpanFloor) + int(rng.ExpFloat64()*m.cfg.RegularSpanMean)
		return Profile{Class: ClassRegular, SpanDays: span, OnOn: m.cfg.RegularOnOn, OffOn: m.cfg.RegularOffOn}
	default:
		span := int(m.cfg.TransientSpanFloor) + int(rng.ExpFloat64()*m.cfg.TransientSpanMean)
		return Profile{Class: ClassTransient, SpanDays: span, OnOn: m.cfg.TransientOnOn, OffOn: m.cfg.TransientOffOn}
	}
}

// GeneratePresence replays the profile's presence chain for up to maxDays
// days, returning one boolean per day. Day 0 is always online (the peer is
// first observed when it joins). The slice length is min(SpanDays, maxDays),
// and the last in-span day is forced online so that SpanDays is the true
// first-to-last distance.
func (p Profile) GeneratePresence(rng *rand.Rand, maxDays int) []bool {
	n := p.SpanDays
	if n > maxDays {
		n = maxDays
	}
	if n <= 0 {
		return nil
	}
	out := make([]bool, n)
	out[0] = true
	online := true
	for d := 1; d < n; d++ {
		var pOn float64
		if online {
			pOn = p.OnOn
		} else {
			pOn = p.OffOn
		}
		online = rng.Float64() < pOn
		out[d] = online
	}
	if n == p.SpanDays {
		out[n-1] = true
	}
	return out
}

// ExpectedDailyPresence returns the long-run fraction of in-span days the
// profile is online (the stationary probability of its Markov chain).
func (p Profile) ExpectedDailyPresence() float64 {
	// pi = OffOn / (1 - OnOn + OffOn)
	den := 1 - p.OnOn + p.OffOn
	if den <= 0 {
		return 1
	}
	return p.OffOn / den
}

// ExpectedActiveDays estimates the number of days a freshly sampled peer
// will be observed online within a study of studyDays, used by the
// population simulator to size arrival rates.
func (m *Model) ExpectedActiveDays(studyDays int) float64 {
	type classParams struct {
		frac, spanMean, floor, onOn, offOn float64
	}
	classes := []classParams{
		{m.cfg.StableFrac, m.cfg.StableSpanMean, m.cfg.StableSpanFloor, m.cfg.StableOnOn, m.cfg.StableOffOn},
		{m.cfg.RegularFrac, m.cfg.RegularSpanMean, m.cfg.RegularSpanFloor, m.cfg.RegularOnOn, m.cfg.RegularOffOn},
		{m.cfg.TransientFrac, m.cfg.TransientSpanMean, m.cfg.TransientSpanFloor, m.cfg.TransientOnOn, m.cfg.TransientOffOn},
	}
	total := 0.0
	for _, c := range classes {
		span := c.floor + c.spanMean
		if span > float64(studyDays) {
			span = float64(studyDays)
		}
		pi := Profile{OnOn: c.onOn, OffOn: c.offOn}.ExpectedDailyPresence()
		total += c.frac * span * pi
	}
	return total
}

// IPMode labels an IP-rotation behaviour.
type IPMode int

// IP rotation modes.
const (
	// IPStatic peers keep one address: the paper's 45% single-IP group.
	IPStatic IPMode = iota
	// IPDynamic peers rotate within their home AS — "these addresses
	// often belong to the same subnet" (Section 5.3.2).
	IPDynamic
	// IPMultiAS peers rotate across a small set of ASes.
	IPMultiAS
	// IPHeavy peers behave like routers behind VPN or Tor exits, hopping
	// across many ASes and accumulating >100 addresses (Section 5.2.2's
	// 460-peer group).
	IPHeavy
)

func (m IPMode) String() string {
	switch m {
	case IPStatic:
		return "static"
	case IPDynamic:
		return "dynamic"
	case IPMultiAS:
		return "multi-as"
	case IPHeavy:
		return "heavy"
	default:
		return fmt.Sprintf("IPMode(%d)", int(m))
	}
}

// IPProfile is a sampled IP-rotation behaviour for one peer.
type IPProfile struct {
	Mode IPMode
	// RotationMeanDays is this peer's mean days between address changes
	// (unused for IPStatic).
	RotationMeanDays float64
	// ASFanout is how many distinct ASes the peer may use (1 for static
	// and dynamic). The paper observed maxima of 39 ASes and 25 countries.
	ASFanout int
	// IPv6 marks peers that additionally publish an IPv6 address.
	IPv6 bool
}

// SampleIPProfile draws an IP-rotation profile.
func (m *Model) SampleIPProfile(rng *rand.Rand) IPProfile {
	v6 := rng.Float64() < m.cfg.IPv6Frac
	x := rng.Float64()
	switch {
	case x < m.cfg.StaticFrac:
		return IPProfile{Mode: IPStatic, ASFanout: 1, IPv6: v6}
	case x < m.cfg.StaticFrac+m.cfg.DynamicFrac:
		// Spread per-peer means: some ISPs rotate daily, some monthly.
		mean := m.cfg.DynamicRotationMeanDays * (0.3 + rng.ExpFloat64())
		return IPProfile{Mode: IPDynamic, RotationMeanDays: mean, ASFanout: 1, IPv6: v6}
	case x < m.cfg.StaticFrac+m.cfg.DynamicFrac+m.cfg.MultiASFrac:
		fan := 2 + rng.IntN(9) // 2..10
		mean := m.cfg.DynamicRotationMeanDays * (0.2 + rng.ExpFloat64()*0.6)
		return IPProfile{Mode: IPMultiAS, RotationMeanDays: mean, ASFanout: fan, IPv6: v6}
	default:
		// Heavy rotators: 11..39 ASes, sub-day to few-day rotation.
		fan := 11 + rng.IntN(29) // 11..39
		mean := m.cfg.HeavyRotationMeanDays * (0.3 + rng.ExpFloat64()*0.9)
		if mean < 0.05 {
			mean = 0.05
		}
		return IPProfile{Mode: IPHeavy, RotationMeanDays: mean, ASFanout: fan, IPv6: v6}
	}
}

// NextRotationDays draws the time in days until the peer's next address
// change. It returns +Inf for static profiles.
func (p IPProfile) NextRotationDays(rng *rand.Rand) float64 {
	if p.Mode == IPStatic || p.RotationMeanDays <= 0 {
		return math.Inf(1)
	}
	d := rng.ExpFloat64() * p.RotationMeanDays
	if d < 1.0/24 {
		d = 1.0 / 24 // at most one change per simulated hour
	}
	return d
}
