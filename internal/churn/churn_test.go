package churn

import (
	"math"
	"math/rand/v2"
	"testing"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0x9E3779B9)) }

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	bad := DefaultConfig()
	bad.StableFrac = 0.9
	if _, err := NewModel(bad); err == nil {
		t.Fatal("non-normalized class mix accepted")
	}
	bad = DefaultConfig()
	bad.StaticFrac = 0.9
	if _, err := NewModel(bad); err == nil {
		t.Fatal("non-normalized IP mix accepted")
	}
	bad = DefaultConfig()
	bad.StableOnOn = 1.5
	if _, err := NewModel(bad); err == nil {
		t.Fatal("out-of-range probability accepted")
	}
	bad = DefaultConfig()
	bad.DynamicRotationMeanDays = 0
	if _, err := NewModel(bad); err == nil {
		t.Fatal("zero rotation mean accepted")
	}
	if _, err := NewModel(DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestSampleProfileClasses(t *testing.T) {
	m := MustNewModel(DefaultConfig())
	rng := testRNG(1)
	counts := make(map[Class]int)
	n := 50000
	for i := 0; i < n; i++ {
		p := m.SampleProfile(rng)
		counts[p.Class]++
		if p.SpanDays < 1 {
			t.Fatalf("span %d < 1", p.SpanDays)
		}
		if p.Class == ClassStable && p.SpanDays < 20 {
			t.Fatalf("stable span %d below floor", p.SpanDays)
		}
	}
	cfg := DefaultConfig()
	for class, want := range map[Class]float64{
		ClassStable:    cfg.StableFrac,
		ClassRegular:   cfg.RegularFrac,
		ClassTransient: cfg.TransientFrac,
	} {
		got := float64(counts[class]) / float64(n)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("class %v frequency = %.3f, want ~%.3f", class, got, want)
		}
	}
}

func TestGeneratePresenceInvariants(t *testing.T) {
	m := MustNewModel(DefaultConfig())
	rng := testRNG(2)
	for i := 0; i < 2000; i++ {
		p := m.SampleProfile(rng)
		pres := p.GeneratePresence(rng, 90)
		if len(pres) == 0 {
			t.Fatal("empty presence")
		}
		if len(pres) > 90 || len(pres) > p.SpanDays {
			t.Fatalf("presence length %d exceeds bounds (span %d)", len(pres), p.SpanDays)
		}
		if !pres[0] {
			t.Fatal("day 0 must be online")
		}
		if len(pres) == p.SpanDays && !pres[len(pres)-1] {
			t.Fatal("last in-span day must be online")
		}
	}
}

// TestChurnCalibration reproduces Figure 7's anchor points from the
// generative model: presence >= 7 days continuously for ~56% of peers and
// intermittently for ~74%; >= 30 days for ~20% and ~31%. Bands are
// deliberately wide — the assertion is about the shape, not the digits.
func TestChurnCalibration(t *testing.T) {
	m := MustNewModel(DefaultConfig())
	rng := testRNG(3)
	const n = 30000
	const studyDays = 90
	cont7, cont30, int7, int30 := 0, 0, 0, 0
	for i := 0; i < n; i++ {
		p := m.SampleProfile(rng)
		pres := p.GeneratePresence(rng, studyDays)
		run := LongestRun(pres)
		span := SpanDays(pres)
		if run >= 7 {
			cont7++
		}
		if run >= 30 {
			cont30++
		}
		if span >= 7 {
			int7++
		}
		if span >= 30 {
			int30++
		}
	}
	pct := func(c int) float64 { return 100 * float64(c) / float64(n) }
	if got := pct(cont7); got < 45 || got > 66 {
		t.Errorf("continuous >=7d = %.1f%%, want ~56%%", got)
	}
	if got := pct(int7); got < 63 || got > 83 {
		t.Errorf("intermittent >=7d = %.1f%%, want ~74%%", got)
	}
	if got := pct(cont30); got < 13 || got > 28 {
		t.Errorf("continuous >=30d = %.1f%%, want ~20%%", got)
	}
	if got := pct(int30); got < 23 || got > 40 {
		t.Errorf("intermittent >=30d = %.1f%%, want ~31%%", got)
	}
	// Ordering invariants: intermittent dominates continuous; longer
	// horizons have smaller shares.
	if cont7 > int7 || cont30 > int30 {
		t.Error("continuous share exceeds intermittent share")
	}
	if cont30 > cont7 || int30 > int7 {
		t.Error("30-day share exceeds 7-day share")
	}
}

func TestExpectedDailyPresence(t *testing.T) {
	p := Profile{OnOn: 0.9, OffOn: 0.3}
	want := 0.3 / (1 - 0.9 + 0.3)
	if got := p.ExpectedDailyPresence(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("stationary presence = %v, want %v", got, want)
	}
	// Degenerate chain that never leaves the online state.
	p = Profile{OnOn: 1, OffOn: 0}
	if got := p.ExpectedDailyPresence(); got != 1 {
		t.Fatalf("degenerate chain presence = %v, want 1", got)
	}
}

func TestExpectedActiveDaysSanity(t *testing.T) {
	m := MustNewModel(DefaultConfig())
	got := m.ExpectedActiveDays(90)
	if got < 5 || got > 80 {
		t.Fatalf("ExpectedActiveDays(90) = %.1f, outside sanity band", got)
	}
	// Empirical check: the analytical estimate must be within 30% of a
	// Monte Carlo estimate.
	rng := testRNG(4)
	sum := 0
	const n = 20000
	for i := 0; i < n; i++ {
		p := m.SampleProfile(rng)
		sum += DaysOnline(p.GeneratePresence(rng, 90))
	}
	mc := float64(sum) / float64(n)
	if got < mc*0.7 || got > mc*1.3 {
		t.Fatalf("analytical %.1f vs monte carlo %.1f differ by >30%%", got, mc)
	}
}

func TestSampleIPProfileMix(t *testing.T) {
	m := MustNewModel(DefaultConfig())
	rng := testRNG(5)
	counts := make(map[IPMode]int)
	v6 := 0
	const n = 50000
	for i := 0; i < n; i++ {
		p := m.SampleIPProfile(rng)
		counts[p.Mode]++
		if p.IPv6 {
			v6++
		}
		switch p.Mode {
		case IPStatic, IPDynamic:
			if p.ASFanout != 1 {
				t.Fatalf("%v fanout = %d, want 1", p.Mode, p.ASFanout)
			}
		case IPMultiAS:
			if p.ASFanout < 2 || p.ASFanout > 10 {
				t.Fatalf("multi-AS fanout = %d, want 2..10", p.ASFanout)
			}
		case IPHeavy:
			if p.ASFanout < 11 || p.ASFanout > 39 {
				t.Fatalf("heavy fanout = %d, want 11..39 (paper max 39)", p.ASFanout)
			}
		}
	}
	cfg := DefaultConfig()
	for mode, want := range map[IPMode]float64{
		IPStatic:  cfg.StaticFrac,
		IPDynamic: cfg.DynamicFrac,
		IPMultiAS: cfg.MultiASFrac,
		IPHeavy:   cfg.HeavyFrac,
	} {
		got := float64(counts[mode]) / float64(n)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("mode %v frequency = %.3f, want ~%.3f", mode, got, want)
		}
	}
	if got := float64(v6) / float64(n); math.Abs(got-cfg.IPv6Frac) > 0.02 {
		t.Errorf("IPv6 fraction = %.3f, want ~%.3f", got, cfg.IPv6Frac)
	}
}

func TestNextRotationDays(t *testing.T) {
	rng := testRNG(6)
	static := IPProfile{Mode: IPStatic}
	if !math.IsInf(static.NextRotationDays(rng), 1) {
		t.Fatal("static profile must never rotate")
	}
	dyn := IPProfile{Mode: IPDynamic, RotationMeanDays: 10}
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		d := dyn.NextRotationDays(rng)
		if d < 1.0/24 {
			t.Fatalf("rotation interval %v below one hour", d)
		}
		sum += d
	}
	mean := sum / n
	if mean < 8 || mean > 12 {
		t.Fatalf("mean rotation = %.2f days, want ~10", mean)
	}
}

// TestHeavyRotatorsAccumulateAddresses checks the Figure 8 tail: a heavy
// profile online for the whole study accumulates over a hundred addresses.
func TestHeavyRotatorsAccumulateAddresses(t *testing.T) {
	rng := testRNG(7)
	p := IPProfile{Mode: IPHeavy, RotationMeanDays: 0.5, ASFanout: 20}
	days := 90.0
	clock, changes := 0.0, 1
	for {
		step := p.NextRotationDays(rng)
		clock += step
		if clock > days {
			break
		}
		changes++
	}
	if changes <= 100 {
		t.Fatalf("heavy rotator accumulated only %d addresses over 90 days", changes)
	}
}

func TestPresenceHelpers(t *testing.T) {
	cases := []struct {
		in   []bool
		run  int
		span int
		on   int
	}{
		{nil, 0, 0, 0},
		{[]bool{false, false}, 0, 0, 0},
		{[]bool{true}, 1, 1, 1},
		{[]bool{true, false, true}, 1, 3, 2},
		{[]bool{true, true, false, true, true, true}, 3, 6, 5},
		{[]bool{false, true, true, false}, 2, 2, 2},
	}
	for i, c := range cases {
		if got := LongestRun(c.in); got != c.run {
			t.Errorf("case %d: LongestRun = %d, want %d", i, got, c.run)
		}
		if got := SpanDays(c.in); got != c.span {
			t.Errorf("case %d: SpanDays = %d, want %d", i, got, c.span)
		}
		if got := DaysOnline(c.in); got != c.on {
			t.Errorf("case %d: DaysOnline = %d, want %d", i, got, c.on)
		}
	}
}

func TestClassAndModeStrings(t *testing.T) {
	if ClassStable.String() != "stable" || ClassTransient.String() != "transient" {
		t.Fatal("class strings wrong")
	}
	if IPHeavy.String() != "heavy" || IPStatic.String() != "static" {
		t.Fatal("mode strings wrong")
	}
	if Class(99).String() == "" || IPMode(99).String() == "" {
		t.Fatal("unknown enums must still format")
	}
}
