package geo

// countrySpec seeds the synthetic database with one country's share of the
// I2P peer population and its press-freedom score. Shares are per-mille of
// the global peer population and are calibrated to the paper's Figure 10:
// the US leads with ~24% of observed peers; US+RU+GB+FR+CA+AU exceed 40%;
// the top 20 exceed 60%; ~30 censored countries total ~5%, led by China
// (>2K of ~115K cumulative known-IP peers), Singapore (~700) and
// Turkey (~600).
type countrySpec struct {
	Code  string
	Name  string
	Share int // per-mille of peers
	Press int // press-freedom score; > 50 means hidden-by-default
}

// The 2018 RSF scores are approximated; only the >50 threshold matters to
// the I2P hidden-mode default the paper describes (Section 5.1).
var countrySpecs = []countrySpec{
	// Top 20 of Figure 10.
	{"US", "United States", 240, 23},
	{"RU", "Russia", 80, 50},
	{"GB", "United Kingdom", 52, 23},
	{"FR", "France", 45, 22},
	{"CA", "Canada", 40, 16},
	{"AU", "Australia", 35, 21},
	{"DE", "Germany", 32, 14},
	{"NL", "Netherlands", 25, 10},
	{"BR", "Brazil", 23, 31},
	{"IT", "Italy", 22, 24},
	{"ES", "Spain", 20, 20},
	{"IN", "India", 19, 43},
	{"CN", "China", 18, 78},
	{"JP", "Japan", 17, 28},
	{"UA", "Ukraine", 16, 32},
	{"SE", "Sweden", 15, 9},
	{"BE", "Belgium", 14, 13},
	{"CH", "Switzerland", 13, 11},
	{"PL", "Poland", 13, 26},
	{"ZA", "South Africa", 12, 20},
	// Censored group (press score > 50). China above is also in this
	// group. Shares follow the paper: SG ~0.6%, TR ~0.5%, the rest small.
	{"SG", "Singapore", 6, 51},
	{"TR", "Turkey", 5, 58},
	{"VN", "Vietnam", 2, 75},
	{"SA", "Saudi Arabia", 2, 66},
	{"IR", "Iran", 2, 64},
	{"EG", "Egypt", 2, 56},
	{"PK", "Pakistan", 2, 51},
	{"BY", "Belarus", 2, 52},
	{"KZ", "Kazakhstan", 2, 54},
	{"AE", "United Arab Emirates", 1, 58},
	{"TH", "Thailand", 1, 53},
	{"IQ", "Iraq", 1, 54},
	{"LY", "Libya", 1, 56},
	{"SY", "Syria", 1, 81},
	{"YE", "Yemen", 1, 65},
	{"SD", "Sudan", 1, 71},
	{"ET", "Ethiopia", 1, 69},
	{"CU", "Cuba", 1, 68},
	{"VE", "Venezuela", 1, 51},
	{"BH", "Bahrain", 1, 61},
	{"OM", "Oman", 1, 52},
	{"QA", "Qatar", 1, 57},
	{"LA", "Laos", 1, 66},
	{"KH", "Cambodia", 1, 52},
	{"MM", "Myanmar", 1, 55},
	{"TJ", "Tajikistan", 1, 55},
	{"TM", "Turkmenistan", 1, 84},
	{"UZ", "Uzbekistan", 1, 66},
	{"AZ", "Azerbaijan", 1, 57},
	{"RW", "Rwanda", 1, 50},
	// Two censored countries with no observed peers (the paper saw peers
	// in only 30 of 32 such countries).
	{"KP", "North Korea", 0, 88},
	{"ER", "Eritrea", 0, 84},
	// A long tail of uncensored countries sharing the remainder. Shares
	// here are filled programmatically by buildCountries so that the
	// total reaches 1000 per-mille across 225 countries/regions.
	{"FI", "Finland", 10, 8},
	{"NO", "Norway", 10, 8},
	{"DK", "Denmark", 9, 10},
	{"AT", "Austria", 9, 14},
	{"CZ", "Czechia", 9, 24},
	{"PT", "Portugal", 8, 16},
	{"GR", "Greece", 8, 30},
	{"HU", "Hungary", 8, 29},
	{"RO", "Romania", 8, 25},
	{"BG", "Bulgaria", 7, 35},
	{"AR", "Argentina", 7, 26},
	{"MX", "Mexico", 7, 48},
	{"CL", "Chile", 6, 20},
	{"CO", "Colombia", 6, 41},
	{"KR", "South Korea", 6, 24},
	{"TW", "Taiwan", 6, 23},
	{"HK", "Hong Kong", 5, 39},
	{"ID", "Indonesia", 5, 37},
	{"MY", "Malaysia", 5, 46},
	{"PH", "Philippines", 5, 42},
	{"NZ", "New Zealand", 5, 13},
	{"IE", "Ireland", 5, 14},
	{"IL", "Israel", 4, 32},
	{"RS", "Serbia", 4, 31},
	{"HR", "Croatia", 4, 28},
	{"SK", "Slovakia", 4, 23},
	{"SI", "Slovenia", 4, 22},
	{"LT", "Lithuania", 4, 22},
	{"LV", "Latvia", 3, 19},
	{"EE", "Estonia", 3, 12},
	{"MD", "Moldova", 3, 30},
	{"GE", "Georgia", 3, 28},
	{"AM", "Armenia", 3, 29},
	{"PE", "Peru", 3, 30},
	{"EC", "Ecuador", 3, 33},
	{"UY", "Uruguay", 3, 16},
	{"CR", "Costa Rica", 2, 12},
	{"PA", "Panama", 2, 30},
	{"DO", "Dominican Republic", 2, 27},
	{"MA", "Morocco", 2, 43},
	{"TN", "Tunisia", 2, 31},
	{"DZ", "Algeria", 2, 43},
	{"NG", "Nigeria", 2, 39},
	{"KE", "Kenya", 2, 31},
	{"GH", "Ghana", 2, 23},
	{"TZ", "Tanzania", 2, 39},
	{"UG", "Uganda", 2, 35},
	{"SN", "Senegal", 1, 24},
	{"CI", "Ivory Coast", 1, 29},
	{"CM", "Cameroon", 1, 43},
	{"BD", "Bangladesh", 1, 48},
	{"LK", "Sri Lanka", 1, 44},
	{"NP", "Nepal", 1, 35},
	{"MN", "Mongolia", 1, 30},
	{"KG", "Kyrgyzstan", 1, 47},
	{"AL", "Albania", 1, 29},
	{"MK", "North Macedonia", 1, 36},
	{"BA", "Bosnia and Herzegovina", 1, 27},
	{"ME", "Montenegro", 1, 33},
	{"CY", "Cyprus", 1, 21},
	{"MT", "Malta", 1, 24},
	{"LU", "Luxembourg", 1, 15},
	{"IS", "Iceland", 1, 13},
}

// asSpec seeds one autonomous system: its number, operator name, home
// country, and its share of that country's peers in per-mille. Figure 11:
// AS7922 (Comcast) alone hosts >8K of ~115K (≈7%); the top 20 ASes cover
// >30% of all peers. ASNs 7922, 9009 and 7018 are legible in the figure;
// the remainder are representative large consumer ISPs in the top
// countries.
type asSpec struct {
	ASN     uint32
	Name    string
	Country string
	Share   int // per-mille of the country's peers
}

var asSpecs = []asSpec{
	// United States: Comcast dominates Figure 11.
	{7922, "Comcast Cable Communications, LLC", "US", 300},
	{7018, "AT&T Services, Inc.", "US", 150},
	{701, "Verizon Business", "US", 120},
	{20115, "Charter Communications", "US", 110},
	{22773, "Cox Communications Inc.", "US", 80},
	{209, "CenturyLink Communications, LLC", "US", 70},
	{10796, "Time Warner Cable Internet LLC", "US", 60},
	{6128, "Cablevision Systems Corp.", "US", 40},
	{11427, "Charter Communications (TWC)", "US", 40},
	{30036, "Mediacom Communications Corp", "US", 30},
	// Russia.
	{12389, "Rostelecom", "RU", 250},
	{8402, "OJSC Vimpelcom", "RU", 180},
	{12714, "Net By Net Holding LLC", "RU", 120},
	{31208, "MegaFon", "RU", 100},
	{25513, "MGTS", "RU", 90},
	{8359, "MTS PJSC", "RU", 90},
	// United Kingdom.
	{9009, "M247 Ltd", "GB", 220},
	{2856, "British Telecommunications PLC", "GB", 200},
	{5089, "Virgin Media Limited", "GB", 180},
	{13285, "TalkTalk Communications Limited", "GB", 120},
	{5607, "Sky UK Limited", "GB", 120},
	// France.
	{12322, "Free SAS", "FR", 280},
	{3215, "Orange S.A.", "FR", 250},
	{15557, "SFR SA", "FR", 170},
	{5410, "Bouygues Telecom SA", "FR", 130},
	// Canada.
	{812, "Rogers Communications Canada Inc.", "CA", 250},
	{577, "Bell Canada", "CA", 220},
	{6327, "Shaw Communications Inc.", "CA", 180},
	{852, "TELUS Communications", "CA", 150},
	// Australia.
	{1221, "Telstra Corporation Ltd", "AU", 280},
	{4804, "Microplex PTY LTD (Optus)", "AU", 180},
	{7545, "TPG Telecom Limited", "AU", 170},
	{9443, "Vocus Communications", "AU", 100},
	// Germany.
	{3320, "Deutsche Telekom AG", "DE", 300},
	{31334, "Vodafone Kabel Deutschland", "DE", 180},
	{6830, "Liberty Global (Unitymedia)", "DE", 150},
	{8881, "1&1 Versatel Deutschland", "DE", 100},
	// Netherlands.
	{33915, "Vodafone Libertel (Ziggo)", "NL", 280},
	{1136, "KPN B.V.", "NL", 250},
	{50266, "Odido Netherlands", "NL", 100},
	// Brazil.
	{28573, "Claro NET", "BR", 250},
	{27699, "Telefonica Brasil (Vivo)", "BR", 220},
	{8167, "Oi S.A.", "BR", 150},
	// Italy.
	{3269, "Telecom Italia", "IT", 280},
	{30722, "Vodafone Italia", "IT", 180},
	{12874, "Fastweb SpA", "IT", 150},
	// Spain.
	{3352, "Telefonica de Espana", "ES", 280},
	{12479, "Orange Espagne", "ES", 180},
	{12430, "Vodafone Espana", "ES", 150},
	// India.
	{9829, "BSNL National Internet Backbone", "IN", 220},
	{24560, "Bharti Airtel Ltd", "IN", 200},
	{45609, "Bharti Airtel (Mobility)", "IN", 120},
	// China.
	{4134, "Chinanet", "CN", 300},
	{4837, "China Unicom Backbone", "CN", 220},
	{9808, "China Mobile", "CN", 150},
	// Japan.
	{4713, "NTT Communications (OCN)", "JP", 250},
	{17676, "SoftBank Corp.", "JP", 200},
	{2516, "KDDI Corporation", "JP", 180},
	// Ukraine.
	{6849, "PJSC Ukrtelecom", "UA", 220},
	{25229, "Kyivstar GSM", "UA", 180},
	{13188, "Content Delivery Network Ltd (Triolan)", "UA", 140},
	// Sweden.
	{3301, "Telia Company AB", "SE", 280},
	{8473, "Bahnhof AB", "SE", 180},
	{29518, "Bredband2 AB", "SE", 150},
	// Belgium.
	{5432, "Proximus NV", "BE", 280},
	{6848, "Telenet BVBA", "BE", 250},
	// Switzerland.
	{3303, "Swisscom (Schweiz) AG", "CH", 280},
	{6730, "Sunrise Communications AG", "CH", 200},
	// Poland.
	{5617, "Orange Polska", "PL", 280},
	{12912, "T-Mobile Polska", "PL", 160},
	{6714, "Netia SA", "PL", 150},
	// South Africa.
	{3741, "Internet Solutions", "ZA", 220},
	{37457, "Telkom SA", "ZA", 200},
	// Singapore & Turkey (the censored-group leaders after China).
	{4773, "Singtel Mobile", "SG", 300},
	{9506, "Singtel Fibre", "SG", 250},
	{9121, "Turk Telekom", "TR", 300},
	{34984, "Superonline Iletisim", "TR", 220},
	// Popular hosting/VPN ASes: the paper attributes multi-AS peers to
	// routers operated behind VPN or Tor exits (Section 5.3.2).
	{16276, "OVH SAS", "FR", 60},
	{24940, "Hetzner Online GmbH", "DE", 60},
	{16509, "Amazon.com, Inc.", "US", 15},
	{14061, "DigitalOcean, LLC", "US", 15},
	{63949, "Linode, LLC", "US", 10},
	{212238, "Datacamp Limited (CDN77)", "GB", 30},
}

// VPNASNs lists the hosting/VPN autonomous systems used by the IP-churn
// model to emulate routers running behind VPN or Tor exits.
var VPNASNs = []uint32{16276, 24940, 16509, 14061, 63949, 212238}
