// Package geo is the study's offline IP-geolocation substrate: a synthetic,
// deterministic substitute for the MaxMind database the paper used.
//
// The paper's ethics section requires offline resolution ("we use a locally
// installed version of the MaxMind Database to map them in an offline
// fashion", Section 3). This package goes one step further for
// reproducibility: it *allocates* synthetic IPv4 /16 and IPv6 blocks to a
// fixed roster of autonomous systems and countries whose peer shares are
// calibrated to the paper's Figures 10–12, and then resolves any allocated
// address back to its (country, ASN) record. Simulated peers draw their
// addresses from this allocator, so geographic analysis code exercises a
// real lookup path.
package geo

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand/v2"
	"net/netip"
	"sort"
)

// PressFreedomHiddenThreshold is the press-freedom score above which I2P
// configures routers as hidden by default (Section 5.1: "peers located in
// countries with poor Press Freedom scores (i.e., greater than 50) are set
// to hidden").
const PressFreedomHiddenThreshold = 50

// Record is the result of resolving an IP address.
type Record struct {
	CountryCode string
	CountryName string
	ASN         uint32
	ASName      string
}

// AS describes one autonomous system in the database.
type AS struct {
	ASN     uint32
	Name    string
	Country string
	// GlobalShare is the AS's fraction of the worldwide peer population.
	GlobalShare float64
	// blocks lists the /16 IPv4 block indexes (address>>16) owned by the AS.
	blocks []uint32
}

// Country describes one country in the database.
type Country struct {
	Code  string
	Name  string
	Press int
	// Share is the country's fraction of the worldwide peer population.
	Share float64
	// ASNs lists the autonomous systems homed in this country.
	ASNs []uint32
}

// Censored reports whether the country's press-freedom score exceeds the
// hidden-mode threshold.
func (c *Country) Censored() bool { return c.Press > PressFreedomHiddenThreshold }

// DB is the geolocation database. It is immutable after construction and
// safe for concurrent readers.
type DB struct {
	countries map[string]*Country
	ases      map[uint32]*AS
	v4block   map[uint32]uint32 // ipv4>>16 -> ASN

	countryList []*Country // sorted by share descending, then code
	asList      []*AS      // sorted by global share descending, then ASN

	cumCountry []float64 // cumulative country shares for sampling
	cumAS      map[string][]float64
	vpnASNs    []uint32
}

// v4Base is the first synthetic /16 block: 11.0.0.0. The space is
// synthetic; no claim is made about real-world ownership.
const v4Base = uint32(11) << 24

// NewDB builds the default database from the calibrated rosters in data.go.
// Construction is fully deterministic.
func NewDB() *DB {
	db := &DB{
		countries: make(map[string]*Country),
		ases:      make(map[uint32]*AS),
		v4block:   make(map[uint32]uint32),
		cumAS:     make(map[string][]float64),
		vpnASNs:   append([]uint32(nil), VPNASNs...),
	}

	totalShare := 0
	for _, cs := range countrySpecs {
		totalShare += cs.Share
	}
	// The long tail of ~200 unlisted countries and regions absorbs any
	// remaining share via aggregate rest-of-world entries; the paper
	// reports "205 other countries and regions". We model them as 10
	// aggregate entries to keep the allocator small.
	const restEntries = 10
	rest := 1000 - totalShare
	specs := append([]countrySpec(nil), countrySpecs...)
	if rest > 0 {
		totalShare += rest
		for i := 0; i < restEntries; i++ {
			specs = append(specs, countrySpec{
				Code:  fmt.Sprintf("R%d", i),
				Name:  fmt.Sprintf("Rest of world %d", i),
				Share: rest / restEntries,
				Press: 30,
			})
		}
	}

	// Normalize so country shares always sum to exactly one, regardless of
	// roster edits.
	norm := float64(totalShare)
	for _, cs := range specs {
		c := &Country{
			Code:  cs.Code,
			Name:  cs.Name,
			Press: cs.Press,
			Share: float64(cs.Share) / norm,
		}
		db.countries[c.Code] = c
		db.countryList = append(db.countryList, c)
	}

	// Explicit ASes first.
	perCountryShare := make(map[string]int)
	for _, as := range asSpecs {
		c := db.countries[as.Country]
		if c == nil {
			continue
		}
		a := &AS{
			ASN:         as.ASN,
			Name:        as.Name,
			Country:     as.Country,
			GlobalShare: c.Share * float64(as.Share) / 1000,
		}
		db.ases[a.ASN] = a
		c.ASNs = append(c.ASNs, a.ASN)
		perCountryShare[as.Country] += as.Share
	}
	// One synthetic rest-of-country AS per country absorbs the remainder,
	// so that every country can mint addresses. Private 16-bit ASNs.
	nextPrivate := uint32(64512)
	for _, c := range db.countryList {
		remainder := 1000 - perCountryShare[c.Code]
		if remainder <= 0 && len(c.ASNs) > 0 {
			continue
		}
		a := &AS{
			ASN:         nextPrivate,
			Name:        "Regional ISPs of " + c.Name,
			Country:     c.Code,
			GlobalShare: c.Share * float64(remainder) / 1000,
		}
		nextPrivate++
		db.ases[a.ASN] = a
		c.ASNs = append(c.ASNs, a.ASN)
	}

	// Deterministic /16 allocation: iterate ASes in a stable order and
	// hand out blocks proportional to global share.
	asns := make([]uint32, 0, len(db.ases))
	for asn := range db.ases {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	next := v4Base >> 16
	for _, asn := range asns {
		a := db.ases[asn]
		n := int(a.GlobalShare * 256)
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			a.blocks = append(a.blocks, next)
			db.v4block[next] = asn
			next++
		}
	}

	db.finish()
	return db
}

// finish derives the sorted lists and sampling tables. It must be called
// after countries, ases and v4block are populated.
func (db *DB) finish() {
	db.countryList = db.countryList[:0]
	for _, c := range db.countries {
		db.countryList = append(db.countryList, c)
	}
	sort.Slice(db.countryList, func(i, j int) bool {
		if db.countryList[i].Share != db.countryList[j].Share {
			return db.countryList[i].Share > db.countryList[j].Share
		}
		return db.countryList[i].Code < db.countryList[j].Code
	})
	db.asList = db.asList[:0]
	for _, a := range db.ases {
		db.asList = append(db.asList, a)
	}
	sort.Slice(db.asList, func(i, j int) bool {
		if db.asList[i].GlobalShare != db.asList[j].GlobalShare {
			return db.asList[i].GlobalShare > db.asList[j].GlobalShare
		}
		return db.asList[i].ASN < db.asList[j].ASN
	})

	db.cumCountry = make([]float64, len(db.countryList))
	sum := 0.0
	for i, c := range db.countryList {
		sum += c.Share
		db.cumCountry[i] = sum
	}
	db.cumAS = make(map[string][]float64, len(db.countries))
	for _, c := range db.countries {
		sort.Slice(c.ASNs, func(i, j int) bool { return c.ASNs[i] < c.ASNs[j] })
		cum := make([]float64, len(c.ASNs))
		s := 0.0
		for i, asn := range c.ASNs {
			s += db.ases[asn].GlobalShare
			cum[i] = s
		}
		db.cumAS[c.Code] = cum
	}
}

// Country returns the country record for a code, or nil.
func (db *DB) Country(code string) *Country { return db.countries[code] }

// AS returns the AS record for a number, or nil.
func (db *DB) AS(asn uint32) *AS { return db.ases[asn] }

// Countries returns all countries sorted by peer share descending.
func (db *DB) Countries() []*Country { return db.countryList }

// ASes returns all autonomous systems sorted by global share descending.
func (db *DB) ASes() []*AS { return db.asList }

// CensoredCountries returns the codes of all countries above the
// press-freedom threshold, sorted by share descending.
func (db *DB) CensoredCountries() []string {
	var out []string
	for _, c := range db.countryList {
		if c.Censored() {
			out = append(out, c.Code)
		}
	}
	return out
}

// Censored reports whether the country code is above the press-freedom
// threshold. Unknown codes are not censored.
func (db *DB) Censored(code string) bool {
	c := db.countries[code]
	return c != nil && c.Censored()
}

// Lookup resolves an address allocated by this database. The boolean is
// false for addresses outside the allocated space — mirroring the ~2K
// unresolvable addresses the paper hit with MaxMind (Section 5.3.2).
func (db *DB) Lookup(addr netip.Addr) (Record, bool) {
	if !addr.IsValid() {
		return Record{}, false
	}
	var asn uint32
	if addr.Is4() {
		b := addr.As4()
		ip := binary.BigEndian.Uint32(b[:])
		var ok bool
		asn, ok = db.v4block[ip>>16]
		if !ok {
			return Record{}, false
		}
	} else {
		b := addr.As16()
		if b[0] != 0x2a || b[1] != 0x10 {
			return Record{}, false
		}
		asn = binary.BigEndian.Uint32(b[2:6])
	}
	a := db.ases[asn]
	if a == nil {
		return Record{}, false
	}
	c := db.countries[a.Country]
	if c == nil {
		return Record{}, false
	}
	return Record{
		CountryCode: c.Code,
		CountryName: c.Name,
		ASN:         a.ASN,
		ASName:      a.Name,
	}, true
}

// RandomIPv4 returns a fresh IPv4 address inside one of the AS's /16
// blocks. It panics if the ASN is unknown (a programming error in callers).
func (db *DB) RandomIPv4(asn uint32, rng *rand.Rand) netip.Addr {
	a := db.ases[asn]
	if a == nil || len(a.blocks) == 0 {
		panic(fmt.Sprintf("geo: unknown ASN %d", asn))
	}
	block := a.blocks[rng.IntN(len(a.blocks))]
	host := uint32(rng.IntN(65534) + 1) // avoid .0.0 and broadcast-ish tails
	ip := block<<16 | host
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], ip)
	return netip.AddrFrom4(b)
}

// RandomIPv6 returns an IPv6 address in the AS's synthetic 2a10::/16-based
// space: the ASN is embedded in bytes 2–5, making lookup exact.
func (db *DB) RandomIPv6(asn uint32, rng *rand.Rand) netip.Addr {
	if db.ases[asn] == nil {
		panic(fmt.Sprintf("geo: unknown ASN %d", asn))
	}
	var b [16]byte
	b[0], b[1] = 0x2a, 0x10
	binary.BigEndian.PutUint32(b[2:6], asn)
	for i := 6; i < 16; i++ {
		b[i] = byte(rng.IntN(256))
	}
	return netip.AddrFrom16(b)
}

// SampleCountry draws a country weighted by peer share.
func (db *DB) SampleCountry(rng *rand.Rand) *Country {
	if len(db.countryList) == 0 {
		return nil
	}
	total := db.cumCountry[len(db.cumCountry)-1]
	x := rng.Float64() * total
	i := sort.SearchFloat64s(db.cumCountry, x)
	if i >= len(db.countryList) {
		i = len(db.countryList) - 1
	}
	return db.countryList[i]
}

// SampleAS draws an AS within a country, weighted by the AS's share.
// It returns nil for unknown countries.
func (db *DB) SampleAS(country string, rng *rand.Rand) *AS {
	c := db.countries[country]
	if c == nil || len(c.ASNs) == 0 {
		return nil
	}
	cum := db.cumAS[country]
	total := cum[len(cum)-1]
	if total <= 0 {
		return db.ases[c.ASNs[rng.IntN(len(c.ASNs))]]
	}
	x := rng.Float64() * total
	i := sort.SearchFloat64s(cum, x)
	if i >= len(c.ASNs) {
		i = len(c.ASNs) - 1
	}
	return db.ases[c.ASNs[i]]
}

// SampleVPNAS draws one of the hosting/VPN ASes used to model routers
// operated behind VPNs or Tor (Section 5.3.2).
func (db *DB) SampleVPNAS(rng *rand.Rand) *AS {
	asn := db.vpnASNs[rng.IntN(len(db.vpnASNs))]
	return db.ases[asn]
}

// Save writes the database in a line-oriented text format readable by Load.
func (db *DB) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, c := range db.countryList {
		if _, err := fmt.Fprintf(bw, "country %s %d %.6f %s\n", c.Code, c.Press, c.Share, c.Name); err != nil {
			return err
		}
	}
	for _, a := range db.asList {
		if _, err := fmt.Fprintf(bw, "as %d %s %.8f %s\n", a.ASN, a.Country, a.GlobalShare, a.Name); err != nil {
			return err
		}
		for _, blk := range a.blocks {
			if _, err := fmt.Fprintf(bw, "v4 %d %d\n", blk, a.ASN); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a database written by Save.
func Load(r io.Reader) (*DB, error) {
	db := &DB{
		countries: make(map[string]*Country),
		ases:      make(map[uint32]*AS),
		v4block:   make(map[uint32]uint32),
		cumAS:     make(map[string][]float64),
		vpnASNs:   append([]uint32(nil), VPNASNs...),
	}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		var kind string
		if _, err := fmt.Sscanf(text, "%s", &kind); err != nil {
			return nil, fmt.Errorf("geo: line %d: %w", line, err)
		}
		switch kind {
		case "country":
			c := &Country{}
			var rest string
			if _, err := fmt.Sscanf(text, "country %s %d %f", &c.Code, &c.Press, &c.Share); err != nil {
				return nil, fmt.Errorf("geo: line %d: %w", line, err)
			}
			if n := len("country ") + len(c.Code); n < len(text) {
				// Name is everything after the third space-separated field.
				fields := 0
				for i := 0; i < len(text); i++ {
					if text[i] == ' ' {
						fields++
						if fields == 4 {
							rest = text[i+1:]
							break
						}
					}
				}
			}
			c.Name = rest
			db.countries[c.Code] = c
		case "as":
			a := &AS{}
			if _, err := fmt.Sscanf(text, "as %d %s %f", &a.ASN, &a.Country, &a.GlobalShare); err != nil {
				return nil, fmt.Errorf("geo: line %d: %w", line, err)
			}
			fields := 0
			for i := 0; i < len(text); i++ {
				if text[i] == ' ' {
					fields++
					if fields == 4 {
						a.Name = text[i+1:]
						break
					}
				}
			}
			db.ases[a.ASN] = a
			if c := db.countries[a.Country]; c != nil {
				c.ASNs = append(c.ASNs, a.ASN)
			}
		case "v4":
			var blk, asn uint32
			if _, err := fmt.Sscanf(text, "v4 %d %d", &blk, &asn); err != nil {
				return nil, fmt.Errorf("geo: line %d: %w", line, err)
			}
			db.v4block[blk] = asn
			if a := db.ases[asn]; a != nil {
				a.blocks = append(a.blocks, blk)
			}
		default:
			return nil, fmt.Errorf("geo: line %d: unknown record kind %q", line, kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	db.finish()
	return db, nil
}
