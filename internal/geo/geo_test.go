package geo

import (
	"bytes"
	"math/rand/v2"
	"net/netip"
	"testing"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(1, 2)) }

func TestNewDBBasics(t *testing.T) {
	db := NewDB()
	if db.Country("US") == nil || db.Country("CN") == nil {
		t.Fatal("core countries missing")
	}
	if db.AS(7922) == nil {
		t.Fatal("AS7922 (Comcast) missing")
	}
	if got := db.AS(7922).Country; got != "US" {
		t.Fatalf("AS7922 country = %s, want US", got)
	}
	// US must be the top country; Comcast the top AS (Figures 10, 11).
	if db.Countries()[0].Code != "US" {
		t.Fatalf("top country = %s, want US", db.Countries()[0].Code)
	}
	if db.ASes()[0].ASN != 7922 {
		t.Fatalf("top AS = %d, want 7922", db.ASes()[0].ASN)
	}
}

func TestCountrySharesCalibration(t *testing.T) {
	db := NewDB()
	// Figure 10: US+RU+GB+FR+CA+AU > 40% of peers.
	big6 := 0.0
	for _, cc := range []string{"US", "RU", "GB", "FR", "CA", "AU"} {
		big6 += db.Country(cc).Share
	}
	if big6 < 0.40 {
		t.Fatalf("top-6 share = %.3f, want > 0.40", big6)
	}
	// Top 20 > 60%.
	top20 := 0.0
	for i, c := range db.Countries() {
		if i >= 20 {
			break
		}
		top20 += c.Share
	}
	if top20 < 0.60 {
		t.Fatalf("top-20 share = %.3f, want > 0.60", top20)
	}
	// Total share must not exceed 1.
	total := 0.0
	for _, c := range db.Countries() {
		total += c.Share
	}
	if total > 1.0001 || total < 0.95 {
		t.Fatalf("total share = %.4f, want ~1", total)
	}
}

func TestCensoredCountries(t *testing.T) {
	db := NewDB()
	if !db.Censored("CN") || !db.Censored("TR") || !db.Censored("SG") {
		t.Fatal("CN, TR, SG must be censored (press score > 50)")
	}
	if db.Censored("US") || db.Censored("RU") {
		t.Fatal("US and RU must not be in the censored group")
	}
	if db.Censored("??") {
		t.Fatal("unknown country censored")
	}
	cs := db.CensoredCountries()
	// The roster has 32 countries with poor scores (30 with peers + 2
	// without), mirroring Section 5.3.2.
	if len(cs) != 32 {
		t.Fatalf("censored countries = %d, want 32", len(cs))
	}
	withPeers := 0
	for _, cc := range cs {
		if db.Country(cc).Share > 0 {
			withPeers++
		}
	}
	if withPeers != 30 {
		t.Fatalf("censored countries with peers = %d, want 30", withPeers)
	}
	// China must lead the censored group.
	if cs[0] != "CN" {
		t.Fatalf("leading censored country = %s, want CN", cs[0])
	}
}

func TestLookupRoundTripIPv4(t *testing.T) {
	db := NewDB()
	rng := testRNG()
	for _, asn := range []uint32{7922, 12389, 4134, 9121, 16276} {
		for i := 0; i < 50; i++ {
			addr := db.RandomIPv4(asn, rng)
			rec, ok := db.Lookup(addr)
			if !ok {
				t.Fatalf("Lookup(%v) failed for AS%d", addr, asn)
			}
			if rec.ASN != asn {
				t.Fatalf("Lookup(%v).ASN = %d, want %d", addr, rec.ASN, asn)
			}
			if rec.CountryCode != db.AS(asn).Country {
				t.Fatalf("country mismatch for AS%d: %s", asn, rec.CountryCode)
			}
		}
	}
}

func TestLookupRoundTripIPv6(t *testing.T) {
	db := NewDB()
	rng := testRNG()
	addr := db.RandomIPv6(4134, rng)
	if !addr.Is6() {
		t.Fatal("RandomIPv6 returned non-IPv6")
	}
	rec, ok := db.Lookup(addr)
	if !ok || rec.ASN != 4134 || rec.CountryCode != "CN" {
		t.Fatalf("Lookup(%v) = %+v, %v", addr, rec, ok)
	}
}

func TestLookupUnknown(t *testing.T) {
	db := NewDB()
	for _, s := range []string{"8.8.8.8", "192.168.1.1", "2001:db8::1"} {
		addr := mustAddr(t, s)
		if _, ok := db.Lookup(addr); ok {
			t.Errorf("Lookup(%s) resolved an unallocated address", s)
		}
	}
	var zero = netipAddrZero()
	if _, ok := db.Lookup(zero); ok {
		t.Error("Lookup(zero addr) should fail")
	}
}

func TestSampleCountryDistribution(t *testing.T) {
	db := NewDB()
	rng := testRNG()
	n := 20000
	counts := make(map[string]int)
	for i := 0; i < n; i++ {
		counts[db.SampleCountry(rng).Code]++
	}
	usShare := float64(counts["US"]) / float64(n)
	if usShare < 0.20 || usShare > 0.29 {
		t.Fatalf("US sample share = %.3f, want ~0.24", usShare)
	}
	if counts["CN"] == 0 || counts["SG"] == 0 {
		t.Fatal("censored countries never sampled")
	}
}

func TestSampleASWithinCountry(t *testing.T) {
	db := NewDB()
	rng := testRNG()
	counts := make(map[uint32]int)
	for i := 0; i < 5000; i++ {
		a := db.SampleAS("US", rng)
		if a == nil {
			t.Fatal("SampleAS(US) returned nil")
		}
		if a.Country != "US" {
			t.Fatalf("sampled AS%d from %s", a.ASN, a.Country)
		}
		counts[a.ASN]++
	}
	// Comcast's within-US share is 30%: it must dominate.
	for asn, c := range counts {
		if asn != 7922 && c > counts[7922] {
			t.Fatalf("AS%d (%d) sampled more than Comcast (%d)", asn, c, counts[7922])
		}
	}
	if db.SampleAS("??", rng) != nil {
		t.Fatal("unknown country should sample nil")
	}
}

func TestSampleVPNAS(t *testing.T) {
	db := NewDB()
	rng := testRNG()
	seen := make(map[uint32]bool)
	for i := 0; i < 200; i++ {
		a := db.SampleVPNAS(rng)
		if a == nil {
			t.Fatal("SampleVPNAS returned nil")
		}
		seen[a.ASN] = true
	}
	if len(seen) < 3 {
		t.Fatalf("VPN sampling hit only %d ASes", len(seen))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := NewDB()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Countries()) != len(db.Countries()) {
		t.Fatalf("countries: got %d want %d", len(loaded.Countries()), len(db.Countries()))
	}
	if len(loaded.ASes()) != len(db.ASes()) {
		t.Fatalf("ases: got %d want %d", len(loaded.ASes()), len(db.ASes()))
	}
	// Lookup must behave identically for sampled addresses.
	rng := testRNG()
	for i := 0; i < 100; i++ {
		addr := db.RandomIPv4(7922, rng)
		r1, ok1 := db.Lookup(addr)
		r2, ok2 := loaded.Lookup(addr)
		if ok1 != ok2 || r1 != r2 {
			t.Fatalf("lookup divergence for %v: %+v/%v vs %+v/%v", addr, r1, ok1, r2, ok2)
		}
	}
	us := loaded.Country("US")
	if us == nil || us.Name != "United States" {
		t.Fatalf("US after reload: %+v", us)
	}
	as := loaded.AS(7922)
	if as == nil || as.Name != "Comcast Cable Communications, LLC" {
		t.Fatalf("AS7922 after reload: %+v", as)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("bogus line here\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewBufferString("country XX\n")); err == nil {
		t.Fatal("short country line accepted")
	}
}

func TestEveryCountryCanMintAddresses(t *testing.T) {
	db := NewDB()
	rng := testRNG()
	for _, c := range db.Countries() {
		if len(c.ASNs) == 0 {
			t.Fatalf("country %s has no ASes", c.Code)
		}
		a := db.SampleAS(c.Code, rng)
		if a == nil {
			t.Fatalf("SampleAS(%s) = nil", c.Code)
		}
		addr := db.RandomIPv4(a.ASN, rng)
		rec, ok := db.Lookup(addr)
		if !ok || rec.CountryCode != c.Code {
			t.Fatalf("country %s: minted %v resolved to %+v ok=%v", c.Code, addr, rec, ok)
		}
	}
}

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func netipAddrZero() netip.Addr { return netip.Addr{} }
