package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	c.Inc("US")
	c.Inc("US")
	c.Add("RU", 5)
	c.Add("DE", 1)
	if c.Get("US") != 2 || c.Get("RU") != 5 || c.Get("??") != 0 {
		t.Fatal("Get wrong")
	}
	if c.Total() != 8 || c.Len() != 3 {
		t.Fatalf("Total=%d Len=%d", c.Total(), c.Len())
	}
	top := c.Top(2)
	if len(top) != 2 || top[0].Key != "RU" || top[1].Key != "US" {
		t.Fatalf("Top = %v", top)
	}
	all := c.Top(0)
	if len(all) != 3 {
		t.Fatalf("Top(0) = %v", all)
	}
	shares := c.CumulativeShare(top)
	if math.Abs(shares[0]-62.5) > 0.01 || math.Abs(shares[1]-87.5) > 0.01 {
		t.Fatalf("shares = %v", shares)
	}
}

func TestCounterTopDeterministicTies(t *testing.T) {
	c := NewCounter()
	for _, k := range []string{"b", "a", "c"} {
		c.Add(k, 7)
	}
	top := c.Top(3)
	if top[0].Key != "a" || top[1].Key != "b" || top[2].Key != "c" {
		t.Fatalf("tie order not lexicographic: %v", top)
	}
}

func TestIntHistogram(t *testing.T) {
	h := NewIntHistogram()
	for _, v := range []int{1, 1, 1, 2, 2, 5, 16} {
		h.Observe(v)
	}
	if h.Total() != 7 || h.Count(1) != 3 || h.Count(3) != 0 {
		t.Fatal("counts wrong")
	}
	if h.CountAtLeast(2) != 4 {
		t.Fatalf("CountAtLeast(2) = %d", h.CountAtLeast(2))
	}
	if math.Abs(h.Share(1)-3.0/7*100) > 1e-9 {
		t.Fatalf("Share(1) = %v", h.Share(1))
	}
	if math.Abs(h.ShareAtLeast(5)-2.0/7*100) > 1e-9 {
		t.Fatalf("ShareAtLeast(5) = %v", h.ShareAtLeast(5))
	}
	if h.Max() != 16 {
		t.Fatalf("Max = %d", h.Max())
	}
	vals := h.Values()
	if len(vals) != 4 || vals[0] != 1 || vals[3] != 16 {
		t.Fatalf("Values = %v", vals)
	}
	empty := NewIntHistogram()
	if empty.Share(1) != 0 || empty.ShareAtLeast(1) != 0 || empty.Max() != 0 {
		t.Fatal("empty histogram accessors wrong")
	}
}

func TestSampleStatistics(t *testing.T) {
	s := NewSample()
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Stddev() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty sample accessors should be zero")
	}
	s.AddAll([]float64{4, 2, 8, 6})
	if s.Len() != 4 || s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Fatal("min/max wrong")
	}
	if got := s.Median(); got != 5 {
		t.Fatalf("median = %v", got)
	}
	if got := s.Quantile(0); got != 2 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 8 {
		t.Fatalf("q1 = %v", got)
	}
	// stddev of {2,4,6,8} = sqrt(5)
	if math.Abs(s.Stddev()-math.Sqrt(5)) > 1e-12 {
		t.Fatalf("stddev = %v", s.Stddev())
	}
	// Adding after quantile must keep working (re-sort path).
	s.Add(10)
	if s.Max() != 10 {
		t.Fatal("Add after Quantile broken")
	}
	if s.Quantile(1) != 10 {
		t.Fatal("re-sort after Add broken")
	}
}

func TestSampleQuantileMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		s := NewSample()
		ok := true
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				s.Add(x)
				ok = ok && true
			}
		}
		if s.Len() == 0 {
			return true
		}
		q1 := s.Quantile(0.25)
		q2 := s.Quantile(0.5)
		q3 := s.Quantile(0.75)
		return q1 <= q2 && q2 <= q3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "x"}
	s.Append(1, 10)
	s.Append(2, 30)
	s.Append(3, 20)
	if s.Len() != 3 {
		t.Fatal("len wrong")
	}
	if y, ok := s.YAt(2); !ok || y != 30 {
		t.Fatal("YAt wrong")
	}
	if _, ok := s.YAt(9); ok {
		t.Fatal("YAt found missing x")
	}
	if s.MaxY() != 30 || s.MinY() != 10 {
		t.Fatalf("MaxY=%v MinY=%v", s.MaxY(), s.MinY())
	}
	var empty Series
	if empty.MaxY() != 0 || empty.MinY() != 0 {
		t.Fatal("empty series extrema wrong")
	}
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{Title: "Test Figure", XLabel: "day", YLabel: "peers"}
	a := fig.AddSeries("alpha")
	b := fig.AddSeries("beta")
	a.Append(1, 100)
	a.Append(2, 200)
	b.Append(2, 250)
	out := fig.Render()
	if !strings.Contains(out, "Test Figure") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Fatal("series names missing")
	}
	// Missing points render as "-".
	if !strings.Contains(out, "-") {
		t.Fatal("gap marker missing")
	}
	if fig.FindSeries("alpha") != a || fig.FindSeries("nope") != nil {
		t.Fatal("FindSeries wrong")
	}
	emptyFig := &Figure{Title: "empty"}
	if !strings.Contains(emptyFig.Render(), "empty") {
		t.Fatal("empty figure render")
	}
}

func TestRenderTable(t *testing.T) {
	out := RenderTable([][]string{
		{"name", "count"},
		{"alpha", "10"},
		{"beta-long", "2"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Header underline matches the total width.
	if len(lines[1]) < len("name  count") {
		t.Fatal("underline too short")
	}
	if RenderTable(nil) != "" {
		t.Fatal("empty table should render empty")
	}
	// Ragged rows must not panic.
	_ = RenderTable([][]string{{"a"}, {"b", "c", "d"}})
}

func TestPercentAndRatio(t *testing.T) {
	if Percent(1, 4) != "25.00%" {
		t.Fatalf("Percent = %s", Percent(1, 4))
	}
	if Percent(1, 0) != "0.00%" {
		t.Fatal("zero denominator")
	}
	if Ratio(3, 4) != 0.75 || Ratio(1, 0) != 0 {
		t.Fatal("Ratio wrong")
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(3) != "3" {
		t.Fatalf("trimFloat(3) = %s", trimFloat(3))
	}
	if trimFloat(3.14159) != "3.14" {
		t.Fatalf("trimFloat(pi) = %s", trimFloat(3.14159))
	}
	if trimFloat(-2) != "-2" {
		t.Fatalf("trimFloat(-2) = %s", trimFloat(-2))
	}
}

func TestWriteCSV(t *testing.T) {
	fig := &Figure{Title: "t", XLabel: "day"}
	a := fig.AddSeries("alpha")
	b := fig.AddSeries("beta")
	a.Append(1, 10)
	a.Append(2, 20.5)
	b.Append(2, 30)
	var buf strings.Builder
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "day,alpha,beta\n1,10,\n2,20.5,30\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}
