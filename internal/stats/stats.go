// Package stats provides the small descriptive-statistics toolkit used by
// every experiment in the study: counters, histograms, empirical CDFs,
// quantiles and time series, plus plain-text rendering of tables and series
// in the layout of the paper's figures.
//
// All types are deterministic and allocation-conscious; none of them touch
// global state, so they are safe to use from benchmark loops.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter counts occurrences of string keys, preserving enough information
// to render top-N tables such as the paper's Figure 10 (countries) and
// Figure 11 (autonomous systems).
type Counter struct {
	counts map[string]int
	total  int
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int)}
}

// Add increments key by n. Negative n is allowed and decrements.
func (c *Counter) Add(key string, n int) {
	c.counts[key] += n
	c.total += n
}

// Inc increments key by one.
func (c *Counter) Inc(key string) { c.Add(key, 1) }

// Merge folds every entry of other into c. Counters merge commutatively,
// which lets sharded scans aggregate partial counts per worker and
// combine them afterwards.
func (c *Counter) Merge(other *Counter) {
	for k, v := range other.counts {
		c.Add(k, v)
	}
}

// Get returns the count for key (zero if absent).
func (c *Counter) Get(key string) int { return c.counts[key] }

// Total returns the sum of all counts.
func (c *Counter) Total() int { return c.total }

// Len returns the number of distinct keys.
func (c *Counter) Len() int { return len(c.counts) }

// KV is a key/count pair produced by Counter.Top.
type KV struct {
	Key   string
	Count int
}

// Top returns the n largest entries in descending count order. Ties are
// broken lexicographically so that output is deterministic. If n <= 0 or
// exceeds the number of keys, all entries are returned.
func (c *Counter) Top(n int) []KV {
	out := make([]KV, 0, len(c.counts))
	for k, v := range c.counts {
		out = append(out, KV{k, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// CumulativeShare returns, for the given ordered entries, the running share
// of Total() expressed in percent. It matches the right-hand axes of
// Figures 10 and 11.
func (c *Counter) CumulativeShare(entries []KV) []float64 {
	shares := make([]float64, len(entries))
	run := 0
	for i, e := range entries {
		run += e.Count
		if c.total > 0 {
			shares[i] = 100 * float64(run) / float64(c.total)
		}
	}
	return shares
}

// IntHistogram is a histogram over small non-negative integers (for example
// "number of IP addresses a peer was associated with", Figure 8, or
// "number of autonomous systems", Figure 12).
type IntHistogram struct {
	buckets map[int]int
	total   int
}

// NewIntHistogram returns an empty IntHistogram.
func NewIntHistogram() *IntHistogram {
	return &IntHistogram{buckets: make(map[int]int)}
}

// Observe records one observation of value v.
func (h *IntHistogram) Observe(v int) {
	h.buckets[v]++
	h.total++
}

// Count returns the number of observations equal to v.
func (h *IntHistogram) Count(v int) int { return h.buckets[v] }

// CountAtLeast returns the number of observations >= v.
func (h *IntHistogram) CountAtLeast(v int) int {
	n := 0
	for k, c := range h.buckets {
		if k >= v {
			n += c
		}
	}
	return n
}

// Total returns the number of observations.
func (h *IntHistogram) Total() int { return h.total }

// Share returns the percentage of observations equal to v.
func (h *IntHistogram) Share(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return 100 * float64(h.buckets[v]) / float64(h.total)
}

// ShareAtLeast returns the percentage of observations >= v.
func (h *IntHistogram) ShareAtLeast(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return 100 * float64(h.CountAtLeast(v)) / float64(h.total)
}

// Max returns the largest observed value, or zero when empty.
func (h *IntHistogram) Max() int {
	m := 0
	for k := range h.buckets {
		if k > m {
			m = k
		}
	}
	return m
}

// Values returns the observed values in ascending order.
func (h *IntHistogram) Values() []int {
	vs := make([]int, 0, len(h.buckets))
	for k := range h.buckets {
		vs = append(vs, k)
	}
	sort.Ints(vs)
	return vs
}

// Sample accumulates float64 observations for summary statistics
// (page-load times, per-day peer counts, and so on).
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns an empty Sample.
func NewSample() *Sample { return &Sample{} }

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddAll records every observation in xs.
func (s *Sample) AddAll(xs []float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

// Mean returns the arithmetic mean, or zero when empty.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Min returns the smallest observation, or zero when empty.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation, or zero when empty.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Stddev returns the population standard deviation, or zero when empty.
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between closest ranks. It returns zero when the sample is empty.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Series is a labelled sequence of (x, y) points — one line in one of the
// paper's figures.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the y value at the first point whose x equals the argument,
// and reports whether such a point exists.
func (s *Series) YAt(x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// MaxY returns the largest y value, or zero when empty.
func (s *Series) MaxY() float64 {
	m := 0.0
	for i, y := range s.Y {
		if i == 0 || y > m {
			m = y
		}
	}
	return m
}

// MinY returns the smallest y value, or zero when empty.
func (s *Series) MinY() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	m := s.Y[0]
	for _, y := range s.Y[1:] {
		if y < m {
			m = y
		}
	}
	return m
}

// Figure is a set of series sharing axes: the in-memory form of one of the
// paper's plots. Render produces a plain-text representation with the same
// rows the paper reports.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// AddSeries appends a new named series and returns it for population.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// FindSeries returns the series with the given name, or nil.
func (f *Figure) FindSeries(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Render writes the figure as an aligned text table: one row per x value,
// one column per series.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", f.Title)
	if len(f.Series) == 0 {
		return b.String()
	}
	// Collect the union of x values across series, in first-seen order of
	// the first series then any extras sorted ascending.
	seen := make(map[float64]bool)
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)

	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				row = append(row, trimFloat(y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	b.WriteString(RenderTable(rows))
	return b.String()
}

// RenderTable renders rows as an aligned plain-text table. The first row is
// treated as a header and underlined.
func RenderTable(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(rows[0])
	total := 0
	for i, w := range widths {
		if i > 0 {
			total += 2
		}
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range rows[1:] {
		writeRow(row)
	}
	return b.String()
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

// Percent formats a ratio num/den as a percentage with two decimals,
// returning "0.00%" when den is zero.
func Percent(num, den int) string {
	if den == 0 {
		return "0.00%"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(num)/float64(den))
}

// Ratio returns num/den as a float, or zero when den is zero.
func Ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
