package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// WriteCSV writes the figure as CSV: one row per x value, one column per
// series, with the x label as the first header column. Gaps (x values a
// series lacks) are empty cells.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	seen := make(map[float64]bool)
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		row := []string{formatCSVFloat(x)}
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				row = append(row, formatCSVFloat(y))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatCSVFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
