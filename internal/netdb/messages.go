package netdb

import (
	"bytes"
	"fmt"
)

// EntryType distinguishes the two kinds of netDb metadata (Section 2.1.2:
// "The netDb contains two types of network metadata: LeaseSets and
// RouterInfos").
type EntryType uint8

// Entry types carried in DatabaseStoreMessage.
const (
	EntryRouterInfo EntryType = 0
	EntryLeaseSet   EntryType = 1
)

func (t EntryType) String() string {
	switch t {
	case EntryRouterInfo:
		return "RouterInfo"
	case EntryLeaseSet:
		return "LeaseSet"
	default:
		return fmt.Sprintf("EntryType(%d)", uint8(t))
	}
}

// DatabaseStoreMessage (DSM) publishes a RouterInfo or LeaseSet to a
// floodfill router. "To publish his LeaseSets, Bob sends a
// DatabaseStoreMessage (DSM) to several floodfill routers" (Section 2.1.2).
// A non-zero ReplyToken requests a delivery confirmation, and the flooding
// mechanism forwards fresh entries to the three closest floodfills.
type DatabaseStoreMessage struct {
	// Key is the identity hash of the stored record (not the routing key;
	// receivers derive the routing key for the current UTC day).
	Key Hash
	// Type selects the payload interpretation.
	Type EntryType
	// Payload is the encoded RouterInfo or LeaseSet.
	Payload []byte
	// ReplyToken, when non-zero, asks the receiving floodfill to confirm.
	ReplyToken uint32
	// FromFlood marks entries forwarded by the flooding mechanism, which
	// must not be re-flooded (preventing amplification loops).
	FromFlood bool
}

// DatabaseLookupMessage (DLM) queries a floodfill for a record. "To query
// Bob's LeaseSet information, Alice sends a DatabaseLookupMessage (DLM) to
// those floodfill routers" (Section 2.1.2). Peers short on RouterInfos use
// the same message for exploratory lookups (Section 4.2).
type DatabaseLookupMessage struct {
	// Key is the identity hash being looked up.
	Key Hash
	// From is the requester, so replies can be routed back.
	From Hash
	// Type selects what kind of record the requester wants.
	Type EntryType
	// Exploratory marks a lookup whose goal is discovering more routers
	// rather than one specific record; floodfills answer with a
	// DatabaseSearchReply listing close peers.
	Exploratory bool
	// Exclude lists hashes the requester already knows, so the floodfill
	// can return fresh peers.
	Exclude []Hash
}

// DatabaseSearchReply answers a lookup that could not be satisfied
// directly, listing routers close to the requested key.
type DatabaseSearchReply struct {
	Key   Hash
	From  Hash
	Peers []Hash
}

// Message-type bytes on the wire.
const (
	msgTypeDSM = 1
	msgTypeDLM = 2
	msgTypeDSR = 3
)

var msgMagic = [4]byte{'I', '2', 'M', '1'}

// EncodeMessage serializes any of the three netDb messages into a framed
// byte slice. The concrete type is dispatched on a type byte.
func EncodeMessage(msg any) ([]byte, error) {
	var w wireWriter
	w.buf.Write(msgMagic[:])
	switch m := msg.(type) {
	case *DatabaseStoreMessage:
		w.u8(msgTypeDSM)
		w.hash(m.Key)
		w.u8(uint8(m.Type))
		w.u32(m.ReplyToken)
		flood := uint8(0)
		if m.FromFlood {
			flood = 1
		}
		w.u8(flood)
		w.u32(uint32(len(m.Payload)))
		w.buf.Write(m.Payload)
	case *DatabaseLookupMessage:
		w.u8(msgTypeDLM)
		w.hash(m.Key)
		w.hash(m.From)
		w.u8(uint8(m.Type))
		expl := uint8(0)
		if m.Exploratory {
			expl = 1
		}
		w.u8(expl)
		if len(m.Exclude) > 65535 {
			return nil, ErrFieldTooLong
		}
		w.u16(uint16(len(m.Exclude)))
		for _, h := range m.Exclude {
			w.hash(h)
		}
	case *DatabaseSearchReply:
		w.u8(msgTypeDSR)
		w.hash(m.Key)
		w.hash(m.From)
		if len(m.Peers) > 65535 {
			return nil, ErrFieldTooLong
		}
		w.u16(uint16(len(m.Peers)))
		for _, h := range m.Peers {
			w.hash(h)
		}
	default:
		return nil, fmt.Errorf("netdb: cannot encode message type %T", msg)
	}
	return w.buf.Bytes(), nil
}

// DecodeMessage parses a message produced by EncodeMessage and returns one
// of *DatabaseStoreMessage, *DatabaseLookupMessage or *DatabaseSearchReply.
func DecodeMessage(data []byte) (any, error) {
	r := &wireReader{b: data}
	if m := r.take(4); m == nil || !bytes.Equal(m, msgMagic[:]) {
		return nil, ErrBadMagic
	}
	switch t := r.u8(); t {
	case msgTypeDSM:
		m := &DatabaseStoreMessage{}
		m.Key = r.hash()
		m.Type = EntryType(r.u8())
		m.ReplyToken = r.u32()
		m.FromFlood = r.u8() == 1
		n := int(r.u32())
		if n > len(data) {
			return nil, ErrTruncated
		}
		p := r.take(n)
		if r.err != nil {
			return nil, r.err
		}
		m.Payload = append([]byte(nil), p...)
		return m, finish(r)
	case msgTypeDLM:
		m := &DatabaseLookupMessage{}
		m.Key = r.hash()
		m.From = r.hash()
		m.Type = EntryType(r.u8())
		m.Exploratory = r.u8() == 1
		n := int(r.u16())
		for i := 0; i < n && r.err == nil; i++ {
			m.Exclude = append(m.Exclude, r.hash())
		}
		if r.err != nil {
			return nil, r.err
		}
		return m, finish(r)
	case msgTypeDSR:
		m := &DatabaseSearchReply{}
		m.Key = r.hash()
		m.From = r.hash()
		n := int(r.u16())
		for i := 0; i < n && r.err == nil; i++ {
			m.Peers = append(m.Peers, r.hash())
		}
		if r.err != nil {
			return nil, r.err
		}
		return m, finish(r)
	default:
		return nil, fmt.Errorf("netdb: unknown message type %d", t)
	}
}

func finish(r *wireReader) error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("netdb: %d trailing bytes after message", len(r.b)-r.off)
	}
	return nil
}
