package netdb

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"time"
)

// Lease grants access to one inbound tunnel of a destination: the gateway
// router of the tunnel, the tunnel ID at that gateway, and when the tunnel
// expires. "Bob's LeaseSet tells Alice the contact information of the
// tunnel gateway of Bob's inbound tunnel" (Section 2.1.2).
type Lease struct {
	Gateway  Hash
	TunnelID uint32
	Expires  time.Time
}

// LeaseSet is the netDb record for a hidden-service destination (for
// example an eepsite): the set of inbound-tunnel leases through which the
// destination can currently be reached.
type LeaseSet struct {
	// Destination is the service's identity hash.
	Destination Hash
	// Published is when the destination last stored this record.
	Published time.Time
	// Leases lists the currently valid inbound tunnel gateways.
	Leases []Lease
}

// Expired reports whether every lease has expired at time t. An expired
// LeaseSet is useless for reaching the destination and floodfills drop it.
func (ls *LeaseSet) Expired(t time.Time) bool {
	for _, l := range ls.Leases {
		if l.Expires.After(t) {
			return false
		}
	}
	return true
}

// Latest returns the latest lease expiry, or the zero time when the set is
// empty.
func (ls *LeaseSet) Latest() time.Time {
	var latest time.Time
	for _, l := range ls.Leases {
		if l.Expires.After(latest) {
			latest = l.Expires
		}
	}
	return latest
}

// Clone returns a deep copy.
func (ls *LeaseSet) Clone() *LeaseSet {
	out := *ls
	out.Leases = append([]Lease(nil), ls.Leases...)
	return &out
}

var lsMagic = [4]byte{'L', 'S', '0', '1'}

// Encode serializes the LeaseSet with an integrity tag, mirroring
// RouterInfo.Encode.
func (ls *LeaseSet) Encode() ([]byte, error) {
	var w wireWriter
	w.buf.Write(lsMagic[:])
	w.hash(ls.Destination)
	w.timeMilli(ls.Published)
	if len(ls.Leases) > 255 {
		return nil, ErrFieldTooLong
	}
	w.u8(uint8(len(ls.Leases)))
	for _, l := range ls.Leases {
		w.hash(l.Gateway)
		w.u32(l.TunnelID)
		w.timeMilli(l.Expires)
	}
	payload := w.buf.Bytes()
	tag := sha256.Sum256(payload)
	return append(payload, tag[:]...), nil
}

// DecodeLeaseSet parses a record produced by Encode, verifying the
// integrity tag.
func DecodeLeaseSet(data []byte) (*LeaseSet, error) {
	if len(data) < len(lsMagic)+HashSize {
		return nil, ErrTruncated
	}
	body, tag := data[:len(data)-HashSize], data[len(data)-HashSize:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], tag) {
		return nil, ErrBadChecksum
	}
	r := &wireReader{b: body}
	if m := r.take(4); m == nil || !bytes.Equal(m, lsMagic[:]) {
		return nil, ErrBadMagic
	}
	ls := &LeaseSet{}
	ls.Destination = r.hash()
	ls.Published = r.timeMilli()
	n := int(r.u8())
	for i := 0; i < n && r.err == nil; i++ {
		var l Lease
		l.Gateway = r.hash()
		l.TunnelID = r.u32()
		l.Expires = r.timeMilli()
		ls.Leases = append(ls.Leases, l)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("netdb: %d trailing bytes after LeaseSet", len(body)-r.off)
	}
	if ls.Destination.IsZero() {
		return nil, ErrBadHash
	}
	return ls, nil
}
