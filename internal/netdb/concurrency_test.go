package netdb

import (
	"sync"
	"testing"
	"time"
)

// TestStoreConcurrentAccess hammers the store from many goroutines; run
// with -race to validate the locking discipline.
func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore(true)
	now := time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)
	const writers = 8
	const perWriter = 200

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := uint64(w*perWriter + i)
				s.PutRouterInfo(riAt(id, now.Add(time.Duration(i)*time.Second), w%2 == 0), now)
				if i%10 == 0 {
					s.Expire(now.Add(30 * time.Minute))
				}
			}
		}(w)
	}
	// Concurrent readers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = s.RouterCount()
				_ = s.RouterHashes()
				_ = s.ClosestRouters(HashFromUint64(uint64(i)), 4, now)
				_ = s.RouterInfo(HashFromUint64(uint64(i)))
			}
		}()
	}
	wg.Wait()
	if s.RouterCount() != writers*perWriter {
		t.Fatalf("count = %d, want %d", s.RouterCount(), writers*perWriter)
	}
}

// TestStorePutConcurrentSameKey: concurrent writers to one identity must
// settle on the freshest record.
func TestStorePutConcurrentSameKey(t *testing.T) {
	s := NewStore(false)
	now := time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.PutRouterInfo(riAt(1, now.Add(time.Duration(i)*time.Minute), false), now)
		}(i)
	}
	wg.Wait()
	got := s.RouterInfo(HashFromUint64(1))
	if got == nil {
		t.Fatal("record missing")
	}
	want := now.Add(time.Duration(n-1) * time.Minute)
	if !got.Published.Equal(want) {
		t.Fatalf("published = %v, want freshest %v", got.Published, want)
	}
}
