package netdb

import (
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func riAt(id uint64, published time.Time, floodfill bool) *RouterInfo {
	return &RouterInfo{
		Identity:  HashFromUint64(id),
		Published: published,
		Caps:      NewCaps(200, floodfill, true),
		Version:   "0.9.34",
		Addresses: []RouterAddress{{
			Transport: TransportNTCP,
			Addr:      netip.AddrFrom4([4]byte{10, byte(id >> 8), byte(id), 1}),
			Port:      12345,
		}},
	}
}

func TestStorePutSemantics(t *testing.T) {
	now := time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)
	s := NewStore(false)

	ri := riAt(1, now, false)
	if got := s.PutRouterInfo(ri, now); got != StoreNew {
		t.Fatalf("first put = %v, want StoreNew", got)
	}
	older := riAt(1, now.Add(-time.Hour), false)
	if got := s.PutRouterInfo(older, now); got != StoreStale {
		t.Fatalf("older put = %v, want StoreStale", got)
	}
	if s.RouterInfo(ri.Identity).Published != now {
		t.Fatal("stale put replaced fresher record")
	}
	newer := riAt(1, now.Add(time.Hour), false)
	if got := s.PutRouterInfo(newer, now); got != StoreFresher {
		t.Fatalf("newer put = %v, want StoreFresher", got)
	}
	if s.RouterCount() != 1 {
		t.Fatalf("RouterCount = %d, want 1", s.RouterCount())
	}
}

func TestStoreFloodfillExpiry(t *testing.T) {
	start := time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)
	ff := NewStore(true)
	if !ff.Floodfill() {
		t.Fatal("Floodfill() should be true")
	}
	ff.PutRouterInfo(riAt(1, start, false), start)
	ff.PutRouterInfo(riAt(2, start, false), start.Add(50*time.Minute))

	// 61 minutes in: the first record is past the one-hour floodfill
	// expiry, the second is not.
	removed := ff.Expire(start.Add(61 * time.Minute))
	if removed != 1 {
		t.Fatalf("Expire removed %d, want 1", removed)
	}
	if ff.HasRouter(HashFromUint64(1)) {
		t.Fatal("expired record still present")
	}
	if !ff.HasRouter(HashFromUint64(2)) {
		t.Fatal("live record expired")
	}
}

func TestStoreStaleRefreshKeepsRecordAlive(t *testing.T) {
	start := time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)
	ff := NewStore(true)
	ff.PutRouterInfo(riAt(1, start, false), start)
	// The same record is re-announced at +50 min; even though the payload
	// is stale, the store time refreshes, so at +70 min it must survive.
	ff.PutRouterInfo(riAt(1, start, false), start.Add(50*time.Minute))
	if n := ff.Expire(start.Add(70 * time.Minute)); n != 0 {
		t.Fatalf("Expire removed %d, want 0", n)
	}
}

func TestStoreNonFloodfillExpiry(t *testing.T) {
	start := time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)
	s := NewStore(false)
	s.PutRouterInfo(riAt(1, start, false), start)
	if n := s.Expire(start.Add(23 * time.Hour)); n != 0 {
		t.Fatalf("non-floodfill store expired after 23h: %d", n)
	}
	if n := s.Expire(start.Add(25 * time.Hour)); n != 1 {
		t.Fatalf("non-floodfill store did not expire after 25h: %d", n)
	}
}

func TestStoreLeaseSets(t *testing.T) {
	now := time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)
	s := NewStore(true)
	ls := &LeaseSet{
		Destination: HashFromUint64(9),
		Published:   now,
		Leases:      []Lease{{Gateway: HashFromUint64(1), TunnelID: 1, Expires: now.Add(10 * time.Minute)}},
	}
	if got := s.PutLeaseSet(ls, now); got != StoreNew {
		t.Fatalf("put = %v", got)
	}
	if got := s.PutLeaseSet(ls.Clone(), now); got != StoreStale {
		t.Fatalf("duplicate put = %v", got)
	}
	fresh := ls.Clone()
	fresh.Published = now.Add(time.Minute)
	if got := s.PutLeaseSet(fresh, now); got != StoreFresher {
		t.Fatalf("fresher put = %v", got)
	}
	if s.LeaseSet(ls.Destination) == nil || s.LeaseSetCount() != 1 {
		t.Fatal("lease set lookup failed")
	}
	s.Expire(now.Add(time.Hour))
	if s.LeaseSetCount() != 0 {
		t.Fatal("expired lease set kept")
	}
}

func TestStoreClear(t *testing.T) {
	now := time.Now().UTC()
	s := NewStore(false)
	for i := uint64(0); i < 10; i++ {
		s.PutRouterInfo(riAt(i, now, false), now)
	}
	s.Clear()
	if s.RouterCount() != 0 {
		t.Fatal("Clear left records behind")
	}
}

func TestStoreClosestFloodfills(t *testing.T) {
	now := time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)
	s := NewStore(false)
	ffCount := 0
	for i := uint64(1); i <= 100; i++ {
		isFF := i%5 == 0
		if isFF {
			ffCount++
		}
		s.PutRouterInfo(riAt(i, now, isFF), now)
	}
	got := s.ClosestFloodfills(HashFromUint64(7777), 8, now)
	if len(got) != 8 {
		t.Fatalf("got %d floodfills, want 8", len(got))
	}
	for _, h := range got {
		ri := s.RouterInfo(h)
		if ri == nil || !ri.Caps.Floodfill {
			t.Fatalf("non-floodfill %s in floodfill selection", h.Short())
		}
	}
	all := s.ClosestRouters(HashFromUint64(7777), s.RouterCount(), now)
	if len(all) != 100 {
		t.Fatalf("ClosestRouters returned %d, want 100", len(all))
	}
}

func TestStoreSaveLoadDir(t *testing.T) {
	now := time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)
	dir := filepath.Join(t.TempDir(), "netDb")
	s := NewStore(false)
	for i := uint64(1); i <= 25; i++ {
		s.PutRouterInfo(riAt(i, now, i%2 == 0), now)
	}
	if err := s.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded := NewStore(false)
	n, err := loaded.LoadDir(dir, now)
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 || loaded.RouterCount() != 25 {
		t.Fatalf("loaded %d records, count %d, want 25", n, loaded.RouterCount())
	}
	for i := uint64(1); i <= 25; i++ {
		h := HashFromUint64(i)
		got := loaded.RouterInfo(h)
		if got == nil {
			t.Fatalf("record %d missing after reload", i)
		}
		if got.Caps != s.RouterInfo(h).Caps {
			t.Fatalf("record %d caps mismatch after reload", i)
		}
	}
}

func TestStoreLoadDirSkipsCorrupt(t *testing.T) {
	now := time.Now().UTC()
	dir := t.TempDir()
	s := NewStore(false)
	s.PutRouterInfo(riAt(1, now, false), now)
	if err := s.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	// Drop a corrupt file alongside.
	bad := filepath.Join(dir, RouterInfoFileName(HashFromUint64(2)))
	if err := writeFile(bad, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	loaded := NewStore(false)
	n, err := loaded.LoadDir(dir, now)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("loaded %d, want 1 (corrupt file skipped)", n)
	}
}

func TestStoreLoadDirMissing(t *testing.T) {
	s := NewStore(false)
	if _, err := s.LoadDir(filepath.Join(t.TempDir(), "nope"), time.Now()); err == nil {
		t.Fatal("missing directory should error")
	}
}

func writeFile(name string, data []byte) error {
	return os.WriteFile(name, data, 0o644)
}
