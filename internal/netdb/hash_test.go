package netdb

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHashStringRoundTrip(t *testing.T) {
	h := HashFromUint64(42)
	s := h.String()
	got, err := ParseHash(s)
	if err != nil {
		t.Fatalf("ParseHash(%q): %v", s, err)
	}
	if got != h {
		t.Fatalf("round trip mismatch: got %v want %v", got, h)
	}
}

func TestHashStringUsesI2PAlphabet(t *testing.T) {
	// I2P base64 must never contain '+' or '/'.
	for i := uint64(0); i < 500; i++ {
		s := HashFromUint64(i).String()
		for _, r := range s {
			if r == '+' || r == '/' {
				t.Fatalf("hash %d encodes with standard base64 rune %q: %s", i, r, s)
			}
		}
	}
}

func TestParseHashErrors(t *testing.T) {
	cases := []string{"", "!!!!", "AAAA", "not base64 at all %%"}
	for _, c := range cases {
		if _, err := ParseHash(c); err == nil {
			t.Errorf("ParseHash(%q): expected error", c)
		}
	}
}

func TestHashFromUint64Distinct(t *testing.T) {
	seen := make(map[Hash]uint64)
	for i := uint64(0); i < 10000; i++ {
		h := HashFromUint64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision between %d and %d", prev, i)
		}
		seen[h] = i
	}
}

func TestXORProperties(t *testing.T) {
	// x XOR x == 0; XOR is commutative; XOR with zero is identity.
	f := func(a, b [HashSize]byte) bool {
		ha, hb := Hash(a), Hash(b)
		if !ha.XOR(ha).IsZero() {
			return false
		}
		if ha.XOR(hb) != hb.XOR(ha) {
			return false
		}
		var zero Hash
		return ha.XOR(zero) == ha
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceLessTriangleish(t *testing.T) {
	// d(t,a) < d(t,b) and d(t,b) < d(t,c) implies d(t,a) < d(t,c):
	// strict ordering is transitive.
	f := func(tg, a, b, c [HashSize]byte) bool {
		target, ha, hb, hc := Hash(tg), Hash(a), Hash(b), Hash(c)
		if DistanceLess(target, ha, hb) && DistanceLess(target, hb, hc) {
			return DistanceLess(target, ha, hc)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceLessSelf(t *testing.T) {
	a := HashFromUint64(1)
	if DistanceLess(a, a, a) {
		t.Fatal("a is not strictly closer to itself than itself")
	}
	b := HashFromUint64(2)
	// a is at distance zero from itself; any distinct b is farther.
	if !DistanceLess(a, a, b) {
		t.Fatal("self must be closest to self")
	}
}

func TestLeadingZeros(t *testing.T) {
	var h Hash
	if got := h.LeadingZeros(); got != 256 {
		t.Fatalf("zero hash leading zeros = %d, want 256", got)
	}
	h[0] = 0x80
	if got := h.LeadingZeros(); got != 0 {
		t.Fatalf("0x80... leading zeros = %d, want 0", got)
	}
	h[0] = 0x01
	if got := h.LeadingZeros(); got != 7 {
		t.Fatalf("0x01... leading zeros = %d, want 7", got)
	}
	h[0] = 0
	h[1] = 0x40
	if got := h.LeadingZeros(); got != 9 {
		t.Fatalf("0x00 0x40... leading zeros = %d, want 9", got)
	}
}

func TestRoutingKeyRotatesDaily(t *testing.T) {
	h := HashFromUint64(7)
	day1 := time.Date(2018, 2, 1, 12, 0, 0, 0, time.UTC)
	day1later := time.Date(2018, 2, 1, 23, 59, 59, 0, time.UTC)
	day2 := time.Date(2018, 2, 2, 0, 0, 1, 0, time.UTC)

	k1 := h.RoutingKey(day1)
	k1b := h.RoutingKey(day1later)
	k2 := h.RoutingKey(day2)

	if k1 != k1b {
		t.Fatal("routing key changed within the same UTC day")
	}
	if k1 == k2 {
		t.Fatal("routing key did not rotate at UTC midnight")
	}
	if k1 == h || k2 == h {
		t.Fatal("routing key equals identity hash")
	}
}

func TestRoutingKeyUsesUTC(t *testing.T) {
	h := HashFromUint64(9)
	// 2018-02-01 23:30 UTC vs the same instant expressed in UTC+5 — the
	// routing key must be identical because it is derived from UTC.
	utc := time.Date(2018, 2, 1, 23, 30, 0, 0, time.UTC)
	east := utc.In(time.FixedZone("UTC+5", 5*3600))
	if h.RoutingKey(utc) != h.RoutingKey(east) {
		t.Fatal("routing key differs across representations of the same instant")
	}
}

func TestHashLessIsStrictWeakOrder(t *testing.T) {
	f := func(a, b [HashSize]byte) bool {
		ha, hb := Hash(a), Hash(b)
		if ha == hb {
			return !ha.Less(hb) && !hb.Less(ha)
		}
		return ha.Less(hb) != hb.Less(ha)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShortAndIsZero(t *testing.T) {
	var zero Hash
	if !zero.IsZero() {
		t.Fatal("zero hash should report IsZero")
	}
	h := HashFromUint64(3)
	if h.IsZero() {
		t.Fatal("non-zero hash reports IsZero")
	}
	if len(h.Short()) != 8 {
		t.Fatalf("Short() length = %d, want 8", len(h.Short()))
	}
}

func TestB32RoundTrip(t *testing.T) {
	for i := uint64(0); i < 200; i++ {
		h := HashFromUint64(i)
		addr := h.B32()
		if !strings.HasSuffix(addr, B32Suffix) {
			t.Fatalf("address %q lacks suffix", addr)
		}
		if addr != strings.ToLower(addr) {
			t.Fatalf("address %q not lowercase", addr)
		}
		got, err := ParseB32(addr)
		if err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Fatal("b32 round trip mismatch")
		}
	}
}

func TestParseB32Errors(t *testing.T) {
	cases := []string{
		"",
		"example.i2p",
		"tooshort.b32.i2p",
		strings.Repeat("a", 56) + ".b32.i2p", // decodes to 35 bytes, not 32
		"!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!" + B32Suffix,
	}
	for _, c := range cases {
		if _, err := ParseB32(c); err == nil {
			t.Errorf("ParseB32(%q) accepted", c)
		}
	}
}
