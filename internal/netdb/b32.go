package netdb

import (
	"encoding/base32"
	"fmt"
	"strings"
)

// I2P's .b32.i2p addresses are the lowercase, unpadded base32 encoding of
// a destination hash followed by the ".b32.i2p" suffix. Eepsite
// destinations (the records Gao et al. crawled in the related work the
// paper cites) are usually shared in this form.

// B32Suffix is the address suffix of base32 destination names.
const B32Suffix = ".b32.i2p"

var b32Encoding = base32.StdEncoding.WithPadding(base32.NoPadding)

// B32 returns the .b32.i2p address for the hash.
func (h Hash) B32() string {
	return strings.ToLower(b32Encoding.EncodeToString(h[:])) + B32Suffix
}

// ParseB32 decodes a .b32.i2p address back into a destination hash.
func ParseB32(addr string) (Hash, error) {
	var h Hash
	if !strings.HasSuffix(addr, B32Suffix) {
		return h, fmt.Errorf("netdb: %q is not a %s address", addr, B32Suffix)
	}
	enc := strings.ToUpper(strings.TrimSuffix(addr, B32Suffix))
	raw, err := b32Encoding.DecodeString(enc)
	if err != nil {
		return h, fmt.Errorf("netdb: parse b32 address: %w", err)
	}
	if len(raw) != HashSize {
		return h, fmt.Errorf("netdb: b32 address decodes to %d bytes, want %d", len(raw), HashSize)
	}
	copy(h[:], raw)
	return h, nil
}
