package netdb

import (
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func sampleRouterInfo() *RouterInfo {
	return &RouterInfo{
		Identity:  HashFromUint64(100),
		Published: time.Date(2018, 2, 3, 4, 5, 6, 0, time.UTC),
		Caps:      NewCaps(200, true, true),
		Version:   "0.9.34",
		Addresses: []RouterAddress{
			{
				Transport: TransportNTCP,
				Cost:      10,
				Addr:      netip.MustParseAddr("203.0.113.7"),
				Port:      12345,
			},
			{
				Transport: TransportSSU,
				Cost:      5,
				Addr:      netip.MustParseAddr("2001:db8::7"),
				Port:      23456,
			},
		},
		Options: map[string]string{"netdb.knownRouters": "1234"},
	}
}

func sampleFirewalledRouterInfo() *RouterInfo {
	return &RouterInfo{
		Identity:  HashFromUint64(101),
		Published: time.Date(2018, 2, 3, 4, 5, 6, 0, time.UTC),
		Caps:      NewCaps(20, false, false),
		Version:   "0.9.33",
		Addresses: []RouterAddress{
			{
				Transport: TransportSSU,
				Cost:      5,
				Introducers: []Introducer{
					{
						Hash: HashFromUint64(55),
						Tag:  99,
						Addr: netip.MustParseAddr("198.51.100.9"),
						Port: 9999,
					},
				},
			},
		},
	}
}

func TestRouterInfoRoundTrip(t *testing.T) {
	for _, ri := range []*RouterInfo{sampleRouterInfo(), sampleFirewalledRouterInfo()} {
		data, err := ri.Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		got, err := DecodeRouterInfo(data)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !reflect.DeepEqual(got, ri) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ri)
		}
	}
}

func TestRouterInfoDecodeRejectsCorruption(t *testing.T) {
	ri := sampleRouterInfo()
	data, err := ri.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte anywhere in the body: the integrity tag must catch it.
	for _, pos := range []int{0, 5, 40, len(data) / 2, len(data) - HashSize - 1} {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0xFF
		if _, err := DecodeRouterInfo(bad); err == nil {
			t.Errorf("corruption at byte %d not detected", pos)
		}
	}
	// Truncation.
	for _, n := range []int{0, 3, 10, len(data) - 1} {
		if _, err := DecodeRouterInfo(data[:n]); err == nil {
			t.Errorf("truncation to %d bytes not detected", n)
		}
	}
}

func TestRouterInfoClassification(t *testing.T) {
	known := sampleRouterInfo()
	if !known.HasKnownIP() || known.UnknownIP() || known.Firewalled() || known.HiddenPeer() {
		t.Fatal("known-IP peer misclassified")
	}
	if !known.HasIPv4() || !known.HasIPv6() {
		t.Fatal("dual-stack peer should report both IPv4 and IPv6")
	}

	fw := sampleFirewalledRouterInfo()
	if fw.HasKnownIP() || !fw.UnknownIP() {
		t.Fatal("firewalled peer should be unknown-IP")
	}
	if !fw.Firewalled() {
		t.Fatal("peer with introducers should classify as firewalled")
	}
	if fw.HiddenPeer() {
		t.Fatal("firewalled peer should not classify as hidden")
	}

	hidden := &RouterInfo{
		Identity:  HashFromUint64(102),
		Published: time.Now().UTC(),
		Caps:      NewCaps(20, false, false),
	}
	if !hidden.HiddenPeer() || hidden.Firewalled() {
		t.Fatal("address-less peer should classify as hidden")
	}

	// A peer flagged H is hidden even with an address published (status
	// changing between firewalled and hidden is the Figure 6 overlap).
	flagged := sampleFirewalledRouterInfo()
	flagged.Caps.Hidden = true
	if !flagged.HiddenPeer() || !flagged.Firewalled() {
		t.Fatal("H-flagged firewalled peer should be in both groups")
	}
}

func TestRouterInfoClone(t *testing.T) {
	ri := sampleFirewalledRouterInfo()
	ri.Options = map[string]string{"a": "b"}
	c := ri.Clone()
	c.Addresses[0].Introducers[0].Tag = 1
	c.Options["a"] = "z"
	if ri.Addresses[0].Introducers[0].Tag == 1 {
		t.Fatal("Clone shares introducer slice")
	}
	if ri.Options["a"] == "z" {
		t.Fatal("Clone shares options map")
	}
}

func TestLeaseSetRoundTrip(t *testing.T) {
	ls := &LeaseSet{
		Destination: HashFromUint64(200),
		Published:   time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC),
		Leases: []Lease{
			{Gateway: HashFromUint64(1), TunnelID: 42, Expires: time.Date(2018, 3, 1, 0, 10, 0, 0, time.UTC)},
			{Gateway: HashFromUint64(2), TunnelID: 43, Expires: time.Date(2018, 3, 1, 0, 11, 0, 0, time.UTC)},
		},
	}
	data, err := ls.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLeaseSet(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ls) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ls)
	}
}

func TestLeaseSetExpiry(t *testing.T) {
	now := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	ls := &LeaseSet{
		Destination: HashFromUint64(200),
		Leases: []Lease{
			{Gateway: HashFromUint64(1), Expires: now.Add(5 * time.Minute)},
			{Gateway: HashFromUint64(2), Expires: now.Add(10 * time.Minute)},
		},
	}
	if ls.Expired(now) {
		t.Fatal("live lease set reported expired")
	}
	if !ls.Expired(now.Add(11 * time.Minute)) {
		t.Fatal("expired lease set reported live")
	}
	if got := ls.Latest(); !got.Equal(now.Add(10 * time.Minute)) {
		t.Fatalf("Latest = %v", got)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	riData, err := sampleRouterInfo().Encode()
	if err != nil {
		t.Fatal(err)
	}
	msgs := []any{
		&DatabaseStoreMessage{
			Key:        HashFromUint64(1),
			Type:       EntryRouterInfo,
			Payload:    riData,
			ReplyToken: 777,
			FromFlood:  true,
		},
		&DatabaseLookupMessage{
			Key:         HashFromUint64(2),
			From:        HashFromUint64(3),
			Type:        EntryLeaseSet,
			Exploratory: true,
			Exclude:     []Hash{HashFromUint64(4), HashFromUint64(5)},
		},
		&DatabaseSearchReply{
			Key:   HashFromUint64(6),
			From:  HashFromUint64(7),
			Peers: []Hash{HashFromUint64(8)},
		},
	}
	for _, m := range msgs {
		data, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		got, err := DecodeMessage(data)
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip mismatch for %T:\n got %+v\nwant %+v", m, got, m)
		}
	}
}

func TestDecodeMessageErrors(t *testing.T) {
	if _, err := DecodeMessage(nil); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := DecodeMessage([]byte("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	// Unknown type byte.
	bad := append([]byte{'I', '2', 'M', '1'}, 99)
	if _, err := DecodeMessage(bad); err == nil {
		t.Error("unknown message type accepted")
	}
	// Valid message with trailing garbage.
	data, err := EncodeMessage(&DatabaseSearchReply{Key: HashFromUint64(1), From: HashFromUint64(2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMessage(append(data, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestEncodeMessageRejectsUnknown(t *testing.T) {
	if _, err := EncodeMessage(struct{}{}); err == nil {
		t.Fatal("unknown message type accepted")
	}
}

// TestRouterInfoQuickRoundTrip drives the codec with generated identities,
// ports and flag combinations.
func TestRouterInfoQuickRoundTrip(t *testing.T) {
	f := func(id uint64, rate uint16, port uint16, ff, reach bool, hasV4, hasV6 bool) bool {
		ri := &RouterInfo{
			Identity:  HashFromUint64(id),
			Published: time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(id%1000) * time.Minute),
			Caps:      NewCaps(int(rate), ff, reach),
			Version:   "0.9.34",
		}
		if hasV4 {
			ri.Addresses = append(ri.Addresses, RouterAddress{
				Transport: TransportNTCP,
				Addr:      netip.AddrFrom4([4]byte{10, byte(id >> 8), byte(id), 1}),
				Port:      port,
			})
		}
		if hasV6 {
			var a16 [16]byte
			a16[0] = 0x20
			a16[1] = 0x01
			a16[15] = byte(id)
			ri.Addresses = append(ri.Addresses, RouterAddress{
				Transport: TransportSSU,
				Addr:      netip.AddrFrom16(a16),
				Port:      port,
			})
		}
		data, err := ri.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeRouterInfo(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, ri)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
