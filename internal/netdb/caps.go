package netdb

import (
	"fmt"
	"strings"
)

// BandwidthClass is the single-letter shared-bandwidth tier a router
// advertises in its capacity flags. The thresholds follow the paper's
// Section 5.3.1 exactly:
//
//	K  < 12 KB/s
//	L  12–48 KB/s (the software default)
//	M  48–64 KB/s
//	N  64–128 KB/s
//	O  128–256 KB/s
//	P  256–2000 KB/s
//	X  > 2000 KB/s
type BandwidthClass byte

// Bandwidth classes in ascending capacity order.
const (
	ClassK BandwidthClass = 'K'
	ClassL BandwidthClass = 'L'
	ClassM BandwidthClass = 'M'
	ClassN BandwidthClass = 'N'
	ClassO BandwidthClass = 'O'
	ClassP BandwidthClass = 'P'
	ClassX BandwidthClass = 'X'
)

// BandwidthClasses lists every class in ascending capacity order.
var BandwidthClasses = []BandwidthClass{ClassK, ClassL, ClassM, ClassN, ClassO, ClassP, ClassX}

// classUpperKBps maps each class to its exclusive upper bound in KB/s;
// ClassX is unbounded.
var classUpperKBps = map[BandwidthClass]int{
	ClassK: 12,
	ClassL: 48,
	ClassM: 64,
	ClassN: 128,
	ClassO: 256,
	ClassP: 2000,
}

// ClassForRate returns the bandwidth class for a shared bandwidth of
// rateKBps kilobytes per second.
func ClassForRate(rateKBps int) BandwidthClass {
	switch {
	case rateKBps < 12:
		return ClassK
	case rateKBps < 48:
		return ClassL
	case rateKBps < 64:
		return ClassM
	case rateKBps < 128:
		return ClassN
	case rateKBps < 256:
		return ClassO
	case rateKBps <= 2000:
		return ClassP
	default:
		return ClassX
	}
}

// RangeKBps returns the inclusive lower and exclusive upper bound of the
// class in KB/s. For ClassX the upper bound is -1 (unbounded).
func (c BandwidthClass) RangeKBps() (lo, hi int) {
	switch c {
	case ClassK:
		return 0, 12
	case ClassL:
		return 12, 48
	case ClassM:
		return 48, 64
	case ClassN:
		return 64, 128
	case ClassO:
		return 128, 256
	case ClassP:
		return 256, 2000
	case ClassX:
		return 2000, -1
	default:
		return 0, 0
	}
}

// Valid reports whether c is one of the seven defined classes.
func (c BandwidthClass) Valid() bool {
	_, ok := classUpperKBps[c]
	return ok || c == ClassX
}

// Index returns the position of the class in ascending capacity order
// (K=0 .. X=6), or -1 for an invalid class.
func (c BandwidthClass) Index() int {
	for i, cl := range BandwidthClasses {
		if cl == c {
			return i
		}
	}
	return -1
}

// AtLeast reports whether c advertises at least as much bandwidth as other.
func (c BandwidthClass) AtLeast(other BandwidthClass) bool {
	return c.Index() >= other.Index()
}

func (c BandwidthClass) String() string { return string(rune(c)) }

// FloodfillMinClass is the minimum bandwidth class for automatic floodfill
// opt-in: "a peer needs to have at least an N flag in order to become a
// floodfill router automatically" (Section 5.3.1). The bandwidth floor is
// FloodfillMinRateKBps.
const FloodfillMinClass = ClassN

// FloodfillMinRateKBps is the minimum shared bandwidth (KB/s) required to
// gain the floodfill flag: "128 KB/s ... is the minimum required value for
// a router to be able to gain the floodfill flag" (Section 4.2).
const FloodfillMinRateKBps = 128

// Caps is the parsed capacity field of a RouterInfo: the bandwidth class
// letter plus the floodfill, reachability and hidden flags. The paper's
// example "OfR" denotes a reachable floodfill with 128–256 KB/s shared
// bandwidth.
type Caps struct {
	// Class is the advertised bandwidth tier.
	Class BandwidthClass
	// LegacyO records the backwards-compatibility behaviour from
	// Section 5.3.1: since 0.9.20 a P- or X-class router also publishes an
	// O flag so older software keeps working. When true, Encode emits the
	// extra O.
	LegacyO bool
	// Floodfill is the 'f' flag.
	Floodfill bool
	// Reachable is the 'R' flag; Unreachable is the 'U' flag. A RouterInfo
	// normally carries exactly one of the two, but real records have been
	// observed with neither (freshly restarted routers), so both are
	// tracked independently.
	Reachable   bool
	Unreachable bool
	// Hidden is the 'H' flag: the router does not publish addresses and
	// does not route for others.
	Hidden bool
}

// NewCaps returns Caps for the given shared bandwidth with the LegacyO
// compatibility flag set when applicable.
func NewCaps(rateKBps int, floodfill, reachable bool) Caps {
	class := ClassForRate(rateKBps)
	return Caps{
		Class:       class,
		LegacyO:     class == ClassP || class == ClassX,
		Floodfill:   floodfill,
		Reachable:   reachable,
		Unreachable: !reachable,
	}
}

// Encode renders the capacity string, e.g. "OfR", "LU", "PORf". Letters are
// emitted in I2P's conventional order: bandwidth class (plus legacy O),
// then f, then R/U, then H.
func (c Caps) Encode() string {
	var b strings.Builder
	b.WriteByte(byte(c.Class))
	if c.LegacyO && c.Class != ClassO {
		b.WriteByte(byte(ClassO))
	}
	if c.Floodfill {
		b.WriteByte('f')
	}
	if c.Reachable {
		b.WriteByte('R')
	}
	if c.Unreachable {
		b.WriteByte('U')
	}
	if c.Hidden {
		b.WriteByte('H')
	}
	return b.String()
}

// ParseCaps parses a capacity string. Multiple bandwidth letters may be
// present for backwards compatibility (Section 5.3.1: "a peer may publish
// more than one bandwidth letter at the same time"); the highest class
// wins and LegacyO records that an extra O accompanied a P or X.
func ParseCaps(s string) (Caps, error) {
	var c Caps
	sawClass := false
	sawO := false
	for _, r := range s {
		switch {
		case r == 'f':
			c.Floodfill = true
		case r == 'R':
			c.Reachable = true
		case r == 'U':
			c.Unreachable = true
		case r == 'H':
			c.Hidden = true
		default:
			cl := BandwidthClass(r)
			if !cl.Valid() {
				return Caps{}, fmt.Errorf("netdb: parse caps %q: unknown flag %q", s, r)
			}
			if cl == ClassO {
				sawO = true
			}
			if !sawClass || cl.Index() > c.Class.Index() {
				c.Class = cl
				sawClass = true
			}
		}
	}
	if !sawClass {
		return Caps{}, fmt.Errorf("netdb: parse caps %q: no bandwidth class", s)
	}
	c.LegacyO = sawO && (c.Class == ClassP || c.Class == ClassX)
	return c, nil
}

// PublishedClasses returns every bandwidth letter the router advertises,
// i.e. the primary class plus the legacy O when present. Measurement code
// that counts "peers with an O flag" must use this to reproduce the
// double-counting the paper describes (the sum over flags exceeding 100%).
func (c Caps) PublishedClasses() []BandwidthClass {
	if c.LegacyO && c.Class != ClassO {
		return []BandwidthClass{c.Class, ClassO}
	}
	return []BandwidthClass{c.Class}
}

// QualifiedFloodfill reports whether the router meets the automatic
// floodfill requirements (floodfill flag plus at least class N). The paper
// uses this to separate manually enabled, under-provisioned floodfills from
// qualified ones (Section 5.3.1).
func (c Caps) QualifiedFloodfill() bool {
	return c.Floodfill && c.Class.AtLeast(FloodfillMinClass)
}

func (c Caps) String() string { return c.Encode() }
