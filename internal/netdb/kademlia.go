package netdb

import (
	"sort"
	"time"
)

// FloodFanout is how many of its closest floodfill routers a floodfill
// forwards a fresh entry to: "the floodfill router 'floods' the netDb entry
// to three others among its closest floodfill routers" (Section 4.2). The
// simulator exposes it as a parameter for the fan-out ablation bench.
const FloodFanout = 3

// ClosestTo returns the n candidate hashes closest to target under the XOR
// metric over daily routing keys at time t. This is the selection rule for
// both "which floodfills store this record" and "which floodfills to flood
// to". The input slice is not modified.
func ClosestTo(target Hash, candidates []Hash, n int, t time.Time) []Hash {
	if n <= 0 || len(candidates) == 0 {
		return nil
	}
	targetKey := target.RoutingKey(t)
	type scored struct {
		h   Hash
		key Hash
	}
	xs := make([]scored, len(candidates))
	for i, c := range candidates {
		xs[i] = scored{c, c.RoutingKey(t)}
	}
	sort.Slice(xs, func(i, j int) bool {
		return DistanceLess(targetKey, xs[i].key, xs[j].key)
	})
	if n > len(xs) {
		n = len(xs)
	}
	out := make([]Hash, n)
	for i := range out {
		out[i] = xs[i].h
	}
	return out
}

// bucketCount is the number of k-buckets in the routing table — one per
// possible shared-prefix length.
const bucketCount = HashSize * 8

// KBuckets is a Kademlia-style routing table keyed by XOR distance to a
// local identity. Floodfill routers use it to find peers close to a lookup
// key; it is a variation of the Kademlia algorithm the paper cites
// (Maymounkov & Mazieres 2002).
type KBuckets struct {
	self    Hash
	k       int
	buckets [bucketCount][]Hash
	present map[Hash]bool
}

// NewKBuckets returns a table for the given local identity with at most k
// entries per bucket.
func NewKBuckets(self Hash, k int) *KBuckets {
	if k <= 0 {
		k = 8
	}
	return &KBuckets{self: self, k: k, present: make(map[Hash]bool)}
}

// bucketIndex returns which bucket h falls into: the number of leading
// shared bits with self. The self hash itself has no bucket.
func (t *KBuckets) bucketIndex(h Hash) int {
	d := t.self.XOR(h)
	lz := d.LeadingZeros()
	if lz >= bucketCount {
		return -1 // identical to self
	}
	return lz
}

// Insert adds h to the table. It reports whether the hash was stored (false
// when the bucket is full, the hash equals self, or it is already present —
// unlike real Kademlia there is no LRU eviction ping, which the study does
// not need).
func (t *KBuckets) Insert(h Hash) bool {
	if t.present[h] {
		return false
	}
	idx := t.bucketIndex(h)
	if idx < 0 {
		return false
	}
	if len(t.buckets[idx]) >= t.k {
		return false
	}
	t.buckets[idx] = append(t.buckets[idx], h)
	t.present[h] = true
	return true
}

// Remove deletes h from the table, reporting whether it was present.
func (t *KBuckets) Remove(h Hash) bool {
	if !t.present[h] {
		return false
	}
	idx := t.bucketIndex(h)
	if idx >= 0 {
		b := t.buckets[idx]
		for i, x := range b {
			if x == h {
				t.buckets[idx] = append(b[:i], b[i+1:]...)
				break
			}
		}
	}
	delete(t.present, h)
	return true
}

// Contains reports whether h is stored.
func (t *KBuckets) Contains(h Hash) bool { return t.present[h] }

// Len returns the number of stored hashes.
func (t *KBuckets) Len() int { return len(t.present) }

// All returns every stored hash in bucket order (closest buckets last).
func (t *KBuckets) All() []Hash {
	out := make([]Hash, 0, len(t.present))
	for i := range t.buckets {
		out = append(out, t.buckets[i]...)
	}
	return out
}

// Closest returns up to n stored hashes closest to target under the plain
// XOR metric (no routing-key rotation; callers that need daily rotation use
// ClosestTo).
func (t *KBuckets) Closest(target Hash, n int) []Hash {
	all := t.All()
	sort.Slice(all, func(i, j int) bool {
		return DistanceLess(target, all[i], all[j])
	})
	if n < len(all) {
		all = all[:n]
	}
	return all
}
