package netdb

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"time"
)

// Transport names used in RouterAddress records. NTCP is the TCP transport
// whose first four handshake messages have the fixed lengths the paper
// discusses (288, 304, 448 and 48 bytes); SSU is the UDP transport that
// carries the introducer mechanism for firewalled peers.
const (
	TransportNTCP = "NTCP"
	TransportSSU  = "SSU"
)

// Introducer is a third-party introduction point published by a firewalled
// peer (Section 5.1): a reachable router that relays hole-punching requests.
// The presence of introducers with valid IP addresses is what distinguishes
// a firewalled peer from a hidden one in the paper's classification.
type Introducer struct {
	// Hash identifies the introducer router.
	Hash Hash
	// Tag is the introduction tag the introducer allocated for this peer.
	Tag uint32
	// Addr and Port are the introducer's public contact address.
	Addr netip.Addr
	Port uint16
}

// RouterAddress is one published transport address of a router. A
// firewalled router publishes an SSU address with no IP but with
// introducers; a hidden router publishes no addresses at all.
type RouterAddress struct {
	// Transport is TransportNTCP or TransportSSU.
	Transport string
	// Cost orders addresses by preference; lower is preferred.
	Cost uint8
	// Expiration is carried on the wire but, as the paper notes about the
	// live network, "it is not currently used" (Section 4.3): decoders
	// must not treat an old expiration as invalidating the address.
	Expiration time.Time
	// Addr is the public IP. The zero Addr means the field is absent,
	// which is how firewalled and hidden peers appear.
	Addr netip.Addr
	// Port is the transport port. I2P uses arbitrary ports in 9000–31000.
	Port uint16
	// Introducers is non-empty only for firewalled SSU addresses.
	Introducers []Introducer
}

// HasIP reports whether the address carries a valid public IP.
func (a *RouterAddress) HasIP() bool { return a.Addr.IsValid() }

// RouterInfo is the netDb record describing one router: its identity hash,
// publication time, capacity flags, transport addresses and options. It is
// the unit of everything the paper measures — "a peer is defined by a
// unique hash value encapsulated in its RouterInfo" (Section 4.1).
type RouterInfo struct {
	// Identity is the router's permanent identity hash, "generated the
	// first time the I2P router software is installed" (Section 5.1).
	Identity Hash
	// Published is when the router last published this record. Floodfills
	// expire local copies one hour after this time.
	Published time.Time
	// Caps is the parsed capacity field.
	Caps Caps
	// Version is the router software version string, e.g. "0.9.34".
	Version string
	// Addresses lists published transport addresses.
	Addresses []RouterAddress
	// Options carries auxiliary key=value pairs (netdb stats, etc.).
	Options map[string]string
}

// Clone returns a deep copy of the record.
func (ri *RouterInfo) Clone() *RouterInfo {
	out := *ri
	out.Addresses = make([]RouterAddress, len(ri.Addresses))
	for i, a := range ri.Addresses {
		out.Addresses[i] = a
		out.Addresses[i].Introducers = append([]Introducer(nil), a.Introducers...)
	}
	if ri.Options != nil {
		out.Options = make(map[string]string, len(ri.Options))
		for k, v := range ri.Options {
			out.Options[k] = v
		}
	}
	return &out
}

// IPs returns the set of valid public IPs across all addresses, in stable
// order, without duplicates.
func (ri *RouterInfo) IPs() []netip.Addr {
	seen := make(map[netip.Addr]bool, len(ri.Addresses))
	var out []netip.Addr
	for i := range ri.Addresses {
		a := ri.Addresses[i].Addr
		if a.IsValid() && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// HasKnownIP reports whether any address publishes a valid public IP.
// Peers for which this is false are the paper's "unknown-IP" group
// (Section 5.1).
func (ri *RouterInfo) HasKnownIP() bool {
	for i := range ri.Addresses {
		if ri.Addresses[i].HasIP() {
			return true
		}
	}
	return false
}

// HasIPv4 reports whether the router publishes an IPv4 address.
func (ri *RouterInfo) HasIPv4() bool {
	for i := range ri.Addresses {
		if a := ri.Addresses[i].Addr; a.IsValid() && a.Is4() {
			return true
		}
	}
	return false
}

// HasIPv6 reports whether the router publishes an IPv6 address.
func (ri *RouterInfo) HasIPv6() bool {
	for i := range ri.Addresses {
		if a := ri.Addresses[i].Addr; a.IsValid() && a.Is6() && !a.Is4In6() {
			return true
		}
	}
	return false
}

// Introducers returns all introducers across addresses.
func (ri *RouterInfo) Introducers() []Introducer {
	var out []Introducer
	for i := range ri.Addresses {
		out = append(out, ri.Addresses[i].Introducers...)
	}
	return out
}

// Firewalled reports whether the router is the paper's "firewalled" type:
// it publishes no usable IP of its own but does publish introducers whose
// contact information carries valid IPs ("A firewalled peer has information
// about its introducers embedded in the RouterInfo", Section 5.1).
func (ri *RouterInfo) Firewalled() bool {
	if ri.HasKnownIP() {
		return false
	}
	for _, in := range ri.Introducers() {
		if in.Addr.IsValid() {
			return true
		}
	}
	return false
}

// HiddenPeer reports whether the router is the paper's "hidden" type: no
// usable IP and no introducers ("a hidden peer does not", Section 5.1).
// The explicit H capacity flag also marks a peer hidden.
func (ri *RouterInfo) HiddenPeer() bool {
	if ri.Caps.Hidden {
		return true
	}
	return !ri.HasKnownIP() && !ri.Firewalled()
}

// UnknownIP reports whether the peer belongs to the unknown-IP group
// (firewalled or hidden).
func (ri *RouterInfo) UnknownIP() bool { return !ri.HasKnownIP() }

// riMagic prefixes every encoded RouterInfo.
var riMagic = [4]byte{'R', 'I', '0', '1'}

// Codec errors.
var (
	ErrBadMagic     = errors.New("netdb: bad record magic")
	ErrBadChecksum  = errors.New("netdb: integrity tag mismatch")
	ErrTruncated    = errors.New("netdb: truncated record")
	ErrFieldTooLong = errors.New("netdb: field exceeds length limit")
)

type wireWriter struct {
	buf bytes.Buffer
}

func (w *wireWriter) u8(v uint8) { w.buf.WriteByte(v) }
func (w *wireWriter) u16(v uint16) {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	w.buf.Write(b[:])
}
func (w *wireWriter) u32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	w.buf.Write(b[:])
}
func (w *wireWriter) u64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	w.buf.Write(b[:])
}
func (w *wireWriter) hash(h Hash) { w.buf.Write(h[:]) }

func (w *wireWriter) timeMilli(t time.Time) {
	if t.IsZero() {
		w.u64(0)
		return
	}
	w.u64(uint64(t.UnixMilli()))
}

func (w *wireWriter) str(s string) error {
	if len(s) > 255 {
		return ErrFieldTooLong
	}
	w.u8(uint8(len(s)))
	w.buf.WriteString(s)
	return nil
}

func (w *wireWriter) ip(a netip.Addr) {
	if !a.IsValid() {
		w.u8(0)
		return
	}
	b := a.AsSlice()
	w.u8(uint8(len(b)))
	w.buf.Write(b)
}

type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.fail(ErrTruncated)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *wireReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *wireReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *wireReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *wireReader) hash() Hash {
	var h Hash
	b := r.take(HashSize)
	if b != nil {
		copy(h[:], b)
	}
	return h
}

func (r *wireReader) timeMilli() time.Time {
	v := r.u64()
	if v == 0 || r.err != nil {
		return time.Time{}
	}
	return time.UnixMilli(int64(v)).UTC()
}

func (r *wireReader) str() string {
	n := int(r.u8())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (r *wireReader) ip() netip.Addr {
	n := int(r.u8())
	if n == 0 {
		return netip.Addr{}
	}
	b := r.take(n)
	if b == nil {
		return netip.Addr{}
	}
	a, ok := netip.AddrFromSlice(b)
	if !ok {
		r.fail(fmt.Errorf("netdb: invalid IP length %d", n))
		return netip.Addr{}
	}
	return a
}

// Encode serializes the RouterInfo into the study's wire format and appends
// a SHA-256 integrity tag. Real I2P records carry an EdDSA signature; the
// tag is the offline substitute documented in DESIGN.md — it exercises the
// same "verify before store" path without a key infrastructure.
func (ri *RouterInfo) Encode() ([]byte, error) {
	var w wireWriter
	w.buf.Write(riMagic[:])
	w.hash(ri.Identity)
	w.timeMilli(ri.Published)
	if err := w.str(ri.Caps.Encode()); err != nil {
		return nil, err
	}
	if err := w.str(ri.Version); err != nil {
		return nil, err
	}
	if len(ri.Addresses) > 255 {
		return nil, ErrFieldTooLong
	}
	w.u8(uint8(len(ri.Addresses)))
	for i := range ri.Addresses {
		a := &ri.Addresses[i]
		if err := w.str(a.Transport); err != nil {
			return nil, err
		}
		w.u8(a.Cost)
		w.timeMilli(a.Expiration)
		w.ip(a.Addr)
		w.u16(a.Port)
		if len(a.Introducers) > 255 {
			return nil, ErrFieldTooLong
		}
		w.u8(uint8(len(a.Introducers)))
		for _, in := range a.Introducers {
			w.hash(in.Hash)
			w.u32(in.Tag)
			w.ip(in.Addr)
			w.u16(in.Port)
		}
	}
	// Options sorted for deterministic output.
	keys := make([]string, 0, len(ri.Options))
	for k := range ri.Options {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) > 255 {
		return nil, ErrFieldTooLong
	}
	w.u8(uint8(len(keys)))
	for _, k := range keys {
		if err := w.str(k); err != nil {
			return nil, err
		}
		if err := w.str(ri.Options[k]); err != nil {
			return nil, err
		}
	}
	payload := w.buf.Bytes()
	tag := sha256.Sum256(payload)
	return append(payload, tag[:]...), nil
}

// DecodeRouterInfo parses a record produced by Encode, verifying the
// integrity tag.
func DecodeRouterInfo(data []byte) (*RouterInfo, error) {
	if len(data) < len(riMagic)+HashSize {
		return nil, ErrTruncated
	}
	body, tag := data[:len(data)-HashSize], data[len(data)-HashSize:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], tag) {
		return nil, ErrBadChecksum
	}
	r := &wireReader{b: body}
	if m := r.take(4); m == nil || !bytes.Equal(m, riMagic[:]) {
		return nil, ErrBadMagic
	}
	ri := &RouterInfo{}
	ri.Identity = r.hash()
	ri.Published = r.timeMilli()
	capsStr := r.str()
	ri.Version = r.str()
	nAddr := int(r.u8())
	for i := 0; i < nAddr && r.err == nil; i++ {
		var a RouterAddress
		a.Transport = r.str()
		a.Cost = r.u8()
		a.Expiration = r.timeMilli()
		a.Addr = r.ip()
		a.Port = r.u16()
		nIntro := int(r.u8())
		for j := 0; j < nIntro && r.err == nil; j++ {
			var in Introducer
			in.Hash = r.hash()
			in.Tag = r.u32()
			in.Addr = r.ip()
			in.Port = r.u16()
			a.Introducers = append(a.Introducers, in)
		}
		ri.Addresses = append(ri.Addresses, a)
	}
	nOpts := int(r.u8())
	if nOpts > 0 {
		ri.Options = make(map[string]string, nOpts)
		for i := 0; i < nOpts && r.err == nil; i++ {
			k := r.str()
			v := r.str()
			ri.Options[k] = v
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("netdb: %d trailing bytes after RouterInfo", len(body)-r.off)
	}
	caps, err := ParseCaps(capsStr)
	if err != nil {
		return nil, err
	}
	ri.Caps = caps
	if ri.Identity.IsZero() {
		return nil, ErrBadHash
	}
	return ri, nil
}
