package netdb

import (
	"testing"
	"time"
)

func TestClosestToOrdersByDistance(t *testing.T) {
	at := time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)
	target := HashFromUint64(0)
	var cands []Hash
	for i := uint64(1); i <= 50; i++ {
		cands = append(cands, HashFromUint64(i))
	}
	got := ClosestTo(target, cands, 10, at)
	if len(got) != 10 {
		t.Fatalf("got %d, want 10", len(got))
	}
	// Verify ordering: each returned element is no farther (on routing
	// keys) than the next.
	tk := target.RoutingKey(at)
	for i := 1; i < len(got); i++ {
		a := got[i-1].RoutingKey(at)
		b := got[i].RoutingKey(at)
		if DistanceLess(tk, b, a) {
			t.Fatalf("result %d closer than result %d", i, i-1)
		}
	}
	// And every excluded candidate is at least as far as the last result.
	last := got[len(got)-1].RoutingKey(at)
	inResult := make(map[Hash]bool)
	for _, h := range got {
		inResult[h] = true
	}
	for _, c := range cands {
		if inResult[c] {
			continue
		}
		ck := c.RoutingKey(at)
		if DistanceLess(tk, ck, last) {
			t.Fatalf("candidate %s closer than final result but excluded", c.Short())
		}
	}
}

func TestClosestToRotatesWithDate(t *testing.T) {
	target := HashFromUint64(0)
	var cands []Hash
	for i := uint64(1); i <= 200; i++ {
		cands = append(cands, HashFromUint64(i))
	}
	day1 := time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)
	day2 := day1.Add(24 * time.Hour)
	got1 := ClosestTo(target, cands, 5, day1)
	got2 := ClosestTo(target, cands, 5, day2)
	same := true
	for i := range got1 {
		if got1[i] != got2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("closest floodfill set did not rotate across UTC days")
	}
}

func TestClosestToEdgeCases(t *testing.T) {
	at := time.Now()
	if got := ClosestTo(HashFromUint64(1), nil, 3, at); got != nil {
		t.Fatalf("empty candidates should return nil, got %v", got)
	}
	if got := ClosestTo(HashFromUint64(1), []Hash{HashFromUint64(2)}, 0, at); got != nil {
		t.Fatalf("n=0 should return nil, got %v", got)
	}
	got := ClosestTo(HashFromUint64(1), []Hash{HashFromUint64(2)}, 5, at)
	if len(got) != 1 {
		t.Fatalf("n larger than candidates: got %d, want 1", len(got))
	}
}

func TestKBucketsInsertRemove(t *testing.T) {
	self := HashFromUint64(0)
	kb := NewKBuckets(self, 8)
	if kb.Insert(self) {
		t.Fatal("self must not be insertable")
	}
	var hs []Hash
	for i := uint64(1); i <= 100; i++ {
		hs = append(hs, HashFromUint64(i))
	}
	inserted := 0
	for _, h := range hs {
		if kb.Insert(h) {
			inserted++
		}
	}
	if inserted == 0 || kb.Len() != inserted {
		t.Fatalf("inserted %d, Len %d", inserted, kb.Len())
	}
	if kb.Insert(hs[0]) {
		t.Fatal("duplicate insert should fail")
	}
	if !kb.Contains(hs[0]) {
		t.Fatal("Contains lost an inserted hash")
	}
	if !kb.Remove(hs[0]) {
		t.Fatal("Remove failed for present hash")
	}
	if kb.Remove(hs[0]) {
		t.Fatal("Remove succeeded twice")
	}
	if kb.Contains(hs[0]) {
		t.Fatal("removed hash still present")
	}
}

func TestKBucketsBucketCapacity(t *testing.T) {
	self := HashFromUint64(0)
	kb := NewKBuckets(self, 2)
	// Most random hashes differ from self in the first bit, so bucket 0
	// fills quickly; after capacity, inserts into that bucket must fail.
	full := 0
	for i := uint64(1); i < 200; i++ {
		h := HashFromUint64(i)
		if self.XOR(h).LeadingZeros() == 0 {
			if kb.Insert(h) {
				full++
			}
			if full == 2 {
				break
			}
		}
	}
	if full != 2 {
		t.Skip("could not fill bucket 0 with test hashes")
	}
	for i := uint64(200); i < 400; i++ {
		h := HashFromUint64(i)
		if self.XOR(h).LeadingZeros() == 0 {
			if kb.Insert(h) {
				t.Fatal("insert into full bucket succeeded")
			}
			break
		}
	}
}

func TestKBucketsClosest(t *testing.T) {
	self := HashFromUint64(0)
	kb := NewKBuckets(self, 16)
	for i := uint64(1); i <= 64; i++ {
		kb.Insert(HashFromUint64(i))
	}
	target := HashFromUint64(1000)
	got := kb.Closest(target, 5)
	if len(got) != 5 {
		t.Fatalf("got %d, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		if DistanceLess(target, got[i], got[i-1]) {
			t.Fatal("Closest results out of order")
		}
	}
	if len(kb.All()) != kb.Len() {
		t.Fatal("All() length disagrees with Len()")
	}
}

func TestNewKBucketsDefaultK(t *testing.T) {
	kb := NewKBuckets(HashFromUint64(1), 0)
	if kb.k != 8 {
		t.Fatalf("default k = %d, want 8", kb.k)
	}
}
