package netdb

import (
	"testing"
	"testing/quick"
)

func TestClassForRateBoundaries(t *testing.T) {
	cases := []struct {
		rate int
		want BandwidthClass
	}{
		{0, ClassK}, {11, ClassK},
		{12, ClassL}, {47, ClassL},
		{48, ClassM}, {63, ClassM},
		{64, ClassN}, {127, ClassN},
		{128, ClassO}, {255, ClassO},
		{256, ClassP}, {2000, ClassP},
		{2001, ClassX}, {8192, ClassX},
	}
	for _, c := range cases {
		if got := ClassForRate(c.rate); got != c.want {
			t.Errorf("ClassForRate(%d) = %v, want %v", c.rate, got, c.want)
		}
	}
}

func TestClassRangeConsistency(t *testing.T) {
	// Every rate must fall inside the range its class reports.
	for rate := 0; rate <= 4000; rate++ {
		cl := ClassForRate(rate)
		lo, hi := cl.RangeKBps()
		if rate < lo {
			t.Fatalf("rate %d below class %v lower bound %d", rate, cl, lo)
		}
		if hi != -1 && rate > hi && !(cl == ClassP && rate == hi) {
			// P's upper bound is inclusive at 2000 per the paper's table
			// ("256-2000 KB/s").
			if rate > hi {
				t.Fatalf("rate %d above class %v upper bound %d", rate, cl, hi)
			}
		}
	}
}

func TestClassOrdering(t *testing.T) {
	for i := 1; i < len(BandwidthClasses); i++ {
		lo, hi := BandwidthClasses[i-1], BandwidthClasses[i]
		if !hi.AtLeast(lo) {
			t.Errorf("%v should be at least %v", hi, lo)
		}
		if lo.AtLeast(hi) {
			t.Errorf("%v should not be at least %v", lo, hi)
		}
	}
	if !ClassX.AtLeast(ClassX) {
		t.Error("class must be AtLeast itself")
	}
}

func TestCapsEncodeExamples(t *testing.T) {
	// The paper's example: "OfR ... a reachable floodfill router with a
	// shared bandwidth of 128–256 KB/s".
	c := NewCaps(200, true, true)
	if got := c.Encode(); got != "OfR" {
		t.Fatalf("Encode() = %q, want %q", got, "OfR")
	}
	// Default-bandwidth unreachable peer.
	c = NewCaps(20, false, false)
	if got := c.Encode(); got != "LU" {
		t.Fatalf("Encode() = %q, want %q", got, "LU")
	}
	// P and X carry the legacy O for pre-0.9.20 compatibility.
	c = NewCaps(500, false, true)
	if got := c.Encode(); got != "POR" {
		t.Fatalf("Encode() = %q, want %q", got, "POR")
	}
	c = NewCaps(3000, true, true)
	if got := c.Encode(); got != "XOfR" {
		t.Fatalf("Encode() = %q, want %q", got, "XOfR")
	}
}

func TestParseCapsLegacyO(t *testing.T) {
	c, err := ParseCaps("POR")
	if err != nil {
		t.Fatal(err)
	}
	if c.Class != ClassP {
		t.Fatalf("class = %v, want P (highest class wins)", c.Class)
	}
	if !c.LegacyO {
		t.Fatal("LegacyO not detected")
	}
	got := c.PublishedClasses()
	if len(got) != 2 || got[0] != ClassP || got[1] != ClassO {
		t.Fatalf("PublishedClasses() = %v, want [P O]", got)
	}
}

func TestParseCapsErrors(t *testing.T) {
	for _, s := range []string{"", "fR", "Z", "LQ"} {
		if _, err := ParseCaps(s); err == nil {
			t.Errorf("ParseCaps(%q): expected error", s)
		}
	}
}

func TestCapsRoundTrip(t *testing.T) {
	f := func(rate uint16, floodfill, reachable, hidden bool) bool {
		c := NewCaps(int(rate), floodfill, reachable)
		c.Hidden = hidden
		parsed, err := ParseCaps(c.Encode())
		if err != nil {
			return false
		}
		return parsed == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQualifiedFloodfill(t *testing.T) {
	cases := []struct {
		rate      int
		floodfill bool
		want      bool
	}{
		{500, true, true},   // P floodfill: qualified
		{100, true, true},   // N floodfill: exactly the minimum class
		{50, true, false},   // M floodfill: manually enabled, unqualified
		{20, true, false},   // L floodfill: unqualified
		{500, false, false}, // not a floodfill at all
	}
	for _, c := range cases {
		caps := NewCaps(c.rate, c.floodfill, true)
		if got := caps.QualifiedFloodfill(); got != c.want {
			t.Errorf("QualifiedFloodfill(rate=%d ff=%v) = %v, want %v", c.rate, c.floodfill, got, c.want)
		}
	}
}

func TestFloodfillMinimums(t *testing.T) {
	// Section 4.2: 128 KB/s is the minimum for the floodfill flag, and the
	// class at that rate must be at least N (the automatic opt-in floor).
	cl := ClassForRate(FloodfillMinRateKBps)
	if !cl.AtLeast(FloodfillMinClass) {
		t.Fatalf("class at floodfill minimum rate = %v, below %v", cl, FloodfillMinClass)
	}
}

func TestClassIndexInvalid(t *testing.T) {
	if BandwidthClass('Z').Index() != -1 {
		t.Fatal("invalid class should have index -1")
	}
	if BandwidthClass('Z').Valid() {
		t.Fatal("Z must not be a valid class")
	}
}
