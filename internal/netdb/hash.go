// Package netdb implements the I2P network database substrate: router
// identities, RouterInfo and LeaseSet records, capacity flags, the daily
// rotating routing keys, the Kademlia XOR metric used by floodfill routers,
// the DatabaseStore/DatabaseLookup message codecs, and an in-memory plus
// on-disk store with the expiration policies described in the paper
// (Section 2.1.2 and Section 4.3).
//
// The wire formats are simplified but faithful re-encodings of I2P's common
// structures: every record round-trips through a deterministic binary codec
// and carries an integrity tag, so that the higher layers (simulator,
// measurement harness, censorship model) exercise real encode/decode paths
// rather than passing Go pointers around.
package netdb

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// HashSize is the size in bytes of a router identity hash and of a routing
// key. I2P identifies every router by the SHA-256 digest of its
// RouterIdentity; the paper calls this "a unique hash value encapsulated in
// its RouterInfo" (Section 5.1).
const HashSize = 32

// Hash is a 32-byte router (or destination) identity hash. The zero value
// is not a valid identity.
type Hash [HashSize]byte

// i2pB64 is I2P's base64 variant: the standard alphabet with '+' replaced
// by '-' and '/' replaced by '~'.
var i2pB64 = base64.NewEncoding(
	"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-~",
).WithPadding('=')

// HashOf returns the SHA-256 hash of data as a Hash. It is how router
// identities are derived from their public key material.
func HashOf(data []byte) Hash {
	return Hash(sha256.Sum256(data))
}

// HashFromUint64 derives a deterministic Hash from a counter. The simulator
// uses it to mint unique synthetic identities; mixing through SHA-256 keeps
// the identities uniformly spread over the keyspace, which the Kademlia
// metric relies on.
func HashFromUint64(n uint64) Hash {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], n)
	return HashOf(buf[:])
}

// String returns the I2P-style base64 form of the hash.
func (h Hash) String() string { return i2pB64.EncodeToString(h[:]) }

// Short returns a short human-readable prefix of the base64 form, used in
// logs and test failure messages.
func (h Hash) Short() string {
	s := h.String()
	if len(s) > 8 {
		s = s[:8]
	}
	return s
}

// IsZero reports whether the hash is the (invalid) zero value.
func (h Hash) IsZero() bool { return h == Hash{} }

// ParseHash decodes a base64 string produced by Hash.String.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := i2pB64.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("netdb: parse hash: %w", err)
	}
	if len(b) != HashSize {
		return h, fmt.Errorf("netdb: parse hash: got %d bytes, want %d", len(b), HashSize)
	}
	copy(h[:], b)
	return h, nil
}

// XOR returns the bitwise XOR of two hashes: the Kademlia distance metric
// used throughout the netDb (Section 2.1.2).
func (h Hash) XOR(other Hash) Hash {
	var out Hash
	for i := range h {
		out[i] = h[i] ^ other[i]
	}
	return out
}

// Less reports whether h sorts before other in big-endian byte order.
// Comparing the XOR of two hashes against the XOR of a third with the same
// reference orders them by Kademlia distance.
func (h Hash) Less(other Hash) bool {
	for i := range h {
		if h[i] != other[i] {
			return h[i] < other[i]
		}
	}
	return false
}

// LeadingZeros returns the number of leading zero bits, which is the bucket
// index used by the Kademlia routing table.
func (h Hash) LeadingZeros() int {
	n := 0
	for _, b := range h {
		if b == 0 {
			n += 8
			continue
		}
		for mask := byte(0x80); mask != 0; mask >>= 1 {
			if b&mask != 0 {
				return n
			}
			n++
		}
	}
	return n
}

// RoutingKeyDateFormat is the UTC date string appended to the identity hash
// when deriving the daily routing key.
const RoutingKeyDateFormat = "20060102"

// RoutingKey returns the netDb indexing key for the identity at time t:
// SHA256(hash || YYYYMMDD) with the date taken in UTC. As the paper notes,
// "these hash values change every day at UTC 00:00" (Section 2.1.2), which
// rotates which floodfill routers are responsible for each record.
func (h Hash) RoutingKey(t time.Time) Hash {
	date := t.UTC().Format(RoutingKeyDateFormat)
	buf := make([]byte, 0, HashSize+len(date))
	buf = append(buf, h[:]...)
	buf = append(buf, date...)
	return HashOf(buf)
}

// DistanceLess reports whether a is strictly closer to target than b under
// the XOR metric.
func DistanceLess(target, a, b Hash) bool {
	for i := range target {
		da := target[i] ^ a[i]
		db := target[i] ^ b[i]
		if da != db {
			return da < db
		}
	}
	return false
}

// ErrBadHash is returned by codecs that encounter a malformed hash field.
var ErrBadHash = errors.New("netdb: malformed hash")
