package netdb

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// FloodfillRouterInfoExpiry is how long a floodfill keeps a RouterInfo:
// "floodfill routers apply a one-hour expiration time for all RouterInfos
// stored locally" (Section 4.3). The measurement harness polls hourly
// because of this.
const FloodfillRouterInfoExpiry = time.Hour

// DefaultRouterInfoExpiry is the retention for non-floodfill routers, which
// keep RouterInfos on disk across restarts and prune lazily.
const DefaultRouterInfoExpiry = 24 * time.Hour

// StoreResult describes the outcome of storing a record.
type StoreResult int

// Store outcomes.
const (
	// StoreNew means the store had no record for the key.
	StoreNew StoreResult = iota
	// StoreFresher means the record replaced an older one. Fresher
	// RouterInfos trigger the flooding mechanism on floodfill routers.
	StoreFresher
	// StoreStale means the store already holds a record at least as new;
	// nothing changed.
	StoreStale
)

// Store is a router's local netDb: RouterInfos and LeaseSets with
// expiration. It is safe for concurrent use.
type Store struct {
	mu        sync.RWMutex
	riExpiry  time.Duration
	routers   map[Hash]*RouterInfo
	leases    map[Hash]*LeaseSet
	riStored  map[Hash]time.Time // local store time, drives expiry
	floodfill bool
}

// NewStore returns an empty store. When floodfill is true the RouterInfo
// expiry is one hour, otherwise a day.
func NewStore(floodfill bool) *Store {
	exp := DefaultRouterInfoExpiry
	if floodfill {
		exp = FloodfillRouterInfoExpiry
	}
	return &Store{
		riExpiry:  exp,
		routers:   make(map[Hash]*RouterInfo),
		leases:    make(map[Hash]*LeaseSet),
		riStored:  make(map[Hash]time.Time),
		floodfill: floodfill,
	}
}

// Floodfill reports whether the store uses floodfill expiration rules.
func (s *Store) Floodfill() bool { return s.floodfill }

// PutRouterInfo stores ri (observed at time now) and reports the outcome.
// Records are kept by pointer; callers that mutate their copies must Clone.
func (s *Store) PutRouterInfo(ri *RouterInfo, now time.Time) StoreResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.routers[ri.Identity]
	switch {
	case !ok:
		s.routers[ri.Identity] = ri
		s.riStored[ri.Identity] = now
		return StoreNew
	case ri.Published.After(old.Published):
		s.routers[ri.Identity] = ri
		s.riStored[ri.Identity] = now
		return StoreFresher
	default:
		// Refresh the local store time so an actively re-announced record
		// does not expire, but keep the existing payload.
		s.riStored[ri.Identity] = now
		return StoreStale
	}
}

// PutLeaseSet stores ls and reports the outcome.
func (s *Store) PutLeaseSet(ls *LeaseSet, now time.Time) StoreResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.leases[ls.Destination]
	switch {
	case !ok:
		s.leases[ls.Destination] = ls
		return StoreNew
	case ls.Published.After(old.Published):
		s.leases[ls.Destination] = ls
		return StoreFresher
	default:
		return StoreStale
	}
}

// RouterInfo returns the stored record for h, or nil.
func (s *Store) RouterInfo(h Hash) *RouterInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.routers[h]
}

// LeaseSet returns the stored record for destination h, or nil.
func (s *Store) LeaseSet(h Hash) *LeaseSet {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.leases[h]
}

// HasRouter reports whether a RouterInfo for h is stored.
func (s *Store) HasRouter(h Hash) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.routers[h]
	return ok
}

// RouterCount returns the number of stored RouterInfos.
func (s *Store) RouterCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.routers)
}

// LeaseSetCount returns the number of stored LeaseSets.
func (s *Store) LeaseSetCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.leases)
}

// RouterHashes returns the identity hashes of all stored RouterInfos in
// unspecified order.
func (s *Store) RouterHashes() []Hash {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Hash, 0, len(s.routers))
	for h := range s.routers {
		out = append(out, h)
	}
	return out
}

// RouterInfos returns all stored RouterInfos in unspecified order. The
// returned slice is fresh but the records are shared; treat them as
// read-only.
func (s *Store) RouterInfos() []*RouterInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*RouterInfo, 0, len(s.routers))
	for _, ri := range s.routers {
		out = append(out, ri)
	}
	return out
}

// ClosestRouters returns up to n stored router hashes whose daily routing
// keys are closest to target's routing key at time t.
func (s *Store) ClosestRouters(target Hash, n int, t time.Time) []Hash {
	return ClosestTo(target, s.RouterHashes(), n, t)
}

// ClosestFloodfills is like ClosestRouters restricted to floodfill-flagged
// records, which is the candidate set for DSM targets and flooding.
func (s *Store) ClosestFloodfills(target Hash, n int, t time.Time) []Hash {
	s.mu.RLock()
	cands := make([]Hash, 0, len(s.routers)/8)
	for h, ri := range s.routers {
		if ri.Caps.Floodfill {
			cands = append(cands, h)
		}
	}
	s.mu.RUnlock()
	return ClosestTo(target, cands, n, t)
}

// Expire removes RouterInfos whose local store time is older than the
// store's expiry and LeaseSets with no live lease. It returns how many
// RouterInfos were removed.
func (s *Store) Expire(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for h, stored := range s.riStored {
		if now.Sub(stored) > s.riExpiry {
			delete(s.routers, h)
			delete(s.riStored, h)
			removed++
		}
	}
	for d, ls := range s.leases {
		if ls.Expired(now) {
			delete(s.leases, d)
		}
	}
	return removed
}

// Clear removes everything — the harness's daily netDb-directory cleanup
// ("Every 24 hours we clean up the netDb directory", Section 4.3).
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.routers = make(map[Hash]*RouterInfo)
	s.leases = make(map[Hash]*LeaseSet)
	s.riStored = make(map[Hash]time.Time)
}

// routerInfoFilePrefix and suffix mirror the Java router's on-disk layout
// (netDb/routerInfo-<base64>.dat), which the paper's harness watched.
const (
	routerInfoFilePrefix = "routerInfo-"
	routerInfoFileSuffix = ".dat"
)

// RouterInfoFileName returns the on-disk file name for an identity hash.
func RouterInfoFileName(h Hash) string {
	return routerInfoFilePrefix + h.String() + routerInfoFileSuffix
}

// SaveDir writes every stored RouterInfo into dir, one file per record,
// creating dir if needed. "RouterInfos are written to disk by design so
// that they are available after a restart" (Section 4.3).
func (s *Store) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("netdb: save dir: %w", err)
	}
	for _, ri := range s.RouterInfos() {
		data, err := ri.Encode()
		if err != nil {
			return fmt.Errorf("netdb: encode %s: %w", ri.Identity.Short(), err)
		}
		name := filepath.Join(dir, RouterInfoFileName(ri.Identity))
		if err := os.WriteFile(name, data, 0o644); err != nil {
			return fmt.Errorf("netdb: save dir: %w", err)
		}
	}
	return nil
}

// LoadDir reads every routerInfo-*.dat file in dir into the store, using
// now as the local store time. It returns how many records were loaded.
// Unreadable or corrupt files are skipped (matching the Java router, which
// quarantines bad records rather than failing startup) and reported in the
// returned error only if nothing could be loaded.
func (s *Store) LoadDir(dir string, now time.Time) (int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("netdb: load dir: %w", err)
	}
	loaded, failed := 0, 0
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, routerInfoFilePrefix) || !strings.HasSuffix(name, routerInfoFileSuffix) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			failed++
			continue
		}
		ri, err := DecodeRouterInfo(data)
		if err != nil {
			failed++
			continue
		}
		s.PutRouterInfo(ri, now)
		loaded++
	}
	if loaded == 0 && failed > 0 {
		return 0, fmt.Errorf("netdb: load dir: all %d records corrupt", failed)
	}
	return loaded, nil
}
