package floodfill

import (
	"net/netip"
	"testing"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

var testNow = time.Date(2018, 2, 10, 12, 0, 0, 0, time.UTC)

func fixedNow() time.Time { return testNow }

func testRI(id uint64) *netdb.RouterInfo {
	return &netdb.RouterInfo{
		Identity:  netdb.HashFromUint64(id),
		Published: testNow,
		Caps:      netdb.NewCaps(200, false, true),
		Version:   "0.9.34",
		Addresses: []netdb.RouterAddress{{
			Transport: netdb.TransportNTCP,
			Addr:      netip.AddrFrom4([4]byte{10, byte(id >> 8), byte(id), 1}),
			Port:      12000,
		}},
	}
}

// startServer spins up one floodfill with its own store.
func startServer(t *testing.T, id uint64, fanout int) *Server {
	t.Helper()
	srv := NewServer(netdb.NewStore(true), Config{
		Identity: netdb.HashFromUint64(id),
		Fanout:   fanout,
		Now:      fixedNow,
		Logf:     t.Logf,
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func dialServer(t *testing.T, srv *Server, id uint64) *Client {
	t.Helper()
	c, err := Dial(srv.Addr(), netdb.HashFromUint64(id))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestStoreAndLookupRouterInfo(t *testing.T) {
	srv := startServer(t, 1, 3)
	c := dialServer(t, srv, 1)

	ri := testRI(100)
	if err := c.StoreRouterInfo(ri, true); err != nil {
		t.Fatalf("confirmed store: %v", err)
	}
	if srv.Store().RouterCount() != 1 {
		t.Fatal("record not stored")
	}

	got, referrals, err := c.LookupRouterInfo(ri.Identity, netdb.HashFromUint64(9))
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatalf("lookup missed; referrals %v", referrals)
	}
	if got.Identity != ri.Identity || got.Caps != ri.Caps {
		t.Fatal("record corrupted over the wire")
	}
}

func TestLookupMissReturnsReferrals(t *testing.T) {
	srv := startServer(t, 1, 3)
	c := dialServer(t, srv, 1)
	// Seed the floodfill with some records.
	for i := uint64(10); i < 30; i++ {
		if err := c.StoreRouterInfo(testRI(i), false); err != nil {
			t.Fatal(err)
		}
	}
	// Confirmed store as a write barrier for the unconfirmed ones.
	if err := c.StoreRouterInfo(testRI(30), true); err != nil {
		t.Fatal(err)
	}
	got, referrals, err := c.LookupRouterInfo(netdb.HashFromUint64(9999), netdb.HashFromUint64(9))
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("lookup hit a record that was never stored")
	}
	if len(referrals) == 0 {
		t.Fatal("no referrals on miss")
	}
}

func TestStoreAndLookupLeaseSet(t *testing.T) {
	srv := startServer(t, 1, 3)
	c := dialServer(t, srv, 1)
	ls := &netdb.LeaseSet{
		Destination: netdb.HashFromUint64(777),
		Published:   testNow,
		Leases: []netdb.Lease{{
			Gateway:  netdb.HashFromUint64(10),
			TunnelID: 5,
			Expires:  testNow.Add(10 * time.Minute),
		}},
	}
	if err := c.StoreLeaseSet(ls, true); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.LookupLeaseSet(ls.Destination, netdb.HashFromUint64(9))
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Destination != ls.Destination || len(got.Leases) != 1 {
		t.Fatalf("lease set corrupted: %+v", got)
	}
}

func TestExplore(t *testing.T) {
	srv := startServer(t, 1, 3)
	c := dialServer(t, srv, 1)
	for i := uint64(10); i < 40; i++ {
		if err := c.StoreRouterInfo(testRI(i), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.StoreRouterInfo(testRI(40), true); err != nil {
		t.Fatal(err)
	}
	exclude := []netdb.Hash{netdb.HashFromUint64(10), netdb.HashFromUint64(11)}
	peers, err := c.Explore(netdb.HashFromUint64(5555), netdb.HashFromUint64(9), exclude)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) == 0 || len(peers) > 16 {
		t.Fatalf("referral count %d", len(peers))
	}
	for _, p := range peers {
		for _, ex := range exclude {
			if p == ex {
				t.Fatal("excluded peer returned")
			}
		}
		if p == netdb.HashFromUint64(9) {
			t.Fatal("requester returned to itself")
		}
	}
}

// TestFloodingReplicates: a store to one floodfill propagates to its
// peers, but flooded copies are not re-flooded (no amplification).
func TestFloodingReplicates(t *testing.T) {
	a := startServer(t, 1, 2)
	b := startServer(t, 2, 2)
	cSrv := startServer(t, 3, 2)

	// Full mesh peer knowledge.
	servers := map[uint64]*Server{1: a, 2: b, 3: cSrv}
	for idA, sA := range servers {
		for idB, sB := range servers {
			if idA != idB {
				sA.AddPeer(netdb.HashFromUint64(idB), sB.Addr())
			}
		}
	}

	cl := dialServer(t, a, 1)
	ri := testRI(4242)
	if err := cl.StoreRouterInfo(ri, true); err != nil {
		t.Fatal(err)
	}
	// Flooding is asynchronous from the client's perspective; poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if b.Store().HasRouter(ri.Identity) && cSrv.Store().HasRouter(ri.Identity) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flood did not reach peers: b=%v c=%v",
				b.Store().HasRouter(ri.Identity), cSrv.Store().HasRouter(ri.Identity))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if a.Store().RouterCount() != 1 {
		t.Fatal("origin store wrong")
	}
}

// TestFloodLoopPrevention: with FromFlood set, receiving servers must not
// forward again — verified by a two-node cycle that would otherwise loop
// forever (the test finishing at all is the assertion, plus store counts).
func TestFloodLoopPrevention(t *testing.T) {
	a := startServer(t, 1, 1)
	b := startServer(t, 2, 1)
	a.AddPeer(netdb.HashFromUint64(2), b.Addr())
	b.AddPeer(netdb.HashFromUint64(1), a.Addr())

	cl := dialServer(t, a, 1)
	if err := cl.StoreRouterInfo(testRI(777), true); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !b.Store().HasRouter(netdb.HashFromUint64(777)) {
		if time.Now().After(deadline) {
			t.Fatal("flood never reached b")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Give a would-be loop time to manifest, then confirm both sides hold
	// exactly one copy and the system is quiescent.
	time.Sleep(100 * time.Millisecond)
	if a.Store().RouterCount() != 1 || b.Store().RouterCount() != 1 {
		t.Fatalf("unexpected store counts: a=%d b=%d", a.Store().RouterCount(), b.Store().RouterCount())
	}
}

func TestRejectsCorruptStore(t *testing.T) {
	srv := startServer(t, 1, 3)
	c := dialServer(t, srv, 1)

	ri := testRI(55)
	data, err := ri.Encode()
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xFF // break the integrity tag
	msg := &netdb.DatabaseStoreMessage{Key: ri.Identity, Type: netdb.EntryRouterInfo, Payload: data}
	if err := c.send(msg); err != nil {
		t.Fatal(err)
	}
	// A key/payload identity mismatch must also be rejected.
	good, err := testRI(56).Encode()
	if err != nil {
		t.Fatal(err)
	}
	msg = &netdb.DatabaseStoreMessage{Key: netdb.HashFromUint64(999), Type: netdb.EntryRouterInfo, Payload: good}
	if err := c.send(msg); err != nil {
		t.Fatal(err)
	}
	// Barrier store to ensure the server processed the bad ones.
	if err := c.StoreRouterInfo(testRI(57), true); err != nil {
		t.Fatal(err)
	}
	if srv.Store().HasRouter(netdb.HashFromUint64(55)) {
		t.Fatal("corrupt record stored")
	}
	if srv.Store().HasRouter(netdb.HashFromUint64(56)) {
		t.Fatal("key-mismatched record stored")
	}
	if !srv.Store().HasRouter(netdb.HashFromUint64(57)) {
		t.Fatal("barrier record missing")
	}
}

func TestDialWrongIdentityFails(t *testing.T) {
	srv := startServer(t, 1, 3)
	// Dialing with the wrong router hash derives the wrong obfuscation
	// keystream: the handshake must fail.
	if c, err := Dial(srv.Addr(), netdb.HashFromUint64(999)); err == nil {
		c.Close()
		t.Fatal("handshake with wrong identity succeeded")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := startServer(t, 7, 3)
	srv.Close()
	srv.Close() // second close must not panic or deadlock
}
