// Package floodfill implements the netDb service a floodfill router runs
// (Section 2.1.2): it accepts obfuscated transport connections, answers
// DatabaseStoreMessage and DatabaseLookupMessage requests against a local
// netdb.Store, and floods fresh entries to its closest floodfill peers —
// "the floodfill router 'floods' the netDb entry to three others among its
// closest floodfill routers" (Section 4.2).
//
// Everything runs over the transport package's NTCP-style framing on real
// TCP sockets, so the full store/lookup/flood path is exercised end to end
// in tests.
package floodfill

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/transport"
)

// Config parameterizes a floodfill server.
type Config struct {
	// Identity is the floodfill's own router hash; it keys the transport
	// obfuscation, so clients must know it (they do — it comes from the
	// RouterInfo they used to find the floodfill).
	Identity netdb.Hash
	// Fanout is how many closest floodfill peers receive a flood of each
	// fresh entry (netdb.FloodFanout in the real network).
	Fanout int
	// Now supplies the clock; nil means time.Now. Tests inject fixed
	// times so routing-key rotation is deterministic.
	Now func() time.Time
	// Logf, when non-nil, receives diagnostic messages.
	Logf func(format string, args ...any)
}

func (c Config) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now().UTC()
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Server is a running floodfill netDb service.
type Server struct {
	cfg      Config
	store    *netdb.Store
	listener *transport.Listener

	mu    sync.Mutex
	peers map[netdb.Hash]string // other floodfills: hash -> dial address

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewServer creates a server around an existing store (floodfill expiry
// rules are the caller's choice; netdb.NewStore(true) matches the paper).
func NewServer(store *netdb.Store, cfg Config) *Server {
	if cfg.Fanout <= 0 {
		cfg.Fanout = netdb.FloodFanout
	}
	return &Server{
		cfg:    cfg,
		store:  store,
		peers:  make(map[netdb.Hash]string),
		closed: make(chan struct{}),
	}
}

// Store returns the server's backing store.
func (s *Server) Store() *netdb.Store { return s.store }

// Start listens on addr (e.g. "127.0.0.1:0") and serves until Close.
func (s *Server) Start(addr string) error {
	l, err := transport.Listen("tcp", addr, transport.Config{
		Variant:    transport.VariantNTCP2,
		RouterHash: s.cfg.Identity,
	})
	if err != nil {
		return err
	}
	s.listener = l
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the listen address, valid after Start.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// AddPeer registers another floodfill as a flooding target.
func (s *Server) AddPeer(hash netdb.Hash, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peers[hash] = addr
}

// Close stops the listener and waits for in-flight handlers.
func (s *Server) Close() {
	select {
	case <-s.closed:
		return
	default:
	}
	close(s.closed)
	if s.listener != nil {
		s.listener.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.cfg.logf("floodfill %s: accept: %v", s.cfg.Identity.Short(), err)
				return
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// serveConn answers messages on one connection until EOF or error.
func (s *Server) serveConn(conn *transport.Conn) {
	for {
		data, err := conn.ReadMessage()
		if err != nil {
			return
		}
		msg, err := netdb.DecodeMessage(data)
		if err != nil {
			s.cfg.logf("floodfill %s: bad message: %v", s.cfg.Identity.Short(), err)
			return
		}
		var reply any
		switch m := msg.(type) {
		case *netdb.DatabaseStoreMessage:
			reply = s.handleStore(m)
		case *netdb.DatabaseLookupMessage:
			reply = s.handleLookup(m)
		default:
			s.cfg.logf("floodfill %s: unexpected %T", s.cfg.Identity.Short(), msg)
			return
		}
		if reply == nil {
			continue
		}
		out, err := netdb.EncodeMessage(reply)
		if err != nil {
			s.cfg.logf("floodfill %s: encode reply: %v", s.cfg.Identity.Short(), err)
			return
		}
		if err := conn.WriteMessage(out); err != nil {
			return
		}
	}
}

// handleStore verifies and stores the payload, flooding fresh entries.
// When the client asked for a confirmation (ReplyToken != 0) it returns an
// ack; otherwise nil.
func (s *Server) handleStore(m *netdb.DatabaseStoreMessage) any {
	now := s.cfg.now()
	var result netdb.StoreResult
	switch m.Type {
	case netdb.EntryRouterInfo:
		ri, err := netdb.DecodeRouterInfo(m.Payload)
		if err != nil || ri.Identity != m.Key {
			s.cfg.logf("floodfill %s: rejected RouterInfo store: %v", s.cfg.Identity.Short(), err)
			return nil
		}
		result = s.store.PutRouterInfo(ri, now)
	case netdb.EntryLeaseSet:
		ls, err := netdb.DecodeLeaseSet(m.Payload)
		if err != nil || ls.Destination != m.Key {
			s.cfg.logf("floodfill %s: rejected LeaseSet store: %v", s.cfg.Identity.Short(), err)
			return nil
		}
		result = s.store.PutLeaseSet(ls, now)
	default:
		return nil
	}

	// Flood fresh entries onward, once: entries arriving via a flood are
	// not re-flooded (loop prevention).
	if !m.FromFlood && (result == netdb.StoreNew || result == netdb.StoreFresher) {
		s.flood(m)
	}

	if m.ReplyToken != 0 {
		// Delivery confirmation: an empty search-reply echoing the key.
		return &netdb.DatabaseSearchReply{Key: m.Key, From: s.cfg.Identity}
	}
	return nil
}

// flood forwards the store to the fanout closest floodfill peers by
// routing-key distance.
func (s *Server) flood(m *netdb.DatabaseStoreMessage) {
	s.mu.Lock()
	candidates := make([]netdb.Hash, 0, len(s.peers))
	addrs := make(map[netdb.Hash]string, len(s.peers))
	for h, a := range s.peers {
		candidates = append(candidates, h)
		addrs[h] = a
	}
	s.mu.Unlock()
	if len(candidates) == 0 {
		return
	}
	targets := netdb.ClosestTo(m.Key, candidates, s.cfg.Fanout, s.cfg.now())
	fwd := &netdb.DatabaseStoreMessage{
		Key:       m.Key,
		Type:      m.Type,
		Payload:   m.Payload,
		FromFlood: true,
	}
	for _, target := range targets {
		addr := addrs[target]
		if err := s.sendStore(target, addr, fwd); err != nil {
			s.cfg.logf("floodfill %s: flood to %s: %v", s.cfg.Identity.Short(), target.Short(), err)
		}
	}
}

func (s *Server) sendStore(target netdb.Hash, addr string, m *netdb.DatabaseStoreMessage) error {
	c, err := Dial(addr, target)
	if err != nil {
		return err
	}
	defer c.Close()
	return c.send(m)
}

// handleLookup answers a DLM: the record itself when present, otherwise
// (or for exploratory lookups) the closest known router hashes.
func (s *Server) handleLookup(m *netdb.DatabaseLookupMessage) any {
	now := s.cfg.now()
	if !m.Exploratory {
		switch m.Type {
		case netdb.EntryRouterInfo:
			if ri := s.store.RouterInfo(m.Key); ri != nil {
				data, err := ri.Encode()
				if err == nil {
					return &netdb.DatabaseStoreMessage{Key: m.Key, Type: netdb.EntryRouterInfo, Payload: data}
				}
			}
		case netdb.EntryLeaseSet:
			if ls := s.store.LeaseSet(m.Key); ls != nil {
				data, err := ls.Encode()
				if err == nil {
					return &netdb.DatabaseStoreMessage{Key: m.Key, Type: netdb.EntryLeaseSet, Payload: data}
				}
			}
		}
	}
	// Not found or exploratory: answer with close peers, excluding what
	// the requester already knows.
	exclude := make(map[netdb.Hash]bool, len(m.Exclude)+1)
	for _, h := range m.Exclude {
		exclude[h] = true
	}
	exclude[m.From] = true
	var peers []netdb.Hash
	for _, h := range s.store.ClosestRouters(m.Key, 16+len(exclude), now) {
		if !exclude[h] {
			peers = append(peers, h)
		}
		if len(peers) == 16 {
			break
		}
	}
	return &netdb.DatabaseSearchReply{Key: m.Key, From: s.cfg.Identity, Peers: peers}
}

// --- client ---

// Client is a netDb client connection to one floodfill.
type Client struct {
	conn *transport.Conn
}

// Dial connects to a floodfill at addr with the given identity hash.
func Dial(addr string, server netdb.Hash) (*Client, error) {
	conn, err := transport.Dial("tcp", addr, transport.Config{
		Variant:    transport.VariantNTCP2,
		RouterHash: server,
	})
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) send(msg any) error {
	data, err := netdb.EncodeMessage(msg)
	if err != nil {
		return err
	}
	return c.conn.WriteMessage(data)
}

func (c *Client) recv() (any, error) {
	data, err := c.conn.ReadMessage()
	if err != nil {
		return nil, err
	}
	return netdb.DecodeMessage(data)
}

// ErrNotConfirmed is returned when a confirmed store receives no ack.
var ErrNotConfirmed = errors.New("floodfill: store not confirmed")

// StoreRouterInfo publishes a RouterInfo. When confirm is true it waits
// for the floodfill's delivery acknowledgement.
func (c *Client) StoreRouterInfo(ri *netdb.RouterInfo, confirm bool) error {
	data, err := ri.Encode()
	if err != nil {
		return err
	}
	msg := &netdb.DatabaseStoreMessage{Key: ri.Identity, Type: netdb.EntryRouterInfo, Payload: data}
	if confirm {
		msg.ReplyToken = 1
	}
	if err := c.send(msg); err != nil {
		return err
	}
	if !confirm {
		return nil
	}
	reply, err := c.recv()
	if err != nil {
		return err
	}
	ack, ok := reply.(*netdb.DatabaseSearchReply)
	if !ok || ack.Key != ri.Identity {
		return ErrNotConfirmed
	}
	return nil
}

// StoreLeaseSet publishes a LeaseSet, optionally confirmed.
func (c *Client) StoreLeaseSet(ls *netdb.LeaseSet, confirm bool) error {
	data, err := ls.Encode()
	if err != nil {
		return err
	}
	msg := &netdb.DatabaseStoreMessage{Key: ls.Destination, Type: netdb.EntryLeaseSet, Payload: data}
	if confirm {
		msg.ReplyToken = 1
	}
	if err := c.send(msg); err != nil {
		return err
	}
	if !confirm {
		return nil
	}
	reply, err := c.recv()
	if err != nil {
		return err
	}
	ack, ok := reply.(*netdb.DatabaseSearchReply)
	if !ok || ack.Key != ls.Destination {
		return ErrNotConfirmed
	}
	return nil
}

// LookupRouterInfo queries for a RouterInfo. On a hit it returns the
// record; on a miss it returns the close-peer referrals instead.
func (c *Client) LookupRouterInfo(key, from netdb.Hash) (*netdb.RouterInfo, []netdb.Hash, error) {
	if err := c.send(&netdb.DatabaseLookupMessage{Key: key, From: from, Type: netdb.EntryRouterInfo}); err != nil {
		return nil, nil, err
	}
	reply, err := c.recv()
	if err != nil {
		return nil, nil, err
	}
	switch r := reply.(type) {
	case *netdb.DatabaseStoreMessage:
		if r.Type != netdb.EntryRouterInfo {
			return nil, nil, fmt.Errorf("floodfill: unexpected entry type %v", r.Type)
		}
		ri, err := netdb.DecodeRouterInfo(r.Payload)
		if err != nil {
			return nil, nil, err
		}
		return ri, nil, nil
	case *netdb.DatabaseSearchReply:
		return nil, r.Peers, nil
	default:
		return nil, nil, fmt.Errorf("floodfill: unexpected reply %T", reply)
	}
}

// LookupLeaseSet queries for a LeaseSet, with referral fallback.
func (c *Client) LookupLeaseSet(key, from netdb.Hash) (*netdb.LeaseSet, []netdb.Hash, error) {
	if err := c.send(&netdb.DatabaseLookupMessage{Key: key, From: from, Type: netdb.EntryLeaseSet}); err != nil {
		return nil, nil, err
	}
	reply, err := c.recv()
	if err != nil {
		return nil, nil, err
	}
	switch r := reply.(type) {
	case *netdb.DatabaseStoreMessage:
		ls, err := netdb.DecodeLeaseSet(r.Payload)
		if err != nil {
			return nil, nil, err
		}
		return ls, nil, nil
	case *netdb.DatabaseSearchReply:
		return nil, r.Peers, nil
	default:
		return nil, nil, fmt.Errorf("floodfill: unexpected reply %T", reply)
	}
}

// Explore sends an exploratory lookup (the netDb-harvesting mechanism of
// Section 4.2 used by peers short on RouterInfos), returning referrals.
func (c *Client) Explore(key, from netdb.Hash, exclude []netdb.Hash) ([]netdb.Hash, error) {
	msg := &netdb.DatabaseLookupMessage{
		Key:         key,
		From:        from,
		Type:        netdb.EntryRouterInfo,
		Exploratory: true,
		Exclude:     exclude,
	}
	if err := c.send(msg); err != nil {
		return nil, err
	}
	reply, err := c.recv()
	if err != nil {
		return nil, err
	}
	dsr, ok := reply.(*netdb.DatabaseSearchReply)
	if !ok {
		return nil, fmt.Errorf("floodfill: unexpected reply %T", reply)
	}
	return dsr.Peers, nil
}
