// Package faults is a deterministic fault injector for the crash-resume
// harness: engines call Hit at their task/row/cell boundaries, and an
// enabled Injector makes the Nth crossing of a named point fail — as a
// returned error, a panic, or a hard process exit — so "the campaign
// died at cell 1234" becomes a reproducible, seeded test input instead
// of an operational anecdote.
//
// The wiring mirrors internal/obs: one process-global Enable switch
// behind an atomic pointer, so the disabled hot-path cost of a Hit is a
// single atomic load and a nil check. Injection is counting-based, not
// time-based — every crossing of a point increments that point's
// counter, and an armed injection fires exactly when the counter
// reaches its N — which keeps crash points deterministic per (point, N)
// even though *which* cell is the Nth crossing may depend on worker
// scheduling. The crash-resume goldens rely on exactly that split: the
// crash point is part of the seeded input, the recovered output must be
// byte-identical regardless of which cells happened to finish first.
package faults

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Mode is how an injection fires.
type Mode int

const (
	// Error makes Hit return an injected error, which engines propagate
	// like any task failure — the in-process crash the resume goldens
	// drive.
	Error Mode = iota
	// Panic makes Hit panic, modeling a programming fault inside a
	// worker rather than a clean task error.
	Panic
	// Exit terminates the process with ExitCode without running
	// deferred functions — the kill -9 analogue the crash-resume smoke
	// script drives through the real CLIs.
	Exit
)

// ExitCode is the process exit status of an Exit-mode injection; the
// smoke scripts assert it to distinguish an injected crash from a real
// failure.
const ExitCode = 3

// String returns the spec name of the mode (see Parse).
func (m Mode) String() string {
	switch m {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Exit:
		return "exit"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ErrInjected is the sentinel every Error-mode injection wraps;
// errors.Is(err, ErrInjected) identifies an injected crash.
var ErrInjected = errors.New("faults: injected failure")

// Injection arms one fault: the Nth crossing of Point fires Mode.
type Injection struct {
	// Point names the boundary, e.g. "censor.sweep.cell".
	Point string
	// N is the 1-based crossing count that fires. N == 0 never fires
	// (the injector still counts crossings, which is how the harness
	// measures how many boundaries a run has).
	N uint64
	// Mode selects the failure behavior.
	Mode Mode
}

// point is one named boundary's state: a crossing counter plus the
// armed injection, if any.
type point struct {
	hits atomic.Uint64
	n    uint64 // 0: counting only
	mode Mode
}

// Injector counts boundary crossings and fires armed injections. All
// methods are safe for concurrent use by engine workers.
type Injector struct {
	mu     sync.Mutex
	points map[string]*point
	// exit is the Exit-mode action, replaceable so the injector's own
	// tests don't take the test binary down with them.
	exit atomic.Pointer[func(int)]
}

// New returns an injector with the given injections armed. An injector
// with no injections counts crossings only — the harness's dry-run
// mode.
func New(injs ...Injection) *Injector {
	in := &Injector{points: make(map[string]*point, len(injs))}
	osExit := os.Exit
	in.exit.Store(&osExit)
	for _, inj := range injs {
		in.point(inj.Point).n = inj.N
		in.point(inj.Point).mode = inj.Mode
	}
	return in
}

// point returns (creating if needed) the state for a named boundary.
func (in *Injector) point(name string) *point {
	in.mu.Lock()
	defer in.mu.Unlock()
	p, ok := in.points[name]
	if !ok {
		p = &point{}
		in.points[name] = p
	}
	return p
}

// Hits returns how many times the named point has been crossed while
// this injector was enabled.
func (in *Injector) Hits(name string) uint64 {
	return in.point(name).hits.Load()
}

// SetExit replaces the Exit-mode action (default os.Exit); tests use it
// to observe a hard exit without dying.
func (in *Injector) SetExit(fn func(int)) { in.exit.Store(&fn) }

// hit records one crossing and fires the armed injection when the
// counter reaches its N.
func (in *Injector) hit(name string) error {
	p := in.point(name)
	c := p.hits.Add(1)
	if p.n == 0 || c != p.n {
		return nil
	}
	switch p.mode {
	case Panic:
		panic(fmt.Sprintf("faults: injected panic at %s crossing %d", name, c))
	case Exit:
		fmt.Fprintf(os.Stderr, "faults: injected hard exit at %s crossing %d\n", name, c)
		(*in.exit.Load())(ExitCode)
		return nil // only reachable with a test exit hook
	default:
		return fmt.Errorf("%w: %s crossing %d", ErrInjected, name, c)
	}
}

// active is the process-global injector; nil (the default) disables
// injection entirely.
var active atomic.Pointer[Injector]

// Enable installs in as the process-global injector; nil disables
// injection.
func Enable(in *Injector) { active.Store(in) }

// Active returns the enabled injector, nil when injection is disabled.
func Active() *Injector { return active.Load() }

// Hit records one crossing of the named boundary against the enabled
// injector and returns the injected error when an Error-mode injection
// fires there. Disabled cost: one atomic load and a nil check.
func Hit(name string) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	return in.hit(name)
}

// Parse builds an Injection from a CLI spec "point:N:mode", where mode
// is error, panic or exit — e.g. "core.runall.experiment:1:exit".
func Parse(spec string) (Injection, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return Injection{}, fmt.Errorf("faults: spec %q is not point:N:mode", spec)
	}
	n, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil || n == 0 {
		return Injection{}, fmt.Errorf("faults: spec %q: N must be a positive integer", spec)
	}
	var mode Mode
	switch parts[2] {
	case "error":
		mode = Error
	case "panic":
		mode = Panic
	case "exit":
		mode = Exit
	default:
		return Injection{}, fmt.Errorf("faults: spec %q: mode must be error, panic or exit", spec)
	}
	if parts[0] == "" {
		return Injection{}, fmt.Errorf("faults: spec %q: empty point", spec)
	}
	return Injection{Point: parts[0], N: n, Mode: mode}, nil
}
