package faults

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// Enable is process-global; serialize tests that install an injector and
// always restore the disabled state.
func enable(t *testing.T, in *Injector) {
	t.Helper()
	Enable(in)
	t.Cleanup(func() { Enable(nil) })
}

func TestDisabledHitIsFreeAndNil(t *testing.T) {
	Enable(nil)
	for i := 0; i < 100; i++ {
		if err := Hit("any.point"); err != nil {
			t.Fatalf("disabled Hit returned %v", err)
		}
	}
}

func TestErrorModeFiresOnNthCrossing(t *testing.T) {
	in := New(Injection{Point: "p", N: 3, Mode: Error})
	enable(t, in)
	for i := 1; i <= 5; i++ {
		err := Hit("p")
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("crossing %d: want ErrInjected, got %v", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("crossing %d: unexpected error %v", i, err)
		}
	}
	if got := in.Hits("p"); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}
}

func TestCountingOnlyInjectorNeverFires(t *testing.T) {
	in := New()
	enable(t, in)
	for i := 0; i < 10; i++ {
		if err := Hit("count.me"); err != nil {
			t.Fatalf("counting-only injector fired: %v", err)
		}
	}
	if got := in.Hits("count.me"); got != 10 {
		t.Fatalf("Hits = %d, want 10", got)
	}
	if got := in.Hits("never.seen"); got != 0 {
		t.Fatalf("Hits(unseen) = %d, want 0", got)
	}
}

func TestPanicMode(t *testing.T) {
	in := New(Injection{Point: "boom", N: 1, Mode: Panic})
	enable(t, in)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if !strings.Contains(fmt.Sprint(r), "injected panic at boom") {
			t.Fatalf("panic value %v", r)
		}
	}()
	Hit("boom")
}

func TestExitModeUsesExitHook(t *testing.T) {
	in := New(Injection{Point: "die", N: 2, Mode: Exit})
	code := -1
	in.SetExit(func(c int) { code = c })
	enable(t, in)
	if err := Hit("die"); err != nil || code != -1 {
		t.Fatalf("first crossing fired early: err=%v code=%d", err, code)
	}
	if err := Hit("die"); err != nil {
		t.Fatalf("exit mode returned error %v", err)
	}
	if code != ExitCode {
		t.Fatalf("exit code = %d, want %d", code, ExitCode)
	}
}

func TestConcurrentHitsFireExactlyOnce(t *testing.T) {
	in := New(Injection{Point: "race", N: 50, Mode: Error})
	enable(t, in)
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := Hit("race"); err != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("injection fired %d times, want exactly 1", fired)
	}
	if got := in.Hits("race"); got != 200 {
		t.Fatalf("Hits = %d, want 200", got)
	}
}

func TestParse(t *testing.T) {
	inj, err := Parse("censor.sweep.cell:12:exit")
	if err != nil {
		t.Fatal(err)
	}
	want := Injection{Point: "censor.sweep.cell", N: 12, Mode: Exit}
	if inj != want {
		t.Fatalf("Parse = %+v, want %+v", inj, want)
	}
	for _, bad := range []string{
		"", "p", "p:1", "p:1:error:x", "p:0:error", "p:-1:error",
		"p:x:error", "p:1:nope", ":1:error",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{Error: "error", Panic: "panic", Exit: "exit", Mode(9): "Mode(9)"} {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}
