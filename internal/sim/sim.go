// Package sim builds and replays a synthetic I2P network calibrated to the
// paper's measured marginals. It is the offline substitute for the live
// network (see DESIGN.md): ~32K daily peers whose capacity flags, address
// publication behaviour, churn, IP rotation and geographic mix follow
// Sections 5.1–5.3, plus an observation model implementing the four
// RouterInfo-propagation mechanisms of Section 4.2 through which observer
// routers — and censors — learn about peers.
package sim

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/churn"
	"github.com/i2pstudy/i2pstudy/internal/geo"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

// StudyStart is the first day of the paper's measurement campaign
// (February 1, 2018, UTC).
var StudyStart = time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)

// Config parameterizes a synthetic network.
type Config struct {
	// Seed drives every random choice; equal seeds give identical
	// networks.
	Seed uint64
	// Days is the study horizon (the paper ran for ~90 days).
	Days int
	// TargetDailyPeers calibrates the arrival rate so that the expected
	// number of distinct peers seen per day matches (the paper: ~30.5K).
	// Tests and benches use scaled-down values; all shape statistics are
	// scale-invariant.
	TargetDailyPeers int
	// Churn overrides the churn model configuration (zero value means
	// churn.DefaultConfig).
	Churn *churn.Config
	// Observation overrides the observation constants (zero value means
	// DefaultObservation).
	Observation *ObservationParams
}

// DefaultConfig returns the full-scale configuration of the paper's main
// campaign.
func DefaultConfig() Config {
	return Config{Seed: 1, Days: 90, TargetDailyPeers: 30500}
}

// Status mix (Section 5.1 / Figure 6): per-day ~30.5K peers split into
// ~15.5K known-IP, ~11.4K firewalled-only, ~1.4K hidden-only and ~2.6K
// toggling between the last two.
const (
	fracKnownIP    = 0.49
	fracFirewalled = 0.375
	fracHiddenOnly = 0.046
	// remainder: toggling
)

// Primary bandwidth-class probabilities, normalized from the paper's
// Table 1 "Total" column.
var classProbs = []struct {
	class netdb.BandwidthClass
	p     float64
}{
	{netdb.ClassL, 0.5925},
	{netdb.ClassN, 0.2529},
	{netdb.ClassP, 0.0600},
	{netdb.ClassX, 0.0490},
	{netdb.ClassO, 0.0244},
	{netdb.ClassM, 0.0111},
	{netdb.ClassK, 0.0101},
}

// Per-class probability that a peer runs in floodfill mode, shaped so the
// floodfill population (~8.8% of peers) has Table 1's floodfill column:
// N-class dominant, with a ~29% minority of manually enabled K/L/M
// floodfills. Floodfill mode requires a published address, so these
// probabilities apply to known-IP reachable peers only (and are therefore
// roughly double the whole-network rates).
var floodfillProbByClass = map[netdb.BandwidthClass]float64{
	netdb.ClassK: 0.015,
	netdb.ClassL: 0.069,
	netdb.ClassM: 0.30,
	netdb.ClassN: 0.38,
	netdb.ClassO: 0.33,
	netdb.ClassP: 0.42,
	netdb.ClassX: 0.43,
}

// legacyOProb is the probability that a P- or X-class router also
// publishes the backwards-compatible O flag.
const legacyOProb = 0.20

// Exposure tiers (see Observer): the well-exposed fraction is visible to
// any serious observer every day; the weak tier produces the long tail of
// Figure 4.
const (
	wellExposedFrac = 0.45
	wellExposedMin  = 0.90
	weakExposureLo  = 0.05
	weakExposureHi  = 0.45
	stealthFrac     = 0.06 // of weak peers: nearly invisible
	stealthExposure = 0.006
)

// Network is a fully materialized synthetic I2P network.
//
// Concurrency contract: a Network is immutable once New returns — every
// method is a pure read and safe for unbounded concurrent use, and
// NewObserver only wraps a pointer to the network. The measurement engine
// (measure.Campaign with Workers > 1, core.Study.RunAll) relies on this:
// per-(observer, day) captures run on arbitrary goroutines with no
// locking. Any future mutating API must either copy-on-write or take a
// network-level lock, and must update this comment.
type Network struct {
	cfg   Config
	model *churn.Model
	geo   *geo.DB

	Peers []*Peer
	// activeByDay[d] lists indexes of peers online on study day d.
	activeByDay [][]int
	// introducersByDay[d] caches the known-IP reachable peers available
	// as introducers on day d.
	introducersByDay [][]*Peer

	obs ObservationParams
}

// New builds a network. Construction cost is O(peers x days).
func New(cfg Config) (*Network, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("sim: Days must be positive, got %d", cfg.Days)
	}
	if cfg.TargetDailyPeers <= 0 {
		return nil, fmt.Errorf("sim: TargetDailyPeers must be positive, got %d", cfg.TargetDailyPeers)
	}
	ccfg := churn.DefaultConfig()
	if cfg.Churn != nil {
		ccfg = *cfg.Churn
	}
	model, err := churn.NewModel(ccfg)
	if err != nil {
		return nil, err
	}
	n := &Network{
		cfg:   cfg,
		model: model,
		geo:   geo.NewDB(),
		obs:   DefaultObservation(),
	}
	if cfg.Observation != nil {
		n.obs = *cfg.Observation
	}
	n.populate()
	n.index()
	return n, nil
}

// GeoDB returns the network's geolocation database.
func (n *Network) GeoDB() *geo.DB { return n.geo }

// Days returns the study horizon.
func (n *Network) Days() int { return n.cfg.Days }

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// DayTime returns the wall-clock time corresponding to noon of a study day.
func (n *Network) DayTime(day int) time.Time {
	return StudyStart.Add(time.Duration(day)*24*time.Hour + 12*time.Hour)
}

// survival returns P(span > t days) under the churn mixture.
func survival(cfg churn.Config, t float64) float64 {
	s := func(floor, mean float64) float64 {
		if t < floor {
			return 1
		}
		return math.Exp(-(t - floor) / mean)
	}
	return cfg.StableFrac*s(cfg.StableSpanFloor, cfg.StableSpanMean) +
		cfg.RegularFrac*s(cfg.RegularSpanFloor, cfg.RegularSpanMean) +
		cfg.TransientFrac*s(cfg.TransientSpanFloor, cfg.TransientSpanMean)
}

// residualProfile samples a profile conditioned on span > age, shifted so
// only the residual span remains (memorylessness of the exponential tail).
func residualProfile(m *churn.Model, age int, rng *rand.Rand) churn.Profile {
	cfg := m.Config()
	type cp struct {
		class       churn.Class
		frac        float64
		floor, mean float64
		onOn, offOn float64
	}
	classes := []cp{
		{churn.ClassStable, cfg.StableFrac, cfg.StableSpanFloor, cfg.StableSpanMean, cfg.StableOnOn, cfg.StableOffOn},
		{churn.ClassRegular, cfg.RegularFrac, cfg.RegularSpanFloor, cfg.RegularSpanMean, cfg.RegularOnOn, cfg.RegularOffOn},
		{churn.ClassTransient, cfg.TransientFrac, cfg.TransientSpanFloor, cfg.TransientSpanMean, cfg.TransientOnOn, cfg.TransientOffOn},
	}
	// P(class | span > age) ∝ frac_c * S_c(age).
	var weights [3]float64
	total := 0.0
	for i, c := range classes {
		s := 1.0
		if float64(age) >= c.floor {
			s = math.Exp(-(float64(age) - c.floor) / c.mean)
		}
		weights[i] = c.frac * s
		total += weights[i]
	}
	x := rng.Float64() * total
	sel := classes[len(classes)-1]
	for i, c := range classes {
		x -= weights[i]
		if x <= 0 {
			sel = c
			break
		}
	}
	// Residual span: if the peer is younger than the floor, the remaining
	// floor plus a fresh exponential; otherwise memoryless exponential.
	var residual int
	if float64(age) < sel.floor {
		residual = int(sel.floor) - age + int(rng.ExpFloat64()*sel.mean)
	} else {
		residual = 1 + int(rng.ExpFloat64()*sel.mean)
	}
	if residual < 1 {
		residual = 1
	}
	return churn.Profile{Class: sel.class, SpanDays: residual, OnOn: sel.onOn, OffOn: sel.offOn}
}

// populate creates the steady-state initial population plus daily arrivals.
func (n *Network) populate() {
	rng := rand.New(rand.NewPCG(n.cfg.Seed, n.cfg.Seed^0xD1B54A32D192ED03))
	ccfg := n.model.Config()
	// The arrival rate must use the *uncapped* expected active days per
	// peer: the steady-state construction below integrates full spans, so
	// capping at the study horizon would double-count short studies.
	expected := n.model.ExpectedActiveDays(1 << 20)
	lambda := float64(n.cfg.TargetDailyPeers) / expected

	nextID := uint64(1)
	addPeer := func(profile churn.Profile, startDay int, stationaryStart bool) {
		p := &Peer{
			Index:    len(n.Peers),
			ID:       netdb.HashFromUint64(n.cfg.Seed<<32 | nextID),
			Profile:  profile,
			StartDay: startDay,
		}
		nextID++
		horizon := n.cfg.Days - startDay
		if stationaryStart {
			p.Presence = generatePresenceStationary(profile, rng, horizon)
		} else {
			p.Presence = profile.GeneratePresence(rng, horizon)
		}
		n.decorate(p, rng)
		n.Peers = append(n.Peers, p)
	}

	// Steady-state initial population: for each age t, round(lambda *
	// S(t)) peers that arrived t days ago and are still in-span.
	maxAge := int(ccfg.StableSpanFloor + 8*ccfg.StableSpanMean)
	carry := 0.0
	for t := 0; t <= maxAge; t++ {
		exact := lambda*survival(ccfg, float64(t)) + carry
		count := int(exact)
		carry = exact - float64(count)
		for i := 0; i < count; i++ {
			addPeer(residualProfile(n.model, t, rng), 0, true)
		}
	}
	// Fresh arrivals during the study.
	carry = 0.0
	for d := 0; d < n.cfg.Days; d++ {
		exact := lambda + carry
		count := int(exact)
		carry = exact - float64(count)
		for i := 0; i < count; i++ {
			addPeer(n.model.SampleProfile(rng), d, false)
		}
	}
}

// generatePresenceStationary is GeneratePresence but with the day-0 state
// drawn from the chain's stationary distribution (for peers already in the
// network at study start).
func generatePresenceStationary(p churn.Profile, rng *rand.Rand, maxDays int) []bool {
	days := p.SpanDays
	if days > maxDays {
		days = maxDays
	}
	if days <= 0 {
		return nil
	}
	out := make([]bool, days)
	online := rng.Float64() < p.ExpectedDailyPresence()
	out[0] = online
	for d := 1; d < days; d++ {
		var pOn float64
		if online {
			pOn = p.OnOn
		} else {
			pOn = p.OffOn
		}
		online = rng.Float64() < pOn
		out[d] = online
	}
	return out
}

// decorate assigns all non-temporal attributes: status, class, geography,
// exposure and the IP schedule.
func (n *Network) decorate(p *Peer, rng *rand.Rand) {
	// Geography first: censored-country peers default to hidden.
	country := n.geo.SampleCountry(rng)
	p.Country = country.Code

	censored := country.Censored()
	x := rng.Float64()
	switch {
	case censored:
		// Hidden by default; ~30% of operators disable it for better
		// integration (Section 5.3.2), and some toggle.
		switch {
		case x < 0.55:
			p.Status = StatusHidden
		case x < 0.70:
			p.Status = StatusToggling
		case x < 0.85:
			p.Status = StatusKnownIP
		default:
			p.Status = StatusFirewalled
		}
	case x < fracKnownIP:
		p.Status = StatusKnownIP
	case x < fracKnownIP+fracFirewalled:
		p.Status = StatusFirewalled
	case x < fracKnownIP+fracFirewalled+fracHiddenOnly:
		p.Status = StatusHidden
	default:
		p.Status = StatusToggling
	}

	// Bandwidth class and rate.
	y := rng.Float64()
	p.Class = netdb.ClassL
	for _, cp := range classProbs {
		y -= cp.p
		if y <= 0 {
			p.Class = cp.class
			break
		}
	}
	lo, hi := p.Class.RangeKBps()
	if hi < 0 {
		hi = 8192
	}
	if hi <= lo {
		hi = lo + 1
	}
	p.RateKBps = lo + rng.IntN(hi-lo)
	p.LegacyO = (p.Class == netdb.ClassP || p.Class == netdb.ClassX) && rng.Float64() < legacyOProb

	// Reachability and floodfill mode (known-IP peers only).
	if p.Status == StatusKnownIP {
		p.Reachable = rng.Float64() < 0.97
		if p.Reachable && rng.Float64() < floodfillProbByClass[p.Class] {
			p.Floodfill = true
		}
	}

	// Exposure tier.
	if rng.Float64() < wellExposedFrac {
		p.WellExposed = true
		p.Exposure = wellExposedMin + rng.Float64()*(1-wellExposedMin)
	} else if rng.Float64() < stealthFrac {
		p.Exposure = stealthExposure * (0.5 + rng.Float64())
	} else {
		p.Exposure = weakExposureLo + rng.Float64()*(weakExposureHi-weakExposureLo)
	}
	// Stable, high-bandwidth peers are systematically more visible.
	if p.Profile.Class == churn.ClassStable && !p.WellExposed {
		p.Exposure = math.Min(1, p.Exposure*1.5)
	}

	// IP profile and AS pool.
	p.IPProfile = n.model.SampleIPProfile(rng)
	fillPool := func(want int, pick func() uint32) {
		seen := map[uint32]bool{}
		// Bounded attempts: sparse countries may not offer `want`
		// distinct ASes through the home-country picker alone.
		for attempts := 0; len(p.ASPool) < want && attempts < 40*want; attempts++ {
			asn := pick()
			if !seen[asn] {
				seen[asn] = true
				p.ASPool = append(p.ASPool, asn)
			}
		}
	}
	switch p.IPProfile.Mode {
	case churn.IPStatic, churn.IPDynamic:
		as := n.geo.SampleAS(p.Country, rng)
		p.ASPool = []uint32{as.ASN}
	case churn.IPMultiAS:
		// Home ISPs, VPN endpoints and occasional foreign networks.
		fillPool(p.IPProfile.ASFanout, func() uint32 {
			x := rng.Float64()
			switch {
			case x < 0.45:
				return n.geo.SampleAS(p.Country, rng).ASN
			case x < 0.75:
				return n.geo.SampleVPNAS(rng).ASN
			default:
				c := n.geo.SampleCountry(rng)
				return n.geo.SampleAS(c.Code, rng).ASN
			}
		})
	case churn.IPHeavy:
		// VPN/Tor-style: mostly hosting ASes plus random countries.
		fillPool(p.IPProfile.ASFanout, func() uint32 {
			if rng.Float64() < 0.4 {
				return n.geo.SampleVPNAS(rng).ASN
			}
			c := n.geo.SampleCountry(rng)
			return n.geo.SampleAS(c.Code, rng).ASN
		})
	}
	p.buildIPSchedule(n.geo, n.cfg.Days, rng)
}

// index builds the per-day active sets and introducer pools.
func (n *Network) index() {
	n.activeByDay = make([][]int, n.cfg.Days)
	n.introducersByDay = make([][]*Peer, n.cfg.Days)
	for _, p := range n.Peers {
		for i, on := range p.Presence {
			if !on {
				continue
			}
			d := p.StartDay + i
			if d < 0 || d >= n.cfg.Days {
				continue
			}
			n.activeByDay[d] = append(n.activeByDay[d], p.Index)
			if p.Status == StatusKnownIP && p.Reachable {
				n.introducersByDay[d] = append(n.introducersByDay[d], p)
			}
		}
	}
}

// PeerCount returns the number of peers ever materialized in the network.
// Safe for concurrent use (the peer list is fixed after New).
func (n *Network) PeerCount() int { return len(n.Peers) }

// Peer returns the peer at index i. The returned Peer must be treated as
// read-only; it is shared by every goroutine observing the network.
func (n *Network) Peer(i int) *Peer { return n.Peers[i] }

// ActivePeers returns the indexes of peers online on the given study day.
// The returned slice is shared and must not be modified by callers.
func (n *Network) ActivePeers(day int) []int {
	if day < 0 || day >= len(n.activeByDay) {
		return nil
	}
	return n.activeByDay[day]
}

// Introducers returns the known-IP reachable peers active on day, used as
// the introducer pool for firewalled peers.
func (n *Network) Introducers(day int) []*Peer {
	if day < 0 || day >= len(n.introducersByDay) {
		return nil
	}
	return n.introducersByDay[day]
}

// RouterInfoFor materializes the RouterInfo the given peer publishes on
// day. rng drives port/introducer choices.
func (n *Network) RouterInfoFor(p *Peer, day int, rng *rand.Rand) *netdb.RouterInfo {
	return p.RouterInfoOn(day, n.DayTime(day), n.Introducers(day), rng)
}
