package sim

import (
	"math"
	"math/rand/v2"

	"github.com/i2pstudy/i2pstudy/internal/cache"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

// The observer draw memo reports cache traffic under this ring name;
// pre-registering keeps the series visible (at zero) from the moment a
// registry is enabled.
const observeMemoRing = "observe_day"

func init() { cache.PreRegisterRing(observeMemoRing) }

// ObservationParams are the constants of the observation model. An
// observer o sees peer p on a given day with probability
//
//	P(o sees p) = gamma_o(p) * exposure_p
//
// where exposure_p is the peer's intrinsic per-day visibility (a property
// of how actively it publishes and participates) and gamma_o(p) composes
// the four §4.2 learning channels:
//
//  1. reseed bootstrap (first day only, handled by the harness),
//  2. exploratory DatabaseLookup traffic — available to every observer
//     regardless of bandwidth (DLMCoverage),
//  3. tunnel participation — grows with the observer's shared bandwidth
//     and saturates (TunnelCoverageMax, TunnelSatKBps), discounted for
//     floodfills whose bandwidth is partly consumed by netDb duties
//     (FFTunnelPenalty), and weighted by how the peer touches tunnels
//     (relay hop, tunnel creator, firewalled creator, hidden creator),
//  4. DatabaseStore/flooding traffic — floodfill observers only
//     (StoreCoverage).
//
// Channels compose as independent detection opportunities:
// gamma = 1 - (1-dlm)(1-store)(1-tunnel*affinity).
type ObservationParams struct {
	DLMCoverage       float64
	StoreCoverage     float64
	TunnelCoverageMax float64
	TunnelSatKBps     float64
	FFTunnelPenalty   float64

	RelayAffinity      float64 // tunnel-eligible peers (reachable, >= M)
	CreatorAffinity    float64 // known-IP peers below relay grade
	FirewalledAffinity float64 // firewalled and toggling peers
	HiddenAffinity     float64 // hidden peers
}

// DefaultObservation returns constants calibrated against Figures 2–4 (see
// the derivation in EXPERIMENTS.md).
func DefaultObservation() ObservationParams {
	return ObservationParams{
		DLMCoverage:       0.66,
		StoreCoverage:     0.35,
		TunnelCoverageMax: 1.0,
		TunnelSatKBps:     1200,
		FFTunnelPenalty:   0.50,

		RelayAffinity:      1.0,
		CreatorAffinity:    0.80,
		FirewalledAffinity: 0.60,
		HiddenAffinity:     0.25,
	}
}

// ObserverConfig describes one measurement router, mirroring the knobs the
// paper tuned in Section 4: operating mode and shared bandwidth.
type ObserverConfig struct {
	// Name labels the observer in reports.
	Name string
	// Floodfill selects floodfill mode.
	Floodfill bool
	// SharedKBps is the configured shared bandwidth in KB/s (the paper
	// swept 128 KB/s to 8 MB/s; the bloom filter caps at 8 MB/s).
	SharedKBps int
	// Seed decorrelates this observer's random draws from others'.
	Seed uint64
}

// MaxSharedKBps is the 8 MB/s cap imposed by the router's built-in bloom
// filter (Section 4.1).
const MaxSharedKBps = 8192

// observeMemoCap bounds the per-observer ObserveDay memo: a full 90-day
// study fits entirely, while long-lived fleets revisiting arbitrary days
// (enumeration sweeps, multi-horizon grids) stay at O(cap x sightings)
// instead of retaining every day ever visited. Evicted days simply redraw
// — draws are pure in (seed, day), so eviction can never change a result.
const observeMemoCap = 128

// Observer is an instantiated measurement router on a network.
//
// Every observation method derives a private RNG from (Seed, day), so
// calls are idempotent, days can be visited in any order, and one Observer
// may be driven from many goroutines at once (the parallel campaign engine
// and the censor sweep engine do exactly that). The only mutable state is
// a bounded memo of per-day draws, which callers never see directly:
// repeated ObserveDay calls return the same (shared, read-only) slice
// instead of redrawing, so sweeps that revisit (observer, day) cells —
// blacklist windows sliding over the same days, fleet prefixes sharing
// routers — pay for each capture once while it stays resident.
type Observer struct {
	Cfg ObserverConfig
	net *Network

	// memo caches ObserveDay results keyed by day: lock-free hits,
	// FIFO-ring residency bounded at observeMemoCap. The pattern this
	// field pioneered inline now lives in cache.DayMemo, shared with the
	// censor's victim views and the distrib owner epochs.
	memo cache.DayMemo[[]int]
}

// NewObserver attaches an observer to the network. Bandwidth is clamped to
// MaxSharedKBps.
func (n *Network) NewObserver(cfg ObserverConfig) *Observer {
	if cfg.SharedKBps <= 0 {
		cfg.SharedKBps = 128
	}
	if cfg.SharedKBps > MaxSharedKBps {
		cfg.SharedKBps = MaxSharedKBps
	}
	return &Observer{
		Cfg:  cfg,
		net:  n,
		memo: cache.DayMemo[[]int]{Cap: observeMemoCap, Ring: observeMemoRing},
	}
}

// tunnelFactor returns the tunnel-channel intensity for the observer's
// bandwidth and mode.
func (o *Observer) tunnelFactor() float64 {
	p := o.net.obs
	f := p.TunnelCoverageMax * (1 - math.Exp(-float64(o.Cfg.SharedKBps)/p.TunnelSatKBps))
	if o.Cfg.Floodfill {
		f *= p.FFTunnelPenalty
	}
	return f
}

// affinity returns the tunnel-channel weight for a peer.
func (o *Observer) affinity(p *Peer) float64 {
	params := o.net.obs
	switch {
	case p.TunnelEligible():
		return params.RelayAffinity
	case p.Status == StatusKnownIP:
		return params.CreatorAffinity
	case p.Status == StatusFirewalled || p.Status == StatusToggling:
		return params.FirewalledAffinity
	default:
		return params.HiddenAffinity
	}
}

// CoverageFactor returns gamma_o(p): the fraction of peer p's exposure the
// observer converts into an observation each day.
func (o *Observer) CoverageFactor(p *Peer) float64 {
	params := o.net.obs
	dlm := params.DLMCoverage
	store := 0.0
	if o.Cfg.Floodfill {
		store = params.StoreCoverage
	}
	tun := o.tunnelFactor() * o.affinity(p)
	gamma := 1 - (1-dlm)*(1-store)*(1-tun)
	if gamma < 0 {
		return 0
	}
	if gamma > 1 {
		return 1
	}
	return gamma
}

// ObserveProbability returns the probability that the observer sees peer p
// on any day p is online.
func (o *Observer) ObserveProbability(p *Peer) float64 {
	return o.CoverageFactor(p) * p.Exposure
}

// dayRNG returns the deterministic RNG for (observer, day): repeated calls
// to ObserveDay are idempotent and days can be visited in any order.
func (o *Observer) dayRNG(day int) *rand.Rand {
	return rand.New(rand.NewPCG(o.Cfg.Seed^0x9E3779B97F4A7C15, uint64(day)*0x2545F4914F6CDD1D+1))
}

// ObserveDay returns the indexes of peers the observer sees on the given
// study day. The result is deterministic for a given (seed, day) and is
// memoized in a bounded FIFO ring (observeMemoCap days): callers receive
// a shared slice and must not modify it. After an eviction a revisited
// day is redrawn to an identical — though distinct — slice.
func (o *Observer) ObserveDay(day int) []int {
	return o.memo.Get(day, o.observeDay)
}

// observeDay performs the actual (seed, day)-deterministic draw.
func (o *Observer) observeDay(day int) []int {
	active := o.net.ActivePeers(day)
	if len(active) == 0 {
		return nil
	}
	rng := o.dayRNG(day)
	out := make([]int, 0, len(active)/2)
	for _, idx := range active {
		p := o.net.Peers[idx]
		if rng.Float64() < o.ObserveProbability(p) {
			out = append(out, idx)
		}
	}
	return out
}

// CollectDay materializes the RouterInfos the observer captured on the
// given day — what the paper's harness read from the netDb directory on
// its hourly scans before the daily cleanup (Section 4.3).
func (o *Observer) CollectDay(day int) []*netdb.RouterInfo {
	idxs := o.ObserveDay(day)
	rng := o.dayRNG(day + 1<<20) // independent stream for materialization
	out := make([]*netdb.RouterInfo, 0, len(idxs))
	for _, idx := range idxs {
		out = append(out, o.net.RouterInfoFor(o.net.Peers[idx], day, rng))
	}
	return out
}

// UnionObserveDay returns the union of observations of several observers
// on one day, deduplicated, preserving no particular order.
func UnionObserveDay(observers []*Observer, day int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, o := range observers {
		for _, idx := range o.ObserveDay(day) {
			if !seen[idx] {
				seen[idx] = true
				out = append(out, idx)
			}
		}
	}
	return out
}
