package sim

import (
	"math/rand/v2"
	"net/netip"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/churn"
	"github.com/i2pstudy/i2pstudy/internal/geo"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

// Status is a peer's address-publication behaviour, which drives the
// paper's Figure 6 classification (Section 5.1).
type Status int

// Peer statuses.
const (
	// StatusKnownIP peers publish a public IP in their RouterInfo.
	StatusKnownIP Status = iota
	// StatusFirewalled peers publish introducers instead of an IP.
	StatusFirewalled
	// StatusHidden peers publish neither (H capacity flag).
	StatusHidden
	// StatusToggling peers flip between firewalled and hidden within a
	// day — the paper's 2.6K "overlapping" group.
	StatusToggling
)

func (s Status) String() string {
	switch s {
	case StatusKnownIP:
		return "known-ip"
	case StatusFirewalled:
		return "firewalled"
	case StatusHidden:
		return "hidden"
	case StatusToggling:
		return "toggling"
	default:
		return "invalid"
	}
}

// ipAssignment is one segment of a peer's IP schedule.
type ipAssignment struct {
	fromDay int // study day the address becomes active
	asn     uint32
	addr    netip.Addr
	v6      netip.Addr // zero unless the peer publishes IPv6
}

// Peer is one simulated router.
type Peer struct {
	Index int
	ID    netdb.Hash

	Profile   churn.Profile
	IPProfile churn.IPProfile
	Status    Status

	Country string
	ASPool  []uint32

	Class     netdb.BandwidthClass
	LegacyO   bool
	RateKBps  int
	Floodfill bool
	// Reachable marks known-IP peers that accept inbound connections
	// (R flag); unknown-IP peers are always unreachable.
	Reachable bool

	// StartDay is the first study day the peer can appear (>= 0; peers
	// already in the network at study start have StartDay 0 with a
	// residual span).
	StartDay int
	// Presence holds one entry per day from StartDay; true means the peer
	// was online at some point that day.
	Presence []bool

	// WellExposed peers are broadly visible to any single observer on any
	// day; the rest have a small per-day exposure, which produces the
	// logarithmic union curve of Figure 4.
	WellExposed bool
	// Exposure is the peer's base per-day observability in [0, 1].
	Exposure float64

	// ipSchedule is non-empty only for StatusKnownIP peers.
	ipSchedule []ipAssignment
	// extraIPs and extraASNs record additional same-day rotations that
	// the daily schedule collapses. Heavy rotators change addresses
	// several times per day; hourly captures (the paper's resolution) see
	// them all, which is how the >100-address tail of Figure 8 arises.
	extraIPs  []netip.Addr
	extraASNs []uint32
}

// ActiveOn reports whether the peer is online on the given study day.
func (p *Peer) ActiveOn(day int) bool {
	idx := day - p.StartDay
	return idx >= 0 && idx < len(p.Presence) && p.Presence[idx]
}

// FirstActiveDay returns the first study day the peer is online, or -1.
func (p *Peer) FirstActiveDay() int {
	for i, on := range p.Presence {
		if on {
			return p.StartDay + i
		}
	}
	return -1
}

// AddrOnDay returns the peer's public IPv4 (and IPv6, if published) on the
// given study day. Both are zero for unknown-IP peers.
func (p *Peer) AddrOnDay(day int) (v4, v6 netip.Addr) {
	if len(p.ipSchedule) == 0 {
		return netip.Addr{}, netip.Addr{}
	}
	// The schedule is sorted by fromDay; find the last segment at or
	// before day.
	cur := p.ipSchedule[0]
	for _, seg := range p.ipSchedule[1:] {
		if seg.fromDay > day {
			break
		}
		cur = seg
	}
	return cur.addr, cur.v6
}

// AddrSegment is one run of a peer's published address schedule: from
// FromDay (inclusive) until the next segment's FromDay, the peer publishes
// V4 (and V6 when valid). Mirrors what AddrOnDay consults day by day.
type AddrSegment struct {
	FromDay int
	V4, V6  netip.Addr
}

// AddrSchedule returns the peer's daily address schedule in FromDay order,
// or nil for peers that never publish an address. It lets analyses intern
// every address the peer will ever publish in a single pass (the censor's
// incremental blacklist index) instead of probing AddrOnDay per day.
func (p *Peer) AddrSchedule() []AddrSegment {
	if len(p.ipSchedule) == 0 {
		return nil
	}
	out := make([]AddrSegment, len(p.ipSchedule))
	for i, seg := range p.ipSchedule {
		out[i] = AddrSegment{FromDay: seg.fromDay, V4: seg.addr, V6: seg.v6}
	}
	return out
}

// ASNOnDay returns the autonomous system of the peer's address on day, or
// zero for unknown-IP peers.
func (p *Peer) ASNOnDay(day int) uint32 {
	if len(p.ipSchedule) == 0 {
		return 0
	}
	cur := p.ipSchedule[0]
	for _, seg := range p.ipSchedule[1:] {
		if seg.fromDay > day {
			break
		}
		cur = seg
	}
	return cur.asn
}

// KnownIPOn reports whether the peer publishes an IP on the given day.
func (p *Peer) KnownIPOn(day int) bool {
	return p.Status == StatusKnownIP && len(p.ipSchedule) > 0
}

// TunnelEligible reports whether other peers would select this peer as a
// tunnel hop: reachable, publishing an address, with at least M bandwidth.
func (p *Peer) TunnelEligible() bool {
	return p.Status == StatusKnownIP && p.Reachable && p.Class.AtLeast(netdb.ClassM)
}

// buildIPSchedule precomputes the peer's address assignments across its
// active window using its churn IP profile and the geo allocator.
func (p *Peer) buildIPSchedule(db *geo.DB, horizonDays int, rng *rand.Rand) {
	if p.Status != StatusKnownIP {
		return
	}
	pickASN := func() uint32 {
		return p.ASPool[rng.IntN(len(p.ASPool))]
	}
	mkSeg := func(day int) ipAssignment {
		asn := pickASN()
		seg := ipAssignment{fromDay: day, asn: asn, addr: db.RandomIPv4(asn, rng)}
		if p.IPProfile.IPv6 {
			seg.v6 = db.RandomIPv6(asn, rng)
		}
		return seg
	}
	p.ipSchedule = append(p.ipSchedule, mkSeg(p.StartDay))
	if p.IPProfile.Mode == churn.IPStatic {
		return
	}
	end := p.StartDay + len(p.Presence)
	if end > horizonDays {
		end = horizonDays
	}
	clock := float64(p.StartDay)
	for {
		clock += p.IPProfile.NextRotationDays(rng)
		day := int(clock)
		if day >= end {
			return
		}
		if day <= p.ipSchedule[len(p.ipSchedule)-1].fromDay {
			// Multiple rotations within one day: the daily schedule keeps
			// the last address, but the earlier one was still observable
			// by hourly captures, so record it.
			old := p.ipSchedule[len(p.ipSchedule)-1]
			p.extraIPs = append(p.extraIPs, old.addr)
			p.extraASNs = append(p.extraASNs, old.asn)
			p.ipSchedule[len(p.ipSchedule)-1] = mkSeg(day)
			continue
		}
		p.ipSchedule = append(p.ipSchedule, mkSeg(day))
	}
}

// UniqueIPs returns the number of distinct IPv4 addresses across the
// peer's schedule, including same-day rotations — Figure 8's per-peer
// statistic at the paper's hourly capture resolution.
func (p *Peer) UniqueIPs() int {
	seen := make(map[netip.Addr]bool, len(p.ipSchedule)+len(p.extraIPs))
	for _, seg := range p.ipSchedule {
		seen[seg.addr] = true
	}
	for _, a := range p.extraIPs {
		seen[a] = true
	}
	return len(seen)
}

// UniqueASNs returns the number of distinct autonomous systems across the
// peer's schedule — Figure 12's per-peer statistic.
func (p *Peer) UniqueASNs() int {
	seen := make(map[uint32]bool, 4)
	for _, seg := range p.ipSchedule {
		seen[seg.asn] = true
	}
	for _, a := range p.extraASNs {
		seen[a] = true
	}
	return len(seen)
}

// RouterInfoOn materializes the peer's RouterInfo as published on the given
// study day. introducerPool supplies candidate introducers for firewalled
// peers (known-IP reachable peers active the same day).
func (p *Peer) RouterInfoOn(day int, dayTime time.Time, introducerPool []*Peer, rng *rand.Rand) *netdb.RouterInfo {
	caps := netdb.Caps{
		Class:       p.Class,
		LegacyO:     p.LegacyO,
		Floodfill:   p.Floodfill,
		Reachable:   p.Status == StatusKnownIP && p.Reachable,
		Unreachable: !(p.Status == StatusKnownIP && p.Reachable),
	}
	ri := &netdb.RouterInfo{
		Identity:  p.ID,
		Published: dayTime,
		Version:   "0.9.34",
	}
	switch p.Status {
	case StatusKnownIP:
		v4, v6 := p.AddrOnDay(day)
		port := uint16(9000 + rng.IntN(22001)) // I2P's 9000–31000 range
		if v4.IsValid() {
			ri.Addresses = append(ri.Addresses, netdb.RouterAddress{
				Transport: netdb.TransportNTCP,
				Addr:      v4,
				Port:      port,
			})
			ri.Addresses = append(ri.Addresses, netdb.RouterAddress{
				Transport: netdb.TransportSSU,
				Addr:      v4,
				Port:      port,
			})
		}
		if v6.IsValid() {
			ri.Addresses = append(ri.Addresses, netdb.RouterAddress{
				Transport: netdb.TransportNTCP,
				Addr:      v6,
				Port:      port,
			})
		}
	case StatusFirewalled, StatusToggling:
		addr := netdb.RouterAddress{Transport: netdb.TransportSSU}
		n := 1 + rng.IntN(3)
		for i := 0; i < n && len(introducerPool) > 0; i++ {
			in := introducerPool[rng.IntN(len(introducerPool))]
			v4, _ := in.AddrOnDay(day)
			if !v4.IsValid() {
				continue
			}
			addr.Introducers = append(addr.Introducers, netdb.Introducer{
				Hash: in.ID,
				Tag:  rng.Uint32(),
				Addr: v4,
				Port: uint16(9000 + rng.IntN(22001)),
			})
		}
		ri.Addresses = append(ri.Addresses, addr)
		if p.Status == StatusToggling {
			// Within the day the peer also appeared with hidden config;
			// the H flag records it, putting the peer in both groups.
			caps.Hidden = true
		}
	case StatusHidden:
		caps.Hidden = true
	}
	ri.Caps = caps
	return ri
}
