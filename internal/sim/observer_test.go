package sim

import (
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// TestCoverageFactorBounds: gamma is a probability for every peer and
// observer configuration.
func TestCoverageFactorBounds(t *testing.T) {
	n := testNetwork(t, 10)
	f := func(kbps uint16, ff bool, peerSel uint16) bool {
		o := n.NewObserver(ObserverConfig{SharedKBps: int(kbps), Floodfill: ff, Seed: 1})
		p := n.Peers[int(peerSel)%len(n.Peers)]
		gamma := o.CoverageFactor(p)
		prob := o.ObserveProbability(p)
		return gamma >= 0 && gamma <= 1 && prob >= 0 && prob <= 1 && prob <= gamma+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCoverageMonotoneInBandwidth: more shared bandwidth never reduces
// coverage of any peer (the tunnel channel only grows).
func TestCoverageMonotoneInBandwidth(t *testing.T) {
	n := testNetwork(t, 10)
	low := n.NewObserver(ObserverConfig{SharedKBps: 128, Seed: 1})
	mid := n.NewObserver(ObserverConfig{SharedKBps: 1024, Seed: 1})
	high := n.NewObserver(ObserverConfig{SharedKBps: 8192, Seed: 1})
	for i := 0; i < 500; i++ {
		p := n.Peers[i*7%len(n.Peers)]
		gl, gm, gh := low.CoverageFactor(p), mid.CoverageFactor(p), high.CoverageFactor(p)
		if !(gl <= gm+1e-12 && gm <= gh+1e-12) {
			t.Fatalf("coverage not monotone in bandwidth: %v %v %v", gl, gm, gh)
		}
	}
}

// TestFloodfillStoreChannelHelpsEveryPeer: at equal bandwidth, the store
// channel means a floodfill observer covers every peer at least as well
// per-channel-math as a non-floodfill one at low bandwidth.
func TestFloodfillStoreChannelHelpsAtLowBandwidth(t *testing.T) {
	n := testNetwork(t, 10)
	ff := n.NewObserver(ObserverConfig{SharedKBps: 128, Floodfill: true, Seed: 1})
	nf := n.NewObserver(ObserverConfig{SharedKBps: 128, Floodfill: false, Seed: 1})
	for i := 0; i < 500; i++ {
		p := n.Peers[i*11%len(n.Peers)]
		if ff.CoverageFactor(p) < nf.CoverageFactor(p) {
			t.Fatalf("peer %d: low-bandwidth floodfill coverage below non-floodfill", i)
		}
	}
}

func TestObserverBandwidthClamping(t *testing.T) {
	n := testNetwork(t, 10)
	o := n.NewObserver(ObserverConfig{SharedKBps: 1 << 20})
	if o.Cfg.SharedKBps != MaxSharedKBps {
		t.Fatalf("bandwidth not clamped: %d", o.Cfg.SharedKBps)
	}
	o = n.NewObserver(ObserverConfig{SharedKBps: 0})
	if o.Cfg.SharedKBps != 128 {
		t.Fatalf("zero bandwidth not defaulted: %d", o.Cfg.SharedKBps)
	}
}

// TestObservationSubsetOfActives: observers only see peers that are
// actually online.
func TestObservationSubsetOfActives(t *testing.T) {
	n := testNetwork(t, 10)
	o := n.NewObserver(ObserverConfig{SharedKBps: 8192, Floodfill: true, Seed: 5})
	day := 5
	active := make(map[int]bool)
	for _, idx := range n.ActivePeers(day) {
		active[idx] = true
	}
	for _, idx := range o.ObserveDay(day) {
		if !active[idx] {
			t.Fatal("observed an offline peer")
		}
	}
	if got := o.ObserveDay(-1); got != nil {
		t.Fatal("out-of-range day returned observations")
	}
}

// TestObserveDayMemoized: repeated ObserveDay calls return the cached
// draw (same backing slice), including under concurrent access, and a
// fresh observer with the same seed reproduces it exactly.
func TestObserveDayMemoized(t *testing.T) {
	n := testNetwork(t, 10)
	o := n.NewObserver(ObserverConfig{SharedKBps: 8192, Floodfill: true, Seed: 9})
	day := 4
	first := o.ObserveDay(day)
	if len(first) == 0 {
		t.Fatal("observer saw nothing")
	}
	second := o.ObserveDay(day)
	if &first[0] != &second[0] || len(first) != len(second) {
		t.Fatal("repeated ObserveDay did not return the memoized slice")
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := 0; d < n.Days(); d++ {
				o.ObserveDay(d)
			}
		}()
	}
	wg.Wait()
	fresh := n.NewObserver(ObserverConfig{SharedKBps: 8192, Floodfill: true, Seed: 9})
	if !reflect.DeepEqual(fresh.ObserveDay(day), first) {
		t.Fatal("memoized draw differs from a fresh observer's draw")
	}
}

// TestObserveDayMemoBounded: the memo is a bounded FIFO ring — long-lived
// observers visiting many days never retain more than observeMemoCap
// entries, and an evicted day redraws to identical content.
func TestObserveDayMemoBounded(t *testing.T) {
	n := testNetwork(t, 10)
	o := n.NewObserver(ObserverConfig{SharedKBps: 8192, Floodfill: true, Seed: 11})
	first := append([]int(nil), o.ObserveDay(4)...)
	// Visit far more days than the memo holds (out-of-window days draw
	// empty but still occupy entries, which is exactly what a long-lived
	// enumeration fleet would do).
	for d := 0; d < 3*observeMemoCap; d++ {
		o.ObserveDay(d)
	}
	if resident := o.memo.Resident(); resident > observeMemoCap {
		t.Fatalf("memo holds %d entries, cap %d", resident, observeMemoCap)
	}
	// Day 4 was evicted; the redraw must be identical (pure in seed, day).
	if _, resident := o.memo.Peek(4); resident {
		t.Fatal("day 4 survived 3x-capacity insertions")
	}
	if got := o.ObserveDay(4); !reflect.DeepEqual(got, first) {
		t.Fatal("redraw after eviction differs from the original draw")
	}
	// Resident hits stay memoized (same backing slice), so revisits
	// between evictions never redraw.
	a := o.ObserveDay(4)
	b := o.ObserveDay(4)
	if len(a) > 0 && &a[0] != &b[0] {
		t.Fatal("resident day was redrawn on a hit")
	}
}

// TestAddrScheduleMatchesAddrOnDay: the exported schedule reproduces
// AddrOnDay for every peer and day.
func TestAddrScheduleMatchesAddrOnDay(t *testing.T) {
	n := testNetwork(t, 10)
	for _, p := range n.Peers {
		sched := p.AddrSchedule()
		if p.Status != StatusKnownIP {
			if sched != nil {
				t.Fatalf("peer %d: unknown-IP peer has an address schedule", p.Index)
			}
			continue
		}
		for day := 0; day < n.Days(); day++ {
			v4, v6 := p.AddrOnDay(day)
			var want AddrSegment
			if len(sched) > 0 {
				want = sched[0]
				for _, seg := range sched[1:] {
					if seg.FromDay > day {
						break
					}
					want = seg
				}
			}
			if want.V4 != v4 || want.V6 != v6 {
				t.Fatalf("peer %d day %d: schedule (%v, %v) != AddrOnDay (%v, %v)",
					p.Index, day, want.V4, want.V6, v4, v6)
			}
		}
	}
}
